// Quickstart: build a small network, corrupt everything, send messages,
// and watch SSMFP deliver each of them exactly once anyway.
//
//   $ ./examples/quickstart [seed]
//
// This is the minimal end-to-end use of the public API:
//   Graph -> SelfStabBfsRouting -> SsmfpProtocol -> Engine -> checkSpec.

#include <cstdlib>
#include <iostream>

#include "checker/spec_checker.hpp"
#include "core/engine.hpp"
#include "faults/corruptor.hpp"
#include "graph/builders.hpp"
#include "routing/selfstab_bfs.hpp"
#include "ssmfp/ssmfp.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace snapfwd;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  // 1. A 12-processor random connected network.
  Rng rng(seed);
  const Graph graph = topo::randomConnected(12, 6, rng);
  std::cout << "network: n=" << graph.size() << " edges=" << graph.edgeCount()
            << " Delta=" << graph.maxDegree() << " D=" << graph.diameter()
            << "\n";

  // 2. The protocol stack: self-stabilizing routing (priority layer) under
  //    SSMFP. Corrupt the routing tables and drop garbage messages into
  //    buffers: snap-stabilization means correctness from ANY configuration.
  SelfStabBfsRouting routing(graph);
  SsmfpProtocol forwarding(graph, routing);

  CorruptionPlan chaos;
  chaos.routingFraction = 1.0;   // every table entry randomized
  chaos.invalidMessages = 10;    // garbage in 10 buffers
  chaos.scrambleQueues = true;
  Rng faultRng = rng.fork(1);
  const std::size_t injected = applyCorruption(chaos, routing, forwarding, faultRng);
  std::cout << "corrupted: all routing entries randomized, " << injected
            << " invalid messages injected\n";

  // 3. Application traffic: every processor sends one message to processor 0.
  for (NodeId p = 1; p < graph.size(); ++p) {
    forwarding.send(p, 0, /*payload=*/100 + p);
  }

  // 4. Run under an asynchronous (distributed random) daemon to quiescence.
  DistributedRandomDaemon daemon(rng.fork(2), 0.5);
  Engine engine(graph, {&routing, &forwarding}, daemon);
  forwarding.attachEngine(&engine);
  engine.run(1'000'000);

  // 5. Check the paper's specification SP.
  const SpecReport report = checkSpec(forwarding);
  std::cout << "after " << engine.stepCount() << " steps / "
            << engine.roundCount() << " rounds:\n  " << report.summary() << "\n";
  for (const auto& rec : forwarding.deliveries()) {
    if (!rec.msg.valid) continue;
    std::cout << "  delivered payload " << rec.msg.payload << " from "
              << rec.msg.source << " at round " << rec.round << "\n";
  }
  if (!report.satisfiesSp()) {
    std::cout << "SPEC VIOLATION\n";
    return 1;
  }
  std::cout << "SP satisfied: every valid message delivered exactly once,\n"
            << "despite fully corrupted routing tables and buffer garbage.\n";
  return 0;
}
