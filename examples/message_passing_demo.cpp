// Message-passing demo: SSMFP over asynchronous FIFO channels (the
// alpha-synchronizer embedding), with the lossy-channel failure mode.
//
//   $ ./examples/message_passing_demo [seed]
//
// Shows the API of src/mp/ and the boundary the paper's conclusion calls
// an open problem: with reliable channels the embedding is exact (rounds
// independent of delays); with loss, progress stalls while everything
// already delivered stays exactly-once.

#include <cstdlib>
#include <iostream>
#include <map>

#include "graph/builders.hpp"
#include "mp/mp_ssmfp.hpp"

int main(int argc, char** argv) {
  using namespace snapfwd;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 21;

  const Graph g = topo::grid(3, 3);
  std::cout << "3x3 grid over asynchronous FIFO channels; corrupted routing\n"
            << "tables; every node sends one message to node 0.\n\n";

  for (const double loss : {0.0, 0.25}) {
    MpSsmfpSimulator sim(g, {}, seed, /*maxChannelDelay=*/3, loss);
    Rng rng(seed);
    sim.corruptRouting(rng, 1.0);
    for (NodeId p = 1; p < g.size(); ++p) sim.send(p, 0, 100 + p);
    const std::uint64_t ticks = sim.run(60'000);

    std::size_t exactlyOnce = 0, duplicated = 0;
    std::map<TraceId, int> counts;
    for (const auto& rec : sim.deliveries()) {
      if (rec.msg.valid) ++counts[rec.msg.trace];
    }
    for (const auto& [trace, count] : counts) {
      exactlyOnce += (count == 1) ? 1 : 0;
      duplicated += (count > 1) ? 1 : 0;
    }
    std::cout << "--- channel loss " << (loss * 100) << "% ---\n"
              << "  settled: " << (sim.quiescent() ? "yes" : "NO (stalled)")
              << ", rounds " << sim.completedRounds() << ", ticks " << ticks
              << "\n  packets sent " << sim.packetsSent() << ", dropped "
              << sim.packetsDropped() << "\n  deliveries: " << exactlyOnce
              << "/8 exactly-once, " << duplicated << " duplicated\n\n";
    if (duplicated != 0) {
      std::cout << "UNEXPECTED duplication\n";
      return 1;
    }
  }
  std::cout << "Reliable channels: the synchronizer makes the asynchronous\n"
            << "run equal to a synchronous state-model run, so the paper's\n"
            << "theorem applies. Lossy channels: progress stalls - safety is\n"
            << "never traded, but liveness needs the reliability assumption.\n"
            << "Removing it is the open problem the paper cites.\n";
  return 0;
}
