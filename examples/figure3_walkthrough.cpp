// Walkthrough of the paper's Figure 3 execution, printed configuration by
// configuration - run this to "read" the paper's example live.
//
//   $ ./examples/figure3_walkthrough
//
// Network: a=0, b=1, c=2, d=3 (edges a-b, a-c, a-d, c-b; Delta = 3).
// The initial configuration is adversarial: the routing tables contain an
// a <-> c forwarding cycle for destination b, and an invalid message m'
// already occupies bufR_b(b) with color 0. Processor c then sends m and a
// second message whose useful information collides with the invalid one.

#include <iostream>

#include "checker/spec_checker.hpp"
#include "sim/figure3.hpp"

int main() {
  using namespace snapfwd;
  Figure3Replay replay;

  std::cout << "=== Figure 3 walkthrough ===\n\n"
            << "network: a-b, a-c, a-d, c-b (Delta=3, colors 0..3)\n"
            << "corrupted tables: nextHop_a(b)=c, nextHop_c(b)=a (a cycle!)\n\n"
            << "(0) initial configuration ('!' marks the invalid message):\n"
            << replay.renderConfiguration() << "\n";

  const bool ok = replay.run([&](std::size_t, const std::string& description) {
    std::cout << description << "\n" << replay.renderConfiguration() << "\n";
  });

  std::cout << "deliveries at b, in order:\n";
  for (const auto& rec : replay.protocol().deliveries()) {
    std::cout << "  payload " << rec.msg.payload
              << (rec.msg.valid ? " (valid)" : " (invalid)") << " at step "
              << rec.step << "\n";
  }
  std::cout << "\n" << checkSpec(replay.protocol()).summary() << "\n";
  if (!ok) {
    std::cout << "REPLAY FAILED\n";
    return 1;
  }
  std::cout << "\nBoth valid messages were delivered exactly once even though\n"
            << "one of them is byte-identical to garbage that predated it -\n"
            << "the color flags kept them apart (this is Lemma 5 at work).\n";
  return 0;
}
