// Trace explorer: run a corrupted-start scenario and print the full
// execution the way the paper draws its diagrams - every rule firing and
// periodic configuration snapshots.
//
//   $ ./examples/trace_explorer [seed] [n]
//
// Useful for studying HOW the protocol recovers: watch the routing layer's
// RFix actions dry up, R5 clean stale duplicates, and the caterpillars of
// valid messages crawl toward their destinations.

#include <cstdlib>
#include <iostream>

#include "checker/spec_checker.hpp"
#include "graph/builders.hpp"
#include "routing/selfstab_bfs.hpp"
#include "sim/trace.hpp"
#include "ssmfp/ssmfp.hpp"
#include "workload/workload.hpp"

int main(int argc, char** argv) {
  using namespace snapfwd;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  const std::size_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  Rng rng(seed);
  const Graph g = topo::ring(n);
  SelfStabBfsRouting routing(g);
  SsmfpProtocol proto(g, routing);
  Rng corruptRng = rng.fork(1);
  routing.corrupt(corruptRng, 1.0);

  proto.send(1, 0, 71);
  proto.send(static_cast<NodeId>(n - 1), 0, 72);

  Rng daemonRng = rng.fork(2);
  DistributedRandomDaemon daemon(daemonRng, 0.5);
  Engine engine(g, {&routing, &proto}, daemon);
  proto.attachEngine(&engine);
  ExecutionTracer tracer(engine, /*routingLayer=*/0);

  std::cout << "=== trace explorer: ring(" << n << "), corrupted tables, "
            << "2 messages to node 0 ===\n\ninitial configuration:\n"
            << renderOccupiedConfiguration(proto) << "\n";

  while (engine.step()) {
    if (engine.stepCount() % 10 == 0) {
      std::cout << "--- after step " << engine.stepCount() << " ---\n"
                << renderOccupiedConfiguration(proto);
    }
  }

  std::cout << "\nfull action trace (" << tracer.entries().size()
            << " actions):\n"
            << tracer.render(60);

  std::cout << "\nrule usage:\n";
  for (const auto& rc : tracer.ruleCounts()) {
    if (rc.layer == 0) {
      std::cout << "  RFix (routing): " << rc.count << "\n";
    } else {
      std::cout << "  " << ruleName(rc.layer, rc.rule) << ": " << rc.count << "\n";
    }
  }

  const SpecReport report = checkSpec(proto);
  std::cout << "\n" << report.summary() << "\n";
  return report.satisfiesSp() ? 0 : 1;
}
