// Snap-stabilizing PIF waves on a tree - the protocol family that coined
// "snap-stabilization" (the paper's refs [2,3]), on the same engine.
//
//   $ ./examples/pif_waves [seed]
//
// Starts from a scrambled configuration (every node's PIF state random),
// requests three waves, and prints the broadcast/feedback fronts as they
// sweep the tree.

#include <cstdlib>
#include <iostream>

#include "graph/builders.hpp"
#include "pif/pif.hpp"

int main(int argc, char** argv) {
  using namespace snapfwd;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  const Graph g = topo::binaryTree(15);
  PifProtocol pif(g, 0);
  Rng rng(seed);
  pif.scrambleStates(rng);

  std::cout << "binary tree of 15, root 0; initial (scrambled) states:\n  ";
  for (NodeId p = 0; p < g.size(); ++p) {
    std::cout << toString(pif.state(p));
  }
  std::cout << "\n\n";

  for (int i = 0; i < 3; ++i) pif.requestWave();

  DistributedRandomDaemon daemon(rng.fork(1), 0.5);
  Engine engine(g, {&pif}, daemon);
  pif.attachEngine(&engine);
  std::string last;
  engine.setPostStepHook([&](Engine& e) {
    std::string now;
    for (NodeId p = 0; p < g.size(); ++p) now += toString(pif.state(p));
    if (now != last) {
      std::cout << "  step " << e.stepCount() << ": " << now << "\n";
      last = now;
    }
  });
  engine.run(1'000'000);

  std::cout << "\nwaves observed at the root:\n";
  for (const auto& wave : pif.waves()) {
    std::cout << "  " << (wave.valid ? "valid" : "INVALID (initial garbage)")
              << ": completed at step " << wave.completeStep;
    if (wave.valid) {
      std::cout << ", participants " << wave.participants << "/" << g.size();
    }
    std::cout << "\n";
  }
  bool ok = engine.isTerminal() && pif.allClean();
  for (const auto& wave : pif.waves()) {
    if (wave.valid) ok &= (wave.participants == g.size());
  }
  std::cout << (ok ? "\nall requested waves completed with full participation,\n"
                     "despite the arbitrary initial configuration.\n"
                   : "\nUNEXPECTED: a wave misbehaved\n");
  return ok ? 0 : 1;
}
