// Multi-destination workload on a mesh: every processor of a 4x4 grid
// talks to every other (permutation waves), all destination components
// running simultaneously, from a corrupted start.
//
//   $ ./examples/multi_destination_mesh [waves] [seed]
//
// Demonstrates the "n independent per-destination algorithms run
// simultaneously" composition of Section 3.2 at a realistic scale, and
// prints per-destination delivery statistics plus caterpillar census
// snapshots while traffic is in flight.

#include <cstdlib>
#include <iostream>
#include <map>

#include "checker/caterpillar.hpp"
#include "checker/spec_checker.hpp"
#include "core/engine.hpp"
#include "faults/corruptor.hpp"
#include "graph/builders.hpp"
#include "routing/selfstab_bfs.hpp"
#include "ssmfp/ssmfp.hpp"
#include "workload/workload.hpp"

int main(int argc, char** argv) {
  using namespace snapfwd;
  const std::size_t waves = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 9;

  const Graph graph = topo::grid(4, 4);
  std::cout << "4x4 mesh: n=" << graph.size() << " Delta=" << graph.maxDegree()
            << " D=" << graph.diameter() << ", " << waves
            << " permutation waves (" << waves * graph.size() << " messages)\n";

  SelfStabBfsRouting routing(graph);
  SsmfpProtocol forwarding(graph, routing);
  Rng rng(seed);

  CorruptionPlan plan;
  plan.routingFraction = 1.0;
  plan.invalidMessages = 20;
  plan.scrambleQueues = true;
  Rng faultRng = rng.fork(1);
  const std::size_t injected = applyCorruption(plan, routing, forwarding, faultRng);
  std::cout << "corrupted start: all tables randomized, " << injected
            << " invalid messages\n\n";

  Rng trafficRng = rng.fork(2);
  for (std::size_t w = 0; w < waves; ++w) {
    submitAll(forwarding, permutationTraffic(graph.size(), trafficRng, 16));
  }

  DistributedRandomDaemon daemon(rng.fork(3), 0.5);
  Engine engine(graph, {&routing, &forwarding}, daemon);
  forwarding.attachEngine(&engine);

  // Periodic in-flight census.
  engine.setPostStepHook([&](Engine& e) {
    if (e.stepCount() % 400 == 0) {
      const CaterpillarCensus census = censusOf(forwarding);
      std::cout << "  step " << e.stepCount() << ": delivered "
                << forwarding.deliveries().size() << ", in flight t1/t2/t3/tail = "
                << census.type1 << "/" << census.type2 << "/" << census.type3
                << "/" << census.tails << "\n";
    }
  });
  engine.run(5'000'000);

  const SpecReport report = checkSpec(forwarding);
  std::cout << "\nafter " << engine.stepCount() << " steps / "
            << engine.roundCount() << " rounds:\n  " << report.summary() << "\n";

  std::map<NodeId, std::uint64_t> perDest;
  for (const auto& rec : forwarding.deliveries()) {
    if (rec.msg.valid) ++perDest[rec.at];
  }
  std::cout << "valid deliveries per destination:";
  for (const auto& [dest, count] : perDest) {
    std::cout << " " << dest << ":" << count;
  }
  std::cout << "\n";
  if (!report.satisfiesSp()) {
    std::cout << "SPEC VIOLATION\n";
    return 1;
  }
  std::cout << "all " << report.validGenerated
            << " messages delivered exactly once across "
            << perDest.size() << " destinations.\n";
  return 0;
}
