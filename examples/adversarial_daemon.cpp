// Daemon sensitivity demo: the same workload under the whole daemon zoo.
//
//   $ ./examples/adversarial_daemon [seed]
//
// The paper proves snap-stabilization under a weakly fair daemon. This
// example runs one corrupted-start workload under every scheduler - from
// fully synchronous to a starvation-seeking adversary - and reports steps,
// rounds and the SP verdict for each, showing how the fairness assumption
// affects cost but (for the fair ones) never correctness.

#include <cstdlib>
#include <iostream>

#include "sim/runner.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace snapfwd;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 17;

  Table table("One corrupted-start workload under every daemon (seed " +
                  std::to_string(seed) + ")",
              {"daemon", "quiescent", "steps", "rounds", "R_A (rounds)", "SP"});

  const DaemonKind daemons[] = {
      DaemonKind::kSynchronous,   DaemonKind::kCentralRoundRobin,
      DaemonKind::kCentralRandom, DaemonKind::kDistributedRandom,
      DaemonKind::kWeaklyFair,    DaemonKind::kAdversarial,
  };
  bool fairAllSp = true;
  for (const auto daemon : daemons) {
    ExperimentConfig cfg;
    cfg.topo.kind = TopologyKind::kRandomConnected;
    cfg.topo.n = 10;
    cfg.topo.extraEdges = 5;
    cfg.seed = seed;
    cfg.daemon = daemon;
    cfg.traffic = TrafficKind::kUniform;
    cfg.messageCount = 20;
    cfg.corruption.routingFraction = 1.0;
    cfg.corruption.invalidMessages = 8;
    cfg.corruption.scrambleQueues = true;
    cfg.maxSteps = 1'000'000;
    const ExperimentResult r = runSsmfpExperiment(cfg);
    table.addRow({toString(daemon), Table::yesNo(r.quiescent),
                  Table::num(r.steps), Table::num(r.rounds),
                  Table::num(r.routingSilentRound),
                  Table::yesNo(r.spec.satisfiesSp())});
    if (daemon != DaemonKind::kAdversarial) {
      fairAllSp &= r.spec.satisfiesSp() && r.quiescent;
    }
  }
  table.printMarkdown(std::cout);
  std::cout << "The adversarial daemon is OUTSIDE the paper's weakly-fair\n"
            << "assumption; everything it manages to deliver is still\n"
            << "exactly-once, but it may starve progress indefinitely.\n";
  if (!fairAllSp) {
    std::cout << "UNEXPECTED: a fair daemon violated SP\n";
    return 1;
  }
  return 0;
}
