// Snap-stabilization demo: the same corrupted initial configuration run
// through SSMFP and through the fault-free baseline, side by side.
//
//   $ ./examples/corrupted_start [seed]
//
// Expected outcome on most seeds: SSMFP delivers everything exactly once;
// the baseline deadlocks in the frozen routing cycle or mis-handles the
// garbage flags, losing or duplicating messages. This is the paper's
// motivation in one program.

#include <cstdlib>
#include <iostream>

#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace snapfwd;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;

  ExperimentConfig cfg;
  cfg.topo.kind = TopologyKind::kRing;
  cfg.topo.n = 8;
  cfg.seed = seed;
  cfg.daemon = DaemonKind::kDistributedRandom;
  cfg.traffic = TrafficKind::kUniform;
  cfg.messageCount = 16;
  cfg.payloadSpace = 4;  // payload collisions on purpose
  cfg.corruption.routingFraction = 1.0;
  cfg.corruption.invalidMessages = 10;
  cfg.corruption.scrambleQueues = true;
  cfg.maxSteps = 400'000;

  std::cout << "=== Arbitrary initial configuration (seed " << seed << ") ===\n"
            << "ring of 8, ALL routing entries randomized, 10 invalid messages,\n"
            << "fairness queues scrambled, 16 valid messages submitted.\n\n";

  const ExperimentResult ssmfp = runSsmfpExperiment(cfg);
  std::cout << "--- SSMFP (with self-stabilizing routing, priority layer) ---\n"
            << "  quiescent: " << (ssmfp.quiescent ? "yes" : "NO (stuck)") << "\n"
            << "  routing silent after " << ssmfp.routingSilentRound
            << " rounds (R_A)\n"
            << "  " << ssmfp.spec.summary() << "\n\n";

  const ExperimentResult baseline = runBaselineExperiment(cfg);
  std::cout << "--- fault-free baseline (frozen corrupted tables) ---\n"
            << "  quiescent: " << (baseline.quiescent ? "yes" : "NO (stuck)") << "\n"
            << "  " << baseline.spec.summary() << "\n\n";

  if (ssmfp.spec.satisfiesSp() && !baseline.spec.satisfiesSp()) {
    std::cout << "SSMFP satisfied SP from the corrupted start; the fault-free\n"
              << "algorithm did not. That asymmetry is snap-stabilization.\n";
  } else if (ssmfp.spec.satisfiesSp()) {
    std::cout << "SSMFP satisfied SP; the baseline happened to survive this\n"
              << "seed - try others (e.g. 1, 2, 3, 5) to see it fail.\n";
  } else {
    std::cout << "UNEXPECTED: SSMFP violated SP - please report this seed.\n";
    return 1;
  }
  return 0;
}
