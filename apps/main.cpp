// snapfwd_cli - run one SSMFP (or baseline) experiment from the shell.
//
//   $ snapfwd_cli --topology=random-connected --n=12 --corrupt-routing=1
//                 --invalid-messages=10 --scramble-queues --messages=30
//   (flags on one line; split here only for readability)
//
// Tooling: --snapshot-out/--snapshot-in archive and replay the exact
// initial configuration; --trace prints every rule firing; --render shows
// the buffer contents before and after.
//
// Exit code: 0 when the run satisfies SP (for SSMFP this should be every
// run - that is the theorem), 1 on an SP violation, 2 on a usage error.

#include <iostream>

#include "cli/args.hpp"

int main(int argc, char** argv) {
  const snapfwd::cli::ParseResult parsed = snapfwd::cli::parseArgs(argc, argv);
  if (!parsed.options.has_value()) {
    std::cerr << "error: " << parsed.error << "\n";
    return 2;
  }
  return snapfwd::cli::runCli(*parsed.options, std::cout, std::cerr);
}
