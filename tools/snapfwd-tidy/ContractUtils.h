#pragma once
// Shared AST helpers for the snapfwd-tidy checks (see README.md).
//
// The four checks all reason about the same small vocabulary: "a method of
// a snapfwd::Protocol subclass", "a call into the CheckedStore accessor
// surface", "a statement body walked for a forbidden pattern". Keeping the
// helpers header-only and version-tolerant (they avoid every StringRef API
// that was renamed between LLVM 14 and 18) is what lets one plugin source
// build against the whole pinned range in ci.yml.

#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/Stmt.h"
#include "llvm/ADT/ArrayRef.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

namespace clang {
namespace tidy {
namespace snapfwd {

/// Depth-first visit of S and every descendant statement (null-safe; AST
/// child lists contain nulls for e.g. absent for-loop clauses).
template <typename Fn>
void forEachDescendantStmt(const Stmt *S, const Fn &Visit) {
  if (S == nullptr)
    return;
  Visit(S);
  for (const Stmt *Child : S->children())
    forEachDescendantStmt(Child, Visit);
}

/// StringRef::startswith/starts_with without naming either (the former is
/// removed in new LLVM, the latter absent from old LLVM).
inline bool nameStartsWith(llvm::StringRef Name, llvm::StringRef Prefix) {
  return !Prefix.empty() && Name.substr(0, Prefix.size()) == Prefix;
}

/// Splits a semicolon-separated check option ("a;b;c"). The returned refs
/// view `Joined`, which must outlive them (checks keep options as members).
inline llvm::SmallVector<llvm::StringRef, 8> splitNameList(llvm::StringRef Joined) {
  llvm::SmallVector<llvm::StringRef, 8> Parts;
  Joined.split(Parts, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  return Parts;
}

inline bool nameInList(llvm::StringRef Name,
                       llvm::ArrayRef<llvm::StringRef> List) {
  for (const llvm::StringRef Entry : List)
    if (Name == Entry)
      return true;
  return false;
}

/// The plain identifier of D, or "" for operators/constructors/etc.
inline llvm::StringRef identifierOf(const NamedDecl *D) {
  if (D == nullptr)
    return {};
  const IdentifierInfo *II = D->getIdentifier();
  return II == nullptr ? llvm::StringRef() : II->getName();
}

/// True iff D is a member of snapfwd::CheckedStore<T> named one of Names
/// (works on the implicit-instantiation record the member call resolves to).
inline bool isCheckedStoreMember(const CXXMethodDecl *D,
                                 llvm::ArrayRef<llvm::StringRef> Names) {
  if (D == nullptr || !nameInList(identifierOf(D), Names))
    return false;
  const CXXRecordDecl *Parent = D->getParent();
  if (Parent == nullptr || identifierOf(Parent) != "CheckedStore")
    return false;
  const DeclContext *NS = Parent->getDeclContext()->getEnclosingNamespaceContext();
  const auto *ND = llvm::dyn_cast_or_null<NamespaceDecl>(NS);
  return ND != nullptr && identifierOf(ND) == "snapfwd";
}

/// True iff the member expression's base is (an implicit or explicit)
/// `this` of the enclosing class.
inline bool isMemberOfThis(const MemberExpr *ME) {
  if (ME == nullptr)
    return false;
  const Expr *Base = ME->getBase()->IgnoreParenImpCasts();
  return llvm::isa<CXXThisExpr>(Base);
}

}  // namespace snapfwd
}  // namespace tidy
}  // namespace clang
