#pragma once
// snapfwd-raw-observable-access
//
// Observable protocol state in audit-capable protocols lives in
// CheckedStore views whose read()/write() record (phase, actor, owner)
// with the engine's AccessTracker (src/core/access_tracker.hpp). The
// raw()/rawMutable() escape hatches exist for OUT-OF-PHASE tooling only
// (hashers, printers, restore paths); using them inside a phase method -
// guard evaluation, stage(), commit(), or a guard* helper - silently
// removes that method from the runtime auditor's view, so the locality /
// purity / write-set contracts the proofs lean on go unchecked on exactly
// the code paths they are about.
//
// This check flags every CheckedStore::raw()/rawMutable() call whose
// nearest enclosing callable is a phase method of a snapfwd::Protocol
// subclass. Options:
//   PhaseMethods      - ';'-separated phase entry points
//                       (default: enumerateEnabled;anyEnabled;stage;commit)
//   GuardMethodPrefix - helper-name prefix treated as guard code
//                       (default: guard)

#include "clang-tidy/ClangTidyCheck.h"

#include <string>

namespace clang {
namespace tidy {
namespace snapfwd {

class RawObservableAccessCheck : public ClangTidyCheck {
public:
  RawObservableAccessCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  const std::string PhaseMethods;
  const std::string GuardMethodPrefix;
};

}  // namespace snapfwd
}  // namespace tidy
}  // namespace clang
