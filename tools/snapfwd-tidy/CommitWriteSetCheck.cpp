#include "CommitWriteSetCheck.h"

#include "ContractUtils.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace snapfwd {

namespace {

/// The write-set out-parameter of M: a non-const lvalue reference to
/// std::vector<integral> (NodeId is std::uint32_t). vector<Action> etc.
/// have a record element type and do not qualify.
const ParmVarDecl *writeSetParam(const CXXMethodDecl *M) {
  for (const ParmVarDecl *P : M->parameters()) {
    const QualType T = P->getType();
    if (!T->isLValueReferenceType())
      continue;
    const QualType Pointee = T->getPointeeType();
    if (Pointee.isConstQualified())
      continue;
    const CXXRecordDecl *RD = Pointee->getAsCXXRecordDecl();
    if (RD == nullptr || identifierOf(RD) != "vector")
      continue;
    const auto *Spec = llvm::dyn_cast<ClassTemplateSpecializationDecl>(RD);
    if (Spec == nullptr || Spec->getTemplateArgs().size() == 0)
      continue;
    const TemplateArgument &Arg = Spec->getTemplateArgs().get(0);
    if (Arg.getKind() == TemplateArgument::Type &&
        Arg.getAsType()->isIntegerType())
      return P;
  }
  return nullptr;
}

}  // namespace

void CommitWriteSetCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxMethodDecl(ofClass(cxxRecordDecl(
                        isSameOrDerivedFrom("::snapfwd::Protocol"))),
                    isDefinition(), hasBody(compoundStmt()),
                    unless(anyOf(cxxConstructorDecl(), cxxDestructorDecl())))
          .bind("method"),
      this);
}

void CommitWriteSetCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *M = Result.Nodes.getNodeAs<CXXMethodDecl>("method");
  if (M == nullptr)
    return;
  const ParmVarDecl *WriteSet = writeSetParam(M);
  if (WriteSet == nullptr)
    return;

  bool WritesObservable = false;
  bool TouchesWriteSet = false;
  const CXXMethodDecl *FirstWriter = nullptr;
  SourceLocation FirstWriteLoc;
  forEachDescendantStmt(M->getBody(), [&](const Stmt *S) {
    if (const auto *MCE = llvm::dyn_cast<CXXMemberCallExpr>(S)) {
      const CXXMethodDecl *Callee = MCE->getMethodDecl();
      const bool Writes =
          isCheckedStoreMember(Callee, {"write", "rawMutable"}) ||
          identifierOf(Callee) == "auditWrite";
      if (Writes && !WritesObservable) {
        WritesObservable = true;
        FirstWriter = Callee;
        FirstWriteLoc = MCE->getExprLoc();
      }
    } else if (const auto *DRE = llvm::dyn_cast<DeclRefExpr>(S)) {
      // Any mention counts: push_back, insert, or forwarding the vector to
      // a helper that reports on this path's behalf.
      if (DRE->getDecl() == WriteSet)
        TouchesWriteSet = true;
    }
  });

  if (!WritesObservable || TouchesWriteSet)
    return;
  diag(FirstWriteLoc,
       "%0 writes observable state (first via %1) but never touches its "
       "write-set parameter %2; every written processor must be reported - "
       "under-reporting silently stales the incremental scheduler's enabled "
       "cache")
      << M << FirstWriter << WriteSet;
}

}  // namespace snapfwd
}  // namespace tidy
}  // namespace clang
