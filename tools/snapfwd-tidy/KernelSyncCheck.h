#pragma once
// snapfwd-kernel-sync
//
// The SoA guard-kernel mirrors (src/ssmfp/ssmfp_kernels.hpp) refresh
// LAZILY: syncWritten() only marks rows stale, and every entry point that
// reads mirror rows must go through the stale-bit refresh (ensureFresh /
// syncProcessor) before trusting them. An entry point that skips the
// refresh reads rows the authoritative protocol has since rewritten - the
// kernel and virtual paths then diverge, which breaks the byte-identity
// differential every kernel-mode certificate rests on.
//
// A "kernel mirror" is any class with a `stale_` member and a
// `syncWritten` method (the mirror maintenance contract of
// core/soa_state.hpp). This check flags every public non-const method of
// such a class that references mirror data members without any call to a
// refresh entry point being reachable from its body. Sync methods
// themselves (`sync*`) and private helpers (which run behind an entry
// point that already refreshed) are exempt.
//
// Options:
//   RefreshMethods - ';'-separated refresh entry points
//                    (default: ensureFresh;syncProcessor;syncAll;syncWritten)

#include "clang-tidy/ClangTidyCheck.h"

#include <string>

namespace clang {
namespace tidy {
namespace snapfwd {

class KernelSyncCheck : public ClangTidyCheck {
public:
  KernelSyncCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  const std::string RefreshMethods;
};

}  // namespace snapfwd
}  // namespace tidy
}  // namespace clang
