#include "RawObservableAccessCheck.h"

#include "ContractUtils.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace snapfwd {

RawObservableAccessCheck::RawObservableAccessCheck(StringRef Name,
                                                   ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      PhaseMethods(llvm::StringRef(
                       Options.get("PhaseMethods",
                                   "enumerateEnabled;anyEnabled;stage;commit"))
                       .str()),
      GuardMethodPrefix(
          llvm::StringRef(Options.get("GuardMethodPrefix", "guard")).str()) {}

void RawObservableAccessCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "PhaseMethods", PhaseMethods);
  Options.store(Opts, "GuardMethodPrefix", GuardMethodPrefix);
}

void RawObservableAccessCheck::registerMatchers(MatchFinder *Finder) {
  // Every raw()/rawMutable() call on a snapfwd::CheckedStore whose nearest
  // enclosing callable is a method of a Protocol subclass. The phase-name
  // filter happens in check() so the option list stays data, not matchers.
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(
              hasAnyName("raw", "rawMutable"),
              ofClass(cxxRecordDecl(hasName("::snapfwd::CheckedStore"))))),
          forCallable(
              cxxMethodDecl(ofClass(cxxRecordDecl(
                                isSameOrDerivedFrom("::snapfwd::Protocol"))))
                  .bind("caller")))
          .bind("call"),
      this);
}

void RawObservableAccessCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<CXXMemberCallExpr>("call");
  const auto *Caller = Result.Nodes.getNodeAs<CXXMethodDecl>("caller");
  if (Call == nullptr || Caller == nullptr)
    return;
  const llvm::StringRef CallerName = identifierOf(Caller);
  if (CallerName.empty())
    return;
  const bool IsPhase = nameInList(CallerName, splitNameList(PhaseMethods)) ||
                       nameStartsWith(CallerName, GuardMethodPrefix);
  if (!IsPhase)
    return;
  diag(Call->getExprLoc(),
       "%0 bypasses the audited accessors inside phase method %1; observable "
       "state in guard/stage/commit code must go through CheckedStore "
       "read()/write() so audit mode records the access")
      << Call->getMethodDecl() << Caller;
}

}  // namespace snapfwd
}  // namespace tidy
}  // namespace clang
