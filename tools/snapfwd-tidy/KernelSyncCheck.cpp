#include "KernelSyncCheck.h"

#include "ContractUtils.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace snapfwd {

KernelSyncCheck::KernelSyncCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      RefreshMethods(
          llvm::StringRef(Options.get(
                              "RefreshMethods",
                              "ensureFresh;syncProcessor;syncAll;syncWritten"))
              .str()) {}

void KernelSyncCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "RefreshMethods", RefreshMethods);
}

void KernelSyncCheck::registerMatchers(MatchFinder *Finder) {
  // Public mutating entry points of a kernel mirror (a class with a
  // `stale_` field and a `syncWritten` method).
  Finder->addMatcher(
      cxxMethodDecl(
          isDefinition(), isPublic(), unless(isConst()),
          unless(anyOf(cxxConstructorDecl(), cxxDestructorDecl())),
          ofClass(cxxRecordDecl(has(fieldDecl(hasName("stale_"))),
                                hasMethod(hasName("syncWritten")))
                      .bind("mirror")))
          .bind("method"),
      this);
}

void KernelSyncCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *M = Result.Nodes.getNodeAs<CXXMethodDecl>("method");
  const auto *Mirror = Result.Nodes.getNodeAs<CXXRecordDecl>("mirror");
  if (M == nullptr || Mirror == nullptr || M->isStatic())
    return;
  const llvm::StringRef Name = identifierOf(M);
  if (Name.empty() || nameStartsWith(Name, "sync") ||
      nameInList(Name, splitNameList(RefreshMethods)))
    return;

  const CXXRecordDecl *Canon = Mirror->getCanonicalDecl();
  bool TouchesMirror = false;
  bool Refreshes = false;
  forEachDescendantStmt(M->getBody(), [&](const Stmt *S) {
    if (const auto *ME = llvm::dyn_cast<MemberExpr>(S)) {
      const auto *Field = llvm::dyn_cast<FieldDecl>(ME->getMemberDecl());
      if (Field != nullptr &&
          Field->getParent()->getCanonicalDecl() == Canon)
        TouchesMirror = true;
    }
    if (const auto *CE = llvm::dyn_cast<CallExpr>(S)) {
      const auto *Callee =
          llvm::dyn_cast_or_null<NamedDecl>(CE->getCalleeDecl());
      if (Callee != nullptr &&
          nameInList(identifierOf(Callee), splitNameList(RefreshMethods)))
        Refreshes = true;
    }
  });

  if (!TouchesMirror || Refreshes)
    return;
  diag(M->getLocation(),
       "mutating entry point %0 of kernel mirror %1 reads mirror rows "
       "without reaching a stale-bit refresh (%2); lazy mirrors must "
       "refresh every row before trusting it")
      << M << Mirror << RefreshMethods;
}

}  // namespace snapfwd
}  // namespace tidy
}  // namespace clang
