#include "GuardPurityCheck.h"

#include "ContractUtils.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace snapfwd {

GuardPurityCheck::GuardPurityCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      GuardMethods(llvm::StringRef(
                       Options.get("GuardMethods", "enumerateEnabled;anyEnabled"))
                       .str()),
      GuardMethodPrefix(
          llvm::StringRef(Options.get("GuardMethodPrefix", "guard")).str()),
      ExcludedMethods(llvm::StringRef(Options.get("ExcludedMethods",
                                                  "guardKernels;guardMutation"))
                          .str()) {}

void GuardPurityCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "GuardMethods", GuardMethods);
  Options.store(Opts, "GuardMethodPrefix", GuardMethodPrefix);
  Options.store(Opts, "ExcludedMethods", ExcludedMethods);
}

void GuardPurityCheck::registerMatchers(MatchFinder *Finder) {
  // Every method definition of a GuardSource subclass; the guard-name
  // filter runs in check() so the options stay plain strings.
  Finder->addMatcher(
      cxxMethodDecl(ofClass(cxxRecordDecl(
                        isSameOrDerivedFrom("::snapfwd::GuardSource"))),
                    isDefinition(),
                    unless(anyOf(cxxConstructorDecl(), cxxDestructorDecl())))
          .bind("method"),
      this);
}

void GuardPurityCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *M = Result.Nodes.getNodeAs<CXXMethodDecl>("method");
  if (M == nullptr || M->isStatic())
    return;
  const llvm::StringRef Name = identifierOf(M);
  if (Name.empty() || nameInList(Name, splitNameList(ExcludedMethods)))
    return;
  const bool IsGuard = nameInList(Name, splitNameList(GuardMethods)) ||
                       nameStartsWith(Name, GuardMethodPrefix);
  if (!IsGuard)
    return;

  if (!M->isConst()) {
    diag(M->getLocation(),
         "guard method %0 must be const: guards are pure reads of the "
         "current configuration (core/protocol.hpp contract)")
        << M;
  }

  const CXXRecordDecl *Owner = M->getParent()->getCanonicalDecl();
  const auto FlagMemberWrite = [&](const Expr *Target, SourceLocation Loc) {
    const auto *ME =
        llvm::dyn_cast<MemberExpr>(Target->IgnoreParenImpCasts());
    if (ME == nullptr || !llvm::isa<FieldDecl>(ME->getMemberDecl()) ||
        !isMemberOfThis(ME))
      return;
    diag(Loc, "guard method %0 writes data member %1; guard evaluation must "
              "not mutate captured state")
        << M << ME->getMemberDecl();
  };

  forEachDescendantStmt(M->getBody(), [&](const Stmt *S) {
    if (const auto *MCE = llvm::dyn_cast<CXXMemberCallExpr>(S)) {
      const CXXMethodDecl *Callee = MCE->getMethodDecl();
      if (isCheckedStoreMember(Callee,
                               {"write", "rawMutable", "assign", "resize"})) {
        diag(MCE->getExprLoc(),
             "guard method %0 mutates observable state through "
             "CheckedStore::%1")
            << M << Callee;
        return;
      }
      const llvm::StringRef CalleeName = identifierOf(Callee);
      if (CalleeName == "auditWrite" || CalleeName == "notifyExternalMutation") {
        diag(MCE->getExprLoc(),
             "guard method %0 calls %1, which declares an observable-state "
             "mutation; guards must not mutate")
            << M << Callee;
        return;
      }
      // A non-const call on `this` within the same class: mutation by
      // delegation (only expressible at all once the guard itself lost
      // const, so this usually rides along with the missing-const diag).
      if (Callee != nullptr && !Callee->isStatic() && !Callee->isConst() &&
          Callee->getParent() != nullptr &&
          Callee->getParent()->getCanonicalDecl() == Owner) {
        const Expr *Obj = MCE->getImplicitObjectArgument();
        if (Obj != nullptr && llvm::isa<CXXThisExpr>(Obj->IgnoreParenImpCasts())) {
          diag(MCE->getExprLoc(),
               "guard method %0 calls non-const member %1; guard evaluation "
               "must stay a pure read")
              << M << Callee;
        }
      }
    } else if (const auto *CC = llvm::dyn_cast<CXXConstCastExpr>(S)) {
      diag(CC->getExprLoc(),
           "const_cast inside guard method %0 defeats the guard purity "
           "contract")
          << M;
    } else if (const auto *BO = llvm::dyn_cast<BinaryOperator>(S)) {
      if (BO->isAssignmentOp())
        FlagMemberWrite(BO->getLHS(), BO->getOperatorLoc());
    } else if (const auto *UO = llvm::dyn_cast<UnaryOperator>(S)) {
      if (UO->isIncrementDecrementOp())
        FlagMemberWrite(UO->getSubExpr(), UO->getOperatorLoc());
    }
  });
}

}  // namespace snapfwd
}  // namespace tidy
}  // namespace clang
