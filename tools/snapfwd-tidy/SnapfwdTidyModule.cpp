// snapfwd-tidy: out-of-tree clang-tidy module enforcing the snapfwd
// protocol access contracts (see README.md). Loaded with
//   clang-tidy -load SnapfwdTidyModule.so --checks='-*,snapfwd-*' ...

#include "CommitWriteSetCheck.h"
#include "GuardPurityCheck.h"
#include "KernelSyncCheck.h"
#include "RawObservableAccessCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang {
namespace tidy {
namespace snapfwd {

class SnapfwdModule : public ClangTidyModule {
public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<RawObservableAccessCheck>(
        "snapfwd-raw-observable-access");
    Factories.registerCheck<GuardPurityCheck>("snapfwd-guard-purity");
    Factories.registerCheck<CommitWriteSetCheck>("snapfwd-commit-writeset");
    Factories.registerCheck<KernelSyncCheck>("snapfwd-kernel-sync");
  }
};

}  // namespace snapfwd

// Register the module with clang-tidy's global registry; the static
// initializer runs when the shared object is loaded via -load.
static ClangTidyModuleRegistry::Add<snapfwd::SnapfwdModule>
    X("snapfwd-module", "Checks for the snapfwd protocol access contracts.");

// Anchor the registration so the linker keeps the static initializer.
volatile int SnapfwdModuleAnchorSource = 0;

}  // namespace tidy
}  // namespace clang
