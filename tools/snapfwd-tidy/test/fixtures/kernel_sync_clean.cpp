// Clean twin of kernel_sync.cpp: evaluate() refreshes the row through
// ensureFresh() before reading it, honoring the lazy-mirror contract.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace snapfwd {

class ToyKernelState {
 public:
  void resize(std::size_t n) {
    rows_.assign(n, 0);
    stale_.assign(n, true);
    syncAll();
  }

  void syncWritten(const std::uint32_t* ids, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) stale_[ids[i]] = true;
  }

  void syncAll() {
    for (std::size_t p = 0; p < rows_.size(); ++p) ensureFresh(p);
  }

  int evaluate(std::size_t p) {
    ensureFresh(p);
    return rows_[p];
  }

 private:
  void ensureFresh(std::size_t p) {
    if (stale_[p]) {
      rows_[p] = 1;  // re-project from the authoritative store
      stale_[p] = false;
    }
  }

  std::vector<int> rows_;
  std::vector<bool> stale_;
};

}  // namespace snapfwd
