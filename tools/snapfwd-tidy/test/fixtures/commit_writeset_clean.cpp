// Clean twin of commit_writeset.cpp: every applied write reports its
// owner into the write-set parameter.

#include "core/protocol.hpp"

namespace snapfwd {

class HonestCommitProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "honest-commit";
  }

  void enumerateEnabled(NodeId p, std::vector<Action>& out) const override {
    if (value_.read(p) == 0) out.push_back(Action{1, kNoNode, 0});
  }

  void stage(NodeId p, const Action&) override { staged_.push_back(p); }

  void commit(std::vector<NodeId>& written) override {
    for (const NodeId p : staged_) {
      auditCommitOp(p, 1);
      value_.write(p) = 1;
      written.push_back(p);
    }
    staged_.clear();
  }

 private:
  CheckedStore<int> value_;
  std::vector<NodeId> staged_;
};

}  // namespace snapfwd
