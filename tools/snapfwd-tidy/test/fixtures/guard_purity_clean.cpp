// Clean twin of guard_purity.cpp: the guard helper is const and reads
// through the audited accessor only.

#include "core/protocol.hpp"

namespace snapfwd {

class PureGuardProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "pure-guard"; }

  void enumerateEnabled(NodeId p, std::vector<Action>& out) const override {
    if (guardReady(p)) out.push_back(Action{1, kNoNode, 0});
  }

  void stage(NodeId, const Action&) override {}

  void commit(std::vector<NodeId>& written) override { written.clear(); }

  [[nodiscard]] bool guardReady(NodeId p) const { return value_.read(p) != 0; }

 private:
  CheckedStore<int> value_;
};

}  // namespace snapfwd
