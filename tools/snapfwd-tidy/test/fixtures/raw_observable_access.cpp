// Violation fixture for snapfwd-raw-observable-access: a guard reads
// observable state through CheckedStore::raw(), bypassing the audit
// recording that the runtime locality checks depend on.

#include "core/protocol.hpp"

namespace snapfwd {

class RawReadProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "raw-read"; }

  void enumerateEnabled(NodeId p, std::vector<Action>& out) const override {
    // EXPECT-DIAG: bypasses the audited accessors inside phase method
    if (value_.raw()[p] != 0) out.push_back(Action{1, kNoNode, 0});
  }

  void stage(NodeId, const Action&) override {}

  void commit(std::vector<NodeId>& written) override { written.clear(); }

 private:
  CheckedStore<int> value_;
};

}  // namespace snapfwd
