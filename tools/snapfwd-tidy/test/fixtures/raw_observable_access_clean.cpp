// Clean twin of raw_observable_access.cpp: the guard goes through
// CheckedStore::read(), and the raw() escape hatch appears only in a
// non-phase helper (a hasher), which the contract allows.

#include "core/protocol.hpp"

namespace snapfwd {

class CheckedReadProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "checked-read";
  }

  void enumerateEnabled(NodeId p, std::vector<Action>& out) const override {
    if (value_.read(p) != 0) out.push_back(Action{1, kNoNode, 0});
  }

  void stage(NodeId, const Action&) override {}

  void commit(std::vector<NodeId>& written) override { written.clear(); }

  // Out-of-phase tooling may use raw(): hashers iterate the whole store.
  [[nodiscard]] std::size_t hashState() const {
    std::size_t h = 0;
    for (const int v : value_.raw()) h = h * 31 + static_cast<std::size_t>(v);
    return h;
  }

 private:
  CheckedStore<int> value_;
};

}  // namespace snapfwd
