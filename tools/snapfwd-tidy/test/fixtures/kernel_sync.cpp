// Violation fixture for snapfwd-kernel-sync: a lazily-refreshed SoA
// mirror (stale_ bits + syncWritten maintenance contract, as in
// ssmfp/ssmfp_kernels.hpp) whose evaluate() entry point reads mirror rows
// without ever reaching the stale-bit refresh - the kernel path silently
// diverges from the authoritative state.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace snapfwd {

class ToyKernelState {
 public:
  void resize(std::size_t n) {
    rows_.assign(n, 0);
    stale_.assign(n, true);
    syncAll();
  }

  // Mirror maintenance contract: writers mark rows stale...
  void syncWritten(const std::uint32_t* ids, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) stale_[ids[i]] = true;
  }

  void syncAll() {
    for (std::size_t p = 0; p < rows_.size(); ++p) ensureFresh(p);
  }

  // ...and readers must refresh before trusting them. This one does not.
  // EXPECT-DIAG: without reaching a stale-bit refresh
  int evaluate(std::size_t p) { return rows_[p]; }

 private:
  void ensureFresh(std::size_t p) {
    if (stale_[p]) {
      rows_[p] = 1;  // re-project from the authoritative store
      stale_[p] = false;
    }
  }

  std::vector<int> rows_;
  std::vector<bool> stale_;
};

}  // namespace snapfwd
