// Violation fixture for snapfwd-guard-purity: a guard helper that is not
// const and mutates captured state during evaluation - exactly the
// heisenbug class the runtime auditor flags as kGuardWrite, caught here
// before the code ever runs.

#include "core/protocol.hpp"

namespace snapfwd {

class CountingGuardProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "counting-guard";
  }

  void enumerateEnabled(NodeId p, std::vector<Action>& out) const override {
    if (value_.read(p) != 0) out.push_back(Action{1, kNoNode, 0});
  }

  void stage(NodeId, const Action&) override {}

  void commit(std::vector<NodeId>& written) override { written.clear(); }

  // EXPECT-DIAG: must be const
  bool guardReady(NodeId p) {
    // EXPECT-DIAG: writes data member
    ++evalCount_;
    return value_.read(p) > evalCount_;
  }

 private:
  CheckedStore<int> value_;
  int evalCount_ = 0;
};

}  // namespace snapfwd
