// Violation fixture for snapfwd-commit-writeset: commit() applies staged
// writes but never reports a single processor into its write-set
// parameter - the structural form of the kUnderReportedWrite runtime
// violation (the incremental scheduler's enabled cache goes silently
// stale).

#include "core/protocol.hpp"

namespace snapfwd {

class ForgetfulCommitProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "forgetful-commit";
  }

  void enumerateEnabled(NodeId p, std::vector<Action>& out) const override {
    if (value_.read(p) == 0) out.push_back(Action{1, kNoNode, 0});
  }

  void stage(NodeId p, const Action&) override { staged_.push_back(p); }

  void commit(std::vector<NodeId>& written) override {
    for (const NodeId p : staged_) {
      auditCommitOp(p, 1);
      // EXPECT-DIAG: never touches its write-set parameter
      value_.write(p) = 1;
    }
    staged_.clear();
  }

 private:
  CheckedStore<int> value_;
  std::vector<NodeId> staged_;
};

}  // namespace snapfwd
