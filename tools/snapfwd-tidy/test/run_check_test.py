#!/usr/bin/env python3
"""Fixture driver for one snapfwd-tidy check.

Runs clang-tidy (with the snapfwd plugin loaded and only the check under
test enabled) over a violation fixture and its clean twin:

  * violation fixture: clang-tidy must exit nonzero, the output must name
    the check, and every `// EXPECT-DIAG: <substring>` annotation in the
    fixture must appear in the output.
  * clean twin: clang-tidy must exit zero and never mention the check.

A fixture that fails to *compile* fails both legs (compile errors do not
name the check), so harness rot is caught instead of silently passing.
"""

import argparse
import re
import subprocess
import sys

EXPECT_RE = re.compile(r"//\s*EXPECT-DIAG:\s*(.+?)\s*$")


def run_tidy(args, source):
    cmd = [
        args.clang_tidy,
        f"-load={args.plugin}",
        f"--checks=-*,{args.check}",
        f"--warnings-as-errors={args.check}",
        "--quiet",
        source,
        "--",
    ] + args.flags
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def expected_diags(path):
    with open(path, encoding="utf-8") as f:
        return [m.group(1) for m in map(EXPECT_RE.search, f) if m]


def fail(title, output):
    print(f"FAIL: {title}", file=sys.stderr)
    print(output, file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang-tidy", required=True)
    parser.add_argument("--plugin", required=True)
    parser.add_argument("--check", required=True)
    parser.add_argument("--violation", required=True)
    parser.add_argument("--clean", required=True)
    parser.add_argument("flags", nargs="*", help="compiler flags after --")
    args = parser.parse_args()

    expects = expected_diags(args.violation)
    if not expects:
        return fail(f"{args.violation} has no EXPECT-DIAG annotations", "")

    rc, out = run_tidy(args, args.violation)
    if rc == 0:
        return fail(f"{args.check}: violation fixture passed clang-tidy", out)
    if args.check not in out:
        return fail(
            f"{args.check}: nonzero exit but no [{args.check}] diagnostic "
            "(compile error in fixture?)", out)
    for expect in expects:
        if expect not in out:
            return fail(
                f"{args.check}: missing expected diagnostic text: {expect}",
                out)

    rc, out = run_tidy(args, args.clean)
    if rc != 0:
        return fail(f"{args.check}: clean twin rejected", out)
    if args.check in out:
        return fail(f"{args.check}: clean twin produced diagnostics", out)

    print(f"PASS: {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
