#pragma once
// snapfwd-guard-purity
//
// The state model's proofs assume guard evaluation is a pure read of the
// current configuration (core/protocol.hpp: enumerateEnabled "must be
// const and thread-safe ... pure read"). The runtime auditor enforces this
// on executed paths; this check enforces the structural half on every
// path:
//
//   - guard methods (enumerateEnabled / anyEnabled overrides and guard*
//     helpers) of a snapfwd::GuardSource subclass must be declared const;
//   - a guard method must not mutate observable state: no
//     CheckedStore::write/rawMutable/assign/resize, no auditWrite /
//     notifyExternalMutation, no const_cast, no write to a data member,
//     and no call to a non-const member of the same class.
//
// Options:
//   GuardMethods      - ';'-separated method names always treated as
//                       guards (default: enumerateEnabled;anyEnabled)
//   GuardMethodPrefix - helper-name prefix treated as guard code
//                       (default: guard)
//   ExcludedMethods   - guard-prefixed names that are NOT guard predicates
//                       (default: guardKernels;guardMutation - the kernel
//                       registration hook and the test-mutation getter)

#include "clang-tidy/ClangTidyCheck.h"

#include <string>

namespace clang {
namespace tidy {
namespace snapfwd {

class GuardPurityCheck : public ClangTidyCheck {
public:
  GuardPurityCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  const std::string GuardMethods;
  const std::string GuardMethodPrefix;
  const std::string ExcludedMethods;
};

}  // namespace snapfwd
}  // namespace tidy
}  // namespace clang
