#pragma once
// snapfwd-commit-writeset
//
// Protocol::commit(std::vector<NodeId>& written) must report every
// processor whose observable variables it wrote: the engine's incremental
// scheduler re-evaluates exactly the dirty closed neighborhood of that
// set, so an under-reported write silently stales the enabled cache (and
// with it every closure certificate the explorer emits). The runtime
// auditor catches under-reporting on executed paths; this check flags the
// structural extreme on every path: a commit-shaped method that writes
// observable state (CheckedStore::write/rawMutable or auditWrite) without
// ever touching its write-set parameter.
//
// "Commit-shaped" means: a method of a snapfwd::Protocol subclass with a
// non-const lvalue-reference parameter of type std::vector<integral> -
// the write-set out-parameter convention shared by commit() and its
// helpers (commitOne etc. receive the same vector by reference). Passing
// the parameter to a helper counts as touching it, so only a commit path
// with no way of ever reporting is diagnosed.

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace snapfwd {

class CommitWriteSetCheck : public ClangTidyCheck {
public:
  using ClangTidyCheck::ClangTidyCheck;

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace snapfwd
}  // namespace tidy
}  // namespace clang
