// E3 - Figure 3: the paper's worked execution, regenerated.
//
// Replays the 16 scripted moves on the 4-processor network (a, b, c, d)
// from the corrupted initial configuration (a <-> c routing cycle, invalid
// message with color 0 in bufR_b(b)) and prints every configuration in the
// style of the figure's diagrams, asserting the narration's color
// assignments and the final delivery multiset.

#include <iostream>

#include "checker/spec_checker.hpp"
#include "sim/figure3.hpp"

int main() {
  using namespace snapfwd;
  std::cout << "# E3 / Figure 3: worked execution replay\n\n";
  Figure3Replay replay;

  std::cout << "(0) initial configuration (routing cycle a<->c; '!' marks an\n"
               "    invalid message):\n"
            << replay.renderConfiguration() << "\n";

  const bool ok = replay.run([&](std::size_t, const std::string& description) {
    std::cout << description << "\n" << replay.renderConfiguration() << "\n";
  });

  const SpecReport report = checkSpec(replay.protocol());
  std::cout << "final verdict: " << report.summary() << "\n";
  std::cout << "script matched: " << (replay.scriptMatched() ? "yes" : "no")
            << ", deliveries as in the figure: "
            << (replay.deliveriesCorrect() ? "yes" : "no")
            << ", colors as narrated (1 then 2): "
            << (replay.colorsCorrect() ? "yes" : "no") << "\n";
  if (!ok) {
    std::cout << "REPLAY MISMATCH\n";
    return 1;
  }
  std::cout << "\nPaper claim reproduced: the three messages (one invalid, two\n"
               "valid with colliding useful information) are each delivered\n"
               "exactly once despite the corrupted initial configuration.\n";
  return 0;
}
