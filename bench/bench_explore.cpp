// Exhaustive-exploration throughput and closure sizes (src/explore/).
//
// Closes the Figure 2 corruption set (141 single-variable corruptions of
// the paper's worked instance) under each daemon closure, serial and
// parallel, under BOTH state codecs (canonical text and the compact
// binary codec with fork-from-parent delta stepping), and reports
// states/second, bytes/state, and the closure certificate (exhausted,
// zero violations). Every (model, closure) cell must produce the exact
// same visited/transition/violation counts regardless of codec or thread
// count - any drift fails the bench (non-zero exit), so this doubles as
// a push-button exhaustive regression and as the differential oracle for
// the binary state store. The PIF scramble closure rides along as the
// second model. The exec axis (virtual enumerateEnabled vs guard-kernel
// batches, see core/soa_state.hpp) crosses every cell the same way: the
// explorer builds a fresh Engine per expanded state through the process
// defaults, so closure counts double as a whole-state-space differential
// for kernel evaluation.
//
// Flags:
//   --codec=text|binary     restrict the codec axis (repeatable; default both)
//   --exec=virtual|kernel   restrict the exec axis (repeatable; default both)
//   --perf-report=<path>    write one JSONL record per bench row
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/engine.hpp"
#include "explore/explore.hpp"
#include "explore/models.hpp"
#include "graph/builders.hpp"
#include "sim/sweep.hpp"  // resolveThreadCount
#include "stats/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using snapfwd::ExecMode;
using snapfwd::explore::DaemonClosure;
using snapfwd::explore::StateCodec;

struct Row {
  snapfwd::explore::ExploreResult result;
  double seconds = 0.0;
};

/// Best of `reps` timed runs, so the text-vs-binary speedup below is not
/// dominated by a single unlucky scheduling hiccup.
Row timedExplore(snapfwd::explore::ExploreModel& model,
                 snapfwd::explore::ExploreOptions options,
                 snapfwd::ThreadPool* pool, int reps = 3) {
  Row best;
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    Row row;
    row.result = snapfwd::explore::explore(model, options, pool);
    row.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    if (i == 0 || row.seconds < best.seconds) best = std::move(row);
  }
  return best;
}

double statesPerSec(const Row& row) {
  return static_cast<double>(row.result.stats.visited) /
         std::max(row.seconds, 1e-9);
}

std::uint64_t bytesPerState(const Row& row) {
  const std::uint64_t visited = row.result.stats.visited;
  return visited == 0 ? 0 : row.result.stats.stateBytes / visited;
}

void writePerfRecord(std::ostream& out, std::string_view model,
                     DaemonClosure closure, ExecMode exec, std::size_t threads,
                     const Row& row) {
  using snapfwd::toString;
  const auto& s = row.result.stats;
  out << "{\"bench\":\"explore\",\"model\":\"" << model << "\",\"closure\":\""
      << toString(closure) << "\",\"codec\":\"" << toString(s.codecUsed)
      << "\",\"exec\":\"" << toString(exec) << "\",\"threads\":" << threads << ",\"visited\":" << s.visited
      << ",\"transitions\":" << s.transitions << ",\"violations\":"
      << row.result.violations.size() << ",\"exhausted\":"
      << (s.exhausted ? "true" : "false") << ",\"seconds\":" << row.seconds
      << ",\"states_per_sec\":" << statesPerSec(row) << ",\"state_bytes\":"
      << s.stateBytes << ",\"arena_bytes\":" << s.arenaBytes
      << ",\"bytes_per_state\":" << bytesPerState(row) << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snapfwd;

  std::vector<StateCodec> codecs;
  std::vector<ExecMode> execModes;
  std::string perfReportPath;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--codec=", 0) == 0) {
      const auto parsed = parseEnum<StateCodec>(arg.substr(8));
      if (!parsed) {
        std::cerr << "error: --codec needs one of " << enumNameList<StateCodec>()
                  << "\n";
        return 2;
      }
      codecs.push_back(*parsed);
    } else if (arg.rfind("--exec=", 0) == 0) {
      const auto parsed = parseEnum<ExecMode>(arg.substr(7));
      if (!parsed) {
        std::cerr << "error: --exec needs one of " << enumNameList<ExecMode>()
                  << "\n";
        return 2;
      }
      execModes.push_back(*parsed);
    } else if (arg.rfind("--perf-report=", 0) == 0) {
      perfReportPath = arg.substr(14);
    } else {
      std::cerr << "usage: bench_explore [--codec=text|binary ...]"
                   " [--exec=virtual|kernel ...] [--perf-report=<path>]\n";
      return 2;
    }
  }
  if (codecs.empty()) codecs = {StateCodec::kText, StateCodec::kBinary};
  if (execModes.empty()) execModes = {ExecMode::kVirtual, ExecMode::kKernel};

  std::cout << "# Exhaustive exploration: closure sizes and throughput\n\n";

  // At least 4 workers even on small machines, so the serial-vs-parallel
  // equality check below is never vacuous.
  const std::size_t hw = std::max<std::size_t>(resolveThreadCount(0), 4);
  Table table("Figure 2 corruption closure (141 starts) + PIF scramble closure",
              {"model", "closure", "codec", "exec", "threads", "visited",
               "transitions", "depth", "states/s", "bytes/state", "exhausted",
               "violations"});

  bool allClean = true;
  // Differential oracle: every run of the same (model, closure) cell -
  // regardless of codec or thread count - must agree on all three counts.
  using CountKey = std::pair<std::string, DaemonClosure>;
  using Counts = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;
  std::map<CountKey, Counts> expected;
  bool countsAgree = true;
  // Serial virtual-exec figure2-corruptions states/s per codec, for the
  // speedup line.
  std::map<StateCodec, double> serialRate;

  std::ofstream perfFile;
  std::ostream* perf = nullptr;
  if (!perfReportPath.empty()) {
    perfFile.open(perfReportPath);
    if (!perfFile) {
      std::cerr << "error: cannot write '" << perfReportPath << "'\n";
      return 2;
    }
    perf = &perfFile;
  }

  auto runCell = [&](explore::ExploreModel& model, DaemonClosure closure,
                     StateCodec codec, ExecMode exec, std::size_t threads) {
    // The explorer instantiates engines through the process defaults.
    const ScopedEngineDefaults execGuard(EngineOptions{.execMode = exec});
    explore::ExploreOptions options;
    options.closure = closure;
    options.codec = codec;
    options.threads = threads;
    ThreadPool pool(threads > 1 ? threads : 0);
    const Row row = timedExplore(model, options, threads > 1 ? &pool : nullptr);

    const auto& s = row.result.stats;
    allClean &= s.exhausted && row.result.violations.empty();
    const Counts counts{s.visited, s.transitions, row.result.violations.size()};
    const auto [it, inserted] =
        expected.try_emplace({std::string(model.name()), closure}, counts);
    if (!inserted) countsAgree &= it->second == counts;
    table.addRow({std::string(model.name()), toString(closure),
                  std::string(toString(s.codecUsed)),
                  std::string(toString(exec)), Table::num(threads),
                  Table::num(s.visited), Table::num(s.transitions),
                  Table::num(s.depthReached),
                  Table::num(static_cast<std::uint64_t>(statesPerSec(row))),
                  Table::num(bytesPerState(row)), Table::yesNo(s.exhausted),
                  Table::num(row.result.violations.size())});
    if (perf != nullptr) {
      writePerfRecord(*perf, model.name(), closure, exec, threads, row);
    }
    return row;
  };

  for (const DaemonClosure closure :
       {DaemonClosure::kCentral, DaemonClosure::kSynchronous,
        DaemonClosure::kDistributed}) {
    for (const StateCodec codec : codecs) {
      for (const ExecMode exec : execModes) {
        for (const std::size_t threads : {std::size_t{1}, hw}) {
          auto model = explore::SsmfpExploreModel::figure2CorruptionClosure();
          const Row row = runCell(model, closure, codec, exec, threads);
          if (closure == DaemonClosure::kCentral && threads == 1 &&
              exec == ExecMode::kVirtual) {
            serialRate[row.result.stats.codecUsed] = statesPerSec(row);
          }
        }
      }
    }
  }

  {
    const Graph tree = topo::star(4);  // the Figure 2 spanning tree shape
    for (const StateCodec codec : codecs) {
      for (const ExecMode exec : execModes) {
        auto pif = explore::PifExploreModel::scrambleClosure(tree, 0);
        runCell(pif, DaemonClosure::kDistributed, codec, exec, 1);
      }
    }
  }

  table.printMarkdown(std::cout);
  std::cout << "all closures exhausted with zero violations: "
            << (allClean ? "yes" : "NO") << "\n"
            << "identical counts across codecs, exec modes and thread counts: "
            << (countsAgree ? "yes" : "NO") << "\n";
  if (serialRate.count(StateCodec::kText) != 0 &&
      serialRate.count(StateCodec::kBinary) != 0 &&
      serialRate[StateCodec::kText] > 0.0) {
    std::cout << "binary/text serial speedup (figure2-corruptions, central): "
              << static_cast<std::uint64_t>(serialRate[StateCodec::kBinary] /
                                            serialRate[StateCodec::kText])
              << "x\n";
  }
  if (perf != nullptr) {
    std::cout << "perf report written to " << perfReportPath << "\n";
  }

  std::cout << "\nEvery row is a universal statement over its daemon class on\n"
               "the paper's own instance: no reachable state, under any\n"
               "schedule, violates the checker invariants or the terminal\n"
               "delivery conditions.\n";
  return (allClean && countsAgree) ? 0 : 1;
}
