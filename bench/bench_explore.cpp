// Exhaustive-exploration throughput and closure sizes (src/explore/).
//
// Closes the Figure 2 corruption set (141 single-variable corruptions of
// the paper's worked instance) under each daemon closure, serial and
// parallel, and reports states/second plus the closure certificate
// (exhausted, zero violations). The parallel frontier must visit exactly
// the serial state set - any drift fails the bench (non-zero exit), so
// this doubles as a push-button exhaustive regression. The PIF scramble
// closure rides along as the second model.

#include <algorithm>
#include <chrono>
#include <iostream>

#include "explore/explore.hpp"
#include "explore/models.hpp"
#include "graph/builders.hpp"
#include "sim/sweep.hpp"  // resolveThreadCount
#include "stats/table.hpp"
#include "util/thread_pool.hpp"

namespace {

struct Row {
  snapfwd::explore::ExploreResult result;
  double seconds = 0.0;
};

Row timedExplore(snapfwd::explore::ExploreModel& model,
                 snapfwd::explore::ExploreOptions options,
                 snapfwd::ThreadPool* pool) {
  const auto start = std::chrono::steady_clock::now();
  Row row;
  row.result = snapfwd::explore::explore(model, options, pool);
  row.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return row;
}

}  // namespace

int main() {
  using namespace snapfwd;
  using explore::DaemonClosure;
  std::cout << "# Exhaustive exploration: closure sizes and throughput\n\n";

  // At least 4 workers even on small machines, so the serial-vs-parallel
  // equality check below is never vacuous.
  const std::size_t hw = std::max<std::size_t>(resolveThreadCount(0), 4);
  Table table("Figure 2 corruption closure (141 starts) + PIF scramble closure",
              {"model", "closure", "threads", "visited", "transitions",
               "depth", "states/s", "exhausted", "violations"});

  bool allClean = true;
  std::uint64_t serialVisited = 0;
  bool serialParallelAgree = true;

  for (const DaemonClosure closure :
       {DaemonClosure::kCentral, DaemonClosure::kSynchronous,
        DaemonClosure::kDistributed}) {
    for (const std::size_t threads : {std::size_t{1}, hw}) {
      auto model = explore::SsmfpExploreModel::figure2CorruptionClosure();
      explore::ExploreOptions options;
      options.closure = closure;
      options.threads = threads;
      ThreadPool pool(threads > 1 ? threads : 0);
      const Row row =
          timedExplore(model, options, threads > 1 ? &pool : nullptr);

      const bool clean =
          row.result.stats.exhausted && row.result.violations.empty();
      allClean &= clean;
      if (threads == 1) {
        serialVisited = row.result.stats.visited;
      } else {
        serialParallelAgree &= row.result.stats.visited == serialVisited;
      }
      table.addRow({std::string(model.name()), toString(closure), Table::num(threads),
                    Table::num(row.result.stats.visited),
                    Table::num(row.result.stats.transitions),
                    Table::num(row.result.stats.depthReached),
                    Table::num(static_cast<std::uint64_t>(
                        row.result.stats.visited / std::max(row.seconds, 1e-9))),
                    Table::yesNo(row.result.stats.exhausted),
                    Table::num(row.result.violations.size())});
    }
  }

  {
    const Graph tree = topo::star(4);  // the Figure 2 spanning tree shape
    auto pif = explore::PifExploreModel::scrambleClosure(tree, 0);
    explore::ExploreOptions options;
    options.closure = DaemonClosure::kDistributed;
    const Row row = timedExplore(pif, options, nullptr);
    const bool clean =
        row.result.stats.exhausted && row.result.violations.empty();
    allClean &= clean;
    table.addRow({std::string(pif.name()), toString(options.closure), Table::num(std::uint64_t{1}),
                  Table::num(row.result.stats.visited),
                  Table::num(row.result.stats.transitions),
                  Table::num(row.result.stats.depthReached),
                  Table::num(static_cast<std::uint64_t>(
                      row.result.stats.visited / std::max(row.seconds, 1e-9))),
                  Table::yesNo(row.result.stats.exhausted),
                  Table::num(row.result.violations.size())});
  }

  table.printMarkdown(std::cout);
  std::cout << "all closures exhausted with zero violations: "
            << (allClean ? "yes" : "NO") << "\n"
            << "parallel frontier visits the serial state set: "
            << (serialParallelAgree ? "yes" : "NO") << "\n";

  std::cout << "\nEvery row is a universal statement over its daemon class on\n"
               "the paper's own instance: no reachable state, under any\n"
               "schedule, violates the checker invariants or the terminal\n"
               "delivery conditions.\n";
  return (allClean && serialParallelAgree) ? 0 : 1;
}
