// E18 - the conclusion's drawback, quantified: "when a message m is
// delivered to a processor p, p cannot determine if m is valid or not."
//
// The receiver sees only the useful information. We measure, over
// corrupted-start runs, how many deliveries are garbage and - the crux -
// how many of those garbage deliveries are byte-identical to some valid
// delivery at the same destination (truly indistinguishable even to an
// oracle comparing payloads). With small payload spaces most garbage is
// indistinguishable, which is why the paper calls for a follow-up
// protocol (and why our checker needs hidden trace ids at all).

#include <iostream>
#include <map>
#include <set>

#include "core/engine.hpp"
#include "routing/selfstab_bfs.hpp"
#include "sim/runner.hpp"
#include "stats/table.hpp"

int main() {
  using namespace snapfwd;
  std::cout << "# E18: the validity-detection drawback, quantified\n\n";

  Table table("20 corrupted-start runs per row, uniform traffic",
              {"payload space", "valid deliveries", "garbage deliveries",
               "garbage colliding with valid traffic", "collision rate"});

  for (const Payload payloadSpace : {2ull, 4ull, 16ull, 1024ull}) {
    // The runner's summary lacks per-delivery payloads, so run the raw
    // stack directly and inspect the delivery records.
    std::uint64_t exactGarbage = 0, exactCollide = 0, exactValid = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      ExperimentConfig cfg;
      cfg.topo.kind = TopologyKind::kRandomConnected;
      cfg.topo.n = 8;
      cfg.seed = seed;
      cfg.daemon = DaemonKind::kDistributedRandom;
      cfg.messageCount = 16;
      cfg.payloadSpace = payloadSpace;
      cfg.corruption.routingFraction = 1.0;
      cfg.corruption.invalidMessages = 12;
      cfg.corruption.payloadSpace = payloadSpace;
      Rng rng(cfg.seed);
      Rng topoRng = rng.fork(0x7070);
      const Graph graph = buildTopology(cfg, topoRng);
      SelfStabBfsRouting routing(graph);
      SsmfpProtocol proto(graph, routing);
      Rng faultRng = rng.fork(0xFA17);
      applyCorruption(cfg.corruption, routing, proto, faultRng);
      Rng trafficRng = rng.fork(0x7AFF);
      submitAll(proto, makeTraffic(cfg, graph.size(), trafficRng));
      auto daemon = makeDaemon(cfg.daemon, cfg.daemonProbability, rng);
      Engine engine(graph, {&routing, &proto}, *daemon);
      proto.attachEngine(&engine);
      engine.run(cfg.maxSteps);

      std::map<NodeId, std::set<Payload>> validPayloadsAt;
      for (const auto& rec : proto.deliveries()) {
        if (rec.msg.valid) {
          ++exactValid;
          validPayloadsAt[rec.at].insert(rec.msg.payload);
        }
      }
      for (const auto& rec : proto.deliveries()) {
        if (rec.msg.valid) continue;
        ++exactGarbage;
        if (validPayloadsAt[rec.at].count(rec.msg.payload) != 0) {
          ++exactCollide;
        }
      }
    }
    const double rate = exactGarbage == 0
                            ? 0.0
                            : static_cast<double>(exactCollide) /
                                  static_cast<double>(exactGarbage);
    table.addRow({Table::num(std::uint64_t{payloadSpace}),
                  Table::num(exactValid), Table::num(exactGarbage),
                  Table::num(exactCollide), Table::num(100.0 * rate, 1) + "%"});
  }
  table.printMarkdown(std::cout);
  std::cout << "\nPaper's drawback confirmed: with realistic (small) payload\n"
               "entropy a large share of garbage deliveries is byte-identical\n"
               "to legitimate traffic at the same destination - no local test\n"
               "can reject them. (SSMFP still guarantees the VALID copies are\n"
               "delivered exactly once; the application-level validity question\n"
               "is the open follow-up the conclusion describes.)\n";
  return 0;
}
