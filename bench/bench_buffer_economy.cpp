// Ablation - buffer economy across deadlock-free controllers (the
// conclusion's discussion: the acyclic-covering buffer graph needs far
// fewer buffers per processor - 2 for a tree, small constant for a ring -
// but cannot stabilize and is NP-hard to size for general graphs).
//
// Three comparisons on identical workloads:
//   1. buffers per processor: orientation scheme (k), destination-based
//      baseline (n), SSMFP (2n);
//   2. correctness: all three satisfy exactly-once from clean starts;
//   3. the deadlock-freedom content of acyclicity: a naive single-class
//      ring (cyclic buffer graph) deadlocks under saturation where the
//      2-class dateline cover drains.

#include <iostream>
#include <unordered_map>

#include "baseline/orientation_forwarding.hpp"
#include "core/engine.hpp"
#include "graph/builders.hpp"
#include "sim/runner.hpp"
#include "stats/table.hpp"

namespace {

using namespace snapfwd;

/// Deliberately broken cover: one class, dateline included -> the buffer
/// graph is the full directed ring cycle.
class NaiveRingScheme final : public BufferClassScheme {
 public:
  explicit NaiveRingScheme(std::size_t n) : n_(n) {}
  std::string_view name() const override { return "ring-naive"; }
  std::size_t classCount() const override { return 1; }
  std::size_t initialClass(NodeId, NodeId) const override { return 0; }
  std::optional<std::size_t> classAfterHop(NodeId u, NodeId v,
                                           std::size_t cls) const override {
    return (u + 1) % n_ == v ? std::optional<std::size_t>{cls} : std::nullopt;
  }

 private:
  std::size_t n_;
};

struct RunStats {
  bool drained = false;
  std::size_t delivered = 0;
  std::size_t expected = 0;
  std::uint64_t steps = 0;
};

template <typename SchemeT, typename RoutingT>
RunStats runOrientation(const Graph& g, RoutingT& routing, SchemeT& scheme,
                        int waves, std::uint64_t seed) {
  OrientationForwardingProtocol proto(g, routing, scheme);
  RunStats stats;
  for (int w = 0; w < waves; ++w) {
    for (NodeId s = 0; s < g.size(); ++s) {
      for (NodeId d = 0; d < g.size(); ++d) {
        if (s != d) {
          proto.send(s, d, s * 100 + d);
          ++stats.expected;
        }
      }
    }
  }
  Rng rng(seed);
  DistributedRandomDaemon daemon(rng, 0.5);
  Engine engine(g, {&proto}, daemon);
  proto.attachEngine(&engine);
  engine.run(3'000'000);
  stats.drained = proto.fullyDrained();
  stats.delivered = proto.deliveries().size();
  stats.steps = engine.stepCount();
  return stats;
}

}  // namespace

int main() {
  std::cout << "# Ablation: buffer economy of deadlock-free controllers\n\n";

  // --- 1 & 2: buffers per processor + correctness on identical nets -----
  Table economy("Buffers per processor, all-pairs workload, clean start",
                {"network", "scheme", "buffers/processor", "stabilizing",
                 "drained", "delivered/expected"});

  {
    const Graph tree = topo::binaryTree(7);
    TreeUpDownScheme scheme(tree, 0);
    TreePathRouting routing(tree, scheme);
    const RunStats s = runOrientation(tree, routing, scheme, 1, 11);
    economy.addRow({"tree(7)", "acyclic-cover (up/down)", "2", "no",
                    Table::yesNo(s.drained),
                    Table::num(std::uint64_t{s.delivered}) + "/" +
                        Table::num(std::uint64_t{s.expected})});
  }
  {
    const Graph ring = topo::ring(6);
    UnidirectionalRingScheme scheme(6);
    ClockwiseRingRouting routing(6);
    const RunStats s = runOrientation(ring, routing, scheme, 1, 12);
    economy.addRow({"ring(6)", "acyclic-cover (dateline)", "2", "no",
                    Table::yesNo(s.drained),
                    Table::num(std::uint64_t{s.delivered}) + "/" +
                        Table::num(std::uint64_t{s.expected})});
  }
  for (const bool tree : {true, false}) {
    ExperimentConfig cfg;
    cfg.topo.kind = tree ? TopologyKind::kBinaryTree : TopologyKind::kRing;
    cfg.topo.n = tree ? 7 : 6;
    cfg.seed = 13;
    cfg.daemon = DaemonKind::kDistributedRandom;
    cfg.traffic = TrafficKind::kPermutation;
    const char* net = tree ? "tree(7)" : "ring(6)";
    const ExperimentResult base = runBaselineExperiment(cfg);
    economy.addRow({net, "destination-based (Fig.1)",
                    Table::num(std::uint64_t{cfg.topo.n}), "no",
                    Table::yesNo(base.quiescent),
                    Table::num(base.spec.validDelivered) + "/" +
                        Table::num(base.spec.validGenerated)});
    const ExperimentResult ssmfp = runSsmfpExperiment(cfg);
    economy.addRow({net, "SSMFP (Fig.2)", Table::num(std::uint64_t{2 * cfg.topo.n}),
                    "SNAP", Table::yesNo(ssmfp.quiescent),
                    Table::num(ssmfp.spec.validDelivered) + "/" +
                        Table::num(ssmfp.spec.validGenerated)});
  }
  economy.printMarkdown(std::cout);

  // --- 3: acyclicity is what prevents deadlock --------------------------
  Table deadlock("Saturated ring(6), 3 all-pairs waves (90 msgs)",
                 {"scheme", "classes", "buffer graph", "drained", "delivered"});
  const Graph ring = topo::ring(6);
  ClockwiseRingRouting routing(6);
  bool coverDrained = false, naiveStuck = false;
  {
    UnidirectionalRingScheme scheme(6);
    const RunStats s = runOrientation(ring, routing, scheme, 3, 14);
    coverDrained = s.drained;
    deadlock.addRow({"dateline cover", "2", "acyclic", Table::yesNo(s.drained),
                     Table::num(std::uint64_t{s.delivered})});
  }
  {
    NaiveRingScheme scheme(6);
    const RunStats s = runOrientation(ring, routing, scheme, 3, 14);
    naiveStuck = !s.drained;
    deadlock.addRow({"naive single class", "1", "CYCLIC",
                     Table::yesNo(s.drained),
                     Table::num(std::uint64_t{s.delivered})});
  }
  deadlock.printMarkdown(std::cout);

  std::cout << "acyclic cover drained: " << (coverDrained ? "yes" : "NO")
            << "; naive cyclic scheme wedged: " << (naiveStuck ? "yes" : "NO")
            << "\n";
  std::cout << "\nConclusion's trade-off, measured: the acyclic-covering\n"
               "controller needs only k=2 buffers per processor on trees and\n"
               "unidirectional rings (vs n and 2n), but offers no stabilization\n"
               "story, and sizing k is NP-hard in general [Kralovic-Ruzicka].\n"
               "SSMFP pays 2n buffers and in exchange is snap-stabilizing.\n";
  return (coverDrained && naiveStuck) ? 0 : 1;
}
