// Scaling study - delivery latency and amortized cost vs network size.
//
// The figure-style companion to Props. 5 and 7: for growing rings, paths
// and grids (D grows linearly / with sqrt(n)), measure mean +/- stddev of
// per-message delivery latency and the amortized rounds/delivery over 5
// seeds each, from fully corrupted starts. The Theta(D) shape shows as the
// latency/D and amortized/D columns staying flat while n quadruples.

#include <iostream>

#include "sim/runner.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int main() {
  using namespace snapfwd;
  std::cout << "# Scaling: latency and amortized cost vs network size\n\n";

  Table table("Corrupted start, permutation traffic, 5 seeds per row",
              {"topology", "n", "D", "avg latency (mean+/-sd)", "latency/D",
               "amortized (mean)", "amortized/D", "SP all"});

  struct Row {
    TopologyKind topology;
    std::size_t n;
    std::size_t rows, cols;
  };
  const Row rows[] = {
      {TopologyKind::kRing, 6, 0, 0},   {TopologyKind::kRing, 12, 0, 0},
      {TopologyKind::kRing, 24, 0, 0},  {TopologyKind::kPath, 6, 0, 0},
      {TopologyKind::kPath, 12, 0, 0},  {TopologyKind::kPath, 24, 0, 0},
      {TopologyKind::kGrid, 9, 3, 3},   {TopologyKind::kGrid, 16, 4, 4},
      {TopologyKind::kGrid, 25, 5, 5},
  };
  for (const auto& row : rows) {
    Summary latency, amortized;
    std::uint32_t diameter = 0;
    bool allSp = true;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      ExperimentConfig cfg;
      cfg.topo.kind = row.topology;
      cfg.topo.n = row.n;
      cfg.topo.rows = row.rows;
      cfg.topo.cols = row.cols;
      cfg.seed = seed;
      cfg.daemon = DaemonKind::kDistributedRandom;
      cfg.traffic = TrafficKind::kPermutation;
      cfg.corruption.routingFraction = 1.0;
      cfg.maxSteps = 6'000'000;
      const ExperimentResult r = runSsmfpExperiment(cfg);
      allSp &= r.quiescent && r.spec.satisfiesSp();
      latency.add(r.avgDeliveryRounds);
      amortized.add(r.amortizedRoundsPerDelivery);
      diameter = r.graphDiameter;
    }
    const double d = static_cast<double>(diameter);
    table.addRow({toString(row.topology), Table::num(std::uint64_t{row.n}),
                  Table::num(std::uint64_t{diameter}),
                  Table::num(latency.mean(), 1) + " +/- " +
                      Table::num(latency.stddev(), 1),
                  Table::num(latency.mean() / d, 2),
                  Table::num(amortized.mean(), 2),
                  Table::num(amortized.mean() / d, 2), Table::yesNo(allSp)});
    if (!allSp) {
      table.printMarkdown(std::cout);
      std::cout << "SP VIOLATION in scaling sweep\n";
      return 1;
    }
  }
  table.printMarkdown(std::cout);
  std::cout << "\nShape check: latency/D and amortized/D stay O(1) while n\n"
               "quadruples - the Theta(D) claim of Props. 5 (in practice) and 7.\n";
  return 0;
}
