// E13 - engine exec-mode throughput: virtual dispatch vs guard kernels,
// crossed with scan mode, plus the differential gate that keeps the two
// execution paths step-identical.
//
// google-benchmark microbenchmarks cover the dense regime (moderate n,
// corrupted routing, full SSMFP stack). Run with --exec-report[=path] to
// skip google-benchmark and write the archived sparse-activity comparison
// (n = 1024, frozen routing, 8 in-flight messages - the incremental
// scheduler's home turf) as JSON instead. The report exits non-zero when
//
//   * any (scan, exec) cell executes a different number of steps than the
//     others on the same topology (exit 2): kernels must be a pure
//     execution-strategy change, never a semantic one; or
//   * kernel+incremental fails to reach 3x the archived virtual-exec
//     incremental steps/sec from BENCH_engine_scanmode.json (exit 1), so
//     the kernel path's advantage cannot silently regress.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"
#include "graph/builders.hpp"
#include "routing/frozen.hpp"
#include "routing/selfstab_bfs.hpp"
#include "ssmfp/ssmfp.hpp"
#include "util/rng.hpp"

namespace {

using namespace snapfwd;

Graph makeTopology(int kind, std::size_t n, Rng& rng) {
  switch (kind) {
    case 0: return topo::ring(n);
    case 1: {
      std::size_t side = 1;
      while (side * side < n) ++side;
      return topo::grid(side, side);
    }
    default: return topo::randomConnected(n, n / 4, rng);
  }
}

const char* topologyName(int kind) {
  switch (kind) {
    case 0: return "ring";
    case 1: return "grid";
    default: return "random-connected";
  }
}

// ---------------------------------------------------------------------------
// google-benchmark section: dense regime, kernel vs virtual.
// ---------------------------------------------------------------------------

void runDense(benchmark::State& state, ExecMode exec) {
  const int topoKind = static_cast<int>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  Rng topoRng(42);
  const Graph graph = makeTopology(topoKind, n, topoRng);

  for (auto _ : state) {
    state.PauseTiming();
    SelfStabBfsRouting routing(graph);
    std::vector<NodeId> dests{0, static_cast<NodeId>(graph.size() / 2)};
    SsmfpProtocol forwarding(graph, routing, dests);
    Rng faultRng(7);
    routing.corrupt(faultRng, 0.5);
    for (NodeId p = 1; p < graph.size(); ++p) forwarding.send(p, 0, p);
    Rng daemonRng(43);
    DistributedRandomDaemon daemon(daemonRng.fork(1), 0.5);
    Engine engine(graph, {&routing, &forwarding}, daemon, nullptr,
                  EngineOptions{.scanMode = ScanMode::kIncremental,
                                .execMode = exec});
    forwarding.attachEngine(&engine);
    state.ResumeTiming();

    const std::uint64_t executed = engine.run(500);
    benchmark::DoNotOptimize(executed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 500);
  state.SetLabel(std::string(topologyName(topoKind)) + "/" +
                 std::string(toString(exec)));
}

void BM_EngineExecVirtual(benchmark::State& state) {
  runDense(state, ExecMode::kVirtual);
}

void BM_EngineExecKernel(benchmark::State& state) {
  runDense(state, ExecMode::kKernel);
}

BENCHMARK(BM_EngineExecVirtual)->Args({0, 128})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineExecKernel)->Args({0, 128})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineExecVirtual)->Args({2, 128})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineExecKernel)->Args({2, 128})->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --exec-report section: the sparse regime, byte-for-byte the workload of
// bench_engine_throughput's --scanmode-report (same topology seeds, same
// sends, same daemon stream), so the archived numbers are comparable.
// ---------------------------------------------------------------------------

struct CellMeasurement {
  std::uint64_t stepsPerRun = 0;  // identical across reps (deterministic)
  std::uint64_t reps = 0;
  double bestSeconds = 0.0;  // fastest rep
  double stepsPerSec = 0.0;  // from the fastest rep
  double guardEvalsPerStep = 0.0;
};

/// One (scan, exec) cell. The protocol/engine stack is rebuilt per
/// repetition (the run consumes it), but the routing tables are shared
/// across reps and cells - rebuilding them is ~1024 BFS sweeps that both
/// dwarf the measured runs and trash the caches between timed slices. The
/// sparse runs quiesce in well under 30k steps, so single runs are short;
/// the gate reads the FASTEST rep: contention on a shared host only ever
/// slows a run down, so best-of-N is the honest throughput statistic for
/// a regression gate.
CellMeasurement measureSparse(const Graph& graph, const FrozenRouting& routing,
                              ScanMode scan, ExecMode exec,
                              std::uint64_t maxSteps) {
  constexpr int kWarmupReps = 2;
  // Reps are sub-millisecond-to-millisecond (the sparse runs quiesce
  // quickly), so a large rep count costs little and makes best-of robust
  // against scheduler interference on busy hosts.
  constexpr int kTimedReps = 101;
  CellMeasurement m;
  std::vector<double> repSeconds;
  std::uint64_t guardEvals = 0;
  for (int rep = 0; rep < kWarmupReps + kTimedReps; ++rep) {
    std::vector<NodeId> dests{0, static_cast<NodeId>(graph.size() / 2)};
    SsmfpProtocol forwarding(graph, routing, dests);
    for (NodeId src = 1; src <= 8; ++src) {
      forwarding.send(static_cast<NodeId>(src * graph.size() / 9), 0,
                      static_cast<Payload>(src));
    }
    Rng daemonRng(77);
    DistributedRandomDaemon daemon(daemonRng.fork(1), 0.5);
    Engine engine(graph, {&forwarding}, daemon, nullptr,
                  EngineOptions{.scanMode = scan, .execMode = exec});
    forwarding.attachEngine(&engine);

    const auto start = std::chrono::steady_clock::now();
    engine.run(maxSteps);
    const auto stop = std::chrono::steady_clock::now();

    if (rep == 0) {
      m.stepsPerRun = engine.stepCount();
    } else if (m.stepsPerRun != engine.stepCount()) {
      std::cerr << "nondeterministic repetition: " << m.stepsPerRun << " vs "
                << engine.stepCount() << " steps\n";
      std::exit(2);
    }
    if (rep < kWarmupReps) continue;
    repSeconds.push_back(std::chrono::duration<double>(stop - start).count());
    guardEvals += engine.scanStats().guardEvals;
    ++m.reps;
  }
  m.bestSeconds = *std::min_element(repSeconds.begin(), repSeconds.end());
  m.stepsPerSec = m.bestSeconds > 0.0
                      ? static_cast<double>(m.stepsPerRun) / m.bestSeconds
                      : 0.0;
  const std::uint64_t totalSteps = m.stepsPerRun * m.reps;
  m.guardEvalsPerStep =
      totalSteps == 0
          ? 0.0
          : static_cast<double>(guardEvals) / static_cast<double>(totalSteps);
  return m;
}

void appendCell(std::ostringstream& out, ScanMode scan, ExecMode exec,
                const CellMeasurement& m) {
  out << "{\"scan\":\"" << toString(scan) << "\",\"exec\":\"" << toString(exec)
      << "\",\"steps\":" << m.stepsPerRun << ",\"reps\":" << m.reps
      << ",\"bestRunSeconds\":" << m.bestSeconds
      << ",\"stepsPerSec\":" << m.stepsPerSec
      << ",\"guardEvalsPerStep\":" << m.guardEvalsPerStep << "}";
}

int writeExecReport(const std::string& path) {
  constexpr std::size_t kN = 1024;
  constexpr std::uint64_t kMaxSteps = 30'000;
  // Archived virtual-exec incremental steps/sec from the committed
  // BENCH_engine_scanmode.json (ring, grid, random-connected). Hardcoded:
  // the gate measures the kernel path against the *recorded* substrate,
  // not against whatever the virtual path does on today's hardware.
  constexpr double kBaselineIncremental[] = {370325.0, 282417.0, 214141.0};
  constexpr double kRequiredSpeedup = 3.0;

  std::ostringstream out;
  out << "{\"experiment\":\"engine-exec-sparse\",\"n\":" << kN
      << ",\"inFlightMessages\":8,\"maxSteps\":" << kMaxSteps
      << ",\"requiredSpeedup\":" << kRequiredSpeedup
      << ",\"baselineSource\":\"BENCH_engine_scanmode.json\",\"topologies\":[";

  bool allFast = true;
  for (int topoKind : {0, 1, 2}) {
    Rng topoRng(42);
    const Graph graph = makeTopology(topoKind, kN, topoRng);
    const FrozenRouting routing(graph);  // correct tables: routing layer absent

    CellMeasurement cells[2][2];  // [scan][exec]
    const ScanMode scans[2] = {ScanMode::kFull, ScanMode::kIncremental};
    const ExecMode execs[2] = {ExecMode::kVirtual, ExecMode::kKernel};
    for (int s = 0; s < 2; ++s) {
      for (int e = 0; e < 2; ++e) {
        cells[s][e] = measureSparse(graph, routing, scans[s], execs[e], kMaxSteps);
        // Differential discipline: every cell must execute the identical
        // schedule; a step-count divergence means the kernels changed
        // semantics, which no throughput number can excuse.
        if (cells[s][e].stepsPerRun != cells[0][0].stepsPerRun) {
          std::cerr << "exec-mode divergence on " << topologyName(topoKind)
                    << " (" << toString(scans[s]) << "/" << toString(execs[e])
                    << "): " << cells[s][e].stepsPerRun << " vs "
                    << cells[0][0].stepsPerRun << " steps\n";
          return 2;
        }
      }
    }

    const double kernelInc = cells[1][1].stepsPerSec;
    const double baseline = kBaselineIncremental[topoKind];
    const double speedup = baseline > 0.0 ? kernelInc / baseline : 0.0;
    if (topoKind != 0) out << ",";
    out << "{\"topology\":\"" << topologyName(topoKind)
        << "\",\"graphN\":" << graph.size() << ",\"cells\":[";
    for (int s = 0; s < 2; ++s) {
      for (int e = 0; e < 2; ++e) {
        if (s != 0 || e != 0) out << ",";
        appendCell(out, scans[s], execs[e], cells[s][e]);
      }
    }
    out << "],\"baselineIncrementalStepsPerSec\":" << baseline
        << ",\"kernelIncrementalStepsPerSec\":" << kernelInc
        << ",\"speedupVsBaseline\":" << speedup << "}";
    std::cerr << topologyName(topoKind) << ": virtual/incremental "
              << cells[1][0].stepsPerSec << " steps/s, kernel/incremental "
              << kernelInc << " steps/s, archived baseline " << baseline
              << " steps/s, speedup vs baseline " << speedup << "x\n";
    if (speedup < kRequiredSpeedup) allFast = false;
  }
  out << "]}";

  std::ofstream file(path);
  file << out.str() << "\n";
  if (!file) {
    std::cerr << "cannot write " << path << "\n";
    return 2;
  }
  if (!allFast) {
    std::cerr << "FAIL: kernel/incremental below " << kRequiredSpeedup
              << "x the archived incremental baseline on at least one "
                 "topology\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--exec-report", 0) == 0) {
      const auto eq = arg.find('=');
      const std::string path = eq == std::string_view::npos
                                   ? std::string("BENCH_engine_exec.json")
                                   : std::string(arg.substr(eq + 1));
      return writeExecReport(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
