// Explorer scale run: symmetry + partial-order reduction + out-of-core
// visited set at >= 10^7 states (docs/ARCHITECTURE.md § Explorer reduction
// & out-of-core, EXPERIMENTS.md E23).
//
// Two phases, both exit-code gated:
//
//   Phase A - soundness differentials on E19-size closures. Reduction-off
//   runs must reproduce the BENCH_explore_perf baselines to the state;
//   the symmetry quotient of the orbit-closed ring set must equal the
//   unclosed unreduced space exactly; POR must stay clean and exhausted
//   while shrinking transitions; every guard weakening the full run
//   catches must still be caught under symmetry / por / both; and a
//   mem-budget run must switch to spill with identical counts.
//
//   Phase B - the scale run: the odd-ring corruption closure with
//   stride-sampled corruption pairs AND triples under reduction=both,
//   binary codec, spill store, paths off. Gates: clean + exhausted,
//   > 141 start states (strictly larger than E19/E20), the Proposition 4
//   progress bound maxProgressCount <= 2n machine-checked over every
//   visited state, and (full mode) visited >= 10^7. (Pairs alone
//   saturate near 3.5M - closures from different pairs overlap heavily -
//   so the triple plants carry the bulk of the fresh 3-copy
//   interleavings.)
//
// Flags:
//   --quick             Phase B at pair stride 200 / no triples (~10^5
//                       states, CI-sized); the >= 10^7 gate is waived but
//                       every other gate holds
//   --pair-stride=<k>   override the Phase B pair stride (default 2)
//   --triple-stride=<k> override the Phase B triple stride (default 1500)
//   --out=<path>        JSON report (default BENCH_explore_scale.json)
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "explore/explore.hpp"
#include "explore/models.hpp"
#include "graph/builders.hpp"
#include "stats/table.hpp"

namespace {

using snapfwd::Graph;
using snapfwd::SsmfpGuardMutation;
using snapfwd::Ssmfp2GuardMutation;
using snapfwd::Table;
using snapfwd::explore::DaemonClosure;
using snapfwd::explore::ExploreOptions;
using snapfwd::explore::ExploreResult;
using snapfwd::explore::Reduction;
using snapfwd::explore::RingScaleSpec;
using snapfwd::explore::SsmfpExploreModel;
using snapfwd::explore::Ssmfp2ExploreModel;
using snapfwd::explore::StateCodec;
using snapfwd::explore::StoreKind;

int failures = 0;

void gate(bool ok, const std::string& what) {
  std::cout << (ok ? "  ok   " : "  FAIL ") << what << "\n";
  if (!ok) ++failures;
}

struct Timed {
  ExploreResult result;
  double seconds = 0.0;
};

Timed run(const snapfwd::explore::ExploreModel& model, ExploreOptions options) {
  Timed out;
  const auto begin = std::chrono::steady_clock::now();
  out.result = snapfwd::explore::explore(model, options);
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  return out;
}

ExploreOptions withReduction(Reduction reduction) {
  ExploreOptions options;
  options.reduction = reduction;
  return options;
}

/// Phase A1: the reduction plumbing must be invisible when switched off -
/// every BENCH_explore_perf closure count reproduced exactly.
void baselineDifferential() {
  std::cout << "[A1] reduction-off baselines (BENCH_explore_perf)\n";
  struct Cell {
    DaemonClosure closure;
    std::uint64_t visited, transitions;
  };
  const std::vector<Cell> cells = {
      {DaemonClosure::kCentral, 2328, 4764},
      {DaemonClosure::kSynchronous, 366, 374},
      {DaemonClosure::kDistributed, 2502, 9913},
  };
  for (const Cell& cell : cells) {
    const auto model = SsmfpExploreModel::figure2CorruptionClosure();
    ExploreOptions options;
    options.closure = cell.closure;
    const ExploreResult r = snapfwd::explore::explore(model, options);
    std::ostringstream label;
    label << "ssmfp " << snapfwd::toString(cell.closure) << " " << r.stats.visited << "/"
          << r.stats.transitions;
    gate(r.stats.visited == cell.visited &&
             r.stats.transitions == cell.transitions && r.stats.exhausted &&
             r.clean(),
         label.str());
  }
  const auto pif = snapfwd::explore::PifExploreModel::scrambleClosure(
      snapfwd::topo::star(4), 0);
  ExploreOptions options;
  options.closure = DaemonClosure::kDistributed;
  const ExploreResult r = snapfwd::explore::explore(pif, options);
  std::ostringstream label;
  label << "pif distributed " << r.stats.visited << "/" << r.stats.transitions;
  gate(r.stats.visited == 132 && r.stats.transitions == 454 &&
           r.stats.exhausted && r.clean(),
       label.str());
}

/// Phase A2+A3: quotient exactness and POR on the equivariant ring set.
void quotientDifferential(std::ostream& json) {
  std::cout << "[A2] symmetry quotient exactness\n";
  RingScaleSpec spec;
  spec.withSend = true;
  const SsmfpExploreModel plainModel = SsmfpExploreModel::ringScaleClosure(spec);
  const ExploreResult plain =
      snapfwd::explore::explore(plainModel, withReduction(Reduction::kNone));

  spec.orbitClose = true;
  const SsmfpExploreModel closedModel =
      SsmfpExploreModel::ringScaleClosure(spec);
  const ExploreResult closedFull =
      snapfwd::explore::explore(closedModel, withReduction(Reduction::kNone));
  const ExploreResult quotient = snapfwd::explore::explore(
      closedModel, withReduction(Reduction::kSymmetry));

  gate(plain.stats.exhausted && closedFull.stats.exhausted &&
           quotient.stats.exhausted,
       "all three runs exhausted");
  gate(closedFull.stats.visited > plain.stats.visited,
       "orbit closure enlarges the concrete space (" +
           std::to_string(closedFull.stats.visited) + " > " +
           std::to_string(plain.stats.visited) + ")");
  gate(quotient.stats.visited == plain.stats.visited &&
           quotient.stats.symCanonFolds > 0,
       "quotient(closed) == unreduced(unclosed) == " +
           std::to_string(quotient.stats.visited));

  std::cout << "[A3] POR + codec cross-checks\n";
  spec.orbitClose = false;
  const SsmfpExploreModel porModel = SsmfpExploreModel::ringScaleClosure(spec);
  const ExploreResult por =
      snapfwd::explore::explore(porModel, withReduction(Reduction::kPor));
  gate(por.stats.exhausted && por.clean() && por.stats.amplePicks > 0 &&
           por.stats.transitions < plain.stats.transitions,
       "por clean, exhausted, fewer transitions (" +
           std::to_string(por.stats.transitions) + " < " +
           std::to_string(plain.stats.transitions) + ")");
  ExploreOptions symBinary = withReduction(Reduction::kSymmetry);
  symBinary.codec = StateCodec::kBinary;
  const ExploreResult quotientBinary =
      snapfwd::explore::explore(closedModel, symBinary);
  gate(quotientBinary.stats.visited == quotient.stats.visited,
       "symmetry quotient codec-independent");

  json << "  \"quotient\": {\"unreducedUnclosed\": " << plain.stats.visited
       << ", \"unreducedOrbitClosed\": " << closedFull.stats.visited
       << ", \"symmetryQuotient\": " << quotient.stats.visited
       << ", \"symFolds\": " << quotient.stats.symCanonFolds
       << ", \"porVisited\": " << por.stats.visited
       << ", \"porTransitions\": " << por.stats.transitions
       << ", \"unreducedTransitions\": " << plain.stats.transitions << "},\n";
}

/// Phase A4: every guard weakening the unreduced run catches must still be
/// caught under each requested reduction axis.
void mutationDifferential() {
  std::cout << "[A4] guard-weakening differentials under reduction\n";
  for (const Reduction reduction :
       {Reduction::kSymmetry, Reduction::kPor, Reduction::kBoth}) {
    RingScaleSpec spec;
    spec.withSend = true;
    spec.mutation = SsmfpGuardMutation::kR2SkipUpstreamCheck;
    const auto model = SsmfpExploreModel::ringScaleClosure(spec);
    const ExploreResult r =
        snapfwd::explore::explore(model, withReduction(reduction));
    gate(!r.clean(), std::string("r2 weakening caught under ") +
                         std::string(snapfwd::toString(reduction)));
  }
  // R4 needs a corrupt routing entry (which the equivariant ring set cannot
  // plant - corrupt distances make the repair tie-break label-dependent),
  // so its differential runs on the figure2 closure where POR engages and a
  // symmetry request falls back loudly to the unreduced run.
  for (const Reduction reduction : {Reduction::kPor, Reduction::kBoth}) {
    const auto model = SsmfpExploreModel::figure2CorruptionClosure(
        SsmfpGuardMutation::kR4SkipStrayCopyCheck);
    const ExploreResult r =
        snapfwd::explore::explore(model, withReduction(reduction));
    gate(!r.clean(), std::string("r4 weakening caught under ") +
                         std::string(snapfwd::toString(reduction)));
  }
  const auto ssmfp2 = Ssmfp2ExploreModel::figure2CorruptionClosure(
      Ssmfp2GuardMutation::k2R4SkipStrayCopyCheck);
  const ExploreResult r2r4 =
      snapfwd::explore::explore(ssmfp2, withReduction(Reduction::kPor));
  gate(!r2r4.clean(), "2r4 weakening caught under por");
}

/// Phase A5: a tiny mem budget must switch the store to spill without
/// perturbing a single count.
void spillDifferential() {
  std::cout << "[A5] mem-budget spill switchover\n";
  RingScaleSpec spec;
  spec.withSend = true;
  const auto model = SsmfpExploreModel::ringScaleClosure(spec);
  const ExploreResult ram =
      snapfwd::explore::explore(model, ExploreOptions{});
  ExploreOptions budget;
  budget.memBudgetBytes = 1 << 20;
  const ExploreResult spilled = snapfwd::explore::explore(model, budget);
  gate(spilled.stats.spillActivated && spilled.stats.exhausted,
       "1 MiB budget activates spill");
  gate(spilled.stats.visited == ram.stats.visited &&
           spilled.stats.transitions == ram.stats.transitions,
       "spill counts identical to ram");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::uint64_t pairStride = 2;
  std::uint64_t tripleStride = 1500;
  std::string outPath = "BENCH_explore_scale.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
      pairStride = 200;
      tripleStride = 0;
    } else if (arg.rfind("--pair-stride=", 0) == 0) {
      pairStride = std::stoull(arg.substr(14));
    } else if (arg.rfind("--triple-stride=", 0) == 0) {
      tripleStride = std::stoull(arg.substr(16));
    } else if (arg.rfind("--out=", 0) == 0) {
      outPath = arg.substr(6);
    } else {
      std::cerr << "usage: bench_explore_scale [--quick] [--pair-stride=<k>] "
                   "[--triple-stride=<k>] [--out=<path>]\n";
      return 2;
    }
  }

  std::ostringstream json;
  json << "{\n  \"experiment\": \"explore-scale\",\n";

  baselineDifferential();
  quotientDifferential(json);
  mutationDifferential();
  spillDifferential();

  std::cout << "[B] scale run: ring-5 closure, pair stride " << pairStride
            << ", triple stride " << tripleStride
            << ", reduction=both, binary codec, spill store\n";
  RingScaleSpec spec;
  spec.withSend = true;
  spec.pairStride = pairStride;
  spec.tripleStride = tripleStride;
  const auto begin = std::chrono::steady_clock::now();
  const SsmfpExploreModel model = SsmfpExploreModel::ringScaleClosure(spec);
  const double genSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  ExploreOptions options;
  options.reduction = Reduction::kBoth;
  options.codec = StateCodec::kBinary;
  options.store = StoreKind::kSpill;
  options.trackPaths = false;
  options.maxStates = 100'000'000;
  const Timed scale = run(model, options);
  const auto& s = scale.result.stats;

  const std::uint64_t prop4Bound = 2 * spec.n;  // Proposition 4: <= 2n
  gate(scale.result.clean(), "scale closure clean");
  gate(s.exhausted, "scale closure exhausted (no truncation)");
  gate(s.startStates > 141,
       "start set strictly larger than E19/E20 (" +
           std::to_string(s.startStates) + " > 141)");
  gate(s.maxProgressCount <= prop4Bound,
       "Proposition 4 bound: max invalid deliveries " +
           std::to_string(s.maxProgressCount) + " <= 2n = " +
           std::to_string(prop4Bound));
  gate(!s.reductionFellBack && s.symGroupSize == 10 && s.amplePicks > 0,
       "both reduction axes engaged");
  gate(s.spillActivated && s.spillBytes > 0, "spill store active");
  if (!quick) {
    gate(s.visited >= 10'000'000,
         "visited >= 10^7 (" + std::to_string(s.visited) + ")");
  }

  Table table("explore scale", {"metric", "value"});
  table.addRow({"start states", Table::num(s.startStates)});
  table.addRow({"visited", Table::num(s.visited)});
  table.addRow({"transitions", Table::num(s.transitions)});
  table.addRow({"states/sec", Table::num(s.visited / scale.seconds, 0)});
  table.addRow({"sym folds", Table::num(s.symCanonFolds)});
  table.addRow({"ample picks", Table::num(s.amplePicks)});
  table.addRow({"ample fallbacks", Table::num(s.ampleFallbacks)});
  table.addRow({"state bytes", Table::num(s.stateBytes)});
  table.addRow({"resident bytes", Table::num(s.residentBytes)});
  table.addRow({"spill bytes", Table::num(s.spillBytes)});
  table.addRow({"peak RSS bytes", Table::num(s.peakRssBytes)});
  table.addRow({"max invalid deliveries", Table::num(s.maxProgressCount)});
  table.addRow({"seconds (explore)", Table::num(scale.seconds, 1)});
  table.addRow({"seconds (start gen)", Table::num(genSeconds, 1)});
  table.printMarkdown(std::cout);

  json << "  \"scale\": {\"quick\": " << (quick ? "true" : "false")
       << ", \"ring\": " << spec.n << ", \"pairStride\": " << pairStride
       << ", \"tripleStride\": " << tripleStride
       << ", \"startStates\": " << s.startStates
       << ", \"visited\": " << s.visited
       << ", \"transitions\": " << s.transitions
       << ", \"reduction\": \"both\", \"store\": \"spill\", \"codec\": "
          "\"binary\""
       << ", \"symGroup\": " << s.symGroupSize
       << ", \"symFolds\": " << s.symCanonFolds
       << ", \"amplePicks\": " << s.amplePicks
       << ", \"ampleFallbacks\": " << s.ampleFallbacks
       << ", \"stateBytes\": " << s.stateBytes
       << ", \"residentBytes\": " << s.residentBytes
       << ", \"spillBytes\": " << s.spillBytes
       << ", \"peakRssBytes\": " << s.peakRssBytes
       << ", \"maxInvalidDeliveries\": " << s.maxProgressCount
       << ", \"prop4Bound\": " << prop4Bound
       << ", \"exhausted\": " << (s.exhausted ? "true" : "false")
       << ", \"violations\": " << scale.result.violations.size()
       << ", \"statesPerSec\": "
       << static_cast<std::uint64_t>(s.visited / scale.seconds)
       << ", \"seconds\": " << scale.seconds << "},\n";
  json << "  \"gatesFailed\": " << failures << "\n}\n";

  std::ofstream file(outPath);
  file << json.str();
  std::cout << "report written to " << outPath << "\n";

  if (failures > 0) {
    std::cout << failures << " gate(s) FAILED\n";
    return 1;
  }
  std::cout << "all gates passed\n";
  return 0;
}
