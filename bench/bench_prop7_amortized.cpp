// E8 - Proposition 7: amortized O(max(R_A, D)) rounds per delivery.
//
// The proof's engine: with correct tables and at least one message in the
// system, SOME message is delivered every 3D rounds, so a saturated system
// delivers at (rounds / deliveries) <= ~3D, with R_A amortized across the
// workload when tables start corrupted. We sweep ring sizes (D = n/2) and
// report measured amortized cost against the 3D line - the paper's
// Theta(D) claim means the ratio (amortized / D) should stay flat as n
// grows, which the last column shows.

#include <iostream>

#include "sim/runner.hpp"
#include "stats/table.hpp"

int main() {
  using namespace snapfwd;
  std::cout << "# E8 / Proposition 7: amortized rounds per delivery\n\n";

  Table table("Saturated all-to-one traffic, synchronous daemon",
              {"ring n", "D", "corrupted", "R_A", "rounds", "deliveries",
               "amortized", "3D bound", "amortized / D", "within"});

  bool allWithin = true;
  for (const std::size_t n : {6u, 8u, 10u, 12u, 16u}) {
    for (const bool corrupted : {false, true}) {
      ExperimentConfig cfg;
      cfg.topology = TopologyKind::kRing;
      cfg.n = n;
      cfg.seed = 13;
      cfg.daemon = DaemonKind::kSynchronous;
      cfg.traffic = TrafficKind::kAllToOne;
      cfg.hotspot = 0;
      cfg.perSource = 8;
      if (corrupted) cfg.corruption.routingFraction = 1.0;
      const ExperimentResult r = runSsmfpExperiment(cfg);
      const std::uint64_t deliveries = r.spec.validDelivered + r.invalidDelivered;
      const double bound =
          3.0 * r.graphDiameter + 6.0 +
          (corrupted ? static_cast<double>(r.routingSilentRound) /
                           static_cast<double>(deliveries)
                     : 0.0);
      const bool within =
          r.quiescent && r.spec.satisfiesSp() && r.amortizedRoundsPerDelivery <= bound;
      allWithin &= within;
      table.addRow({Table::num(std::uint64_t{n}),
                    Table::num(std::uint64_t{r.graphDiameter}),
                    Table::yesNo(corrupted), Table::num(r.routingSilentRound),
                    Table::num(r.rounds), Table::num(deliveries),
                    Table::num(r.amortizedRoundsPerDelivery, 2),
                    Table::num(bound, 1),
                    Table::num(r.amortizedRoundsPerDelivery /
                                   static_cast<double>(r.graphDiameter),
                               2),
                    Table::yesNo(within)});
    }
  }
  table.printMarkdown(std::cout);
  std::cout << "all runs within bound: " << (allWithin ? "yes" : "NO") << "\n";
  std::cout << "\nPaper claim: amortized complexity Theta(D) (plus an R_A term\n"
               "amortized over the workload) - the amortized/D column staying\n"
               "flat as n doubles is the Theta(D) shape.\n";
  return allWithin ? 0 : 1;
}
