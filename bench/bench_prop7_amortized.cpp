// E8 - Proposition 7: amortized O(max(R_A, D)) rounds per delivery.
//
// The proof's engine: with correct tables and at least one message in the
// system, SOME message is delivered every 3D rounds, so a saturated system
// delivers at (rounds / deliveries) <= ~3D, with R_A amortized across the
// workload when tables start corrupted. We sweep ring sizes (D = n/2) and
// report measured amortized cost against the 3D line - the paper's
// Theta(D) claim means the ratio (amortized / D) should stay flat as n
// grows, which the last column shows.
//
// Runs as a ring-size x corruption SweepMatrix (all hardware threads) and
// archives every run as JSONL - argv[1] overrides the output path
// ("-" = stdout).

#include <fstream>
#include <iostream>

#include "sim/experiment_json.hpp"
#include "sim/sweep_matrix.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace snapfwd;
  std::cout << "# E8 / Proposition 7: amortized rounds per delivery\n\n";

  SweepMatrix matrix;
  matrix.base.daemon = DaemonKind::kSynchronous;
  matrix.base.traffic = TrafficKind::kAllToOne;
  matrix.base.hotspot = 0;
  matrix.base.perSource = 8;
  for (const std::size_t n : {6u, 8u, 10u, 12u, 16u}) {
    matrix.topologies.push_back(TopologySpec::ring(n));
  }
  CorruptionPlan corruptedPlan;
  corruptedPlan.routingFraction = 1.0;
  matrix.corruptions = {{"clean", {}, {}}, {"corrupted", corruptedPlan, {}}};
  matrix.options.firstSeed = 13;
  matrix.options.seedCount = 1;
  matrix.options.threads = 0;  // all hardware threads
  const SweepMatrixResult result = runSweepMatrix(matrix);

  Table table("Saturated all-to-one traffic, synchronous daemon",
              {"ring n", "D", "corrupted", "R_A", "rounds", "deliveries",
               "amortized", "3D bound", "amortized / D", "within"});
  bool allWithin = true;
  for (const SweepCell& cell : result.cells) {
    const bool corrupted = cell.corruptionLabel == "corrupted";
    for (const ExperimentResult& r : cell.result.runs) {
      const std::uint64_t deliveries = r.spec.validDelivered + r.invalidDelivered;
      const double bound =
          3.0 * r.graphDiameter + 6.0 +
          (corrupted ? static_cast<double>(r.routingSilentRound) /
                           static_cast<double>(deliveries)
                     : 0.0);
      const bool within =
          r.quiescent && r.spec.satisfiesSp() && r.amortizedRoundsPerDelivery <= bound;
      allWithin &= within;
      table.addRow({Table::num(std::uint64_t{cell.topo.n}),
                    Table::num(std::uint64_t{r.graphDiameter}),
                    Table::yesNo(corrupted), Table::num(r.routingSilentRound),
                    Table::num(r.rounds), Table::num(deliveries),
                    Table::num(r.amortizedRoundsPerDelivery, 2),
                    Table::num(bound, 1),
                    Table::num(r.amortizedRoundsPerDelivery /
                                   static_cast<double>(r.graphDiameter),
                               2),
                    Table::yesNo(within)});
    }
  }
  table.printMarkdown(std::cout);
  std::cout << "all runs within bound: " << (allWithin ? "yes" : "NO") << "\n";

  RunManifest manifest;
  manifest.experiment = "bench_prop7_amortized";
  manifest.firstSeed = matrix.options.firstSeed;
  manifest.seedCount = matrix.options.seedCount;
  manifest.threads = resolveThreadCount(matrix.options.threads);
  const std::string jsonlPath = argc > 1 ? argv[1] : "bench_prop7_amortized.jsonl";
  if (jsonlPath == "-") {
    writeMatrixJsonl(std::cout, manifest, matrix.base, result);
  } else {
    std::ofstream out(jsonlPath);
    writeMatrixJsonl(out, manifest, matrix.base, result);
    std::cout << "JSONL results: " << jsonlPath << "\n";
  }

  std::cout << "\nPaper claim: amortized complexity Theta(D) (plus an R_A term\n"
               "amortized over the workload) - the amortized/D column staying\n"
               "flat as n doubles is the Theta(D) shape.\n";
  return allWithin ? 0 : 1;
}
