// E2 - Figure 2: SSMFP's two-buffer-per-destination buffer graph.
//
// Rebuilds the paper's Figure 2 on its own example network (the Figure 3
// topology, destination b) and checks the structural claims: two buffers
// per processor, internal arcs bufR -> bufE, hop arcs bufE -> bufR at the
// routed next hop, destination has no outgoing hop arc, acyclic whenever
// the tables are cycle-free, buffer cost exactly 2n per destination.

#include <iostream>

#include "graph/builders.hpp"
#include "graph/dot.hpp"
#include "routing/frozen.hpp"
#include "routing/oracle.hpp"
#include "ssmfp/buffer_graph.hpp"
#include "stats/table.hpp"
#include "util/rng.hpp"

int main() {
  using namespace snapfwd;
  std::cout << "# E2 / Figure 2: SSMFP buffer graph (2 buffers per destination)\n\n";

  const Graph g = topo::figure3Network();
  const OracleRouting oracle(g);
  const NodeId b = 1;  // the figure's destination

  std::cout << "Component for destination b on the Figure 3 network:\n";
  const auto bg = ssmfpBufferGraph(g, oracle, b);
  std::cout << toDotDirected(bg.arcs, bg.labels, "Fig2_db") << "\n";

  AcyclicityScratch scratch;
  bool allDestAcyclic = true;
  for (NodeId d = 0; d < g.size(); ++d) {
    allDestAcyclic &= isAcyclic(ssmfpBufferGraph(g, oracle, d), scratch);
  }

  Table structure("Structure for destination b", {"property", "value"});
  structure.addRow({"buffers (2n)", Table::num(std::uint64_t{bg.vertexCount})});
  structure.addRow({"arcs", Table::num(std::uint64_t{bg.arcs.size()})});
  structure.addRow({"acyclic", Table::yesNo(isAcyclic(bg, scratch))});
  structure.addRow({"acyclic for every destination", Table::yesNo(allDestAcyclic)});
  structure.printMarkdown(std::cout);

  Table cost("Buffer cost per processor (the conclusion's space claim)",
             {"topology", "n", "buffers/processor (SSMFP)",
              "buffers/processor (Fig.1 baseline)", "overhead factor"});
  Rng rng(7);
  struct Case {
    const char* name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"figure3", topo::figure3Network()});
  cases.push_back({"ring(8)", topo::ring(8)});
  cases.push_back({"grid(4x4)", topo::grid(4, 4)});
  Rng g1 = rng.fork(1);
  cases.push_back({"random(12,+6)", topo::randomConnected(12, 6, g1)});
  for (auto& c : cases) {
    const std::size_t n = c.graph.size();
    cost.addRow({c.name, Table::num(std::uint64_t{n}),
                 Table::num(std::uint64_t{2 * n}),  // 2 per destination x n dests
                 Table::num(std::uint64_t{n}), Table::num(2.0, 1)});
  }
  cost.printMarkdown(std::cout);

  // Corruption makes the component cyclic - the situation SSMFP tolerates.
  FrozenRouting corrupted(g);
  corrupted.setEntry(0, b, 2);
  corrupted.setEntry(2, b, 0);
  std::cout << "With the paper's corrupted tables (a <-> c cycle): acyclic="
            << (isAcyclic(ssmfpBufferGraph(g, corrupted, b), scratch) ? "yes" : "no")
            << " (expected: no)\n\n";
  std::cout << "Paper claim: snap-stabilization costs a constant-factor 2x in\n"
               "buffers over the destination-based scheme (\"no significant\n"
               "over cost in space\").\n";
  return 0;
}
