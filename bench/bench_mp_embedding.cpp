// Extension - message-passing embedding (the conclusion's open problem,
// explored): SSMFP run over asynchronous FIFO channels through an
// alpha-synchronizer, measured against the state-model execution.
//
// Reports, per topology: protocol rounds, wall ticks (asynchrony cost),
// packets exchanged (the synchronizer's overhead), SP verdict, and whether
// the per-round state hashes match the synchronous state-model engine
// (they must: the embedding theorem).

#include <iostream>

#include "core/engine.hpp"
#include "graph/builders.hpp"
#include "mp/mp_ssmfp.hpp"
#include "routing/selfstab_bfs.hpp"
#include "stats/table.hpp"

int main() {
  using namespace snapfwd;
  std::cout << "# Extension: SSMFP in the message-passing model\n\n";

  Table table("Alpha-synchronizer embedding, corrupted start, all-to-one traffic",
              {"topology", "n", "channel delay", "rounds", "ticks",
               "packets", "packets/round", "exactly-once", "hashes match engine"});

  struct Case {
    const char* name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"path(6)", topo::path(6)});
  cases.push_back({"ring(8)", topo::ring(8)});
  cases.push_back({"star(6)", topo::star(6)});
  cases.push_back({"grid(3x3)", topo::grid(3, 3)});

  bool allOk = true;
  for (auto& c : cases) {
    for (const std::uint32_t delay : {1u, 4u}) {
      // Shared corruption + workload description.
      Rng corruptRng(42);
      std::vector<std::tuple<NodeId, NodeId, std::uint32_t, NodeId>> fixes;
      for (NodeId p = 0; p < c.graph.size(); ++p) {
        const auto& nbrs = c.graph.neighbors(p);
        for (NodeId d = 0; d < c.graph.size(); ++d) {
          if (!corruptRng.chance(0.8)) continue;
          fixes.emplace_back(
              p, d, static_cast<std::uint32_t>(corruptRng.below(c.graph.size() + 1)),
              nbrs[static_cast<std::size_t>(corruptRng.below(nbrs.size()))]);
        }
      }

      // Message-passing run.
      MpSsmfpSimulator sim(c.graph, {}, 7, delay);
      for (const auto& [p, d, dist, parent] : fixes) {
        sim.setRoutingEntry(p, d, dist, parent);
      }
      std::vector<TraceId> traces;
      for (NodeId p = 1; p < c.graph.size(); ++p) {
        traces.push_back(sim.send(p, 0, 100 + p));
      }
      const std::uint64_t ticks = sim.run(5'000'000);

      // State-model reference.
      SelfStabBfsRouting routing(c.graph);
      SsmfpProtocol proto(c.graph, routing);
      for (const auto& [p, d, dist, parent] : fixes) {
        routing.setEntry(p, d, dist, parent);
      }
      for (NodeId p = 1; p < c.graph.size(); ++p) proto.send(p, 0, 100 + p);
      SynchronousDaemon daemon;
      Engine engine(c.graph, {&routing, &proto}, daemon);
      proto.attachEngine(&engine);
      std::vector<std::uint64_t> engineHashes{protocolStateHash(proto, routing)};
      while (engine.step()) engineHashes.push_back(protocolStateHash(proto, routing));

      bool hashesMatch = sim.roundHashes().size() >= engineHashes.size();
      for (std::size_t r = 0; hashesMatch && r < engineHashes.size(); ++r) {
        hashesMatch = sim.roundHashes()[r] == engineHashes[r];
      }
      std::size_t exactlyOnce = 0;
      for (const TraceId t : traces) {
        std::size_t count = 0;
        for (const auto& rec : sim.deliveries()) {
          if (rec.msg.valid && rec.msg.trace == t) ++count;
        }
        exactlyOnce += (count == 1) ? 1 : 0;
      }
      const bool ok =
          sim.quiescent() && hashesMatch && exactlyOnce == traces.size();
      allOk &= ok;
      table.addRow(
          {c.name, Table::num(std::uint64_t{c.graph.size()}),
           Table::num(std::uint64_t{delay}), Table::num(sim.completedRounds()),
           Table::num(ticks), Table::num(sim.packetsSent()),
           Table::num(static_cast<double>(sim.packetsSent()) /
                          static_cast<double>(std::max<std::uint64_t>(
                              1, sim.completedRounds())),
                      1),
           Table::num(std::uint64_t{exactlyOnce}) + "/" +
               Table::num(std::uint64_t{traces.size()}),
           Table::yesNo(hashesMatch)});
    }
  }
  table.printMarkdown(std::cout);
  std::cout << "all runs exactly-once with matching hashes: "
            << (allOk ? "yes" : "NO") << "\n";
  std::cout << "\nThe embedding realizes the paper's 'carry to message passing'\n"
               "direction for PROTOCOL-state corruption: the synchronizer makes\n"
               "the asynchronous execution bisimilar to a synchronous state-model\n"
               "execution (hash-equal per round), so Proposition 3 transfers.\n"
               "Synchronizer state itself is assumed clean - making IT\n"
               "stabilizing is exactly the open problem the paper cites.\n";
  return allOk ? 0 : 1;
}
