// E6 - Proposition 5: delivery latency O(max(R_A, Delta^D)) rounds.
//
// Measures, per topology and corruption level, the worst and average
// number of rounds from generation (R1) to delivery (R6) of a valid
// message, alongside the bound's two ingredients: the measured routing
// stabilization time R_A and Delta^D. The paper's worst case is driven by
// the fairness queue letting up to Delta messages "pass" a given message
// per hop; real executions sit far below the exponential envelope, which
// the table makes visible.

#include <cmath>
#include <iostream>

#include "sim/runner.hpp"
#include "stats/table.hpp"

int main() {
  using namespace snapfwd;
  std::cout << "# E6 / Proposition 5: delivery latency vs O(max(R_A, Delta^D))\n\n";

  Table table("Valid-message delivery latency in rounds (antipodal traffic)",
              {"topology", "n", "Delta", "D", "corrupted", "R_A (rounds)",
               "Delta^D", "max latency", "avg latency", "within bound"});

  struct Row {
    TopologyKind topology;
    std::size_t n;
  };
  const Row rows[] = {
      {TopologyKind::kPath, 8},  {TopologyKind::kRing, 8},
      {TopologyKind::kStar, 8},  {TopologyKind::kGrid, 9},
      {TopologyKind::kComplete, 8}, {TopologyKind::kRandomConnected, 10},
  };
  bool allWithin = true;
  for (const auto& row : rows) {
    for (const bool corrupted : {false, true}) {
      ExperimentConfig cfg;
      cfg.topology = row.topology;
      cfg.n = row.n;
      cfg.rows = 3;
      cfg.cols = 3;
      cfg.seed = 5;
      cfg.daemon = DaemonKind::kDistributedRandom;
      cfg.traffic = TrafficKind::kAntipodal;
      if (corrupted) {
        cfg.corruption.routingFraction = 1.0;
        cfg.corruption.invalidMessages = 6;
        cfg.corruption.scrambleQueues = true;
      }
      const ExperimentResult r = runSsmfpExperiment(cfg);
      const double deltaPowD = std::pow(static_cast<double>(r.graphDelta),
                                        static_cast<double>(r.graphDiameter));
      const double bound =
          4.0 * std::max(static_cast<double>(r.routingSilentRound), deltaPowD) +
          16.0;
      const bool within = r.quiescent && r.spec.satisfiesSp() &&
                          static_cast<double>(r.maxDeliveryRounds) <= bound;
      allWithin &= within;
      table.addRow({toString(row.topology), Table::num(std::uint64_t{r.graphN}),
                    Table::num(std::uint64_t{r.graphDelta}),
                    Table::num(std::uint64_t{r.graphDiameter}),
                    Table::yesNo(corrupted), Table::num(r.routingSilentRound),
                    Table::num(deltaPowD, 0), Table::num(r.maxDeliveryRounds),
                    Table::num(r.avgDeliveryRounds, 1), Table::yesNo(within)});
    }
  }
  table.printMarkdown(std::cout);
  std::cout << "all runs within bound: " << (allWithin ? "yes" : "NO") << "\n";
  std::cout << "\nPaper claim: latency is O(max(R_A, Delta^D)) rounds; the\n"
               "exponential term is a worst-case envelope (Delta messages can\n"
               "pass per hop) - measured latencies track a few x D instead,\n"
               "matching the remark motivating the amortized analysis (Prop. 7).\n";
  return allWithin ? 0 : 1;
}
