// E6 - Proposition 5: delivery latency O(max(R_A, Delta^D)) rounds.
//
// Measures, per topology and corruption level, the worst and average
// number of rounds from generation (R1) to delivery (R6) of a valid
// message, alongside the bound's two ingredients: the measured routing
// stabilization time R_A and Delta^D. The paper's worst case is driven by
// the fairness queue letting up to Delta messages "pass" a given message
// per hop; real executions sit far below the exponential envelope, which
// the table makes visible.
//
// Runs as a topology x corruption SweepMatrix (all hardware threads) and
// archives every run as JSONL - argv[1] overrides the output path
// ("-" = stdout).

#include <cmath>
#include <fstream>
#include <iostream>

#include "sim/experiment_json.hpp"
#include "sim/sweep_matrix.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace snapfwd;
  std::cout << "# E6 / Proposition 5: delivery latency vs O(max(R_A, Delta^D))\n\n";

  SweepMatrix matrix;
  matrix.base.daemon = DaemonKind::kDistributedRandom;
  matrix.base.traffic = TrafficKind::kAntipodal;
  matrix.topologies = {
      TopologySpec::path(8),    TopologySpec::ring(8),
      TopologySpec::star(8),    TopologySpec::grid(3, 3),
      TopologySpec::complete(8), TopologySpec::randomConnected(10, 4),
  };
  CorruptionPlan corruptedPlan;
  corruptedPlan.routingFraction = 1.0;
  corruptedPlan.invalidMessages = 6;
  corruptedPlan.scrambleQueues = true;
  matrix.corruptions = {{"clean", {}, {}}, {"corrupted", corruptedPlan, {}}};
  matrix.options.firstSeed = 5;
  matrix.options.seedCount = 1;
  matrix.options.threads = 0;  // all hardware threads
  const SweepMatrixResult result = runSweepMatrix(matrix);

  Table table("Valid-message delivery latency in rounds (antipodal traffic)",
              {"topology", "n", "Delta", "D", "corrupted", "R_A (rounds)",
               "Delta^D", "max latency", "avg latency", "within bound"});
  bool allWithin = true;
  for (const SweepCell& cell : result.cells) {
    const bool corrupted = cell.corruptionLabel == "corrupted";
    for (const ExperimentResult& r : cell.result.runs) {
      const double deltaPowD = std::pow(static_cast<double>(r.graphDelta),
                                        static_cast<double>(r.graphDiameter));
      const double bound =
          4.0 * std::max(static_cast<double>(r.routingSilentRound), deltaPowD) +
          16.0;
      const bool within = r.quiescent && r.spec.satisfiesSp() &&
                          static_cast<double>(r.maxDeliveryRounds) <= bound;
      allWithin &= within;
      table.addRow({toString(cell.topo.kind), Table::num(std::uint64_t{r.graphN}),
                    Table::num(std::uint64_t{r.graphDelta}),
                    Table::num(std::uint64_t{r.graphDiameter}),
                    Table::yesNo(corrupted), Table::num(r.routingSilentRound),
                    Table::num(deltaPowD, 0), Table::num(r.maxDeliveryRounds),
                    Table::num(r.avgDeliveryRounds, 1), Table::yesNo(within)});
    }
  }
  table.printMarkdown(std::cout);
  std::cout << "all runs within bound: " << (allWithin ? "yes" : "NO") << "\n";

  RunManifest manifest;
  manifest.experiment = "bench_prop5_delivery_latency";
  manifest.firstSeed = matrix.options.firstSeed;
  manifest.seedCount = matrix.options.seedCount;
  manifest.threads = resolveThreadCount(matrix.options.threads);
  const std::string jsonlPath =
      argc > 1 ? argv[1] : "bench_prop5_delivery_latency.jsonl";
  if (jsonlPath == "-") {
    writeMatrixJsonl(std::cout, manifest, matrix.base, result);
  } else {
    std::ofstream out(jsonlPath);
    writeMatrixJsonl(out, manifest, matrix.base, result);
    std::cout << "JSONL results: " << jsonlPath << "\n";
  }

  std::cout << "\nPaper claim: latency is O(max(R_A, Delta^D)) rounds; the\n"
               "exponential term is a worst-case envelope (Delta messages can\n"
               "pass per hop) - measured latencies track a few x D instead,\n"
               "matching the remark motivating the amortized analysis (Prop. 7).\n";
  return allWithin ? 0 : 1;
}
