// E7 - Proposition 6: delay and waiting time O(max(R_A, Delta^D)) rounds.
//
// Delay = rounds before a requesting processor's FIRST emission (R1);
// waiting time = rounds between consecutive emissions at one processor.
// We measure both under the hardest contention the protocol's fairness
// queue faces - every processor flooding one destination - with clean and
// corrupted initial configurations.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>

#include "checker/spec_checker.hpp"
#include "core/engine.hpp"
#include "faults/corruptor.hpp"
#include "graph/builders.hpp"
#include "routing/selfstab_bfs.hpp"
#include "ssmfp/ssmfp.hpp"
#include "stats/table.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace snapfwd;
  std::cout << "# E7 / Proposition 6: delay and waiting time\n\n";

  Table table("Per-source generation timing, all-to-one traffic (4 msgs/source)",
              {"topology", "corrupted", "R_A", "max delay", "max waiting",
               "bound 4*max(R_A,Delta^D)+16", "within", "SP"});

  struct Case {
    const char* name;
    Graph graph;
    NodeId hotspot;
  };
  std::vector<Case> cases;
  cases.push_back({"star(7), hotspot=center", topo::star(7), 0});
  cases.push_back({"path(6), hotspot=end", topo::path(6), 5});
  cases.push_back({"ring(8)", topo::ring(8), 0});

  bool allWithin = true;
  for (auto& c : cases) {
    for (const bool corrupted : {false, true}) {
      SelfStabBfsRouting routing(c.graph);
      SsmfpProtocol proto(c.graph, routing);
      Rng rng(11);
      if (corrupted) {
        CorruptionPlan plan;
        plan.routingFraction = 1.0;
        plan.invalidMessages = 6;
        plan.scrambleQueues = true;
        Rng faultRng = rng.fork(1);
        applyCorruption(plan, routing, proto, faultRng);
      }
      const auto traffic = allToOneTraffic(c.graph.size(), c.hotspot, 4, 8);
      submitAll(proto, traffic);

      DistributedRandomDaemon daemon(rng.fork(2), 0.5);
      Engine engine(c.graph, {&routing, &proto}, daemon);
      proto.attachEngine(&engine);
      std::uint64_t routingSilentRound = 0;
      bool silentSeen = routing.isSilent();
      engine.setPostStepHook([&](Engine& e) {
        if (!silentSeen && routing.isSilent()) {
          silentSeen = true;
          routingSilentRound = e.roundCount();
        }
      });
      engine.run(3'000'000);

      // Delay = first generation round per source; waiting = max gap
      // between consecutive generation rounds at the same source.
      std::map<NodeId, std::vector<std::uint64_t>> perSource;
      for (const auto& g : proto.generations()) {
        perSource[g.msg.source].push_back(g.round);
      }
      std::uint64_t maxDelay = 0, maxWaiting = 0;
      for (auto& [src, rounds] : perSource) {
        std::sort(rounds.begin(), rounds.end());
        maxDelay = std::max(maxDelay, rounds.front());
        for (std::size_t i = 1; i < rounds.size(); ++i) {
          maxWaiting = std::max(maxWaiting, rounds[i] - rounds[i - 1]);
        }
      }
      const double deltaPowD =
          std::pow(static_cast<double>(c.graph.maxDegree()),
                   static_cast<double>(c.graph.diameter()));
      const double bound =
          4.0 * std::max(static_cast<double>(routingSilentRound), deltaPowD) + 16.0;
      const SpecReport spec = checkSpec(proto);
      const bool within = static_cast<double>(maxDelay) <= bound &&
                          static_cast<double>(maxWaiting) <= bound;
      allWithin &= within && spec.satisfiesSp();
      table.addRow({c.name, Table::yesNo(corrupted), Table::num(routingSilentRound),
                    Table::num(maxDelay), Table::num(maxWaiting),
                    Table::num(bound, 0), Table::yesNo(within),
                    Table::yesNo(spec.satisfiesSp())});
    }
  }
  table.printMarkdown(std::cout);
  std::cout << "all runs within bound with SP: " << (allWithin ? "yes" : "NO")
            << "\n";
  std::cout << "\nPaper claim: a waiting message is generated after at most\n"
               "Delta - 1 releases of bufR_p(d), each taking O(max(R_A,\n"
               "Delta^D)) rounds; both delay and waiting time stay far below\n"
               "the envelope in practice.\n";
  return allWithin ? 0 : 1;
}
