// E1 - Figure 1: the "destination-based" buffer graph.
//
// Reconstructs the Merlin-Schweitzer destination-based buffer graph on a
// 5-processor example network (one buffer b_p(d) per processor per
// destination, arcs along the routing trees T_d) and verifies the property
// the deadlock-freedom argument rests on: with correct routing tables the
// graph is acyclic for every destination; with corrupted tables it is not.

#include <iostream>

#include "graph/builders.hpp"
#include "graph/dot.hpp"
#include "routing/frozen.hpp"
#include "routing/oracle.hpp"
#include "ssmfp/buffer_graph.hpp"
#include "stats/table.hpp"
#include "util/rng.hpp"

int main() {
  using namespace snapfwd;
  std::cout << "# E1 / Figure 1: destination-based buffer graph\n\n";

  // The illustrative 5-node network (a house graph: ring + chord).
  Graph example(5);
  example.addEdge(0, 1);
  example.addEdge(1, 2);
  example.addEdge(2, 3);
  example.addEdge(3, 4);
  example.addEdge(4, 0);
  example.addEdge(1, 4);
  const OracleRouting oracle(example);

  std::cout << "Example network (n=5), component of destination 0:\n";
  const auto bg0 = destinationBufferGraph(example, oracle, 0);
  std::cout << toDotDirected(bg0.arcs, bg0.labels, "Fig1_d0") << "\n";

  Table perDest("Per-destination components on the example network",
                {"destination", "buffers", "arcs", "acyclic"});
  for (NodeId d = 0; d < example.size(); ++d) {
    const auto bg = destinationBufferGraph(example, oracle, d);
    perDest.addRow({Table::num(std::uint64_t{d}),
                    Table::num(std::uint64_t{bg.vertexCount}),
                    Table::num(std::uint64_t{bg.arcs.size()}),
                    Table::yesNo(isAcyclic(bg))});
  }
  perDest.printMarkdown(std::cout);

  // Sweep: acyclicity under correct vs corrupted tables across topologies.
  Table sweep("Acyclicity sweep: correct vs corrupted routing tables",
              {"topology", "n", "acyclic (correct)", "acyclic components (corrupted)",
               "cyclic components (corrupted)"});
  Rng rng(2024);
  struct Case {
    const char* name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"ring(8)", topo::ring(8)});
  cases.push_back({"grid(3x3)", topo::grid(3, 3)});
  cases.push_back({"star(8)", topo::star(8)});
  cases.push_back({"hypercube(3)", topo::hypercube(3)});
  Rng g1 = rng.fork(1);
  cases.push_back({"random(10,+5)", topo::randomConnected(10, 5, g1)});

  AcyclicityScratch scratch;
  for (auto& c : cases) {
    const OracleRouting correct(c.graph);
    bool allAcyclic = true;
    for (NodeId d = 0; d < c.graph.size(); ++d) {
      allAcyclic &= isAcyclic(destinationBufferGraph(c.graph, correct, d), scratch);
    }
    FrozenRouting corrupted(c.graph);
    Rng corruptRng = rng.fork(mix64(reinterpret_cast<std::uintptr_t>(c.name)));
    corrupted.corrupt(corruptRng, 1.0);
    std::size_t acyclicCount = 0, cyclicCount = 0;
    for (NodeId d = 0; d < c.graph.size(); ++d) {
      if (isAcyclic(destinationBufferGraph(c.graph, corrupted, d), scratch)) {
        ++acyclicCount;
      } else {
        ++cyclicCount;
      }
    }
    sweep.addRow({c.name, Table::num(std::uint64_t{c.graph.size()}),
                  Table::yesNo(allAcyclic), Table::num(std::uint64_t{acyclicCount}),
                  Table::num(std::uint64_t{cyclicCount})});
  }
  sweep.printMarkdown(std::cout);

  std::cout << "Paper claim: with correct tables every destination component is\n"
               "isomorphic to the routing tree T_d, hence acyclic (deadlock-free\n"
               "controller); corruption introduces cycles, which is why the\n"
               "fault-free controller cannot be started before stabilization.\n";
  return 0;
}
