// E21 - the protocol-family tournament: the journal paper's two
// snap-stabilizing forwarding protocols (ssmfp: destination-indexed buffer
// pairs; ssmfp2: rank-indexed slots) head to head over the same topology x
// daemon x corruption matrix, same seeds, same routing substrate.
//
// Per cell and family: delivery-latency rounds, invalid deliveries, peak
// buffer occupancy against the family's slot capacity (the economy axis:
// ssmfp provisions 2|I|n buffers, ssmfp2 (D+1)n), and wall-clock steps/sec.
// Writes BENCH_tournament.json.
//
// The corrupted plans corrupt ROUTING TABLES and fairness queues only - no
// buffer garbage - so "invalid deliveries" has an exact expected value of
// zero for both families and the bench exit-gates on it (garbage injection
// legitimately delivers under the Proposition 4 bound and would make the
// gate vacuous). Both families must also satisfy SP and quiesce on every
// run; any miss is exit 1.

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"
#include "sim/runner.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace {

using namespace snapfwd;

struct RunOutcome {
  ExperimentResult result;
  std::size_t peakOccupied = 0;
  double seconds = 0.0;
};

/// One timed run with a per-step occupancy probe (the runner has no
/// occupancy hook; the stack builders keep seed streams identical to
/// runForwardingExperiment, so the schedule is the canonical one).
RunOutcome runOne(const ExperimentConfig& cfg) {
  ForwardingStack stack = buildForwardingStack(cfg);
  RunOutcome out;
  out.result.graphN = stack.graph->size();
  out.result.invalidInjected = stack.invalidInjected;

  auto daemon = makeDaemon(cfg.daemon, cfg.daemonProbability, stack.rng);
  Engine engine(*stack.graph, {stack.routing.get(), stack.forwarding.get()},
                *daemon);
  stack.forwarding->attachEngine(&engine);
  out.peakOccupied = stack.forwarding->occupiedBufferCount();
  engine.setPostStepHook([&](Engine&) {
    out.peakOccupied =
        std::max(out.peakOccupied, stack.forwarding->occupiedBufferCount());
  });

  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t executed = engine.run(cfg.maxSteps);
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  out.result.quiescent = executed < cfg.maxSteps;
  out.result.steps = engine.stepCount();
  out.result.rounds = engine.roundCount();
  out.result.spec = checkSpec(*stack.forwarding);
  out.result.invalidDelivered = stack.forwarding->invalidDeliveryCount();
  double sumLatency = 0.0;
  std::uint64_t validDeliveries = 0;
  for (const auto& rec : stack.forwarding->deliveries()) {
    if (!rec.msg.valid) continue;
    ++validDeliveries;
    const std::uint64_t latency = rec.round - rec.msg.bornRound;
    sumLatency += static_cast<double>(latency);
    out.result.maxDeliveryRounds =
        std::max(out.result.maxDeliveryRounds, latency);
  }
  if (validDeliveries > 0) {
    out.result.avgDeliveryRounds =
        sumLatency / static_cast<double>(validDeliveries);
  }
  return out;
}

/// Total buffer slots the family provisions on this stack (the denominator
/// of the occupancy ratio): ssmfp keeps a reception+emission pair per
/// (processor, destination); ssmfp2 keeps D+1 rank slots per processor.
std::size_t slotCapacity(ForwardingFamilyId family, const Graph& graph,
                         std::size_t destinations) {
  switch (family) {
    case ForwardingFamilyId::kSsmfp: return 2 * destinations * graph.size();
    case ForwardingFamilyId::kSsmfp2:
      return (static_cast<std::size_t>(graph.diameter()) + 1) * graph.size();
  }
  return 0;
}

struct CellStats {
  std::size_t runs = 0;
  std::size_t spOk = 0;
  std::size_t quiescent = 0;
  std::uint64_t invalidDelivered = 0;
  std::size_t peakOccupiedMax = 0;
  std::size_t slots = 0;
  Summary rounds;
  Summary avgDeliveryRounds;
  Summary maxDeliveryRounds;
  Summary peakOccupied;
  double bestStepsPerSec = 0.0;
};

void appendJson(std::ostringstream& out, const TopologySpec& topo,
                DaemonKind daemon, std::string_view corruption,
                ForwardingFamilyId family, const CellStats& s) {
  out << "{\"topology\":\"" << topo.label() << "\",\"daemon\":\""
      << toString(daemon) << "\",\"corruption\":\"" << corruption
      << "\",\"family\":\"" << toString(family) << "\",\"runs\":" << s.runs
      << ",\"spOk\":" << s.spOk << ",\"quiescent\":" << s.quiescent
      << ",\"invalidDelivered\":" << s.invalidDelivered
      << ",\"meanRounds\":" << s.rounds.mean()
      << ",\"avgDeliveryRounds\":" << s.avgDeliveryRounds.mean()
      << ",\"maxDeliveryRounds\":" << s.maxDeliveryRounds.max()
      << ",\"bufferSlots\":" << s.slots
      << ",\"peakOccupiedMean\":" << s.peakOccupied.mean()
      << ",\"peakOccupiedMax\":" << s.peakOccupiedMax
      << ",\"bestStepsPerSec\":" << s.bestStepsPerSec << "}";
}

int runTournament(const std::string& path, std::size_t seeds) {
  const std::vector<TopologySpec> topologies = {
      TopologySpec::ring(8), TopologySpec::grid(3, 3),
      TopologySpec::randomConnected(10, 4), TopologySpec::figure3()};
  const std::vector<DaemonKind> daemons = {DaemonKind::kSynchronous,
                                           DaemonKind::kCentralRoundRobin,
                                           DaemonKind::kDistributedRandom};
  struct NamedPlan {
    const char* label;
    CorruptionPlan plan;
  };
  std::vector<NamedPlan> corruptions(2);
  corruptions[0].label = "clean";
  corruptions[1].label = "routing-corrupted";
  corruptions[1].plan.routingFraction = 1.0;
  corruptions[1].plan.scrambleQueues = true;
  // Deliberately NO invalidMessages: see the file comment - the gate needs
  // an exact zero expectation for invalid deliveries.

  const ForwardingFamilyId families[] = {ForwardingFamilyId::kSsmfp,
                                         ForwardingFamilyId::kSsmfp2};

  std::ostringstream json;
  json << "{\"experiment\":\"tournament\",\"seeds\":" << seeds
       << ",\"messages\":12,\"cells\":[";

  Table table("ssmfp vs ssmfp2, " + std::to_string(seeds) + " seeds per cell",
              {"topology", "daemon", "corruption", "family", "SP",
               "invalid", "avg latency", "peak/slots", "steps/s"});
  bool first = true;
  bool gateOk = true;
  for (const auto& topo : topologies) {
    for (const DaemonKind daemon : daemons) {
      for (const auto& corruption : corruptions) {
        for (const ForwardingFamilyId family : families) {
          ExperimentConfig cfg;
          cfg.topo = topo;
          cfg.family = family;
          cfg.daemon = daemon;
          cfg.corruption = corruption.plan;
          cfg.traffic = TrafficKind::kUniform;
          cfg.messageCount = 12;
          cfg.payloadSpace = 4;
          cfg.maxSteps = 400'000;

          CellStats s;
          for (std::size_t i = 0; i < seeds; ++i) {
            cfg.seed = 1 + i;
            const RunOutcome run = runOne(cfg);
            ++s.runs;
            if (run.result.spec.satisfiesSp()) ++s.spOk;
            if (run.result.quiescent) ++s.quiescent;
            s.invalidDelivered += run.result.invalidDelivered;
            s.rounds.add(static_cast<double>(run.result.rounds));
            s.avgDeliveryRounds.add(run.result.avgDeliveryRounds);
            s.maxDeliveryRounds.add(
                static_cast<double>(run.result.maxDeliveryRounds));
            s.peakOccupied.add(static_cast<double>(run.peakOccupied));
            s.peakOccupiedMax = std::max(s.peakOccupiedMax, run.peakOccupied);
            if (run.seconds > 0.0) {
              s.bestStepsPerSec =
                  std::max(s.bestStepsPerSec,
                           static_cast<double>(run.result.steps) / run.seconds);
            }
          }
          // Capacity comes from a real build of the cell's graph (the
          // random topologies need the actual diameter / destination set).
          {
            ExperimentConfig capCfg = cfg;
            capCfg.seed = 1;
            const ForwardingStack stack = buildForwardingStack(capCfg);
            s.slots = slotCapacity(family, *stack.graph,
                                   stack.forwarding->destinations().size());
          }

          const bool cellOk = s.spOk == s.runs && s.quiescent == s.runs &&
                              s.invalidDelivered == 0;
          if (!cellOk) gateOk = false;

          if (!first) json << ",";
          first = false;
          appendJson(json, topo, daemon, corruption.label, family, s);
          table.addRow(
              {topo.label(), std::string(toString(daemon)), corruption.label,
               std::string(toString(family)),
               Table::num(std::uint64_t{s.spOk}) + "/" +
                   Table::num(std::uint64_t{s.runs}),
               Table::num(s.invalidDelivered),
               Table::num(s.avgDeliveryRounds.mean(), 1),
               Table::num(std::uint64_t{s.peakOccupiedMax}) + "/" +
                   Table::num(std::uint64_t{s.slots}),
               Table::num(s.bestStepsPerSec, 0)});
        }
      }
    }
  }
  json << "]}";

  table.printMarkdown(std::cout);
  std::ofstream file(path);
  file << json.str() << "\n";
  if (!file) {
    std::cerr << "cannot write " << path << "\n";
    return 2;
  }
  std::cout << "json written to " << path << "\n";
  if (!gateOk) {
    std::cerr << "FAIL: a family missed SP/quiescence or delivered an "
                 "invalid message on the garbage-free matrix\n";
    return 1;
  }
  std::cout << "both families: SP on every run, zero invalid deliveries\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "BENCH_tournament.json";
  std::size_t seeds = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--out=", 0) == 0) {
      path = std::string(arg.substr(6));
    } else if (arg.rfind("--seeds=", 0) == 0) {
      seeds = static_cast<std::size_t>(
          std::stoull(std::string(arg.substr(8))));
    } else {
      std::cerr << "usage: bench_tournament [--out=path] [--seeds=k]\n";
      return 2;
    }
  }
  return runTournament(path, seeds == 0 ? 1 : seeds);
}
