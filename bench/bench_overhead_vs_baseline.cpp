// E9 - the conclusion's claim: "snap-stabilization without significant
// over cost in space or in time with respect to the fault-free algorithm".
//
// Runs IDENTICAL workloads from CLEAN configurations (correct constant
// tables - the only setting where the fault-free Merlin-Schweitzer
// baseline is specified) through both stacks and compares time (rounds,
// rounds per delivered message, actions per message) and space (buffers
// per processor per destination). The expected shape: SSMFP within a small
// constant factor (~2x buffers, ~2x moves per hop: R3+R4 vs B2+B3 plus the
// internal R2 move).

#include <iostream>

#include "sim/runner.hpp"
#include "stats/table.hpp"

int main() {
  using namespace snapfwd;
  std::cout << "# E9: SSMFP vs fault-free baseline, clean start\n\n";

  Table table("Identical uniform workloads (24 msgs), distributed-random daemon",
              {"topology", "protocol", "SP", "rounds", "rounds/msg",
               "actions/msg", "buffers per (p,d)"});

  struct Row {
    TopologyKind topology;
    std::size_t n;
  };
  const Row rows[] = {
      {TopologyKind::kPath, 8},
      {TopologyKind::kRing, 8},
      {TopologyKind::kGrid, 9},
      {TopologyKind::kRandomConnected, 10},
  };
  double worstTimeFactor = 0.0;
  for (const auto& row : rows) {
    ExperimentConfig cfg;
    cfg.topo.kind = row.topology;
    cfg.topo.n = row.n;
    cfg.topo.rows = 3;
    cfg.topo.cols = 3;
    cfg.seed = 21;
    cfg.daemon = DaemonKind::kDistributedRandom;
    cfg.traffic = TrafficKind::kUniform;
    cfg.messageCount = 24;

    const ExperimentResult ssmfp = runSsmfpExperiment(cfg);
    const ExperimentResult baseline = runBaselineExperiment(cfg);

    auto addRow = [&](const char* name, const ExperimentResult& r, int buffers) {
      const double msgs = static_cast<double>(r.spec.validDelivered);
      table.addRow({toString(row.topology), name, Table::yesNo(r.spec.satisfiesSp()),
                    Table::num(r.rounds), Table::num(r.rounds / msgs, 2),
                    Table::num(static_cast<double>(r.actions) / msgs, 2),
                    Table::num(std::int64_t{buffers})});
    };
    addRow("ssmfp", ssmfp, 2);
    addRow("baseline", baseline, 1);
    if (baseline.rounds > 0) {
      worstTimeFactor =
          std::max(worstTimeFactor, static_cast<double>(ssmfp.rounds) /
                                        static_cast<double>(baseline.rounds));
    }
  }
  table.printMarkdown(std::cout);
  std::cout << "worst-case SSMFP/baseline round factor: "
            << Table::num(worstTimeFactor, 2) << "\n";
  const bool ok = worstTimeFactor < 6.0;
  std::cout << "\nPaper claim: constant-factor overhead only (2x space, small\n"
               "constant in time) - in exchange SSMFP additionally survives\n"
               "arbitrary initial configurations (see E10).\n";
  return ok ? 0 : 1;
}
