// E22 - the adversarial campaign at soak scale. Three exit-gated parts:
//
//   1. Churn soak: both unweakened families forward under continuous
//      arrivals and link flaps for --steps steps (default 1e7, the
//      nightly scale), monitored by the streaming invariant checker.
//      Gate: no violation and zero invalid deliveries for both; SSMFP
//      must additionally drain fully. SSMFP2's liveness is conditional
//      on the CNS free-slot condition, so a saturated run may end in
//      the (documented) CNS recycle wedge - recorded, not a failure.
//   2. The built-in campaign table (sim/campaign.hpp) with its soak cells
//      scaled to --steps. Gate: every cell lands on its expectation and
//      at least one expected-failure cell fired.
//   3. The seeded-weakness search artifact: the adversarial schedule
//      search must FIND the planted R4 weakening, shrink it, and the
//      ScriptedDaemon replay must still violate. Gate: found + replayed.
//
// Writes BENCH_campaign.json. Exit 0 all gates pass, 1 any miss, 2 IO.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "checker/streaming.hpp"
#include "explore/advsearch.hpp"
#include "faults/topology.hpp"
#include "sim/campaign.hpp"
#include "stats/table.hpp"

namespace {

using namespace snapfwd;

struct SoakOutcome {
  std::string family;
  std::uint64_t steps = 0;
  std::size_t submitted = 0;
  std::uint64_t validDeliveries = 0;
  std::uint64_t invalidDeliveries = 0;
  std::uint64_t amnestiedDeliveries = 0;
  std::uint64_t faultEvents = 0;
  bool drained = false;
  bool drainRequired = true;
  bool wedged = false;  // terminal with occupied slots: the CNS deadlock
  std::string violation;
  double stepsPerSec = 0.0;

  // The gate is per-family: SSMFP (the paper's protocol) must fully drain;
  // SSMFP2's liveness is conditional on the CNS free-slot condition (see
  // the cns-* campaign cells), so at soak scale its rank-ladder recycle
  // edge can close a saturated wait cycle and wedge. Safety - exactly-once,
  // zero invalid deliveries - is unconditional for both.
  [[nodiscard]] bool ok() const {
    if (!violation.empty() || invalidDeliveries != 0) return false;
    return drained || (!drainRequired && wedged);
  }
};

/// One family's churn soak: the StreamingSoak test shape (continuous
/// Bernoulli arrivals over the first half, link flaps over the whole
/// horizon, strict streaming checker) at an arbitrary step budget.
SoakOutcome runChurnSoak(ForwardingFamilyId family, std::uint64_t budget) {
  ExperimentConfig cfg;
  cfg.topo = TopologySpec::randomConnected(10, 5);
  cfg.family = family;
  cfg.traffic = TrafficKind::kNone;
  cfg.seed = 17;
  ForwardingStack stack = buildForwardingStack(cfg);
  const Graph& g = *stack.graph;
  auto daemon = makeDaemon(DaemonKind::kDistributedRandom, 0.5, stack.rng);
  Engine engine(g, {stack.routing.get(), stack.forwarding.get()}, *daemon);
  stack.forwarding->attachEngine(&engine);

  Rng churnRng = stack.rng.fork(0xC4C4);
  const std::size_t flaps =
      std::max<std::size_t>(4, static_cast<std::size_t>(budget / 25'000));
  TopologyMutator mutator(
      *stack.graph, makeLinkChurnSchedule(g, churnRng, budget, flaps, 1'000),
      {stack.routing.get(), stack.forwarding.get()});

  StreamingInvariantChecker checker(*stack.forwarding);
  Rng arrivalRng = stack.rng.fork(0xA881);
  SoakOutcome out;
  out.family = toString(family);
  const std::uint64_t arrivalWindow = budget / 2;

  const auto start = std::chrono::steady_clock::now();
  std::optional<std::string> violation;
  std::uint64_t ticks = 0;
  while (ticks < budget && !violation) {
    ++ticks;
    if (ticks < arrivalWindow && arrivalRng.chance(0.05)) {
      const auto src = static_cast<NodeId>(arrivalRng.below(g.size()));
      NodeId dest = static_cast<NodeId>(arrivalRng.below(g.size() - 1));
      if (dest >= src) ++dest;
      stack.forwarding->send(src, dest, arrivalRng.below(4));
      ++out.submitted;
    }
    const bool stepped = engine.step();
    if (mutator.applyDue(engine.stepCount()) > 0) {
      checker.noteFaultEvent(engine.stepCount());
    }
    violation = checker.poll(engine.stepCount());
    if (!stepped && ticks >= arrivalWindow) {
      if (mutator.done()) break;
      mutator.applyDue(mutator.nextEventStep());
      checker.noteFaultEvent(engine.stepCount());
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  out.steps = engine.stepCount();
  out.validDeliveries = checker.validDeliveries();
  out.invalidDeliveries = checker.invalidDeliveries();
  out.amnestiedDeliveries = checker.amnestiedDeliveries();
  out.faultEvents = checker.faultEvents();
  out.drained = engine.isTerminal() && stack.forwarding->fullyDrained() &&
                mutator.done();
  out.drainRequired = family == ForwardingFamilyId::kSsmfp;
  out.wedged = engine.isTerminal() && mutator.done() &&
               stack.forwarding->occupiedBufferCount() > 0;
  if (violation) out.violation = *violation;
  out.stepsPerSec =
      seconds > 0.0 ? static_cast<double>(out.steps) / seconds : 0.0;
  return out;
}

int runBench(const std::string& path, std::uint64_t steps) {
  bool gateOk = true;
  std::ostringstream json;
  json << "{\"bench\":\"campaign\",\"steps\":" << steps;

  // -- Part 1: churn soaks ------------------------------------------------
  Table soakTable("E22 churn soak",
                  {"family", "steps", "submitted", "valid", "amnestied",
                   "invalid", "flap events", "outcome", "steps/s"});
  json << ",\"soak\":[";
  bool first = true;
  for (const ForwardingFamilyId family :
       {ForwardingFamilyId::kSsmfp, ForwardingFamilyId::kSsmfp2}) {
    const SoakOutcome s = runChurnSoak(family, steps);
    if (!s.ok()) gateOk = false;
    if (!first) json << ",";
    first = false;
    json << "{\"family\":\"" << s.family << "\",\"steps\":" << s.steps
         << ",\"submitted\":" << s.submitted
         << ",\"valid_deliveries\":" << s.validDeliveries
         << ",\"amnestied_deliveries\":" << s.amnestiedDeliveries
         << ",\"invalid_deliveries\":" << s.invalidDeliveries
         << ",\"fault_events\":" << s.faultEvents
         << ",\"drained\":" << (s.drained ? "true" : "false")
         << ",\"drain_required\":" << (s.drainRequired ? "true" : "false")
         << ",\"cns_wedge\":" << (s.wedged ? "true" : "false")
         << ",\"violation\":\"" << s.violation
         << "\",\"steps_per_sec\":" << s.stepsPerSec << "}";
    soakTable.addRow({s.family, Table::num(s.steps),
                      Table::num(std::uint64_t{s.submitted}),
                      Table::num(s.validDeliveries),
                      Table::num(s.amnestiedDeliveries),
                      Table::num(s.invalidDeliveries),
                      Table::num(s.faultEvents),
                      s.drained ? "drained" : (s.wedged ? "cns-wedge" : "STUCK"),
                      Table::num(s.stepsPerSec, 0)});
  }
  json << "]";

  // -- Part 2: the built-in campaign table --------------------------------
  const CampaignReport report = runCampaign(builtinCampaign(steps));
  if (!report.passed()) gateOk = false;
  json << ",\"campaign\":{\"cells\":" << report.cells.size()
       << ",\"unexpected\":" << report.unexpected()
       << ",\"expected_failures_fired\":" << report.expectedFailuresFired()
       << ",\"passed\":" << (report.passed() ? "true" : "false") << "}";

  // -- Part 3: the search/shrink artifact ---------------------------------
  const auto finding = searchAdversarialSchedule(seededWeaknessSearch());
  const bool replayed =
      finding.has_value() && replayFinding(*finding).has_value();
  if (!finding.has_value() || !replayed) gateOk = false;
  json << ",\"search\":{\"found\":" << (finding ? "true" : "false")
       << ",\"replay_reproduces\":" << (replayed ? "true" : "false");
  if (finding) {
    json << ",\"candidates_tried\":" << finding->candidatesTried
         << ",\"shrink_probes\":" << finding->shrinkProbes
         << ",\"script_steps\":" << finding->script.size()
         << ",\"dropped_script_steps\":" << finding->droppedScriptSteps
         << ",\"dropped_corruption_events\":"
         << finding->droppedCorruptionEvents
         << ",\"dropped_topology_events\":" << finding->droppedTopologyEvents;
  }
  json << "}}";

  soakTable.printMarkdown(std::cout);
  std::cout << "campaign: " << report.cells.size() << " cells, "
            << report.unexpected() << " unexpected, "
            << report.expectedFailuresFired() << " expected failures fired\n";
  if (finding) {
    std::cout << "search: seeded weakness found ("
              << finding->candidatesTried << " candidates, "
              << finding->shrinkProbes << " shrink probes, "
              << finding->script.size() << "-step script), replay "
              << (replayed ? "reproduces" : "LOST") << "\n";
  } else {
    std::cout << "search: seeded weakness NOT FOUND\n";
  }

  std::ofstream file(path);
  file << json.str() << "\n";
  if (!file) {
    std::cerr << "cannot write " << path << "\n";
    return 2;
  }
  std::cout << "json written to " << path << "\n";
  if (!gateOk) {
    std::cerr << "FAIL: a soak delivered invalid/violated or failed its "
                 "family's drain contract, a campaign cell missed its "
                 "expectation, or the seeded weakness escaped\n";
    return 1;
  }
  std::cout << "all gates passed: soaks exactly-once under churn (ssmfp "
               "drained), campaign as expected, weakness found and replayed\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "BENCH_campaign.json";
  std::uint64_t steps = 10'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--out=", 0) == 0) {
      path = std::string(arg.substr(6));
    } else if (arg.rfind("--steps=", 0) == 0) {
      steps = static_cast<std::uint64_t>(
          std::stod(std::string(arg.substr(8))));
    } else {
      std::cerr << "usage: bench_campaign [--out=path] [--steps=n]\n";
      return 2;
    }
  }
  return runBench(path, steps == 0 ? 1 : steps);
}
