// Ablation - choice_p(d) selection policies (conclusion's future work:
// "we believe that we can keep our protocol and modify the fair scheme of
// selection of messages choice_p(d)" to improve the worst case).
//
// Same contended workloads under the paper's round-robin queue, an unfair
// fixed-priority selector, and an oldest-message-first selector. Reported:
// max/avg delivery latency and the generation tail (when the last request
// was served). Expected shape: oldest-first flattens the latency tail
// (no message is passed unboundedly often), fixed-priority stretches it.

#include <iostream>

#include "sim/runner.hpp"
#include "stats/table.hpp"

int main() {
  using namespace snapfwd;
  std::cout << "# Ablation: choice_p(d) selection policies\n\n";

  Table table("All-to-one floods (6 msgs/source), corrupted start",
              {"topology", "policy", "SP", "rounds", "max latency",
               "avg latency", "last generation (round)"});

  struct Net {
    TopologyKind topology;
    std::size_t n;
    NodeId hotspot;
  };
  const Net nets[] = {
      {TopologyKind::kStar, 8, 0},
      {TopologyKind::kRing, 8, 0},
      {TopologyKind::kGrid, 9, 4},
  };
  const ChoicePolicy policies[] = {ChoicePolicy::kRoundRobin,
                                   ChoicePolicy::kFixedPriority,
                                   ChoicePolicy::kOldestFirst};
  bool allSp = true;
  for (const auto& net : nets) {
    for (const auto policy : policies) {
      ExperimentConfig cfg;
      cfg.topo.kind = net.topology;
      cfg.topo.n = net.n;
      cfg.topo.rows = 3;
      cfg.topo.cols = 3;
      cfg.seed = 33;
      cfg.daemon = DaemonKind::kDistributedRandom;
      cfg.traffic = TrafficKind::kAllToOne;
      cfg.hotspot = net.hotspot;
      cfg.perSource = 6;
      cfg.choicePolicy = policy;
      cfg.corruption.routingFraction = 1.0;
      cfg.corruption.invalidMessages = 6;
      const ExperimentResult r = runSsmfpExperiment(cfg);
      allSp &= r.spec.satisfiesSp() && r.quiescent;
      table.addRow({toString(net.topology), toString(policy),
                    Table::yesNo(r.spec.satisfiesSp()), Table::num(r.rounds),
                    Table::num(r.maxDeliveryRounds),
                    Table::num(r.avgDeliveryRounds, 1),
                    Table::num(r.maxGenerationRound)});
    }
  }
  table.printMarkdown(std::cout);
  std::cout << "all policies satisfied SP on these finite workloads: "
            << (allSp ? "yes" : "NO") << "\n";
  std::cout << "\nInterpretation: round-robin (the paper) bounds passes per hop\n"
               "by Delta, which keeps the worst single-message latency low at\n"
               "the cost of a longer generation tail; oldest-first trades the\n"
               "other way (better average, earlier drain on ring/grid, worse\n"
               "worst-case on the star hotspot). Fixed-priority only drains\n"
               "because the workload is finite - under continuous traffic its\n"
               "privileged sender starves the rest, which is why the proofs\n"
               "need a fair choice. No policy dominates: the conclusion's\n"
               "open question is real.\n";
  return allSp ? 0 : 1;
}
