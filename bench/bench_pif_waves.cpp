// Framework demo - snap-stabilizing PIF wave cost vs tree shape.
//
// Not an experiment of THIS paper (PIF is its foundational reference
// [2,3]); included to show the engine hosts the protocol family and to
// measure the textbook shape: a full wave costs Theta(h) rounds on a tree
// of height h, independent of the initial configuration.

#include <iostream>

#include "graph/builders.hpp"
#include "pif/pif.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int main() {
  using namespace snapfwd;
  std::cout << "# Framework demo: snap-stabilizing PIF on trees\n\n";

  Table table("3 waves from scrambled states, 5 seeds, distributed daemon",
              {"tree", "n", "height", "rounds/wave (mean)", "rounds/height",
               "all waves complete"});

  struct Case {
    const char* name;
    Graph graph;
    std::uint32_t height;
  };
  std::vector<Case> cases;
  cases.push_back({"path(8)", topo::path(8), 7});
  cases.push_back({"path(16)", topo::path(16), 15});
  cases.push_back({"btree(15)", topo::binaryTree(15), 3});
  cases.push_back({"btree(31)", topo::binaryTree(31), 4});
  cases.push_back({"star(16)", topo::star(16), 1});

  bool allOk = true;
  for (auto& c : cases) {
    Summary roundsPerWave;
    bool ok = true;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      PifProtocol pif(c.graph, 0);
      Rng rng(seed);
      pif.scrambleStates(rng);
      for (int i = 0; i < 3; ++i) pif.requestWave();
      DistributedRandomDaemon daemon(rng.fork(1), 0.5);
      Engine engine(c.graph, {&pif}, daemon);
      pif.attachEngine(&engine);
      engine.run(3'000'000);
      ok &= engine.isTerminal() && pif.allClean();
      std::size_t valid = 0;
      for (const auto& wave : pif.waves()) {
        if (wave.valid) {
          ++valid;
          ok &= (wave.participants == c.graph.size());
        }
      }
      ok &= (valid == 3);
      roundsPerWave.add(static_cast<double>(engine.roundCount()) / 3.0);
    }
    allOk &= ok;
    table.addRow({c.name, Table::num(std::uint64_t{c.graph.size()}),
                  Table::num(std::uint64_t{c.height}),
                  Table::num(roundsPerWave.mean(), 1),
                  Table::num(roundsPerWave.mean() / c.height, 2),
                  Table::yesNo(ok)});
  }
  table.printMarkdown(std::cout);
  std::cout << "\nShape: rounds per wave scale with tree height (the B, F and\n"
               "C fronts each traverse the height once), independent of the\n"
               "scrambled initial configuration - snap-stabilization for the\n"
               "protocol family the paper builds on.\n";
  return allOk ? 0 : 1;
}
