// E10 - the headline theorem, differentially: from ARBITRARY initial
// configurations (fully corrupted routing tables, garbage in buffers,
// scrambled fairness queues), SSMFP satisfies SP on every run while the
// fault-free baseline deadlocks, loses or duplicates messages.
//
// 20 seeds x 2 topologies; for SSMFP the routing layer self-stabilizes
// with priority, for the baseline the corrupted tables are frozen (it has
// no repair story - that is the point of the comparison: the paper's
// contribution is exactly the ability to START before the tables are
// correct).

#include <iostream>

#include "sim/runner.hpp"
#include "stats/table.hpp"

int main() {
  using namespace snapfwd;
  std::cout << "# E10: snap-stabilization vs the fault-free baseline,\n"
               "#      arbitrary initial configurations\n\n";

  Table table("Per-protocol outcomes over 20 corrupted-start runs",
              {"topology", "protocol", "runs SP", "runs violating SP",
               "lost msgs", "duplicated msgs", "stuck runs"});

  const TopologyKind topologies[] = {TopologyKind::kRing,
                                     TopologyKind::kRandomConnected};
  bool ssmfpPerfect = true;
  bool baselineBroken = false;
  for (const auto topology : topologies) {
    std::uint64_t ssmfpSp = 0, ssmfpViol = 0, ssmfpLost = 0, ssmfpDup = 0,
                  ssmfpStuck = 0;
    std::uint64_t baseSp = 0, baseViol = 0, baseLost = 0, baseDup = 0,
                  baseStuck = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      ExperimentConfig cfg;
      cfg.topo.kind = topology;
      cfg.topo.n = 8;
      cfg.seed = seed;
      cfg.daemon = DaemonKind::kDistributedRandom;
      cfg.traffic = TrafficKind::kUniform;
      cfg.messageCount = 16;
      cfg.payloadSpace = 4;
      cfg.corruption.routingFraction = 1.0;
      cfg.corruption.invalidMessages = 10;
      cfg.corruption.scrambleQueues = true;
      cfg.maxSteps = 400'000;

      const ExperimentResult s = runSsmfpExperiment(cfg);
      if (s.spec.satisfiesSp() && s.quiescent) {
        ++ssmfpSp;
      } else {
        ++ssmfpViol;
        ssmfpPerfect = false;
      }
      ssmfpLost += s.spec.lostTraces;
      ssmfpDup += s.spec.duplicatedTraces;
      ssmfpStuck += s.quiescent ? 0 : 1;

      const ExperimentResult b = runBaselineExperiment(cfg);
      if (b.spec.satisfiesSp() && b.quiescent) {
        ++baseSp;
      } else {
        ++baseViol;
        baselineBroken = true;
      }
      baseLost += b.spec.lostTraces;
      baseDup += b.spec.duplicatedTraces;
      baseStuck += b.quiescent ? 0 : 1;
    }
    table.addRow({toString(topology), "ssmfp", Table::num(ssmfpSp),
                  Table::num(ssmfpViol), Table::num(ssmfpLost),
                  Table::num(ssmfpDup), Table::num(ssmfpStuck)});
    table.addRow({toString(topology), "baseline", Table::num(baseSp),
                  Table::num(baseViol), Table::num(baseLost),
                  Table::num(baseDup), Table::num(baseStuck)});
  }
  table.printMarkdown(std::cout);
  std::cout << "SSMFP satisfied SP on every corrupted run: "
            << (ssmfpPerfect ? "yes" : "NO") << "\n"
            << "baseline violated SP on at least one run: "
            << (baselineBroken ? "yes" : "NO (unexpected)") << "\n";
  std::cout << "\nPaper claim reproduced: SSMFP delivers every valid message\n"
               "exactly once REGARDLESS of the initial state of the routing\n"
               "tables, which the fault-free destination-based scheme cannot.\n";
  return (ssmfpPerfect && baselineBroken) ? 0 : 1;
}
