// E4 - Figure 4: caterpillar types, and the Lemma 1 progression.
//
// Rebuilds the figure's four example configurations (two of type 1, one of
// type 2, one of type 3) on a path, classifies them with the Definition 3
// checker, and then runs a live message end-to-end recording its
// caterpillar type after every step - the 1 -> 2 -> 3 -> 1-at-next-hop
// cycle that drives the progress proof.

#include <iostream>

#include "checker/caterpillar.hpp"
#include "core/engine.hpp"
#include "graph/builders.hpp"
#include "routing/oracle.hpp"
#include "ssmfp/ssmfp.hpp"
#include "stats/table.hpp"

int main() {
  using namespace snapfwd;
  std::cout << "# E4 / Figure 4: caterpillar classification\n\n";

  const Graph g = topo::path(4);
  const OracleRouting routing(g);

  Table examples("Figure 4's example configurations (destination 3)",
                 {"configuration", "classified as", "expected"});
  {
    // Type 1, first variant: bufR_p = (m, p, c) (self-origin).
    SsmfpProtocol proto(g, routing);
    Message m;
    m.payload = 5;
    m.lastHop = 1;
    m.color = 0;
    proto.injectReception(1, 3, m);
    examples.addRow({"bufR_1=(m,1,c), upstream irrelevant",
                     toString(classifyReception(proto, 1, 3)), "type1"});
  }
  {
    // Type 1, second variant: bufR_p = (m, q, c) with bufE_q != (m, ., c).
    SsmfpProtocol proto(g, routing);
    Message m;
    m.payload = 5;
    m.lastHop = 1;
    m.color = 0;
    proto.injectReception(2, 3, m);
    examples.addRow({"bufR_2=(m,1,c), bufE_1 empty",
                     toString(classifyReception(proto, 2, 3)), "type1"});
  }
  {
    // Type 2: bufE_p = (m, q, c) with no copy at the next hop.
    SsmfpProtocol proto(g, routing);
    Message m;
    m.payload = 5;
    m.lastHop = 1;
    m.color = 1;
    proto.injectEmission(1, 3, m);
    examples.addRow({"bufE_1=(m,q,c), bufR_2 != (m,1,c)",
                     toString(classifyEmission(proto, 1, 3)), "type2"});
  }
  {
    // Type 3: emission copy plus downstream reception copy.
    SsmfpProtocol proto(g, routing);
    Message m;
    m.payload = 5;
    m.lastHop = 1;
    m.color = 1;
    proto.injectEmission(1, 3, m);
    proto.injectReception(2, 3, m);  // (m, 1, c) downstream
    examples.addRow({"bufE_1=(m,q,c), bufR_2 = (m,1,c)",
                     toString(classifyEmission(proto, 1, 3)), "type3"});
  }
  examples.printMarkdown(std::cout);

  // Lemma 1 live: a message 0 -> 3 walks the caterpillar cycle at each hop.
  SsmfpProtocol proto(g, routing);
  proto.send(0, 3, 42);
  ScriptedDaemon daemon({
      {{0, kR1Generate, 3}},
      {{0, kR2Internal, 3}},
      {{1, kR3Forward, 3}},
      {{0, kR4EraseForwarded, 3}},
      {{1, kR2Internal, 3}},
      {{2, kR3Forward, 3}},
      {{1, kR4EraseForwarded, 3}},
      {{2, kR2Internal, 3}},
      {{3, kR3Forward, 3}},
      {{2, kR4EraseForwarded, 3}},
      {{3, kR2Internal, 3}},
      {{3, kR6Consume, 3}},
  });
  Engine engine(g, {&proto}, daemon);
  proto.attachEngine(&engine);

  Table progression("Lemma 1 progression of one message 0 -> 3",
                    {"step", "rule", "census type1/type2/type3/tails"});
  const char* rules[] = {"R1@0", "R2@0", "R3@1", "R4@0", "R2@1", "R3@2",
                         "R4@1", "R2@2", "R3@3", "R4@2", "R2@3", "R6@3"};
  std::size_t step = 0;
  while (engine.step()) {
    const CaterpillarCensus census = censusOf(proto);
    progression.addRow(
        {Table::num(std::uint64_t{step + 1}), rules[step],
         Table::num(census.type1) + "/" + Table::num(census.type2) + "/" +
             Table::num(census.type3) + "/" + Table::num(census.tails)});
    ++step;
  }
  progression.printMarkdown(std::cout);

  const bool ok = daemon.allMatched() && proto.deliveries().size() == 1;
  std::cout << "delivered exactly once: " << (ok ? "yes" : "NO") << "\n";
  std::cout << "\nPaper claim reproduced: every occupied buffer classifies under\n"
               "Definition 3, and a forwarded message cycles type1 -> type2 ->\n"
               "type3 -> type1-at-next-hop until consumed (Lemma 1).\n";
  return ok ? 0 : 1;
}
