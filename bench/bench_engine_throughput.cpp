// E12 - engine throughput and the parallel guard-evaluation ablation.
//
// google-benchmark microbenchmarks of the state-model engine: steps/second
// as a function of network size, serial vs thread-pool guard evaluation.
// This quantifies the simulator substrate itself (not a paper claim).

#include <benchmark/benchmark.h>

#include "core/engine.hpp"
#include "graph/builders.hpp"
#include "routing/selfstab_bfs.hpp"
#include "ssmfp/ssmfp.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace {

using namespace snapfwd;

void runSteps(benchmark::State& state, ThreadPool* pool) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  const Graph graph = topo::randomConnected(n, n / 2, rng);
  for (auto _ : state) {
    state.PauseTiming();
    SelfStabBfsRouting routing(graph);
    // Restrict destinations to keep state quadratic growth in check.
    std::vector<NodeId> dests{0, static_cast<NodeId>(n / 2)};
    SsmfpProtocol forwarding(graph, routing, dests);
    Rng faultRng(7);
    routing.corrupt(faultRng, 0.5);
    for (NodeId p = 1; p < graph.size(); ++p) forwarding.send(p, 0, p);
    DistributedRandomDaemon daemon(rng.fork(1), 0.5);
    Engine engine(graph, {&routing, &forwarding}, daemon, pool);
    forwarding.attachEngine(&engine);
    state.ResumeTiming();

    const std::uint64_t executed = engine.run(500);
    benchmark::DoNotOptimize(executed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 500);
}

void BM_EngineSerial(benchmark::State& state) { runSteps(state, nullptr); }

void BM_EngineParallel(benchmark::State& state) {
  static ThreadPool pool(4);
  runSteps(state, &pool);
}

BENCHMARK(BM_EngineSerial)->Arg(16)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineParallel)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
