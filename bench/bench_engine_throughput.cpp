// E12 - engine throughput: scan-mode (full vs incremental) x topology x
// serial/parallel guard evaluation.
//
// google-benchmark microbenchmarks of the state-model engine substrate
// (not a paper claim): steps/second under ScanMode::kFull (evaluate every
// guard every step) vs ScanMode::kIncremental (re-evaluate only the dirty
// neighborhood N[W]), on ring / grid / random topologies, with the
// guard-evals-per-step counter exposing the work actually performed.
//
// Run with --scanmode-report[=path] to skip google-benchmark and instead
// write the archived sparse-activity comparison (n >= 1024, few in-flight
// messages - the regime the incremental scheduler exists for) as JSON.
// Exits non-zero if incremental fails to reach 2x steps/sec there, so the
// archived numbers cannot silently regress.

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"
#include "graph/builders.hpp"
#include "routing/frozen.hpp"
#include "routing/selfstab_bfs.hpp"
#include "ssmfp/ssmfp.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace {

using namespace snapfwd;

Graph makeTopology(int kind, std::size_t n, Rng& rng) {
  switch (kind) {
    case 0: return topo::ring(n);
    case 1: {
      std::size_t side = 1;
      while (side * side < n) ++side;
      return topo::grid(side, side);
    }
    default: return topo::randomConnected(n, n / 4, rng);
  }
}

const char* topologyName(int kind) {
  switch (kind) {
    case 0: return "ring";
    case 1: return "grid";
    default: return "random-connected";
  }
}

// ---------------------------------------------------------------------------
// google-benchmark section: full SSMFP stack (self-stabilizing routing +
// forwarding), moderate n, corrupted start - the dense-activity regime.
// ---------------------------------------------------------------------------

void runSteps(benchmark::State& state, ThreadPool* pool, ScanMode mode,
              bool audit = false) {
  const int topoKind = static_cast<int>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  Rng topoRng(42);
  const Graph graph = makeTopology(topoKind, n, topoRng);

  std::uint64_t guardEvals = 0;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SelfStabBfsRouting routing(graph);
    // Restrict destinations to keep quadratic state growth in check.
    std::vector<NodeId> dests{0, static_cast<NodeId>(graph.size() / 2)};
    SsmfpProtocol forwarding(graph, routing, dests);
    Rng faultRng(7);
    routing.corrupt(faultRng, 0.5);
    for (NodeId p = 1; p < graph.size(); ++p) forwarding.send(p, 0, p);
    Rng daemonRng(43);
    DistributedRandomDaemon daemon(daemonRng.fork(1), 0.5);
    Engine engine(graph, {&routing, &forwarding}, daemon, pool,
                  EngineOptions{.scanMode = mode, .audit = audit});
    forwarding.attachEngine(&engine);
    state.ResumeTiming();

    const std::uint64_t executed = engine.run(500);
    benchmark::DoNotOptimize(executed);

    state.PauseTiming();
    guardEvals += engine.scanStats().guardEvals;
    steps += engine.stepCount();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 500);
  state.counters["guard_evals_per_step"] =
      steps == 0 ? 0.0
                 : static_cast<double>(guardEvals) / static_cast<double>(steps);
  state.SetLabel(std::string(topologyName(topoKind)) + "/" +
                 (mode == ScanMode::kFull ? "full" : "incremental") +
                 (audit ? "/audit" : ""));
}

void BM_EngineFull(benchmark::State& state) {
  runSteps(state, nullptr, ScanMode::kFull);
}

void BM_EngineIncremental(benchmark::State& state) {
  runSteps(state, nullptr, ScanMode::kIncremental);
}

// Audit axis: the same workloads with per-step access auditing on, pinning
// the contract-checking overhead (audit-capable builds only; a non-capable
// binary reports "audit-unavailable" instead of timing nothing useful).
void BM_EngineFullAudit(benchmark::State& state) {
  if (!kAuditCapable) {
    for (auto _ : state) {
    }
    state.SetLabel("audit-unavailable");
    return;
  }
  runSteps(state, nullptr, ScanMode::kFull, /*audit=*/true);
}

void BM_EngineIncrementalAudit(benchmark::State& state) {
  if (!kAuditCapable) {
    for (auto _ : state) {
    }
    state.SetLabel("audit-unavailable");
    return;
  }
  runSteps(state, nullptr, ScanMode::kIncremental, /*audit=*/true);
}

void BM_EngineFullParallel(benchmark::State& state) {
  static ThreadPool pool(4);
  runSteps(state, &pool, ScanMode::kFull);
}

void BM_EngineIncrementalParallel(benchmark::State& state) {
  static ThreadPool pool(4);
  runSteps(state, &pool, ScanMode::kIncremental);
}

void scanModeArgs(benchmark::internal::Benchmark* bench) {
  for (int topoKind : {0, 1, 2}) {
    for (int n : {64, 128}) bench->Args({topoKind, n});
  }
}

BENCHMARK(BM_EngineFull)->Apply(scanModeArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineIncremental)->Apply(scanModeArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineFullAudit)->Args({0, 64})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineIncrementalAudit)
    ->Args({0, 64})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineFullParallel)->Args({2, 128})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineIncrementalParallel)
    ->Args({2, 128})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --scanmode-report section: the sparse-activity regime. Large network
// (n >= 1024), correct (frozen) routing tables, a handful of in-flight
// messages: only a few processors are ever enabled, so a full sweep
// re-evaluates ~n guards to find ~8 enabled ones. This is the workload the
// incremental scheduler targets; the archived JSON pins its advantage.
// ---------------------------------------------------------------------------

struct ModeMeasurement {
  std::uint64_t steps = 0;
  double seconds = 0.0;
  double stepsPerSec = 0.0;
  double guardEvalsPerStep = 0.0;
  ScanStats scan;
};

ModeMeasurement measureSparse(const Graph& graph, ScanMode mode,
                              std::uint64_t maxSteps) {
  FrozenRouting routing(graph);  // correct tables: routing layer absent
  std::vector<NodeId> dests{0, static_cast<NodeId>(graph.size() / 2)};
  SsmfpProtocol forwarding(graph, routing, dests);
  // Few in-flight messages from fixed sources: sparse enabled sets.
  for (NodeId src = 1; src <= 8; ++src) {
    forwarding.send(static_cast<NodeId>(src * graph.size() / 9), 0,
                    static_cast<Payload>(src));
  }
  Rng daemonRng(77);
  DistributedRandomDaemon daemon(daemonRng.fork(1), 0.5);
  Engine engine(graph, {&forwarding}, daemon, nullptr,
                EngineOptions{.scanMode = mode});
  forwarding.attachEngine(&engine);

  const auto start = std::chrono::steady_clock::now();
  engine.run(maxSteps);
  const auto stop = std::chrono::steady_clock::now();

  ModeMeasurement m;
  m.steps = engine.stepCount();
  m.seconds = std::chrono::duration<double>(stop - start).count();
  m.stepsPerSec = m.seconds > 0.0 ? static_cast<double>(m.steps) / m.seconds : 0.0;
  m.scan = engine.scanStats();
  m.guardEvalsPerStep =
      m.steps == 0 ? 0.0
                   : static_cast<double>(m.scan.guardEvals) /
                         static_cast<double>(m.steps);
  return m;
}

void appendMeasurement(std::ostringstream& out, const char* mode,
                       const ModeMeasurement& m) {
  out << "\"" << mode << "\":{"
      << "\"steps\":" << m.steps << ",\"seconds\":" << m.seconds
      << ",\"stepsPerSec\":" << m.stepsPerSec
      << ",\"guardEvalsPerStep\":" << m.guardEvalsPerStep
      << ",\"fullScans\":" << m.scan.fullScans
      << ",\"incrementalScans\":" << m.scan.incrementalScans
      << ",\"avgDirtySize\":" << m.scan.avgDirtySize() << "}";
}

int writeScanModeReport(const std::string& path) {
  constexpr std::size_t kN = 1024;
  constexpr std::uint64_t kMaxSteps = 30'000;
  std::ostringstream out;
  out << "{\"experiment\":\"engine-scanmode-sparse\",\"n\":" << kN
      << ",\"inFlightMessages\":8,\"maxSteps\":" << kMaxSteps
      << ",\"topologies\":[";

  bool allFast = true;
  for (int topoKind : {0, 1, 2}) {
    Rng topoRng(42);
    const Graph graph = makeTopology(topoKind, kN, topoRng);
    const ModeMeasurement full = measureSparse(graph, ScanMode::kFull, kMaxSteps);
    const ModeMeasurement inc =
        measureSparse(graph, ScanMode::kIncremental, kMaxSteps);
    // Identical executions: both run the same number of steps.
    if (full.steps != inc.steps) {
      std::cerr << "scan-mode divergence on " << topologyName(topoKind) << ": "
                << full.steps << " vs " << inc.steps << " steps\n";
      return 2;
    }
    const double speedup =
        full.stepsPerSec > 0.0 ? inc.stepsPerSec / full.stepsPerSec : 0.0;
    if (topoKind != 0) out << ",";
    out << "{\"topology\":\"" << topologyName(topoKind) << "\",\"graphN\":"
        << graph.size() << ",";
    appendMeasurement(out, "full", full);
    out << ",";
    appendMeasurement(out, "incremental", inc);
    out << ",\"speedup\":" << speedup << "}";
    std::cerr << topologyName(topoKind) << ": full " << full.stepsPerSec
              << " steps/s (" << full.guardEvalsPerStep
              << " guard evals/step), incremental " << inc.stepsPerSec
              << " steps/s (" << inc.guardEvalsPerStep
              << " guard evals/step), speedup " << speedup << "x\n";
    if (speedup < 2.0) allFast = false;
  }
  out << "]}";

  std::ofstream file(path);
  file << out.str() << "\n";
  if (!file) {
    std::cerr << "cannot write " << path << "\n";
    return 2;
  }
  if (!allFast) {
    std::cerr << "FAIL: incremental scan below 2x on at least one topology\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--scanmode-report", 0) == 0) {
      const auto eq = arg.find('=');
      const std::string path = eq == std::string_view::npos
                                   ? std::string("BENCH_engine_scanmode.json")
                                   : std::string(arg.substr(eq + 1));
      return writeScanModeReport(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
