// Extension - the hidden cost of the low-buffer tree schemes: path stretch.
//
// The conclusion praises the acyclic-covering buffer graph for needing few
// buffers; running it over a spanning tree on a general topology pays with
// longer routes. This harness quantifies the trade on standard topologies:
// buffers per processor (2 vs n vs 2n) against mean/max path stretch
// (tree-path length / shortest-path length) and total hop-work for an
// all-pairs workload. SSMFP keeps shortest paths (its routing layer is
// BFS); the up/down cover pays up to ~2x diameter detours.

#include <iostream>

#include "graph/builders.hpp"
#include "routing/oracle.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int main() {
  using namespace snapfwd;
  std::cout << "# Extension: buffer economy vs path stretch\n\n";

  Table table("All-pairs route lengths: spanning-tree paths vs shortest paths",
              {"topology", "n", "buffers/node (cover vs SSMFP)",
               "mean stretch", "max stretch", "total hops (tree)",
               "total hops (shortest)"});

  struct Case {
    const char* name;
    Graph graph;
  };
  Rng rng(7);
  std::vector<Case> cases;
  cases.push_back({"ring(12)", topo::ring(12)});
  cases.push_back({"torus(4x4)", topo::torus(4, 4)});
  cases.push_back({"hypercube(4)", topo::hypercube(4)});
  Rng g1 = rng.fork(1);
  cases.push_back({"random(12,+8)", topo::randomConnected(12, 8, g1)});
  cases.push_back({"binary-tree(15)", topo::binaryTree(15)});  // stretch 1

  for (auto& c : cases) {
    const Graph tree = topo::spanningTree(c.graph, 0);
    Summary stretch;
    std::uint64_t treeHops = 0, shortHops = 0;
    for (NodeId s = 0; s < c.graph.size(); ++s) {
      const auto dg = c.graph.bfsDistances(s);
      const auto dt = tree.bfsDistances(s);
      for (NodeId d = 0; d < c.graph.size(); ++d) {
        if (s == d) continue;
        treeHops += dt[d];
        shortHops += dg[d];
        stretch.add(static_cast<double>(dt[d]) / static_cast<double>(dg[d]));
      }
    }
    table.addRow({c.name, Table::num(std::uint64_t{c.graph.size()}),
                  "2 vs " + Table::num(std::uint64_t{2 * c.graph.size()}),
                  Table::num(stretch.mean(), 2), Table::num(stretch.max(), 2),
                  Table::num(treeHops), Table::num(shortHops)});
  }
  table.printMarkdown(std::cout);
  std::cout << "\nReading: the up/down cover's 2-buffers-per-node economy costs\n"
               "up to " "~2-3x longer routes on cyclic topologies (and nothing on\n"
               "trees); SSMFP spends 2n buffers per node and keeps every route\n"
               "minimal. Both sides of the conclusion's trade-off, measured.\n";
  return 0;
}
