// E5 - Proposition 4: at most 2n invalid messages delivered to d.
//
// For each topology we saturate the destination-0 component of the buffer
// graph with garbage (all 2n buffers), fully corrupt the routing tables,
// scramble the fairness queues, run to quiescence and count how many
// invalid messages R6 hands to the destination. The paper's bound is 2n.

#include <iostream>

#include "sim/runner.hpp"
#include "stats/table.hpp"

int main() {
  using namespace snapfwd;
  std::cout << "# E5 / Proposition 4: invalid deliveries <= 2n\n\n";

  Table table("Invalid deliveries to destination 0 (buffers saturated with garbage)",
              {"topology", "n", "seed", "injected", "delivered invalid",
               "bound 2n", "within bound"});

  struct Row {
    TopologyKind topology;
    std::size_t n;
  };
  const Row rows[] = {
      {TopologyKind::kPath, 8},       {TopologyKind::kRing, 8},
      {TopologyKind::kStar, 8},       {TopologyKind::kBinaryTree, 7},
      {TopologyKind::kGrid, 9},       {TopologyKind::kComplete, 6},
      {TopologyKind::kRandomConnected, 10},
  };
  bool allWithin = true;
  std::uint64_t maxObserved = 0;
  for (const auto& row : rows) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      ExperimentConfig cfg;
      cfg.topology = row.topology;
      cfg.n = row.n;
      cfg.rows = 3;
      cfg.cols = 3;
      cfg.seed = seed;
      cfg.daemon = DaemonKind::kDistributedRandom;
      cfg.traffic = TrafficKind::kNone;
      cfg.destinations = {0};
      cfg.corruption.routingFraction = 1.0;
      cfg.corruption.invalidMessages = 1'000'000;  // saturate
      cfg.corruption.scrambleQueues = true;
      const ExperimentResult r = runSsmfpExperiment(cfg);
      const std::uint64_t bound = 2 * r.graphN;
      const bool within = r.quiescent && r.invalidDelivered <= bound;
      allWithin &= within;
      maxObserved = std::max(maxObserved, r.invalidDelivered);
      table.addRow({toString(row.topology), Table::num(std::uint64_t{r.graphN}),
                    Table::num(seed), Table::num(std::uint64_t{r.invalidInjected}),
                    Table::num(r.invalidDelivered), Table::num(bound),
                    Table::yesNo(within)});
    }
  }
  table.printMarkdown(std::cout);
  std::cout << "all runs within the 2n bound: " << (allWithin ? "yes" : "NO")
            << " (max observed " << maxObserved << ")\n";
  std::cout << "\nPaper claim: the d-component has 2n buffers, each holding at\n"
               "most one invalid message in the initial configuration, and in\n"
               "the worst case all of them are delivered to d.\n";
  return allWithin ? 0 : 1;
}
