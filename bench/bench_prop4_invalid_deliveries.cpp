// E5 - Proposition 4: at most 2n invalid messages delivered to d.
//
// For each topology we saturate the destination-0 component of the buffer
// graph with garbage (all 2n buffers), fully corrupt the routing tables,
// scramble the fairness queues, run to quiescence and count how many
// invalid messages R6 hands to the destination. The paper's bound is 2n.
//
// Runs as a topology x seed SweepMatrix (all hardware threads; results are
// bit-identical to a serial run) and archives every run as JSONL -
// argv[1] overrides the output path ("-" = stdout).

#include <fstream>
#include <iostream>

#include "sim/experiment_json.hpp"
#include "sim/sweep_matrix.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace snapfwd;
  std::cout << "# E5 / Proposition 4: invalid deliveries <= 2n\n\n";

  SweepMatrix matrix;
  matrix.base.daemon = DaemonKind::kDistributedRandom;
  matrix.base.traffic = TrafficKind::kNone;
  matrix.base.destinations = {0};
  matrix.base.corruption.routingFraction = 1.0;
  matrix.base.corruption.invalidMessages = 1'000'000;  // saturate
  matrix.base.corruption.scrambleQueues = true;
  matrix.topologies = {
      TopologySpec::path(8),    TopologySpec::ring(8),
      TopologySpec::star(8),    TopologySpec::binaryTree(7),
      TopologySpec::grid(3, 3), TopologySpec::complete(6),
      TopologySpec::randomConnected(10, 4),
  };
  matrix.options.firstSeed = 1;
  matrix.options.seedCount = 3;
  matrix.options.threads = 0;  // all hardware threads
  const SweepMatrixResult result = runSweepMatrix(matrix);

  Table table("Invalid deliveries to destination 0 (buffers saturated with garbage)",
              {"topology", "n", "seed", "injected", "delivered invalid",
               "bound 2n", "within bound"});
  bool allWithin = true;
  std::uint64_t maxObserved = 0;
  for (const SweepCell& cell : result.cells) {
    for (std::size_t i = 0; i < cell.result.runs.size(); ++i) {
      const ExperimentResult& r = cell.result.runs[i];
      const std::uint64_t seed = matrix.options.firstSeed + i;
      const std::uint64_t bound = 2 * r.graphN;
      const bool within = r.quiescent && r.invalidDelivered <= bound;
      allWithin &= within;
      maxObserved = std::max(maxObserved, r.invalidDelivered);
      table.addRow({toString(cell.topo.kind), Table::num(std::uint64_t{r.graphN}),
                    Table::num(seed), Table::num(std::uint64_t{r.invalidInjected}),
                    Table::num(r.invalidDelivered), Table::num(bound),
                    Table::yesNo(within)});
    }
  }
  table.printMarkdown(std::cout);
  std::cout << "all runs within the 2n bound: " << (allWithin ? "yes" : "NO")
            << " (max observed " << maxObserved << ")\n";

  RunManifest manifest;
  manifest.experiment = "bench_prop4_invalid_deliveries";
  manifest.firstSeed = matrix.options.firstSeed;
  manifest.seedCount = matrix.options.seedCount;
  manifest.threads = resolveThreadCount(matrix.options.threads);
  const std::string jsonlPath =
      argc > 1 ? argv[1] : "bench_prop4_invalid_deliveries.jsonl";
  if (jsonlPath == "-") {
    writeMatrixJsonl(std::cout, manifest, matrix.base, result);
  } else {
    std::ofstream out(jsonlPath);
    writeMatrixJsonl(out, manifest, matrix.base, result);
    std::cout << "JSONL results: " << jsonlPath << "\n";
  }

  std::cout << "\nPaper claim: the d-component has 2n buffers, each holding at\n"
               "most one invalid message in the initial configuration, and in\n"
               "the worst case all of them are delivered to d.\n";
  return allWithin ? 0 : 1;
}
