// E11 - R_A: stabilization time of the routing substrate A.
//
// R_A parameterizes Propositions 5-7; this harness measures it in rounds
// (and moves) from full corruption across topologies, sizes and daemons,
// showing the O(D)-rounds shape under the synchronous daemon and the cost
// profile under weaker daemons.

#include <iostream>

#include "core/engine.hpp"
#include "graph/builders.hpp"
#include "routing/selfstab_bfs.hpp"
#include "stats/table.hpp"

int main() {
  using namespace snapfwd;
  std::cout << "# E11: routing stabilization time R_A from full corruption\n\n";

  Table table("Self-stabilizing BFS routing: rounds/moves to silence",
              {"topology", "n", "D", "daemon", "rounds (R_A)", "moves",
               "rounds / D"});

  struct Case {
    const char* name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"path", topo::path(8)});
  cases.push_back({"path", topo::path(16)});
  cases.push_back({"ring", topo::ring(8)});
  cases.push_back({"ring", topo::ring(16)});
  cases.push_back({"grid", topo::grid(4, 4)});
  cases.push_back({"star", topo::star(16)});
  cases.push_back({"hypercube", topo::hypercube(4)});

  for (auto& c : cases) {
    for (const int daemonKind : {0, 1, 2}) {
      SelfStabBfsRouting routing(c.graph);
      Rng rng(31);
      routing.corrupt(rng, 1.0);
      std::unique_ptr<Daemon> daemon;
      const char* daemonName;
      switch (daemonKind) {
        case 0:
          daemon = std::make_unique<SynchronousDaemon>();
          daemonName = "synchronous";
          break;
        case 1:
          daemon = std::make_unique<DistributedRandomDaemon>(rng.fork(1), 0.5);
          daemonName = "distributed-random";
          break;
        default:
          daemon = std::make_unique<CentralRoundRobinDaemon>();
          daemonName = "central-rr";
          break;
      }
      Engine engine(c.graph, {&routing}, *daemon);
      engine.run(5'000'000);
      const bool converged = routing.matchesBfs();
      table.addRow(
          {c.name, Table::num(std::uint64_t{c.graph.size()}),
           Table::num(std::uint64_t{c.graph.diameter()}), daemonName,
           converged ? Table::num(engine.roundCount()) : "DID NOT CONVERGE",
           Table::num(engine.actionCount()),
           Table::num(static_cast<double>(engine.roundCount()) /
                          static_cast<double>(c.graph.diameter()),
                      2)});
      if (!converged) {
        table.printMarkdown(std::cout);
        return 1;
      }
    }
  }
  table.printMarkdown(std::cout);
  std::cout << "\nShape: R_A stays a small multiple of D in rounds under every\n"
               "daemon (the per-destination min+1 correction propagates one hop\n"
               "per round), validating the R_A term used in Props. 5-7.\n";
  return 0;
}
