// E17 - the MECHANISM behind Proposition 5's Delta factor.
//
// The Delta^D envelope comes from one step of the proof: while a message
// waits in bufE_s(d) for the next hop p to serve it, choice_p(d)'s
// round-robin queue can serve up to Delta other candidates first - so up
// to Delta messages "pass" it per hop. This harness makes the mechanism
// visible: on a star with hotspot destination, a victim message submitted
// LAST competes with k other senders for the center's reception buffer;
// its delivery latency grows ~linearly in k (the per-hop pass count),
// which compounded over D hops gives the Delta^D worst case.

#include <iostream>

#include "checker/spec_checker.hpp"
#include "core/engine.hpp"
#include "graph/builders.hpp"
#include "routing/selfstab_bfs.hpp"
#include "ssmfp/ssmfp.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int main() {
  using namespace snapfwd;
  std::cout << "# E17: the per-hop 'Delta messages can pass' mechanism "
               "(Prop. 5)\n\n";

  Table table("Victim latency vs number of competitors (star, hotspot center)",
              {"competitors k", "Delta", "victim latency (mean rounds, 5 seeds)",
               "latency / k", "SP all"});

  bool allSp = true;
  double firstRatio = 0.0;
  for (const std::size_t k : {2u, 4u, 8u, 12u}) {
    Summary latency;
    bool sp = true;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      // Star with k leaf competitors + 1 victim leaf + center destination.
      const Graph g = topo::star(k + 2);
      SelfStabBfsRouting routing(g);
      SsmfpProtocol proto(g, routing);
      Rng rng(seed);
      // Competitors each flood 3 messages to the center; the victim (the
      // last leaf) sends one message afterwards.
      for (NodeId leaf = 1; leaf <= k; ++leaf) {
        for (int j = 0; j < 3; ++j) proto.send(leaf, 0, leaf * 10 + j);
      }
      const TraceId victim = proto.send(static_cast<NodeId>(k + 1), 0, 999);
      DistributedRandomDaemon daemon(rng.fork(1), 0.5);
      Engine engine(g, {&routing, &proto}, daemon);
      proto.attachEngine(&engine);
      engine.run(3'000'000);
      sp &= engine.isTerminal() && checkSpec(proto).satisfiesSp();
      for (const auto& rec : proto.deliveries()) {
        if (rec.msg.trace == victim) {
          latency.add(static_cast<double>(rec.round - rec.msg.bornRound) +
                      static_cast<double>(rec.msg.bornRound));
          // bornRound ~ how long generation itself waited: include it -
          // the victim's total wait IS the quantity Prop. 6 bounds.
        }
      }
    }
    allSp &= sp;
    const double ratio = latency.mean() / static_cast<double>(k);
    if (firstRatio == 0.0) firstRatio = ratio;
    table.addRow({Table::num(std::uint64_t{k}), Table::num(std::uint64_t{k + 1}),
                  Table::num(latency.mean(), 1), Table::num(ratio, 2),
                  Table::yesNo(sp)});
  }
  table.printMarkdown(std::cout);
  std::cout << "\nShape: total victim wait grows ~linearly with the number of\n"
               "competitors that round-robin service lets pass (latency/k\n"
               "roughly constant) - one hop's worth of the Delta factor that,\n"
               "compounded over D hops, yields Prop. 5's Delta^D envelope.\n";
  return allSp ? 0 : 1;
}
