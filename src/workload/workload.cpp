#include "workload/workload.hpp"

#include <cassert>
#include <numeric>

#include "baseline/merlin_schweitzer.hpp"
#include "fwd/forwarding.hpp"

namespace snapfwd {

std::vector<TrafficItem> uniformTraffic(std::size_t n, std::size_t count, Rng& rng,
                                        Payload payloadSpace) {
  assert(n >= 2);
  std::vector<TrafficItem> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto src = static_cast<NodeId>(rng.below(n));
    NodeId dest = static_cast<NodeId>(rng.below(n - 1));
    if (dest >= src) ++dest;
    out.push_back({src, dest, rng.below(payloadSpace)});
  }
  return out;
}

std::vector<TrafficItem> allToOneTraffic(std::size_t n, NodeId dest,
                                         std::size_t perSource,
                                         Payload payloadSpace) {
  std::vector<TrafficItem> out;
  out.reserve((n - 1) * perSource);
  Payload payload = 0;
  for (NodeId src = 0; src < n; ++src) {
    if (src == dest) continue;
    for (std::size_t k = 0; k < perSource; ++k) {
      out.push_back({src, dest, payload++ % payloadSpace});
    }
  }
  return out;
}

std::vector<TrafficItem> permutationTraffic(std::size_t n, Rng& rng,
                                            Payload payloadSpace) {
  assert(n >= 2);
  std::vector<NodeId> pi(n);
  std::iota(pi.begin(), pi.end(), NodeId{0});
  // Sattolo's algorithm: a uniform cyclic permutation, so pi(p) != p.
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    std::swap(pi[i], pi[j]);
  }
  std::vector<TrafficItem> out;
  out.reserve(n);
  for (NodeId p = 0; p < n; ++p) {
    out.push_back({p, pi[p], rng.below(payloadSpace)});
  }
  return out;
}

std::vector<TrafficItem> antipodalTraffic(std::size_t n, Payload payloadSpace) {
  assert(n >= 2);
  std::vector<TrafficItem> out;
  out.reserve(n);
  for (NodeId p = 0; p < n; ++p) {
    const auto dest = static_cast<NodeId>((p + n / 2) % n);
    if (dest == p) continue;
    out.push_back({p, dest, static_cast<Payload>(p) % payloadSpace});
  }
  return out;
}

std::vector<TraceId> submitAll(ForwardingProtocol& protocol,
                               const std::vector<TrafficItem>& traffic) {
  std::vector<TraceId> traces;
  traces.reserve(traffic.size());
  for (const auto& item : traffic) {
    traces.push_back(protocol.send(item.src, item.dest, item.payload));
  }
  return traces;
}

std::vector<TraceId> submitAll(MerlinSchweitzerProtocol& protocol,
                               const std::vector<TrafficItem>& traffic) {
  std::vector<TraceId> traces;
  traces.reserve(traffic.size());
  for (const auto& item : traffic) {
    traces.push_back(protocol.send(item.src, item.dest, item.payload));
  }
  return traces;
}

}  // namespace snapfwd
