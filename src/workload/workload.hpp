#pragma once
// Traffic generators for the experiments.
//
// A workload is a list of (src, dest, payload) submissions. Payloads are
// drawn from a deliberately small space by default so that distinct
// messages frequently carry identical useful information - the case the
// paper's flag construction must disambiguate.

#include <cstdint>
#include <vector>

#include "fwd/message.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace snapfwd {

class ForwardingProtocol;
class MerlinSchweitzerProtocol;
class Engine;

struct TrafficItem {
  NodeId src = kNoNode;
  NodeId dest = kNoNode;
  Payload payload = 0;
};

/// `count` messages between uniformly random distinct (src, dest) pairs.
[[nodiscard]] std::vector<TrafficItem> uniformTraffic(std::size_t n,
                                                      std::size_t count, Rng& rng,
                                                      Payload payloadSpace = 8);

/// Every processor != dest sends `perSource` messages to `dest` (hotspot /
/// convergecast; stresses the fairness of choice_dest and Prop. 6 waiting
/// times).
[[nodiscard]] std::vector<TrafficItem> allToOneTraffic(std::size_t n, NodeId dest,
                                                       std::size_t perSource,
                                                       Payload payloadSpace = 8);

/// A random permutation pi; each p sends one message to pi(p) (pi(p) != p).
[[nodiscard]] std::vector<TrafficItem> permutationTraffic(std::size_t n, Rng& rng,
                                                          Payload payloadSpace = 8);

/// Each processor sends one message to (p + n/2) mod n (antipodal traffic;
/// maximizes path lengths on rings/tori).
[[nodiscard]] std::vector<TrafficItem> antipodalTraffic(std::size_t n,
                                                        Payload payloadSpace = 8);

/// Submits every item to the protocol's outbox (order preserved). Returns
/// the assigned trace ids.
std::vector<TraceId> submitAll(ForwardingProtocol& protocol,
                               const std::vector<TrafficItem>& traffic);
std::vector<TraceId> submitAll(MerlinSchweitzerProtocol& protocol,
                               const std::vector<TrafficItem>& traffic);

}  // namespace snapfwd
