#pragma once
// SSMFP2 - the journal paper's second snap-stabilizing message forwarding
// protocol: rank-indexed slots, D+1 buffers per processor (D = network
// diameter), implemented as a guarded-rule Protocol in the state model.
//
// Faithfulness note (documented divergence): the journal text ("Two
// snap-stabilizing point-to-point communication protocols in
// message-switched networks", arXiv 0905.2540) was reconstructed from its
// abstract - "the second one needs only D+1 buffers per processor" - and
// the buffer-graph toolbox of the companion CNS paper (arXiv 0905.1786).
// This implementation is the classic hops-so-far buffer-ranking scheme of
// that literature, fitted with the conference paper's color/erasure
// handshake so it is snap-stabilizing in the same sense as SSMFP. Where
// the published rule set differs in detail, this file is the authoritative
// specification of what the repo calls "ssmfp2".
//
// Every processor p holds K+1 slots, K = diameter(G); slot_p[k] carries at
// most one message that has crossed k hops since (re-)entering the slot
// ladder. Unlike SSMFP the destination is not implicit in a buffer index:
// messages carry their destination in the header (Message::dest), and a
// slot is a PAIR (buffer, state) with state in {received, ready}:
//   received - the copy just arrived from the upstream neighbor and the
//              handshake with it is still in progress (SSMFP's bufR role),
//   ready    - the copy owns the message and offers it downstream
//              (SSMFP's bufE role).
//
// Rules (processor p, rank k):
//  2R1 generation : request_p && slot_p[0] empty && no recycle pending
//                   -> slot_p[0] := ready(m, p, freshColor_p(0));
//                      request_p := false
//  2R2 internal   : slot_p[k] = received(m,q,c) && q in N_p
//                   && slot_q[k-1] != ready(m,.,c)
//                   -> slot_p[k] := ready(m, p, freshColor_p(k))
//  2R3 forwarding : slot_p[k] empty && k >= 1 && choice2_p(k) = s
//                   && slot_s[k-1] = ready(m,s,c) && nextHop_s(m.dest) = p
//                   -> slot_p[k] := received(m, s, c)
//  2R4 erase-fwd  : slot_p[k] = ready(m,p,c) && m.dest != p && k < K
//                   && slot_{nextHop_p(m.dest)}[k+1] = received(m,p,c)
//                   && forall r in N_p \ {nextHop}: slot_r[k+1] != received(m,p,c)
//                   -> slot_p[k] := empty
//  2R5 erase-dup  : slot_p[k] = received(m,q,c) && slot_q[k-1] = ready(m,.,c)
//                   && nextHop_q(m.dest) != p
//                   -> slot_p[k] := empty
//  2R6 consume    : slot_p[k] = ready(m,p,c) && m.dest = p
//                   -> deliver_p(m); slot_p[k] := empty
//  2R7 recycle    : slot_p[K] = ready(m,p,c) && m.dest != p && slot_p[0] empty
//                   -> slot_p[0] := ready(m, p, freshColor_p(0));
//                      slot_p[K] := empty
//  2R8 erase-junk : slot_p[k] holds a rank-inconsistent copy (see below)
//                   -> slot_p[k] := empty
//
// freshColor_p(k) is the smallest color in {0..Delta} carried by no
// received-state copy in a neighbor's slot at rank k+1 (SSMFP's color_p(d)
// argument: at most Delta neighbors pin at most Delta colors). choice2_p(k)
// is a round-robin queue over N_p (one queue per rank >= 1, length Delta).
//
// Rank-consistency (2R8). The rank discipline leaves a syntactic footprint
// no legitimate execution ever violates:
//   - rank-0 slots are written only by 2R1/2R7, both of which produce
//     ready(m, p, .): any received-state or foreign-lastHop rank-0 copy is
//     initial garbage;
//   - ready copies at any rank are produced only by 2R1/2R2/2R7, all of
//     which stamp lastHop := p: a ready copy with lastHop != p is garbage;
//   - received copies at rank >= 1 are produced only by 2R3, which stamps
//     the upstream NEIGHBOR: a received copy with lastHop = p is garbage.
// 2R8 erases exactly these, which is what lets the explorer prove a ZERO
// invalid-delivery bound on the figure-2-style corruption start set (every
// enumerated single-buffer corruption is rank-inconsistent) - a detection
// power the destination-indexed SSMFP structurally lacks. Garbage that
// byte-mimics a legitimate in-flight copy (ready with lastHop = p, or
// received from a real neighbor) is delivered like any message, bounded by
// the Proposition-4-style count (<= initially occupied slots;
// tests/test_propositions.cpp).
//
// Deadlock note (the CNS sufficiency condition): the rank ladder is the
// classic acyclic hops-so-far buffer graph, except for the 2R7 recycle arc
// rank K -> rank 0, which only corrupted initial configurations exercise.
// A configuration saturating a whole recycle cycle with mimicking garbage
// can deadlock; the CNS buffer-sufficiency condition (initial occupancy
// leaves one free slot per cycle) rules it out and is assumed by the
// experiments, matching the journal's setting.

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/protocol.hpp"
#include "fwd/forwarding.hpp"
#include "fwd/message.hpp"
#include "graph/graph.hpp"
#include "routing/routing.hpp"
#include "util/names.hpp"
#include "util/rng.hpp"

namespace snapfwd {

/// Slot handshake states (protocol-visible; serialized by canon/codec).
enum class SlotState : std::uint8_t {
  kReceived,
  kReady,
};

/// Deliberate guard weakenings behind a test hook, mirroring
/// SsmfpGuardMutation: the explorer's mutation smoke test plants one and
/// asserts the closure finds the violation.
///   k2R2SkipUpstreamCheck : 2R2 drops "slot_q[k-1] != ready(m,.,c)" - the
///     promotion fires while the upstream ready copy still exists, so one
///     valid trace owns two ready copies (breaks the single-ready-copy
///     invariant and, downstream, exactly-once delivery).
///   k2R4SkipStrayCopyCheck : 2R4 drops the stray-copy quantifier - the
///     ready copy is erased while a stray received copy survives on a wrong
///     neighbor, which later travels to the destination as a second
///     delivery.
enum class Ssmfp2GuardMutation : std::uint8_t {
  kNone,
  k2R2SkipUpstreamCheck,
  k2R4SkipStrayCopyCheck,
};

template <>
struct EnumNames<Ssmfp2GuardMutation> {
  static constexpr auto entries = std::to_array<NamedEnum<Ssmfp2GuardMutation>>({
      {Ssmfp2GuardMutation::kNone, "none"},
      {Ssmfp2GuardMutation::k2R2SkipUpstreamCheck, "2r2-skip-upstream-check"},
      {Ssmfp2GuardMutation::k2R4SkipStrayCopyCheck, "2r4-skip-stray-copy-check"},
  });
};

/// Rule identifiers (Action::rule), numbered 2R1..2R8.
enum Ssmfp2Rule : std::uint16_t {
  k2R1Generate = 1,
  k2R2Internal = 2,
  k2R3Forward = 3,
  k2R4EraseForwarded = 4,
  k2R5EraseDuplicate = 5,
  k2R6Consume = 6,
  k2R7Recycle = 7,
  k2R8EraseJunk = 8,
};

// Not `final`: the audit-contract tests (tests/test_access_audit.cpp)
// subclass it to seed each violation class against the real rule set.
class Ssmfp2Protocol : public ForwardingProtocol {
 public:
  /// `routing` is the nextHop oracle (the self-stabilizing layer running
  /// above this protocol in engine priority). `destinations` restricts
  /// which nodes messages may target (empty = all of I); unlike SSMFP it
  /// does not size any buffer - slots are rank-indexed.
  Ssmfp2Protocol(const Graph& graph, const RoutingProvider& routing,
                 std::vector<NodeId> destinations = {});
  ~Ssmfp2Protocol() override;

  // -- ForwardingProtocol family identity -----------------------------------
  [[nodiscard]] ForwardingFamilyId family() const override {
    return ForwardingFamilyId::kSsmfp2;
  }

  // -- Protocol -------------------------------------------------------------
  [[nodiscard]] std::string_view name() const override { return "ssmfp2"; }
  void enumerateEnabled(NodeId p, std::vector<Action>& out) const override;
  void stage(NodeId p, const Action& a) override;
  void commit(std::vector<NodeId>& written) override;
  /// Repairs topology-dependent state after the Graph was rewired out of
  /// band (faults/topology.hpp). Only the fairness queues need repair: the
  /// 2R2/2R3/2R5 guards already check hasEdge live, and 2R8 erases a
  /// received copy whose recorded upstream is gone - a straddling message
  /// can thus be lost (erased after its upstream already 2R4'd), which the
  /// streaming checker amnesties for pre-fault traces.
  void onTopologyMutation() override;
  // guardKernels() stays the GuardSource default (nullptr): the engine's
  // per-layer virtual fallback keeps ExecMode::kKernel runs working; a SoA
  // kernel set for the rank ladder is a cheap follow-up.

  // -- Application interface (request_p / nextMessage_p) --------------------
  TraceId send(NodeId src, NodeId dest, Payload payload) override;
  [[nodiscard]] bool request(NodeId p) const override {
    return !outbox_.read(p).empty();
  }
  [[nodiscard]] std::size_t outboxSize(NodeId p) const override {
    return outbox_.read(p).size();
  }
  [[nodiscard]] NodeId nextDestination(NodeId p) const override;

  // -- Event records --------------------------------------------------------
  [[nodiscard]] const std::vector<GenerationRecord>& generations() const override {
    return generations_;
  }
  [[nodiscard]] const std::vector<DeliveryRecord>& deliveries() const override {
    return deliveries_;
  }
  [[nodiscard]] std::uint64_t invalidDeliveryCount() const override {
    return invalidDeliveries_;
  }
  void setDeliveryHook(std::function<void(const DeliveryRecord&)> hook) override {
    deliveryHook_ = std::move(hook);
  }
  void attachEngine(const Engine* engine) override { engine_ = engine; }

  // -- State access (checkers, printers, tests) -----------------------------
  [[nodiscard]] const Graph& graph() const override { return graph_; }
  [[nodiscard]] const RoutingProvider& routing() const override {
    return routing_;
  }
  [[nodiscard]] const std::vector<NodeId>& destinations() const override {
    return dests_;
  }
  [[nodiscard]] bool isDestination(NodeId d) const override {
    return d < graph_.size() && destFlag_[d] != 0;
  }
  [[nodiscard]] Color delta() const { return delta_; }
  /// K = diameter(G): the highest rank; K+1 slots per processor.
  [[nodiscard]] std::uint32_t maxRank() const { return maxRank_; }

  [[nodiscard]] const Buffer& slot(NodeId p, std::uint32_t k) const {
    return slot_.read(cell(p, k));
  }
  /// Meaningful only while slot(p, k) is occupied.
  [[nodiscard]] SlotState slotState(NodeId p, std::uint32_t k) const {
    return static_cast<SlotState>(state_.read(cell(p, k)));
  }
  /// The round-robin queue backing choice2_p(k), k >= 1, in current order.
  [[nodiscard]] const std::vector<NodeId>& fairnessQueue(NodeId p,
                                                         std::uint32_t k) const {
    return queue_.read(cell(p, k));
  }

  /// choice2_p(k): first queue element s with a pullable ready copy at rank
  /// k-1 routed to p; kNoNode when no candidate qualifies.
  [[nodiscard]] NodeId choice2(NodeId p, std::uint32_t k) const;
  /// freshColor_p(k): smallest color in {0..Delta} absent from all
  /// received-state copies at rank k+1 of p's neighbors (k = K: 0).
  [[nodiscard]] Color freshColor(NodeId p, std::uint32_t k) const;

  [[nodiscard]] std::size_t occupiedBufferCount() const override;
  [[nodiscard]] bool fullyDrained() const override;

  // -- Arbitrary-initial-configuration injection ----------------------------
  /// Places `msg` in slot_p[k] with the given handshake state. Marks it
  /// invalid (initial-configuration garbage). lastHop must be in N_p u {p}
  /// and color <= Delta (asserted); dest must be an active destination;
  /// trace is auto-assigned if kInvalidTrace.
  void injectSlot(NodeId p, std::uint32_t k, SlotState state, Message msg);
  void scrambleQueues(Rng& rng) override;

  // -- Exact state restoration (canon/codec support) ------------------------
  /// Copies `msg` verbatim (validity, trace, provenance preserved).
  void restoreSlot(NodeId p, std::uint32_t k, SlotState state, const Message& msg);
  /// `order` must be a permutation of N_p (asserted).
  void setFairnessQueue(NodeId p, std::uint32_t k, std::vector<NodeId> order);
  void restoreOutboxEntry(NodeId p, NodeId dest, Payload payload,
                          TraceId trace) override;
  void clearSlotForRestore(NodeId p, std::uint32_t k);
  void clearOutboxForRestore(NodeId p) override;
  void clearEventRecordsForRestore() override;
  [[nodiscard]] TraceId nextTraceId() const override { return nextTrace_; }
  void setNextTraceId(TraceId next) override { nextTrace_ = next; }
  [[nodiscard]] TraceId waitingTrace(NodeId p, std::size_t k) const override {
    return outbox_.read(p)[k].trace;
  }
  /// Waiting outbox entry k of p as (dest, payload); waitingTrace(p, k)
  /// carries the trace (canon/codec walk the outbox through these).
  [[nodiscard]] std::pair<NodeId, Payload> waitingAt(NodeId p,
                                                     std::size_t k) const {
    const auto& e = outbox_.read(p)[k];
    return {e.dest, e.payload};
  }

  // -- Fault-seeding hook (explorer mutation smoke test) --------------------
  void setGuardMutationForTest(Ssmfp2GuardMutation mutation) {
    mutation_ = mutation;
    notifyExternalMutation();
  }
  [[nodiscard]] Ssmfp2GuardMutation guardMutation() const { return mutation_; }

 private:
  [[nodiscard]] std::size_t cell(NodeId p, std::uint32_t k) const {
    return static_cast<std::size_t>(p) * (maxRank_ + 1) + k;
  }
  [[nodiscard]] bool occupied(NodeId p, std::uint32_t k, SlotState s) const {
    return slot_.read(cell(p, k)).has_value() &&
           static_cast<SlotState>(state_.read(cell(p, k))) == s;
  }
  /// "slot_q[j] = ready(m,.,c)" of 2R2/2R5 (useful info = payload + dest).
  [[nodiscard]] bool upstreamReadyMatch(NodeId q, std::uint32_t j,
                                        const Message& msg) const;

  // Guard predicates, factored per rule; all read only current state.
  [[nodiscard]] bool guardR1(NodeId p) const;
  [[nodiscard]] bool guardR2(NodeId p, std::uint32_t k) const;
  [[nodiscard]] NodeId guardR3(NodeId p, std::uint32_t k) const;  // s or kNoNode
  [[nodiscard]] bool guardR4(NodeId p, std::uint32_t k) const;
  [[nodiscard]] bool guardR5(NodeId p, std::uint32_t k) const;
  [[nodiscard]] bool guardR6(NodeId p, std::uint32_t k) const;
  [[nodiscard]] bool guardR7(NodeId p) const;
  [[nodiscard]] bool guardR8(NodeId p, std::uint32_t k) const;

  /// Can s's rank-(k-1) ready copy be pulled into slot_p[k]?
  [[nodiscard]] bool pullCandidate(NodeId p, std::uint32_t k, NodeId s) const;

  [[nodiscard]] std::uint64_t nowStep() const;
  [[nodiscard]] std::uint64_t nowRound() const;

  const Graph& graph_;
  const RoutingProvider& routing_;
  std::vector<NodeId> dests_;
  std::vector<std::uint8_t> destFlag_;  // node id -> is active destination
  Color delta_;
  std::uint32_t maxRank_;  // K = diameter(G)
  Ssmfp2GuardMutation mutation_ = Ssmfp2GuardMutation::kNone;

  // Observable variables, one row of (K+1) cells per processor (audit-mode
  // access recording; see core/access_tracker.hpp).
  CheckedStore<Buffer> slot_;
  CheckedStore<std::uint8_t> state_;  // SlotState; valid iff slot occupied
  CheckedStore<std::vector<NodeId>> queue_;  // per (p, k), k >= 1; [p,0] unused

  struct OutboxEntry {
    NodeId dest;
    Payload payload;
    TraceId trace;
  };
  CheckedStore<std::deque<OutboxEntry>> outbox_;

  TraceId nextTrace_ = 1;
  std::vector<GenerationRecord> generations_;
  std::vector<DeliveryRecord> deliveries_;
  std::uint64_t invalidDeliveries_ = 0;
  std::function<void(const DeliveryRecord&)> deliveryHook_;
  const Engine* engine_ = nullptr;

  // Staged effects of the current atomic step.
  struct StagedOp {
    NodeId p = kNoNode;
    std::uint32_t k = 0;
    std::uint16_t rule = 0;
    bool writeSlot = false;
    Buffer newSlot;
    SlotState newState = SlotState::kReceived;
    bool writeRank0 = false;  // 2R7 writes rank K (k) and rank 0 together
    Buffer newRank0;
    NodeId rotateToBack = kNoNode;  // fairness-queue element served (rank k)
    bool popOutbox = false;
    Buffer delivered;
    Buffer generated;
  };
  std::vector<StagedOp> staged_;
};

}  // namespace snapfwd
