#include "ssmfp2/ssmfp2.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <deque>

namespace snapfwd {

namespace {

/// BFS eccentricity-based diameter (graphs here are connected and small;
/// unreachable pairs are ignored so a degenerate input cannot wedge the
/// constructor).
std::uint32_t computeDiameter(const Graph& graph) {
  const std::size_t n = graph.size();
  std::uint32_t diameter = 0;
  std::vector<std::uint32_t> dist(n);
  std::deque<NodeId> frontier;
  for (NodeId s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), UINT32_MAX);
    dist[s] = 0;
    frontier.assign(1, s);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (const NodeId v : graph.neighbors(u)) {
        if (dist[v] != UINT32_MAX) continue;
        dist[v] = dist[u] + 1;
        diameter = std::max(diameter, dist[v]);
        frontier.push_back(v);
      }
    }
  }
  return diameter;
}

/// "Same useful information" for the rank scheme: the header a guard may
/// compare is (payload, dest); SSMFP's sameInfoAndColor additionally pins
/// the color.
bool sameInfo(const Message& a, const Message& b) {
  return a.payload == b.payload && a.dest == b.dest;
}

}  // namespace

Ssmfp2Protocol::Ssmfp2Protocol(const Graph& graph, const RoutingProvider& routing,
                               std::vector<NodeId> destinations)
    : graph_(graph),
      routing_(routing),
      dests_(std::move(destinations)),
      destFlag_(graph.size(), 0),
      delta_(static_cast<Color>(graph.maxDegree())),
      maxRank_(computeDiameter(graph)) {
  if (dests_.empty()) {
    dests_.resize(graph.size());
    for (NodeId d = 0; d < graph.size(); ++d) dests_[d] = d;
  }
  std::sort(dests_.begin(), dests_.end());
  dests_.erase(std::unique(dests_.begin(), dests_.end()), dests_.end());
  for (const NodeId d : dests_) {
    assert(d < graph.size());
    destFlag_[d] = 1;
  }

  const std::size_t rowSize = maxRank_ + 1;
  const std::size_t cells = graph.size() * rowSize;
  slot_.configure(accessTrackerSlot(), rowSize);
  state_.configure(accessTrackerSlot(), rowSize);
  queue_.configure(accessTrackerSlot(), rowSize);
  outbox_.configure(accessTrackerSlot(), 1);
  slot_.resize(cells);
  state_.resize(cells);
  queue_.resize(cells);
  outbox_.resize(graph.size());
  // One pull queue per rank >= 1: N_p in id order (the Delta queue).
  for (NodeId p = 0; p < graph.size(); ++p) {
    for (std::uint32_t k = 1; k <= maxRank_; ++k) {
      queue_.write(cell(p, k)) = graph.neighbors(p);
    }
  }
  // 2R3/2R4/2R5 guards read the routing tables; out-of-band table rewrites
  // must invalidate our engine's enabled cache.
  routing_.setMutationCallback([this] { notifyExternalMutation(); });
}

Ssmfp2Protocol::~Ssmfp2Protocol() { routing_.setMutationCallback(nullptr); }

std::uint64_t Ssmfp2Protocol::nowStep() const {
  return engine_ != nullptr ? engine_->stepCount() : 0;
}

std::uint64_t Ssmfp2Protocol::nowRound() const {
  return engine_ != nullptr ? engine_->roundCount() : 0;
}

NodeId Ssmfp2Protocol::nextDestination(NodeId p) const {
  const auto& box = outbox_.read(p);
  return box.empty() ? kNoNode : box.front().dest;
}

bool Ssmfp2Protocol::upstreamReadyMatch(NodeId q, std::uint32_t j,
                                        const Message& msg) const {
  const Buffer& up = slot_.read(cell(q, j));
  return up.has_value() &&
         static_cast<SlotState>(state_.read(cell(q, j))) == SlotState::kReady &&
         sameInfo(*up, msg) && up->color == msg.color;
}

bool Ssmfp2Protocol::pullCandidate(NodeId p, std::uint32_t k, NodeId s) const {
  // s's rank-(k-1) slot must hold a rank-consistent ready copy (lastHop =
  // s; see the 2R8 discussion in the header - an inconsistent copy is junk
  // awaiting erasure and must never be propagated) routed to p.
  const std::size_t idx = cell(s, k - 1);
  const Buffer& up = slot_.read(idx);
  if (!up.has_value() ||
      static_cast<SlotState>(state_.read(idx)) != SlotState::kReady) {
    return false;
  }
  if (up->lastHop != s) return false;
  return routing_.nextHop(s, up->dest) == p;
}

NodeId Ssmfp2Protocol::choice2(NodeId p, std::uint32_t k) const {
  assert(k >= 1 && k <= maxRank_);
  for (const NodeId s : queue_.read(cell(p, k))) {
    if (pullCandidate(p, k, s)) return s;
  }
  return kNoNode;
}

Color Ssmfp2Protocol::freshColor(NodeId p, std::uint32_t k) const {
  // Smallest color in {0..Delta} carried by no received-state copy at rank
  // k+1 of a neighbor of p: those are exactly the copies a 2R4 handshake
  // might still compare against a copy (re-)entering rank k here, so
  // avoiding their colors rules out ABA confusions (the SSMFP color_p(d)
  // argument, rank-sliced). Rank K feeds no downstream handshake.
  if (k >= maxRank_) return 0;
  std::uint64_t used = 0;
  std::vector<bool> usedWide;
  const bool wide = delta_ >= 64;
  if (wide) usedWide.assign(static_cast<std::size_t>(delta_) + 1, false);
  for (const NodeId q : graph_.neighbors(p)) {
    const std::size_t idx = cell(q, k + 1);
    const Buffer& b = slot_.read(idx);
    if (!b.has_value() || b->color > delta_) continue;
    if (static_cast<SlotState>(state_.read(idx)) != SlotState::kReceived) continue;
    if (wide) {
      usedWide[b->color] = true;
    } else {
      used |= std::uint64_t{1} << b->color;
    }
  }
  if (!wide) return static_cast<Color>(std::countr_one(used));
  for (Color c = 0; c <= delta_; ++c) {
    if (!usedWide[c]) return c;
  }
  assert(false && "freshColor: no free color - pigeonhole violated");
  return 0;
}

// ---------------------------------------------------------------------------
// Guards
// ---------------------------------------------------------------------------

bool Ssmfp2Protocol::guardR1(NodeId p) const {
  // Generation yields the rank-0 slot to a pending recycle (2R7): a rank-K
  // survivor must not be starved by steady local traffic.
  return request(p) && !slot_.read(cell(p, 0)).has_value() && !guardR7(p);
}

bool Ssmfp2Protocol::guardR2(NodeId p, std::uint32_t k) const {
  if (k == 0) return false;  // rank-0 slots are never in received state
  const std::size_t idx = cell(p, k);
  const Buffer& b = slot_.read(idx);
  if (!b.has_value() ||
      static_cast<SlotState>(state_.read(idx)) != SlotState::kReceived) {
    return false;
  }
  const NodeId q = b->lastHop;
  // Rank-inconsistent received copies (lastHop = p or not a neighbor) are
  // 2R8's to erase, never to promote.
  if (q == p || q >= graph_.size() || !graph_.hasEdge(p, q)) return false;
  if (mutation_ == Ssmfp2GuardMutation::k2R2SkipUpstreamCheck) return true;
  return !upstreamReadyMatch(q, k - 1, *b);
}

NodeId Ssmfp2Protocol::guardR3(NodeId p, std::uint32_t k) const {
  if (k == 0) return kNoNode;
  if (slot_.read(cell(p, k)).has_value()) return kNoNode;
  return choice2(p, k);
}

bool Ssmfp2Protocol::guardR4(NodeId p, std::uint32_t k) const {
  if (k >= maxRank_) return false;  // no rank K+1: 2R7 handles rank K
  const std::size_t idx = cell(p, k);
  const Buffer& b = slot_.read(idx);
  if (!b.has_value() ||
      static_cast<SlotState>(state_.read(idx)) != SlotState::kReady) {
    return false;
  }
  if (b->lastHop != p) return false;  // junk; 2R8
  if (b->dest == p) return false;     // 2R6 consumes
  const NodeId hop = routing_.nextHop(p, b->dest);
  bool copyAtHop = false;
  for (const NodeId r : graph_.neighbors(p)) {
    const std::size_t ridx = cell(r, k + 1);
    const Buffer& rb = slot_.read(ridx);
    const bool match =
        rb.has_value() &&
        static_cast<SlotState>(state_.read(ridx)) == SlotState::kReceived &&
        sameInfo(*rb, *b) && rb->lastHop == p && rb->color == b->color;
    if (r == hop) {
      copyAtHop = match;
    } else if (match &&
               mutation_ != Ssmfp2GuardMutation::k2R4SkipStrayCopyCheck) {
      return false;  // a stray copy elsewhere: 2R5 must clean it first
    }
  }
  return copyAtHop;
}

bool Ssmfp2Protocol::guardR5(NodeId p, std::uint32_t k) const {
  if (k == 0) return false;
  const std::size_t idx = cell(p, k);
  const Buffer& b = slot_.read(idx);
  if (!b.has_value() ||
      static_cast<SlotState>(state_.read(idx)) != SlotState::kReceived) {
    return false;
  }
  const NodeId q = b->lastHop;
  if (q == p || q >= graph_.size() || !graph_.hasEdge(p, q)) return false;
  if (!upstreamReadyMatch(q, k - 1, *b)) return false;
  return routing_.nextHop(q, b->dest) != p;
}

bool Ssmfp2Protocol::guardR6(NodeId p, std::uint32_t k) const {
  const std::size_t idx = cell(p, k);
  const Buffer& b = slot_.read(idx);
  return b.has_value() &&
         static_cast<SlotState>(state_.read(idx)) == SlotState::kReady &&
         b->lastHop == p &&  // junk ready copies are 2R8's, not deliverable
         b->dest == p;
}

bool Ssmfp2Protocol::guardR7(NodeId p) const {
  if (maxRank_ == 0) return false;
  const std::size_t idx = cell(p, maxRank_);
  const Buffer& b = slot_.read(idx);
  return b.has_value() &&
         static_cast<SlotState>(state_.read(idx)) == SlotState::kReady &&
         b->lastHop == p && b->dest != p &&
         !slot_.read(cell(p, 0)).has_value();
}

bool Ssmfp2Protocol::guardR8(NodeId p, std::uint32_t k) const {
  const std::size_t idx = cell(p, k);
  const Buffer& b = slot_.read(idx);
  if (!b.has_value()) return false;
  const NodeId q = b->lastHop;
  const bool ready =
      static_cast<SlotState>(state_.read(idx)) == SlotState::kReady;
  // Rank-consistency footprint (see header): rank-0 copies and ready
  // copies carry lastHop = p; received copies at rank >= 1 carry a
  // neighbor. Anything else is initial garbage.
  if (k == 0) return !ready || q != p;
  if (ready) return q != p;
  return q == p || q >= graph_.size() || !graph_.hasEdge(p, q);
}

void Ssmfp2Protocol::enumerateEnabled(NodeId p, std::vector<Action>& out) const {
  // Action encoding: dest = unused (kNoNode), aux = rank for the
  // rank-indexed rules; 2R3 packs (rank, chosen sender) as rank * n + s.
  if (guardR1(p)) out.push_back(Action{k2R1Generate, kNoNode, 0});
  if (guardR7(p)) out.push_back(Action{k2R7Recycle, kNoNode, 0});
  for (std::uint32_t k = 0; k <= maxRank_; ++k) {
    if (guardR2(p, k)) out.push_back(Action{k2R2Internal, kNoNode, k});
    if (const NodeId s = guardR3(p, k); s != kNoNode) {
      out.push_back(Action{k2R3Forward, kNoNode,
                           std::uint64_t{k} * graph_.size() + s});
    }
    if (guardR4(p, k)) out.push_back(Action{k2R4EraseForwarded, kNoNode, k});
    if (guardR5(p, k)) out.push_back(Action{k2R5EraseDuplicate, kNoNode, k});
    if (guardR6(p, k)) out.push_back(Action{k2R6Consume, kNoNode, k});
    if (guardR8(p, k)) out.push_back(Action{k2R8EraseJunk, kNoNode, k});
  }
}

// ---------------------------------------------------------------------------
// Statements (staged against the pre-step configuration)
// ---------------------------------------------------------------------------

void Ssmfp2Protocol::stage(NodeId p, const Action& a) {
  StagedOp op;
  op.p = p;
  op.rule = a.rule;

  switch (a.rule) {
    case k2R1Generate: {
      assert(guardR1(p));
      const OutboxEntry& waiting = outbox_.read(p).front();
      Message msg;
      msg.payload = waiting.payload;
      msg.lastHop = p;
      msg.color = freshColor(p, 0);
      msg.trace = waiting.trace;
      msg.valid = true;
      msg.source = p;
      msg.dest = waiting.dest;
      msg.bornStep = nowStep();
      msg.bornRound = nowRound();
      op.k = 0;
      op.writeSlot = true;
      op.newSlot = msg;
      op.newState = SlotState::kReady;
      op.popOutbox = true;  // request_p := false
      op.generated = msg;
      break;
    }
    case k2R2Internal: {
      const auto k = static_cast<std::uint32_t>(a.aux);
      assert(guardR2(p, k));
      Message msg = *slot_.read(cell(p, k));
      msg.lastHop = p;
      msg.color = freshColor(p, k);
      op.k = k;
      op.writeSlot = true;
      op.newSlot = msg;
      op.newState = SlotState::kReady;
      break;
    }
    case k2R3Forward: {
      const auto k = static_cast<std::uint32_t>(a.aux / graph_.size());
      const auto s = static_cast<NodeId>(a.aux % graph_.size());
      assert(guardR3(p, k) == s);
      Message msg = *slot_.read(cell(s, k - 1));
      msg.lastHop = s;  // color kept: the handshake signature at rank k
      op.k = k;
      op.writeSlot = true;
      op.newSlot = msg;
      op.newState = SlotState::kReceived;
      op.rotateToBack = s;
      break;
    }
    case k2R4EraseForwarded: {
      const auto k = static_cast<std::uint32_t>(a.aux);
      assert(guardR4(p, k));
      op.k = k;
      op.writeSlot = true;
      op.newSlot = std::nullopt;
      break;
    }
    case k2R5EraseDuplicate: {
      const auto k = static_cast<std::uint32_t>(a.aux);
      assert(guardR5(p, k));
      op.k = k;
      op.writeSlot = true;
      op.newSlot = std::nullopt;
      break;
    }
    case k2R6Consume: {
      const auto k = static_cast<std::uint32_t>(a.aux);
      assert(guardR6(p, k));
      op.k = k;
      op.delivered = *slot_.read(cell(p, k));
      op.writeSlot = true;
      op.newSlot = std::nullopt;
      break;
    }
    case k2R7Recycle: {
      assert(guardR7(p));
      Message msg = *slot_.read(cell(p, maxRank_));
      msg.lastHop = p;
      msg.color = freshColor(p, 0);
      op.k = maxRank_;
      op.writeSlot = true;
      op.newSlot = std::nullopt;
      op.writeRank0 = true;
      op.newRank0 = msg;
      break;
    }
    case k2R8EraseJunk: {
      const auto k = static_cast<std::uint32_t>(a.aux);
      assert(guardR8(p, k));
      op.k = k;
      op.writeSlot = true;
      op.newSlot = std::nullopt;
      break;
    }
    default:
      assert(false && "unknown SSMFP2 rule");
  }
  staged_.push_back(std::move(op));
}

void Ssmfp2Protocol::commit(std::vector<NodeId>& written) {
  for (auto& op : staged_) {
    auditCommitOp(op.p, op.rule);
    written.push_back(op.p);  // every statement writes only p's variables
    const std::size_t idx = cell(op.p, op.k);
    if (op.writeSlot) {
      slot_.write(idx) = op.newSlot;
      state_.write(idx) = static_cast<std::uint8_t>(op.newState);
    }
    if (op.writeRank0) {
      const std::size_t idx0 = cell(op.p, 0);
      slot_.write(idx0) = op.newRank0;
      state_.write(idx0) = static_cast<std::uint8_t>(SlotState::kReady);
    }
    if (op.rotateToBack != kNoNode) {
      auto& q = queue_.write(idx);
      const auto it = std::find(q.begin(), q.end(), op.rotateToBack);
      if (it != q.end()) {
        q.erase(it);
        q.push_back(op.rotateToBack);
      }
    }
    if (op.popOutbox) {
      auto& box = outbox_.write(op.p);
      assert(!box.empty());
      box.pop_front();
    }
    if (op.generated.has_value()) {
      generations_.push_back({*op.generated, nowStep(), nowRound()});
    }
    if (op.delivered.has_value()) {
      DeliveryRecord record{*op.delivered, op.p, nowStep(), nowRound()};
      if (!record.msg.valid) ++invalidDeliveries_;
      deliveries_.push_back(record);
      if (deliveryHook_) deliveryHook_(deliveries_.back());
    }
  }
  staged_.clear();
}

// ---------------------------------------------------------------------------
// Application interface & injection
// ---------------------------------------------------------------------------

TraceId Ssmfp2Protocol::send(NodeId src, NodeId dest, Payload payload) {
  assert(src < graph_.size());
  assert(isDestination(dest) && "dest must be an active destination");
  const TraceId trace = nextTrace_++;
  outbox_.write(src).push_back({dest, payload, trace});
  notifyExternalMutation();  // request_p flipped outside stage/commit
  return trace;
}

void Ssmfp2Protocol::injectSlot(NodeId p, std::uint32_t k, SlotState state,
                                Message msg) {
  assert(p < graph_.size() && k <= maxRank_);
  assert(msg.color <= delta_);
  assert(msg.lastHop == p || graph_.hasEdge(p, msg.lastHop));
  assert(isDestination(msg.dest));
  msg.valid = false;
  if (msg.trace == kInvalidTrace) msg.trace = nextTrace_++;
  slot_.write(cell(p, k)) = msg;
  state_.write(cell(p, k)) = static_cast<std::uint8_t>(state);
  notifyExternalMutation();
}

void Ssmfp2Protocol::scrambleQueues(Rng& rng) {
  for (NodeId p = 0; p < graph_.size(); ++p) {
    for (std::uint32_t k = 1; k <= maxRank_; ++k) {
      rng.shuffle(queue_.rawMutable()[cell(p, k)]);
    }
  }
  notifyExternalMutation();
}

void Ssmfp2Protocol::restoreSlot(NodeId p, std::uint32_t k, SlotState state,
                                 const Message& msg) {
  assert(p < graph_.size() && k <= maxRank_);
  assert(msg.color <= delta_);
  slot_.write(cell(p, k)) = msg;
  state_.write(cell(p, k)) = static_cast<std::uint8_t>(state);
  notifyExternalMutation();
}

void Ssmfp2Protocol::setFairnessQueue(NodeId p, std::uint32_t k,
                                      std::vector<NodeId> order) {
  assert(k >= 1 && k <= maxRank_);
  assert(order.size() == graph_.degree(p));
#ifndef NDEBUG
  for (const NodeId c : order) {
    assert(graph_.hasEdge(p, c));
  }
#endif
  queue_.write(cell(p, k)) = std::move(order);
  notifyExternalMutation();
}

void Ssmfp2Protocol::restoreOutboxEntry(NodeId p, NodeId dest, Payload payload,
                                        TraceId trace) {
  assert(p < graph_.size() && isDestination(dest));
  outbox_.write(p).push_back({dest, payload, trace});
  notifyExternalMutation();
}

void Ssmfp2Protocol::clearSlotForRestore(NodeId p, std::uint32_t k) {
  assert(p < graph_.size() && k <= maxRank_);
  slot_.write(cell(p, k)).reset();
  notifyExternalMutation();
}

void Ssmfp2Protocol::clearOutboxForRestore(NodeId p) {
  assert(p < graph_.size());
  outbox_.write(p).clear();
  notifyExternalMutation();
}

void Ssmfp2Protocol::clearEventRecordsForRestore() {
  generations_.clear();
  deliveries_.clear();
  invalidDeliveries_ = 0;
}

void Ssmfp2Protocol::onTopologyMutation() {
  // Only the pull queues depend on the adjacency lists: every guard that
  // names another processor re-checks hasEdge live, and 2R8 junks received
  // copies whose recorded upstream is no longer a neighbor. Keep the
  // survivors' rotation order, append restored neighbors in id order.
  for (NodeId p = 0; p < graph_.size(); ++p) {
    const auto& nbrs = graph_.neighbors(p);
    for (std::uint32_t k = 1; k <= maxRank_; ++k) {
      auto& q = queue_.write(cell(p, k));
      std::erase_if(q, [&](NodeId c) { return !graph_.hasEdge(p, c); });
      for (const NodeId c : nbrs) {
        if (std::find(q.begin(), q.end(), c) == q.end()) q.push_back(c);
      }
      assert(q.size() == graph_.degree(p));
    }
  }
  notifyExternalMutation();
}

std::size_t Ssmfp2Protocol::occupiedBufferCount() const {
  std::size_t count = 0;
  for (const auto& b : slot_.raw()) count += b.has_value() ? 1 : 0;
  return count;
}

bool Ssmfp2Protocol::fullyDrained() const {
  if (occupiedBufferCount() != 0) return false;
  return std::all_of(outbox_.raw().begin(), outbox_.raw().end(),
                     [](const auto& box) { return box.empty(); });
}

}  // namespace snapfwd
