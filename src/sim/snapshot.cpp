#include "sim/snapshot.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace snapfwd {
namespace {

constexpr const char* kHeader = "snapfwd-snapshot v1";

void writeBuffer(std::ostream& out, const char* tag, NodeId p, NodeId d,
                 const Buffer& b, const SnapshotOptions& options) {
  if (!b.has_value()) return;
  const std::uint64_t bornStep = options.normalizeBirthStamps ? 0 : b->bornStep;
  const std::uint64_t bornRound =
      options.normalizeBirthStamps ? 0 : b->bornRound;
  out << tag << " " << p << " " << d << " " << b->payload << " " << b->lastHop
      << " " << b->color << " " << b->trace << " " << (b->valid ? 1 : 0) << " "
      << b->source << " " << b->dest << " " << bornStep << " " << bornRound
      << "\n";
}

[[noreturn]] void parseError(std::size_t line, const std::string& message) {
  throw std::runtime_error("snapshot parse error at line " +
                           std::to_string(line) + ": " + message);
}

}  // namespace

void writeSnapshot(std::ostream& out, const Graph& graph,
                   const SelfStabBfsRouting& routing,
                   const SsmfpProtocol& forwarding) {
  writeSnapshot(out, graph, routing, forwarding, SnapshotOptions{});
}

void writeSnapshot(std::ostream& out, const Graph& graph,
                   const SelfStabBfsRouting& routing,
                   const SsmfpProtocol& forwarding,
                   const SnapshotOptions& options) {
  out << kHeader << "\n";
  out << "graph " << graph.size() << "\n";
  for (const auto& [u, v] : graph.edges()) {
    out << "edge " << u << " " << v << "\n";
  }
  out << "dests";
  for (const NodeId d : forwarding.destinations()) out << " " << d;
  out << "\n";
  out << "policy " << static_cast<int>(forwarding.choicePolicy()) << "\n";
  for (NodeId p = 0; p < graph.size(); ++p) {
    for (NodeId d = 0; d < graph.size(); ++d) {
      out << "routing " << p << " " << d << " " << routing.dist(p, d) << " "
          << routing.parent(p, d) << "\n";
    }
  }
  for (NodeId p = 0; p < graph.size(); ++p) {
    for (const NodeId d : forwarding.destinations()) {
      writeBuffer(out, "bufR", p, d, forwarding.bufR(p, d), options);
      writeBuffer(out, "bufE", p, d, forwarding.bufE(p, d), options);
      out << "queue " << p << " " << d;
      for (const NodeId c : forwarding.fairnessQueue(p, d)) out << " " << c;
      out << "\n";
    }
  }
  for (NodeId p = 0; p < graph.size(); ++p) {
    std::size_t k = 0;
    forwarding.forEachWaiting(p, [&](NodeId dest, Payload payload) {
      out << "outbox " << p << " " << dest << " " << payload << " "
          << forwarding.waitingTrace(p, k++) << "\n";
    });
  }
  out << "nexttrace " << forwarding.nextTraceId() << "\n";
  out << "end\n";
}

std::string snapshotToString(const Graph& graph, const SelfStabBfsRouting& routing,
                             const SsmfpProtocol& forwarding) {
  std::ostringstream out;
  writeSnapshot(out, graph, routing, forwarding);
  return out.str();
}

std::string snapshotToString(const Graph& graph, const SelfStabBfsRouting& routing,
                             const SsmfpProtocol& forwarding,
                             const SnapshotOptions& options) {
  std::ostringstream out;
  writeSnapshot(out, graph, routing, forwarding, options);
  return out.str();
}

RestoredStack readSnapshot(std::istream& in) {
  std::string line;
  std::size_t lineNo = 0;
  auto nextLine = [&]() -> bool {
    while (std::getline(in, line)) {
      ++lineNo;
      if (!line.empty()) return true;
    }
    return false;
  };

  if (!nextLine() || line != kHeader) parseError(lineNo, "missing header");

  RestoredStack stack;
  std::vector<NodeId> dests;
  ChoicePolicy policy = ChoicePolicy::kRoundRobin;

  // Pass 1 state: we construct the graph first, then routing, then the
  // protocol once dests/policy are known, applying state lines in order
  // (the writer emits them in dependency order).
  while (nextLine()) {
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    auto need = [&](bool ok, const char* what) {
      if (!ok || fields.fail()) parseError(lineNo, what);
    };
    if (tag == "graph") {
      std::size_t n = 0;
      fields >> n;
      need(n > 0, "bad graph size");
      stack.graph = std::make_unique<Graph>(n);
    } else if (tag == "edge") {
      need(stack.graph != nullptr, "edge before graph");
      NodeId u, v;
      fields >> u >> v;
      need(u < stack.graph->size() && v < stack.graph->size(), "bad edge");
      stack.graph->addEdge(u, v);
    } else if (tag == "dests") {
      NodeId d;
      while (fields >> d) dests.push_back(d);
    } else if (tag == "policy") {
      int value = 0;
      fields >> value;
      need(value >= 0 && value <= 2, "bad policy");
      policy = static_cast<ChoicePolicy>(value);
    } else if (tag == "routing") {
      need(stack.graph != nullptr, "routing before graph");
      if (stack.routing == nullptr) {
        stack.routing = std::make_unique<SelfStabBfsRouting>(*stack.graph);
      }
      NodeId p, d, parent;
      std::uint32_t dist;
      fields >> p >> d >> dist >> parent;
      need(!fields.fail(), "bad routing entry");
      stack.routing->setEntry(p, d, dist, parent);
    } else if (tag == "bufR" || tag == "bufE" || tag == "queue" ||
               tag == "outbox" || tag == "nexttrace") {
      need(stack.graph != nullptr, "state before graph");
      if (stack.routing == nullptr) {
        // No routing lines (e.g. shrunk away): correct-by-construction.
        stack.routing = std::make_unique<SelfStabBfsRouting>(*stack.graph);
      }
      if (stack.forwarding == nullptr) {
        stack.forwarding = std::make_unique<SsmfpProtocol>(
            *stack.graph, *stack.routing, dests, policy);
      }
      if (tag == "queue") {
        NodeId p, d;
        fields >> p >> d;
        need(true, "bad queue head");
        std::vector<NodeId> order;
        NodeId c;
        while (fields >> c) order.push_back(c);
        // fields is in a fail state after the extraction loop by design;
        // validate the shape directly.
        if (order.size() != stack.graph->degree(p) + 1) {
          parseError(lineNo, "bad queue");
        }
        stack.forwarding->setFairnessQueue(p, d, std::move(order));
      } else if (tag == "outbox") {
        NodeId p, dest;
        Payload payload;
        TraceId trace;
        fields >> p >> dest >> payload >> trace;
        need(!fields.fail(), "bad outbox entry");
        stack.forwarding->restoreOutboxEntry(p, dest, payload, trace);
      } else if (tag == "nexttrace") {
        TraceId next;
        fields >> next;
        need(!fields.fail(), "bad nexttrace");
        stack.forwarding->setNextTraceId(next);
      } else {
        NodeId p, d;
        Message msg;
        int valid = 0;
        fields >> p >> d >> msg.payload >> msg.lastHop >> msg.color >>
            msg.trace >> valid >> msg.source >> msg.dest >> msg.bornStep >>
            msg.bornRound;
        need(!fields.fail(), "bad buffer entry");
        msg.valid = valid != 0;
        if (tag == "bufR") {
          stack.forwarding->restoreReception(p, d, msg);
        } else {
          stack.forwarding->restoreEmission(p, d, msg);
        }
      }
    } else if (tag == "end") {
      if (stack.graph == nullptr) parseError(lineNo, "incomplete snapshot");
      if (stack.routing == nullptr) {
        stack.routing = std::make_unique<SelfStabBfsRouting>(*stack.graph);
      }
      if (stack.forwarding == nullptr) {
        stack.forwarding = std::make_unique<SsmfpProtocol>(
            *stack.graph, *stack.routing, dests, policy);
      }
      return stack;
    } else {
      parseError(lineNo, "unknown tag '" + tag + "'");
    }
  }
  parseError(lineNo, "missing 'end'");
}

RestoredStack snapshotFromString(const std::string& text) {
  std::istringstream in(text);
  return readSnapshot(in);
}

}  // namespace snapfwd
