#include "sim/runner.hpp"

#include <algorithm>
#include <cassert>

#include "baseline/merlin_schweitzer.hpp"
#include "checker/invariants.hpp"
#include "checker/invariants2.hpp"
#include "core/engine.hpp"
#include "graph/builders.hpp"
#include "routing/frozen.hpp"
#include "routing/selfstab_bfs.hpp"
#include "ssmfp/ssmfp.hpp"
#include "ssmfp2/ssmfp2.hpp"

namespace snapfwd {

TopologySpec TopologySpec::path(std::size_t n) {
  TopologySpec spec;
  spec.kind = TopologyKind::kPath;
  spec.n = n;
  return spec;
}

TopologySpec TopologySpec::ring(std::size_t n) {
  TopologySpec spec;
  spec.kind = TopologyKind::kRing;
  spec.n = n;
  return spec;
}

TopologySpec TopologySpec::star(std::size_t n) {
  TopologySpec spec;
  spec.kind = TopologyKind::kStar;
  spec.n = n;
  return spec;
}

TopologySpec TopologySpec::complete(std::size_t n) {
  TopologySpec spec;
  spec.kind = TopologyKind::kComplete;
  spec.n = n;
  return spec;
}

TopologySpec TopologySpec::binaryTree(std::size_t n) {
  TopologySpec spec;
  spec.kind = TopologyKind::kBinaryTree;
  spec.n = n;
  return spec;
}

TopologySpec TopologySpec::randomTree(std::size_t n) {
  TopologySpec spec;
  spec.kind = TopologyKind::kRandomTree;
  spec.n = n;
  return spec;
}

TopologySpec TopologySpec::grid(std::size_t rows, std::size_t cols) {
  TopologySpec spec;
  spec.kind = TopologyKind::kGrid;
  spec.rows = rows;
  spec.cols = cols;
  return spec;
}

TopologySpec TopologySpec::torus(std::size_t rows, std::size_t cols) {
  TopologySpec spec;
  spec.kind = TopologyKind::kTorus;
  spec.rows = rows;
  spec.cols = cols;
  return spec;
}

TopologySpec TopologySpec::hypercube(std::size_t dims) {
  TopologySpec spec;
  spec.kind = TopologyKind::kHypercube;
  spec.dims = dims;
  return spec;
}

TopologySpec TopologySpec::randomConnected(std::size_t n, std::size_t extraEdges) {
  TopologySpec spec;
  spec.kind = TopologyKind::kRandomConnected;
  spec.n = n;
  spec.extraEdges = extraEdges;
  return spec;
}

TopologySpec TopologySpec::figure3() {
  TopologySpec spec;
  spec.kind = TopologyKind::kFigure3;
  return spec;
}

std::string TopologySpec::label() const {
  const std::string base = toString(kind);
  switch (kind) {
    case TopologyKind::kGrid:
    case TopologyKind::kTorus:
      return base + "/" + std::to_string(rows) + "x" + std::to_string(cols);
    case TopologyKind::kHypercube:
      return base + "/d=" + std::to_string(dims);
    case TopologyKind::kRandomConnected:
      return base + "/n=" + std::to_string(n) + "+" + std::to_string(extraEdges);
    case TopologyKind::kFigure3:
      return base;
    default:
      return base + "/n=" + std::to_string(n);
  }
}

Graph buildTopology(const ExperimentConfig& cfg, Rng& rng) {
  const TopologySpec& t = cfg.topo;
  switch (t.kind) {
    case TopologyKind::kPath: return topo::path(t.n);
    case TopologyKind::kRing: return topo::ring(t.n);
    case TopologyKind::kStar: return topo::star(t.n);
    case TopologyKind::kComplete: return topo::complete(t.n);
    case TopologyKind::kBinaryTree: return topo::binaryTree(t.n);
    case TopologyKind::kRandomTree: return topo::randomTree(t.n, rng);
    case TopologyKind::kGrid: return topo::grid(t.rows, t.cols);
    case TopologyKind::kTorus: return topo::torus(t.rows, t.cols);
    case TopologyKind::kHypercube: return topo::hypercube(t.dims);
    case TopologyKind::kRandomConnected:
      return topo::randomConnected(t.n, t.extraEdges, rng);
    case TopologyKind::kFigure3: return topo::figure3Network();
  }
  return Graph(1);
}

std::unique_ptr<Daemon> makeDaemon(DaemonKind kind, double probability, Rng& rng) {
  switch (kind) {
    case DaemonKind::kSynchronous:
      return std::make_unique<SynchronousDaemon>();
    case DaemonKind::kCentralRoundRobin:
      return std::make_unique<CentralRoundRobinDaemon>();
    case DaemonKind::kCentralRandom:
      return std::make_unique<CentralRandomDaemon>(rng.fork(0xDAE1));
    case DaemonKind::kDistributedRandom:
      return std::make_unique<DistributedRandomDaemon>(rng.fork(0xDAE2), probability);
    case DaemonKind::kWeaklyFair:
      return std::make_unique<WeaklyFairDaemon>();
    case DaemonKind::kAdversarial:
      return std::make_unique<AdversarialDaemon>(rng.fork(0xDAE3));
  }
  return std::make_unique<SynchronousDaemon>();
}

std::vector<TrafficItem> makeTraffic(const ExperimentConfig& cfg, std::size_t n,
                                     Rng& rng) {
  switch (cfg.traffic) {
    case TrafficKind::kNone: return {};
    case TrafficKind::kUniform:
      return uniformTraffic(n, cfg.messageCount, rng, cfg.payloadSpace);
    case TrafficKind::kAllToOne:
      return allToOneTraffic(n, cfg.hotspot, cfg.perSource, cfg.payloadSpace);
    case TrafficKind::kPermutation:
      return permutationTraffic(n, rng, cfg.payloadSpace);
    case TrafficKind::kAntipodal:
      return antipodalTraffic(n, cfg.payloadSpace);
  }
  return {};
}

namespace {

/// Timing + amortized metrics common to both stacks.
template <typename ProtocolT>
void fillTimingMetrics(const ProtocolT& protocol, ExperimentResult& result) {
  double sumLatency = 0.0;
  double sumGeneration = 0.0;
  std::uint64_t validDeliveries = 0;
  for (const auto& rec : protocol.deliveries()) {
    if (!rec.msg.valid) continue;
    ++validDeliveries;
    const std::uint64_t latency = rec.round - rec.msg.bornRound;
    sumLatency += static_cast<double>(latency);
    result.maxDeliveryRounds = std::max(result.maxDeliveryRounds, latency);
  }
  for (const auto& rec : protocol.generations()) {
    sumGeneration += static_cast<double>(rec.round);
    result.maxGenerationRound = std::max(result.maxGenerationRound, rec.round);
  }
  if (validDeliveries > 0) {
    result.avgDeliveryRounds = sumLatency / static_cast<double>(validDeliveries);
  }
  if (!protocol.generations().empty()) {
    result.avgGenerationRound =
        sumGeneration / static_cast<double>(protocol.generations().size());
  }
  const std::size_t totalDeliveries = protocol.deliveries().size();
  if (totalDeliveries > 0) {
    result.amortizedRoundsPerDelivery =
        static_cast<double>(result.rounds) / static_cast<double>(totalDeliveries);
  }
}

}  // namespace

ForwardingStack buildForwardingStack(const ExperimentConfig& cfg) {
  ForwardingStack stack;
  stack.rng = Rng(cfg.seed);
  Rng topoRng = stack.rng.fork(0x7070);
  stack.graph = std::make_unique<Graph>(buildTopology(cfg, topoRng));
  assert(stack.graph->isConnected());
  stack.routing = std::make_unique<SelfStabBfsRouting>(*stack.graph);
  switch (cfg.family) {
    case ForwardingFamilyId::kSsmfp:
      stack.forwarding = std::make_unique<SsmfpProtocol>(
          *stack.graph, *stack.routing, cfg.destinations, cfg.choicePolicy);
      break;
    case ForwardingFamilyId::kSsmfp2:
      stack.forwarding = std::make_unique<Ssmfp2Protocol>(
          *stack.graph, *stack.routing, cfg.destinations);
      break;
  }

  Rng faultRng = stack.rng.fork(0xFA17);
  stack.invalidInjected =
      applyCorruption(cfg.corruption, *stack.routing, *stack.forwarding, faultRng);

  Rng trafficRng = stack.rng.fork(0x7AFF);
  submitAll(*stack.forwarding, makeTraffic(cfg, stack.graph->size(), trafficRng));
  return stack;
}

SsmfpStack buildSsmfpStack(const ExperimentConfig& cfg) {
  ExperimentConfig ssmfpCfg = cfg;
  ssmfpCfg.family = ForwardingFamilyId::kSsmfp;
  ForwardingStack generic = buildForwardingStack(ssmfpCfg);
  SsmfpStack stack;
  stack.graph = std::move(generic.graph);
  stack.routing = std::move(generic.routing);
  stack.forwarding.reset(
      static_cast<SsmfpProtocol*>(generic.forwarding.release()));
  stack.invalidInjected = generic.invalidInjected;
  stack.rng = generic.rng;
  return stack;
}

ExperimentResult runForwardingExperiment(const ExperimentConfig& cfg) {
  ForwardingStack stack = buildForwardingStack(cfg);
  const Graph& graph = *stack.graph;
  SelfStabBfsRouting& routing = *stack.routing;
  ForwardingProtocol& forwarding = *stack.forwarding;
  Rng& rng = stack.rng;

  ExperimentResult result;
  result.graphN = graph.size();
  result.graphDelta = graph.maxDegree();
  result.graphDiameter = graph.diameter();
  result.invalidInjected = stack.invalidInjected;
  result.routingCorrupted = !routing.isSilent();

  auto daemon = makeDaemon(cfg.daemon, cfg.daemonProbability, rng);
  Engine engine(graph, {&routing, &forwarding}, *daemon);
  forwarding.attachEngine(&engine);

  // Mid-run corruption schedule: events fire from the post-step hook once
  // their step arrives, each drawing from the 0xFA18 fork (keyed after all
  // build-time forks, so an empty schedule reproduces the historical
  // stream byte-for-byte). A terminal configuration with events still
  // pending fires them immediately - corruption hitting an idle network -
  // and resumes stepping.
  std::vector<CorruptionEvent> schedule = cfg.corruptionSchedule;
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const CorruptionEvent& a, const CorruptionEvent& b) {
                     return a.step < b.step;
                   });
  std::size_t nextEvent = 0;
  Rng corruptionRng = schedule.empty() ? Rng(0) : rng.fork(0xFA18);

  const auto monitor = makeInvariantMonitor(forwarding);
  bool routingSilentSeen = routing.isSilent();
  auto fireEvent = [&] {
    const CorruptionPlan& plan = schedule[nextEvent++].plan;
    result.invalidInjected +=
        applyCorruption(plan, routing, forwarding, corruptionRng);
    if (plan.routingFraction > 0.0) {
      result.routingCorrupted = true;
      // Track the LAST stabilization: the post-fault reconvergence time is
      // the quantity the snap-stabilization claim is about.
      routingSilentSeen = routing.isSilent();
    }
  };
  engine.setPostStepHook([&](Engine& e) {
    while (nextEvent < schedule.size() &&
           schedule[nextEvent].step <= e.stepCount()) {
      fireEvent();
    }
    if (!routingSilentSeen && routing.isSilent()) {
      routingSilentSeen = true;
      result.routingSilentStep = e.stepCount();
      result.routingSilentRound = e.roundCount();
    }
    if (cfg.checkInvariantsEveryStep && !result.invariantViolation) {
      result.invariantViolation = monitor->check();
    }
  });

  std::uint64_t executed = 0;
  for (;;) {
    executed += engine.run(cfg.maxSteps - executed);
    if (executed >= cfg.maxSteps || nextEvent >= schedule.size()) break;
    fireEvent();
  }
  result.quiescent = executed < cfg.maxSteps;
  result.steps = engine.stepCount();
  result.rounds = engine.roundCount();
  result.actions = engine.actionCount();

  result.spec = checkSpec(forwarding);
  result.invalidDelivered = forwarding.invalidDeliveryCount();
  fillTimingMetrics(forwarding, result);
  result.scanMode = engine.scanMode();
  result.scan = engine.scanStats();
  return result;
}

ExperimentResult runSsmfpExperiment(const ExperimentConfig& cfg) {
  ExperimentConfig ssmfpCfg = cfg;
  ssmfpCfg.family = ForwardingFamilyId::kSsmfp;
  return runForwardingExperiment(ssmfpCfg);
}

ExperimentResult runBaselineExperiment(const ExperimentConfig& cfg) {
  Rng rng(cfg.seed);
  Rng topoRng = rng.fork(0x7070);
  const Graph graph = buildTopology(cfg, topoRng);
  assert(graph.isConnected());

  FrozenRouting routing(graph);
  MerlinSchweitzerProtocol forwarding(graph, routing, cfg.destinations);

  ExperimentResult result;
  result.graphN = graph.size();
  result.graphDelta = graph.maxDegree();
  result.graphDiameter = graph.diameter();

  Rng faultRng = rng.fork(0xFA17);
  result.invalidInjected =
      applyCorruption(cfg.corruption, routing, forwarding, faultRng);
  result.routingCorrupted = cfg.corruption.routingFraction > 0.0;

  Rng trafficRng = rng.fork(0x7AFF);
  const auto traffic = makeTraffic(cfg, graph.size(), trafficRng);
  submitAll(forwarding, traffic);

  auto daemon = makeDaemon(cfg.daemon, cfg.daemonProbability, rng);
  Engine engine(graph, {&forwarding}, *daemon);
  forwarding.attachEngine(&engine);

  const std::uint64_t executed = engine.run(cfg.maxSteps);
  result.quiescent = executed < cfg.maxSteps;
  result.steps = engine.stepCount();
  result.rounds = engine.roundCount();
  result.actions = engine.actionCount();

  result.spec = checkSpec(forwarding);
  result.invalidDelivered = result.spec.invalidDelivered;
  fillTimingMetrics(forwarding, result);
  result.scanMode = engine.scanMode();
  result.scan = engine.scanStats();
  return result;
}

}  // namespace snapfwd
