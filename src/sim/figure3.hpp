#pragma once
// Replay of the paper's Figure 3 worked execution.
//
// Network (diagram N): a=0, b=1, c=2, d=3 with edges a-b, a-c, a-d, c-b;
// Delta = 3, so colors range over {0,1,2,3}. Destination: b.
//
// Initial configuration (diagram 0):
//   - routing tables are incorrect with a forwarding cycle between a and c
//     (nextHop_a(b) = c, nextHop_c(b) = a);
//   - an invalid message m' (useful information 55) sits in bufR_b(b) with
//     color 0;
//   - processor c wants to send m (useful information 100) to b and then a
//     second message with the SAME useful information as the invalid one
//     (55) - the collision the color flags must disambiguate.
//
// The scripted moves then follow the paper's narration exactly:
//   (1) c emits m into its reception buffer (R1, color 0);
//   (2) m moves internally at c and receives color 1 - color 0 is
//       forbidden by the invalid message in bufR_b(b) (R2);
//   (3) m is forwarded to a's reception buffer (R3, color kept) while c
//       simultaneously emits m' (R1);
//   (4) m is erased from c's emission buffer (R4) and m' moves internally,
//       receiving color 2 - colors 0 and 1 are taken (R2);
//   (5) the routing tables repair (simulated between steps) and a forwards
//       m into its emission buffer (R2);
//   (6..12) the three messages drain to b: each is delivered exactly once,
//       the invalid m' first, then m, then the valid m'.
//
// The replay asserts the buffer contents and colors after every scripted
// step, so it doubles as an executable version of the figure.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "graph/graph.hpp"
#include "routing/frozen.hpp"
#include "ssmfp/ssmfp.hpp"

namespace snapfwd {

class Figure3Replay {
 public:
  static constexpr Payload kPayloadM = 100;       // the paper's m
  static constexpr Payload kPayloadMPrime = 55;   // the paper's m'
  static constexpr NodeId kA = 0, kB = 1, kC = 2, kD = 3;

  Figure3Replay();

  /// Runs the full script. `onStep` (optional) is invoked after every
  /// committed step with the 1-based step index and a short description of
  /// the scripted move. Returns true iff every scripted move matched an
  /// enabled action and the final configuration is terminal with the three
  /// expected deliveries.
  bool run(const std::function<void(std::size_t, const std::string&)>& onStep = {});

  [[nodiscard]] const Graph& graph() const { return *graph_; }
  [[nodiscard]] const SsmfpProtocol& protocol() const { return *proto_; }
  [[nodiscard]] const Engine& engine() const { return *engine_; }

  /// Human-readable snapshot of the destination-b buffer pairs (one line
  /// per processor), in the style of the figure's diagrams.
  [[nodiscard]] std::string renderConfiguration() const;

  /// The scripted moves, as (description) strings - exposed for printing.
  [[nodiscard]] const std::vector<std::string>& moveDescriptions() const {
    return descriptions_;
  }

  /// Validation details after run().
  [[nodiscard]] bool scriptMatched() const { return scriptMatched_; }
  [[nodiscard]] bool deliveriesCorrect() const { return deliveriesCorrect_; }
  [[nodiscard]] bool colorsCorrect() const { return colorsCorrect_; }

 private:
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<FrozenRouting> routing_;
  std::unique_ptr<SsmfpProtocol> proto_;
  std::unique_ptr<ScriptedDaemon> daemon_;
  std::unique_ptr<Engine> engine_;
  std::vector<std::string> descriptions_;
  bool scriptMatched_ = false;
  bool deliveriesCorrect_ = false;
  bool colorsCorrect_ = false;
};

}  // namespace snapfwd
