#pragma once
// Configuration shrinking (delta debugging) over snapshots.
//
// Fuzzing finds violating configurations with dozens of garbage messages
// and fully random tables; understanding them wants the MINIMAL
// configuration that still violates. shrinkSnapshot() repeatedly applies
// reduction edits - drop a buffer's contents, drop a waiting message,
// reset a routing entry to its correct value, zero a payload - keeping an
// edit only while the caller's predicate still reports the behavior under
// investigation. The result is a (locally) minimal snapshot exhibiting the
// same behavior, ready for a regression test.

#include <functional>
#include <string>

#include "sim/snapshot.hpp"

namespace snapfwd {

/// Returns true when the (restored) configuration still exhibits the
/// behavior being minimized - e.g. "running this to quiescence violates
/// SP" or "this delivers garbage to node 0". The stack is freshly parsed
/// for every probe, so the predicate may freely mutate/run it.
using ShrinkPredicate = std::function<bool(RestoredStack&)>;

struct ShrinkResult {
  std::string snapshot;    // the minimized snapshot text
  std::size_t probes = 0;  // predicate evaluations spent
  std::size_t removedLines = 0;
  std::size_t zeroedPayloads = 0;
};

/// Minimizes `snapshot` with respect to `stillExhibits`. Precondition: the
/// input snapshot itself satisfies the predicate (asserted via one probe;
/// if not, the input is returned unchanged with probes = 1).
[[nodiscard]] ShrinkResult shrinkSnapshot(const std::string& snapshot,
                                          const ShrinkPredicate& stillExhibits,
                                          int maxPasses = 4);

}  // namespace snapfwd
