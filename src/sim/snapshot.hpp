#pragma once
// Configuration snapshots: serialize the complete protocol-visible state
// of an SSMFP stack (topology, routing tables, buffers, fairness queues,
// outboxes) to a line-based text format and restore it exactly.
//
// Use cases: archiving the exact "arbitrary initial configuration" behind
// a result, reproducing a failing fuzz case outside the harness, and
// checkpoint/resume of long simulations (restoring mid-run state resumes
// an equivalent execution - see tests/test_snapshot.cpp).

#include <iosfwd>
#include <memory>
#include <string>

#include "graph/graph.hpp"
#include "routing/selfstab_bfs.hpp"
#include "ssmfp/ssmfp.hpp"

namespace snapfwd {

/// Serialization tweaks for consumers that need canonical output rather
/// than an exact archive (the state-space explorer, src/explore/).
struct SnapshotOptions {
  /// Zero out bornStep/bornRound of every buffered message. These stamps
  /// are bookkeeping for latency measurements, not protocol-visible state:
  /// two configurations differing only in birth stamps have identical
  /// guards and successors, so canonicalization must not distinguish them.
  bool normalizeBirthStamps = false;
};

/// Serializes graph + routing + forwarding state. The output is stable
/// across runs (no addresses, no iteration-order dependence).
void writeSnapshot(std::ostream& out, const Graph& graph,
                   const SelfStabBfsRouting& routing,
                   const SsmfpProtocol& forwarding);
void writeSnapshot(std::ostream& out, const Graph& graph,
                   const SelfStabBfsRouting& routing,
                   const SsmfpProtocol& forwarding,
                   const SnapshotOptions& options);

/// Convenience: snapshot to a string.
[[nodiscard]] std::string snapshotToString(const Graph& graph,
                                           const SelfStabBfsRouting& routing,
                                           const SsmfpProtocol& forwarding);
[[nodiscard]] std::string snapshotToString(const Graph& graph,
                                           const SelfStabBfsRouting& routing,
                                           const SsmfpProtocol& forwarding,
                                           const SnapshotOptions& options);

/// A restored stack. Objects own each other's lifetimes in declaration
/// order; `forwarding` reads `routing` which reads `graph`.
struct RestoredStack {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<SelfStabBfsRouting> routing;
  std::unique_ptr<SsmfpProtocol> forwarding;
};

/// Parses a snapshot; throws std::runtime_error with a line-numbered
/// message on malformed input.
[[nodiscard]] RestoredStack readSnapshot(std::istream& in);
[[nodiscard]] RestoredStack snapshotFromString(const std::string& text);

}  // namespace snapfwd
