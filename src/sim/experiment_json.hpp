#pragma once
// JSONL schema for experiments: serializes the experiment types
// (ExperimentConfig, ExperimentResult, SweepResult, SweepMatrixResult,
// ExecutionTracer rule tallies) onto the generic stats/jsonl writer, and
// parses them back (the round-trip is pinned by tests, so archived result
// files stay readable).
//
// File layout written by writeSweepJsonl / writeMatrixJsonl:
//   {"type":"manifest", "experiment":..., "git":..., "firstSeed":...,
//    "seedCount":..., "threads":..., "baseline":..., "config":{...}}
//   {"type":"run", "cell":<label or "">, "seed":..., "result":{...}}  x N
//   {"type":"sweep", "cell":<label or "">, "aggregates":{...}}        x cells
// One JSON object per line; every line carries a "type" discriminator so
// consumers can stream-filter without schema knowledge.

#include <iosfwd>
#include <string>

#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "sim/sweep_matrix.hpp"
#include "sim/trace.hpp"
#include "stats/jsonl.hpp"

namespace snapfwd {

/// `git describe --always --dirty` of the tree this binary was built from
/// ("unknown" when the build system could not run git).
[[nodiscard]] const char* buildGitDescribe();

/// Identifies one sweep invocation in the output stream.
struct RunManifest {
  std::string experiment;        // harness name, e.g. "bench_prop4"
  std::uint64_t firstSeed = 1;
  std::size_t seedCount = 1;
  std::size_t threads = 1;
  bool baseline = false;
  std::string gitDescribe = buildGitDescribe();
};

/// Opt-in emission of scheduler scan stats ("scanMode" + "scan" fields on
/// result lines, guard-eval summaries on aggregate lines). OFF by default
/// so the default JSONL stream is bit-identical across ScanModes (pinned
/// by the scan-mode differential test); benches that study the scheduler
/// itself flip it on. Process-wide.
void setEmitScanStats(bool emit);
[[nodiscard]] bool emitScanStats();

[[nodiscard]] jsonl::Object toJson(const ScanStats& stats);
[[nodiscard]] jsonl::Object toJson(const TopologySpec& spec);
[[nodiscard]] jsonl::Object toJson(const CorruptionPlan& plan);
[[nodiscard]] jsonl::Object toJson(const ExperimentConfig& config);
[[nodiscard]] jsonl::Object toJson(const SpecReport& report);
[[nodiscard]] jsonl::Object toJson(const ExperimentResult& result);
/// Aggregate stats: {"count":..,"mean":..,"stddev":..,"min":..,"max":..,
/// "p50":..,"p90":..} (empty summaries serialize as {"count":0}).
[[nodiscard]] jsonl::Object toJson(const Summary& summary);
/// SweepResult aggregates (tallies + per-metric summaries); per-run
/// results are emitted as separate "run" lines, not nested here.
[[nodiscard]] jsonl::Object aggregatesJson(const SweepResult& result);
/// Rule tallies: [{"layer":0,"rule":"RFix","count":12}, ...].
[[nodiscard]] jsonl::Array toJson(const std::vector<ExecutionTracer::RuleCount>& counts,
                                  int routingLayer);
[[nodiscard]] jsonl::Object toJson(const RunManifest& manifest,
                                   const ExperimentConfig& base);

/// Inverses (tolerant: missing fields keep defaults). Round-trips are
/// exact, including doubles.
[[nodiscard]] TopologySpec topologySpecFromJson(const jsonl::Value& value);
[[nodiscard]] CorruptionPlan corruptionPlanFromJson(const jsonl::Value& value);
[[nodiscard]] ExperimentConfig experimentConfigFromJson(const jsonl::Value& value);
[[nodiscard]] SpecReport specReportFromJson(const jsonl::Value& value);
[[nodiscard]] ExperimentResult experimentResultFromJson(const jsonl::Value& value);

/// Writes manifest + per-run lines + one aggregate line for a single
/// sweep (see file-layout comment above).
void writeSweepJsonl(std::ostream& out, const RunManifest& manifest,
                     const ExperimentConfig& base, const SweepResult& result);

/// Same for a matrix: manifest (base config), then per-cell runs and
/// aggregates tagged with the cell label.
void writeMatrixJsonl(std::ostream& out, const RunManifest& manifest,
                      const ExperimentConfig& base, const SweepMatrixResult& result);

}  // namespace snapfwd
