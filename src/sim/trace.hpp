#pragma once
// Execution tracing and configuration rendering.
//
// ExecutionTracer hooks an Engine and records every executed action (step,
// processor, layer, rule, destination) - the machine-readable form of the
// paper's execution diagrams. renderConfiguration() prints one
// destination's buffer pairs in the style of Figure 3's diagrams, for any
// network. Together they turn an arbitrary run into a readable trace (see
// examples/trace_explorer.cpp).

#include <functional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "ssmfp/ssmfp.hpp"
#include "util/names.hpp"  // ruleName ("R1".."R6", "rule<k>" fallback)

namespace snapfwd {

struct TraceEntry {
  std::uint64_t step = 0;
  std::uint64_t round = 0;
  NodeId p = kNoNode;
  std::uint16_t layer = 0;
  std::uint16_t rule = 0;
  NodeId dest = kNoNode;
  std::uint64_t aux = 0;
};

/// Records every executed action of an engine run. Install BEFORE running;
/// chains with any previously installed post-step hook.
class ExecutionTracer {
 public:
  /// `layerOfRouting` is the engine layer index of the routing protocol
  /// (rule names of that layer render as "RFix"); pass -1 if absent.
  explicit ExecutionTracer(Engine& engine, int routingLayer = 0);

  [[nodiscard]] const std::vector<TraceEntry>& entries() const { return entries_; }

  /// Entries filtered to one rule / one processor.
  [[nodiscard]] std::vector<TraceEntry> byRule(std::uint16_t layer,
                                               std::uint16_t rule) const;
  [[nodiscard]] std::vector<TraceEntry> byProcessor(NodeId p) const;

  /// Tallies per (layer, rule) - how often each rule fired.
  struct RuleCount {
    std::uint16_t layer;
    std::uint16_t rule;
    std::uint64_t count;
  };
  [[nodiscard]] std::vector<RuleCount> ruleCounts() const;

  /// One line per action: "step 12 [round 3] p5 R3(d=0, s=4)".
  [[nodiscard]] std::string render(std::size_t maxEntries = ~std::size_t{0}) const;

 private:
  std::vector<TraceEntry> entries_;
  int routingLayer_;
};

/// Converts a recorded trace into a ScriptedDaemon script: replaying it
/// against an identically prepared initial configuration re-executes the
/// run deterministically, whatever daemon originally produced it (each
/// original step becomes one scripted step selecting the same
/// (processor, rule, destination) actions).
[[nodiscard]] std::vector<std::vector<ScriptedDaemon::Selection>> scriptFromTrace(
    const std::vector<TraceEntry>& entries);

/// Renders the destination-d buffer pairs of every processor, one line
/// each, e.g. "  p3: bufR=(7,p2,c1)  bufE=-" ('!' marks invalid messages).
[[nodiscard]] std::string renderConfiguration(const SsmfpProtocol& protocol,
                                              NodeId d);

/// Renders every destination with at least one occupied buffer.
[[nodiscard]] std::string renderOccupiedConfiguration(const SsmfpProtocol& protocol);

}  // namespace snapfwd
