#pragma once
// One-call experiment runner: composes topology + routing + a forwarding
// family member (or the baseline) + daemon + corruption + workload, runs
// to quiescence, and returns the measurements Propositions 4-7 are stated
// in. The family axis (ExperimentConfig::family) selects which of the
// journal paper's two protocols forwards: ssmfp (destination-indexed
// buffer pairs) or ssmfp2 (rank-indexed slots).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "checker/spec_checker.hpp"
#include "core/daemon.hpp"
#include "core/engine.hpp"
#include "faults/corruptor.hpp"
#include "fwd/forwarding.hpp"
#include "graph/graph.hpp"
#include "routing/selfstab_bfs.hpp"
#include "ssmfp/ssmfp.hpp"
#include "util/names.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace snapfwd {

enum class TopologyKind {
  kPath,
  kRing,
  kStar,
  kComplete,
  kBinaryTree,
  kRandomTree,
  kGrid,
  kTorus,
  kHypercube,
  kRandomConnected,
  kFigure3,
};

enum class DaemonKind {
  kSynchronous,
  kCentralRoundRobin,
  kCentralRandom,
  kDistributedRandom,
  kWeaklyFair,
  kAdversarial,
};

enum class TrafficKind {
  kNone,
  kUniform,
  kAllToOne,
  kPermutation,
  kAntipodal,
};

template <>
struct EnumNames<TopologyKind> {
  static constexpr auto entries = std::to_array<NamedEnum<TopologyKind>>({
      {TopologyKind::kPath, "path"},
      {TopologyKind::kRing, "ring"},
      {TopologyKind::kStar, "star"},
      {TopologyKind::kComplete, "complete"},
      {TopologyKind::kBinaryTree, "binary-tree"},
      {TopologyKind::kRandomTree, "random-tree"},
      {TopologyKind::kGrid, "grid"},
      {TopologyKind::kTorus, "torus"},
      {TopologyKind::kHypercube, "hypercube"},
      {TopologyKind::kRandomConnected, "random-connected"},
      {TopologyKind::kFigure3, "figure3"},
  });
};

template <>
struct EnumNames<DaemonKind> {
  static constexpr auto entries = std::to_array<NamedEnum<DaemonKind>>({
      {DaemonKind::kSynchronous, "synchronous"},
      {DaemonKind::kCentralRoundRobin, "central-rr"},
      {DaemonKind::kCentralRandom, "central-random"},
      {DaemonKind::kDistributedRandom, "distributed-random"},
      {DaemonKind::kWeaklyFair, "weakly-fair"},
      {DaemonKind::kAdversarial, "adversarial"},
  });
};

template <>
struct EnumNames<TrafficKind> {
  static constexpr auto entries = std::to_array<NamedEnum<TrafficKind>>({
      {TrafficKind::kNone, "none"},
      {TrafficKind::kUniform, "uniform"},
      {TrafficKind::kAllToOne, "all-to-one"},
      {TrafficKind::kPermutation, "permutation"},
      {TrafficKind::kAntipodal, "antipodal"},
  });
};

/// A topology family plus the parameters that family actually uses. The
/// factories set only the relevant ones (the rest keep their defaults and
/// are ignored by buildTopology), so a spec reads as "grid 4x5", not as
/// five loose size fields whose applicability depends on `topology`.
struct TopologySpec {
  TopologyKind kind = TopologyKind::kRing;
  std::size_t n = 8;           // path/ring/star/complete/trees/random-connected
  std::size_t rows = 3;        // grid/torus
  std::size_t cols = 3;        // grid/torus
  std::size_t dims = 3;        // hypercube
  std::size_t extraEdges = 4;  // random-connected

  static TopologySpec path(std::size_t n);
  static TopologySpec ring(std::size_t n);
  static TopologySpec star(std::size_t n);
  static TopologySpec complete(std::size_t n);
  static TopologySpec binaryTree(std::size_t n);
  static TopologySpec randomTree(std::size_t n);
  static TopologySpec grid(std::size_t rows, std::size_t cols);
  static TopologySpec torus(std::size_t rows, std::size_t cols);
  static TopologySpec hypercube(std::size_t dims);
  static TopologySpec randomConnected(std::size_t n, std::size_t extraEdges);
  static TopologySpec figure3();

  /// "ring/n=8", "grid/3x3", "random-connected/n=10+4" - stable cell label
  /// for tables and JSONL.
  [[nodiscard]] std::string label() const;

  friend bool operator==(const TopologySpec&, const TopologySpec&) = default;
};

/// A corruption plan fired mid-run: applied from the engine's post-step
/// hook once stepCount() reaches `step` (step 0 = before the first step,
/// i.e. the classic initial-configuration corruption). Each event draws
/// from its own keyed RNG fork, so adding or removing events never shifts
/// the topology/daemon/traffic streams of the same seed.
struct CorruptionEvent {
  std::uint64_t step = 0;
  CorruptionPlan plan;

  friend bool operator==(const CorruptionEvent&, const CorruptionEvent&) = default;
};

struct ExperimentConfig {
  TopologySpec topo;

  /// Which forwarding family member runs (runForwardingExperiment).
  ForwardingFamilyId family = ForwardingFamilyId::kSsmfp;

  DaemonKind daemon = DaemonKind::kDistributedRandom;
  double daemonProbability = 0.5;

  std::uint64_t seed = 1;

  CorruptionPlan corruption;  // default: clean start

  /// Mid-run corruption schedule (sorted or not; events fire when their
  /// step arrives). The initial `corruption` plan above still applies at
  /// build time; these hit the already-running stack, forcing the
  /// snap-stabilization path instead of only the arbitrary-start path.
  std::vector<CorruptionEvent> corruptionSchedule;

  TrafficKind traffic = TrafficKind::kUniform;
  std::size_t messageCount = 16;  // uniform
  std::size_t perSource = 1;      // allToOne
  NodeId hotspot = 0;             // allToOne destination
  Payload payloadSpace = 8;

  std::uint64_t maxSteps = 2'000'000;
  bool checkInvariantsEveryStep = false;

  /// Restrict SSMFP buffer pairs to these destinations (empty = all of I).
  std::vector<NodeId> destinations;

  /// choice_p(d) selection policy (paper: round-robin; others = ablation).
  ChoicePolicy choicePolicy = ChoicePolicy::kRoundRobin;

  friend bool operator==(const ExperimentConfig&, const ExperimentConfig&) = default;
};

struct ExperimentResult {
  bool quiescent = false;
  std::uint64_t steps = 0;
  std::uint64_t rounds = 0;
  std::uint64_t actions = 0;

  bool routingCorrupted = false;
  std::uint64_t routingSilentStep = 0;   // first step with silent tables (R_A)
  std::uint64_t routingSilentRound = 0;  // same, in rounds

  SpecReport spec;
  std::size_t invalidInjected = 0;
  std::uint64_t invalidDelivered = 0;

  // Valid-message timing, in rounds.
  double avgDeliveryRounds = 0.0;  // delivery round - generation round
  std::uint64_t maxDeliveryRounds = 0;
  double avgGenerationRound = 0.0;  // delay proxy: when R1 fired
  std::uint64_t maxGenerationRound = 0;
  double amortizedRoundsPerDelivery = 0.0;  // rounds / deliveries (Prop. 7)

  std::size_t graphN = 0;
  std::size_t graphDelta = 0;
  std::uint32_t graphDiameter = 0;

  std::optional<std::string> invariantViolation;

  /// How the enabled set was computed (accounting only - never part of
  /// result identity; the same experiment under kFull and kIncremental
  /// compares equal and serializes identically by default).
  ScanMode scanMode = ScanMode::kIncremental;
  ScanStats scan;

  friend bool operator==(const ExperimentResult& a, const ExperimentResult& b) {
    return a.quiescent == b.quiescent && a.steps == b.steps &&
           a.rounds == b.rounds && a.actions == b.actions &&
           a.routingCorrupted == b.routingCorrupted &&
           a.routingSilentStep == b.routingSilentStep &&
           a.routingSilentRound == b.routingSilentRound && a.spec == b.spec &&
           a.invalidInjected == b.invalidInjected &&
           a.invalidDelivered == b.invalidDelivered &&
           a.avgDeliveryRounds == b.avgDeliveryRounds &&
           a.maxDeliveryRounds == b.maxDeliveryRounds &&
           a.avgGenerationRound == b.avgGenerationRound &&
           a.maxGenerationRound == b.maxGenerationRound &&
           a.amortizedRoundsPerDelivery == b.amortizedRoundsPerDelivery &&
           a.graphN == b.graphN && a.graphDelta == b.graphDelta &&
           a.graphDiameter == b.graphDiameter &&
           a.invariantViolation == b.invariantViolation;
  }
};

/// Builds the configured topology (uses `rng` for the random families).
[[nodiscard]] Graph buildTopology(const ExperimentConfig& cfg, Rng& rng);

/// Builds the configured daemon (owns its Rng fork).
[[nodiscard]] std::unique_ptr<Daemon> makeDaemon(DaemonKind kind, double probability,
                                                 Rng& rng);

/// Builds the configured traffic.
[[nodiscard]] std::vector<TrafficItem> makeTraffic(const ExperimentConfig& cfg,
                                                   std::size_t n, Rng& rng);

/// A fully composed SSMFP stack: topology built, corruption applied,
/// traffic submitted - ready to attach to an Engine. `rng` continues the
/// config's seed stream (pass it to makeDaemon for the canonical daemon).
struct SsmfpStack {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<SelfStabBfsRouting> routing;
  std::unique_ptr<SsmfpProtocol> forwarding;
  std::size_t invalidInjected = 0;
  Rng rng{0};
};

/// Composes the stack exactly as runSsmfpExperiment does (same RNG fork
/// order, so seeds reproduce identically); exposed for tooling that needs
/// the live objects (CLI snapshotting, tracing, custom measurement).
/// Ignores cfg.family - the stack is always SSMFP.
[[nodiscard]] SsmfpStack buildSsmfpStack(const ExperimentConfig& cfg);

/// The family-generic form of SsmfpStack: any ForwardingProtocol member
/// over the self-stabilizing routing layer.
struct ForwardingStack {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<SelfStabBfsRouting> routing;
  std::unique_ptr<ForwardingProtocol> forwarding;
  std::size_t invalidInjected = 0;
  Rng rng{0};
};

/// Composes the cfg.family member's stack with the same RNG fork order as
/// buildSsmfpStack (for kSsmfp the two are interchangeable seed-for-seed).
[[nodiscard]] ForwardingStack buildForwardingStack(const ExperimentConfig& cfg);

/// Family stack: SelfStabBfsRouting (priority layer) + the cfg.family
/// protocol. For kSsmfp this is runSsmfpExperiment bit-for-bit.
[[nodiscard]] ExperimentResult runForwardingExperiment(const ExperimentConfig& cfg);

/// SSMFP stack: SelfStabBfsRouting (priority layer) + SsmfpProtocol
/// (runForwardingExperiment with the family forced to kSsmfp).
[[nodiscard]] ExperimentResult runSsmfpExperiment(const ExperimentConfig& cfg);

/// Baseline stack: Merlin-Schweitzer over frozen tables (corrupted per the
/// plan's routingFraction; correct when the plan is clean).
[[nodiscard]] ExperimentResult runBaselineExperiment(const ExperimentConfig& cfg);

}  // namespace snapfwd
