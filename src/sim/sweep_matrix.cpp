#include "sim/sweep_matrix.hpp"

namespace snapfwd {

std::string SweepCell::label() const {
  std::string out = topo.label();
  out += ' ';
  out += toString(daemon);
  if (!corruptionLabel.empty()) {
    out += ' ';
    out += corruptionLabel;
  }
  return out;
}

bool SweepMatrixResult::allSp() const {
  for (const SweepCell& cell : cells) {
    if (!cell.result.allSp()) return false;
  }
  return true;
}

std::size_t SweepMatrixResult::totalRuns() const {
  std::size_t total = 0;
  for (const SweepCell& cell : cells) total += cell.result.runs.size();
  return total;
}

SweepMatrixResult runSweepMatrix(const SweepMatrix& matrix) {
  const std::vector<TopologySpec> topologies =
      matrix.topologies.empty() ? std::vector<TopologySpec>{matrix.base.topo}
                                : matrix.topologies;
  const std::vector<DaemonKind> daemons =
      matrix.daemons.empty() ? std::vector<DaemonKind>{matrix.base.daemon}
                             : matrix.daemons;
  const std::vector<NamedCorruption> corruptions =
      matrix.corruptions.empty()
          ? std::vector<NamedCorruption>{{"", matrix.base.corruption,
                                          matrix.base.corruptionSchedule}}
          : matrix.corruptions;

  SweepMatrixResult out;
  std::vector<ExperimentJob> jobs;
  jobs.reserve(topologies.size() * daemons.size() * corruptions.size() *
               matrix.options.seedCount);
  for (const TopologySpec& topo : topologies) {
    for (const DaemonKind daemon : daemons) {
      for (const NamedCorruption& corruption : corruptions) {
        SweepCell cell;
        cell.topo = topo;
        cell.daemon = daemon;
        cell.corruptionLabel = corruption.label;
        cell.corruption = corruption.plan;
        cell.corruptionSchedule = corruption.schedule;
        out.cells.push_back(std::move(cell));

        for (std::size_t i = 0; i < matrix.options.seedCount; ++i) {
          const std::uint64_t seed = matrix.options.firstSeed + i;
          ExperimentJob job{matrix.base, matrix.options.baseline};
          job.config.topo = topo;
          job.config.daemon = daemon;
          job.config.corruption = corruption.plan;
          job.config.corruptionSchedule = corruption.schedule;
          job.config.seed = seed;
          if (matrix.options.mutate) matrix.options.mutate(job.config, seed);
          jobs.push_back(std::move(job));
        }
      }
    }
  }

  std::vector<ExperimentResult> results =
      runExperiments(jobs, matrix.options.threads);

  // Slice the flat result vector back into per-cell sweeps, in job order.
  auto it = results.begin();
  for (SweepCell& cell : out.cells) {
    std::vector<ExperimentResult> runs(
        std::make_move_iterator(it),
        std::make_move_iterator(it + static_cast<std::ptrdiff_t>(
                                         matrix.options.seedCount)));
    it += static_cast<std::ptrdiff_t>(matrix.options.seedCount);
    cell.result = aggregateRuns(std::move(runs));
  }
  return out;
}

}  // namespace snapfwd
