#pragma once
// Multi-seed sweep runner: run the same experiment across seeds (and
// optional config variants), aggregate the metrics of interest with
// Summary statistics, and keep the per-run results for inspection.
//
// Runs fan out over a ThreadPool. Each run is already a pure function of
// its config - every stochastic component forks from Rng(cfg.seed) - so
// the engine just (1) materializes the per-seed configs serially (the
// mutate hook therefore needs no locking and sees seeds in order), (2)
// executes them on the pool, writing each result into its seed's slot, and
// (3) aggregates in seed order. Serial and parallel execution of the same
// sweep produce bit-identical SweepResults (pinned by Sweep.*Deterministic
// tests), so thread count is a pure throughput knob, never a science knob.

#include <functional>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "stats/summary.hpp"

namespace snapfwd {

struct SweepOptions {
  std::uint64_t firstSeed = 1;
  std::size_t seedCount = 1;
  /// Worker threads for the run fan-out; 0 = one per hardware thread,
  /// 1 = serial. Any value yields the same SweepResult.
  std::size_t threads = 1;
  /// Run the Merlin-Schweitzer baseline stack instead of SSMFP.
  bool baseline = false;
  /// Applied to each seed's config before running; called serially in
  /// seed order on the sweeping thread (safe to capture by reference).
  std::function<void(ExperimentConfig&, std::uint64_t seed)> mutate;
};

struct SweepResult {
  std::vector<ExperimentResult> runs;

  std::size_t satisfiedSp = 0;      // runs with SP && quiescent
  std::size_t violatedSp = 0;
  std::size_t nonQuiescent = 0;

  Summary rounds;
  Summary steps;
  Summary avgDeliveryRounds;
  Summary maxDeliveryRounds;
  Summary amortizedRoundsPerDelivery;
  Summary routingSilentRound;
  Summary invalidDelivered;

  // Scheduler accounting (per run): guard evaluations performed / avoided
  // and mean dirty-set size. Describes how results were computed, so -
  // like ExperimentResult::scan - it is excluded from equality: the same
  // sweep under kFull and kIncremental compares equal.
  Summary guardEvals;
  Summary guardEvalsSaved;
  Summary avgDirtySize;

  [[nodiscard]] bool allSp() const { return violatedSp == 0 && nonQuiescent == 0; }

  friend bool operator==(const SweepResult& a, const SweepResult& b) {
    return a.runs == b.runs && a.satisfiedSp == b.satisfiedSp &&
           a.violatedSp == b.violatedSp && a.nonQuiescent == b.nonQuiescent &&
           a.rounds == b.rounds && a.steps == b.steps &&
           a.avgDeliveryRounds == b.avgDeliveryRounds &&
           a.maxDeliveryRounds == b.maxDeliveryRounds &&
           a.amortizedRoundsPerDelivery == b.amortizedRoundsPerDelivery &&
           a.routingSilentRound == b.routingSilentRound &&
           a.invalidDelivered == b.invalidDelivered;
  }
};

/// Runs cfg once per seed in [options.firstSeed, firstSeed + seedCount)
/// across options.threads workers.
[[nodiscard]] SweepResult runSweep(const ExperimentConfig& cfg,
                                   const SweepOptions& options);

/// Legacy serial-signature form (threads = 1); forwards to the above.
[[nodiscard]] SweepResult runSweep(
    ExperimentConfig cfg, std::uint64_t firstSeed, std::size_t seedCount,
    bool baseline = false,
    const std::function<void(ExperimentConfig&, std::uint64_t seed)>& mutate = {});

/// One fully materialized unit of sweep work.
struct ExperimentJob {
  ExperimentConfig config;
  bool baseline = false;
};

/// Runs every job across `threads` workers (0 = hardware concurrency);
/// results come back in job order regardless of thread count or
/// scheduling. Building block shared by runSweep and runSweepMatrix.
[[nodiscard]] std::vector<ExperimentResult> runExperiments(
    const std::vector<ExperimentJob>& jobs, std::size_t threads);

/// Folds per-run results (in the given order) into a SweepResult.
[[nodiscard]] SweepResult aggregateRuns(std::vector<ExperimentResult> runs);

/// Resolves the "0 = all hardware threads" convention.
[[nodiscard]] std::size_t resolveThreadCount(std::size_t threads);

/// Convenience: one row of summary cells for a Table
/// (n runs, SP tally, non-quiescent tally, rounds mean,
/// avg-latency mean+/-sd, amortized mean). Pair with sweepRowHeader().
[[nodiscard]] std::vector<std::string> sweepRowCells(const SweepResult& result);

/// Column titles matching sweepRowCells.
[[nodiscard]] std::vector<std::string> sweepRowHeader();

}  // namespace snapfwd
