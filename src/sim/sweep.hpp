#pragma once
// Multi-seed sweep runner: run the same experiment across seeds (and
// optional config variants), aggregate the metrics of interest with
// Summary statistics, and keep the per-run results for inspection.
//
// This is the library form of the loops every benchmark harness writes by
// hand; downstream users evaluating a variant (new choice policy, new
// daemon) get mean/stddev/percentiles and an SP tally in one call.

#include <functional>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "stats/summary.hpp"

namespace snapfwd {

struct SweepResult {
  std::vector<ExperimentResult> runs;

  std::size_t satisfiedSp = 0;      // runs with SP && quiescent
  std::size_t violatedSp = 0;
  std::size_t nonQuiescent = 0;

  Summary rounds;
  Summary steps;
  Summary avgDeliveryRounds;
  Summary maxDeliveryRounds;
  Summary amortizedRoundsPerDelivery;
  Summary routingSilentRound;
  Summary invalidDelivered;

  [[nodiscard]] bool allSp() const { return violatedSp == 0 && nonQuiescent == 0; }
};

/// Runs `cfg` once per seed in [firstSeed, firstSeed + seedCount), with
/// `mutate` (optional) applied to each seed's config before running.
/// `baseline` selects the Merlin-Schweitzer stack instead of SSMFP.
[[nodiscard]] SweepResult runSweep(
    ExperimentConfig cfg, std::uint64_t firstSeed, std::size_t seedCount,
    bool baseline = false,
    const std::function<void(ExperimentConfig&, std::uint64_t seed)>& mutate = {});

/// Convenience: one row of summary cells for a Table
/// (n runs, SP tally, rounds mean, avg-latency mean+/-sd, amortized mean).
[[nodiscard]] std::vector<std::string> sweepRowCells(const SweepResult& result);

}  // namespace snapfwd
