#include "sim/campaign.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <ostream>
#include <utility>

#include "core/engine.hpp"
#include "faults/corruptor.hpp"
#include "ssmfp/ssmfp.hpp"
#include "ssmfp2/ssmfp2.hpp"
#include "stats/jsonl.hpp"
#include "workload/workload.hpp"

namespace snapfwd {

std::string CampaignCellResult::describe() const {
  std::string out = name;
  out += ": ";
  out += toString(outcome);
  out += asExpected ? " (expected)" : " (EXPECTED ";
  if (!asExpected) {
    out += toString(expect);
    out += ")";
  }
  out += " steps=" + std::to_string(steps);
  out += " valid=" + std::to_string(validDeliveries);
  out += " invalid=" + std::to_string(invalidDeliveries);
  if (violation.has_value()) out += " [" + *violation + "]";
  return out;
}

std::size_t CampaignReport::unexpected() const {
  std::size_t count = 0;
  for (const CampaignCellResult& cell : cells) {
    if (!cell.asExpected) ++count;
  }
  return count;
}

std::size_t CampaignReport::expectedFailuresFired() const {
  std::size_t count = 0;
  for (const CampaignCellResult& cell : cells) {
    if (cell.expect != CampaignOutcome::kClean && cell.asExpected) ++count;
  }
  return count;
}

bool CampaignReport::passed() const {
  return unexpected() == 0 && expectedFailuresFired() > 0;
}

CampaignCellResult runCampaignScenario(const CampaignScenario& scenario) {
  const ExperimentConfig& cfg = scenario.config;

  // Same build discipline (RNG fork order included) as buildForwardingStack,
  // with the routing substrate swappable for the frozen ablation.
  Rng rng(cfg.seed);
  Rng topoRng = rng.fork(0x7070);
  Graph graph = buildTopology(cfg, topoRng);
  assert(graph.isConnected());

  std::unique_ptr<SelfStabBfsRouting> selfstab;
  std::unique_ptr<FrozenRouting> frozen;
  const RoutingProvider* provider = nullptr;
  if (scenario.frozenRouting) {
    frozen = std::make_unique<FrozenRouting>(graph);
    provider = frozen.get();
  } else {
    selfstab = std::make_unique<SelfStabBfsRouting>(graph);
    provider = selfstab.get();
  }

  std::unique_ptr<ForwardingProtocol> forwarding;
  switch (cfg.family) {
    case ForwardingFamilyId::kSsmfp:
      forwarding = std::make_unique<SsmfpProtocol>(graph, *provider,
                                                   cfg.destinations,
                                                   cfg.choicePolicy);
      break;
    case ForwardingFamilyId::kSsmfp2:
      forwarding =
          std::make_unique<Ssmfp2Protocol>(graph, *provider, cfg.destinations);
      break;
  }

  CampaignCellResult result;
  result.name = scenario.name;
  result.expect = scenario.expect;

  // Applies a corruption plan to whichever routing substrate this scenario
  // runs over (the family dispatcher only knows the self-stabilizing one).
  auto applyPlan = [&](const CorruptionPlan& plan, Rng& faultRng) {
    if (selfstab) {
      return applyCorruption(plan, *selfstab, *forwarding, faultRng);
    }
    if (plan.routingFraction > 0.0) frozen->corrupt(faultRng, plan.routingFraction);
    const std::size_t placed = injectInvalidMessages(
        *forwarding, plan.invalidMessages, plan.payloadSpace, faultRng);
    if (plan.scrambleQueues) forwarding->scrambleQueues(faultRng);
    return placed;
  };

  Rng faultRng = rng.fork(0xFA17);
  result.invalidInjected += applyPlan(cfg.corruption, faultRng);

  Rng trafficRng = rng.fork(0x7AFF);
  submitAll(*forwarding, makeTraffic(cfg, graph.size(), trafficRng));

  auto daemon = makeDaemon(cfg.daemon, cfg.daemonProbability, rng);
  std::vector<Protocol*> layers;
  if (selfstab) layers.push_back(selfstab.get());
  layers.push_back(forwarding.get());
  Engine engine(graph, layers, *daemon);
  forwarding->attachEngine(&engine);

  if (scenario.prepare) {
    CampaignStack stack{graph, selfstab.get(), frozen.get(), *forwarding, rng};
    scenario.prepare(stack);
  }

  TopologyMutator mutator(graph, scenario.topology, layers);

  std::vector<CorruptionEvent> schedule = cfg.corruptionSchedule;
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const CorruptionEvent& a, const CorruptionEvent& b) {
                     return a.step < b.step;
                   });
  std::size_t nextEvent = 0;
  Rng corruptionRng = schedule.empty() ? Rng(0) : rng.fork(0xFA18);

  StreamingInvariantChecker checker(*forwarding, scenario.checker);

  // Fires every topology/corruption event due at or before `upTo`.
  // Buffer-touching faults amnesty the in-flight set; routing-only plans
  // keep the checker strict (safety is routing-independent).
  auto fireDue = [&](std::uint64_t upTo, std::uint64_t now) {
    const std::size_t applied = mutator.applyDue(upTo);
    result.topologyEventsApplied += applied;
    if (applied > 0) checker.noteFaultEvent(now);
    while (nextEvent < schedule.size() && schedule[nextEvent].step <= upTo) {
      const CorruptionPlan& plan = schedule[nextEvent++].plan;
      result.invalidInjected += applyPlan(plan, corruptionRng);
      ++result.corruptionEventsFired;
      if (plan.touchesBuffers()) {
        checker.noteFaultEvent(now);
      } else {
        checker.noteRoutingFaultEvent(now);
      }
    }
  };

  engine.setPostStepHook([&](Engine& e) {
    const std::uint64_t step = e.stepCount();
    fireDue(step, step);
    (void)checker.poll(step);
  });

  std::uint64_t executed = 0;
  for (;;) {
    executed += engine.run(cfg.maxSteps - executed);
    if (executed >= cfg.maxSteps || checker.violation().has_value()) break;
    // Terminal with events still pending: fire the earliest batch into the
    // idle network and resume.
    constexpr std::uint64_t kNever = UINT64_MAX;
    const std::uint64_t pendingTopo = mutator.nextEventStep();
    const std::uint64_t pendingCorruption =
        nextEvent < schedule.size() ? schedule[nextEvent].step : kNever;
    if (pendingTopo == kNever && pendingCorruption == kNever) break;
    const std::uint64_t now = engine.stepCount();
    fireDue(std::min(pendingTopo, pendingCorruption), now);
    (void)checker.poll(now);
  }

  result.steps = engine.stepCount();
  result.terminal = engine.isTerminal();
  result.drained = forwarding->fullyDrained();
  result.occupiedAtEnd = forwarding->occupiedBufferCount();
  result.validDeliveries = checker.validDeliveries();
  result.invalidDeliveries = checker.invalidDeliveries();
  result.amnestiedDeliveries = checker.amnestiedDeliveries();
  result.violation = checker.violation();

  if (result.violation.has_value()) {
    result.outcome = CampaignOutcome::kViolation;
  } else if (result.drained) {
    result.outcome = CampaignOutcome::kClean;
  } else if (result.terminal) {
    result.outcome = CampaignOutcome::kWedge;
  } else {
    result.outcome = CampaignOutcome::kLivelock;
  }
  result.asExpected = result.outcome == result.expect;
  return result;
}

CampaignReport runCampaign(const std::vector<CampaignScenario>& scenarios) {
  CampaignReport report;
  report.cells.reserve(scenarios.size());
  for (const CampaignScenario& scenario : scenarios) {
    report.cells.push_back(runCampaignScenario(scenario));
  }
  return report;
}

void writeCampaignReport(const CampaignReport& report, std::ostream& out) {
  jsonl::Writer writer(out);
  for (const CampaignCellResult& cell : report.cells) {
    jsonl::Object line;
    line.field("scenario", cell.name)
        .field("expect", toString(cell.expect))
        .field("outcome", toString(cell.outcome))
        .field("as_expected", cell.asExpected)
        .field("steps", cell.steps)
        .field("terminal", cell.terminal)
        .field("drained", cell.drained)
        .field("occupied_at_end", static_cast<std::uint64_t>(cell.occupiedAtEnd))
        .field("topology_events",
               static_cast<std::uint64_t>(cell.topologyEventsApplied))
        .field("corruption_events",
               static_cast<std::uint64_t>(cell.corruptionEventsFired))
        .field("invalid_injected",
               static_cast<std::uint64_t>(cell.invalidInjected))
        .field("valid_deliveries", cell.validDeliveries)
        .field("invalid_deliveries", cell.invalidDeliveries)
        .field("amnestied_deliveries", cell.amnestiedDeliveries)
        .field("violation", cell.violation.value_or(""));
    writer.write(line);
  }
  jsonl::Object summary;
  summary.field("cells", static_cast<std::uint64_t>(report.cells.size()))
      .field("unexpected", static_cast<std::uint64_t>(report.unexpected()))
      .field("expected_failures_fired",
             static_cast<std::uint64_t>(report.expectedFailuresFired()))
      .field("passed", report.passed());
  writer.write(summary);
}

namespace {

Message garbage(Payload payload, NodeId lastHop, Color color, NodeId dest) {
  Message m;
  m.payload = payload;
  m.lastHop = lastHop;
  m.color = color;
  m.dest = dest;
  return m;
}

/// The SSMFP frozen-trap configuration of tests/test_deadlock.cpp: routing
/// 0 <-> 1 for destination 3 on a 4-ring, all four trap buffers occupied.
/// With `spare` the reception buffer of processor 1 stays free - enough
/// buffers to keep moving, never enough routing to arrive.
void seedSsmfpTrap(CampaignStack& stack, bool spare) {
  auto& proto = static_cast<SsmfpProtocol&>(stack.forwarding);
  if (stack.frozen != nullptr) {
    stack.frozen->setEntry(0, 3, 1);
    stack.frozen->setEntry(1, 3, 0);
  } else {
    stack.selfstab->setEntry(0, 3, 1, 1);
    stack.selfstab->setEntry(1, 3, 1, 0);
  }
  proto.injectEmission(0, 3, garbage(10, 0, 0, 3));
  proto.injectEmission(1, 3, garbage(11, 1, 1, 3));
  proto.injectReception(0, 3, garbage(12, 0, 2, 3));
  if (!spare) proto.injectReception(1, 3, garbage(13, 1, 2, 3));
}

/// CNS buffer-sufficiency seeding for SSMFP2 on a ring: fill rank slots of
/// every processor with garbage that byte-mimics a legitimate ready copy
/// (lastHop = p, so the 2R8 rank-consistency sieve cannot see it),
/// addressed to the antipodal node. Saturating ALL slots wedges the rank
/// ladder's recycle cycle (nothing can pull, generate or recycle); leaving
/// `freeRanksPerProcessor` entry ranks empty on EVERY ladder is the CNS
/// condition - one free slot per recycle cycle - and the whole
/// configuration drains as bounded invalid deliveries. (One free slot
/// somewhere is NOT enough: the other ladders' cycles stay saturated and
/// the rotation stalls as soon as every free slot's feeders route
/// elsewhere - empirically one global free slot wedges after a single
/// delivery.)
void seedSsmfp2Saturation(CampaignStack& stack,
                          std::uint32_t freeRanksPerProcessor) {
  auto& proto = static_cast<Ssmfp2Protocol&>(stack.forwarding);
  const std::size_t n = stack.graph.size();
  const Color colors = static_cast<Color>(proto.delta() + 1);
  for (NodeId p = 0; p < n; ++p) {
    for (std::uint32_t k = freeRanksPerProcessor; k <= proto.maxRank(); ++k) {
      const NodeId dest = static_cast<NodeId>((p + n / 2) % n);
      proto.injectSlot(p, k, SlotState::kReady,
                       garbage(100 + p, p, static_cast<Color>(k % colors), dest));
    }
  }
}

}  // namespace

std::vector<CampaignScenario> builtinCampaign(std::uint64_t steps) {
  std::vector<CampaignScenario> scenarios;
  const std::uint64_t soakSteps = std::max<std::uint64_t>(steps, 10'000);

  // -- Positive cells: churn soaks (the tentpole claim) ---------------------
  for (const ForwardingFamilyId family :
       {ForwardingFamilyId::kSsmfp, ForwardingFamilyId::kSsmfp2}) {
    CampaignScenario s;
    s.name = std::string(toString(family)) + "/link-churn";
    s.config.family = family;
    s.config.topo = TopologySpec::randomConnected(10, 4);
    s.config.traffic = TrafficKind::kUniform;
    s.config.messageCount = 24;
    s.config.seed = 11;
    s.config.maxSteps = soakSteps;
    // Derive the churn schedule over the same graph the runner will build
    // (identical seed and fork discipline).
    {
      Rng rng(s.config.seed);
      Rng topoRng = rng.fork(0x7070);
      const Graph g = buildTopology(s.config, topoRng);
      Rng churnRng(s.config.seed ^ 0xC4C4u);
      s.topology = makeLinkChurnSchedule(g, churnRng, soakSteps, 4,
                                         std::max<std::uint64_t>(soakSteps / 10, 50));
    }
    s.expect = CampaignOutcome::kClean;
    scenarios.push_back(std::move(s));
  }

  // -- Positive cells: mid-run corruption recovery --------------------------
  for (const ForwardingFamilyId family :
       {ForwardingFamilyId::kSsmfp, ForwardingFamilyId::kSsmfp2}) {
    CampaignScenario s;
    s.name = std::string(toString(family)) + "/midrun-corruption";
    s.config.family = family;
    s.config.topo = TopologySpec::ring(8);
    s.config.traffic = TrafficKind::kUniform;
    s.config.messageCount = 16;
    s.config.seed = 7;
    s.config.maxSteps = soakSteps;
    CorruptionPlan plan;
    plan.routingFraction = 0.5;
    plan.invalidMessages = 6;
    plan.scrambleQueues = true;
    s.config.corruptionSchedule.push_back({120, plan});
    // Prop-4 style bound: each injected garbage message is delivered at
    // most once, plus slack for garbage erased instead of delivered.
    s.checker.invalidDeliveryBudget = 12;
    s.expect = CampaignOutcome::kClean;
    scenarios.push_back(std::move(s));
  }

  // -- CNS buffer-sufficiency pair (SSMFP2 rank ladder) ---------------------
  {
    CampaignScenario s;
    s.name = "ssmfp2/cns-saturated-recycle";
    s.config.family = ForwardingFamilyId::kSsmfp2;
    s.config.topo = TopologySpec::ring(4);
    s.config.traffic = TrafficKind::kNone;
    s.config.seed = 3;
    s.config.maxSteps = std::min<std::uint64_t>(soakSteps, 100'000);
    s.prepare = [](CampaignStack& stack) { seedSsmfp2Saturation(stack, 0); };
    s.checker.invalidDeliveryBudget = 64;
    s.expect = CampaignOutcome::kWedge;
    scenarios.push_back(std::move(s));
  }
  {
    CampaignScenario s;
    s.name = "ssmfp2/cns-free-slot-per-ladder";
    s.config.family = ForwardingFamilyId::kSsmfp2;
    s.config.topo = TopologySpec::ring(4);
    s.config.traffic = TrafficKind::kNone;
    s.config.seed = 3;
    s.config.maxSteps = std::min<std::uint64_t>(soakSteps, 100'000);
    s.prepare = [](CampaignStack& stack) { seedSsmfp2Saturation(stack, 1); };
    s.checker.invalidDeliveryBudget = 64;
    s.expect = CampaignOutcome::kClean;
    scenarios.push_back(std::move(s));
  }

  // -- Frozen-routing trap trio (SSMFP) -------------------------------------
  {
    CampaignScenario s;
    s.name = "ssmfp/frozen-trap-wedge";
    s.config.family = ForwardingFamilyId::kSsmfp;
    s.config.topo = TopologySpec::ring(4);
    s.config.traffic = TrafficKind::kNone;
    s.config.seed = 5;
    s.config.maxSteps = std::min<std::uint64_t>(soakSteps, 50'000);
    s.frozenRouting = true;
    s.prepare = [](CampaignStack& stack) { seedSsmfpTrap(stack, false); };
    s.checker.invalidDeliveryBudget = 8;
    s.expect = CampaignOutcome::kWedge;
    scenarios.push_back(std::move(s));
  }
  {
    CampaignScenario s;
    s.name = "ssmfp/frozen-trap-livelock";
    s.config.family = ForwardingFamilyId::kSsmfp;
    s.config.topo = TopologySpec::ring(4);
    s.config.traffic = TrafficKind::kNone;
    s.config.seed = 5;
    s.config.maxSteps = std::min<std::uint64_t>(soakSteps, 50'000);
    s.frozenRouting = true;
    s.prepare = [](CampaignStack& stack) { seedSsmfpTrap(stack, true); };
    s.checker.invalidDeliveryBudget = 8;
    s.expect = CampaignOutcome::kLivelock;
    scenarios.push_back(std::move(s));
  }
  {
    CampaignScenario s;
    s.name = "ssmfp/selfstab-trap-resolves";
    s.config.family = ForwardingFamilyId::kSsmfp;
    s.config.topo = TopologySpec::ring(4);
    s.config.traffic = TrafficKind::kNone;
    s.config.seed = 5;
    s.config.maxSteps = std::min<std::uint64_t>(soakSteps, 50'000);
    s.prepare = [](CampaignStack& stack) { seedSsmfpTrap(stack, false); };
    s.checker.invalidDeliveryBudget = 8;
    s.expect = CampaignOutcome::kClean;
    scenarios.push_back(std::move(s));
  }

  // -- Seeded-weakness violation cell ---------------------------------------
  // kR4SkipStrayCopyCheck is a DELIBERATE guard weakening (the protocol
  // itself is not under suspicion): it demonstrates the streaming checker
  // detects a duplicate delivery when R4's stray-copy quantifier is gone.
  // The duplicate needs a routing flip between two pulls of the same
  // emission buffer, so the cell re-corrupts the routing tables MID-RUN
  // (routing-only: the checker stays strict) while the outbox backlog keeps
  // strict traffic entering the reconverging network.
  {
    CampaignScenario s;
    s.name = "ssmfp/weakened-r4-duplicate";
    s.config.family = ForwardingFamilyId::kSsmfp;
    s.config.topo = TopologySpec::ring(6);
    s.config.traffic = TrafficKind::kUniform;
    s.config.messageCount = 60;
    s.config.seed = 7;
    s.config.maxSteps = std::min<std::uint64_t>(soakSteps, 200'000);
    CorruptionPlan heavy;
    heavy.routingFraction = 0.8;
    heavy.scrambleQueues = true;
    s.config.corruptionSchedule.push_back({40, heavy});
    s.config.corruptionSchedule.push_back({80, heavy});
    s.prepare = [](CampaignStack& stack) {
      static_cast<SsmfpProtocol&>(stack.forwarding)
          .setGuardMutationForTest(SsmfpGuardMutation::kR4SkipStrayCopyCheck);
    };
    s.expect = CampaignOutcome::kViolation;
    scenarios.push_back(std::move(s));
  }

  return scenarios;
}

}  // namespace snapfwd
