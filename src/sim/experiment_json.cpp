#include "sim/experiment_json.hpp"

#include <atomic>
#include <ostream>

namespace snapfwd {

namespace {

template <typename Enum>
Enum enumFromJson(const jsonl::Value& value, std::string_view key, Enum fallback) {
  const jsonl::Value* member = value.find(key);
  if (member == nullptr || member->kind != jsonl::Value::Kind::kString) {
    return fallback;
  }
  return parseEnum<Enum>(member->text).value_or(fallback);
}

}  // namespace

const char* buildGitDescribe() {
#ifdef SNAPFWD_GIT_DESCRIBE
  return SNAPFWD_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

jsonl::Object toJson(const TopologySpec& spec) {
  jsonl::Object out;
  out.field("kind", toString(spec.kind));
  switch (spec.kind) {
    case TopologyKind::kGrid:
    case TopologyKind::kTorus:
      out.field("rows", std::uint64_t{spec.rows});
      out.field("cols", std::uint64_t{spec.cols});
      break;
    case TopologyKind::kHypercube:
      out.field("dims", std::uint64_t{spec.dims});
      break;
    case TopologyKind::kRandomConnected:
      out.field("n", std::uint64_t{spec.n});
      out.field("extraEdges", std::uint64_t{spec.extraEdges});
      break;
    case TopologyKind::kFigure3:
      break;
    default:
      out.field("n", std::uint64_t{spec.n});
      break;
  }
  return out;
}

TopologySpec topologySpecFromJson(const jsonl::Value& value) {
  TopologySpec spec;
  spec.kind = enumFromJson(value, "kind", spec.kind);
  spec.n = value.u64At("n", spec.n);
  spec.rows = value.u64At("rows", spec.rows);
  spec.cols = value.u64At("cols", spec.cols);
  spec.dims = value.u64At("dims", spec.dims);
  spec.extraEdges = value.u64At("extraEdges", spec.extraEdges);
  return spec;
}

jsonl::Object toJson(const CorruptionPlan& plan) {
  jsonl::Object out;
  out.field("routingFraction", plan.routingFraction);
  out.field("invalidMessages", std::uint64_t{plan.invalidMessages});
  out.field("payloadSpace", std::uint64_t{plan.payloadSpace});
  out.field("scrambleQueues", plan.scrambleQueues);
  return out;
}

CorruptionPlan corruptionPlanFromJson(const jsonl::Value& value) {
  CorruptionPlan plan;
  plan.routingFraction = value.doubleAt("routingFraction", plan.routingFraction);
  plan.invalidMessages = value.u64At("invalidMessages", plan.invalidMessages);
  plan.payloadSpace =
      static_cast<Payload>(value.u64At("payloadSpace", plan.payloadSpace));
  plan.scrambleQueues = value.boolAt("scrambleQueues", plan.scrambleQueues);
  return plan;
}

jsonl::Object toJson(const ExperimentConfig& config) {
  jsonl::Object out;
  out.field("topology", toJson(config.topo));
  out.field("family", toString(config.family));
  out.field("daemon", toString(config.daemon));
  out.field("daemonProbability", config.daemonProbability);
  out.field("seed", config.seed);
  out.field("corruption", toJson(config.corruption));
  out.field("traffic", toString(config.traffic));
  out.field("messageCount", std::uint64_t{config.messageCount});
  out.field("perSource", std::uint64_t{config.perSource});
  out.field("hotspot", std::uint64_t{config.hotspot});
  out.field("payloadSpace", std::uint64_t{config.payloadSpace});
  out.field("maxSteps", config.maxSteps);
  out.field("checkInvariantsEveryStep", config.checkInvariantsEveryStep);
  jsonl::Array destinations;
  for (const NodeId d : config.destinations) destinations.push(std::uint64_t{d});
  out.field("destinations", destinations);
  out.field("choicePolicy", toString(config.choicePolicy));
  return out;
}

ExperimentConfig experimentConfigFromJson(const jsonl::Value& value) {
  ExperimentConfig config;
  if (const jsonl::Value* topo = value.find("topology")) {
    config.topo = topologySpecFromJson(*topo);
  }
  config.family = enumFromJson(value, "family", config.family);
  config.daemon = enumFromJson(value, "daemon", config.daemon);
  config.daemonProbability =
      value.doubleAt("daemonProbability", config.daemonProbability);
  config.seed = value.u64At("seed", config.seed);
  if (const jsonl::Value* corruption = value.find("corruption")) {
    config.corruption = corruptionPlanFromJson(*corruption);
  }
  config.traffic = enumFromJson(value, "traffic", config.traffic);
  config.messageCount = value.u64At("messageCount", config.messageCount);
  config.perSource = value.u64At("perSource", config.perSource);
  config.hotspot = static_cast<NodeId>(value.u64At("hotspot", config.hotspot));
  config.payloadSpace =
      static_cast<Payload>(value.u64At("payloadSpace", config.payloadSpace));
  config.maxSteps = value.u64At("maxSteps", config.maxSteps);
  config.checkInvariantsEveryStep =
      value.boolAt("checkInvariantsEveryStep", config.checkInvariantsEveryStep);
  if (const jsonl::Value* destinations = value.find("destinations")) {
    for (const jsonl::Value& d : destinations->items) {
      config.destinations.push_back(static_cast<NodeId>(d.asU64()));
    }
  }
  config.choicePolicy = enumFromJson(value, "choicePolicy", config.choicePolicy);
  return config;
}

jsonl::Object toJson(const SpecReport& report) {
  jsonl::Object out;
  out.field("validGenerated", report.validGenerated);
  out.field("validDelivered", report.validDelivered);
  out.field("duplicatedTraces", report.duplicatedTraces);
  out.field("lostTraces", report.lostTraces);
  out.field("misdelivered", report.misdelivered);
  out.field("invalidDelivered", report.invalidDelivered);
  jsonl::Array duplicated;
  for (const TraceId id : report.duplicated) duplicated.push(std::uint64_t{id});
  out.field("duplicated", duplicated);
  jsonl::Array lost;
  for (const TraceId id : report.lost) lost.push(std::uint64_t{id});
  out.field("lost", lost);
  out.field("satisfiesSp", report.satisfiesSp());
  out.field("satisfiesSpPrime", report.satisfiesSpPrime());
  return out;
}

SpecReport specReportFromJson(const jsonl::Value& value) {
  SpecReport report;
  report.validGenerated = value.u64At("validGenerated");
  report.validDelivered = value.u64At("validDelivered");
  report.duplicatedTraces = value.u64At("duplicatedTraces");
  report.lostTraces = value.u64At("lostTraces");
  report.misdelivered = value.u64At("misdelivered");
  report.invalidDelivered = value.u64At("invalidDelivered");
  if (const jsonl::Value* duplicated = value.find("duplicated")) {
    for (const jsonl::Value& id : duplicated->items) {
      report.duplicated.push_back(static_cast<TraceId>(id.asU64()));
    }
  }
  if (const jsonl::Value* lost = value.find("lost")) {
    for (const jsonl::Value& id : lost->items) {
      report.lost.push_back(static_cast<TraceId>(id.asU64()));
    }
  }
  return report;
}

namespace {
std::atomic<bool> gEmitScanStats{false};
}  // namespace

void setEmitScanStats(bool emit) {
  gEmitScanStats.store(emit, std::memory_order_relaxed);
}

bool emitScanStats() { return gEmitScanStats.load(std::memory_order_relaxed); }

jsonl::Object toJson(const ScanStats& stats) {
  jsonl::Object out;
  out.field("fullScans", stats.fullScans);
  out.field("incrementalScans", stats.incrementalScans);
  out.field("cachedScans", stats.cachedScans);
  out.field("guardEvals", stats.guardEvals);
  out.field("guardEvalsSaved", stats.guardEvalsSaved);
  out.field("avgDirtySize", stats.avgDirtySize());
  return out;
}

jsonl::Object toJson(const ExperimentResult& result) {
  jsonl::Object out;
  out.field("quiescent", result.quiescent);
  out.field("steps", result.steps);
  out.field("rounds", result.rounds);
  out.field("actions", result.actions);
  out.field("routingCorrupted", result.routingCorrupted);
  out.field("routingSilentStep", result.routingSilentStep);
  out.field("routingSilentRound", result.routingSilentRound);
  out.field("spec", toJson(result.spec));
  out.field("invalidInjected", std::uint64_t{result.invalidInjected});
  out.field("invalidDelivered", result.invalidDelivered);
  out.field("avgDeliveryRounds", result.avgDeliveryRounds);
  out.field("maxDeliveryRounds", result.maxDeliveryRounds);
  out.field("avgGenerationRound", result.avgGenerationRound);
  out.field("maxGenerationRound", result.maxGenerationRound);
  out.field("amortizedRoundsPerDelivery", result.amortizedRoundsPerDelivery);
  out.field("graphN", std::uint64_t{result.graphN});
  out.field("graphDelta", std::uint64_t{result.graphDelta});
  out.field("graphDiameter", std::uint64_t{result.graphDiameter});
  if (result.invariantViolation.has_value()) {
    out.field("invariantViolation", *result.invariantViolation);
  }
  if (emitScanStats()) {
    out.field("scanMode", std::string(toString(result.scanMode)));
    out.field("scan", toJson(result.scan));
  }
  return out;
}

ExperimentResult experimentResultFromJson(const jsonl::Value& value) {
  ExperimentResult result;
  result.quiescent = value.boolAt("quiescent");
  result.steps = value.u64At("steps");
  result.rounds = value.u64At("rounds");
  result.actions = value.u64At("actions");
  result.routingCorrupted = value.boolAt("routingCorrupted");
  result.routingSilentStep = value.u64At("routingSilentStep");
  result.routingSilentRound = value.u64At("routingSilentRound");
  if (const jsonl::Value* spec = value.find("spec")) {
    result.spec = specReportFromJson(*spec);
  }
  result.invalidInjected = value.u64At("invalidInjected");
  result.invalidDelivered = value.u64At("invalidDelivered");
  result.avgDeliveryRounds = value.doubleAt("avgDeliveryRounds");
  result.maxDeliveryRounds = value.u64At("maxDeliveryRounds");
  result.avgGenerationRound = value.doubleAt("avgGenerationRound");
  result.maxGenerationRound = value.u64At("maxGenerationRound");
  result.amortizedRoundsPerDelivery = value.doubleAt("amortizedRoundsPerDelivery");
  result.graphN = value.u64At("graphN");
  result.graphDelta = value.u64At("graphDelta");
  result.graphDiameter = static_cast<std::uint32_t>(value.u64At("graphDiameter"));
  if (const jsonl::Value* violation = value.find("invariantViolation")) {
    result.invariantViolation = violation->text;
  }
  if (const jsonl::Value* mode = value.find("scanMode")) {
    if (const auto parsed = parseEnum<ScanMode>(mode->text)) {
      result.scanMode = *parsed;
    }
  }
  if (const jsonl::Value* scan = value.find("scan")) {
    result.scan.fullScans = scan->u64At("fullScans");
    result.scan.incrementalScans = scan->u64At("incrementalScans");
    result.scan.cachedScans = scan->u64At("cachedScans");
    result.scan.guardEvals = scan->u64At("guardEvals");
    result.scan.guardEvalsSaved = scan->u64At("guardEvalsSaved");
    // dirtySum is not serialized (avgDirtySize is derived); leave 0.
  }
  return result;
}

jsonl::Object toJson(const Summary& summary) {
  jsonl::Object out;
  out.field("count", std::uint64_t{summary.count()});
  if (!summary.empty()) {
    out.field("mean", summary.mean());
    out.field("stddev", summary.stddev());
    out.field("min", summary.min());
    out.field("max", summary.max());
    out.field("p50", summary.percentile(50.0));
    out.field("p90", summary.percentile(90.0));
  }
  return out;
}

jsonl::Object aggregatesJson(const SweepResult& result) {
  jsonl::Object out;
  out.field("runs", std::uint64_t{result.runs.size()});
  out.field("satisfiedSp", std::uint64_t{result.satisfiedSp});
  out.field("violatedSp", std::uint64_t{result.violatedSp});
  out.field("nonQuiescent", std::uint64_t{result.nonQuiescent});
  out.field("rounds", toJson(result.rounds));
  out.field("steps", toJson(result.steps));
  out.field("avgDeliveryRounds", toJson(result.avgDeliveryRounds));
  out.field("maxDeliveryRounds", toJson(result.maxDeliveryRounds));
  out.field("amortizedRoundsPerDelivery",
            toJson(result.amortizedRoundsPerDelivery));
  out.field("routingSilentRound", toJson(result.routingSilentRound));
  out.field("invalidDelivered", toJson(result.invalidDelivered));
  if (emitScanStats()) {
    out.field("guardEvals", toJson(result.guardEvals));
    out.field("guardEvalsSaved", toJson(result.guardEvalsSaved));
    out.field("avgDirtySize", toJson(result.avgDirtySize));
  }
  return out;
}

jsonl::Array toJson(const std::vector<ExecutionTracer::RuleCount>& counts,
                    int routingLayer) {
  jsonl::Array out;
  for (const ExecutionTracer::RuleCount& count : counts) {
    jsonl::Object entry;
    entry.field("layer", std::uint64_t{count.layer});
    entry.field("rule", static_cast<int>(count.layer) == routingLayer
                            ? std::string("RFix")
                            : ruleName(count.layer, count.rule));
    entry.field("count", count.count);
    out.push(entry);
  }
  return out;
}

jsonl::Object toJson(const RunManifest& manifest, const ExperimentConfig& base) {
  jsonl::Object out;
  out.field("type", "manifest");
  out.field("experiment", manifest.experiment);
  out.field("git", manifest.gitDescribe);
  out.field("firstSeed", manifest.firstSeed);
  out.field("seedCount", std::uint64_t{manifest.seedCount});
  out.field("threads", std::uint64_t{manifest.threads});
  out.field("baseline", manifest.baseline);
  out.field("config", toJson(base));
  return out;
}

namespace {

void writeCellLines(jsonl::Writer& writer, std::string_view cellLabel,
                    std::uint64_t firstSeed, const SweepResult& result) {
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    jsonl::Object line;
    line.field("type", "run");
    line.field("cell", cellLabel);
    line.field("seed", firstSeed + i);
    line.field("result", toJson(result.runs[i]));
    writer.write(line);
  }
  jsonl::Object aggregate;
  aggregate.field("type", "sweep");
  aggregate.field("cell", cellLabel);
  aggregate.field("aggregates", aggregatesJson(result));
  writer.write(aggregate);
}

}  // namespace

void writeSweepJsonl(std::ostream& out, const RunManifest& manifest,
                     const ExperimentConfig& base, const SweepResult& result) {
  jsonl::Writer writer(out);
  writer.write(toJson(manifest, base));
  writeCellLines(writer, "", manifest.firstSeed, result);
}

void writeMatrixJsonl(std::ostream& out, const RunManifest& manifest,
                      const ExperimentConfig& base, const SweepMatrixResult& result) {
  jsonl::Writer writer(out);
  writer.write(toJson(manifest, base));
  for (const SweepCell& cell : result.cells) {
    writeCellLines(writer, cell.label(), manifest.firstSeed, cell.result);
  }
}

}  // namespace snapfwd
