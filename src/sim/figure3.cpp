#include "sim/figure3.hpp"

#include <sstream>

#include "graph/builders.hpp"

namespace snapfwd {
namespace {

std::string describeBuffer(const Buffer& b) {
  if (!b.has_value()) return "-";
  std::ostringstream out;
  const char* info = b->payload == Figure3Replay::kPayloadM ? "m" : "m'";
  out << "(" << info << "," << topo::figure3Label(b->lastHop) << ","
      << b->color << ")" << (b->valid ? "" : "!");
  return out.str();
}

}  // namespace

Figure3Replay::Figure3Replay() {
  graph_ = std::make_unique<Graph>(topo::figure3Network());
  routing_ = std::make_unique<FrozenRouting>(*graph_);
  proto_ = std::make_unique<SsmfpProtocol>(*graph_, *routing_);

  // Corrupted initial tables: the a <-> c cycle for destination b.
  routing_->setEntry(kA, kB, kC);
  routing_->setEntry(kC, kB, kA);

  // Invalid message m' (color 0) in b's reception buffer.
  Message garbage;
  garbage.payload = kPayloadMPrime;
  garbage.lastHop = kB;
  garbage.color = 0;
  proto_->injectReception(kB, kB, garbage);

  // c's higher layer wants to send m, then a message with the same useful
  // information as the invalid one.
  proto_->send(kC, kB, kPayloadM);
  proto_->send(kC, kB, kPayloadMPrime);

  using Sel = ScriptedDaemon::Selection;
  std::vector<std::vector<Sel>> script{
      /* 1*/ {{kC, kR1Generate, kB}},
      /* 2*/ {{kC, kR2Internal, kB}},
      /* 3*/ {{kA, kR3Forward, kB}, {kC, kR1Generate, kB}},
      /* 4*/ {{kC, kR4EraseForwarded, kB}},
      /* 5*/ {{kC, kR2Internal, kB}},
      // --- routing tables repaired between steps 5 and 6 ---
      /* 6*/ {{kA, kR2Internal, kB}},
      /* 7*/ {{kB, kR2Internal, kB}},
      /* 8*/ {{kB, kR6Consume, kB}},
      /* 9*/ {{kB, kR3Forward, kB}},
      /*10*/ {{kA, kR4EraseForwarded, kB}},
      /*11*/ {{kB, kR2Internal, kB}},
      /*12*/ {{kB, kR6Consume, kB}},
      /*13*/ {{kB, kR3Forward, kB}},
      /*14*/ {{kC, kR4EraseForwarded, kB}},
      /*15*/ {{kB, kR2Internal, kB}},
      /*16*/ {{kB, kR6Consume, kB}},
  };
  descriptions_ = {
      "(1)  R1 at c: c emits m into bufR_c(b) with color 0",
      "(2)  R2 at c: m moves to bufE_c(b); color 0 forbidden by invalid m' "
      "at b, so m gets color 1",
      "(3)  R3 at a + R1 at c: m forwarded to bufR_a(b) (color kept); c "
      "emits m' (same useful info as the invalid message)",
      "(4)  R4 at c: m erased from bufE_c(b) (its copy reached bufR_a(b))",
      "(5)  R2 at c: m' moves to bufE_c(b); colors 0 and 1 taken, so m' "
      "gets color 2",
      "(6)  [tables repaired] R2 at a: m moves to bufE_a(b) with color 1",
      "(7)  R2 at b: invalid m' moves to bufE_b(b)",
      "(8)  R6 at b: invalid m' DELIVERED",
      "(9)  R3 at b: m forwarded to bufR_b(b)",
      "(10) R4 at a: m erased from bufE_a(b)",
      "(11) R2 at b: m moves to bufE_b(b)",
      "(12) R6 at b: m DELIVERED",
      "(13) R3 at b: valid m' forwarded to bufR_b(b)",
      "(14) R4 at c: m' erased from bufE_c(b)",
      "(15) R2 at b: m' moves to bufE_b(b)",
      "(16) R6 at b: valid m' DELIVERED",
  };

  daemon_ = std::make_unique<ScriptedDaemon>(std::move(script));
  engine_ = std::make_unique<Engine>(*graph_, std::vector<Protocol*>{proto_.get()},
                                     *daemon_);
  proto_->attachEngine(engine_.get());
}

bool Figure3Replay::run(
    const std::function<void(std::size_t, const std::string&)>& onStep) {
  colorsCorrect_ = true;
  std::size_t step = 0;
  while (engine_->step()) {
    ++step;
    // The paper's narration: the self-stabilizing routing layer converges
    // between configurations (4) and (5) - our scripted steps 5 and 6.
    if (step == 5) {
      routing_->setEntry(kA, kB, kB);
      routing_->setEntry(kC, kB, kB);
    }
    // Check the color claims of the figure.
    if (step == 2) {
      const Buffer& e = proto_->bufE(kC, kB);
      colorsCorrect_ &= e.has_value() && e->color == 1;
    }
    if (step == 5) {
      const Buffer& e = proto_->bufE(kC, kB);
      colorsCorrect_ &= e.has_value() && e->color == 2;
    }
    if (onStep && step <= descriptions_.size()) {
      onStep(step, descriptions_[step - 1]);
    }
  }
  scriptMatched_ = daemon_->allMatched() && step == descriptions_.size();

  // Expected deliveries, in order: invalid m', valid m, valid m'.
  const auto& deliveries = proto_->deliveries();
  deliveriesCorrect_ =
      deliveries.size() == 3 && !deliveries[0].msg.valid &&
      deliveries[0].msg.payload == kPayloadMPrime && deliveries[1].msg.valid &&
      deliveries[1].msg.payload == kPayloadM && deliveries[2].msg.valid &&
      deliveries[2].msg.payload == kPayloadMPrime &&
      deliveries[0].at == kB && deliveries[1].at == kB && deliveries[2].at == kB;

  const bool drained = proto_->fullyDrained();
  return scriptMatched_ && deliveriesCorrect_ && colorsCorrect_ && drained;
}

std::string Figure3Replay::renderConfiguration() const {
  std::ostringstream out;
  for (NodeId p = 0; p < graph_->size(); ++p) {
    out << "  " << topo::figure3Label(p)
        << ": bufR=" << describeBuffer(proto_->bufR(p, kB))
        << "  bufE=" << describeBuffer(proto_->bufE(p, kB)) << "\n";
  }
  return out.str();
}

}  // namespace snapfwd
