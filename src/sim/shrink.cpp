#include "sim/shrink.hpp"

#include <sstream>
#include <vector>

namespace snapfwd {
namespace {

std::vector<std::string> splitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string joinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) {
    if (line.empty()) continue;  // removal marker
    out += line;
    out += '\n';
  }
  return out;
}

bool startsWith(const std::string& line, const char* tag) {
  return line.rfind(tag, 0) == 0;
}

/// A line whose removal is a candidate reduction. Routing lines reset the
/// entry to correct-by-construction; buffer/outbox lines delete a message.
bool isRemovable(const std::string& line) {
  return startsWith(line, "bufR ") || startsWith(line, "bufE ") ||
         startsWith(line, "outbox ") || startsWith(line, "routing ");
}

/// For buffer/outbox lines: rewrite the payload field (3rd value for
/// buffers and outbox alike) to 0; returns the edited line or empty when
/// not applicable / already zero.
std::string withZeroPayload(const std::string& line) {
  if (!(startsWith(line, "bufR ") || startsWith(line, "bufE ") ||
        startsWith(line, "outbox "))) {
    return {};
  }
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  // Layout: tag p d payload ...
  if (tokens.size() < 4 || tokens[3] == "0") return {};
  tokens[3] = "0";
  std::string out = tokens[0];
  for (std::size_t i = 1; i < tokens.size(); ++i) out += " " + tokens[i];
  return out;
}

}  // namespace

ShrinkResult shrinkSnapshot(const std::string& snapshot,
                            const ShrinkPredicate& stillExhibits,
                            int maxPasses) {
  ShrinkResult result;
  result.snapshot = snapshot;

  auto probe = [&](const std::string& candidate) -> bool {
    ++result.probes;
    try {
      RestoredStack stack = snapshotFromString(candidate);
      return stillExhibits(stack);
    } catch (const std::exception&) {
      return false;  // malformed candidate: reject the edit
    }
  };

  if (!probe(snapshot)) return result;  // input does not exhibit: no-op

  std::vector<std::string> lines = splitLines(result.snapshot);
  for (int pass = 0; pass < maxPasses; ++pass) {
    bool changed = false;
    // Phase 1: try removing each removable line.
    for (auto& line : lines) {
      if (line.empty() || !isRemovable(line)) continue;
      const std::string saved = line;
      line.clear();
      if (probe(joinLines(lines))) {
        ++result.removedLines;
        changed = true;
      } else {
        line = saved;
      }
    }
    // Phase 2: try zeroing payloads of surviving message lines.
    for (auto& line : lines) {
      if (line.empty()) continue;
      const std::string zeroed = withZeroPayload(line);
      if (zeroed.empty()) continue;
      const std::string saved = line;
      line = zeroed;
      if (probe(joinLines(lines))) {
        ++result.zeroedPayloads;
        changed = true;
      } else {
        line = saved;
      }
    }
    if (!changed) break;
  }
  result.snapshot = joinLines(lines);
  return result;
}

}  // namespace snapfwd
