#pragma once
// SweepMatrix: the library form of the nested for-loops every evaluation
// harness used to hand-roll. A matrix crosses topologies x daemons x
// (named) corruption plans over one base config, runs every cell across
// the configured seed range, and hands back per-cell SweepResults with the
// per-run ExperimentResults still attached (bound checks in the benches
// need them).
//
// All (cell, seed) runs of the whole matrix are flattened onto ONE thread
// pool, so a matrix with many small cells still saturates the machine
// instead of serializing on cell boundaries. Determinism is inherited from
// runExperiments: results land in (cell-major, seed-minor) order whatever
// the thread count.

#include <string>
#include <vector>

#include "sim/sweep.hpp"

namespace snapfwd {

/// A corruption plan plus the label it carries into tables and JSONL.
/// `schedule` fires additional plans mid-run (ExperimentConfig::
/// corruptionSchedule); the axis replaces BOTH the build-time plan and
/// the schedule of the base config, so "same plan at step S" and "same
/// plan at step 0" are distinct, directly comparable cells.
struct NamedCorruption {
  std::string label;
  CorruptionPlan plan;
  std::vector<CorruptionEvent> schedule;
};

struct SweepMatrix {
  /// Everything not varied by an axis (traffic, policy, maxSteps, ...).
  ExperimentConfig base;

  /// Axes; an empty axis inherits the base config's value (one cell).
  std::vector<TopologySpec> topologies;
  std::vector<DaemonKind> daemons;
  std::vector<NamedCorruption> corruptions;

  /// Seed range, thread count, baseline switch, per-run mutate hook.
  SweepOptions options;
};

struct SweepCell {
  TopologySpec topo;
  DaemonKind daemon = DaemonKind::kDistributedRandom;
  std::string corruptionLabel;
  CorruptionPlan corruption;
  std::vector<CorruptionEvent> corruptionSchedule;
  SweepResult result;

  /// "ring/n=8 synchronous corrupted" - stable row label.
  [[nodiscard]] std::string label() const;
};

struct SweepMatrixResult {
  /// Topology-major, then daemon, then corruption plan.
  std::vector<SweepCell> cells;

  [[nodiscard]] bool allSp() const;
  [[nodiscard]] std::size_t totalRuns() const;
};

[[nodiscard]] SweepMatrixResult runSweepMatrix(const SweepMatrix& matrix);

}  // namespace snapfwd
