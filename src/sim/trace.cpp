#include "sim/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace snapfwd {

// util/names.hpp's ruleName hardcodes the 1..6 forwarding-rule window so
// snapfwd_util does not depend on the ssmfp layer; pin the convention here
// where the constants are visible.
static_assert(kR1Generate == 1 && kR6Consume == 6,
              "util/names.cpp ruleName assumes SSMFP rules number 1..6");

ExecutionTracer::ExecutionTracer(Engine& engine, int routingLayer)
    : routingLayer_(routingLayer) {
  engine.setPostStepHook([this](Engine& e) {
    for (const auto& executed : e.lastExecuted()) {
      entries_.push_back({e.stepCount(), e.roundCount(), executed.p,
                          executed.layer, executed.action.rule,
                          executed.action.dest, executed.action.aux});
    }
  });
}

std::vector<TraceEntry> ExecutionTracer::byRule(std::uint16_t layer,
                                                std::uint16_t rule) const {
  std::vector<TraceEntry> out;
  for (const auto& entry : entries_) {
    if (entry.layer == layer && entry.rule == rule) out.push_back(entry);
  }
  return out;
}

std::vector<TraceEntry> ExecutionTracer::byProcessor(NodeId p) const {
  std::vector<TraceEntry> out;
  for (const auto& entry : entries_) {
    if (entry.p == p) out.push_back(entry);
  }
  return out;
}

std::vector<ExecutionTracer::RuleCount> ExecutionTracer::ruleCounts() const {
  std::map<std::pair<std::uint16_t, std::uint16_t>, std::uint64_t> counts;
  for (const auto& entry : entries_) {
    ++counts[{entry.layer, entry.rule}];
  }
  std::vector<RuleCount> out;
  out.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    out.push_back({key.first, key.second, count});
  }
  return out;
}

std::string ExecutionTracer::render(std::size_t maxEntries) const {
  std::ostringstream out;
  std::size_t shown = 0;
  for (const auto& entry : entries_) {
    if (shown++ >= maxEntries) {
      out << "  ... (" << entries_.size() - maxEntries << " more)\n";
      break;
    }
    out << "  step " << entry.step << " [round " << entry.round << "] p" << entry.p;
    if (static_cast<int>(entry.layer) == routingLayer_) {
      out << " RFix(d=" << entry.dest << ")";
    } else {
      out << " " << ruleName(entry.layer, entry.rule);
      out << "(d=" << entry.dest;
      if (entry.rule == kR3Forward) out << ", s=" << entry.aux;
      out << ")";
    }
    out << "\n";
  }
  return out.str();
}

std::vector<std::vector<ScriptedDaemon::Selection>> scriptFromTrace(
    const std::vector<TraceEntry>& entries) {
  std::vector<std::vector<ScriptedDaemon::Selection>> script;
  std::uint64_t currentStep = 0;
  for (const auto& entry : entries) {
    // Entries are stamped with the post-commit step count, so the first
    // step's actions carry step == 1.
    if (script.empty() || entry.step != currentStep) {
      script.emplace_back();
      currentStep = entry.step;
    }
    script.back().push_back({entry.p, entry.rule, entry.dest});
  }
  return script;
}

namespace {

std::string describeBuffer(const Buffer& b) {
  if (!b.has_value()) return "-";
  std::ostringstream out;
  out << "(" << b->payload << ",p" << b->lastHop << ",c" << b->color << ")"
      << (b->valid ? "" : "!");
  return out.str();
}

}  // namespace

std::string renderConfiguration(const SsmfpProtocol& protocol, NodeId d) {
  std::ostringstream out;
  out << "destination " << d << ":\n";
  for (NodeId p = 0; p < protocol.graph().size(); ++p) {
    out << "  p" << p << ": bufR=" << describeBuffer(protocol.bufR(p, d))
        << "  bufE=" << describeBuffer(protocol.bufE(p, d)) << "\n";
  }
  return out.str();
}

std::string renderOccupiedConfiguration(const SsmfpProtocol& protocol) {
  std::ostringstream out;
  for (const NodeId d : protocol.destinations()) {
    bool occupied = false;
    for (NodeId p = 0; p < protocol.graph().size() && !occupied; ++p) {
      occupied = protocol.bufR(p, d).has_value() || protocol.bufE(p, d).has_value();
    }
    if (occupied) out << renderConfiguration(protocol, d);
  }
  const std::string text = out.str();
  return text.empty() ? "(all buffers empty)\n" : text;
}

}  // namespace snapfwd
