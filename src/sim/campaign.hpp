#pragma once
// Adversarial scenario campaign: named scenarios combining dynamic topology
// churn (faults/topology.hpp), mid-run corruption schedules and streaming
// invariant checking (checker/streaming.hpp) into pass/fail cells.
//
// A campaign is a table of scenarios, each carrying an EXPECTATION. The
// positive cells assert the paper's claim (snap-stabilizing forwarding
// survives churn and mid-run corruption with zero unexplained deliveries);
// the negative cells assert that the claim's ASSUMPTIONS are necessary, the
// way FrozenRouting already ablates the routing assumption:
//
//   kClean    - the run drains: every valid message delivered exactly once,
//               invalid deliveries within budget, no invariant violation.
//   kWedge    - the run deadlocks: the engine goes terminal with messages
//               still buffered. The CNS buffer-sufficiency cells live here:
//               a configuration saturating a buffer-graph cycle with
//               mimicking garbage wedges (insufficient buffers), and the
//               scenario PASSES by wedging.
//   kLivelock - the step budget is exhausted with messages still in flight:
//               enough buffers to keep moving, but (frozen, cyclic) routing
//               never lets them arrive.
//   kViolation- the streaming checker reports a safety violation. Only
//               deliberately weakened protocols (guard-mutation hooks) are
//               expected here; an unweakened protocol reaching this outcome
//               is a finding.
//
// A cell whose outcome differs from its expectation is UNEXPECTED; the
// campaign as a whole passes iff no cell is unexpected and at least one
// expected-failure (non-kClean) cell actually fired - guarding against the
// vacuous pass where the negative scenarios silently stopped exercising
// anything.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "checker/streaming.hpp"
#include "faults/topology.hpp"
#include "fwd/forwarding.hpp"
#include "graph/graph.hpp"
#include "routing/frozen.hpp"
#include "routing/selfstab_bfs.hpp"
#include "sim/runner.hpp"
#include "util/names.hpp"

namespace snapfwd {

enum class CampaignOutcome : std::uint8_t {
  kClean,
  kWedge,
  kLivelock,
  kViolation,
};

template <>
struct EnumNames<CampaignOutcome> {
  static constexpr auto entries = std::to_array<NamedEnum<CampaignOutcome>>({
      {CampaignOutcome::kClean, "clean"},
      {CampaignOutcome::kWedge, "wedge"},
      {CampaignOutcome::kLivelock, "livelock"},
      {CampaignOutcome::kViolation, "violation"},
  });
};

/// The live objects of a scenario run, handed to the prepare hook after the
/// stack is built and corrupted but before the streaming checker attaches.
/// Exactly one of `selfstab` / `frozen` is non-null, matching the
/// scenario's routing substrate.
struct CampaignStack {
  Graph& graph;
  SelfStabBfsRouting* selfstab;
  FrozenRouting* frozen;
  ForwardingProtocol& forwarding;
  Rng& rng;
};

struct CampaignScenario {
  std::string name;

  /// Topology, family, daemon, seed, traffic, step budget, build-time
  /// corruption and the mid-run corruption schedule all come from here
  /// (the same vocabulary as runForwardingExperiment).
  ExperimentConfig config;

  /// Mid-run link/node churn, applied between atomic steps.
  TopologySchedule topology;

  /// Run over FrozenRouting instead of the self-stabilizing layer (the
  /// routing-assumption ablation; the routing layer then has no rules and
  /// is not an engine layer). config.corruption.routingFraction corrupts
  /// the frozen tables.
  bool frozenRouting = false;

  CampaignOutcome expect = CampaignOutcome::kClean;

  StreamingCheckerOptions checker;

  /// Runs after build+corruption+traffic, before the checker attaches:
  /// seed CNS garbage, craft routing-table traps, plant guard mutations.
  std::function<void(CampaignStack&)> prepare;
};

struct CampaignCellResult {
  std::string name;
  CampaignOutcome expect = CampaignOutcome::kClean;
  CampaignOutcome outcome = CampaignOutcome::kClean;
  bool asExpected = false;

  std::uint64_t steps = 0;
  bool terminal = false;
  bool drained = false;
  std::size_t occupiedAtEnd = 0;
  std::size_t topologyEventsApplied = 0;
  std::size_t corruptionEventsFired = 0;
  std::size_t invalidInjected = 0;

  // Streaming-checker counters (cumulative over the run).
  std::uint64_t validDeliveries = 0;
  std::uint64_t invalidDeliveries = 0;
  std::uint64_t amnestiedDeliveries = 0;
  std::optional<std::string> violation;

  [[nodiscard]] std::string describe() const;
};

struct CampaignReport {
  std::vector<CampaignCellResult> cells;

  /// Cells whose outcome differs from their expectation.
  [[nodiscard]] std::size_t unexpected() const;
  /// Expected-failure cells (expect != kClean) that actually fired.
  [[nodiscard]] std::size_t expectedFailuresFired() const;
  /// Zero unexpected cells AND at least one expected failure fired.
  [[nodiscard]] bool passed() const;
};

[[nodiscard]] CampaignCellResult runCampaignScenario(
    const CampaignScenario& scenario);

[[nodiscard]] CampaignReport runCampaign(
    const std::vector<CampaignScenario>& scenarios);

/// One JSONL line per cell plus a final summary line.
void writeCampaignReport(const CampaignReport& report, std::ostream& out);

/// The built-in scenario table (both families): link-churn soaks, mid-run
/// corruption recoveries, the CNS buffer-sufficiency wedge/flip pairs, the
/// frozen-routing trap trio (wedge / livelock / self-stab resolution) and
/// one deliberately guard-weakened violation cell. `steps` scales the soak
/// budgets (smoke: 1e5; nightly: 1e7+).
[[nodiscard]] std::vector<CampaignScenario> builtinCampaign(std::uint64_t steps);

}  // namespace snapfwd
