#include "sim/sweep.hpp"

#include <thread>

#include "stats/table.hpp"
#include "util/thread_pool.hpp"

namespace snapfwd {

std::size_t resolveThreadCount(std::size_t threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::vector<ExperimentResult> runExperiments(const std::vector<ExperimentJob>& jobs,
                                             std::size_t threads) {
  std::vector<ExperimentResult> results(jobs.size());
  ThreadPool pool(resolveThreadCount(threads));
  // One chunk per job: runs vary wildly in length (corrupted starts run to
  // stabilization, clean ones quit early), so the pool's dynamic chunk
  // queue load-balances better than static ranges. Each chunk writes only
  // its own slot; order is restored by indexing, not by scheduling.
  pool.parallelFor(jobs.size(), [&](std::size_t i) {
    results[i] = jobs[i].baseline ? runBaselineExperiment(jobs[i].config)
                                  : runForwardingExperiment(jobs[i].config);
  });
  return results;
}

SweepResult aggregateRuns(std::vector<ExperimentResult> runs) {
  SweepResult result;
  for (const ExperimentResult& run : runs) {
    if (!run.quiescent) {
      ++result.nonQuiescent;
    } else if (run.spec.satisfiesSp()) {
      ++result.satisfiedSp;
    }
    if (!run.spec.satisfiesSp()) ++result.violatedSp;

    result.rounds.add(static_cast<double>(run.rounds));
    result.steps.add(static_cast<double>(run.steps));
    result.avgDeliveryRounds.add(run.avgDeliveryRounds);
    result.maxDeliveryRounds.add(static_cast<double>(run.maxDeliveryRounds));
    result.amortizedRoundsPerDelivery.add(run.amortizedRoundsPerDelivery);
    result.routingSilentRound.add(static_cast<double>(run.routingSilentRound));
    result.invalidDelivered.add(static_cast<double>(run.invalidDelivered));
    result.guardEvals.add(static_cast<double>(run.scan.guardEvals));
    result.guardEvalsSaved.add(static_cast<double>(run.scan.guardEvalsSaved));
    result.avgDirtySize.add(run.scan.avgDirtySize());
  }
  result.runs = std::move(runs);
  return result;
}

SweepResult runSweep(const ExperimentConfig& cfg, const SweepOptions& options) {
  std::vector<ExperimentJob> jobs;
  jobs.reserve(options.seedCount);
  for (std::size_t i = 0; i < options.seedCount; ++i) {
    const std::uint64_t seed = options.firstSeed + i;
    ExperimentJob job{cfg, options.baseline};
    job.config.seed = seed;
    if (options.mutate) options.mutate(job.config, seed);
    jobs.push_back(std::move(job));
  }
  return aggregateRuns(runExperiments(jobs, options.threads));
}

SweepResult runSweep(
    ExperimentConfig cfg, std::uint64_t firstSeed, std::size_t seedCount,
    bool baseline,
    const std::function<void(ExperimentConfig&, std::uint64_t seed)>& mutate) {
  SweepOptions options;
  options.firstSeed = firstSeed;
  options.seedCount = seedCount;
  options.threads = 1;
  options.baseline = baseline;
  options.mutate = mutate;
  return runSweep(cfg, options);
}

std::vector<std::string> sweepRowCells(const SweepResult& result) {
  return {
      Table::num(std::uint64_t{result.runs.size()}),
      Table::num(std::uint64_t{result.satisfiedSp}) + "/" +
          Table::num(std::uint64_t{result.runs.size()}),
      Table::num(std::uint64_t{result.nonQuiescent}),
      Table::num(result.rounds.mean(), 1),
      Table::num(result.avgDeliveryRounds.mean(), 1) + " +/- " +
          Table::num(result.avgDeliveryRounds.stddev(), 1),
      Table::num(result.amortizedRoundsPerDelivery.mean(), 2),
  };
}

std::vector<std::string> sweepRowHeader() {
  return {"runs", "SP", "non-quiescent", "rounds", "avg latency", "amortized"};
}

}  // namespace snapfwd
