#include "sim/sweep.hpp"

#include "stats/table.hpp"

namespace snapfwd {

SweepResult runSweep(
    ExperimentConfig cfg, std::uint64_t firstSeed, std::size_t seedCount,
    bool baseline,
    const std::function<void(ExperimentConfig&, std::uint64_t seed)>& mutate) {
  SweepResult result;
  result.runs.reserve(seedCount);
  for (std::size_t i = 0; i < seedCount; ++i) {
    const std::uint64_t seed = firstSeed + i;
    ExperimentConfig runCfg = cfg;
    runCfg.seed = seed;
    if (mutate) mutate(runCfg, seed);
    ExperimentResult run =
        baseline ? runBaselineExperiment(runCfg) : runSsmfpExperiment(runCfg);

    if (!run.quiescent) {
      ++result.nonQuiescent;
    } else if (run.spec.satisfiesSp()) {
      ++result.satisfiedSp;
    }
    if (!run.spec.satisfiesSp()) ++result.violatedSp;

    result.rounds.add(static_cast<double>(run.rounds));
    result.steps.add(static_cast<double>(run.steps));
    result.avgDeliveryRounds.add(run.avgDeliveryRounds);
    result.maxDeliveryRounds.add(static_cast<double>(run.maxDeliveryRounds));
    result.amortizedRoundsPerDelivery.add(run.amortizedRoundsPerDelivery);
    result.routingSilentRound.add(static_cast<double>(run.routingSilentRound));
    result.invalidDelivered.add(static_cast<double>(run.invalidDelivered));
    result.runs.push_back(std::move(run));
  }
  return result;
}

std::vector<std::string> sweepRowCells(const SweepResult& result) {
  return {
      Table::num(std::uint64_t{result.runs.size()}),
      Table::num(std::uint64_t{result.satisfiedSp}) + "/" +
          Table::num(std::uint64_t{result.runs.size()}),
      Table::num(result.rounds.mean(), 1),
      Table::num(result.avgDeliveryRounds.mean(), 1) + " +/- " +
          Table::num(result.avgDeliveryRounds.stddev(), 1),
      Table::num(result.amortizedRoundsPerDelivery.mean(), 2),
  };
}

}  // namespace snapfwd
