#pragma once
// `snapfwd_cli explore` - bounded exhaustive state-space closure of a model
// instance (src/explore/) with violation reporting, counterexample
// shrinking and JSONL emission. See args.hpp for the flag surface.

#include <iosfwd>

#include "cli/args.hpp"

namespace snapfwd::cli {

/// Exit code: 0 = clean closure (check `exhausted` in the output for
/// whether it is a proof), 1 = violation found, 2 = usage error.
int runExploreCommand(const CliOptions& options, std::ostream& out,
                      std::ostream& err);

}  // namespace snapfwd::cli
