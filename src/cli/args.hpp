#pragma once
// Command-line front end for the experiment runner: parses `--key=value`
// flags into an ExperimentConfig so any scenario from the test and bench
// suites can be reproduced from a shell (see apps/snapfwd_cli).
//
// Kept in the library (rather than in the binary) so the parser itself is
// unit-tested.

#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "sim/runner.hpp"

namespace snapfwd::cli {

/// --protocol: a forwarding family member (runs over the self-stabilizing
/// routing layer) or the non-stabilizing Merlin-Schweitzer baseline.
enum class ProtocolChoice { kSsmfp, kSsmfp2, kBaseline };
enum class OutputFormat { kText, kCsv };

/// `snapfwd_cli [--flags]` runs one experiment; `snapfwd_cli sweep
/// [--flags]` runs a multi-seed parallel sweep and can emit JSONL;
/// `snapfwd_cli audit [--flags]` replays the experiment matrix with access
/// auditing enabled (requires a -DSNAPFWD_AUDIT=ON build); `snapfwd_cli
/// explore [--flags]` exhaustively closes a model instance's state space
/// under a daemon class (src/explore/); `snapfwd_cli campaign [--flags]`
/// runs the built-in adversarial scenario campaign (src/sim/campaign.hpp).
enum class Command { kRun, kSweep, kAudit, kExplore, kCampaign };

struct CliOptions {
  ExperimentConfig config;
  Command command = Command::kRun;
  ProtocolChoice protocol = ProtocolChoice::kSsmfp;
  OutputFormat format = OutputFormat::kText;
  bool showHelp = false;

  // Sweep/audit subcommands (config.seed is the first seed of the range):
  std::size_t sweepSeeds = 10;   // --seeds
  std::size_t sweepThreads = 0;  // --threads (0 = all hardware threads)
  std::string jsonlOut;          // --jsonl=<path> ("-" = stdout)

  // Campaign subcommand: soak-budget scale for the built-in scenario table
  // (accepts scientific notation: --steps=1e5 smoke, 1e7 nightly).
  std::uint64_t campaignSteps = 100'000;  // --steps

  // Explore subcommand (values validated at parse time; resolved against
  // src/explore/ in runExploreCommand):
  std::string exploreModel = "ssmfp";      // --model=<family>|pif
  std::string exploreClosure = "central";  // --daemon-closure=central|...
  std::string exploreStartSet;             // --start-set (default per model)
  std::uint64_t exploreDepth = 0;          // --depth (0 = unbounded)
  std::uint64_t exploreMaxStates = 1'000'000;  // --max-states
  std::size_t exploreMaxChoices = 256;         // --max-choices per state
  std::string exploreCodec = "text";           // --codec=text|binary
  std::string exploreReduction = "none";       // --reduction=none|symmetry|por|both
  std::string exploreStore = "ram";            // --store=ram|spill
  std::string exploreSpillDir;                 // --spill-dir (default $TMPDIR)
  std::uint64_t exploreMemBudget = 0;          // --mem-budget bytes (0 = off)
  bool exploreCompress = false;                // --compress-states
  bool exploreAllowTruncation = false;         // --allow-truncation
  std::uint64_t explorePairStride = 0;         // --pair-stride (ring-scale)
  std::uint64_t exploreTripleStride = 0;       // --triple-stride (ring-scale)
  bool exploreOrbitClose = false;              // --orbit-close (ring-scale)

  // Tooling (SSMFP stack only):
  std::string snapshotOut;  // write the initial configuration to this file
  std::string snapshotIn;   // load the initial configuration from this file
  bool trace = false;       // print the action trace after the run
  bool render = false;      // print initial/final configuration renderings

  // Engine execution (valid for every subcommand; runCli installs them as
  // scoped process-wide EngineOptions defaults, so every engine the
  // invocation builds - run, sweep workers, audit matrix, explorer -
  // inherits the selection):
  std::optional<ScanMode> scanMode;  // --scanmode=full|incremental
  std::optional<ExecMode> execMode;  // --exec=virtual|kernel
};

struct ParseResult {
  std::optional<CliOptions> options;  // nullopt on error
  std::string error;                  // non-empty on error
};

/// Parses argv[1..argc). An optional leading subcommand word ("sweep",
/// "audit", "explore") selects the command; everything else is a
/// `--key=value` flag. All flags live in one table (args.cpp) carrying
/// their per-subcommand applicability, value parser and help text; the
/// usage() output is generated from the same table, so the parser and
/// --help cannot drift apart. Run `snapfwd_cli --help` for the flag list.
[[nodiscard]] ParseResult parseArgs(int argc, const char* const* argv);

/// The usage text printed by --help (generated from the flag table).
[[nodiscard]] std::string usage();

/// Renders an ExperimentResult in the requested format.
[[nodiscard]] std::string renderResult(const CliOptions& options,
                                       const ExperimentResult& result);

/// Full CLI orchestration: builds (or loads) the stack, applies the
/// tooling flags, runs, prints to `out`. Returns the process exit code
/// (0 = SP satisfied and quiescent, 1 = violation/stuck, 2 = usage/IO
/// error). Factored out of main() for testability.
int runCli(const CliOptions& options, std::ostream& out, std::ostream& err);

}  // namespace snapfwd::cli
