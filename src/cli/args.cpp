#include "cli/args.hpp"

#include <fstream>
#include <optional>

#include "cli/audit.hpp"
#include "cli/explore.hpp"
#include "explore/explore.hpp"

#include "sim/experiment_json.hpp"
#include "sim/snapshot.hpp"
#include "sim/sweep.hpp"
#include "sim/trace.hpp"

#include <charconv>
#include <sstream>

#include "stats/table.hpp"

namespace snapfwd::cli {
namespace {

struct Flag {
  std::string key;
  std::string value;
  bool hasValue = false;
};

std::optional<Flag> splitFlag(const std::string& arg) {
  if (arg.rfind("--", 0) != 0) return std::nullopt;
  Flag flag;
  const auto eq = arg.find('=');
  if (eq == std::string::npos) {
    flag.key = arg.substr(2);
  } else {
    flag.key = arg.substr(2, eq - 2);
    flag.value = arg.substr(eq + 1);
    flag.hasValue = true;
  }
  return flag;
}

template <typename T>
bool parseNumber(const std::string& text, T& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parseDouble(const std::string& text, double& out) {
  try {
    std::size_t consumed = 0;
    out = std::stod(text, &consumed);
    return consumed == text.size();
  } catch (...) {
    return false;
  }
}

ParseResult fail(const std::string& message) {
  return {std::nullopt, message + " (try --help)"};
}

}  // namespace

ParseResult parseArgs(int argc, const char* const* argv) {
  CliOptions options;
  int first = 1;
  if (argc > 1 && std::string(argv[1]) == "sweep") {
    options.command = Command::kSweep;
    first = 2;
  } else if (argc > 1 && std::string(argv[1]) == "audit") {
    options.command = Command::kAudit;
    first = 2;
  } else if (argc > 1 && std::string(argv[1]) == "explore") {
    options.command = Command::kExplore;
    first = 2;
  }
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto flag = splitFlag(arg);
    if (!flag.has_value()) return fail("unrecognized argument '" + arg + "'");
    const auto& [key, value, hasValue] = *flag;

    auto needValue = [&]() -> bool { return hasValue && !value.empty(); };

    if (key == "help") {
      options.showHelp = true;
    } else if (key == "topology") {
      if (!needValue()) return fail("--topology needs a value");
      const auto kind = parseEnum<TopologyKind>(value);
      if (!kind) return fail("unknown topology '" + value + "'");
      options.config.topo.kind = *kind;
    } else if (key == "daemon") {
      if (!needValue()) return fail("--daemon needs a value");
      const auto kind = parseEnum<DaemonKind>(value);
      if (!kind) return fail("unknown daemon '" + value + "'");
      options.config.daemon = *kind;
    } else if (key == "traffic") {
      if (!needValue()) return fail("--traffic needs a value");
      const auto kind = parseEnum<TrafficKind>(value);
      if (!kind) return fail("unknown traffic '" + value + "'");
      options.config.traffic = *kind;
    } else if (key == "policy") {
      if (!needValue()) return fail("--policy needs a value");
      const auto policy = parseEnum<ChoicePolicy>(value);
      if (!policy) return fail("unknown policy '" + value + "'");
      options.config.choicePolicy = *policy;
    } else if (key == "seeds") {
      if (options.command == Command::kRun) {
        return fail("--seeds is a sweep/audit flag (snapfwd_cli sweep ...)");
      }
      if (!needValue() || !parseNumber(value, options.sweepSeeds) ||
          options.sweepSeeds == 0) {
        return fail("--seeds needs a positive integer");
      }
    } else if (key == "threads") {
      if (options.command != Command::kSweep &&
          options.command != Command::kExplore) {
        return fail("--threads is a sweep/explore flag");
      }
      if (!needValue() || !parseNumber(value, options.sweepThreads)) {
        return fail("--threads needs an integer (0 = all hardware threads)");
      }
    } else if (key == "jsonl") {
      if (options.command == Command::kRun) {
        return fail("--jsonl is a sweep/audit flag (snapfwd_cli sweep ...)");
      }
      if (!needValue()) return fail("--jsonl needs a file path (or '-')");
      options.jsonlOut = value;
    } else if (key == "model") {
      if (options.command != Command::kExplore) {
        return fail("--model is an explore flag (snapfwd_cli explore ...)");
      }
      if (!needValue() || (value != "ssmfp" && value != "pif")) {
        return fail("--model needs ssmfp or pif");
      }
      options.exploreModel = value;
    } else if (key == "daemon-closure") {
      if (options.command != Command::kExplore) {
        return fail("--daemon-closure is an explore flag");
      }
      if (!needValue() ||
          !parseEnum<explore::DaemonClosure>(value).has_value()) {
        return fail("--daemon-closure needs one of " +
                    enumNameList<explore::DaemonClosure>());
      }
      options.exploreClosure = value;
    } else if (key == "start-set") {
      if (options.command != Command::kExplore) {
        return fail("--start-set is an explore flag");
      }
      if (!needValue()) return fail("--start-set needs a value");
      options.exploreStartSet = value;
    } else if (key == "codec") {
      if (options.command != Command::kExplore) {
        return fail("--codec is an explore flag");
      }
      if (!needValue() || !parseEnum<explore::StateCodec>(value).has_value()) {
        return fail("--codec needs one of " +
                    enumNameList<explore::StateCodec>());
      }
      options.exploreCodec = value;
    } else if (key == "depth") {
      if (options.command != Command::kExplore) {
        return fail("--depth is an explore flag");
      }
      if (!needValue() || !parseNumber(value, options.exploreDepth)) {
        return fail("--depth needs an integer (0 = unbounded)");
      }
    } else if (key == "max-states") {
      if (options.command != Command::kExplore) {
        return fail("--max-states is an explore flag");
      }
      if (!needValue() || !parseNumber(value, options.exploreMaxStates) ||
          options.exploreMaxStates == 0) {
        return fail("--max-states needs a positive integer");
      }
    } else if (key == "max-choices") {
      if (options.command != Command::kExplore) {
        return fail("--max-choices is an explore flag");
      }
      if (!needValue() || !parseNumber(value, options.exploreMaxChoices) ||
          options.exploreMaxChoices == 0) {
        return fail("--max-choices needs a positive integer");
      }
    } else if (key == "protocol") {
      if (value == "ssmfp") {
        options.protocol = ProtocolChoice::kSsmfp;
      } else if (value == "baseline") {
        options.protocol = ProtocolChoice::kBaseline;
      } else {
        return fail("unknown protocol '" + value + "'");
      }
    } else if (key == "n") {
      if (!needValue() || !parseNumber(value, options.config.topo.n)) {
        return fail("--n needs an integer");
      }
    } else if (key == "rows") {
      if (!needValue() || !parseNumber(value, options.config.topo.rows)) {
        return fail("--rows needs an integer");
      }
    } else if (key == "cols") {
      if (!needValue() || !parseNumber(value, options.config.topo.cols)) {
        return fail("--cols needs an integer");
      }
    } else if (key == "dims") {
      if (!needValue() || !parseNumber(value, options.config.topo.dims)) {
        return fail("--dims needs an integer");
      }
    } else if (key == "extra-edges") {
      if (!needValue() || !parseNumber(value, options.config.topo.extraEdges)) {
        return fail("--extra-edges needs an integer");
      }
    } else if (key == "seed") {
      if (!needValue() || !parseNumber(value, options.config.seed)) {
        return fail("--seed needs an integer");
      }
    } else if (key == "messages") {
      if (!needValue() || !parseNumber(value, options.config.messageCount)) {
        return fail("--messages needs an integer");
      }
    } else if (key == "per-source") {
      if (!needValue() || !parseNumber(value, options.config.perSource)) {
        return fail("--per-source needs an integer");
      }
    } else if (key == "hotspot") {
      if (!needValue() || !parseNumber(value, options.config.hotspot)) {
        return fail("--hotspot needs an integer");
      }
    } else if (key == "payload-space") {
      if (!needValue() || !parseNumber(value, options.config.payloadSpace)) {
        return fail("--payload-space needs an integer");
      }
    } else if (key == "max-steps") {
      if (!needValue() || !parseNumber(value, options.config.maxSteps)) {
        return fail("--max-steps needs an integer");
      }
    } else if (key == "corrupt-routing") {
      if (!needValue() ||
          !parseDouble(value, options.config.corruption.routingFraction)) {
        return fail("--corrupt-routing needs a number in [0,1]");
      }
    } else if (key == "invalid-messages") {
      if (!needValue() ||
          !parseNumber(value, options.config.corruption.invalidMessages)) {
        return fail("--invalid-messages needs an integer");
      }
    } else if (key == "daemon-probability") {
      if (!needValue() ||
          !parseDouble(value, options.config.daemonProbability)) {
        return fail("--daemon-probability needs a number in (0,1]");
      }
    } else if (key == "scramble-queues") {
      options.config.corruption.scrambleQueues = true;
    } else if (key == "check-invariants") {
      options.config.checkInvariantsEveryStep = true;
    } else if (key == "csv") {
      options.format = OutputFormat::kCsv;
    } else if (key == "snapshot-out") {
      if (!needValue()) return fail("--snapshot-out needs a file path");
      options.snapshotOut = value;
    } else if (key == "snapshot-in") {
      if (!needValue()) return fail("--snapshot-in needs a file path");
      options.snapshotIn = value;
    } else if (key == "trace") {
      options.trace = true;
    } else if (key == "render") {
      options.render = true;
    } else {
      return fail("unknown flag '--" + key + "'");
    }
  }
  return {options, ""};
}

std::string usage() {
  std::ostringstream out;
  out << "snapfwd_cli - run one SSMFP/baseline experiment and report SP\n\n"
      << "usage: snapfwd_cli [--flag=value ...]\n"
      << "       snapfwd_cli sweep [--flag=value ...]   multi-seed sweep\n"
      << "       snapfwd_cli audit [--flag=value ...]   access-audit replay\n"
      << "       snapfwd_cli explore [--flag=value ...] exhaustive state-space "
         "closure\n\n"
      << "  --topology=" << enumNameList<TopologyKind>() << "\n"
      << "             (default ring)\n"
      << "  --n=<k> --rows=<k> --cols=<k> --dims=<k> --extra-edges=<k>\n"
      << "  --daemon=" << enumNameList<DaemonKind>() << "\n"
      << "  --daemon-probability=<p>\n"
      << "  --traffic=" << enumNameList<TrafficKind>() << "\n"
      << "  --messages=<k> --per-source=<k> --hotspot=<id> --payload-space=<k>\n"
      << "  --corrupt-routing=<fraction> --invalid-messages=<k> "
         "--scramble-queues\n"
      << "  --policy=" << enumNameList<ChoicePolicy>() << "\n"
      << "  --protocol=ssmfp|baseline --seed=<u64> --max-steps=<u64>\n"
      << "  --check-invariants --csv --help\n"
      << "  --snapshot-out=<file>  write the initial configuration (ssmfp)\n"
      << "  --snapshot-in=<file>   load the initial configuration (ssmfp)\n"
      << "  --trace                print the action trace after the run\n"
      << "  --render               print initial/final configurations\n\n"
      << "sweep flags (seed range starts at --seed):\n"
      << "  --seeds=<k>            seeds to run (default 10)\n"
      << "  --threads=<k>          worker threads, 0 = all hardware (default)\n"
      << "  --jsonl=<file|->       write manifest + per-run + aggregate JSONL\n\n"
      << "explore flags (bounded explicit-state model checking, src/explore/):\n"
      << "  --model=ssmfp|pif      the protocol stack to close (default ssmfp)\n"
      << "  --daemon-closure=" << enumNameList<explore::DaemonClosure>() << "\n"
      << "                         (default central)\n"
      << "  --start-set=<name>     ssmfp: figure2-corruptions (default, every\n"
      << "                         single-variable corruption of the paper's\n"
      << "                         Figure 2 instance) | figure2-clean;\n"
      << "                         pif: scramble (default, all 3^n states)\n"
      << "  --depth=<k>            BFS depth bound (0 = unbounded)\n"
      << "  --max-states=<k>       visited-set bound (default 1000000)\n"
      << "  --max-choices=<k>      per-state move bound (default 256)\n"
      << "  --codec=" << enumNameList<explore::StateCodec>()
      << "      state store: canonical text (default) or the\n"
         "                         compact binary codec + delta stepping\n"
      << "  --threads=<k>          frontier workers, 0 = all hardware\n"
      << "  --jsonl=<file|->       explore-stats / explore-violation records\n"
      << "Exits 0 = clean closure, 1 = violation found (counterexample is\n"
      << "shrunk and its schedule printed), 2 = usage error.\n\n"
      << "audit: replays the topology x daemon x corruption matrix (all\n"
      << "protocols) with access auditing on, reporting every guard-locality,\n"
      << "stage-purity or write-set violation. Honors --seeds and --jsonl.\n"
      << "Exits 0 = clean, 1 = violations, 2 = binary not built with\n"
      << "-DSNAPFWD_AUDIT=ON.\n\n"
      << "examples:\n"
      << "  snapfwd_cli --topology=random-connected --n=12 "
         "--corrupt-routing=1 \\\n"
      << "              --invalid-messages=10 --scramble-queues "
         "--messages=30\n"
      << "  snapfwd_cli sweep --topology=ring --n=8 --seeds=100 "
         "--threads=0 \\\n"
      << "              --jsonl=ring.jsonl\n";
  return out.str();
}

std::string renderResult(const CliOptions& options, const ExperimentResult& r) {
  Table table("snapfwd experiment", {"metric", "value"});
  table.addRow({"protocol",
                options.protocol == ProtocolChoice::kSsmfp ? "ssmfp" : "baseline"});
  table.addRow({"topology", options.config.topo.label()});
  table.addRow({"n", Table::num(std::uint64_t{r.graphN})});
  table.addRow({"Delta", Table::num(std::uint64_t{r.graphDelta})});
  table.addRow({"D", Table::num(std::uint64_t{r.graphDiameter})});
  table.addRow({"daemon", toString(options.config.daemon)});
  table.addRow({"choice policy", toString(options.config.choicePolicy)});
  table.addRow({"seed", Table::num(options.config.seed)});
  table.addRow({"quiescent", Table::yesNo(r.quiescent)});
  table.addRow({"steps", Table::num(r.steps)});
  table.addRow({"rounds", Table::num(r.rounds)});
  table.addRow({"routing corrupted at start", Table::yesNo(r.routingCorrupted)});
  table.addRow({"R_A (rounds)", Table::num(r.routingSilentRound)});
  table.addRow({"valid generated", Table::num(r.spec.validGenerated)});
  table.addRow({"valid delivered", Table::num(r.spec.validDelivered)});
  table.addRow({"lost", Table::num(r.spec.lostTraces)});
  table.addRow({"duplicated", Table::num(r.spec.duplicatedTraces)});
  table.addRow({"invalid delivered", Table::num(r.invalidDelivered)});
  table.addRow({"max delivery rounds", Table::num(r.maxDeliveryRounds)});
  table.addRow({"avg delivery rounds", Table::num(r.avgDeliveryRounds, 2)});
  table.addRow({"amortized rounds/delivery",
                Table::num(r.amortizedRoundsPerDelivery, 2)});
  table.addRow({"SP satisfied", Table::yesNo(r.spec.satisfiesSp())});
  table.addRow({"SP' satisfied", Table::yesNo(r.spec.satisfiesSpPrime())});
  if (r.invariantViolation.has_value()) {
    table.addRow({"invariant violation", *r.invariantViolation});
  }
  std::ostringstream out;
  if (options.format == OutputFormat::kCsv) {
    table.printCsv(out);
  } else {
    table.printMarkdown(out);
  }
  return out.str();
}

namespace {

int runSweepCommand(const CliOptions& options, std::ostream& out,
                    std::ostream& err) {
  SweepOptions sweepOptions;
  sweepOptions.firstSeed = options.config.seed;
  sweepOptions.seedCount = options.sweepSeeds;
  sweepOptions.threads = options.sweepThreads;
  sweepOptions.baseline = options.protocol == ProtocolChoice::kBaseline;
  const SweepResult result = runSweep(options.config, sweepOptions);

  std::vector<std::string> columns = sweepRowHeader();
  columns.insert(columns.begin(), "config");
  Table table("snapfwd sweep, seeds [" + std::to_string(sweepOptions.firstSeed) +
                  ", " +
                  std::to_string(sweepOptions.firstSeed + sweepOptions.seedCount) +
                  "), " + std::to_string(resolveThreadCount(sweepOptions.threads)) +
                  " threads",
              std::move(columns));
  std::vector<std::string> cells = sweepRowCells(result);
  cells.insert(cells.begin(), options.config.topo.label() + " " +
                                  toString(options.config.daemon));
  table.addRow(std::move(cells));
  std::ostringstream rendered;
  if (options.format == OutputFormat::kCsv) {
    table.printCsv(rendered);
  } else {
    table.printMarkdown(rendered);
  }
  out << rendered.str();

  if (!options.jsonlOut.empty()) {
    RunManifest manifest;
    manifest.experiment = "snapfwd_cli sweep";
    manifest.firstSeed = sweepOptions.firstSeed;
    manifest.seedCount = sweepOptions.seedCount;
    manifest.threads = resolveThreadCount(sweepOptions.threads);
    manifest.baseline = sweepOptions.baseline;
    if (options.jsonlOut == "-") {
      writeSweepJsonl(out, manifest, options.config, result);
    } else {
      std::ofstream file(options.jsonlOut);
      if (!file) {
        err << "error: cannot write '" << options.jsonlOut << "'\n";
        return 2;
      }
      writeSweepJsonl(file, manifest, options.config, result);
      out << "jsonl written to " << options.jsonlOut << " ("
          << result.runs.size() + 2 << " lines)\n";
    }
  }
  return result.allSp() ? 0 : 1;
}

}  // namespace

int runCli(const CliOptions& options, std::ostream& out, std::ostream& err) {
  if (options.showHelp) {
    out << usage();
    return 0;
  }
  const bool tooling = !options.snapshotOut.empty() ||
                       !options.snapshotIn.empty() || options.trace ||
                       options.render;
  if (options.command == Command::kSweep) {
    if (tooling) {
      err << "error: snapshot/trace/render flags do not apply to sweep\n";
      return 2;
    }
    return runSweepCommand(options, out, err);
  }
  if (options.command == Command::kAudit) {
    if (tooling) {
      err << "error: snapshot/trace/render flags do not apply to audit\n";
      return 2;
    }
    return runAuditCommand(options, out, err);
  }
  if (options.command == Command::kExplore) {
    if (tooling) {
      err << "error: snapshot/trace/render flags do not apply to explore\n";
      return 2;
    }
    return runExploreCommand(options, out, err);
  }
  if (options.protocol == ProtocolChoice::kBaseline) {
    if (tooling) {
      err << "error: snapshot/trace/render flags support --protocol=ssmfp "
             "only\n";
      return 2;
    }
    const ExperimentResult result = runBaselineExperiment(options.config);
    out << renderResult(options, result);
    return result.spec.satisfiesSp() && result.quiescent ? 0 : 1;
  }
  if (!tooling) {
    const ExperimentResult result = runSsmfpExperiment(options.config);
    out << renderResult(options, result);
    return result.spec.satisfiesSp() && result.quiescent ? 0 : 1;
  }

  // Tooling path: live stack.
  SsmfpStack stack;
  RestoredStack restored;
  if (!options.snapshotIn.empty()) {
    std::ifstream in(options.snapshotIn);
    if (!in) {
      err << "error: cannot read '" << options.snapshotIn << "'\n";
      return 2;
    }
    try {
      restored = readSnapshot(in);
    } catch (const std::exception& e) {
      err << "error: " << e.what() << "\n";
      return 2;
    }
    stack.graph = std::move(restored.graph);
    stack.routing = std::move(restored.routing);
    stack.forwarding = std::move(restored.forwarding);
    // Advance the seed stream exactly as buildSsmfpStack does (topology,
    // fault and traffic forks), so --snapshot-in with the same --seed
    // reproduces the archived run's daemon schedule bit for bit.
    stack.rng = Rng(options.config.seed);
    (void)stack.rng.fork(0x7070);
    (void)stack.rng.fork(0xFA17);
    (void)stack.rng.fork(0x7AFF);
  } else {
    stack = buildSsmfpStack(options.config);
  }
  if (!options.snapshotOut.empty()) {
    std::ofstream snapOut(options.snapshotOut);
    if (!snapOut) {
      err << "error: cannot write '" << options.snapshotOut << "'\n";
      return 2;
    }
    writeSnapshot(snapOut, *stack.graph, *stack.routing, *stack.forwarding);
    out << "initial configuration written to " << options.snapshotOut << "\n";
  }
  if (options.render) {
    out << "--- initial configuration ---\n"
        << renderOccupiedConfiguration(*stack.forwarding);
  }

  auto daemon =
      makeDaemon(options.config.daemon, options.config.daemonProbability,
                 stack.rng);
  Engine engine(*stack.graph, {stack.routing.get(), stack.forwarding.get()},
                *daemon);
  stack.forwarding->attachEngine(&engine);
  std::optional<ExecutionTracer> tracer;
  if (options.trace) tracer.emplace(engine, /*routingLayer=*/0);
  engine.run(options.config.maxSteps);

  ExperimentResult result;
  result.quiescent = engine.isTerminal();
  result.steps = engine.stepCount();
  result.rounds = engine.roundCount();
  result.actions = engine.actionCount();
  result.graphN = stack.graph->size();
  result.graphDelta = stack.graph->maxDegree();
  result.graphDiameter = stack.graph->diameter();
  result.invalidInjected = stack.invalidInjected;
  result.spec = checkSpec(*stack.forwarding);
  result.invalidDelivered = stack.forwarding->invalidDeliveryCount();
  for (const auto& rec : stack.forwarding->deliveries()) {
    if (rec.msg.valid) {
      result.maxDeliveryRounds =
          std::max(result.maxDeliveryRounds, rec.round - rec.msg.bornRound);
    }
  }

  if (options.render) {
    out << "--- final configuration ---\n"
        << renderOccupiedConfiguration(*stack.forwarding);
  }
  out << renderResult(options, result);
  if (options.trace && tracer.has_value()) {
    out << "--- action trace (first 200) ---\n" << tracer->render(200);
  }
  return result.spec.satisfiesSp() && result.quiescent ? 0 : 1;
}

}  // namespace snapfwd::cli
