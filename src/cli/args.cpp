#include "cli/args.hpp"

#include <fstream>
#include <optional>

#include "sim/snapshot.hpp"
#include "sim/trace.hpp"

#include <charconv>
#include <sstream>

#include "stats/table.hpp"

namespace snapfwd::cli {
namespace {

struct Flag {
  std::string key;
  std::string value;
  bool hasValue = false;
};

std::optional<Flag> splitFlag(const std::string& arg) {
  if (arg.rfind("--", 0) != 0) return std::nullopt;
  Flag flag;
  const auto eq = arg.find('=');
  if (eq == std::string::npos) {
    flag.key = arg.substr(2);
  } else {
    flag.key = arg.substr(2, eq - 2);
    flag.value = arg.substr(eq + 1);
    flag.hasValue = true;
  }
  return flag;
}

template <typename T>
bool parseNumber(const std::string& text, T& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parseDouble(const std::string& text, double& out) {
  try {
    std::size_t consumed = 0;
    out = std::stod(text, &consumed);
    return consumed == text.size();
  } catch (...) {
    return false;
  }
}

std::optional<TopologyKind> topologyFromName(const std::string& name) {
  if (name == "path") return TopologyKind::kPath;
  if (name == "ring") return TopologyKind::kRing;
  if (name == "star") return TopologyKind::kStar;
  if (name == "complete") return TopologyKind::kComplete;
  if (name == "binary-tree") return TopologyKind::kBinaryTree;
  if (name == "random-tree") return TopologyKind::kRandomTree;
  if (name == "grid") return TopologyKind::kGrid;
  if (name == "torus") return TopologyKind::kTorus;
  if (name == "hypercube") return TopologyKind::kHypercube;
  if (name == "random-connected") return TopologyKind::kRandomConnected;
  if (name == "figure3") return TopologyKind::kFigure3;
  return std::nullopt;
}

std::optional<DaemonKind> daemonFromName(const std::string& name) {
  if (name == "synchronous") return DaemonKind::kSynchronous;
  if (name == "central-rr") return DaemonKind::kCentralRoundRobin;
  if (name == "central-random") return DaemonKind::kCentralRandom;
  if (name == "distributed-random") return DaemonKind::kDistributedRandom;
  if (name == "weakly-fair") return DaemonKind::kWeaklyFair;
  if (name == "adversarial") return DaemonKind::kAdversarial;
  return std::nullopt;
}

std::optional<TrafficKind> trafficFromName(const std::string& name) {
  if (name == "none") return TrafficKind::kNone;
  if (name == "uniform") return TrafficKind::kUniform;
  if (name == "all-to-one") return TrafficKind::kAllToOne;
  if (name == "permutation") return TrafficKind::kPermutation;
  if (name == "antipodal") return TrafficKind::kAntipodal;
  return std::nullopt;
}

std::optional<ChoicePolicy> policyFromName(const std::string& name) {
  if (name == "round-robin") return ChoicePolicy::kRoundRobin;
  if (name == "fixed-priority") return ChoicePolicy::kFixedPriority;
  if (name == "oldest-first") return ChoicePolicy::kOldestFirst;
  return std::nullopt;
}

ParseResult fail(const std::string& message) {
  return {std::nullopt, message + " (try --help)"};
}

}  // namespace

ParseResult parseArgs(int argc, const char* const* argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto flag = splitFlag(arg);
    if (!flag.has_value()) return fail("unrecognized argument '" + arg + "'");
    const auto& [key, value, hasValue] = *flag;

    auto needValue = [&]() -> bool { return hasValue && !value.empty(); };

    if (key == "help") {
      options.showHelp = true;
    } else if (key == "topology") {
      if (!needValue()) return fail("--topology needs a value");
      const auto kind = topologyFromName(value);
      if (!kind) return fail("unknown topology '" + value + "'");
      options.config.topology = *kind;
    } else if (key == "daemon") {
      if (!needValue()) return fail("--daemon needs a value");
      const auto kind = daemonFromName(value);
      if (!kind) return fail("unknown daemon '" + value + "'");
      options.config.daemon = *kind;
    } else if (key == "traffic") {
      if (!needValue()) return fail("--traffic needs a value");
      const auto kind = trafficFromName(value);
      if (!kind) return fail("unknown traffic '" + value + "'");
      options.config.traffic = *kind;
    } else if (key == "policy") {
      if (!needValue()) return fail("--policy needs a value");
      const auto policy = policyFromName(value);
      if (!policy) return fail("unknown policy '" + value + "'");
      options.config.choicePolicy = *policy;
    } else if (key == "protocol") {
      if (value == "ssmfp") {
        options.protocol = ProtocolChoice::kSsmfp;
      } else if (value == "baseline") {
        options.protocol = ProtocolChoice::kBaseline;
      } else {
        return fail("unknown protocol '" + value + "'");
      }
    } else if (key == "n") {
      if (!needValue() || !parseNumber(value, options.config.n)) {
        return fail("--n needs an integer");
      }
    } else if (key == "rows") {
      if (!needValue() || !parseNumber(value, options.config.rows)) {
        return fail("--rows needs an integer");
      }
    } else if (key == "cols") {
      if (!needValue() || !parseNumber(value, options.config.cols)) {
        return fail("--cols needs an integer");
      }
    } else if (key == "dims") {
      if (!needValue() || !parseNumber(value, options.config.dims)) {
        return fail("--dims needs an integer");
      }
    } else if (key == "extra-edges") {
      if (!needValue() || !parseNumber(value, options.config.extraEdges)) {
        return fail("--extra-edges needs an integer");
      }
    } else if (key == "seed") {
      if (!needValue() || !parseNumber(value, options.config.seed)) {
        return fail("--seed needs an integer");
      }
    } else if (key == "messages") {
      if (!needValue() || !parseNumber(value, options.config.messageCount)) {
        return fail("--messages needs an integer");
      }
    } else if (key == "per-source") {
      if (!needValue() || !parseNumber(value, options.config.perSource)) {
        return fail("--per-source needs an integer");
      }
    } else if (key == "hotspot") {
      if (!needValue() || !parseNumber(value, options.config.hotspot)) {
        return fail("--hotspot needs an integer");
      }
    } else if (key == "payload-space") {
      if (!needValue() || !parseNumber(value, options.config.payloadSpace)) {
        return fail("--payload-space needs an integer");
      }
    } else if (key == "max-steps") {
      if (!needValue() || !parseNumber(value, options.config.maxSteps)) {
        return fail("--max-steps needs an integer");
      }
    } else if (key == "corrupt-routing") {
      if (!needValue() ||
          !parseDouble(value, options.config.corruption.routingFraction)) {
        return fail("--corrupt-routing needs a number in [0,1]");
      }
    } else if (key == "invalid-messages") {
      if (!needValue() ||
          !parseNumber(value, options.config.corruption.invalidMessages)) {
        return fail("--invalid-messages needs an integer");
      }
    } else if (key == "daemon-probability") {
      if (!needValue() ||
          !parseDouble(value, options.config.daemonProbability)) {
        return fail("--daemon-probability needs a number in (0,1]");
      }
    } else if (key == "scramble-queues") {
      options.config.corruption.scrambleQueues = true;
    } else if (key == "check-invariants") {
      options.config.checkInvariantsEveryStep = true;
    } else if (key == "csv") {
      options.format = OutputFormat::kCsv;
    } else if (key == "snapshot-out") {
      if (!needValue()) return fail("--snapshot-out needs a file path");
      options.snapshotOut = value;
    } else if (key == "snapshot-in") {
      if (!needValue()) return fail("--snapshot-in needs a file path");
      options.snapshotIn = value;
    } else if (key == "trace") {
      options.trace = true;
    } else if (key == "render") {
      options.render = true;
    } else {
      return fail("unknown flag '--" + key + "'");
    }
  }
  return {options, ""};
}

std::string usage() {
  std::ostringstream out;
  out << "snapfwd_cli - run one SSMFP/baseline experiment and report SP\n\n"
      << "usage: snapfwd_cli [--flag=value ...]\n\n"
      << "  --topology=path|ring|star|complete|binary-tree|random-tree|grid|\n"
      << "             torus|hypercube|random-connected|figure3   (default ring)\n"
      << "  --n=<k> --rows=<k> --cols=<k> --dims=<k> --extra-edges=<k>\n"
      << "  --daemon=synchronous|central-rr|central-random|\n"
      << "           distributed-random|weakly-fair|adversarial\n"
      << "  --daemon-probability=<p>\n"
      << "  --traffic=none|uniform|all-to-one|permutation|antipodal\n"
      << "  --messages=<k> --per-source=<k> --hotspot=<id> --payload-space=<k>\n"
      << "  --corrupt-routing=<fraction> --invalid-messages=<k> "
         "--scramble-queues\n"
      << "  --policy=round-robin|fixed-priority|oldest-first\n"
      << "  --protocol=ssmfp|baseline --seed=<u64> --max-steps=<u64>\n"
      << "  --check-invariants --csv --help\n"
      << "  --snapshot-out=<file>  write the initial configuration (ssmfp)\n"
      << "  --snapshot-in=<file>   load the initial configuration (ssmfp)\n"
      << "  --trace                print the action trace after the run\n"
      << "  --render               print initial/final configurations\n\n"
      << "example:\n"
      << "  snapfwd_cli --topology=random-connected --n=12 "
         "--corrupt-routing=1 \\\n"
      << "              --invalid-messages=10 --scramble-queues "
         "--messages=30\n";
  return out.str();
}

std::string renderResult(const CliOptions& options, const ExperimentResult& r) {
  Table table("snapfwd experiment", {"metric", "value"});
  table.addRow({"protocol",
                options.protocol == ProtocolChoice::kSsmfp ? "ssmfp" : "baseline"});
  table.addRow({"topology", toString(options.config.topology)});
  table.addRow({"n", Table::num(std::uint64_t{r.graphN})});
  table.addRow({"Delta", Table::num(std::uint64_t{r.graphDelta})});
  table.addRow({"D", Table::num(std::uint64_t{r.graphDiameter})});
  table.addRow({"daemon", toString(options.config.daemon)});
  table.addRow({"choice policy", toString(options.config.choicePolicy)});
  table.addRow({"seed", Table::num(options.config.seed)});
  table.addRow({"quiescent", Table::yesNo(r.quiescent)});
  table.addRow({"steps", Table::num(r.steps)});
  table.addRow({"rounds", Table::num(r.rounds)});
  table.addRow({"routing corrupted at start", Table::yesNo(r.routingCorrupted)});
  table.addRow({"R_A (rounds)", Table::num(r.routingSilentRound)});
  table.addRow({"valid generated", Table::num(r.spec.validGenerated)});
  table.addRow({"valid delivered", Table::num(r.spec.validDelivered)});
  table.addRow({"lost", Table::num(r.spec.lostTraces)});
  table.addRow({"duplicated", Table::num(r.spec.duplicatedTraces)});
  table.addRow({"invalid delivered", Table::num(r.invalidDelivered)});
  table.addRow({"max delivery rounds", Table::num(r.maxDeliveryRounds)});
  table.addRow({"avg delivery rounds", Table::num(r.avgDeliveryRounds, 2)});
  table.addRow({"amortized rounds/delivery",
                Table::num(r.amortizedRoundsPerDelivery, 2)});
  table.addRow({"SP satisfied", Table::yesNo(r.spec.satisfiesSp())});
  table.addRow({"SP' satisfied", Table::yesNo(r.spec.satisfiesSpPrime())});
  if (r.invariantViolation.has_value()) {
    table.addRow({"invariant violation", *r.invariantViolation});
  }
  std::ostringstream out;
  if (options.format == OutputFormat::kCsv) {
    table.printCsv(out);
  } else {
    table.printMarkdown(out);
  }
  return out.str();
}

int runCli(const CliOptions& options, std::ostream& out, std::ostream& err) {
  if (options.showHelp) {
    out << usage();
    return 0;
  }
  const bool tooling = !options.snapshotOut.empty() ||
                       !options.snapshotIn.empty() || options.trace ||
                       options.render;
  if (options.protocol == ProtocolChoice::kBaseline) {
    if (tooling) {
      err << "error: snapshot/trace/render flags support --protocol=ssmfp "
             "only\n";
      return 2;
    }
    const ExperimentResult result = runBaselineExperiment(options.config);
    out << renderResult(options, result);
    return result.spec.satisfiesSp() && result.quiescent ? 0 : 1;
  }
  if (!tooling) {
    const ExperimentResult result = runSsmfpExperiment(options.config);
    out << renderResult(options, result);
    return result.spec.satisfiesSp() && result.quiescent ? 0 : 1;
  }

  // Tooling path: live stack.
  SsmfpStack stack;
  RestoredStack restored;
  if (!options.snapshotIn.empty()) {
    std::ifstream in(options.snapshotIn);
    if (!in) {
      err << "error: cannot read '" << options.snapshotIn << "'\n";
      return 2;
    }
    try {
      restored = readSnapshot(in);
    } catch (const std::exception& e) {
      err << "error: " << e.what() << "\n";
      return 2;
    }
    stack.graph = std::move(restored.graph);
    stack.routing = std::move(restored.routing);
    stack.forwarding = std::move(restored.forwarding);
    // Advance the seed stream exactly as buildSsmfpStack does (topology,
    // fault and traffic forks), so --snapshot-in with the same --seed
    // reproduces the archived run's daemon schedule bit for bit.
    stack.rng = Rng(options.config.seed);
    (void)stack.rng.fork(0x7070);
    (void)stack.rng.fork(0xFA17);
    (void)stack.rng.fork(0x7AFF);
  } else {
    stack = buildSsmfpStack(options.config);
  }
  if (!options.snapshotOut.empty()) {
    std::ofstream snapOut(options.snapshotOut);
    if (!snapOut) {
      err << "error: cannot write '" << options.snapshotOut << "'\n";
      return 2;
    }
    writeSnapshot(snapOut, *stack.graph, *stack.routing, *stack.forwarding);
    out << "initial configuration written to " << options.snapshotOut << "\n";
  }
  if (options.render) {
    out << "--- initial configuration ---\n"
        << renderOccupiedConfiguration(*stack.forwarding);
  }

  auto daemon =
      makeDaemon(options.config.daemon, options.config.daemonProbability,
                 stack.rng);
  Engine engine(*stack.graph, {stack.routing.get(), stack.forwarding.get()},
                *daemon);
  stack.forwarding->attachEngine(&engine);
  std::optional<ExecutionTracer> tracer;
  if (options.trace) tracer.emplace(engine, /*routingLayer=*/0);
  engine.run(options.config.maxSteps);

  ExperimentResult result;
  result.quiescent = engine.isTerminal();
  result.steps = engine.stepCount();
  result.rounds = engine.roundCount();
  result.actions = engine.actionCount();
  result.graphN = stack.graph->size();
  result.graphDelta = stack.graph->maxDegree();
  result.graphDiameter = stack.graph->diameter();
  result.invalidInjected = stack.invalidInjected;
  result.spec = checkSpec(*stack.forwarding);
  result.invalidDelivered = stack.forwarding->invalidDeliveryCount();
  for (const auto& rec : stack.forwarding->deliveries()) {
    if (rec.msg.valid) {
      result.maxDeliveryRounds =
          std::max(result.maxDeliveryRounds, rec.round - rec.msg.bornRound);
    }
  }

  if (options.render) {
    out << "--- final configuration ---\n"
        << renderOccupiedConfiguration(*stack.forwarding);
  }
  out << renderResult(options, result);
  if (options.trace && tracer.has_value()) {
    out << "--- action trace (first 200) ---\n" << tracer->render(200);
  }
  return result.spec.satisfiesSp() && result.quiescent ? 0 : 1;
}

}  // namespace snapfwd::cli
