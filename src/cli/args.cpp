#include "cli/args.hpp"

#include <fstream>
#include <optional>

#include "cli/audit.hpp"
#include "cli/campaign.hpp"
#include "cli/explore.hpp"
#include "explore/explore.hpp"
#include "fwd/forwarding.hpp"

#include "sim/experiment_json.hpp"
#include "sim/snapshot.hpp"
#include "sim/sweep.hpp"
#include "sim/trace.hpp"

#include <charconv>
#include <sstream>

#include "stats/table.hpp"

namespace snapfwd::cli {
namespace {

struct Flag {
  std::string key;
  std::string value;
  bool hasValue = false;
};

std::optional<Flag> splitFlag(const std::string& arg) {
  if (arg.rfind("--", 0) != 0) return std::nullopt;
  Flag flag;
  const auto eq = arg.find('=');
  if (eq == std::string::npos) {
    flag.key = arg.substr(2);
  } else {
    flag.key = arg.substr(2, eq - 2);
    flag.value = arg.substr(eq + 1);
    flag.hasValue = true;
  }
  return flag;
}

template <typename T>
bool parseNumber(const std::string& text, T& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parseDouble(const std::string& text, double& out) {
  try {
    std::size_t consumed = 0;
    out = std::stod(text, &consumed);
    return consumed == text.size();
  } catch (...) {
    return false;
  }
}

ParseResult fail(const std::string& message) {
  return {std::nullopt, message + " (try --help)"};
}

// -- Flag table ---------------------------------------------------------------
//
// Every flag is one row: its per-subcommand applicability, value parser and
// help text live together, and both parseArgs() and usage() walk the same
// table, so the parser and --help cannot drift apart.

constexpr unsigned kRunBit = 1u << static_cast<unsigned>(Command::kRun);
constexpr unsigned kSweepBit = 1u << static_cast<unsigned>(Command::kSweep);
constexpr unsigned kAuditBit = 1u << static_cast<unsigned>(Command::kAudit);
constexpr unsigned kExploreBit = 1u << static_cast<unsigned>(Command::kExplore);
constexpr unsigned kCampaignBit = 1u << static_cast<unsigned>(Command::kCampaign);
// Campaign runs a fixed scenario table, so the experiment-setup flags do not
// apply to it; only --steps, --jsonl, the engine flags and --help do.
constexpr unsigned kAllBits = kRunBit | kSweepBit | kAuditBit | kExploreBit;

[[nodiscard]] unsigned commandBit(Command c) {
  return 1u << static_cast<unsigned>(c);
}

/// usage() section a flag is listed under (rendered in this order).
enum Section : int {
  kSecExperiment = 0,
  kSecEngine,
  kSecTooling,
  kSecSweep,
  kSecExplore,
  kSecCampaign,
  kSectionCount,
};

using ApplyFn = std::optional<std::string> (*)(CliOptions&, const std::string&);
using HintFn = std::string (*)();

struct FlagSpec {
  const char* name;      // without the leading "--"
  unsigned commands;     // bitmask of commandBit() values where valid
  const char* scope;     // error tail when used with a command outside mask
  bool takesValue;       // value flags require `--name=value`, value non-empty
  const char* needMsg;   // "--name <needMsg>" when the value is missing/empty
  HintFn hint;           // value placeholder for --help (value flags only)
  const char* help;      // one-line description for --help
  int section;
  // Applies the (non-empty) value, or fires the effect of a value-less
  // flag. Returns the full error message on failure (fail() appends the
  // "(try --help)" suffix), nullopt on success.
  ApplyFn apply;
};

// Small hint helpers (capture-less lambdas convert to HintFn).
const HintFn kHintK = +[] { return std::string("<k>"); };
const HintFn kHintU64 = +[] { return std::string("<u64>"); };
const HintFn kHintFile = +[] { return std::string("<file>"); };

const FlagSpec kFlagTable[] = {
    // -- experiment setup -----------------------------------------------------
    {"topology", kAllBits, nullptr, true, "needs a value",
     +[] { return enumNameList<TopologyKind>(); },
     "network family (default ring)", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       const auto kind = parseEnum<TopologyKind>(v);
       if (!kind) return "unknown topology '" + v + "'";
       o.config.topo.kind = *kind;
       return std::nullopt;
     }},
    {"n", kAllBits, nullptr, true, "needs an integer", kHintK,
     "processor count (size-parameterized topologies)", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.config.topo.n)) return "--n needs an integer";
       return std::nullopt;
     }},
    {"rows", kAllBits, nullptr, true, "needs an integer", kHintK,
     "grid/torus rows", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.config.topo.rows)) return "--rows needs an integer";
       return std::nullopt;
     }},
    {"cols", kAllBits, nullptr, true, "needs an integer", kHintK,
     "grid/torus columns", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.config.topo.cols)) return "--cols needs an integer";
       return std::nullopt;
     }},
    {"dims", kAllBits, nullptr, true, "needs an integer", kHintK,
     "hypercube dimensions", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.config.topo.dims)) return "--dims needs an integer";
       return std::nullopt;
     }},
    {"extra-edges", kAllBits, nullptr, true, "needs an integer", kHintK,
     "random-connected: chords beyond the spanning tree", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.config.topo.extraEdges)) {
         return "--extra-edges needs an integer";
       }
       return std::nullopt;
     }},
    {"daemon", kAllBits, nullptr, true, "needs a value",
     +[] { return enumNameList<DaemonKind>(); },
     "scheduling adversary (default distributed-random)", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       const auto kind = parseEnum<DaemonKind>(v);
       if (!kind) return "unknown daemon '" + v + "'";
       o.config.daemon = *kind;
       return std::nullopt;
     }},
    {"daemon-probability", kAllBits, nullptr, true,
     "needs a number in (0,1]", +[] { return std::string("<p>"); },
     "per-processor activation probability", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseDouble(v, o.config.daemonProbability)) {
         return "--daemon-probability needs a number in (0,1]";
       }
       return std::nullopt;
     }},
    {"traffic", kAllBits, nullptr, true, "needs a value",
     +[] { return enumNameList<TrafficKind>(); },
     "request workload shape", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       const auto kind = parseEnum<TrafficKind>(v);
       if (!kind) return "unknown traffic '" + v + "'";
       o.config.traffic = *kind;
       return std::nullopt;
     }},
    {"messages", kAllBits, nullptr, true, "needs an integer", kHintK,
     "total messages to send", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.config.messageCount)) {
         return "--messages needs an integer";
       }
       return std::nullopt;
     }},
    {"per-source", kAllBits, nullptr, true, "needs an integer", kHintK,
     "messages per source (permutation/antipodal)", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.config.perSource)) {
         return "--per-source needs an integer";
       }
       return std::nullopt;
     }},
    {"hotspot", kAllBits, nullptr, true, "needs an integer",
     +[] { return std::string("<id>"); },
     "all-to-one sink processor", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.config.hotspot)) {
         return "--hotspot needs an integer";
       }
       return std::nullopt;
     }},
    {"payload-space", kAllBits, nullptr, true, "needs an integer", kHintK,
     "distinct payload values (duplicate detection stress)", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.config.payloadSpace)) {
         return "--payload-space needs an integer";
       }
       return std::nullopt;
     }},
    {"corrupt-routing", kAllBits, nullptr, true, "needs a number in [0,1]",
     +[] { return std::string("<fraction>"); },
     "randomize this fraction of routing entries at start", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseDouble(v, o.config.corruption.routingFraction)) {
         return "--corrupt-routing needs a number in [0,1]";
       }
       return std::nullopt;
     }},
    {"invalid-messages", kAllBits, nullptr, true, "needs an integer", kHintK,
     "invalid messages planted in buffers at start", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.config.corruption.invalidMessages)) {
         return "--invalid-messages needs an integer";
       }
       return std::nullopt;
     }},
    {"scramble-queues", kAllBits, nullptr, false, nullptr, nullptr,
     "shuffle every fairness queue at start", kSecExperiment,
     +[](CliOptions& o, const std::string&) -> std::optional<std::string> {
       o.config.corruption.scrambleQueues = true;
       return std::nullopt;
     }},
    {"policy", kAllBits, nullptr, true, "needs a value",
     +[] { return enumNameList<ChoicePolicy>(); },
     "choice_p(d) arbitration policy", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       const auto policy = parseEnum<ChoicePolicy>(v);
       if (!policy) return "unknown policy '" + v + "'";
       o.config.choicePolicy = *policy;
       return std::nullopt;
     }},
    {"protocol", kAllBits, nullptr, true, "needs a forwarding family or baseline",
     +[] { return enumNameList<ForwardingFamilyId>() + "|baseline"; },
     "protocol stack under test", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (const auto family = parseEnum<ForwardingFamilyId>(v)) {
         o.protocol = *family == ForwardingFamilyId::kSsmfp
                          ? ProtocolChoice::kSsmfp
                          : ProtocolChoice::kSsmfp2;
         o.config.family = *family;
       } else if (v == "baseline") {
         o.protocol = ProtocolChoice::kBaseline;
       } else {
         return "unknown protocol '" + v + "' (need one of " +
                enumNameList<ForwardingFamilyId>() + "|baseline)";
       }
       return std::nullopt;
     }},
    {"seed", kAllBits, nullptr, true, "needs an integer", kHintU64,
     "root RNG seed (sweep/audit: first seed of the range)", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.config.seed)) return "--seed needs an integer";
       return std::nullopt;
     }},
    {"max-steps", kAllBits, nullptr, true, "needs an integer", kHintU64,
     "step budget before declaring the run stuck", kSecExperiment,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.config.maxSteps)) {
         return "--max-steps needs an integer";
       }
       return std::nullopt;
     }},
    {"check-invariants", kAllBits, nullptr, false, nullptr, nullptr,
     "verify protocol invariants after every step", kSecExperiment,
     +[](CliOptions& o, const std::string&) -> std::optional<std::string> {
       o.config.checkInvariantsEveryStep = true;
       return std::nullopt;
     }},
    {"csv", kAllBits, nullptr, false, nullptr, nullptr,
     "emit CSV instead of a markdown table", kSecExperiment,
     +[](CliOptions& o, const std::string&) -> std::optional<std::string> {
       o.format = OutputFormat::kCsv;
       return std::nullopt;
     }},
    {"help", kAllBits | kCampaignBit, nullptr, false, nullptr, nullptr,
     "print this text", kSecExperiment,
     +[](CliOptions& o, const std::string&) -> std::optional<std::string> {
       o.showHelp = true;
       return std::nullopt;
     }},

    // -- engine selection -----------------------------------------------------
    {"scanmode", kAllBits | kCampaignBit, nullptr, true, "needs a value",
     +[] { return enumNameList<ScanMode>(); },
     "guard re-evaluation strategy for every engine built", kSecEngine,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       const auto mode = parseEnum<ScanMode>(v);
       if (!mode) {
         return "--scanmode needs one of " + enumNameList<ScanMode>();
       }
       o.scanMode = *mode;
       return std::nullopt;
     }},
    {"exec", kAllBits | kCampaignBit, nullptr, true, "needs a value",
     +[] { return enumNameList<ExecMode>(); },
     "guard execution path: virtual dispatch or batch kernels", kSecEngine,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       const auto mode = parseEnum<ExecMode>(v);
       if (!mode) return "--exec needs one of " + enumNameList<ExecMode>();
       o.execMode = *mode;
       return std::nullopt;
     }},

    // -- tooling (plain run, ssmfp only; rejected at dispatch otherwise) ------
    {"snapshot-out", kAllBits, nullptr, true, "needs a file path", kHintFile,
     "write the initial configuration (ssmfp)", kSecTooling,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       o.snapshotOut = v;
       return std::nullopt;
     }},
    {"snapshot-in", kAllBits, nullptr, true, "needs a file path", kHintFile,
     "load the initial configuration (ssmfp)", kSecTooling,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       o.snapshotIn = v;
       return std::nullopt;
     }},
    {"trace", kAllBits, nullptr, false, nullptr, nullptr,
     "print the action trace after the run", kSecTooling,
     +[](CliOptions& o, const std::string&) -> std::optional<std::string> {
       o.trace = true;
       return std::nullopt;
     }},
    {"render", kAllBits, nullptr, false, nullptr, nullptr,
     "print initial/final configurations", kSecTooling,
     +[](CliOptions& o, const std::string&) -> std::optional<std::string> {
       o.render = true;
       return std::nullopt;
     }},

    // -- sweep / audit --------------------------------------------------------
    {"seeds", kSweepBit | kAuditBit | kExploreBit,
     "is a sweep/audit flag (snapfwd_cli sweep ...)", true,
     "needs a positive integer", kHintK,
     "seeds to run (default 10)", kSecSweep,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.sweepSeeds) || o.sweepSeeds == 0) {
         return "--seeds needs a positive integer";
       }
       return std::nullopt;
     }},
    {"threads", kSweepBit | kExploreBit, "is a sweep/explore flag", true,
     "needs an integer (0 = all hardware threads)", kHintK,
     "worker threads, 0 = all hardware (default)", kSecSweep,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.sweepThreads)) {
         return "--threads needs an integer (0 = all hardware threads)";
       }
       return std::nullopt;
     }},
    {"jsonl", kSweepBit | kAuditBit | kExploreBit | kCampaignBit,
     "is a sweep/audit/campaign flag (snapfwd_cli sweep ...)", true,
     "needs a file path (or '-')", +[] { return std::string("<file|->"); },
     "write manifest + per-run + aggregate JSONL", kSecSweep,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       o.jsonlOut = v;
       return std::nullopt;
     }},

    // -- explore --------------------------------------------------------------
    {"model", kExploreBit, "is an explore flag (snapfwd_cli explore ...)",
     true, "needs a forwarding family or pif",
     +[] { return enumNameList<ForwardingFamilyId>() + "|pif"; },
     "the protocol stack to close (default ssmfp)", kSecExplore,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseEnum<ForwardingFamilyId>(v).has_value() && v != "pif") {
         return "--model needs one of " + enumNameList<ForwardingFamilyId>() +
                "|pif";
       }
       o.exploreModel = v;
       return std::nullopt;
     }},
    {"daemon-closure", kExploreBit, "is an explore flag", true,
     "needs a value",
     +[] { return enumNameList<explore::DaemonClosure>(); },
     "daemon class to close under (default central)", kSecExplore,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseEnum<explore::DaemonClosure>(v).has_value()) {
         return "--daemon-closure needs one of " +
                enumNameList<explore::DaemonClosure>();
       }
       o.exploreClosure = v;
       return std::nullopt;
     }},
    {"start-set", kExploreBit, "is an explore flag", true, "needs a value",
     +[] { return std::string("<name>"); },
     "initial states: forwarding families figure2-corruptions (default) | "
     "figure2-clean; pif scramble (default)",
     kSecExplore,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       o.exploreStartSet = v;
       return std::nullopt;
     }},
    {"depth", kExploreBit, "is an explore flag", true,
     "needs an integer (0 = unbounded)", kHintK,
     "BFS depth bound (0 = unbounded)", kSecExplore,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.exploreDepth)) {
         return "--depth needs an integer (0 = unbounded)";
       }
       return std::nullopt;
     }},
    {"max-states", kExploreBit, "is an explore flag", true,
     "needs a positive integer", kHintK,
     "visited-set bound (default 1000000)", kSecExplore,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.exploreMaxStates) || o.exploreMaxStates == 0) {
         return "--max-states needs a positive integer";
       }
       return std::nullopt;
     }},
    {"max-choices", kExploreBit, "is an explore flag", true,
     "needs a positive integer", kHintK,
     "per-state move bound (default 256)", kSecExplore,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.exploreMaxChoices) || o.exploreMaxChoices == 0) {
         return "--max-choices needs a positive integer";
       }
       return std::nullopt;
     }},
    {"codec", kExploreBit, "is an explore flag", true, "needs a value",
     +[] { return enumNameList<explore::StateCodec>(); },
     "state store: canonical text (default) or compact binary + "
     "delta stepping",
     kSecExplore,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseEnum<explore::StateCodec>(v).has_value()) {
         return "--codec needs one of " + enumNameList<explore::StateCodec>();
       }
       o.exploreCodec = v;
       return std::nullopt;
     }},
    {"reduction", kExploreBit, "is an explore flag", true, "needs a value",
     +[] { return enumNameList<explore::Reduction>(); },
     "state-space reduction: symmetry quotient, partial-order, or both "
     "(default none)",
     kSecExplore,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseEnum<explore::Reduction>(v).has_value()) {
         return "--reduction needs one of " +
                enumNameList<explore::Reduction>();
       }
       o.exploreReduction = v;
       return std::nullopt;
     }},
    {"store", kExploreBit, "is an explore flag", true, "needs a value",
     +[] { return enumNameList<explore::StoreKind>(); },
     "visited-set placement: ram (default) or mmap spill segments",
     kSecExplore,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseEnum<explore::StoreKind>(v).has_value()) {
         return "--store needs one of " + enumNameList<explore::StoreKind>();
       }
       o.exploreStore = v;
       return std::nullopt;
     }},
    {"spill-dir", kExploreBit, "is an explore flag", true, "needs a path",
     +[] { return std::string("<dir>"); },
     "directory for spill segments (default $TMPDIR, then /tmp)", kSecExplore,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       o.exploreSpillDir = v;
       return std::nullopt;
     }},
    {"mem-budget", kExploreBit, "is an explore flag", true,
     "needs a byte count (scientific notation ok: 2e9)",
     +[] { return std::string("<bytes|1eN>"); },
     "soft cap on resident visited-set bytes; exceeding it switches the "
     "store to spill instead of growing RSS (0 = off)",
     kSecExplore,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       double bytes = 0;
       if (!parseDouble(v, bytes) || bytes < 0 || bytes > 1e18) {
         return "--mem-budget needs a byte count (scientific notation ok: "
                "2e9)";
       }
       o.exploreMemBudget = static_cast<std::uint64_t>(bytes);
       return std::nullopt;
     }},
    {"compress-states", kExploreBit, "is an explore flag", false, nullptr,
     nullptr, "RLE-compress stored state bytes (dedup stays exact)",
     kSecExplore,
     +[](CliOptions& o, const std::string&) -> std::optional<std::string> {
       o.exploreCompress = true;
       return std::nullopt;
     }},
    {"allow-truncation", kExploreBit, "is an explore flag", false, nullptr,
     nullptr,
     "exit 0 even when move/state bounds truncated the closure (the "
     "default treats a truncated clean run as a failure)",
     kSecExplore,
     +[](CliOptions& o, const std::string&) -> std::optional<std::string> {
       o.exploreAllowTruncation = true;
       return std::nullopt;
     }},
    {"pair-stride", kExploreBit, "is an explore flag", true,
     "needs an integer (0 = singles only)", kHintK,
     "ring-scale start set: plant every k-th corruption pair (0 = off)",
     kSecExplore,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.explorePairStride)) {
         return "--pair-stride needs an integer (0 = singles only)";
       }
       return std::nullopt;
     }},
    {"triple-stride", kExploreBit, "is an explore flag", true,
     "needs an integer (0 = no triples)", kHintK,
     "ring-scale start set: plant every k-th corruption triple (0 = off)",
     kSecExplore,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       if (!parseNumber(v, o.exploreTripleStride)) {
         return "--triple-stride needs an integer (0 = no triples)";
       }
       return std::nullopt;
     }},
    {"orbit-close", kExploreBit, "is an explore flag", false, nullptr, nullptr,
     "ring-scale start set: close the starts under the ring's dihedral "
     "group (the symmetry quotient then folds ~2n concrete states per "
     "representative)",
     kSecExplore,
     +[](CliOptions& o, const std::string&) -> std::optional<std::string> {
       o.exploreOrbitClose = true;
       return std::nullopt;
     }},

    // -- campaign -------------------------------------------------------------
    {"steps", kCampaignBit, "is a campaign flag (snapfwd_cli campaign ...)",
     true, "needs a positive step count (scientific notation ok: 1e5)",
     +[] { return std::string("<steps|1eN>"); },
     "soak-budget scale for the scenario table (default 1e5)", kSecCampaign,
     +[](CliOptions& o, const std::string& v) -> std::optional<std::string> {
       double steps = 0;
       if (!parseDouble(v, steps) || steps < 1 || steps > 1e18) {
         return "--steps needs a positive step count (scientific notation "
                "ok: 1e5)";
       }
       o.campaignSteps = static_cast<std::uint64_t>(steps);
       return std::nullopt;
     }},
};

[[nodiscard]] const FlagSpec* findFlag(const std::string& key) {
  for (const FlagSpec& spec : kFlagTable) {
    if (key == spec.name) return &spec;
  }
  return nullptr;
}

}  // namespace

ParseResult parseArgs(int argc, const char* const* argv) {
  CliOptions options;
  int first = 1;
  if (argc > 1 && std::string(argv[1]) == "sweep") {
    options.command = Command::kSweep;
    first = 2;
  } else if (argc > 1 && std::string(argv[1]) == "audit") {
    options.command = Command::kAudit;
    first = 2;
  } else if (argc > 1 && std::string(argv[1]) == "explore") {
    options.command = Command::kExplore;
    first = 2;
  } else if (argc > 1 && std::string(argv[1]) == "campaign") {
    options.command = Command::kCampaign;
    first = 2;
  }
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto flag = splitFlag(arg);
    if (!flag.has_value()) return fail("unrecognized argument '" + arg + "'");
    const auto& [key, value, hasValue] = *flag;

    const FlagSpec* spec = findFlag(key);
    if (spec == nullptr) return fail("unknown flag '--" + key + "'");
    if ((spec->commands & commandBit(options.command)) == 0) {
      return fail("--" + key + " " + spec->scope);
    }
    if (spec->takesValue && (!hasValue || value.empty())) {
      return fail("--" + key + " " + spec->needMsg);
    }
    if (auto error = spec->apply(options, value); error.has_value()) {
      return fail(*error);
    }
  }
  return {options, ""};
}

std::string usage() {
  static constexpr const char* kSectionTitles[kSectionCount] = {
      "experiment flags:",
      "engine flags (every subcommand; env: SNAPFWD_SCAN_MODE, SNAPFWD_EXEC):",
      "tooling flags (plain run, --protocol=ssmfp only):",
      "sweep / audit flags (seed range starts at --seed):",
      "explore flags (bounded explicit-state model checking, src/explore/):",
      "campaign flags (built-in adversarial scenario table, "
      "src/sim/campaign.hpp):",
  };
  std::ostringstream out;
  out << "snapfwd_cli - run one SSMFP/baseline experiment and report SP\n\n"
      << "usage: snapfwd_cli [--flag=value ...]\n"
      << "       snapfwd_cli sweep [--flag=value ...]   multi-seed sweep\n"
      << "       snapfwd_cli audit [--flag=value ...]   access-audit replay\n"
      << "       snapfwd_cli explore [--flag=value ...] exhaustive state-space "
         "closure\n"
      << "       snapfwd_cli campaign [--flag=value ...] adversarial scenario "
         "campaign\n";
  for (int section = 0; section < kSectionCount; ++section) {
    out << "\n" << kSectionTitles[section] << "\n";
    for (const FlagSpec& spec : kFlagTable) {
      if (spec.section != section) continue;
      std::string lhs = "  --" + std::string(spec.name);
      if (spec.takesValue) lhs += "=" + spec.hint();
      if (lhs.size() < 26) {
        lhs.append(26 - lhs.size(), ' ');
        out << lhs << " " << spec.help << "\n";
      } else {
        // Long enum lists get the description on their own line.
        out << lhs << "\n" << std::string(27, ' ') << spec.help << "\n";
      }
    }
  }
  out << "\nexplore exits 0 = clean closure, 1 = violation found "
         "(counterexample is\n"
      << "shrunk and its schedule printed), 2 = usage error.\n\n"
      << "campaign: runs every built-in scenario (churn soaks, mid-run\n"
      << "corruption, CNS buffer-sufficiency wedges, frozen-routing traps,\n"
      << "one guard-weakened violation cell) and compares outcomes against\n"
      << "expectations. Exits 0 = passed (zero unexpected cells AND at least\n"
      << "one expected-failure cell fired), 1 = unexpected outcome or vacuous\n"
      << "pass, 2 = usage/IO error. Honors --jsonl for the per-cell report.\n\n"
      << "audit: replays the topology x daemon x corruption matrix (all\n"
      << "protocols) with access auditing on, reporting every guard-locality,\n"
      << "stage-purity or write-set violation. Honors --seeds and --jsonl.\n"
      << "Exits 0 = clean, 1 = violations, 2 = binary not built with\n"
      << "-DSNAPFWD_AUDIT=ON.\n\n"
      << "examples:\n"
      << "  snapfwd_cli --topology=random-connected --n=12 "
         "--corrupt-routing=1 \\\n"
      << "              --invalid-messages=10 --scramble-queues "
         "--messages=30\n"
      << "  snapfwd_cli sweep --topology=ring --n=8 --seeds=100 "
         "--threads=0 \\\n"
      << "              --jsonl=ring.jsonl\n"
      << "  snapfwd_cli sweep --exec=kernel --scanmode=incremental "
         "--seeds=20\n";
  return out.str();
}

std::string renderResult(const CliOptions& options, const ExperimentResult& r) {
  Table table("snapfwd experiment", {"metric", "value"});
  table.addRow({"protocol", options.protocol == ProtocolChoice::kBaseline
                                ? "baseline"
                                : toString(options.config.family)});
  table.addRow({"topology", options.config.topo.label()});
  table.addRow({"n", Table::num(std::uint64_t{r.graphN})});
  table.addRow({"Delta", Table::num(std::uint64_t{r.graphDelta})});
  table.addRow({"D", Table::num(std::uint64_t{r.graphDiameter})});
  table.addRow({"daemon", toString(options.config.daemon)});
  table.addRow({"choice policy", toString(options.config.choicePolicy)});
  table.addRow({"seed", Table::num(options.config.seed)});
  table.addRow({"quiescent", Table::yesNo(r.quiescent)});
  table.addRow({"steps", Table::num(r.steps)});
  table.addRow({"rounds", Table::num(r.rounds)});
  table.addRow({"routing corrupted at start", Table::yesNo(r.routingCorrupted)});
  table.addRow({"R_A (rounds)", Table::num(r.routingSilentRound)});
  table.addRow({"valid generated", Table::num(r.spec.validGenerated)});
  table.addRow({"valid delivered", Table::num(r.spec.validDelivered)});
  table.addRow({"lost", Table::num(r.spec.lostTraces)});
  table.addRow({"duplicated", Table::num(r.spec.duplicatedTraces)});
  table.addRow({"invalid delivered", Table::num(r.invalidDelivered)});
  table.addRow({"max delivery rounds", Table::num(r.maxDeliveryRounds)});
  table.addRow({"avg delivery rounds", Table::num(r.avgDeliveryRounds, 2)});
  table.addRow({"amortized rounds/delivery",
                Table::num(r.amortizedRoundsPerDelivery, 2)});
  table.addRow({"SP satisfied", Table::yesNo(r.spec.satisfiesSp())});
  table.addRow({"SP' satisfied", Table::yesNo(r.spec.satisfiesSpPrime())});
  if (r.invariantViolation.has_value()) {
    table.addRow({"invariant violation", *r.invariantViolation});
  }
  std::ostringstream out;
  if (options.format == OutputFormat::kCsv) {
    table.printCsv(out);
  } else {
    table.printMarkdown(out);
  }
  return out.str();
}

namespace {

int runSweepCommand(const CliOptions& options, std::ostream& out,
                    std::ostream& err) {
  SweepOptions sweepOptions;
  sweepOptions.firstSeed = options.config.seed;
  sweepOptions.seedCount = options.sweepSeeds;
  sweepOptions.threads = options.sweepThreads;
  sweepOptions.baseline = options.protocol == ProtocolChoice::kBaseline;
  const SweepResult result = runSweep(options.config, sweepOptions);

  std::vector<std::string> columns = sweepRowHeader();
  columns.insert(columns.begin(), "config");
  Table table("snapfwd sweep, seeds [" + std::to_string(sweepOptions.firstSeed) +
                  ", " +
                  std::to_string(sweepOptions.firstSeed + sweepOptions.seedCount) +
                  "), " + std::to_string(resolveThreadCount(sweepOptions.threads)) +
                  " threads",
              std::move(columns));
  std::vector<std::string> cells = sweepRowCells(result);
  cells.insert(cells.begin(), options.config.topo.label() + " " +
                                  toString(options.config.daemon));
  table.addRow(std::move(cells));
  std::ostringstream rendered;
  if (options.format == OutputFormat::kCsv) {
    table.printCsv(rendered);
  } else {
    table.printMarkdown(rendered);
  }
  out << rendered.str();

  if (!options.jsonlOut.empty()) {
    RunManifest manifest;
    manifest.experiment = "snapfwd_cli sweep";
    manifest.firstSeed = sweepOptions.firstSeed;
    manifest.seedCount = sweepOptions.seedCount;
    manifest.threads = resolveThreadCount(sweepOptions.threads);
    manifest.baseline = sweepOptions.baseline;
    if (options.jsonlOut == "-") {
      writeSweepJsonl(out, manifest, options.config, result);
    } else {
      std::ofstream file(options.jsonlOut);
      if (!file) {
        err << "error: cannot write '" << options.jsonlOut << "'\n";
        return 2;
      }
      writeSweepJsonl(file, manifest, options.config, result);
      out << "jsonl written to " << options.jsonlOut << " ("
          << result.runs.size() + 2 << " lines)\n";
    }
  }
  return result.allSp() ? 0 : 1;
}

}  // namespace

int runCli(const CliOptions& options, std::ostream& out, std::ostream& err) {
  if (options.showHelp) {
    out << usage();
    return 0;
  }
  // --scanmode / --exec apply to every engine the invocation builds (run,
  // sweep workers, audit matrix, explorer restarts): install them as scoped
  // process defaults layered on whatever defaults the embedder set.
  EngineOptions engineDefaults = EngineOptions::processDefaults();
  if (options.scanMode.has_value()) engineDefaults.scanMode = options.scanMode;
  if (options.execMode.has_value()) engineDefaults.execMode = options.execMode;
  const ScopedEngineDefaults scopedDefaults(engineDefaults);

  const bool tooling = !options.snapshotOut.empty() ||
                       !options.snapshotIn.empty() || options.trace ||
                       options.render;
  if (options.command == Command::kSweep) {
    if (tooling) {
      err << "error: snapshot/trace/render flags do not apply to sweep\n";
      return 2;
    }
    return runSweepCommand(options, out, err);
  }
  if (options.command == Command::kAudit) {
    if (tooling) {
      err << "error: snapshot/trace/render flags do not apply to audit\n";
      return 2;
    }
    return runAuditCommand(options, out, err);
  }
  if (options.command == Command::kExplore) {
    if (tooling) {
      err << "error: snapshot/trace/render flags do not apply to explore\n";
      return 2;
    }
    return runExploreCommand(options, out, err);
  }
  if (options.command == Command::kCampaign) {
    if (tooling) {
      err << "error: snapshot/trace/render flags do not apply to campaign\n";
      return 2;
    }
    return runCampaignCommand(options, out, err);
  }
  if (options.protocol != ProtocolChoice::kSsmfp) {
    if (tooling) {
      err << "error: snapshot/trace/render flags support --protocol=ssmfp "
             "only\n";
      return 2;
    }
    const ExperimentResult result = options.protocol == ProtocolChoice::kBaseline
                                        ? runBaselineExperiment(options.config)
                                        : runForwardingExperiment(options.config);
    out << renderResult(options, result);
    return result.spec.satisfiesSp() && result.quiescent ? 0 : 1;
  }
  if (!tooling) {
    const ExperimentResult result = runSsmfpExperiment(options.config);
    out << renderResult(options, result);
    return result.spec.satisfiesSp() && result.quiescent ? 0 : 1;
  }

  // Tooling path: live stack.
  SsmfpStack stack;
  RestoredStack restored;
  if (!options.snapshotIn.empty()) {
    std::ifstream in(options.snapshotIn);
    if (!in) {
      err << "error: cannot read '" << options.snapshotIn << "'\n";
      return 2;
    }
    try {
      restored = readSnapshot(in);
    } catch (const std::exception& e) {
      err << "error: " << e.what() << "\n";
      return 2;
    }
    stack.graph = std::move(restored.graph);
    stack.routing = std::move(restored.routing);
    stack.forwarding = std::move(restored.forwarding);
    // Advance the seed stream exactly as buildSsmfpStack does (topology,
    // fault and traffic forks), so --snapshot-in with the same --seed
    // reproduces the archived run's daemon schedule bit for bit.
    stack.rng = Rng(options.config.seed);
    (void)stack.rng.fork(0x7070);
    (void)stack.rng.fork(0xFA17);
    (void)stack.rng.fork(0x7AFF);
  } else {
    stack = buildSsmfpStack(options.config);
  }
  if (!options.snapshotOut.empty()) {
    std::ofstream snapOut(options.snapshotOut);
    if (!snapOut) {
      err << "error: cannot write '" << options.snapshotOut << "'\n";
      return 2;
    }
    writeSnapshot(snapOut, *stack.graph, *stack.routing, *stack.forwarding);
    out << "initial configuration written to " << options.snapshotOut << "\n";
  }
  if (options.render) {
    out << "--- initial configuration ---\n"
        << renderOccupiedConfiguration(*stack.forwarding);
  }

  auto daemon =
      makeDaemon(options.config.daemon, options.config.daemonProbability,
                 stack.rng);
  Engine engine(*stack.graph, {stack.routing.get(), stack.forwarding.get()},
                *daemon);
  stack.forwarding->attachEngine(&engine);
  std::optional<ExecutionTracer> tracer;
  if (options.trace) tracer.emplace(engine, /*routingLayer=*/0);
  engine.run(options.config.maxSteps);

  ExperimentResult result;
  result.quiescent = engine.isTerminal();
  result.steps = engine.stepCount();
  result.rounds = engine.roundCount();
  result.actions = engine.actionCount();
  result.graphN = stack.graph->size();
  result.graphDelta = stack.graph->maxDegree();
  result.graphDiameter = stack.graph->diameter();
  result.invalidInjected = stack.invalidInjected;
  result.spec = checkSpec(*stack.forwarding);
  result.invalidDelivered = stack.forwarding->invalidDeliveryCount();
  for (const auto& rec : stack.forwarding->deliveries()) {
    if (rec.msg.valid) {
      result.maxDeliveryRounds =
          std::max(result.maxDeliveryRounds, rec.round - rec.msg.bornRound);
    }
  }

  if (options.render) {
    out << "--- final configuration ---\n"
        << renderOccupiedConfiguration(*stack.forwarding);
  }
  out << renderResult(options, result);
  if (options.trace && tracer.has_value()) {
    out << "--- action trace (first 200) ---\n" << tracer->render(200);
  }
  return result.spec.satisfiesSp() && result.quiescent ? 0 : 1;
}

}  // namespace snapfwd::cli
