#pragma once
// `snapfwd_cli campaign`: runs the built-in adversarial scenario table
// (src/sim/campaign.hpp) at the --steps soak scale and renders the
// per-cell outcomes. Exit code 0 iff the campaign passed (no unexpected
// cells AND at least one expected-failure cell fired).

#include <iosfwd>

#include "cli/args.hpp"

namespace snapfwd::cli {

int runCampaignCommand(const CliOptions& options, std::ostream& out,
                       std::ostream& err);

}  // namespace snapfwd::cli
