#include "cli/audit.hpp"

#include <cstdint>
#include <fstream>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "baseline/orientation_forwarding.hpp"
#include "core/access_tracker.hpp"
#include "core/daemon.hpp"
#include "core/engine.hpp"
#include "graph/builders.hpp"
#include "mp/mp_ssmfp.hpp"
#include "pif/pif.hpp"
#include "sim/runner.hpp"
#include "sim/sweep_matrix.hpp"
#include "stats/jsonl.hpp"
#include "util/rng.hpp"

namespace snapfwd::cli {
namespace {

/// Collects per-run outcomes; violations go to `err` immediately (and to
/// JSONL when requested) so a failing CI log names the breach inline.
class AuditReport {
 public:
  AuditReport(std::ostream& err, jsonl::Writer* writer)
      : err_(err), writer_(writer) {}

  template <typename Body>
  void run(const std::string& label, std::uint64_t seed, Body&& body) {
    ++runs_;
    try {
      body();
    } catch (const AccessAuditError& e) {
      ++violatingRuns_;
      const AccessViolation& v = e.violation();
      err_ << "audit violation [" << label << " seed=" << seed
           << "]: " << v.describe() << "\n";
      if (writer_ != nullptr) {
        jsonl::Object o;
        o.field("event", "audit-violation")
            .field("cell", label)
            .field("seed", seed)
            .field("kind", toString(v.kind))
            .field("protocol", v.protocol)
            .field("rule", std::uint64_t{v.rule})
            .field("actor", std::uint64_t{v.actor})
            .field("variable-owner", std::uint64_t{v.variableOwner})
            .field("declared-radius", std::uint64_t{v.declaredRadius})
            .field("step", v.step);
        writer_->write(o);
      }
    }
  }

  [[nodiscard]] std::size_t runs() const { return runs_; }
  [[nodiscard]] std::size_t violatingRuns() const { return violatingRuns_; }

 private:
  std::ostream& err_;
  jsonl::Writer* writer_;
  std::size_t runs_ = 0;
  std::size_t violatingRuns_ = 0;
};

void auditMatrix(const CliOptions& options, AuditReport& report) {
  const std::vector<TopologySpec> topologies = {TopologySpec::ring(8),
                                                TopologySpec::grid(3, 3)};
  const std::vector<DaemonKind> daemons = {DaemonKind::kSynchronous,
                                           DaemonKind::kCentralRoundRobin,
                                           DaemonKind::kDistributedRandom};
  std::vector<NamedCorruption> corruptions(2);
  corruptions[0].label = "clean";
  corruptions[1].label = "corrupted";
  corruptions[1].plan.routingFraction = 1.0;
  corruptions[1].plan.invalidMessages = 8;
  corruptions[1].plan.scrambleQueues = true;

  for (const auto& topo : topologies) {
    for (const DaemonKind daemon : daemons) {
      for (const auto& corruption : corruptions) {
        ExperimentConfig cfg = options.config;
        cfg.topo = topo;
        cfg.daemon = daemon;
        cfg.corruption = corruption.plan;
        const std::string cell = topo.label() + " " +
                                 std::string(toString(daemon)) + " " +
                                 corruption.label;
        for (std::size_t i = 0; i < options.sweepSeeds; ++i) {
          cfg.seed = options.config.seed + i;
          for (const auto family :
               {ForwardingFamilyId::kSsmfp, ForwardingFamilyId::kSsmfp2}) {
            cfg.family = family;
            report.run(std::string(toString(family)) + " " + cell, cfg.seed,
                       [&] { (void)runForwardingExperiment(cfg); });
          }
          report.run("baseline " + cell, cfg.seed,
                     [&] { (void)runBaselineExperiment(cfg); });
        }
      }
    }
  }
}

void auditPif(std::uint64_t seed, AuditReport& report) {
  report.run("pif binary-tree-7", seed, [&] {
    const Graph g = topo::binaryTree(7);
    PifProtocol pif(g, /*root=*/0);
    Rng rng(seed);
    pif.scrambleStates(rng);
    pif.requestWave();
    DistributedRandomDaemon daemon(rng, 0.5);
    Engine engine(g, {&pif}, daemon);
    pif.attachEngine(&engine);
    engine.run(100000);
  });
}

void auditOrientationRing(std::uint64_t seed, AuditReport& report) {
  report.run("orientation ring-8-cw", seed, [&] {
    const Graph g = topo::ring(8);
    ClockwiseRingRouting routing(8);
    UnidirectionalRingScheme scheme(8);
    OrientationForwardingProtocol proto(g, routing, scheme);
    proto.send(0, 4, 11);
    proto.send(2, 7, 22);
    proto.send(5, 1, 33);
    Rng rng(seed);
    DistributedRandomDaemon daemon(rng, 0.5);
    Engine engine(g, {&proto}, daemon);
    proto.attachEngine(&engine);
    engine.run(100000);
  });
}

void auditOrientationTree(std::uint64_t seed, AuditReport& report) {
  report.run("orientation binary-tree-7", seed, [&] {
    const Graph g = topo::binaryTree(7);
    TreeUpDownScheme scheme(g, /*root=*/0);
    TreePathRouting routing(g, scheme);
    OrientationForwardingProtocol proto(g, routing, scheme);
    proto.send(3, 6, 44);
    proto.send(5, 4, 55);
    proto.send(0, 2, 66);
    Rng rng(seed);
    DistributedRandomDaemon daemon(rng, 0.5);
    Engine engine(g, {&proto}, daemon);
    proto.attachEngine(&engine);
    engine.run(100000);
  });
}

void auditMessagePassing(std::uint64_t seed, AuditReport& report) {
  report.run("mp-ssmfp ring-6", seed, [&] {
    const Graph g = topo::ring(6);
    MpSsmfpSimulator sim(g, {}, seed);
    sim.setAuditMode(true);
    Rng rng(seed ^ 0xA0D17);
    sim.corruptRouting(rng, 1.0);
    sim.scrambleQueues(rng);
    sim.send(0, 3, 42);
    sim.send(2, 5, 7);
    sim.run(200000);
  });
}

int runAudit(const CliOptions& options, std::ostream& out, std::ostream& err,
             jsonl::Writer* writer) {
  // Audit-mode on for every engine built inside the run, restored on exit.
  // Layered on top of the current process defaults so an outer --scanmode /
  // --exec selection keeps applying to the audited engines.
  EngineOptions auditDefaults = EngineOptions::processDefaults();
  auditDefaults.audit = true;
  const ScopedEngineDefaults scoped(auditDefaults);
  AuditReport report(err, writer);

  auditMatrix(options, report);
  for (std::size_t i = 0; i < options.sweepSeeds; ++i) {
    const std::uint64_t seed = options.config.seed + i;
    auditPif(seed, report);
    auditOrientationRing(seed, report);
    auditOrientationTree(seed, report);
    auditMessagePassing(seed, report);
  }

  if (writer != nullptr) {
    jsonl::Object summary;
    summary.field("event", "audit-summary")
        .field("runs", std::uint64_t{report.runs()})
        .field("violations", std::uint64_t{report.violatingRuns()})
        .field("capable", true);
    writer->write(summary);
  }
  out << "audit: " << report.runs() << " runs, " << report.violatingRuns()
      << " with access violations\n";
  return report.violatingRuns() == 0 ? 0 : 1;
}

}  // namespace

int runAuditCommand(const CliOptions& options, std::ostream& out,
                    std::ostream& err) {
  if (!kAuditCapable) {
    err << "error: this binary was built without -DSNAPFWD_AUDIT=ON; "
           "access auditing is unavailable\n";
    return 2;
  }
  if (options.jsonlOut.empty()) {
    return runAudit(options, out, err, nullptr);
  }
  if (options.jsonlOut == "-") {
    jsonl::Writer writer(out);
    return runAudit(options, out, err, &writer);
  }
  std::ofstream file(options.jsonlOut);
  if (!file) {
    err << "error: cannot write '" << options.jsonlOut << "'\n";
    return 2;
  }
  jsonl::Writer writer(file);
  const int code = runAudit(options, out, err, &writer);
  out << "jsonl written to " << options.jsonlOut << "\n";
  return code;
}

}  // namespace snapfwd::cli
