#pragma once
// `snapfwd_cli audit`: replays the sweep experiment matrix (topologies x
// daemons x corruption plans x seeds, SSMFP and baseline stacks) plus
// dedicated PIF / orientation-forwarding / message-passing scenarios with
// access auditing enabled, and reports every access-contract violation
// (see core/access_tracker.hpp).
//
// Runs are serial - an AccessAuditError must unwind to the per-run handler,
// and the tracker is not thread-safe anyway. Exit codes: 0 = every run
// clean, 1 = at least one violation, 2 = the binary was built without
// -DSNAPFWD_AUDIT=ON (auditing impossible).

#include <iosfwd>

#include "cli/args.hpp"

namespace snapfwd::cli {

int runAuditCommand(const CliOptions& options, std::ostream& out,
                    std::ostream& err);

}  // namespace snapfwd::cli
