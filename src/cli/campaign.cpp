#include "cli/campaign.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <string>

#include "sim/campaign.hpp"
#include "stats/table.hpp"

namespace snapfwd::cli {

int runCampaignCommand(const CliOptions& options, std::ostream& out,
                       std::ostream& err) {
  const CampaignReport report =
      runCampaign(builtinCampaign(options.campaignSteps));

  Table table("snapfwd campaign, soak scale " +
                  std::to_string(options.campaignSteps) + " steps",
              {"cell", "expect", "outcome", "ok", "steps", "valid", "invalid",
               "amnestied", "detail"});
  for (const CampaignCellResult& cell : report.cells) {
    std::string detail;
    if (cell.violation.has_value()) {
      detail = *cell.violation;
      if (detail.size() > 48) detail = detail.substr(0, 45) + "...";
    } else if (cell.outcome != CampaignOutcome::kClean) {
      detail = std::to_string(cell.occupiedAtEnd) + " buffered at end";
    }
    table.addRow({cell.name, toString(cell.expect), toString(cell.outcome),
                  Table::yesNo(cell.asExpected), Table::num(cell.steps),
                  Table::num(cell.validDeliveries),
                  Table::num(cell.invalidDeliveries),
                  Table::num(cell.amnestiedDeliveries), detail});
  }
  std::ostringstream rendered;
  if (options.format == OutputFormat::kCsv) {
    table.printCsv(rendered);
  } else {
    table.printMarkdown(rendered);
  }
  out << rendered.str();
  out << "campaign: " << report.cells.size() << " cells, "
      << report.unexpected() << " unexpected, " << report.expectedFailuresFired()
      << " expected failures fired -> "
      << (report.passed() ? "PASSED" : "FAILED") << "\n";

  if (!options.jsonlOut.empty()) {
    if (options.jsonlOut == "-") {
      writeCampaignReport(report, out);
    } else {
      std::ofstream file(options.jsonlOut);
      if (!file) {
        err << "error: cannot write '" << options.jsonlOut << "'\n";
        return 2;
      }
      writeCampaignReport(report, file);
      out << "jsonl written to " << options.jsonlOut << " ("
          << report.cells.size() + 1 << " lines)\n";
    }
  }
  return report.passed() ? 0 : 1;
}

}  // namespace snapfwd::cli
