#include "cli/explore.hpp"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>

#include "explore/explore.hpp"
#include "explore/family.hpp"
#include "explore/models.hpp"
#include "sim/sweep.hpp"
#include "stats/table.hpp"
#include "util/thread_pool.hpp"

namespace snapfwd::cli {
namespace {

using explore::DaemonClosure;
using explore::ExploreOptions;
using explore::ExploreResult;
using explore::ExploreViolation;
using explore::Move;
using explore::StepSelection;

/// The spanning tree of the Figure 2 network rooted at a (edges a-b, a-c,
/// a-d) - the PIF instance small enough for the full 3^n scramble closure.
Graph figure2SpanningTree() {
  Graph tree(4);
  tree.addEdge(0, 1);
  tree.addEdge(0, 2);
  tree.addEdge(0, 3);
  return tree;
}

std::string renderSchedule(const std::vector<Move>& path) {
  std::ostringstream out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    out << "  step " << i << ":";
    for (const StepSelection& sel : path[i]) {
      out << " (p=" << sel.p << " layer=" << sel.layer
          << " rule=" << sel.action.rule;
      if (sel.action.dest != kNoNode) out << " dest=" << sel.action.dest;
      out << ")";
    }
    out << "\n";
  }
  return out.str();
}

void renderStats(std::ostream& out, std::string_view model,
                 const ExploreOptions& options, const ExploreResult& result,
                 double seconds) {
  Table table("snapfwd explore", {"metric", "value"});
  table.addRow({"model", std::string(model)});
  table.addRow({"daemon closure", toString(options.closure)});
  table.addRow({"state codec", toString(result.stats.codecUsed)});
  table.addRow({"reduction", std::string(toString(options.reduction)) +
                                (result.stats.reductionFellBack
                                     ? " (fell back)"
                                     : "")});
  table.addRow({"store", toString(result.stats.spillActivated
                                      ? explore::StoreKind::kSpill
                                      : explore::StoreKind::kRam)});
  table.addRow({"threads", Table::num(std::uint64_t{options.threads})});
  table.addRow({"start states", Table::num(result.stats.startStates)});
  table.addRow({"visited states", Table::num(result.stats.visited)});
  table.addRow({"transitions", Table::num(result.stats.transitions)});
  table.addRow({"dedup hits", Table::num(result.stats.dedupHits)});
  table.addRow({"frontier peak", Table::num(result.stats.frontierPeak)});
  table.addRow({"depth reached", Table::num(result.stats.depthReached)});
  table.addRow({"truncated states", Table::num(result.stats.truncatedStates)});
  table.addRow({"terminal states", Table::num(result.stats.terminalStates)});
  table.addRow({"max progress count", Table::num(result.stats.maxProgressCount)});
  if (result.stats.symGroupSize > 1) {
    table.addRow({"symmetry group", Table::num(result.stats.symGroupSize)});
    table.addRow({"symmetry folds", Table::num(result.stats.symCanonFolds)});
  }
  if (result.stats.amplePicks + result.stats.ampleFallbacks > 0) {
    table.addRow({"ample picks", Table::num(result.stats.amplePicks)});
    table.addRow({"ample fallbacks", Table::num(result.stats.ampleFallbacks)});
  }
  table.addRow({"resident bytes", Table::num(result.stats.residentBytes)});
  table.addRow({"spill bytes", Table::num(result.stats.spillBytes)});
  if (result.stats.peakRssBytes > 0) {
    table.addRow({"peak RSS bytes", Table::num(result.stats.peakRssBytes)});
  }
  table.addRow({"exhausted (closure proof)", Table::yesNo(result.stats.exhausted)});
  table.addRow({"violations", Table::num(std::uint64_t{result.violations.size()})});
  table.addRow({"seconds", Table::num(seconds, 2)});
  table.printMarkdown(out);
}

}  // namespace

int runExploreCommand(const CliOptions& options, std::ostream& out,
                      std::ostream& err) {
  ExploreOptions exploreOptions;
  exploreOptions.closure =
      *parseEnum<DaemonClosure>(options.exploreClosure);  // parse-validated
  exploreOptions.maxDepth =
      options.exploreDepth == 0 ? UINT64_MAX : options.exploreDepth;
  exploreOptions.maxStates = options.exploreMaxStates;
  exploreOptions.maxMovesPerState = options.exploreMaxChoices;
  exploreOptions.threads = resolveThreadCount(options.sweepThreads);
  exploreOptions.codec =
      *parseEnum<explore::StateCodec>(options.exploreCodec);  // parse-validated
  exploreOptions.reduction =
      *parseEnum<explore::Reduction>(options.exploreReduction);
  exploreOptions.store = *parseEnum<explore::StoreKind>(options.exploreStore);
  exploreOptions.spillDir = options.exploreSpillDir;
  exploreOptions.memBudgetBytes = options.exploreMemBudget;
  exploreOptions.compressStates = options.exploreCompress;

  std::unique_ptr<explore::ExploreModel> model;
  explore::SsmfpExploreModel* ssmfpModel = nullptr;
  if (const explore::FamilyModelOps* family =
          explore::findFamilyModelOps(options.exploreModel)) {
    const std::string startSet = options.exploreStartSet.empty()
                                     ? "figure2-corruptions"
                                     : options.exploreStartSet;
    if (startSet == "figure2-corruptions") {
      model = family->figure2CorruptionModel();
    } else if (startSet == "figure2-clean") {
      model = family->figure2CleanModel();
    } else if (startSet == "ring-scale") {
      if (family->id != ForwardingFamilyId::kSsmfp) {
        err << "error: start set 'ring-scale' is only available for "
               "--model=ssmfp\n";
        return 2;
      }
      if (options.config.topo.n < 3 || options.config.topo.n % 2 == 0) {
        err << "error: --start-set=ring-scale needs an odd ring size >= 3 "
               "(pass --n=5, --n=7, ...)\n";
        return 2;
      }
      explore::RingScaleSpec spec;
      spec.n = options.config.topo.n;
      spec.pairStride = options.explorePairStride;
      spec.tripleStride = options.exploreTripleStride;
      spec.orbitClose = options.exploreOrbitClose;
      spec.withSend = true;
      model = std::make_unique<explore::SsmfpExploreModel>(
          explore::SsmfpExploreModel::ringScaleClosure(spec));
    } else {
      err << "error: unknown " << family->name << " start set '" << startSet
          << "' (figure2-corruptions | figure2-clean | ring-scale [ssmfp])\n";
      return 2;
    }
    if (family->id == ForwardingFamilyId::kSsmfp) {
      ssmfpModel = static_cast<explore::SsmfpExploreModel*>(model.get());
    }
  } else {
    const std::string startSet =
        options.exploreStartSet.empty() ? "scramble" : options.exploreStartSet;
    if (startSet != "scramble") {
      err << "error: unknown pif start set '" << startSet << "' (scramble)\n";
      return 2;
    }
    model = std::make_unique<explore::PifExploreModel>(
        explore::PifExploreModel::scrambleClosure(figure2SpanningTree(),
                                                  /*root=*/0));
  }
  const explore::ExploreModel& chosen = *model;

  std::unique_ptr<ThreadPool> pool;
  if (exploreOptions.threads > 1) {
    pool = std::make_unique<ThreadPool>(exploreOptions.threads);
  }

  const auto begin = std::chrono::steady_clock::now();
  const ExploreResult result = explore::explore(chosen, exploreOptions, pool.get());
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  renderStats(out, chosen.name(), exploreOptions, result, seconds);

  if (!result.clean()) {
    const ExploreViolation& v = result.violations.front();
    out << "violation: " << v.kind << " at depth " << v.depth << " from start #"
        << v.rootIndex << "\n  " << v.message << "\nschedule:\n"
        << renderSchedule(v.path);
    if (ssmfpModel) {
      const ShrinkResult shrunk =
          explore::shrinkSsmfpViolation(*ssmfpModel, v, exploreOptions);
      out << "shrunk start configuration (" << shrunk.probes << " probes, "
          << shrunk.removedLines << " lines removed, " << shrunk.zeroedPayloads
          << " payloads zeroed):\n"
          << shrunk.snapshot;
    }
  }

  if (!options.jsonlOut.empty()) {
    if (options.jsonlOut == "-") {
      explore::writeExploreJsonl(out, chosen.name(), exploreOptions, result);
    } else {
      std::ofstream file(options.jsonlOut);
      if (!file) {
        err << "error: cannot write '" << options.jsonlOut << "'\n";
        return 2;
      }
      explore::writeExploreJsonl(file, chosen.name(), exploreOptions, result);
      out << "jsonl written to " << options.jsonlOut << "\n";
    }
  }
  if (!result.clean()) return 1;
  // A clean run that did NOT close the state space (move/state/depth bounds
  // truncated it) proves nothing - refuse the 0 exit unless the caller
  // explicitly opted in. CI differentials gate on this.
  if (!result.stats.exhausted && !options.exploreAllowTruncation) {
    err << "error: closure truncated (visited " << result.stats.visited
        << " states, " << result.stats.truncatedStates
        << " move-capped); not a closure proof. Raise --max-states/"
           "--max-choices/--depth or pass --allow-truncation.\n";
    return 3;
  }
  return 0;
}

}  // namespace snapfwd::cli
