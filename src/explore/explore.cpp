#include "explore/explore.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "explore/canon.hpp"
#include "stats/jsonl.hpp"
#include "util/arena.hpp"
#include "util/rle0.hpp"
#include "util/thread_pool.hpp"

namespace snapfwd::explore {

void ModelInstance::encodeState(std::string&) {
  throw std::logic_error("ModelInstance::encodeState: binary codec unsupported");
}

void ModelInstance::restoreState(std::string_view) {
  throw std::logic_error("ModelInstance::restoreState: binary codec unsupported");
}

void ModelInstance::undoToRestored() {
  throw std::logic_error("ModelInstance::undoToRestored: binary codec unsupported");
}

void ModelInstance::encodePermutedState(const Perm&, StateCodec, std::string&) {
  throw std::logic_error(
      "ModelInstance::encodePermutedState: permuted encode unsupported");
}

const std::vector<Perm>& ExploreModel::symmetryGenerators() const {
  static const std::vector<Perm> kEmpty;
  return kEmpty;
}

StepSelection ExploreModel::permuteSelection(const StepSelection& sel,
                                             const Perm& perm) const {
  StepSelection out = sel;
  out.p = perm[sel.p];
  if (sel.action.dest != kNoNode && sel.action.dest < perm.size()) {
    out.action.dest = perm[sel.action.dest];
  }
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// Visited set: 64-way lock striping keyed on the state hash. Each shard
// owns a ByteArena; a state's encoded bytes are interned exactly once and
// every later structure (records, frontier, dedup compares) works on
// stable string_view handles into the arenas instead of owning strings.
// Dedup is hash + byte-compare with per-hash collision chaining, so equal
// hashes of DIFFERENT states never merge (unlike classic hash compaction).
// Records double as the BFS tree (parent ref + incoming move) for
// counterexample-path reconstruction; scale runs can drop the tree
// (trackPaths=false) and keep only the dedup structure.
//
// Out-of-core mode: the shard arenas spill to per-shard unlinked mmap'd
// files (util/arena.hpp) - the shard index is the top 6 hash bits, so the
// spill layout is hash-prefix bucketed across 64 files. Spill can start at
// construction (StoreKind::kSpill) or mid-run at a level boundary when a
// memory budget trips; either way existing views stay valid.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kNoRecord = 0xFFFF'FFFFu;
constexpr std::uint64_t kNoRef = UINT64_MAX;
constexpr std::uint32_t kIdentityPerm = 0;

struct VisitedRecord {
  std::string_view bytes;  // arena-interned encoded (maybe compressed) state
  Move move;               // the step parent -> this (empty for start states)
  std::uint64_t parentRef = kNoRef;
  std::uint64_t depth = 0;
  std::uint32_t rootIndex = 0;
  std::uint32_t nextSameHash = kNoRecord;  // collision chain within the shard
  /// Index (into the closed symmetry group) of the permutation that mapped
  /// the reached configuration to this stored representative - the sigma_i
  /// of the gamma-folded path reconstruction.
  std::uint32_t permIndex = kIdentityPerm;
};

class VisitedSet {
 public:
  VisitedSet() : shards_(kShards) {}

  struct InsertResult {
    std::uint64_t ref = kNoRef;    // stable handle: shard << 32 | record index
    std::string_view bytes;        // the interned copy (arena-stable)
    bool fresh = false;            // first inserter wins
  };

  /// Interns `bytes` if no record in the hash's chain byte-compares equal.
  /// The losing inserter's `move` is not consumed.
  InsertResult insert(std::uint64_t hash, std::string_view bytes, Move&& move,
                      std::uint64_t parentRef, std::uint32_t rootIndex,
                      std::uint64_t depth, std::uint32_t permIndex) {
    const std::size_t s = shardOf(hash);
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto [it, firstOfHash] = shard.index.try_emplace(hash, kNoRecord);
    if (!firstOfHash) {
      std::uint32_t idx = it->second;
      while (true) {
        VisitedRecord& rec = shard.records[idx];
        if (rec.bytes == bytes) return {makeRef(s, idx), rec.bytes, false};
        if (rec.nextSameHash == kNoRecord) break;
        idx = rec.nextSameHash;
      }
      const std::uint32_t fresh = appendLocked(shard, bytes, std::move(move),
                                               parentRef, rootIndex, depth,
                                               permIndex);
      shard.records[idx].nextSameHash = fresh;
      return {makeRef(s, fresh), shard.records[fresh].bytes, true};
    }
    const std::uint32_t fresh = appendLocked(shard, bytes, std::move(move),
                                             parentRef, rootIndex, depth,
                                             permIndex);
    it->second = fresh;
    return {makeRef(s, fresh), shard.records[fresh].bytes, true};
  }

  /// Record lookup by ref. Not synchronized: call only after expansion has
  /// quiesced (path reconstruction) or for refs this thread inserted.
  [[nodiscard]] const VisitedRecord& record(std::uint64_t ref) const {
    return shards_[ref >> 32].records[static_cast<std::uint32_t>(ref)];
  }

  /// Routes subsequent arena growth of every shard to spill files under
  /// `dir`. Returns true iff at least one shard could spill.
  bool enableSpill(const std::string& dir) {
    bool any = false;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      any = shard.arena.enableSpill(dir) || any;
    }
    return any;
  }

  [[nodiscard]] std::uint64_t storedBytes() const {
    std::uint64_t sum = 0;
    for (const Shard& shard : shards_) sum += shard.arena.storedBytes();
    return sum;
  }
  [[nodiscard]] std::uint64_t allocatedBytes() const {
    std::uint64_t sum = 0;
    for (const Shard& shard : shards_) sum += shard.arena.allocatedBytes();
    return sum;
  }
  [[nodiscard]] std::uint64_t residentBytes() const {
    std::uint64_t sum = 0;
    for (const Shard& shard : shards_) sum += shard.arena.residentBytes();
    return sum;
  }
  [[nodiscard]] std::uint64_t spillBytes() const {
    std::uint64_t sum = 0;
    for (const Shard& shard : shards_) sum += shard.arena.spillBytes();
    return sum;
  }

 private:
  static constexpr std::size_t kShards = 64;
  [[nodiscard]] static std::size_t shardOf(std::uint64_t hash) {
    return (hash >> 58) & (kShards - 1);  // top bits: FNV mixes them well
  }
  [[nodiscard]] static std::uint64_t makeRef(std::size_t shard,
                                             std::uint32_t idx) {
    return (static_cast<std::uint64_t>(shard) << 32) | idx;
  }

  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, std::uint32_t> index;  // hash -> chain head
    std::vector<VisitedRecord> records;
    ByteArena arena;
  };

  static std::uint32_t appendLocked(Shard& shard, std::string_view bytes,
                                    Move&& move, std::uint64_t parentRef,
                                    std::uint32_t rootIndex, std::uint64_t depth,
                                    std::uint32_t permIndex) {
    VisitedRecord rec;
    rec.bytes = shard.arena.intern(bytes);
    rec.move = std::move(move);
    rec.parentRef = parentRef;
    rec.rootIndex = rootIndex;
    rec.depth = depth;
    rec.permIndex = permIndex;
    shard.records.push_back(std::move(rec));
    return static_cast<std::uint32_t>(shard.records.size() - 1);
  }

  std::vector<Shard> shards_;
};

/// Frontier entries borrow the visited set's interned bytes - no owned
/// strings cross BFS levels (the level barrier orders arena publication
/// before consumption; within a level the shard mutex does).
struct FrontierItem {
  std::uint64_t ref = kNoRef;
  std::string_view bytes;
  std::uint32_t rootIndex = 0;
  std::uint64_t depth = 0;
};

/// A violation as recorded during expansion, before path reconstruction.
/// `state` is always canonical TEXT (recovered via serialize() - or the
/// orbit representative's permuted text under symmetry - at detection
/// time), whatever codec the run stores.
struct RawViolation {
  ModelViolation what;
  std::uint64_t ref = kNoRef;
  std::uint64_t hash = 0;
  std::uint64_t depth = 0;
  std::uint32_t rootIndex = 0;
  std::string state;
};

/// Free-list of live instances for the delta-stepping path: one instance
/// per concurrently-expanding worker, reused across the whole run (the
/// whole point - instance construction is the textual path's hot cost).
class InstancePool {
 public:
  InstancePool(const ExploreModel& model, const std::string& seedState)
      : model_(model), seedState_(seedState) {}

  [[nodiscard]] std::unique_ptr<ModelInstance> acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        auto inst = std::move(free_.back());
        free_.pop_back();
        return inst;
      }
    }
    return model_.load(seedState_);
  }

  void release(std::unique_ptr<ModelInstance> inst) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(inst));
  }

 private:
  const ExploreModel& model_;
  const std::string& seedState_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<ModelInstance>> free_;
};

/// Appends the action combinations of `entries` (one action per entry) to
/// `out` as moves, mixed-radix over the per-entry action counts.
void pushActionCombinations(const std::vector<const EnabledProcessor*>& entries,
                            std::size_t maxMoves, std::vector<Move>& out,
                            bool& truncated) {
  std::vector<std::size_t> radix(entries.size(), 0);
  while (true) {
    if (out.size() >= maxMoves) {
      truncated = true;
      return;
    }
    Move move;
    move.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      move.push_back({entries[i]->p, entries[i]->layer,
                      entries[i]->actions[radix[i]]});
    }
    out.push_back(std::move(move));
    // Odometer increment.
    std::size_t i = 0;
    for (; i < entries.size(); ++i) {
      if (++radix[i] < entries[i]->actions.size()) break;
      radix[i] = 0;
    }
    if (i == entries.size()) return;
  }
}

/// Peak resident set size of this process, in bytes, where the platform
/// reports it (Linux VmHWM). Accounting only.
std::uint64_t processPeakRssBytes() {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string key;
  while (status >> key) {
    if (key == "VmHWM:") {
      std::uint64_t kb = 0;
      status >> kb;
      return kb * 1024;
    }
    status.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  }
#endif
  return 0;
}

std::string resolveSpillDir(const std::string& requested) {
  if (!requested.empty()) return requested;
  if (const char* tmp = std::getenv("TMPDIR"); tmp != nullptr && *tmp != '\0') {
    return tmp;
  }
  return "/tmp";
}

}  // namespace

void enumerateMovesFromEnabled(const std::vector<EnabledProcessor>& enabled,
                               DaemonClosure closure, std::size_t maxMoves,
                               std::vector<Move>& out, bool& truncated) {
  out.clear();
  truncated = false;
  if (enabled.empty()) return;
  switch (closure) {
    case DaemonClosure::kCentral: {
      for (const EnabledProcessor& e : enabled) {
        for (const Action& a : e.actions) {
          if (out.size() >= maxMoves) {
            truncated = true;
            return;
          }
          out.push_back({StepSelection{e.p, e.layer, a}});
        }
      }
      return;
    }
    case DaemonClosure::kSynchronous: {
      std::vector<const EnabledProcessor*> all;
      all.reserve(enabled.size());
      for (const EnabledProcessor& e : enabled) all.push_back(&e);
      pushActionCombinations(all, maxMoves, out, truncated);
      return;
    }
    case DaemonClosure::kDistributed: {
      // Every non-empty subset of enabled processors. Beyond 20 processors
      // the 2^k masks cannot fit any sane move bound anyway; cap the mask
      // width and report truncation.
      constexpr std::size_t kMaxSubsetBits = 20;
      const std::size_t k = enabled.size();
      if (k > kMaxSubsetBits) truncated = true;
      const std::size_t bits = std::min(k, kMaxSubsetBits);
      std::vector<const EnabledProcessor*> subset;
      for (std::uint64_t mask = 1; mask < (1ull << bits); ++mask) {
        subset.clear();
        for (std::size_t i = 0; i < bits; ++i) {
          if (mask & (1ull << i)) subset.push_back(&enabled[i]);
        }
        pushActionCombinations(subset, maxMoves, out, truncated);
        if (truncated) return;
      }
      return;
    }
  }
}

ExploreResult explore(const ExploreModel& model, const ExploreOptions& options,
                      ThreadPool* pool) {
  ExploreResult result;
  VisitedSet visited;
  std::vector<FrontierItem> frontier;
  std::vector<RawViolation> rawViolations;
  std::mutex accumMutex;  // guards frontier-builder + rawViolations + maxima

  std::atomic<std::uint64_t> visitedCount{0};
  std::atomic<std::uint64_t> transitions{0};
  std::atomic<std::uint64_t> dedupHits{0};
  std::atomic<std::uint64_t> truncatedStates{0};
  std::atomic<std::uint64_t> terminalStates{0};
  std::atomic<std::uint64_t> symCanonFolds{0};
  std::atomic<std::uint64_t> amplePicks{0};
  std::atomic<std::uint64_t> ampleFallbacks{0};
  std::atomic<bool> boundHit{false};
  std::uint64_t maxProgress = 0;
  std::uint64_t depthReached = 0;

  const std::vector<std::string>& starts = model.startStates();
  result.stats.startStates = starts.size();

  // Resolve the codec: kBinary needs instance support; otherwise fall back
  // to the textual path (counts are identical either way, but the caller
  // asked for the fast path and should hear that it did not run).
  StateCodec codec = options.codec;
  if (codec == StateCodec::kBinary &&
      (starts.empty() || !model.load(starts.front())->supportsBinaryCodec())) {
    codec = StateCodec::kText;
    result.stats.codecFellBack = true;
    std::cerr << "warning: model '" << model.name()
              << "' has no binary state codec; --state-codec=binary fell "
                 "back to text\n";
  }
  result.stats.codecUsed = codec;

  // -- Resolve the reduction axes -------------------------------------------
  const bool wantSymmetry = options.reduction == Reduction::kSymmetry ||
                            options.reduction == Reduction::kBoth;
  const bool wantPor = options.reduction == Reduction::kPor ||
                       options.reduction == Reduction::kBoth;

  // Symmetry: close the generator set and probe permuted-encode support.
  // Any missing piece falls back loudly to the unreduced axis.
  std::vector<Perm> group;
  if (wantSymmetry && !starts.empty()) {
    if (!model.load(starts.front())->supportsPermutedEncode()) {
      result.stats.reductionFellBack = true;
      std::cerr << "warning: model '" << model.name()
                << "' has no permuted state encode; symmetry reduction fell "
                   "back to none\n";
    } else if (model.symmetryGenerators().empty()) {
      result.stats.reductionFellBack = true;
      std::cerr << "warning: model '" << model.name()
                << "' supplies no symmetry generators; symmetry reduction "
                   "fell back to none\n";
    } else {
      group = closeGroup(model.symmetryGenerators());
      constexpr std::size_t kGroupCap = 20160;
      if (group.size() >= kGroupCap) {
        result.stats.reductionFellBack = true;
        std::cerr << "warning: symmetry group of model '" << model.name()
                  << "' exceeds " << kGroupCap
                  << " elements; symmetry reduction fell back to none\n";
        group.clear();
      }
    }
  }
  const bool symActive = group.size() > 1;
  result.stats.symGroupSize = symActive ? group.size() : 1;

  // POR: needs the structure graph for the independence check, and is a
  // no-op under the synchronous closure (all enabled processors step as one
  // move - there are no interleavings to prune).
  const Graph* structGraph = wantPor ? model.structureGraph() : nullptr;
  if (wantPor && structGraph == nullptr) {
    result.stats.reductionFellBack = true;
    std::cerr << "warning: model '" << model.name()
              << "' supplies no structure graph; partial-order reduction "
                 "fell back to none\n";
  }
  const bool porActive = wantPor && structGraph != nullptr &&
                         options.closure != DaemonClosure::kSynchronous;

  // All-pairs distances for the ample independence test (graphs here are
  // protocol topologies - tens of nodes, not state spaces).
  std::vector<std::vector<std::uint32_t>> dist;
  if (porActive) {
    dist.reserve(structGraph->size());
    for (NodeId p = 0; p < structGraph->size(); ++p) {
      dist.push_back(structGraph->bfsDistances(p));
    }
  }

  // -- Store placement ------------------------------------------------------
  const std::string spillDir = resolveSpillDir(options.spillDir);
  std::uint64_t memBudget = options.memBudgetBytes;
  bool spilling = false;
  if (options.store == StoreKind::kSpill) {
    spilling = visited.enableSpill(spillDir);
    if (!spilling) {
      std::cerr << "warning: could not open spill files under '" << spillDir
                << "'; visited set stays in RAM\n";
    }
  }

  // -- Canonicalization -----------------------------------------------------
  // Encodes the instance's current configuration into `out` (orbit-minimal
  // under `group` when symmetry is active, optionally rle0-compressed) and
  // returns the index of the canonicalizing permutation.
  const auto encodeCurrent = [codec](ModelInstance& inst, std::string& out) {
    if (codec == StateCodec::kBinary) {
      inst.encodeState(out);
    } else {
      out += inst.serialize();
    }
  };
  const auto canonicalize = [&](ModelInstance& inst, std::string& out,
                                std::string& trial) -> std::uint32_t {
    out.clear();
    encodeCurrent(inst, out);
    std::uint32_t best = kIdentityPerm;
    if (symActive) {
      for (std::uint32_t i = 1; i < group.size(); ++i) {
        trial.clear();
        inst.encodePermutedState(group[i], codec, trial);
        if (trial < out) {
          out.swap(trial);
          best = i;
        }
      }
    }
    if (options.compressStates) {
      trial.clear();
      rle0Compress(out, trial);
      out.swap(trial);
    }
    return best;
  };
  // The raw (uncompressed) bytes an instance must be loaded/restored from.
  const auto rawBytes = [&](std::string_view stored,
                            std::string& scratch) -> std::string_view {
    if (!options.compressStates) return stored;
    scratch.clear();
    const bool ok = rle0Decompress(stored, scratch);
    assert(ok);
    (void)ok;
    return scratch;
  };

  // Seed level 0: dedupe the start set itself and run the state checks on
  // every distinct start. Serial; instances are loaded per start anyway.
  std::string seedScratch;
  std::string seedTrial;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    std::unique_ptr<ModelInstance> inst;
    std::uint32_t perm = kIdentityPerm;
    std::string_view bytes;
    if (codec == StateCodec::kText && !symActive && !options.compressStates) {
      bytes = starts[i];  // start texts are already canonical serializations
    } else {
      inst = model.load(starts[i]);
      perm = canonicalize(*inst, seedScratch, seedTrial);
      bytes = seedScratch;
    }
    const std::uint64_t h = hash64(bytes);
    const auto ins = visited.insert(h, bytes, Move{}, kNoRef,
                                    static_cast<std::uint32_t>(i), 0, perm);
    if (!ins.fresh) {
      ++dedupHits;
      continue;
    }
    ++visitedCount;
    if (perm != kIdentityPerm) ++symCanonFolds;
    if (inst == nullptr) inst = model.load(starts[i]);
    maxProgress = std::max(maxProgress, inst->progressCount());
    if (auto v = inst->checkState()) {
      rawViolations.push_back(
          {std::move(*v), ins.ref, h, 0, static_cast<std::uint32_t>(i), starts[i]});
      continue;
    }
    frontier.push_back({ins.ref, ins.bytes, static_cast<std::uint32_t>(i), 0});
  }

  // One successor's bookkeeping after its state has been encoded into
  // `bytes`: insert, count, check, and queue. `violText` must already hold
  // the canonical text when `v` is set. Returns under accumMutex.
  const auto recordChild = [&](const FrontierItem& item,
                               std::optional<ModelViolation>&& v,
                               std::uint64_t progress, std::string&& violText,
                               std::vector<FrontierItem>& next,
                               const VisitedSet::InsertResult& ins,
                               std::uint64_t h) {
    std::lock_guard<std::mutex> lock(accumMutex);
    depthReached = std::max(depthReached, item.depth + 1);
    maxProgress = std::max(maxProgress, progress);
    if (v) {
      rawViolations.push_back({std::move(*v), ins.ref, h, item.depth + 1,
                               item.rootIndex, std::move(violText)});
      return;  // violating states are not expanded further
    }
    if (item.depth + 1 >= options.maxDepth) {
      boundHit = true;
      return;
    }
    if (visitedCount.load() > options.maxStates) {
      boundHit = true;
      return;
    }
    next.push_back({ins.ref, ins.bytes, item.rootIndex, item.depth + 1});
  };

  // -- Move planning (shared by both expansion paths) -----------------------
  // Enumerates the moves to expand from the instance's current state.
  // Without POR this is exactly the PR-4 semantics: one enumerateMoves call
  // under options.closure. With POR, the central singleton enumeration
  // derives the enabled set; if an "ample" processor exists (all its
  // selections invisible, every other enabled processor at structure
  // distance >= 2, i.e. provably independent under the radius-1 access
  // contract) only its singleton moves are expanded. The cycle proviso:
  // if ANY ample successor was already visited, the state re-expands its
  // FULL move set (minus the already-applied ample singletons), so no
  // cycle can indefinitely defer a pruned move (the "ignoring problem").
  struct MovePlan {
    bool terminal = false;
    bool usedAmple = false;
    NodeId amplePick = kNoNode;
  };
  const auto planMoves = [&](ModelInstance& inst, std::vector<Move>& moves,
                             bool& truncated) -> MovePlan {
    MovePlan plan;
    if (!porActive) {
      inst.enumerateMoves(options.closure, options.maxMovesPerState, moves,
                          truncated);
      plan.terminal = moves.empty();
      return plan;
    }
    std::vector<Move> central;
    bool centralTruncated = false;
    inst.enumerateMoves(DaemonClosure::kCentral, options.maxMovesPerState,
                        central, centralTruncated);
    if (central.empty()) {
      plan.terminal = true;
      moves.clear();
      truncated = centralTruncated;
      return plan;
    }
    if (!centralTruncated) {
      // Enabled processors and their visibility, aggregated over the
      // singleton moves (a processor may appear in several layers - merge,
      // or a visible layer could hide behind an invisible one).
      NodeId pick = kNoNode;
      std::vector<NodeId> enabled;
      std::vector<bool> allInvisible;
      for (const Move& m : central) {
        const NodeId p = m.front().p;
        std::size_t at = enabled.size();
        for (std::size_t c = 0; c < enabled.size(); ++c) {
          if (enabled[c] == p) {
            at = c;
            break;
          }
        }
        if (at == enabled.size()) {
          enabled.push_back(p);
          allInvisible.push_back(true);
        }
        if (model.selectionVisible(m.front())) allInvisible[at] = false;
      }
      for (std::size_t c = 0; c < enabled.size() && pick == kNoNode; ++c) {
        if (!allInvisible[c]) continue;
        bool independent = true;
        for (const NodeId q : enabled) {
          if (q == enabled[c]) continue;
          if (enabled[c] >= dist.size() || q >= dist[enabled[c]].size() ||
              dist[enabled[c]][q] < 2) {
            independent = false;
            break;
          }
        }
        if (independent) pick = enabled[c];
      }
      if (pick != kNoNode) {
        moves.clear();
        for (Move& m : central) {
          if (m.front().p == pick) moves.push_back(std::move(m));
        }
        truncated = false;
        plan.usedAmple = true;
        plan.amplePick = pick;
        return plan;
      }
    }
    // No ample processor (or the enabled set itself overflowed the move
    // bound): full expansion under the requested closure.
    if (options.closure == DaemonClosure::kCentral) {
      moves = std::move(central);
      truncated = centralTruncated;
    } else {
      inst.enumerateMoves(options.closure, options.maxMovesPerState, moves,
                          truncated);
    }
    return plan;
  };

  // The proviso's second pass: the full move set minus the ample singletons
  // already applied.
  const auto fullMinusAmple = [&](ModelInstance& inst, NodeId amplePick,
                                  std::vector<Move>& moves, bool& truncated) {
    inst.enumerateMoves(options.closure, options.maxMovesPerState, moves,
                        truncated);
    std::erase_if(moves, [&](const Move& m) {
      return m.size() == 1 && m.front().p == amplePick;
    });
  };

  // Textual path: the PR-4 semantics - one instance to enumerate, one
  // fresh instance per successor, full canonical re-serialization.
  const auto expandItemText = [&](const FrontierItem& item,
                                  std::vector<FrontierItem>& next) {
    std::string rawScratch;
    const std::string parentText(rawBytes(item.bytes, rawScratch));
    auto inst = model.load(parentText);
    std::vector<Move> moves;
    bool truncated = false;
    MovePlan plan = planMoves(*inst, moves, truncated);
    if (truncated) {
      ++truncatedStates;
      boundHit = true;
    }
    if (plan.terminal) {
      ++terminalStates;
      if (auto v = inst->checkTerminal()) {
        std::lock_guard<std::mutex> lock(accumMutex);
        rawViolations.push_back({std::move(*v), item.ref, hash64(item.bytes),
                                 item.depth, item.rootIndex, parentText});
      }
      return;
    }
    std::string canonScratch;
    std::string canonTrial;
    bool sawDedup = false;
    const auto expandMove = [&](Move& move) {
      ++transitions;
      auto child = model.load(parentText);
      const bool applied = child->apply(move);
      assert(applied);
      if (!applied) return;
      const std::uint32_t perm = canonicalize(*child, canonScratch, canonTrial);
      const std::uint64_t h = hash64(canonScratch);
      Move stored = options.trackPaths ? std::move(move) : Move{};
      auto ins = visited.insert(h, canonScratch, std::move(stored),
                                options.trackPaths ? item.ref : kNoRef,
                                item.rootIndex, item.depth + 1, perm);
      if (!ins.fresh) {
        ++dedupHits;
        sawDedup = true;
        return;
      }
      ++visitedCount;
      if (perm != kIdentityPerm) ++symCanonFolds;
      const std::uint64_t progress = child->progressCount();
      auto v = child->checkState();
      std::string violText;
      if (v) {
        violText = symActive && perm != kIdentityPerm
                       ? [&] {
                           std::string t;
                           child->encodePermutedState(group[perm],
                                                      StateCodec::kText, t);
                           return t;
                         }()
                       : child->serialize();
      }
      recordChild(item, std::move(v), progress, std::move(violText), next, ins,
                  h);
    };
    for (Move& move : moves) expandMove(move);
    if (plan.usedAmple) {
      if (sawDedup) {
        ++ampleFallbacks;
        std::vector<Move> rest;
        bool restTruncated = false;
        fullMinusAmple(*inst, plan.amplePick, rest, restTruncated);
        if (restTruncated) {
          ++truncatedStates;
          boundHit = true;
        }
        for (Move& move : rest) expandMove(move);
      } else {
        ++amplePicks;
      }
    }
  };

  // Binary path: fork-from-parent delta stepping. One live instance per
  // worker, decoded once per parent; each successor is apply -> encode ->
  // undo over the engine's commit write set.
  const std::string poolSeed = starts.empty() ? std::string() : starts.front();
  InstancePool instances(model, poolSeed);
  const auto expandItemBinary = [&](const FrontierItem& item,
                                    std::vector<FrontierItem>& next,
                                    ModelInstance& inst, std::string& scratch,
                                    std::string& trial, std::string& raw,
                                    std::vector<Move>& moves) {
    inst.restoreState(rawBytes(item.bytes, raw));
    bool truncated = false;
    MovePlan plan = planMoves(inst, moves, truncated);
    if (truncated) {
      ++truncatedStates;
      boundHit = true;
    }
    if (plan.terminal) {
      ++terminalStates;
      if (auto v = inst.checkTerminal()) {
        std::string text = inst.serialize();
        std::lock_guard<std::mutex> lock(accumMutex);
        rawViolations.push_back({std::move(*v), item.ref, hash64(item.bytes),
                                 item.depth, item.rootIndex, std::move(text)});
      }
      return;
    }
    bool sawDedup = false;
    const auto expandMove = [&](Move& move) {
      ++transitions;
      const bool applied = inst.apply(move);
      assert(applied);
      if (!applied) return;  // not enabled here: state unchanged, no undo
      const std::uint32_t perm = canonicalize(inst, scratch, trial);
      const std::uint64_t h = hash64(scratch);
      Move stored = options.trackPaths ? std::move(move) : Move{};
      auto ins = visited.insert(h, scratch, std::move(stored),
                                options.trackPaths ? item.ref : kNoRef,
                                item.rootIndex, item.depth + 1, perm);
      if (!ins.fresh) {
        ++dedupHits;
        sawDedup = true;
        inst.undoToRestored();
        return;
      }
      ++visitedCount;
      if (perm != kIdentityPerm) ++symCanonFolds;
      const std::uint64_t progress = inst.progressCount();
      auto v = inst.checkState();
      // The counterexample report needs the canonical text; recover it now,
      // while the instance still holds the violating configuration.
      std::string violText;
      if (v) {
        if (symActive && perm != kIdentityPerm) {
          inst.encodePermutedState(group[perm], StateCodec::kText, violText);
        } else {
          violText = inst.serialize();
        }
      }
      inst.undoToRestored();
      recordChild(item, std::move(v), progress, std::move(violText), next, ins,
                  h);
    };
    for (Move& move : moves) expandMove(move);
    if (plan.usedAmple) {
      if (sawDedup) {
        ++ampleFallbacks;
        std::vector<Move> rest;
        bool restTruncated = false;
        fullMinusAmple(inst, plan.amplePick, rest, restTruncated);
        if (restTruncated) {
          ++truncatedStates;
          boundHit = true;
        }
        for (Move& move : rest) expandMove(move);
      } else {
        ++amplePicks;
      }
    }
  };

  // Per-worker expansion over an index range (binary path acquires its
  // live instance + scratch once per range, not per item).
  const auto expandRange = [&](std::size_t begin, std::size_t end,
                               std::vector<FrontierItem>& next) {
    if (codec == StateCodec::kBinary) {
      auto inst = instances.acquire();
      std::string scratch;
      std::string trial;
      std::string raw;
      std::vector<Move> moves;
      for (std::size_t i = begin; i < end; ++i) {
        expandItemBinary(frontier[i], next, *inst, scratch, trial, raw, moves);
      }
      instances.release(std::move(inst));
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        expandItemText(frontier[i], next);
      }
    }
  };

  while (!frontier.empty()) {
    result.stats.frontierPeak =
        std::max<std::uint64_t>(result.stats.frontierPeak, frontier.size());
    result.stats.frontierPeakBytes = std::max<std::uint64_t>(
        result.stats.frontierPeakBytes, frontier.size() * sizeof(FrontierItem));
    // Memory budget (soft): when the resident visited set + frontier
    // bookkeeping cross the cap, switch the arenas to spill growth instead
    // of OOMing. Level boundaries are single-threaded, so no lock dance.
    if (!spilling && memBudget > 0) {
      const std::uint64_t resident = visited.residentBytes() +
                                     frontier.size() * sizeof(FrontierItem);
      if (resident > memBudget) {
        spilling = visited.enableSpill(spillDir);
        if (!spilling) {
          std::cerr << "warning: memory budget exceeded but spill unavailable "
                       "under '"
                    << spillDir << "'; continuing in RAM\n";
          memBudget = 0;  // do not retry every level
        }
      }
    }
    std::vector<FrontierItem> next;
    if (pool != nullptr && options.threads > 1 && frontier.size() > 1) {
      pool->parallelForRange(
          frontier.size(), [&](std::size_t begin, std::size_t end) {
            std::vector<FrontierItem> local;
            expandRange(begin, end, local);
            std::lock_guard<std::mutex> lock(accumMutex);
            for (auto& item : local) next.push_back(std::move(item));
          });
    } else {
      expandRange(0, frontier.size(), next);
    }
    frontier = std::move(next);
    if (options.stopOnViolation && !rawViolations.empty()) break;
  }

  result.stats.visited = visitedCount.load();
  result.stats.transitions = transitions.load();
  result.stats.dedupHits = dedupHits.load();
  result.stats.truncatedStates = truncatedStates.load();
  result.stats.terminalStates = terminalStates.load();
  result.stats.maxProgressCount = maxProgress;
  result.stats.depthReached = depthReached;
  result.stats.exhausted = !boundHit.load() && rawViolations.empty();
  result.stats.stateBytes = visited.storedBytes();
  result.stats.arenaBytes = visited.allocatedBytes();
  result.stats.residentBytes = visited.residentBytes();
  result.stats.spillBytes = visited.spillBytes();
  result.stats.spillActivated = spilling;
  result.stats.symCanonFolds = symCanonFolds.load();
  result.stats.amplePicks = amplePicks.load();
  result.stats.ampleFallbacks = ampleFallbacks.load();
  result.stats.peakRssBytes = processPeakRssBytes();

  // Deterministic violation order regardless of worker interleaving.
  std::sort(rawViolations.begin(), rawViolations.end(),
            [](const RawViolation& a, const RawViolation& b) {
              if (a.depth != b.depth) return a.depth < b.depth;
              if (a.hash != b.hash) return a.hash < b.hash;
              return a.what.kind < b.what.kind;
            });
  for (RawViolation& raw : rawViolations) {
    ExploreViolation violation;
    violation.kind = std::move(raw.what.kind);
    violation.message = std::move(raw.what.message);
    violation.depth = raw.depth;
    violation.rootIndex = raw.rootIndex;
    violation.rootState = starts[raw.rootIndex];
    violation.violatingState = std::move(raw.state);
    violation.stateHash = raw.hash;
    if (options.trackPaths) {
      // Walk the BFS tree back to the start state. Parent refs may differ
      // between runs (first-inserter-wins), but any recorded path is a
      // valid schedule of the same length (BFS depth is order-independent).
      std::uint64_t cursor = raw.ref;
      std::vector<const VisitedRecord*> chain;
      while (true) {
        const VisitedRecord& rec = visited.record(cursor);
        chain.push_back(&rec);
        if (rec.depth == 0) break;
        cursor = rec.parentRef;
      }
      std::reverse(chain.begin(), chain.end());  // root first
      if (!symActive) {
        for (std::size_t i = 1; i < chain.size(); ++i) {
          violation.path.push_back(chain[i]->move);
        }
      } else {
        // Gamma folding: stored moves live in each parent REPRESENTATIVE's
        // frame; conjugate step i by the inverse of the accumulated
        // canonicalizing permutation so the whole path replays from the
        // ROOT representative. gammaInv_0 = id; emitted move i =
        // gammaInv_{i-1}(move_i); gammaInv_i = gammaInv_{i-1} o sigma_i^-1.
        Perm gammaInv = identityPerm(group.front().size());
        for (std::size_t i = 1; i < chain.size(); ++i) {
          Move mapped;
          mapped.reserve(chain[i]->move.size());
          for (const StepSelection& sel : chain[i]->move) {
            mapped.push_back(model.permuteSelection(sel, gammaInv));
          }
          violation.path.push_back(std::move(mapped));
          gammaInv = composePerm(gammaInv, invertPerm(group[chain[i]->permIndex]));
        }
        // The replayable root is the ROOT REPRESENTATIVE, not the original
        // start: re-render the start through its canonicalizing sigma_0.
        if (chain.front()->permIndex != kIdentityPerm) {
          auto rootInst = model.load(starts[raw.rootIndex]);
          std::string repText;
          rootInst->encodePermutedState(group[chain.front()->permIndex],
                                        StateCodec::kText, repText);
          violation.rootState = std::move(repText);
        }
      }
      assert(violation.path.size() == violation.depth);
    }
    result.violations.push_back(std::move(violation));
  }
  return result;
}

void writeExploreJsonl(std::ostream& out, std::string_view modelName,
                       const ExploreOptions& options, const ExploreResult& result) {
  jsonl::Writer writer(out);
  {
    jsonl::Object o;
    o.field("record", "explore-stats");
    o.field("model", modelName);
    o.field("closure", toString(options.closure));
    o.field("codec", toString(result.stats.codecUsed));
    o.field("codec_fallback", result.stats.codecFellBack);
    o.field("reduction", toString(options.reduction));
    o.field("reduction_fallback", result.stats.reductionFellBack);
    // Effective store: a --mem-budget run that crossed the cap reports
    // spill even though it was requested as ram (matches the CLI table).
    o.field("store", toString(result.stats.spillActivated ? StoreKind::kSpill
                                                          : StoreKind::kRam));
    o.field("compress", options.compressStates);
    o.field("max_depth", static_cast<std::uint64_t>(options.maxDepth));
    o.field("max_states", static_cast<std::uint64_t>(options.maxStates));
    o.field("max_moves_per_state",
            static_cast<std::uint64_t>(options.maxMovesPerState));
    o.field("threads", static_cast<std::uint64_t>(options.threads));
    o.field("start_states", result.stats.startStates);
    o.field("visited", result.stats.visited);
    o.field("transitions", result.stats.transitions);
    o.field("dedup_hits", result.stats.dedupHits);
    o.field("frontier_peak", result.stats.frontierPeak);
    o.field("depth_reached", result.stats.depthReached);
    o.field("truncated_states", result.stats.truncatedStates);
    o.field("terminal_states", result.stats.terminalStates);
    o.field("max_progress", result.stats.maxProgressCount);
    o.field("state_bytes", result.stats.stateBytes);
    o.field("arena_bytes", result.stats.arenaBytes);
    o.field("resident_bytes", result.stats.residentBytes);
    o.field("spill_bytes", result.stats.spillBytes);
    o.field("frontier_peak_bytes", result.stats.frontierPeakBytes);
    o.field("peak_rss_bytes", result.stats.peakRssBytes);
    o.field("spill_activated", result.stats.spillActivated);
    o.field("sym_group", result.stats.symGroupSize);
    o.field("sym_folds", result.stats.symCanonFolds);
    o.field("ample_picks", result.stats.amplePicks);
    o.field("ample_fallbacks", result.stats.ampleFallbacks);
    o.field("exhausted", result.stats.exhausted);
    o.field("violations", static_cast<std::uint64_t>(result.violations.size()));
    writer.write(o);
  }
  for (const ExploreViolation& v : result.violations) {
    jsonl::Object o;
    o.field("record", "explore-violation");
    o.field("model", modelName);
    o.field("kind", v.kind);
    o.field("message", v.message);
    o.field("depth", v.depth);
    o.field("root_index", static_cast<std::uint64_t>(v.rootIndex));
    o.field("state_hash", v.stateHash);
    jsonl::Array path;
    for (const Move& move : v.path) {
      jsonl::Array step;
      for (const StepSelection& sel : move) {
        jsonl::Object s;
        s.field("p", static_cast<std::uint64_t>(sel.p));
        s.field("layer", static_cast<std::uint64_t>(sel.layer));
        s.field("rule", static_cast<std::uint64_t>(sel.action.rule));
        s.field("dest", static_cast<std::uint64_t>(sel.action.dest));
        s.field("aux", sel.action.aux);
        step.push(s);
      }
      path.push(step);
    }
    o.field("path", path);
    o.field("root_state", v.rootState);
    writer.write(o);
  }
}

}  // namespace snapfwd::explore
