#include "explore/explore.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <utility>

#include "explore/canon.hpp"
#include "stats/jsonl.hpp"
#include "util/thread_pool.hpp"

namespace snapfwd::explore {

namespace {

// ---------------------------------------------------------------------------
// Visited set: 64-way lock striping keyed on the state hash. Stores the BFS
// tree (parent hash + incoming move) for counterexample-path reconstruction.
// Equal hashes are treated as equal states - the standard hash-compaction
// tradeoff of explicit-state checking; with 64-bit FNV over the bounded
// instances explored here, collision probability is negligible.
// ---------------------------------------------------------------------------

struct VisitedEntry {
  std::uint64_t parentHash = 0;
  Move move;  // the step parent -> this (empty for start states)
  std::uint32_t rootIndex = 0;
  std::uint64_t depth = 0;
};

class VisitedSet {
 public:
  VisitedSet() : shards_(kShards) {}

  /// True iff `hash` was not present (first inserter wins; the losing
  /// entry is discarded).
  bool insert(std::uint64_t hash, VisitedEntry entry) {
    Shard& shard = shards_[shardOf(hash)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.map.emplace(hash, std::move(entry)).second;
  }

  [[nodiscard]] const VisitedEntry* find(std::uint64_t hash) {
    Shard& shard = shards_[shardOf(hash)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(hash);
    return it == shard.map.end() ? nullptr : &it->second;
  }

 private:
  static constexpr std::size_t kShards = 64;
  [[nodiscard]] static std::size_t shardOf(std::uint64_t hash) {
    return (hash >> 58) & (kShards - 1);  // top bits: FNV mixes them well
  }

  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, VisitedEntry> map;
  };
  std::vector<Shard> shards_;
};

struct FrontierItem {
  std::uint64_t hash = 0;
  std::string state;
  std::uint32_t rootIndex = 0;
  std::uint64_t depth = 0;
};

/// A violation as recorded during expansion, before path reconstruction.
struct RawViolation {
  ModelViolation what;
  std::uint64_t hash = 0;
  std::uint64_t depth = 0;
  std::uint32_t rootIndex = 0;
  std::string state;
};

/// Appends the action combinations of `entries` (one action per entry) to
/// `out` as moves, mixed-radix over the per-entry action counts.
void pushActionCombinations(const std::vector<const EnabledProcessor*>& entries,
                            std::size_t maxMoves, std::vector<Move>& out,
                            bool& truncated) {
  std::vector<std::size_t> radix(entries.size(), 0);
  while (true) {
    if (out.size() >= maxMoves) {
      truncated = true;
      return;
    }
    Move move;
    move.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      move.push_back({entries[i]->p, entries[i]->layer,
                      entries[i]->actions[radix[i]]});
    }
    out.push_back(std::move(move));
    // Odometer increment.
    std::size_t i = 0;
    for (; i < entries.size(); ++i) {
      if (++radix[i] < entries[i]->actions.size()) break;
      radix[i] = 0;
    }
    if (i == entries.size()) return;
  }
}

}  // namespace

void enumerateMovesFromEnabled(const std::vector<EnabledProcessor>& enabled,
                               DaemonClosure closure, std::size_t maxMoves,
                               std::vector<Move>& out, bool& truncated) {
  out.clear();
  truncated = false;
  if (enabled.empty()) return;
  switch (closure) {
    case DaemonClosure::kCentral: {
      for (const EnabledProcessor& e : enabled) {
        for (const Action& a : e.actions) {
          if (out.size() >= maxMoves) {
            truncated = true;
            return;
          }
          out.push_back({StepSelection{e.p, e.layer, a}});
        }
      }
      return;
    }
    case DaemonClosure::kSynchronous: {
      std::vector<const EnabledProcessor*> all;
      all.reserve(enabled.size());
      for (const EnabledProcessor& e : enabled) all.push_back(&e);
      pushActionCombinations(all, maxMoves, out, truncated);
      return;
    }
    case DaemonClosure::kDistributed: {
      // Every non-empty subset of enabled processors. Beyond 20 processors
      // the 2^k masks cannot fit any sane move bound anyway; cap the mask
      // width and report truncation.
      constexpr std::size_t kMaxSubsetBits = 20;
      const std::size_t k = enabled.size();
      if (k > kMaxSubsetBits) truncated = true;
      const std::size_t bits = std::min(k, kMaxSubsetBits);
      std::vector<const EnabledProcessor*> subset;
      for (std::uint64_t mask = 1; mask < (1ull << bits); ++mask) {
        subset.clear();
        for (std::size_t i = 0; i < bits; ++i) {
          if (mask & (1ull << i)) subset.push_back(&enabled[i]);
        }
        pushActionCombinations(subset, maxMoves, out, truncated);
        if (truncated) return;
      }
      return;
    }
  }
}

ExploreResult explore(const ExploreModel& model, const ExploreOptions& options,
                      ThreadPool* pool) {
  ExploreResult result;
  VisitedSet visited;
  std::vector<FrontierItem> frontier;
  std::vector<RawViolation> rawViolations;
  std::mutex accumMutex;  // guards frontier-builder + rawViolations + maxima

  std::atomic<std::uint64_t> visitedCount{0};
  std::atomic<std::uint64_t> transitions{0};
  std::atomic<std::uint64_t> dedupHits{0};
  std::atomic<std::uint64_t> truncatedStates{0};
  std::atomic<std::uint64_t> terminalStates{0};
  std::atomic<bool> boundHit{false};
  std::uint64_t maxProgress = 0;
  std::uint64_t depthReached = 0;

  const std::vector<std::string>& starts = model.startStates();
  result.stats.startStates = starts.size();

  // Seed level 0: dedupe the start set itself and run the state checks on
  // every distinct start.
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const std::uint64_t h = hash64(starts[i]);
    VisitedEntry entry;
    entry.parentHash = h;
    entry.rootIndex = static_cast<std::uint32_t>(i);
    entry.depth = 0;
    if (!visited.insert(h, std::move(entry))) {
      ++dedupHits;
      continue;
    }
    ++visitedCount;
    auto inst = model.load(starts[i]);
    maxProgress = std::max(maxProgress, inst->progressCount());
    if (auto v = inst->checkState()) {
      rawViolations.push_back(
          {std::move(*v), h, 0, static_cast<std::uint32_t>(i), starts[i]});
      continue;
    }
    frontier.push_back({h, starts[i], static_cast<std::uint32_t>(i), 0});
  }

  const auto expandItem = [&](const FrontierItem& item,
                              std::vector<FrontierItem>& next) {
    auto inst = model.load(item.state);
    std::vector<Move> moves;
    bool truncated = false;
    inst->enumerateMoves(options.closure, options.maxMovesPerState, moves,
                         truncated);
    if (truncated) {
      ++truncatedStates;
      boundHit = true;
    }
    if (moves.empty()) {
      ++terminalStates;
      if (auto v = inst->checkTerminal()) {
        std::lock_guard<std::mutex> lock(accumMutex);
        rawViolations.push_back(
            {std::move(*v), item.hash, item.depth, item.rootIndex, item.state});
      }
      return;
    }
    for (const Move& move : moves) {
      ++transitions;
      auto child = model.load(item.state);
      const bool applied = child->apply(move);
      assert(applied);
      if (!applied) continue;
      std::string text = child->serialize();
      const std::uint64_t h = hash64(text);
      VisitedEntry entry;
      entry.parentHash = item.hash;
      entry.move = move;
      entry.rootIndex = item.rootIndex;
      entry.depth = item.depth + 1;
      if (!visited.insert(h, std::move(entry))) {
        ++dedupHits;
        continue;
      }
      ++visitedCount;
      const std::uint64_t progress = child->progressCount();
      auto v = child->checkState();
      std::lock_guard<std::mutex> lock(accumMutex);
      depthReached = std::max(depthReached, item.depth + 1);
      maxProgress = std::max(maxProgress, progress);
      if (v) {
        rawViolations.push_back(
            {std::move(*v), h, item.depth + 1, item.rootIndex, std::move(text)});
        continue;  // violating states are not expanded further
      }
      if (item.depth + 1 >= options.maxDepth) {
        boundHit = true;
        continue;
      }
      if (visitedCount.load() > options.maxStates) {
        boundHit = true;
        continue;
      }
      next.push_back({h, std::move(text), item.rootIndex, item.depth + 1});
    }
  };

  while (!frontier.empty()) {
    result.stats.frontierPeak =
        std::max<std::uint64_t>(result.stats.frontierPeak, frontier.size());
    std::vector<FrontierItem> next;
    if (pool != nullptr && options.threads > 1 && frontier.size() > 1) {
      pool->parallelForRange(
          frontier.size(), [&](std::size_t begin, std::size_t end) {
            std::vector<FrontierItem> local;
            for (std::size_t i = begin; i < end; ++i) {
              expandItem(frontier[i], local);
            }
            std::lock_guard<std::mutex> lock(accumMutex);
            for (auto& item : local) next.push_back(std::move(item));
          });
    } else {
      for (const FrontierItem& item : frontier) expandItem(item, next);
    }
    frontier = std::move(next);
    if (options.stopOnViolation && !rawViolations.empty()) break;
  }

  result.stats.visited = visitedCount.load();
  result.stats.transitions = transitions.load();
  result.stats.dedupHits = dedupHits.load();
  result.stats.truncatedStates = truncatedStates.load();
  result.stats.terminalStates = terminalStates.load();
  result.stats.maxProgressCount = maxProgress;
  result.stats.depthReached = depthReached;
  result.stats.exhausted = !boundHit.load() && rawViolations.empty();

  // Deterministic violation order regardless of worker interleaving.
  std::sort(rawViolations.begin(), rawViolations.end(),
            [](const RawViolation& a, const RawViolation& b) {
              if (a.depth != b.depth) return a.depth < b.depth;
              if (a.hash != b.hash) return a.hash < b.hash;
              return a.what.kind < b.what.kind;
            });
  for (RawViolation& raw : rawViolations) {
    ExploreViolation violation;
    violation.kind = std::move(raw.what.kind);
    violation.message = std::move(raw.what.message);
    violation.depth = raw.depth;
    violation.rootIndex = raw.rootIndex;
    violation.rootState = starts[raw.rootIndex];
    violation.violatingState = std::move(raw.state);
    violation.stateHash = raw.hash;
    // Walk the BFS tree back to the start state. Parent pointers may differ
    // between runs (first-inserter-wins), but any recorded path is a valid
    // schedule of the same length (BFS depth is order-independent).
    std::uint64_t cursor = raw.hash;
    while (true) {
      const VisitedEntry* entry = visited.find(cursor);
      assert(entry != nullptr);
      if (entry == nullptr || entry->depth == 0) break;
      violation.path.push_back(entry->move);
      cursor = entry->parentHash;
    }
    std::reverse(violation.path.begin(), violation.path.end());
    assert(violation.path.size() == violation.depth);
    result.violations.push_back(std::move(violation));
  }
  return result;
}

void writeExploreJsonl(std::ostream& out, std::string_view modelName,
                       const ExploreOptions& options, const ExploreResult& result) {
  jsonl::Writer writer(out);
  {
    jsonl::Object o;
    o.field("record", "explore-stats");
    o.field("model", modelName);
    o.field("closure", toString(options.closure));
    o.field("max_depth", static_cast<std::uint64_t>(options.maxDepth));
    o.field("max_states", static_cast<std::uint64_t>(options.maxStates));
    o.field("max_moves_per_state",
            static_cast<std::uint64_t>(options.maxMovesPerState));
    o.field("threads", static_cast<std::uint64_t>(options.threads));
    o.field("start_states", result.stats.startStates);
    o.field("visited", result.stats.visited);
    o.field("transitions", result.stats.transitions);
    o.field("dedup_hits", result.stats.dedupHits);
    o.field("frontier_peak", result.stats.frontierPeak);
    o.field("depth_reached", result.stats.depthReached);
    o.field("truncated_states", result.stats.truncatedStates);
    o.field("terminal_states", result.stats.terminalStates);
    o.field("max_progress", result.stats.maxProgressCount);
    o.field("exhausted", result.stats.exhausted);
    o.field("violations", static_cast<std::uint64_t>(result.violations.size()));
    writer.write(o);
  }
  for (const ExploreViolation& v : result.violations) {
    jsonl::Object o;
    o.field("record", "explore-violation");
    o.field("model", modelName);
    o.field("kind", v.kind);
    o.field("message", v.message);
    o.field("depth", v.depth);
    o.field("root_index", static_cast<std::uint64_t>(v.rootIndex));
    o.field("state_hash", v.stateHash);
    jsonl::Array path;
    for (const Move& move : v.path) {
      jsonl::Array step;
      for (const StepSelection& sel : move) {
        jsonl::Object s;
        s.field("p", static_cast<std::uint64_t>(sel.p));
        s.field("layer", static_cast<std::uint64_t>(sel.layer));
        s.field("rule", static_cast<std::uint64_t>(sel.action.rule));
        s.field("dest", static_cast<std::uint64_t>(sel.action.dest));
        s.field("aux", sel.action.aux);
        step.push(s);
      }
      path.push(step);
    }
    o.field("path", path);
    o.field("root_state", v.rootState);
    writer.write(o);
  }
}

}  // namespace snapfwd::explore
