#include "explore/explore.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <iostream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "explore/canon.hpp"
#include "stats/jsonl.hpp"
#include "util/arena.hpp"
#include "util/thread_pool.hpp"

namespace snapfwd::explore {

void ModelInstance::encodeState(std::string&) {
  throw std::logic_error("ModelInstance::encodeState: binary codec unsupported");
}

void ModelInstance::restoreState(std::string_view) {
  throw std::logic_error("ModelInstance::restoreState: binary codec unsupported");
}

void ModelInstance::undoToRestored() {
  throw std::logic_error("ModelInstance::undoToRestored: binary codec unsupported");
}

namespace {

// ---------------------------------------------------------------------------
// Visited set: 64-way lock striping keyed on the state hash. Each shard
// owns a ByteArena; a state's encoded bytes are interned exactly once and
// every later structure (records, frontier, dedup compares) works on
// stable string_view handles into the arenas instead of owning strings.
// Dedup is hash + byte-compare with per-hash collision chaining, so equal
// hashes of DIFFERENT states never merge (unlike classic hash compaction).
// Records double as the BFS tree (parent ref + incoming move) for
// counterexample-path reconstruction.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kNoRecord = 0xFFFF'FFFFu;
constexpr std::uint64_t kNoRef = UINT64_MAX;

struct VisitedRecord {
  std::string_view bytes;  // arena-interned encoded state
  Move move;               // the step parent -> this (empty for start states)
  std::uint64_t parentRef = kNoRef;
  std::uint64_t depth = 0;
  std::uint32_t rootIndex = 0;
  std::uint32_t nextSameHash = kNoRecord;  // collision chain within the shard
};

class VisitedSet {
 public:
  VisitedSet() : shards_(kShards) {}

  struct InsertResult {
    std::uint64_t ref = kNoRef;    // stable handle: shard << 32 | record index
    std::string_view bytes;        // the interned copy (arena-stable)
    bool fresh = false;            // first inserter wins
  };

  /// Interns `bytes` if no record in the hash's chain byte-compares equal.
  /// The losing inserter's `move` is not consumed.
  InsertResult insert(std::uint64_t hash, std::string_view bytes, Move&& move,
                      std::uint64_t parentRef, std::uint32_t rootIndex,
                      std::uint64_t depth) {
    const std::size_t s = shardOf(hash);
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto [it, firstOfHash] = shard.index.try_emplace(hash, kNoRecord);
    if (!firstOfHash) {
      std::uint32_t idx = it->second;
      while (true) {
        VisitedRecord& rec = shard.records[idx];
        if (rec.bytes == bytes) return {makeRef(s, idx), rec.bytes, false};
        if (rec.nextSameHash == kNoRecord) break;
        idx = rec.nextSameHash;
      }
      const std::uint32_t fresh =
          appendLocked(shard, bytes, std::move(move), parentRef, rootIndex, depth);
      shard.records[idx].nextSameHash = fresh;
      return {makeRef(s, fresh), shard.records[fresh].bytes, true};
    }
    const std::uint32_t fresh =
        appendLocked(shard, bytes, std::move(move), parentRef, rootIndex, depth);
    it->second = fresh;
    return {makeRef(s, fresh), shard.records[fresh].bytes, true};
  }

  /// Record lookup by ref. Not synchronized: call only after expansion has
  /// quiesced (path reconstruction) or for refs this thread inserted.
  [[nodiscard]] const VisitedRecord& record(std::uint64_t ref) const {
    return shards_[ref >> 32].records[static_cast<std::uint32_t>(ref)];
  }

  [[nodiscard]] std::uint64_t storedBytes() const {
    std::uint64_t sum = 0;
    for (const Shard& shard : shards_) sum += shard.arena.storedBytes();
    return sum;
  }
  [[nodiscard]] std::uint64_t allocatedBytes() const {
    std::uint64_t sum = 0;
    for (const Shard& shard : shards_) sum += shard.arena.allocatedBytes();
    return sum;
  }

 private:
  static constexpr std::size_t kShards = 64;
  [[nodiscard]] static std::size_t shardOf(std::uint64_t hash) {
    return (hash >> 58) & (kShards - 1);  // top bits: FNV mixes them well
  }
  [[nodiscard]] static std::uint64_t makeRef(std::size_t shard,
                                             std::uint32_t idx) {
    return (static_cast<std::uint64_t>(shard) << 32) | idx;
  }

  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, std::uint32_t> index;  // hash -> chain head
    std::vector<VisitedRecord> records;
    ByteArena arena;
  };

  static std::uint32_t appendLocked(Shard& shard, std::string_view bytes,
                                    Move&& move, std::uint64_t parentRef,
                                    std::uint32_t rootIndex,
                                    std::uint64_t depth) {
    VisitedRecord rec;
    rec.bytes = shard.arena.intern(bytes);
    rec.move = std::move(move);
    rec.parentRef = parentRef;
    rec.rootIndex = rootIndex;
    rec.depth = depth;
    shard.records.push_back(std::move(rec));
    return static_cast<std::uint32_t>(shard.records.size() - 1);
  }

  std::vector<Shard> shards_;
};

/// Frontier entries borrow the visited set's interned bytes - no owned
/// strings cross BFS levels (the level barrier orders arena publication
/// before consumption; within a level the shard mutex does).
struct FrontierItem {
  std::uint64_t ref = kNoRef;
  std::string_view bytes;
  std::uint32_t rootIndex = 0;
  std::uint64_t depth = 0;
};

/// A violation as recorded during expansion, before path reconstruction.
/// `state` is always canonical TEXT (recovered via serialize() at detection
/// time), whatever codec the run stores.
struct RawViolation {
  ModelViolation what;
  std::uint64_t ref = kNoRef;
  std::uint64_t hash = 0;
  std::uint64_t depth = 0;
  std::uint32_t rootIndex = 0;
  std::string state;
};

/// Free-list of live instances for the delta-stepping path: one instance
/// per concurrently-expanding worker, reused across the whole run (the
/// whole point - instance construction is the textual path's hot cost).
class InstancePool {
 public:
  InstancePool(const ExploreModel& model, const std::string& seedState)
      : model_(model), seedState_(seedState) {}

  [[nodiscard]] std::unique_ptr<ModelInstance> acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        auto inst = std::move(free_.back());
        free_.pop_back();
        return inst;
      }
    }
    return model_.load(seedState_);
  }

  void release(std::unique_ptr<ModelInstance> inst) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(inst));
  }

 private:
  const ExploreModel& model_;
  const std::string& seedState_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<ModelInstance>> free_;
};

/// Appends the action combinations of `entries` (one action per entry) to
/// `out` as moves, mixed-radix over the per-entry action counts.
void pushActionCombinations(const std::vector<const EnabledProcessor*>& entries,
                            std::size_t maxMoves, std::vector<Move>& out,
                            bool& truncated) {
  std::vector<std::size_t> radix(entries.size(), 0);
  while (true) {
    if (out.size() >= maxMoves) {
      truncated = true;
      return;
    }
    Move move;
    move.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      move.push_back({entries[i]->p, entries[i]->layer,
                      entries[i]->actions[radix[i]]});
    }
    out.push_back(std::move(move));
    // Odometer increment.
    std::size_t i = 0;
    for (; i < entries.size(); ++i) {
      if (++radix[i] < entries[i]->actions.size()) break;
      radix[i] = 0;
    }
    if (i == entries.size()) return;
  }
}

}  // namespace

void enumerateMovesFromEnabled(const std::vector<EnabledProcessor>& enabled,
                               DaemonClosure closure, std::size_t maxMoves,
                               std::vector<Move>& out, bool& truncated) {
  out.clear();
  truncated = false;
  if (enabled.empty()) return;
  switch (closure) {
    case DaemonClosure::kCentral: {
      for (const EnabledProcessor& e : enabled) {
        for (const Action& a : e.actions) {
          if (out.size() >= maxMoves) {
            truncated = true;
            return;
          }
          out.push_back({StepSelection{e.p, e.layer, a}});
        }
      }
      return;
    }
    case DaemonClosure::kSynchronous: {
      std::vector<const EnabledProcessor*> all;
      all.reserve(enabled.size());
      for (const EnabledProcessor& e : enabled) all.push_back(&e);
      pushActionCombinations(all, maxMoves, out, truncated);
      return;
    }
    case DaemonClosure::kDistributed: {
      // Every non-empty subset of enabled processors. Beyond 20 processors
      // the 2^k masks cannot fit any sane move bound anyway; cap the mask
      // width and report truncation.
      constexpr std::size_t kMaxSubsetBits = 20;
      const std::size_t k = enabled.size();
      if (k > kMaxSubsetBits) truncated = true;
      const std::size_t bits = std::min(k, kMaxSubsetBits);
      std::vector<const EnabledProcessor*> subset;
      for (std::uint64_t mask = 1; mask < (1ull << bits); ++mask) {
        subset.clear();
        for (std::size_t i = 0; i < bits; ++i) {
          if (mask & (1ull << i)) subset.push_back(&enabled[i]);
        }
        pushActionCombinations(subset, maxMoves, out, truncated);
        if (truncated) return;
      }
      return;
    }
  }
}

ExploreResult explore(const ExploreModel& model, const ExploreOptions& options,
                      ThreadPool* pool) {
  ExploreResult result;
  VisitedSet visited;
  std::vector<FrontierItem> frontier;
  std::vector<RawViolation> rawViolations;
  std::mutex accumMutex;  // guards frontier-builder + rawViolations + maxima

  std::atomic<std::uint64_t> visitedCount{0};
  std::atomic<std::uint64_t> transitions{0};
  std::atomic<std::uint64_t> dedupHits{0};
  std::atomic<std::uint64_t> truncatedStates{0};
  std::atomic<std::uint64_t> terminalStates{0};
  std::atomic<bool> boundHit{false};
  std::uint64_t maxProgress = 0;
  std::uint64_t depthReached = 0;

  const std::vector<std::string>& starts = model.startStates();
  result.stats.startStates = starts.size();

  // Resolve the codec: kBinary needs instance support; otherwise fall back
  // to the textual path (counts are identical either way, but the caller
  // asked for the fast path and should hear that it did not run).
  StateCodec codec = options.codec;
  if (codec == StateCodec::kBinary &&
      (starts.empty() || !model.load(starts.front())->supportsBinaryCodec())) {
    codec = StateCodec::kText;
    result.stats.codecFellBack = true;
    std::cerr << "warning: model '" << model.name()
              << "' has no binary state codec; --state-codec=binary fell "
                 "back to text\n";
  }
  result.stats.codecUsed = codec;

  // Seed level 0: dedupe the start set itself and run the state checks on
  // every distinct start. Serial; instances are loaded per start anyway.
  std::string seedScratch;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    std::unique_ptr<ModelInstance> inst;
    std::string_view bytes;
    if (codec == StateCodec::kBinary) {
      inst = model.load(starts[i]);
      seedScratch.clear();
      inst->encodeState(seedScratch);
      bytes = seedScratch;
    } else {
      bytes = starts[i];
    }
    const std::uint64_t h = hash64(bytes);
    const auto ins = visited.insert(h, bytes, Move{}, kNoRef,
                                    static_cast<std::uint32_t>(i), 0);
    if (!ins.fresh) {
      ++dedupHits;
      continue;
    }
    ++visitedCount;
    if (inst == nullptr) inst = model.load(starts[i]);
    maxProgress = std::max(maxProgress, inst->progressCount());
    if (auto v = inst->checkState()) {
      rawViolations.push_back(
          {std::move(*v), ins.ref, h, 0, static_cast<std::uint32_t>(i), starts[i]});
      continue;
    }
    frontier.push_back({ins.ref, ins.bytes, static_cast<std::uint32_t>(i), 0});
  }

  // One successor's bookkeeping after its state has been encoded into
  // `bytes`: insert, count, check, and queue. `violText` must already hold
  // the canonical text when `v` is set. Returns under accumMutex.
  const auto recordChild = [&](const FrontierItem& item,
                               std::optional<ModelViolation>&& v,
                               std::uint64_t progress, std::string&& violText,
                               std::vector<FrontierItem>& next,
                               const VisitedSet::InsertResult& ins,
                               std::uint64_t h) {
    std::lock_guard<std::mutex> lock(accumMutex);
    depthReached = std::max(depthReached, item.depth + 1);
    maxProgress = std::max(maxProgress, progress);
    if (v) {
      rawViolations.push_back({std::move(*v), ins.ref, h, item.depth + 1,
                               item.rootIndex, std::move(violText)});
      return;  // violating states are not expanded further
    }
    if (item.depth + 1 >= options.maxDepth) {
      boundHit = true;
      return;
    }
    if (visitedCount.load() > options.maxStates) {
      boundHit = true;
      return;
    }
    next.push_back({ins.ref, ins.bytes, item.rootIndex, item.depth + 1});
  };

  // Textual path: the PR-4 semantics - one instance to enumerate, one
  // fresh instance per successor, full canonical re-serialization.
  const auto expandItemText = [&](const FrontierItem& item,
                                  std::vector<FrontierItem>& next) {
    const std::string parentText(item.bytes);
    auto inst = model.load(parentText);
    std::vector<Move> moves;
    bool truncated = false;
    inst->enumerateMoves(options.closure, options.maxMovesPerState, moves,
                         truncated);
    if (truncated) {
      ++truncatedStates;
      boundHit = true;
    }
    if (moves.empty()) {
      ++terminalStates;
      if (auto v = inst->checkTerminal()) {
        std::lock_guard<std::mutex> lock(accumMutex);
        rawViolations.push_back({std::move(*v), item.ref, hash64(item.bytes),
                                 item.depth, item.rootIndex, parentText});
      }
      return;
    }
    for (Move& move : moves) {
      ++transitions;
      auto child = model.load(parentText);
      const bool applied = child->apply(move);
      assert(applied);
      if (!applied) continue;
      std::string text = child->serialize();
      const std::uint64_t h = hash64(text);
      auto ins = visited.insert(h, text, std::move(move), item.ref,
                                item.rootIndex, item.depth + 1);
      if (!ins.fresh) {
        ++dedupHits;
        continue;
      }
      ++visitedCount;
      const std::uint64_t progress = child->progressCount();
      auto v = child->checkState();
      recordChild(item, std::move(v), progress, std::move(text), next, ins, h);
    }
  };

  // Binary path: fork-from-parent delta stepping. One live instance per
  // worker, decoded once per parent; each successor is apply -> encode ->
  // undo over the engine's commit write set.
  const std::string poolSeed = starts.empty() ? std::string() : starts.front();
  InstancePool instances(model, poolSeed);
  const auto expandItemBinary = [&](const FrontierItem& item,
                                    std::vector<FrontierItem>& next,
                                    ModelInstance& inst, std::string& scratch,
                                    std::vector<Move>& moves) {
    inst.restoreState(item.bytes);
    bool truncated = false;
    inst.enumerateMoves(options.closure, options.maxMovesPerState, moves,
                        truncated);
    if (truncated) {
      ++truncatedStates;
      boundHit = true;
    }
    if (moves.empty()) {
      ++terminalStates;
      if (auto v = inst.checkTerminal()) {
        std::string text = inst.serialize();
        std::lock_guard<std::mutex> lock(accumMutex);
        rawViolations.push_back({std::move(*v), item.ref, hash64(item.bytes),
                                 item.depth, item.rootIndex, std::move(text)});
      }
      return;
    }
    for (Move& move : moves) {
      ++transitions;
      const bool applied = inst.apply(move);
      assert(applied);
      if (!applied) continue;  // not enabled here: state unchanged, no undo
      scratch.clear();
      inst.encodeState(scratch);
      const std::uint64_t h = hash64(scratch);
      auto ins = visited.insert(h, scratch, std::move(move), item.ref,
                                item.rootIndex, item.depth + 1);
      if (!ins.fresh) {
        ++dedupHits;
        inst.undoToRestored();
        continue;
      }
      ++visitedCount;
      const std::uint64_t progress = inst.progressCount();
      auto v = inst.checkState();
      // The counterexample report needs the canonical text; recover it now,
      // while the instance still holds the violating configuration.
      std::string violText;
      if (v) violText = inst.serialize();
      inst.undoToRestored();
      recordChild(item, std::move(v), progress, std::move(violText), next, ins,
                  h);
    }
  };

  // Per-worker expansion over an index range (binary path acquires its
  // live instance + scratch once per range, not per item).
  const auto expandRange = [&](std::size_t begin, std::size_t end,
                               std::vector<FrontierItem>& next) {
    if (codec == StateCodec::kBinary) {
      auto inst = instances.acquire();
      std::string scratch;
      std::vector<Move> moves;
      for (std::size_t i = begin; i < end; ++i) {
        expandItemBinary(frontier[i], next, *inst, scratch, moves);
      }
      instances.release(std::move(inst));
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        expandItemText(frontier[i], next);
      }
    }
  };

  while (!frontier.empty()) {
    result.stats.frontierPeak =
        std::max<std::uint64_t>(result.stats.frontierPeak, frontier.size());
    std::vector<FrontierItem> next;
    if (pool != nullptr && options.threads > 1 && frontier.size() > 1) {
      pool->parallelForRange(
          frontier.size(), [&](std::size_t begin, std::size_t end) {
            std::vector<FrontierItem> local;
            expandRange(begin, end, local);
            std::lock_guard<std::mutex> lock(accumMutex);
            for (auto& item : local) next.push_back(std::move(item));
          });
    } else {
      expandRange(0, frontier.size(), next);
    }
    frontier = std::move(next);
    if (options.stopOnViolation && !rawViolations.empty()) break;
  }

  result.stats.visited = visitedCount.load();
  result.stats.transitions = transitions.load();
  result.stats.dedupHits = dedupHits.load();
  result.stats.truncatedStates = truncatedStates.load();
  result.stats.terminalStates = terminalStates.load();
  result.stats.maxProgressCount = maxProgress;
  result.stats.depthReached = depthReached;
  result.stats.exhausted = !boundHit.load() && rawViolations.empty();
  result.stats.stateBytes = visited.storedBytes();
  result.stats.arenaBytes = visited.allocatedBytes();

  // Deterministic violation order regardless of worker interleaving.
  std::sort(rawViolations.begin(), rawViolations.end(),
            [](const RawViolation& a, const RawViolation& b) {
              if (a.depth != b.depth) return a.depth < b.depth;
              if (a.hash != b.hash) return a.hash < b.hash;
              return a.what.kind < b.what.kind;
            });
  for (RawViolation& raw : rawViolations) {
    ExploreViolation violation;
    violation.kind = std::move(raw.what.kind);
    violation.message = std::move(raw.what.message);
    violation.depth = raw.depth;
    violation.rootIndex = raw.rootIndex;
    violation.rootState = starts[raw.rootIndex];
    violation.violatingState = std::move(raw.state);
    violation.stateHash = raw.hash;
    // Walk the BFS tree back to the start state. Parent refs may differ
    // between runs (first-inserter-wins), but any recorded path is a valid
    // schedule of the same length (BFS depth is order-independent).
    std::uint64_t cursor = raw.ref;
    while (true) {
      const VisitedRecord& rec = visited.record(cursor);
      if (rec.depth == 0) break;
      violation.path.push_back(rec.move);
      cursor = rec.parentRef;
    }
    std::reverse(violation.path.begin(), violation.path.end());
    assert(violation.path.size() == violation.depth);
    result.violations.push_back(std::move(violation));
  }
  return result;
}

void writeExploreJsonl(std::ostream& out, std::string_view modelName,
                       const ExploreOptions& options, const ExploreResult& result) {
  jsonl::Writer writer(out);
  {
    jsonl::Object o;
    o.field("record", "explore-stats");
    o.field("model", modelName);
    o.field("closure", toString(options.closure));
    o.field("codec", toString(result.stats.codecUsed));
    o.field("codec_fallback", result.stats.codecFellBack);
    o.field("max_depth", static_cast<std::uint64_t>(options.maxDepth));
    o.field("max_states", static_cast<std::uint64_t>(options.maxStates));
    o.field("max_moves_per_state",
            static_cast<std::uint64_t>(options.maxMovesPerState));
    o.field("threads", static_cast<std::uint64_t>(options.threads));
    o.field("start_states", result.stats.startStates);
    o.field("visited", result.stats.visited);
    o.field("transitions", result.stats.transitions);
    o.field("dedup_hits", result.stats.dedupHits);
    o.field("frontier_peak", result.stats.frontierPeak);
    o.field("depth_reached", result.stats.depthReached);
    o.field("truncated_states", result.stats.truncatedStates);
    o.field("terminal_states", result.stats.terminalStates);
    o.field("max_progress", result.stats.maxProgressCount);
    o.field("state_bytes", result.stats.stateBytes);
    o.field("arena_bytes", result.stats.arenaBytes);
    o.field("exhausted", result.stats.exhausted);
    o.field("violations", static_cast<std::uint64_t>(result.violations.size()));
    writer.write(o);
  }
  for (const ExploreViolation& v : result.violations) {
    jsonl::Object o;
    o.field("record", "explore-violation");
    o.field("model", modelName);
    o.field("kind", v.kind);
    o.field("message", v.message);
    o.field("depth", v.depth);
    o.field("root_index", static_cast<std::uint64_t>(v.rootIndex));
    o.field("state_hash", v.stateHash);
    jsonl::Array path;
    for (const Move& move : v.path) {
      jsonl::Array step;
      for (const StepSelection& sel : move) {
        jsonl::Object s;
        s.field("p", static_cast<std::uint64_t>(sel.p));
        s.field("layer", static_cast<std::uint64_t>(sel.layer));
        s.field("rule", static_cast<std::uint64_t>(sel.action.rule));
        s.field("dest", static_cast<std::uint64_t>(sel.action.dest));
        s.field("aux", sel.action.aux);
        step.push(s);
      }
      path.push(step);
    }
    o.field("path", path);
    o.field("root_state", v.rootState);
    writer.write(o);
  }
}

}  // namespace snapfwd::explore
