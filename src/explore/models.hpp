#pragma once
// Explorable models: protocol stacks adapted to the ExploreModel /
// ModelInstance interface of explore.hpp, with their safety monitors and
// start-set generators.
//
//   SsmfpExploreModel - the full SSMFP stack (SelfStabBfsRouting priority
//     layer + SsmfpProtocol) driven through a real Engine, so exploration
//     exercises exactly the code paths the simulator runs (including audit
//     mode when enabled). State = normalized snapshot text + monitor tail
//     (outstanding valid traces, invalid-delivery count). Checked at every
//     state: buffer well-formedness, single emission copy per valid trace,
//     conservation of outstanding traces, caterpillar coverage, exactly-
//     once / right-node delivery (detected at the delivering step), and
//     terminal-state drain.
//
//   PifExploreModel - the snap-stabilizing PIF protocol on a rooted tree.
//     State = pif canon text + wave monitor (wave-active flag,
//     participation bitmask, invalid-completion count). Checked: every
//     completion of a started wave has full participation, at most one
//     completion ever lacks a starting action, and terminal states are
//     all-clean with no pending request.
//
// Start-set generators implement the "corruption closure" methodology:
// explore from EVERY single-variable corruption of a base configuration
// (the tractable stand-in for the paper's "arbitrary initial
// configuration" quantifier - single-variable faults plus exhaustive
// scheduling already falsify every guard weakening we can plant).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "explore/explore.hpp"
#include "graph/graph.hpp"
#include "sim/shrink.hpp"
#include "ssmfp/ssmfp.hpp"
#include "ssmfp2/ssmfp2.hpp"

namespace snapfwd {
class SelfStabBfsRouting;
class PifProtocol;
}  // namespace snapfwd

namespace snapfwd::explore {

/// Parameters of the scalable odd-ring corruption closure
/// (SsmfpExploreModel::ringScaleClosure) - the start set the 10^7-state
/// scale runs explore with symmetry + POR + spill enabled.
///
/// The ring must be ODD: on an even ring the min-id parent tie-break of
/// the routing layer actually ties at antipodal pairs and breaks
/// equivariance; on an odd ring shortest paths are unique, so the correct
/// tables (which this closure never corrupts - only messages and queues)
/// relabel exactly under the full dihedral group.
struct RingScaleSpec {
  /// Ring size; odd, >= 3. Every node is a destination (the paper's "all
  /// of I" setting), so the whole dihedral group D_n stabilizes the
  /// destination set.
  std::size_t n = 5;
  /// 0 = single-corruption starts only. k >= 1 additionally plants every
  /// k-th PAIR of single garbage corruptions (lexicographic pair order) -
  /// the axis that scales the closure from ~10^5 into the 10^7..10^8 range.
  std::size_t pairStride = 0;
  /// Same for corruption TRIPLES (coarser; combinatorially enormous, keep
  /// the stride large).
  std::size_t tripleStride = 0;
  /// Queue one pending valid send (payload 100) before corrupting - the
  /// mutation differentials need a valid message in flight for R2/R4
  /// weakenings to misdeliver.
  bool withSend = false;
  /// Close the start set under the ring's dihedral group (every start also
  /// planted in all its relabeled images). The default single-corruption
  /// set is NOT orbit-closed - the fairness queues' base order relabels to
  /// orders no other start has - so without this the symmetry quotient
  /// relabels representatives but folds nothing. With it, the unreduced
  /// space grows ~|G| = 2n while the quotient stays put: the compression
  /// the symmetry differentials pin.
  bool orbitClose = false;
  SsmfpGuardMutation mutation = SsmfpGuardMutation::kNone;
};

class SsmfpExploreModel final : public ExploreModel {
 public:
  /// `startStates` must be texts produced by canonicalStart() (or instance
  /// serialize()). `mutation` is planted into every loaded instance - the
  /// mutation smoke test explores a deliberately broken protocol.
  explicit SsmfpExploreModel(std::vector<std::string> startStates,
                             SsmfpGuardMutation mutation = SsmfpGuardMutation::kNone,
                             std::string name = "ssmfp");

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] const std::vector<std::string>& startStates() const override {
    return starts_;
  }
  [[nodiscard]] std::unique_ptr<ModelInstance> load(
      const std::string& state) const override;

  [[nodiscard]] SsmfpGuardMutation mutation() const { return mutation_; }

  /// Canonical start text for a live stack with no execution history yet
  /// (empty monitor: nothing outstanding, no invalid deliveries).
  [[nodiscard]] static std::string canonicalStart(const Graph& graph,
                                                  const SelfStabBfsRouting& routing,
                                                  const SsmfpProtocol& forwarding);

  /// The Figure 2 instance (network N of the paper's worked example:
  /// a-b, a-c, a-d, c-b; destination b; c sends m=100 to b) started from
  /// the base configuration plus EVERY single-variable corruption of it:
  /// each routing entry value, each single garbage message (payload 55,
  /// every lastHop and color) in each buffer, each fairness-queue rotation.
  [[nodiscard]] static SsmfpExploreModel figure2CorruptionClosure(
      SsmfpGuardMutation mutation = SsmfpGuardMutation::kNone);

  /// The same instance from the single clean start (correct tables, empty
  /// buffers, the one pending send) - the small search space the mutation
  /// smoke test uses for depth-minimal counterexamples.
  [[nodiscard]] static SsmfpExploreModel figure2Clean(
      SsmfpGuardMutation mutation = SsmfpGuardMutation::kNone);

  /// Odd-ring scale closure (see RingScaleSpec): correct routing tables,
  /// every node a destination, base plus every single garbage-message plant
  /// (payload 55, every (p, d, lastHop, color, buffer side)), every
  /// fairness-queue rotation, and stride-sampled pair/triple plants. The
  /// model carries the ring's dihedral generators and structure graph, so
  /// reduction=symmetry/por/both engage.
  [[nodiscard]] static SsmfpExploreModel ringScaleClosure(
      const RingScaleSpec& spec);

  // -- Reduction hooks ------------------------------------------------------
  [[nodiscard]] const std::vector<Perm>& symmetryGenerators() const override {
    return generators_;
  }
  [[nodiscard]] const Graph* structureGraph() const override {
    return structGraph_.get();
  }
  /// Routing repairs and the monitor-changing forwarding rules (R1
  /// generates an outstanding trace, R6 delivers) are visible; the
  /// buffer-shuffling rules R2-R5 are invisible - their POR soundness rides
  /// on the ample independence condition plus the quotient-soundness
  /// differentials.
  [[nodiscard]] bool selectionVisible(const StepSelection& sel) const override;
  /// Default relabeling plus R3's aux operand (the sender id).
  [[nodiscard]] StepSelection permuteSelection(const StepSelection& sel,
                                               const Perm& perm) const override;

 private:
  std::vector<std::string> starts_;
  SsmfpGuardMutation mutation_;
  std::string name_;
  /// Set by the factories whose topology has known automorphisms
  /// (ringScaleClosure); empty elsewhere, which keeps symmetry off.
  std::vector<Perm> generators_;
  /// Set by factories with a fixed instance topology; shared so the model
  /// stays copyable.
  std::shared_ptr<const Graph> structGraph_;
};

class Ssmfp2ExploreModel final : public ExploreModel {
 public:
  /// The model owns the graph and destination set (the ssmfp2 canon does
  /// not serialize the graph - PifExploreModel pattern); `startStates` are
  /// canonicalStart() texts on that structure.
  Ssmfp2ExploreModel(Graph graph, std::vector<NodeId> destinations,
                     std::vector<std::string> startStates,
                     Ssmfp2GuardMutation mutation = Ssmfp2GuardMutation::kNone,
                     std::string name = "ssmfp2");

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] const std::vector<std::string>& startStates() const override {
    return starts_;
  }
  [[nodiscard]] std::unique_ptr<ModelInstance> load(
      const std::string& state) const override;

  [[nodiscard]] Ssmfp2GuardMutation mutation() const { return mutation_; }

  /// Canonical start text for a live stack with empty monitor tail.
  [[nodiscard]] static std::string canonicalStart(
      const SelfStabBfsRouting& routing, const Ssmfp2Protocol& forwarding);

  /// Figure-2 methodology on the same network N: base configuration plus
  /// every routing-entry value, every DETECTABLY rank-inconsistent single
  /// garbage plant (the 2R8 footprint - see ssmfp2.hpp; mimicking garbage
  /// is excluded and covered by the Prop-4-style delivery bound instead),
  /// and every fairness-queue rotation. The closure over this start set
  /// must reach ZERO invalid deliveries - ssmfp2's headline property.
  [[nodiscard]] static Ssmfp2ExploreModel figure2CorruptionClosure(
      Ssmfp2GuardMutation mutation = Ssmfp2GuardMutation::kNone);

  /// Single clean start (correct tables, empty slots, one pending send).
  [[nodiscard]] static Ssmfp2ExploreModel figure2Clean(
      Ssmfp2GuardMutation mutation = Ssmfp2GuardMutation::kNone);

  // -- Reduction hooks (POR only; the rank-slot family has no permuted
  // encode, so symmetry falls back loudly) ---------------------------------
  [[nodiscard]] const Graph* structureGraph() const override { return &graph_; }
  /// 2R1 (generates) and 2R6 (delivers) change the monitor; everything
  /// else - including the junk-erasing 2R7/2R8 - is invisible for POR.
  [[nodiscard]] bool selectionVisible(const StepSelection& sel) const override;

 private:
  Graph graph_;
  std::vector<NodeId> dests_;
  std::vector<std::string> starts_;
  Ssmfp2GuardMutation mutation_;
  std::string name_;
};

class PifExploreModel final : public ExploreModel {
 public:
  PifExploreModel(Graph graph, NodeId root, std::vector<std::string> startStates,
                  std::string name = "pif");

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] const std::vector<std::string>& startStates() const override {
    return starts_;
  }
  [[nodiscard]] std::unique_ptr<ModelInstance> load(
      const std::string& state) const override;

  /// Every assignment of {C, B, F} to every processor (the FULL arbitrary-
  /// initial-configuration quantifier - 3^n starts, so keep the tree
  /// small) with `pendingRequests` wave requests queued at the root.
  [[nodiscard]] static PifExploreModel scrambleClosure(
      Graph graph, NodeId root, std::size_t pendingRequests = 1);

 private:
  Graph graph_;
  NodeId root_;
  std::vector<std::string> starts_;
  std::string name_;
};

/// Counterexample minimization: delta-debugs the violating start snapshot
/// through sim/shrink, keeping an edit while serial re-exploration (same
/// options, forced single-threaded) from the edited start still reaches a
/// violation of the same kind. Returns the shrink report; the minimized
/// start is `.snapshot` (snapshot text only - reload via
/// SsmfpExploreModel::canonicalStart on the restored stack).
[[nodiscard]] ShrinkResult shrinkSsmfpViolation(const SsmfpExploreModel& model,
                                                const ExploreViolation& violation,
                                                const ExploreOptions& options);

/// Converts an explorer counterexample path into a ScriptedDaemon script
/// (one Selection set per step), replayable on a stack restored from the
/// violation's rootState.
[[nodiscard]] std::vector<std::vector<ScriptedDaemon::Selection>> toScript(
    const std::vector<Move>& path);

}  // namespace snapfwd::explore
