#include "explore/family.hpp"

#include <array>
#include <memory>

#include "explore/models.hpp"

namespace snapfwd::explore {

namespace {

std::unique_ptr<ExploreModel> makeSsmfpCorruptions() {
  return std::make_unique<SsmfpExploreModel>(
      SsmfpExploreModel::figure2CorruptionClosure());
}

std::unique_ptr<ExploreModel> makeSsmfpClean() {
  return std::make_unique<SsmfpExploreModel>(SsmfpExploreModel::figure2Clean());
}

std::unique_ptr<ExploreModel> makeSsmfp2Corruptions() {
  return std::make_unique<Ssmfp2ExploreModel>(
      Ssmfp2ExploreModel::figure2CorruptionClosure());
}

std::unique_ptr<ExploreModel> makeSsmfp2Clean() {
  return std::make_unique<Ssmfp2ExploreModel>(Ssmfp2ExploreModel::figure2Clean());
}

constexpr std::array<FamilyModelOps, 2> kRegistry = {{
    {ForwardingFamilyId::kSsmfp, "ssmfp", /*hasBinaryCodec=*/true,
     &makeSsmfpCorruptions, &makeSsmfpClean},
    {ForwardingFamilyId::kSsmfp2, "ssmfp2", /*hasBinaryCodec=*/true,
     &makeSsmfp2Corruptions, &makeSsmfp2Clean},
}};

}  // namespace

std::span<const FamilyModelOps> familyModelRegistry() { return kRegistry; }

const FamilyModelOps* findFamilyModelOps(std::string_view name) {
  for (const auto& ops : kRegistry) {
    if (ops.name == name) return &ops;
  }
  return nullptr;
}

}  // namespace snapfwd::explore
