#pragma once
// Bounded explicit-state exploration over the state-model protocols.
//
// The simulator (sim/) samples executions one daemon at a time; this module
// instead CLOSES the transition relation: from a set of start
// configurations it enumerates, breadth-first, every configuration
// reachable under every scheduling decision a daemon of the chosen class
// could make, deduplicating via canonical serialization (canon.hpp) and
// evaluating the checker/ invariants at every reached configuration. A
// clean exhaustive closure is a PROOF (for that instance and daemon class)
// that no daemon of the class can drive the protocol into a violation -
// the per-instance analogue of the paper's Lemmas 4-5 / Theorem 1, and the
// harness under which the deliberate guard mutations of
// SsmfpGuardMutation must be caught.
//
// Monitor-in-state: safety properties like "no valid message is delivered
// twice" are history-dependent, so the explored state is (configuration,
// monitor) - the serialized text carries the outstanding valid traces and
// the invalid-delivery count, and two executions only merge when both
// components agree. This keeps on-the-fly checking sound across merged
// paths.
//
// Exploration is level-synchronous parallel BFS: each depth level is
// expanded by ThreadPool workers into a lock-striped visited set.
// First-inserter-wins within a level is race-free for counting because BFS
// depth is order-independent - serial and parallel runs visit the SAME set
// of states (the acceptance check `snapfwd_cli explore --threads N` vs
// serial relies on this).

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/action.hpp"
#include "core/daemon.hpp"
#include "explore/codec.hpp"  // StateCodec
#include "util/names.hpp"

namespace snapfwd {
class ThreadPool;
}

namespace snapfwd::explore {

/// Which daemon class the successor relation quantifies over.
///   kCentral     - one enabled processor, one action per step (the class
///                  the paper's worst-case bounds are stated against).
///   kSynchronous - every enabled processor moves; branching only over the
///                  per-processor action alternatives.
///   kDistributed - every non-empty subset of enabled processors, one
///                  action each (the full distributed daemon; superset of
///                  both others - and exponential, hence the per-state
///                  move bound).
enum class DaemonClosure : std::uint8_t {
  kCentral,
  kSynchronous,
  kDistributed,
};

}  // namespace snapfwd::explore

namespace snapfwd {
template <>
struct EnumNames<explore::DaemonClosure> {
  static constexpr auto entries = std::to_array<NamedEnum<explore::DaemonClosure>>({
      {explore::DaemonClosure::kCentral, "central"},
      {explore::DaemonClosure::kSynchronous, "synchronous"},
      {explore::DaemonClosure::kDistributed, "distributed"},
  });
};
}  // namespace snapfwd

namespace snapfwd::explore {

/// One processor's scheduled action within a step - the stable (replayable)
/// form of a daemon Choice: indices into an enabled vector depend on the
/// configuration, (p, layer, action) does not.
struct StepSelection {
  NodeId p = kNoNode;
  std::uint16_t layer = 0;
  Action action;
  friend bool operator==(const StepSelection&, const StepSelection&) = default;
};

/// One atomic step: the non-empty selection set the daemon commits together.
using Move = std::vector<StepSelection>;

/// A safety-property failure, as reported by a model.
struct ModelViolation {
  std::string kind;     // stable slug, e.g. "duplicate-delivery"
  std::string message;  // human-readable context
};

/// A live configuration of a model: an engine stack (or equivalent) loaded
/// at one canonical state. Instances are single-threaded and throwaway -
/// the explorer loads a fresh one per expanded transition.
class ModelInstance {
 public:
  virtual ~ModelInstance() = default;

  /// Successor moves of the current configuration under `closure`, capped
  /// at `maxMoves` (sets `truncated` instead of overflowing; order is
  /// deterministic). Empty output = terminal configuration.
  virtual void enumerateMoves(DaemonClosure closure, std::size_t maxMoves,
                              std::vector<Move>& out, bool& truncated) = 0;

  /// Executes one move atomically (guards re-matched by (p, layer, action);
  /// false = the move is not enabled here, a replay desync).
  [[nodiscard]] virtual bool apply(const Move& move) = 0;

  /// Canonical state text (configuration + monitor; see canon.hpp).
  [[nodiscard]] virtual std::string serialize() = 0;

  /// First safety violation holding in the current configuration, including
  /// violations detected DURING the last apply() (e.g. a duplicate
  /// delivery); nullopt when clean.
  [[nodiscard]] virtual std::optional<ModelViolation> checkState() = 0;

  /// Violations that only terminal configurations exhibit (deadlock with
  /// undelivered messages, undrained outboxes). Called when enumerateMoves
  /// returned nothing.
  [[nodiscard]] virtual std::optional<ModelViolation> checkTerminal() = 0;

  /// Monotone per-path progress metric folded into stats as a maximum
  /// (SSMFP: invalid deliveries so far - the Proposition 4 quantity).
  [[nodiscard]] virtual std::uint64_t progressCount() const { return 0; }

  // -- Binary codec + fork-from-parent delta stepping (codec.hpp) -----------
  // A model that returns true from supportsBinaryCodec() must implement the
  // three hooks below; the explorer then keeps ONE live instance per worker
  // and walks a whole frontier level as restoreState(parent) followed by,
  // per successor move, apply -> encodeState -> undoToRestored, instead of
  // reconstructing the full stack per successor. The binary form must be a
  // bijective re-encoding of serialize()'s equivalence classes so closure
  // counts stay codec-independent. Defaults throw (the explorer falls back
  // to the textual path without calling them).

  [[nodiscard]] virtual bool supportsBinaryCodec() const { return false; }
  /// Appends the compact binary state (configuration + monitor) to `out`.
  virtual void encodeState(std::string& out);
  /// Restores this live instance to the configuration in `bytes`, which
  /// must come from encodeState() of an instance of the same model (the
  /// codec verifies the structure fingerprint).
  virtual void restoreState(std::string_view bytes);
  /// Rewinds the most recent successful apply() back to the last
  /// restoreState() configuration by re-decoding only the processor
  /// sections the engine's commit write set names. Exactly one successful
  /// apply() may be outstanding when this is called.
  virtual void undoToRestored();
};

struct ExploreOptions {
  DaemonClosure closure = DaemonClosure::kCentral;
  /// BFS depth bound (steps from a start state); states at the bound are
  /// checked but not expanded.
  std::uint64_t maxDepth = UINT64_MAX;
  /// Visited-set size bound; reaching it stops expansion (exhausted=false).
  std::uint64_t maxStates = 1'000'000;
  /// Per-state successor bound for the subset-enumerating closures.
  std::size_t maxMovesPerState = 256;
  /// Worker threads for frontier expansion (<= 1 = serial).
  std::size_t threads = 1;
  /// Stop at the end of the first BFS level that found a violation
  /// (deterministic: the reported violation minimizes (depth, state hash)).
  bool stopOnViolation = true;
  /// State representation stored and deduplicated on (codec.hpp). kBinary
  /// falls back to kText when the model's instances do not support it -
  /// loudly: a warning goes to stderr, stats.codecFellBack is set (the
  /// `codec_fallback` JSONL field), and stats.codecUsed reports what
  /// actually ran.
  StateCodec codec = StateCodec::kText;
};

struct ExploreStats {
  std::uint64_t startStates = 0;
  std::uint64_t visited = 0;       // distinct canonical states reached
  std::uint64_t transitions = 0;   // moves applied (incl. dedup hits)
  std::uint64_t dedupHits = 0;     // transitions into already-visited states
  std::uint64_t frontierPeak = 0;  // widest BFS level
  std::uint64_t depthReached = 0;  // deepest level with a fresh state
  std::uint64_t truncatedStates = 0;  // states whose move set was capped
  std::uint64_t terminalStates = 0;   // states with no successor
  std::uint64_t maxProgressCount = 0;  // max ModelInstance::progressCount()
  /// True iff every reachable state was expanded: no depth/state/move bound
  /// cut the search and no violation stopped it early. Only an exhausted
  /// run is a closure proof.
  bool exhausted = false;
  /// The representation the run actually stored (== options.codec unless
  /// kBinary fell back to kText for an unsupporting model).
  StateCodec codecUsed = StateCodec::kText;
  /// True iff kBinary was requested but the model does not support it.
  bool codecFellBack = false;
  /// Encoded payload bytes interned into the visited set (sum over states;
  /// stateBytes / visited = mean bytes per state).
  std::uint64_t stateBytes = 0;
  /// Bytes the visited-set arenas reserved from the system (>= stateBytes).
  std::uint64_t arenaBytes = 0;
};

struct ExploreViolation {
  std::string kind;
  std::string message;
  std::uint64_t depth = 0;       // steps from the start state
  std::size_t rootIndex = 0;     // index into the model's start set
  std::string rootState;         // canonical start state
  std::string violatingState;    // canonical state exhibiting the violation
  std::uint64_t stateHash = 0;
  /// The schedule from rootState to violatingState, one Move per step -
  /// replayable via ModelInstance::apply and convertible to a
  /// ScriptedDaemon script (models.hpp).
  std::vector<Move> path;
};

struct ExploreResult {
  ExploreStats stats;
  /// Violations of the stopping level, sorted by (depth, hash, kind); empty
  /// for a clean closure. With stopOnViolation the interesting entry is
  /// front().
  std::vector<ExploreViolation> violations;

  [[nodiscard]] bool clean() const { return violations.empty(); }
};

/// A protocol family + instance + property set, explorable from a fixed
/// start set. load() must be thread-safe (const access only).
class ExploreModel {
 public:
  virtual ~ExploreModel() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Canonical start states (the "corruption closure" - e.g. every
  /// single-variable corruption of a base configuration).
  [[nodiscard]] virtual const std::vector<std::string>& startStates() const = 0;
  /// Materializes a live instance at `state` (a canonical text produced by
  /// startStates() or ModelInstance::serialize()).
  [[nodiscard]] virtual std::unique_ptr<ModelInstance> load(
      const std::string& state) const = 0;
};

/// Shared successor enumeration: expands an engine's enabled set into the
/// move set of the chosen daemon closure (deterministic order; capped at
/// `maxMoves` with `truncated` set). Central: one singleton move per
/// (processor, action). Synchronous: the cross-product of one action per
/// enabled processor. Distributed: every non-empty processor subset times
/// the per-subset action combinations.
void enumerateMovesFromEnabled(const std::vector<EnabledProcessor>& enabled,
                               DaemonClosure closure, std::size_t maxMoves,
                               std::vector<Move>& out, bool& truncated);

/// Exhaustive bounded BFS over `model`'s reachable states. `pool` (may be
/// null) supplies the workers when options.threads > 1.
[[nodiscard]] ExploreResult explore(const ExploreModel& model,
                                    const ExploreOptions& options,
                                    ThreadPool* pool = nullptr);

/// JSONL emission: one `explore-stats` record, then one `explore-violation`
/// record per violation (schema kept stable for tooling; see
/// docs/ARCHITECTURE.md).
void writeExploreJsonl(std::ostream& out, std::string_view modelName,
                       const ExploreOptions& options, const ExploreResult& result);

}  // namespace snapfwd::explore
