#pragma once
// Bounded explicit-state exploration over the state-model protocols.
//
// The simulator (sim/) samples executions one daemon at a time; this module
// instead CLOSES the transition relation: from a set of start
// configurations it enumerates, breadth-first, every configuration
// reachable under every scheduling decision a daemon of the chosen class
// could make, deduplicating via canonical serialization (canon.hpp) and
// evaluating the checker/ invariants at every reached configuration. A
// clean exhaustive closure is a PROOF (for that instance and daemon class)
// that no daemon of the class can drive the protocol into a violation -
// the per-instance analogue of the paper's Lemmas 4-5 / Theorem 1, and the
// harness under which the deliberate guard mutations of
// SsmfpGuardMutation must be caught.
//
// Monitor-in-state: safety properties like "no valid message is delivered
// twice" are history-dependent, so the explored state is (configuration,
// monitor) - the serialized text carries the outstanding valid traces and
// the invalid-delivery count, and two executions only merge when both
// components agree. This keeps on-the-fly checking sound across merged
// paths.
//
// Exploration is level-synchronous parallel BFS: each depth level is
// expanded by ThreadPool workers into a lock-striped visited set.
// First-inserter-wins within a level is race-free for counting because BFS
// depth is order-independent - serial and parallel runs visit the SAME set
// of states (the acceptance check `snapfwd_cli explore --threads N` vs
// serial relies on this).

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/action.hpp"
#include "core/daemon.hpp"
#include "explore/codec.hpp"  // StateCodec
#include "explore/symmetry.hpp"  // Perm
#include "util/names.hpp"

namespace snapfwd {
class ThreadPool;
}

namespace snapfwd::explore {

/// Which daemon class the successor relation quantifies over.
///   kCentral     - one enabled processor, one action per step (the class
///                  the paper's worst-case bounds are stated against).
///   kSynchronous - every enabled processor moves; branching only over the
///                  per-processor action alternatives.
///   kDistributed - every non-empty subset of enabled processors, one
///                  action each (the full distributed daemon; superset of
///                  both others - and exponential, hence the per-state
///                  move bound).
enum class DaemonClosure : std::uint8_t {
  kCentral,
  kSynchronous,
  kDistributed,
};

/// Which state-space reductions the explorer applies (opt-in; kNone keeps
/// the PR-4/PR-5 semantics bit-for-bit and stays the differential anchor).
///   kSymmetry - orbit canonicalization of processor ids: every state is
///               stored as the lexicographic minimum over the model's
///               symmetry group, so whole orbits collapse to one record.
///   kPor      - partial-order reduction: at states with an "ample"
///               processor (all its actions invisible, every other enabled
///               processor at structure-graph distance >= 2), expand only
///               that processor's moves; a cycle-proviso fallback expands
///               fully when the ample successors are all already visited.
///   kBoth     - both of the above.
enum class Reduction : std::uint8_t {
  kNone,
  kSymmetry,
  kPor,
  kBoth,
};

/// Where the visited set's interned state bytes live.
///   kRam   - anonymous heap chunks (the PR-5 arena).
///   kSpill - file-backed mmap chunks under ExploreOptions::spillDir,
///            sealed + kernel-reclaimable once full, so the resident
///            footprint stays bounded while closures exceed RAM.
enum class StoreKind : std::uint8_t {
  kRam,
  kSpill,
};

}  // namespace snapfwd::explore

namespace snapfwd {
template <>
struct EnumNames<explore::DaemonClosure> {
  static constexpr auto entries = std::to_array<NamedEnum<explore::DaemonClosure>>({
      {explore::DaemonClosure::kCentral, "central"},
      {explore::DaemonClosure::kSynchronous, "synchronous"},
      {explore::DaemonClosure::kDistributed, "distributed"},
  });
};
template <>
struct EnumNames<explore::Reduction> {
  static constexpr auto entries = std::to_array<NamedEnum<explore::Reduction>>({
      {explore::Reduction::kNone, "none"},
      {explore::Reduction::kSymmetry, "symmetry"},
      {explore::Reduction::kPor, "por"},
      {explore::Reduction::kBoth, "both"},
  });
};
template <>
struct EnumNames<explore::StoreKind> {
  static constexpr auto entries = std::to_array<NamedEnum<explore::StoreKind>>({
      {explore::StoreKind::kRam, "ram"},
      {explore::StoreKind::kSpill, "spill"},
  });
};
}  // namespace snapfwd

namespace snapfwd::explore {

/// One processor's scheduled action within a step - the stable (replayable)
/// form of a daemon Choice: indices into an enabled vector depend on the
/// configuration, (p, layer, action) does not.
struct StepSelection {
  NodeId p = kNoNode;
  std::uint16_t layer = 0;
  Action action;
  friend bool operator==(const StepSelection&, const StepSelection&) = default;
};

/// One atomic step: the non-empty selection set the daemon commits together.
using Move = std::vector<StepSelection>;

/// A safety-property failure, as reported by a model.
struct ModelViolation {
  std::string kind;     // stable slug, e.g. "duplicate-delivery"
  std::string message;  // human-readable context
};

/// A live configuration of a model: an engine stack (or equivalent) loaded
/// at one canonical state. Instances are single-threaded and throwaway -
/// the explorer loads a fresh one per expanded transition.
class ModelInstance {
 public:
  virtual ~ModelInstance() = default;

  /// Successor moves of the current configuration under `closure`, capped
  /// at `maxMoves` (sets `truncated` instead of overflowing; order is
  /// deterministic). Empty output = terminal configuration.
  virtual void enumerateMoves(DaemonClosure closure, std::size_t maxMoves,
                              std::vector<Move>& out, bool& truncated) = 0;

  /// Executes one move atomically (guards re-matched by (p, layer, action);
  /// false = the move is not enabled here, a replay desync).
  [[nodiscard]] virtual bool apply(const Move& move) = 0;

  /// Canonical state text (configuration + monitor; see canon.hpp).
  [[nodiscard]] virtual std::string serialize() = 0;

  /// First safety violation holding in the current configuration, including
  /// violations detected DURING the last apply() (e.g. a duplicate
  /// delivery); nullopt when clean.
  [[nodiscard]] virtual std::optional<ModelViolation> checkState() = 0;

  /// Violations that only terminal configurations exhibit (deadlock with
  /// undelivered messages, undrained outboxes). Called when enumerateMoves
  /// returned nothing.
  [[nodiscard]] virtual std::optional<ModelViolation> checkTerminal() = 0;

  /// Monotone per-path progress metric folded into stats as a maximum
  /// (SSMFP: invalid deliveries so far - the Proposition 4 quantity).
  [[nodiscard]] virtual std::uint64_t progressCount() const { return 0; }

  // -- Binary codec + fork-from-parent delta stepping (codec.hpp) -----------
  // A model that returns true from supportsBinaryCodec() must implement the
  // three hooks below; the explorer then keeps ONE live instance per worker
  // and walks a whole frontier level as restoreState(parent) followed by,
  // per successor move, apply -> encodeState -> undoToRestored, instead of
  // reconstructing the full stack per successor. The binary form must be a
  // bijective re-encoding of serialize()'s equivalence classes so closure
  // counts stay codec-independent. Defaults throw (the explorer falls back
  // to the textual path without calling them).

  [[nodiscard]] virtual bool supportsBinaryCodec() const { return false; }
  /// Appends the compact binary state (configuration + monitor) to `out`.
  virtual void encodeState(std::string& out);
  /// Restores this live instance to the configuration in `bytes`, which
  /// must come from encodeState() of an instance of the same model (the
  /// codec verifies the structure fingerprint).
  virtual void restoreState(std::string_view bytes);
  /// Rewinds the most recent successful apply() back to the last
  /// restoreState() configuration by re-decoding only the processor
  /// sections the engine's commit write set names. Exactly one successful
  /// apply() may be outstanding when this is called.
  virtual void undoToRestored();

  // -- Symmetry reduction (symmetry.hpp) ------------------------------------
  // A model that returns true from supportsPermutedEncode() can render the
  // image of its current configuration under a processor-id permutation
  // without mutating itself; the explorer minimizes over the model's
  // symmetry group to orbit-canonicalize states. The encode must be exact:
  // encodePermutedState(identity, codec) == serialize() (kText) /
  // encodeState() (kBinary) byte for byte, and for every group element the
  // output must equal what serialize()/encodeState() WOULD produce on the
  // relabeled configuration. Defaults: unsupported / throw.

  [[nodiscard]] virtual bool supportsPermutedEncode() const { return false; }
  /// Appends the `codec` encoding of the current configuration relabeled by
  /// `perm` (perm[p] = image of p) to `out`.
  virtual void encodePermutedState(const Perm& perm, StateCodec codec,
                                   std::string& out);
};

struct ExploreOptions {
  DaemonClosure closure = DaemonClosure::kCentral;
  /// BFS depth bound (steps from a start state); states at the bound are
  /// checked but not expanded.
  std::uint64_t maxDepth = UINT64_MAX;
  /// Visited-set size bound; reaching it stops expansion (exhausted=false).
  std::uint64_t maxStates = 1'000'000;
  /// Per-state successor bound for the subset-enumerating closures.
  std::size_t maxMovesPerState = 256;
  /// Worker threads for frontier expansion (<= 1 = serial).
  std::size_t threads = 1;
  /// Stop at the end of the first BFS level that found a violation
  /// (deterministic: the reported violation minimizes (depth, state hash)).
  bool stopOnViolation = true;
  /// State representation stored and deduplicated on (codec.hpp). kBinary
  /// falls back to kText when the model's instances do not support it -
  /// loudly: a warning goes to stderr, stats.codecFellBack is set (the
  /// `codec_fallback` JSONL field), and stats.codecUsed reports what
  /// actually ran.
  StateCodec codec = StateCodec::kText;
  /// State-space reductions (opt-in; see Reduction). kSymmetry/kBoth need a
  /// model with symmetry generators AND permuted-encode instances - when
  /// either is missing the run falls back loudly (stats.reductionFellBack)
  /// to the unreduced semantics for that axis. kPor is skipped under the
  /// kSynchronous closure (every enabled processor steps together - no
  /// interleavings to prune).
  Reduction reduction = Reduction::kNone;
  /// Visited-set placement. kSpill needs spillDir; on any file/mmap failure
  /// the store keeps running from the heap (spill is an optimization, never
  /// a correctness dependency).
  StoreKind store = StoreKind::kRam;
  /// Directory for the (immediately unlinked) spill files. Empty = the
  /// TMPDIR environment variable, or /tmp.
  std::string spillDir;
  /// Soft resident-bytes cap (0 = none). Checked at BFS level boundaries:
  /// when the visited set + frontier exceed it, a kRam store switches to
  /// spill (using spillDir) instead of growing the heap further.
  std::uint64_t memBudgetBytes = 0;
  /// Store states rle0-compressed (util/rle0.hpp). The compression is
  /// injective, so dedup merges byte-for-byte the same states; only
  /// bytes/state changes.
  bool compressStates = false;
  /// Keep the per-state incoming move + parent ref (the BFS tree) for
  /// counterexample paths. Scale runs that only need counts/bounds can
  /// switch this off and save the dominant non-arena memory. With
  /// trackPaths=false a violating run still reports the violation, just
  /// with an empty path.
  bool trackPaths = true;
};

struct ExploreStats {
  std::uint64_t startStates = 0;
  std::uint64_t visited = 0;       // distinct canonical states reached
  std::uint64_t transitions = 0;   // moves applied (incl. dedup hits)
  std::uint64_t dedupHits = 0;     // transitions into already-visited states
  std::uint64_t frontierPeak = 0;  // widest BFS level
  std::uint64_t depthReached = 0;  // deepest level with a fresh state
  std::uint64_t truncatedStates = 0;  // states whose move set was capped
  std::uint64_t terminalStates = 0;   // states with no successor
  std::uint64_t maxProgressCount = 0;  // max ModelInstance::progressCount()
  /// True iff every reachable state was expanded: no depth/state/move bound
  /// cut the search and no violation stopped it early. Only an exhausted
  /// run is a closure proof.
  bool exhausted = false;
  /// The representation the run actually stored (== options.codec unless
  /// kBinary fell back to kText for an unsupporting model).
  StateCodec codecUsed = StateCodec::kText;
  /// True iff kBinary was requested but the model does not support it.
  bool codecFellBack = false;
  /// Encoded payload bytes interned into the visited set (sum over states;
  /// stateBytes / visited = mean bytes per state).
  std::uint64_t stateBytes = 0;
  /// Bytes the visited-set arenas reserved from the system (>= stateBytes).
  std::uint64_t arenaBytes = 0;

  // -- Memory accounting (satellite: explore-stats JSONL + CLI table) -------
  /// Arena bytes still pinned in RAM at the end of the run (heap chunks +
  /// unsealed spill tails; sealed spill pages are kernel-reclaimable).
  std::uint64_t residentBytes = 0;
  /// Arena bytes written to sealed spill-file regions.
  std::uint64_t spillBytes = 0;
  /// Peak frontier footprint across levels, in bytes (items + their encoded
  /// state views; the views alias the arenas, so this is bookkeeping size).
  std::uint64_t frontierPeakBytes = 0;
  /// Process peak RSS (VmHWM) observed after the run, when the platform
  /// exposes it (Linux /proc); 0 elsewhere.
  std::uint64_t peakRssBytes = 0;
  /// True iff the store spilled (requested kSpill, or a kRam run crossed
  /// memBudgetBytes and switched over).
  bool spillActivated = false;

  // -- Reduction accounting -------------------------------------------------
  /// Closed symmetry-group size the run canonicalized over (1 = no
  /// symmetry quotient in effect).
  std::uint64_t symGroupSize = 1;
  /// States whose canonical representative used a non-identity permutation
  /// (each is a state the unreduced run would have stored separately).
  std::uint64_t symCanonFolds = 0;
  /// States expanded through an ample set instead of the full move set.
  std::uint64_t amplePicks = 0;
  /// Ample expansions the cycle proviso re-expanded to the full move set.
  std::uint64_t ampleFallbacks = 0;
  /// True iff a requested reduction axis could not run (no generators, no
  /// permuted-encode support) and the run silently-for-counts (loudly on
  /// stderr) proceeded unreduced on that axis.
  bool reductionFellBack = false;
};

struct ExploreViolation {
  std::string kind;
  std::string message;
  std::uint64_t depth = 0;       // steps from the start state
  std::size_t rootIndex = 0;     // index into the model's start set
  std::string rootState;         // canonical start state
  std::string violatingState;    // canonical state exhibiting the violation
  std::uint64_t stateHash = 0;
  /// The schedule from rootState to violatingState, one Move per step -
  /// replayable via ModelInstance::apply and convertible to a
  /// ScriptedDaemon script (models.hpp). Under symmetry reduction the
  /// stored tree records moves in each parent REPRESENTATIVE's frame; the
  /// explorer re-expresses them here in the frame of rootState (gamma
  /// folding: step i is conjugated by the inverse of the accumulated
  /// canonicalizing permutation), so the path replays verbatim on an
  /// unreduced instance loaded from rootState. The replay then ends in a
  /// state EQUIVALENT to violatingState (its orbit representative) with
  /// the same violation kind. Empty when options.trackPaths was false.
  std::vector<Move> path;
};

struct ExploreResult {
  ExploreStats stats;
  /// Violations of the stopping level, sorted by (depth, hash, kind); empty
  /// for a clean closure. With stopOnViolation the interesting entry is
  /// front().
  std::vector<ExploreViolation> violations;

  [[nodiscard]] bool clean() const { return violations.empty(); }
};

/// A protocol family + instance + property set, explorable from a fixed
/// start set. load() must be thread-safe (const access only).
class ExploreModel {
 public:
  virtual ~ExploreModel() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Canonical start states (the "corruption closure" - e.g. every
  /// single-variable corruption of a base configuration).
  [[nodiscard]] virtual const std::vector<std::string>& startStates() const = 0;
  /// Materializes a live instance at `state` (a canonical text produced by
  /// startStates() or ModelInstance::serialize()).
  [[nodiscard]] virtual std::unique_ptr<ModelInstance> load(
      const std::string& state) const = 0;

  // -- Reduction hooks (all optional; defaults = no reduction possible) -----

  /// Symmetry-group generators valid for this model's instances (verified
  /// automorphisms whose relabeling action the instances implement via
  /// encodePermutedState). Empty = identity-only group.
  [[nodiscard]] virtual const std::vector<Perm>& symmetryGenerators() const;

  /// The topology the instances run on, for partial-order independence
  /// (two processors at graph distance >= 2 have disjoint closed
  /// neighborhoods, and every protocol layer obeys accessRadius() == 1:
  /// guards read N[p], commits write p). nullptr = POR unavailable.
  [[nodiscard]] virtual const Graph* structureGraph() const { return nullptr; }

  /// Whether `sel` can change the truth of the model's checked properties
  /// or its progress metric (POR "visibility"). Ample sets contain only
  /// invisible selections. The default claims everything visible, which
  /// disables POR rather than risking an unsound quotient.
  [[nodiscard]] virtual bool selectionVisible(
      const StepSelection& /*sel*/) const {
    return true;
  }

  /// The image of `sel` under processor relabeling `perm` - used to
  /// re-express counterexample paths in the root frame. The default maps
  /// the processor and the destination operand; models whose rules carry
  /// processor ids in `aux` (SSMFP's R3 sender) override.
  [[nodiscard]] virtual StepSelection permuteSelection(const StepSelection& sel,
                                                       const Perm& perm) const;
};

/// Shared successor enumeration: expands an engine's enabled set into the
/// move set of the chosen daemon closure (deterministic order; capped at
/// `maxMoves` with `truncated` set). Central: one singleton move per
/// (processor, action). Synchronous: the cross-product of one action per
/// enabled processor. Distributed: every non-empty processor subset times
/// the per-subset action combinations.
void enumerateMovesFromEnabled(const std::vector<EnabledProcessor>& enabled,
                               DaemonClosure closure, std::size_t maxMoves,
                               std::vector<Move>& out, bool& truncated);

/// Exhaustive bounded BFS over `model`'s reachable states. `pool` (may be
/// null) supplies the workers when options.threads > 1.
[[nodiscard]] ExploreResult explore(const ExploreModel& model,
                                    const ExploreOptions& options,
                                    ThreadPool* pool = nullptr);

/// JSONL emission: one `explore-stats` record, then one `explore-violation`
/// record per violation (schema kept stable for tooling; see
/// docs/ARCHITECTURE.md).
void writeExploreJsonl(std::ostream& out, std::string_view modelName,
                       const ExploreOptions& options, const ExploreResult& result);

}  // namespace snapfwd::explore
