#pragma once
// Canonical configuration serialization + 64-bit hashing: the state
// identity layer of the explicit-state explorer (explore.hpp).
//
// "Canonical" means: two configurations are protocol-equivalent iff their
// canonical strings are byte-identical. Everything guards can read is
// serialized in a fixed order (processor-id major, destination minor);
// bookkeeping that never feeds a guard (bornStep/bornRound latency stamps)
// is normalized away where noted, so states reached by different-length
// executions still dedupe.
//
// The SSMFP stack form reuses the line-based snapshot format
// (sim/snapshot.hpp) and stays readSnapshot()-loadable - restore IS the
// successor-generation loader. The other four protocols get their own
// compact line formats with matching restore functions; together they back
// the serialize -> hash -> restore -> hash fixed-point test that is the
// explorer's soundness bedrock (tests/test_canon_roundtrip.cpp).

#include <cstdint>
#include <string>
#include <string_view>

namespace snapfwd {
class Graph;
class SelfStabBfsRouting;
class SsmfpProtocol;
class Ssmfp2Protocol;
class PifProtocol;
class MerlinSchweitzerProtocol;
class OrientationForwardingProtocol;
class MpSsmfpSimulator;
}  // namespace snapfwd

namespace snapfwd::explore {

/// FNV-1a, 64 bit. Stable across platforms and runs (no seeding): hashes
/// are comparable between serial and parallel frontiers and across
/// processes.
[[nodiscard]] std::uint64_t hash64(std::string_view text);

/// Full SSMFP stack (graph + routing tables + forwarding state): the
/// snapshot-v1 text with birth stamps normalized to zero. Loadable with
/// readSnapshot()/snapshotFromString().
[[nodiscard]] std::string canonSsmfpStack(const Graph& graph,
                                          const SelfStabBfsRouting& routing,
                                          const SsmfpProtocol& forwarding);

/// Forwarding-layer state only (buffers, fairness queues, outboxes,
/// nexttrace) - works with any RoutingProvider, e.g. the FrozenRouting of
/// the Figure 3 replay. Birth stamps are kept verbatim: scripted replays
/// are deterministic and the golden corpus pins them.
[[nodiscard]] std::string canonForwardingState(const SsmfpProtocol& forwarding);

/// SSMFP2 stack (routing tables + rank-slot ladder + fairness queues +
/// outboxes + nexttrace). The graph is NOT serialized - the explore model
/// owns it (PifExploreModel pattern); restore targets a live stack on the
/// same graph. Birth stamps are normalized to zero for explorer dedupe.
[[nodiscard]] std::string canonSsmfp2Stack(const SelfStabBfsRouting& routing,
                                           const Ssmfp2Protocol& forwarding);
/// Applies a canonSsmfp2Stack() string onto a live stack of the same
/// structure (slots/outboxes absent from the text are cleared). Throws
/// std::runtime_error on malformed input.
void restoreSsmfp2Stack(SelfStabBfsRouting& routing, Ssmfp2Protocol& forwarding,
                        const std::string& canon);

/// PIF protocol-visible state: root, per-node S_p, pending requests.
[[nodiscard]] std::string canonPifState(const PifProtocol& pif);
/// Applies a canonPifState() string to a freshly constructed protocol on
/// the same tree. Throws std::runtime_error on malformed input.
void restorePifState(PifProtocol& pif, const std::string& canon);

/// Destination-based baseline: buffers, per-link handshake flags, gen
/// bits, fairness queues, outboxes, nexttrace.
[[nodiscard]] std::string canonBaselineState(
    const MerlinSchweitzerProtocol& baseline);
void restoreBaselineState(MerlinSchweitzerProtocol& baseline,
                          const std::string& canon);

/// Orientation (buffer-class) scheme: class buffers, per-link per-class
/// flags, per-(source,dest) gen bits, outboxes, nexttrace.
[[nodiscard]] std::string canonOrientationState(
    const OrientationForwardingProtocol& orientation);
void restoreOrientationState(OrientationForwardingProtocol& orientation,
                             const std::string& canon);

/// Message-passing embedding, protocol-visible state only (the
/// synchronizer's channels/round counters are plumbing, not model state -
/// see mp/mp_ssmfp.hpp): routing entries, buffer pairs, fairness queues,
/// outboxes, nexttrace.
[[nodiscard]] std::string canonMpState(const MpSsmfpSimulator& sim);
void restoreMpState(MpSsmfpSimulator& sim, const std::string& canon);

}  // namespace snapfwd::explore
