#pragma once
// Compact binary state codec - the fast counterpart of the canonical text
// formats in canon.hpp.
//
// The textual canon stays the authoritative, golden-hash-pinned state
// identity (two configurations are equivalent iff their canonical strings
// match); the binary codec is a bijective re-encoding of the same
// equivalence classes, built for the explorer's hot path: varint/bit-packed
// fields, no parsing, and - for the SSMFP stack - a per-processor offset
// table so fork-from-parent delta stepping can restore exactly the
// processors a step wrote (see explore.hpp / models.cpp) without touching
// the rest of the configuration. Each format opens with a two-byte magic
// plus a version byte; SSMFP additionally pins a structure fingerprint
// (graph + destinations + policy) so bytes are never decoded onto the
// wrong instance.
//
// Field-level conventions shared by all formats:
//   - integers are LEB128 varints unless a fixed width is stated;
//   - NodeId fields that may be kNoNode are stored shifted by one
//     (0 = kNoNode, v+1 otherwise) to stay single-byte;
//   - optional records carry a presence flag byte;
//   - birth stamps (bornStep/bornRound) follow the matching text canon:
//     omitted for the SSMFP stack (canonSsmfpStack normalizes them away),
//     kept verbatim for the baseline/orientation/mp formats.
//
// Soundness is pinned by tests/test_explore_codec.cpp: binary round trips
// are fixed points of the TEXT canon (encode -> decode -> text == text),
// and explorer closures are count-identical across codecs.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "graph/graph.hpp"
#include "util/names.hpp"

namespace snapfwd {
class SelfStabBfsRouting;
class SsmfpProtocol;
class Ssmfp2Protocol;
class PifProtocol;
class MerlinSchweitzerProtocol;
class OrientationForwardingProtocol;
class MpSsmfpSimulator;
}  // namespace snapfwd

namespace snapfwd::explore {

/// Which state representation the explorer stores and dedups on.
///   kText   - canonical text (canon.hpp): authoritative, human-readable,
///             the PR-4 baseline path.
///   kBinary - this codec + fork-from-parent delta stepping.
/// Closure counts are representation-independent (pinned by tests and
/// bench_explore); only throughput and bytes/state differ.
enum class StateCodec : std::uint8_t {
  kText,
  kBinary,
};

}  // namespace snapfwd::explore

namespace snapfwd {
template <>
struct EnumNames<explore::StateCodec> {
  static constexpr auto entries = std::to_array<NamedEnum<explore::StateCodec>>({
      {explore::StateCodec::kText, "text"},
      {explore::StateCodec::kBinary, "binary"},
  });
};
}  // namespace snapfwd

namespace snapfwd::explore {

// ---------------------------------------------------------------------------
// Byte-level primitives (exposed so model instances can append their
// monitor fields behind the protocol part with the same encoding).
// ---------------------------------------------------------------------------

/// Appends `v` as a LEB128 varint.
void putVarint(std::string& out, std::uint64_t v);
/// Appends one raw byte.
void putByte(std::string& out, std::uint8_t v);
/// Appends a NodeId with the kNoNode-safe shift (0 = kNoNode, v+1 else).
void putNode(std::string& out, NodeId v);

/// Bounds-checked sequential reader over an encoded byte string. All
/// malformed-input paths throw std::runtime_error (decoding only ever sees
/// bytes this codec produced, so a throw is a logic error upstream, but
/// truncated input must never read out of bounds).
class BinReader {
 public:
  explicit BinReader(std::string_view bytes, std::size_t pos = 0)
      : bytes_(bytes), pos_(pos) {}

  [[nodiscard]] std::uint64_t varint();
  [[nodiscard]] std::uint8_t byte();
  [[nodiscard]] std::uint32_t u32le();
  [[nodiscard]] std::uint64_t u64le();
  [[nodiscard]] NodeId node();  // inverse of putNode
  /// Consumes and validates a 2-byte magic + version byte.
  void expectMagic(char m0, char m1, std::uint8_t version, const char* what);

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  void seek(std::size_t pos);
  [[nodiscard]] bool atEnd() const noexcept { return pos_ == bytes_.size(); }
  [[noreturn]] void fail(const char* what) const;

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// SSMFP stack ('B' 'S' v1) - the explorer's hot format.
// ---------------------------------------------------------------------------

/// Fingerprint of the immutable stack structure (graph size + edges +
/// destination set + choice policy). Encoded into every state; decode
/// verifies it against the target instance. Compute once per instance.
[[nodiscard]] std::uint64_t ssmfpStructHash(const Graph& graph,
                                            const SsmfpProtocol& forwarding);

/// Appends the full stack state (routing tables + buffers + fairness
/// queues + outboxes + nexttrace; birth stamps normalized away as in
/// canonSsmfpStack). `structHash` must be ssmfpStructHash() of the stack.
void encodeSsmfpStack(const SelfStabBfsRouting& routing,
                      const SsmfpProtocol& forwarding, std::uint64_t structHash,
                      std::string& out);

/// Restores every processor section onto a live stack of the same
/// structure (buffers/outboxes not present in `bytes` are cleared, so the
/// target may hold any prior state). Returns a reader positioned after the
/// protocol part - the caller's monitor fields follow.
BinReader decodeSsmfpStack(std::string_view bytes,
                           SelfStabBfsRouting& routing,
                           SsmfpProtocol& forwarding, std::uint64_t structHash);

/// Delta restore: rewinds only `processors` (typically the engine's commit
/// write set of one step) plus nexttrace to the state in `bytes`, via the
/// per-processor offset table. Equivalent to decodeSsmfpStack for those
/// sections; every other processor's state is left untouched.
void restoreSsmfpProcessors(std::string_view bytes,
                            std::span<const NodeId> processors,
                            SelfStabBfsRouting& routing,
                            SsmfpProtocol& forwarding, std::uint64_t structHash);

// ---------------------------------------------------------------------------
// SSMFP2 stack ('B' '2' v1) - same layout discipline as the SSMFP format:
// header + structure fingerprint + per-processor u32le offset table, so the
// explorer's fork-from-parent delta stepping works identically.
// ---------------------------------------------------------------------------

/// Fingerprint of the immutable SSMFP2 stack structure (graph size + edges
/// + destination set + max rank).
[[nodiscard]] std::uint64_t ssmfp2StructHash(const Graph& graph,
                                             const Ssmfp2Protocol& forwarding);

/// Appends the full stack state (routing tables + rank slots + fairness
/// queues + outboxes + nexttrace; birth stamps normalized away as in
/// canonSsmfp2Stack).
void encodeSsmfp2Stack(const SelfStabBfsRouting& routing,
                       const Ssmfp2Protocol& forwarding, std::uint64_t structHash,
                       std::string& out);

/// Restores every processor section onto a live stack of the same
/// structure. Returns a reader positioned after the protocol part.
BinReader decodeSsmfp2Stack(std::string_view bytes, SelfStabBfsRouting& routing,
                            Ssmfp2Protocol& forwarding, std::uint64_t structHash);

/// Delta restore of only `processors` plus nexttrace (the SSMFP2 analogue
/// of restoreSsmfpProcessors).
void restoreSsmfp2Processors(std::string_view bytes,
                             std::span<const NodeId> processors,
                             SelfStabBfsRouting& routing,
                             Ssmfp2Protocol& forwarding, std::uint64_t structHash);

// ---------------------------------------------------------------------------
// PIF ('B' 'P' v1)
// ---------------------------------------------------------------------------

/// Appends root + 2-bit-packed per-processor states + pending requests.
void encodePifState(const PifProtocol& pif, std::string& out);

/// Applies an encodePifState() string onto a live protocol on the same
/// tree (size and root verified). Returns a reader positioned after the
/// protocol part.
BinReader decodePifState(std::string_view bytes, PifProtocol& pif);

// ---------------------------------------------------------------------------
// Merlin-Schweitzer baseline ('B' 'M' v1), orientation ('B' 'O' v1) and
// message-passing embedding ('B' 'R' v1): full-state encode plus decode
// onto a FRESHLY CONSTRUCTED instance (these models have no clear-state
// entry points; the explorer does not delta-step them). Mirrors the
// canon*/restore* text pairs field for field, stamps verbatim.
// ---------------------------------------------------------------------------

void encodeBaselineState(const MerlinSchweitzerProtocol& baseline,
                         std::string& out);
void decodeBaselineState(std::string_view bytes,
                         MerlinSchweitzerProtocol& baseline);

void encodeOrientationState(const OrientationForwardingProtocol& orientation,
                            std::string& out);
void decodeOrientationState(std::string_view bytes,
                            OrientationForwardingProtocol& orientation);

void encodeMpState(const MpSsmfpSimulator& sim, std::string& out);
void decodeMpState(std::string_view bytes, MpSsmfpSimulator& sim);

}  // namespace snapfwd::explore
