#include "explore/symmetry.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "graph/builders.hpp"
#include "sim/runner.hpp"

namespace snapfwd::explore {

Perm identityPerm(std::size_t n) {
  Perm perm(n);
  for (std::size_t p = 0; p < n; ++p) perm[p] = static_cast<NodeId>(p);
  return perm;
}

Perm composePerm(const Perm& outer, const Perm& inner) {
  Perm out(inner.size());
  for (std::size_t p = 0; p < inner.size(); ++p) out[p] = outer[inner[p]];
  return out;
}

Perm invertPerm(const Perm& perm) {
  Perm out(perm.size());
  for (std::size_t p = 0; p < perm.size(); ++p) out[perm[p]] = static_cast<NodeId>(p);
  return out;
}

bool isAutomorphism(const Graph& graph, const Perm& perm) {
  const std::size_t n = graph.size();
  if (perm.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (std::size_t p = 0; p < n; ++p) {
    if (perm[p] >= n || seen[perm[p]]) return false;
    seen[perm[p]] = true;
  }
  for (NodeId p = 0; p < n; ++p) {
    if (graph.degree(perm[p]) != graph.degree(p)) return false;
    for (const NodeId q : graph.neighbors(p)) {
      const auto& img = graph.neighbors(perm[p]);
      if (!std::binary_search(img.begin(), img.end(), perm[q])) return false;
    }
  }
  return true;
}

std::vector<Perm> closeGroup(const std::vector<Perm>& generators,
                             std::size_t maxElements) {
  if (generators.empty()) return {};
  const std::size_t n = generators.front().size();
  std::set<Perm> seen;
  std::vector<Perm> group;
  std::vector<Perm> queue;
  const auto push = [&](Perm perm) {
    if (seen.insert(perm).second) {
      group.push_back(perm);
      queue.push_back(std::move(perm));
    }
  };
  push(identityPerm(n));
  for (const Perm& g : generators) {
    if (g.size() == n) push(g);
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    if (group.size() >= maxElements) break;
    const Perm current = queue[head];  // copy: queue may reallocate
    for (const Perm& g : generators) {
      if (g.size() != n) continue;
      push(composePerm(g, current));
      if (group.size() >= maxElements) break;
    }
  }
  return group;
}

namespace {

/// Keeps only the permutations that really are automorphisms of `graph` -
/// belt-and-braces for generator constructions with edge cases (n=1 rings,
/// degenerate tori).
std::vector<Perm> verified(const Graph& graph, std::vector<Perm> perms) {
  std::vector<Perm> out;
  for (Perm& perm : perms) {
    if (isAutomorphism(graph, perm)) out.push_back(std::move(perm));
  }
  return out;
}

std::vector<Perm> ringGenerators(std::size_t n) {
  if (n < 3) return {};
  Perm rotate(n);
  Perm reflect(n);
  for (std::size_t p = 0; p < n; ++p) {
    rotate[p] = static_cast<NodeId>((p + 1) % n);
    reflect[p] = static_cast<NodeId>((n - p) % n);
  }
  return {rotate, reflect};
}

std::vector<Perm> torusGenerators(std::size_t rows, std::size_t cols) {
  if (rows < 3 || cols < 3) return {};  // smaller tori collapse to multigraphs
  const std::size_t n = rows * cols;
  Perm rowShift(n);
  Perm colShift(n);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      rowShift[r * cols + c] = static_cast<NodeId>(((r + 1) % rows) * cols + c);
      colShift[r * cols + c] = static_cast<NodeId>(r * cols + (c + 1) % cols);
    }
  }
  std::vector<Perm> gens{rowShift, colShift};
  if (rows == cols) {
    Perm transpose(n);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        transpose[r * cols + c] = static_cast<NodeId>(c * cols + r);
      }
    }
    gens.push_back(std::move(transpose));
  }
  return gens;
}

std::vector<Perm> hypercubeGenerators(std::size_t dims) {
  if (dims == 0) return {};
  const std::size_t n = std::size_t{1} << dims;
  std::vector<Perm> gens;
  for (std::size_t b = 0; b + 1 < dims; ++b) {
    Perm swapBits(n);
    for (std::size_t v = 0; v < n; ++v) {
      const std::size_t lo = (v >> b) & 1;
      const std::size_t hi = (v >> (b + 1)) & 1;
      std::size_t img = v & ~((std::size_t{1} << b) | (std::size_t{1} << (b + 1)));
      img |= lo << (b + 1);
      img |= hi << b;
      swapBits[v] = static_cast<NodeId>(img);
    }
    gens.push_back(std::move(swapBits));
  }
  Perm flip(n);
  for (std::size_t v = 0; v < n; ++v) {
    flip[v] = static_cast<NodeId>(v ^ 1);
  }
  gens.push_back(std::move(flip));
  return gens;
}

}  // namespace

std::vector<Perm> topologyAutomorphismGenerators(const TopologySpec& spec) {
  switch (spec.kind) {
    case TopologyKind::kRing: {
      Graph graph = topo::ring(spec.n);
      return verified(graph, ringGenerators(spec.n));
    }
    case TopologyKind::kTorus: {
      Graph graph = topo::torus(spec.rows, spec.cols);
      return verified(graph, torusGenerators(spec.rows, spec.cols));
    }
    case TopologyKind::kHypercube: {
      Graph graph = topo::hypercube(spec.dims);
      return verified(graph, hypercubeGenerators(spec.dims));
    }
    default:
      return {};
  }
}

std::vector<Perm> destinationStabilizer(const std::vector<Perm>& group,
                                        const std::vector<NodeId>& destinations,
                                        std::size_t n) {
  if (destinations.empty()) return group;  // all nodes: trivially stabilized
  std::vector<bool> isDest(n, false);
  for (const NodeId d : destinations) {
    if (d < n) isDest[d] = true;
  }
  std::vector<Perm> out;
  for (const Perm& perm : group) {
    bool stable = perm.size() == n;
    for (const NodeId d : destinations) {
      if (d >= n || !isDest[perm[d]]) {
        stable = false;
        break;
      }
    }
    if (stable) out.push_back(perm);
  }
  return out;
}

}  // namespace snapfwd::explore
