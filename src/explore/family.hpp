#pragma once
// Registry of forwarding families at the explore layer: one row per
// ForwardingFamilyId, binding the family name to its explorer model
// factories (the figure-2 corruption-closure and clean start sets of
// models.hpp) and advertising whether the family has a binary state
// codec (codec.hpp). The CLI explore command dispatches through this
// table instead of naming protocols, so a new family only has to add a
// row here (plus its canon/codec/model implementations) to be reachable
// from `snapfwd_cli explore --model=<name>`.
//
// Per-family representation code (canon text, binary codec, invariant
// monitors) stays in its own TU; this table only holds factories. The
// name column mirrors EnumNames<ForwardingFamilyId> - parseEnum and
// findFamilyModelOps agree by construction (pinned by tests).

#include <memory>
#include <span>
#include <string_view>

#include "explore/explore.hpp"
#include "fwd/forwarding.hpp"

namespace snapfwd::explore {

/// One forwarding family's explorer surface.
struct FamilyModelOps {
  ForwardingFamilyId id;
  std::string_view name;
  /// True when codec.hpp has an encode/decode/delta-restore triple for the
  /// family, i.e. --state-codec=binary is native (no text fallback).
  bool hasBinaryCodec;
  /// Figure-2 methodology start sets on the family's reference instance.
  std::unique_ptr<ExploreModel> (*figure2CorruptionModel)();
  std::unique_ptr<ExploreModel> (*figure2CleanModel)();
};

/// All registered families, in ForwardingFamilyId order.
[[nodiscard]] std::span<const FamilyModelOps> familyModelRegistry();

/// Row for `name`, or nullptr if no family has that name.
[[nodiscard]] const FamilyModelOps* findFamilyModelOps(std::string_view name);

}  // namespace snapfwd::explore
