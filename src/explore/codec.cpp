#include "explore/codec.hpp"

#include <cassert>
#include <stdexcept>
#include <string>
#include <vector>

#include "baseline/merlin_schweitzer.hpp"
#include "baseline/orientation_forwarding.hpp"
#include "explore/canon.hpp"
#include "mp/mp_ssmfp.hpp"
#include "pif/pif.hpp"
#include "routing/selfstab_bfs.hpp"
#include "ssmfp/ssmfp.hpp"
#include "ssmfp2/ssmfp2.hpp"

namespace snapfwd::explore {

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

void putVarint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(v) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(static_cast<std::uint8_t>(v)));
}

void putByte(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void putNode(std::string& out, NodeId v) {
  putVarint(out, v == kNoNode ? 0 : static_cast<std::uint64_t>(v) + 1);
}

namespace {

void putU32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(v >> (8 * i))));
  }
}

void patchU32le(std::string& out, std::size_t at, std::uint32_t v) {
  assert(at + 4 <= out.size());
  for (int i = 0; i < 4; ++i) {
    out[at + static_cast<std::size_t>(i)] =
        static_cast<char>(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void putU64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(v >> (8 * i))));
  }
}

}  // namespace

std::uint64_t BinReader::varint() {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (pos_ >= bytes_.size()) fail("truncated varint");
    const auto b = static_cast<std::uint8_t>(bytes_[pos_++]);
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
  }
  fail("varint too long");
}

std::uint8_t BinReader::byte() {
  if (pos_ >= bytes_.size()) fail("truncated byte");
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t BinReader::u32le() {
  if (pos_ + 4 > bytes_.size()) fail("truncated u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t BinReader::u64le() {
  if (pos_ + 8 > bytes_.size()) fail("truncated u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

NodeId BinReader::node() {
  const std::uint64_t raw = varint();
  return raw == 0 ? kNoNode : static_cast<NodeId>(raw - 1);
}

void BinReader::expectMagic(char m0, char m1, std::uint8_t version,
                            const char* what) {
  if (pos_ + 3 > bytes_.size() || bytes_[pos_] != m0 || bytes_[pos_ + 1] != m1 ||
      static_cast<std::uint8_t>(bytes_[pos_ + 2]) != version) {
    fail(what);
  }
  pos_ += 3;
}

void BinReader::seek(std::size_t pos) {
  if (pos > bytes_.size()) fail("seek out of bounds");
  pos_ = pos;
}

void BinReader::fail(const char* what) const {
  throw std::runtime_error(std::string("binary state decode: ") + what);
}

// ---------------------------------------------------------------------------
// SSMFP stack
// ---------------------------------------------------------------------------

namespace {

constexpr char kSsmfpMagic0 = 'B';
constexpr char kSsmfpMagic1 = 'S';
constexpr std::uint8_t kSsmfpVersion = 1;

/// Canonical message fields of the stack form: the guard-visible triplet
/// plus verification metadata, birth stamps omitted (the text canon
/// normalizes them to zero; decode restores zeros).
void putStackMessage(std::string& out, const Message& m) {
  putVarint(out, m.payload);
  putNode(out, m.lastHop);
  putVarint(out, m.color);
  putVarint(out, m.trace);
  putByte(out, m.valid ? 1 : 0);
  putNode(out, m.source);
  putNode(out, m.dest);
}

[[nodiscard]] Message getStackMessage(BinReader& r) {
  Message m;
  m.payload = r.varint();
  m.lastHop = r.node();
  m.color = static_cast<Color>(r.varint());
  m.trace = r.varint();
  m.valid = r.byte() != 0;
  m.source = r.node();
  m.dest = r.node();
  m.bornStep = 0;
  m.bornRound = 0;
  return m;
}

/// Everything processor p owns: its routing table row (all destinations -
/// the routing layer's rules rewrite it), then per model destination the
/// buffer pair + fairness queue, then the outbox. This is the unit the
/// delta path rewinds per written processor.
void encodeSsmfpSection(NodeId p, const Graph& graph,
                        const SelfStabBfsRouting& routing,
                        const SsmfpProtocol& forwarding, std::string& out) {
  for (NodeId d = 0; d < graph.size(); ++d) {
    putVarint(out, routing.dist(p, d));
    putVarint(out, routing.parent(p, d));
  }
  for (const NodeId d : forwarding.destinations()) {
    const Buffer& r = forwarding.bufR(p, d);
    const Buffer& e = forwarding.bufE(p, d);
    putByte(out, static_cast<std::uint8_t>((r.has_value() ? 1 : 0) |
                                           (e.has_value() ? 2 : 0)));
    if (r) putStackMessage(out, *r);
    if (e) putStackMessage(out, *e);
    for (const NodeId c : forwarding.fairnessQueue(p, d)) putVarint(out, c);
  }
  putVarint(out, forwarding.outboxSize(p));
  std::size_t k = 0;
  forwarding.forEachWaiting(p, [&](NodeId dest, Payload payload) {
    putVarint(out, dest);
    putVarint(out, payload);
    putVarint(out, forwarding.waitingTrace(p, k));
    ++k;
  });
}

void decodeSsmfpSection(BinReader& r, NodeId p, const Graph& graph,
                        SelfStabBfsRouting& routing, SsmfpProtocol& forwarding) {
  for (NodeId d = 0; d < graph.size(); ++d) {
    const auto dist = static_cast<std::uint32_t>(r.varint());
    const auto parent = static_cast<NodeId>(r.varint());
    routing.setEntry(p, d, dist, parent);
  }
  std::vector<NodeId> order(graph.degree(p) + 1);
  for (const NodeId d : forwarding.destinations()) {
    const std::uint8_t flags = r.byte();
    if (flags & 1) {
      forwarding.restoreReception(p, d, getStackMessage(r));
    } else {
      forwarding.clearReceptionForRestore(p, d);
    }
    if (flags & 2) {
      forwarding.restoreEmission(p, d, getStackMessage(r));
    } else {
      forwarding.clearEmissionForRestore(p, d);
    }
    for (NodeId& c : order) c = static_cast<NodeId>(r.varint());
    forwarding.setFairnessQueue(p, d, order);
  }
  forwarding.clearOutboxForRestore(p);
  const std::uint64_t waiting = r.varint();
  for (std::uint64_t k = 0; k < waiting; ++k) {
    const auto dest = static_cast<NodeId>(r.varint());
    const Payload payload = r.varint();
    const TraceId trace = r.varint();
    forwarding.restoreOutboxEntry(p, dest, payload, trace);
  }
}

/// Validates header + structure fingerprint; returns a reader at the
/// offset table. `n` is filled with the processor count.
BinReader openSsmfpStack(std::string_view bytes, const Graph& graph,
                         std::uint64_t structHash, std::size_t& n) {
  BinReader r(bytes);
  r.expectMagic(kSsmfpMagic0, kSsmfpMagic1, kSsmfpVersion, "bad ssmfp magic");
  n = r.varint();
  if (n != graph.size()) r.fail("processor count mismatch");
  if (r.u64le() != structHash) r.fail("stack structure mismatch");
  return r;
}

}  // namespace

std::uint64_t ssmfpStructHash(const Graph& graph,
                              const SsmfpProtocol& forwarding) {
  std::string s = "ssmfp-struct";
  putVarint(s, graph.size());
  for (const auto& [u, v] : graph.edges()) {
    putVarint(s, u);
    putVarint(s, v);
  }
  putVarint(s, forwarding.destinations().size());
  for (const NodeId d : forwarding.destinations()) putVarint(s, d);
  putByte(s, static_cast<std::uint8_t>(forwarding.choicePolicy()));
  return hash64(s);
}

void encodeSsmfpStack(const SelfStabBfsRouting& routing,
                      const SsmfpProtocol& forwarding, std::uint64_t structHash,
                      std::string& out) {
  const Graph& graph = forwarding.graph();
  const std::size_t n = graph.size();
  out.push_back(kSsmfpMagic0);
  out.push_back(kSsmfpMagic1);
  putByte(out, kSsmfpVersion);
  putVarint(out, n);
  putU64le(out, structHash);
  const std::size_t table = out.size();
  for (std::size_t i = 0; i <= n; ++i) putU32le(out, 0);
  const std::size_t base = out.size();
  for (NodeId p = 0; p < n; ++p) {
    patchU32le(out, table + 4 * p, static_cast<std::uint32_t>(out.size() - base));
    encodeSsmfpSection(p, graph, routing, forwarding, out);
  }
  patchU32le(out, table + 4 * n, static_cast<std::uint32_t>(out.size() - base));
  putVarint(out, forwarding.nextTraceId());
}

BinReader decodeSsmfpStack(std::string_view bytes, SelfStabBfsRouting& routing,
                           SsmfpProtocol& forwarding, std::uint64_t structHash) {
  const Graph& graph = forwarding.graph();
  std::size_t n = 0;
  BinReader r = openSsmfpStack(bytes, graph, structHash, n);
  const std::size_t table = r.pos();
  const std::size_t base = table + 4 * (n + 1);
  r.seek(base);
  for (NodeId p = 0; p < n; ++p) {
    decodeSsmfpSection(r, p, graph, routing, forwarding);
  }
  forwarding.setNextTraceId(r.varint());
  return r;
}

void restoreSsmfpProcessors(std::string_view bytes,
                            std::span<const NodeId> processors,
                            SelfStabBfsRouting& routing,
                            SsmfpProtocol& forwarding,
                            std::uint64_t structHash) {
  const Graph& graph = forwarding.graph();
  std::size_t n = 0;
  BinReader r = openSsmfpStack(bytes, graph, structHash, n);
  const std::size_t table = r.pos();
  const std::size_t base = table + 4 * (n + 1);
  for (const NodeId p : processors) {
    if (p >= n) r.fail("processor id out of range");
    r.seek(table + 4 * p);
    const std::uint32_t offset = r.u32le();
    r.seek(base + offset);
    decodeSsmfpSection(r, p, graph, routing, forwarding);
  }
  r.seek(table + 4 * n);
  const std::uint32_t end = r.u32le();
  r.seek(base + end);
  forwarding.setNextTraceId(r.varint());
}

// ---------------------------------------------------------------------------
// SSMFP2 stack
// ---------------------------------------------------------------------------

namespace {

constexpr char kSsmfp2Magic0 = 'B';
constexpr char kSsmfp2Magic1 = '2';
constexpr std::uint8_t kSsmfp2Version = 1;

/// Processor section: routing row, then per rank a flag byte
/// (bit 0 occupied, bit 1 ready-state) + message + (k >= 1) the fairness
/// queue, then the outbox. The delta-restore unit, as for SSMFP.
void encodeSsmfp2Section(NodeId p, const Graph& graph,
                         const SelfStabBfsRouting& routing,
                         const Ssmfp2Protocol& forwarding, std::string& out) {
  for (NodeId d = 0; d < graph.size(); ++d) {
    putVarint(out, routing.dist(p, d));
    putVarint(out, routing.parent(p, d));
  }
  for (std::uint32_t k = 0; k <= forwarding.maxRank(); ++k) {
    const Buffer& b = forwarding.slot(p, k);
    const bool ready =
        b.has_value() && forwarding.slotState(p, k) == SlotState::kReady;
    putByte(out, static_cast<std::uint8_t>((b.has_value() ? 1 : 0) |
                                           (ready ? 2 : 0)));
    if (b) putStackMessage(out, *b);
    if (k >= 1) {
      for (const NodeId c : forwarding.fairnessQueue(p, k)) putVarint(out, c);
    }
  }
  putVarint(out, forwarding.outboxSize(p));
  for (std::size_t w = 0; w < forwarding.outboxSize(p); ++w) {
    const auto [dest, payload] = forwarding.waitingAt(p, w);
    putVarint(out, dest);
    putVarint(out, payload);
    putVarint(out, forwarding.waitingTrace(p, w));
  }
}

void decodeSsmfp2Section(BinReader& r, NodeId p, const Graph& graph,
                         SelfStabBfsRouting& routing,
                         Ssmfp2Protocol& forwarding) {
  for (NodeId d = 0; d < graph.size(); ++d) {
    const auto dist = static_cast<std::uint32_t>(r.varint());
    const auto parent = static_cast<NodeId>(r.varint());
    routing.setEntry(p, d, dist, parent);
  }
  std::vector<NodeId> order(graph.degree(p));
  for (std::uint32_t k = 0; k <= forwarding.maxRank(); ++k) {
    const std::uint8_t flags = r.byte();
    if (flags & 1) {
      forwarding.restoreSlot(
          p, k, (flags & 2) ? SlotState::kReady : SlotState::kReceived,
          getStackMessage(r));
    } else {
      forwarding.clearSlotForRestore(p, k);
    }
    if (k >= 1) {
      for (NodeId& c : order) c = static_cast<NodeId>(r.varint());
      forwarding.setFairnessQueue(p, k, order);
    }
  }
  forwarding.clearOutboxForRestore(p);
  const std::uint64_t waiting = r.varint();
  for (std::uint64_t w = 0; w < waiting; ++w) {
    const auto dest = static_cast<NodeId>(r.varint());
    const Payload payload = r.varint();
    const TraceId trace = r.varint();
    forwarding.restoreOutboxEntry(p, dest, payload, trace);
  }
}

BinReader openSsmfp2Stack(std::string_view bytes, const Graph& graph,
                          std::uint64_t structHash, std::size_t& n) {
  BinReader r(bytes);
  r.expectMagic(kSsmfp2Magic0, kSsmfp2Magic1, kSsmfp2Version,
                "bad ssmfp2 magic");
  n = r.varint();
  if (n != graph.size()) r.fail("processor count mismatch");
  if (r.u64le() != structHash) r.fail("stack structure mismatch");
  return r;
}

}  // namespace

std::uint64_t ssmfp2StructHash(const Graph& graph,
                               const Ssmfp2Protocol& forwarding) {
  std::string s = "ssmfp2-struct";
  putVarint(s, graph.size());
  for (const auto& [u, v] : graph.edges()) {
    putVarint(s, u);
    putVarint(s, v);
  }
  putVarint(s, forwarding.destinations().size());
  for (const NodeId d : forwarding.destinations()) putVarint(s, d);
  putVarint(s, forwarding.maxRank());
  return hash64(s);
}

void encodeSsmfp2Stack(const SelfStabBfsRouting& routing,
                       const Ssmfp2Protocol& forwarding, std::uint64_t structHash,
                       std::string& out) {
  const Graph& graph = forwarding.graph();
  const std::size_t n = graph.size();
  out.push_back(kSsmfp2Magic0);
  out.push_back(kSsmfp2Magic1);
  putByte(out, kSsmfp2Version);
  putVarint(out, n);
  putU64le(out, structHash);
  const std::size_t table = out.size();
  for (std::size_t i = 0; i <= n; ++i) putU32le(out, 0);
  const std::size_t base = out.size();
  for (NodeId p = 0; p < n; ++p) {
    patchU32le(out, table + 4 * p, static_cast<std::uint32_t>(out.size() - base));
    encodeSsmfp2Section(p, graph, routing, forwarding, out);
  }
  patchU32le(out, table + 4 * n, static_cast<std::uint32_t>(out.size() - base));
  putVarint(out, forwarding.nextTraceId());
}

BinReader decodeSsmfp2Stack(std::string_view bytes, SelfStabBfsRouting& routing,
                            Ssmfp2Protocol& forwarding,
                            std::uint64_t structHash) {
  const Graph& graph = forwarding.graph();
  std::size_t n = 0;
  BinReader r = openSsmfp2Stack(bytes, graph, structHash, n);
  const std::size_t table = r.pos();
  const std::size_t base = table + 4 * (n + 1);
  r.seek(base);
  for (NodeId p = 0; p < n; ++p) {
    decodeSsmfp2Section(r, p, graph, routing, forwarding);
  }
  forwarding.setNextTraceId(r.varint());
  return r;
}

void restoreSsmfp2Processors(std::string_view bytes,
                             std::span<const NodeId> processors,
                             SelfStabBfsRouting& routing,
                             Ssmfp2Protocol& forwarding,
                             std::uint64_t structHash) {
  const Graph& graph = forwarding.graph();
  std::size_t n = 0;
  BinReader r = openSsmfp2Stack(bytes, graph, structHash, n);
  const std::size_t table = r.pos();
  const std::size_t base = table + 4 * (n + 1);
  for (const NodeId p : processors) {
    if (p >= n) r.fail("processor id out of range");
    r.seek(table + 4 * p);
    const std::uint32_t offset = r.u32le();
    r.seek(base + offset);
    decodeSsmfp2Section(r, p, graph, routing, forwarding);
  }
  r.seek(table + 4 * n);
  const std::uint32_t end = r.u32le();
  r.seek(base + end);
  forwarding.setNextTraceId(r.varint());
}

// ---------------------------------------------------------------------------
// PIF
// ---------------------------------------------------------------------------

void encodePifState(const PifProtocol& pif, std::string& out) {
  const std::size_t n = pif.graph().size();
  out.push_back('B');
  out.push_back('P');
  putByte(out, 1);
  putVarint(out, n);
  putVarint(out, pif.root());
  // 2-bit-packed S_p values, four per byte, low bits first.
  std::uint8_t packed = 0;
  for (NodeId p = 0; p < n; ++p) {
    packed |= static_cast<std::uint8_t>(static_cast<unsigned>(pif.state(p))
                                        << (2 * (p % 4)));
    if (p % 4 == 3 || p + 1 == n) {
      putByte(out, packed);
      packed = 0;
    }
  }
  putVarint(out, pif.pendingRequests());
}

BinReader decodePifState(std::string_view bytes, PifProtocol& pif) {
  BinReader r(bytes);
  r.expectMagic('B', 'P', 1, "bad pif magic");
  const std::size_t n = pif.graph().size();
  if (r.varint() != n) r.fail("processor count mismatch");
  if (r.varint() != pif.root()) r.fail("root mismatch");
  std::uint8_t packed = 0;
  for (NodeId p = 0; p < n; ++p) {
    if (p % 4 == 0) packed = r.byte();
    const unsigned s = (packed >> (2 * (p % 4))) & 3u;
    if (s > 2) r.fail("pif state out of range");
    pif.setState(p, static_cast<PifState>(s));
  }
  pif.setPendingRequests(r.varint());
  return r;
}

// ---------------------------------------------------------------------------
// Merlin-Schweitzer baseline
// ---------------------------------------------------------------------------

void encodeBaselineState(const MerlinSchweitzerProtocol& baseline,
                         std::string& out) {
  const Graph& graph = baseline.graph();
  out.push_back('B');
  out.push_back('M');
  putByte(out, 1);
  putVarint(out, graph.size());
  putVarint(out, baseline.destinations().size());
  for (const NodeId d : baseline.destinations()) putVarint(out, d);
  for (NodeId p = 0; p < graph.size(); ++p) {
    for (const NodeId d : baseline.destinations()) {
      const auto& b = baseline.buffer(p, d);
      putByte(out, static_cast<std::uint8_t>(
                       (b.has_value() ? 1 : 0) |
                       (baseline.genBit(p, d) != 0 ? 2 : 0)));
      if (b) {
        putVarint(out, b->payload);
        putNode(out, b->flag.source);
        putByte(out, b->flag.bit);
        putVarint(out, b->trace);
        putByte(out, b->valid ? 1 : 0);
        putNode(out, b->source);
        putNode(out, b->dest);
        putVarint(out, b->bornStep);
        putVarint(out, b->bornRound);
      }
      for (std::size_t i = 0; i < graph.degree(p); ++i) {
        const auto& f = baseline.lastFlag(p, d, i);
        putByte(out, f.has_value() ? 1 : 0);
        if (f) {
          putNode(out, f->source);
          putByte(out, f->bit);
        }
      }
      for (const NodeId c : baseline.fairnessQueue(p, d)) putVarint(out, c);
    }
    putVarint(out, baseline.outboxSize(p));
    for (std::size_t k = 0; k < baseline.outboxSize(p); ++k) {
      const auto entry = baseline.waitingAt(p, k);
      putVarint(out, entry.dest);
      putVarint(out, entry.payload);
      putVarint(out, entry.trace);
    }
  }
  putVarint(out, baseline.nextTraceId());
}

void decodeBaselineState(std::string_view bytes,
                         MerlinSchweitzerProtocol& baseline) {
  const Graph& graph = baseline.graph();
  BinReader r(bytes);
  r.expectMagic('B', 'M', 1, "bad baseline magic");
  if (r.varint() != graph.size()) r.fail("processor count mismatch");
  if (r.varint() != baseline.destinations().size()) {
    r.fail("destination count mismatch");
  }
  for (const NodeId d : baseline.destinations()) {
    if (r.varint() != d) r.fail("destination set mismatch");
  }
  for (NodeId p = 0; p < graph.size(); ++p) {
    for (const NodeId d : baseline.destinations()) {
      const std::uint8_t flags = r.byte();
      if (flags & 1) {
        BaselineMessage m;
        m.payload = r.varint();
        m.flag.source = r.node();
        m.flag.bit = r.byte();
        m.trace = r.varint();
        m.valid = r.byte() != 0;
        m.source = r.node();
        m.dest = r.node();
        m.bornStep = r.varint();
        m.bornRound = r.varint();
        baseline.restoreBuffer(p, d, m);
      }
      if (flags & 2) baseline.setGenBit(p, d, 1);
      for (std::size_t i = 0; i < graph.degree(p); ++i) {
        if (r.byte() != 0) {
          BaselineFlag f;
          f.source = r.node();
          f.bit = r.byte();
          baseline.setLastFlag(p, d, i, f);
        }
      }
      std::vector<NodeId> order(graph.degree(p) + 1);
      for (NodeId& c : order) c = static_cast<NodeId>(r.varint());
      baseline.setFairnessQueue(p, d, std::move(order));
    }
    const std::uint64_t waiting = r.varint();
    for (std::uint64_t k = 0; k < waiting; ++k) {
      const auto dest = static_cast<NodeId>(r.varint());
      const Payload payload = r.varint();
      const TraceId trace = r.varint();
      baseline.restoreOutboxEntry(p, dest, payload, trace);
    }
  }
  baseline.setNextTraceId(r.varint());
}

// ---------------------------------------------------------------------------
// Orientation (buffer-class) scheme
// ---------------------------------------------------------------------------

void encodeOrientationState(const OrientationForwardingProtocol& orientation,
                            std::string& out) {
  const Graph& graph = orientation.graph();
  const std::size_t n = graph.size();
  const std::size_t k = orientation.classCount();
  out.push_back('B');
  out.push_back('O');
  putByte(out, 1);
  putVarint(out, n);
  putVarint(out, k);
  for (NodeId p = 0; p < n; ++p) {
    for (std::size_t cls = 0; cls < k; ++cls) {
      const auto& b = orientation.buffer(p, cls);
      putByte(out, b.has_value() ? 1 : 0);
      if (b) {
        putVarint(out, b->payload);
        putNode(out, b->dest);
        putNode(out, b->flag.source);
        putNode(out, b->flag.dest);
        putByte(out, b->flag.bit);
        putVarint(out, b->trace);
        putByte(out, b->valid ? 1 : 0);
        putNode(out, b->source);
        putVarint(out, b->bornStep);
        putVarint(out, b->bornRound);
      }
      for (std::size_t i = 0; i < graph.degree(p); ++i) {
        const auto& f = orientation.lastFlag(p, cls, i);
        putByte(out, f.has_value() ? 1 : 0);
        if (f) {
          putNode(out, f->source);
          putNode(out, f->dest);
          putByte(out, f->bit);
        }
      }
    }
    putVarint(out, orientation.outboxSize(p));
    for (std::size_t j = 0; j < orientation.outboxSize(p); ++j) {
      const auto entry = orientation.waitingAt(p, j);
      putVarint(out, entry.dest);
      putVarint(out, entry.payload);
      putVarint(out, entry.trace);
    }
  }
  // Per-(source, dest) generation bits, packed eight per byte.
  std::uint8_t packed = 0;
  std::size_t bit = 0;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (orientation.genBit(s, d) != 0) {
        packed |= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      ++bit;
      if (bit % 8 == 0) {
        putByte(out, packed);
        packed = 0;
      }
    }
  }
  if (bit % 8 != 0) putByte(out, packed);
  putVarint(out, orientation.nextTraceId());
}

void decodeOrientationState(std::string_view bytes,
                            OrientationForwardingProtocol& orientation) {
  const Graph& graph = orientation.graph();
  const std::size_t n = graph.size();
  BinReader r(bytes);
  r.expectMagic('B', 'O', 1, "bad orientation magic");
  if (r.varint() != n) r.fail("processor count mismatch");
  if (r.varint() != orientation.classCount()) r.fail("class count mismatch");
  for (NodeId p = 0; p < n; ++p) {
    for (std::size_t cls = 0; cls < orientation.classCount(); ++cls) {
      if (r.byte() != 0) {
        OrientMessage m;
        m.payload = r.varint();
        m.dest = r.node();
        m.flag.source = r.node();
        m.flag.dest = r.node();
        m.flag.bit = r.byte();
        m.trace = r.varint();
        m.valid = r.byte() != 0;
        m.source = r.node();
        m.bornStep = r.varint();
        m.bornRound = r.varint();
        orientation.restoreBuffer(p, cls, m);
      }
      for (std::size_t i = 0; i < graph.degree(p); ++i) {
        if (r.byte() != 0) {
          OrientFlag f;
          f.source = r.node();
          f.dest = r.node();
          f.bit = r.byte();
          orientation.setLastFlag(p, cls, i, f);
        }
      }
    }
    const std::uint64_t waiting = r.varint();
    for (std::uint64_t j = 0; j < waiting; ++j) {
      const auto dest = static_cast<NodeId>(r.varint());
      const Payload payload = r.varint();
      const TraceId trace = r.varint();
      orientation.restoreOutboxEntry(p, dest, payload, trace);
    }
  }
  std::uint8_t packed = 0;
  std::size_t bit = 0;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (bit % 8 == 0) packed = r.byte();
      if ((packed >> (bit % 8)) & 1u) orientation.setGenBit(s, d, 1);
      ++bit;
    }
  }
  orientation.setNextTraceId(r.varint());
}

// ---------------------------------------------------------------------------
// Message-passing embedding
// ---------------------------------------------------------------------------

namespace {

/// MP messages keep their birth stamps (the text canon stores them
/// verbatim - scripted replays are deterministic).
void putMpMessage(std::string& out, const Message& m) {
  putStackMessage(out, m);
  putVarint(out, m.bornStep);
  putVarint(out, m.bornRound);
}

[[nodiscard]] Message getMpMessage(BinReader& r) {
  Message m = getStackMessage(r);
  m.bornStep = r.varint();
  m.bornRound = r.varint();
  return m;
}

}  // namespace

void encodeMpState(const MpSsmfpSimulator& sim, std::string& out) {
  const Graph& graph = sim.graph();
  out.push_back('B');
  out.push_back('R');
  putByte(out, 1);
  putVarint(out, graph.size());
  putVarint(out, sim.destinations().size());
  for (const NodeId d : sim.destinations()) putVarint(out, d);
  for (NodeId p = 0; p < graph.size(); ++p) {
    for (const NodeId d : sim.destinations()) {
      putVarint(out, sim.routingDist(p, d));
      putNode(out, sim.routingParent(p, d));
      const Buffer& br = sim.bufR(p, d);
      const Buffer& be = sim.bufE(p, d);
      putByte(out, static_cast<std::uint8_t>((br.has_value() ? 1 : 0) |
                                             (be.has_value() ? 2 : 0)));
      if (br) putMpMessage(out, *br);
      if (be) putMpMessage(out, *be);
      for (const NodeId c : sim.fairnessQueue(p, d)) putVarint(out, c);
    }
    putVarint(out, sim.outboxSize(p));
    for (std::size_t k = 0; k < sim.outboxSize(p); ++k) {
      const auto entry = sim.waitingAt(p, k);
      putVarint(out, entry.dest);
      putVarint(out, entry.payload);
      putVarint(out, entry.trace);
    }
  }
  putVarint(out, sim.nextTraceId());
}

void decodeMpState(std::string_view bytes, MpSsmfpSimulator& sim) {
  const Graph& graph = sim.graph();
  BinReader r(bytes);
  r.expectMagic('B', 'R', 1, "bad mp magic");
  if (r.varint() != graph.size()) r.fail("processor count mismatch");
  if (r.varint() != sim.destinations().size()) {
    r.fail("destination count mismatch");
  }
  for (const NodeId d : sim.destinations()) {
    if (r.varint() != d) r.fail("destination set mismatch");
  }
  for (NodeId p = 0; p < graph.size(); ++p) {
    for (const NodeId d : sim.destinations()) {
      const auto dist = static_cast<std::uint32_t>(r.varint());
      const NodeId parent = r.node();
      sim.setRoutingEntry(p, d, dist, parent);
      const std::uint8_t flags = r.byte();
      if (flags & 1) sim.restoreReception(p, d, getMpMessage(r));
      if (flags & 2) sim.restoreEmission(p, d, getMpMessage(r));
      std::vector<NodeId> order(graph.degree(p) + 1);
      for (NodeId& c : order) c = static_cast<NodeId>(r.varint());
      sim.setFairnessQueue(p, d, std::move(order));
    }
    const std::uint64_t waiting = r.varint();
    for (std::uint64_t k = 0; k < waiting; ++k) {
      const auto dest = static_cast<NodeId>(r.varint());
      const Payload payload = r.varint();
      const TraceId trace = r.varint();
      sim.restoreOutboxEntry(p, dest, payload, trace);
    }
  }
  sim.setNextTraceId(r.varint());
}

}  // namespace snapfwd::explore
