#include "explore/canon.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "baseline/merlin_schweitzer.hpp"
#include "baseline/orientation_forwarding.hpp"
#include "graph/graph.hpp"
#include "mp/mp_ssmfp.hpp"
#include "pif/pif.hpp"
#include "routing/selfstab_bfs.hpp"
#include "sim/snapshot.hpp"
#include "ssmfp/ssmfp.hpp"
#include "ssmfp2/ssmfp2.hpp"

namespace snapfwd::explore {

std::uint64_t hash64(std::string_view text) {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV offset basis
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x00000100000001B3ull;  // FNV prime
  }
  return h;
}

namespace {

// ---------------------------------------------------------------------------
// Line-based parsing helpers shared by the restore functions. Each format is
// a header line, a body of space-separated token lines, and a final "end".
// ---------------------------------------------------------------------------

class LineParser {
 public:
  LineParser(const std::string& text, std::string_view format)
      : in_(text), format_(format) {}

  /// Next non-empty line, split into tokens; false at end of input.
  bool next(std::vector<std::string>& tokens) {
    std::string line;
    while (std::getline(in_, line)) {
      ++lineNo_;
      tokens.clear();
      std::istringstream ls(line);
      std::string tok;
      while (ls >> tok) tokens.push_back(tok);
      if (!tokens.empty()) return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error(std::string(format_) + " restore: line " +
                             std::to_string(lineNo_) + ": " + what);
  }

  void expectCount(const std::vector<std::string>& tokens, std::size_t want) const {
    if (tokens.size() != want) {
      fail("expected " + std::to_string(want) + " tokens, got " +
           std::to_string(tokens.size()));
    }
  }

  [[nodiscard]] std::uint64_t num(const std::string& tok) const {
    try {
      std::size_t pos = 0;
      const std::uint64_t v = std::stoull(tok, &pos);
      if (pos != tok.size()) fail("trailing characters in number '" + tok + "'");
      return v;
    } catch (const std::invalid_argument&) {
      fail("not a number: '" + tok + "'");
    } catch (const std::out_of_range&) {
      fail("number out of range: '" + tok + "'");
    }
  }

 private:
  std::istringstream in_;
  std::string_view format_;
  std::size_t lineNo_ = 0;
};

void writeMessageFields(std::ostream& out, const Message& m) {
  out << m.payload << ' ' << m.lastHop << ' ' << m.color << ' ' << m.trace
      << ' ' << (m.valid ? 1 : 0) << ' ' << m.source << ' ' << m.dest << ' '
      << m.bornStep << ' ' << m.bornRound;
}

/// Reads the 9 Message fields starting at tokens[base].
Message parseMessageFields(const LineParser& lp,
                           const std::vector<std::string>& tokens,
                           std::size_t base) {
  Message m;
  m.payload = lp.num(tokens[base]);
  m.lastHop = static_cast<NodeId>(lp.num(tokens[base + 1]));
  m.color = static_cast<Color>(lp.num(tokens[base + 2]));
  m.trace = lp.num(tokens[base + 3]);
  m.valid = lp.num(tokens[base + 4]) != 0;
  m.source = static_cast<NodeId>(lp.num(tokens[base + 5]));
  m.dest = static_cast<NodeId>(lp.num(tokens[base + 6]));
  m.bornStep = lp.num(tokens[base + 7]);
  m.bornRound = lp.num(tokens[base + 8]);
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// SSMFP stack / forwarding-only
// ---------------------------------------------------------------------------

std::string canonSsmfpStack(const Graph& graph, const SelfStabBfsRouting& routing,
                            const SsmfpProtocol& forwarding) {
  SnapshotOptions options;
  options.normalizeBirthStamps = true;
  return snapshotToString(graph, routing, forwarding, options);
}

std::string canonForwardingState(const SsmfpProtocol& forwarding) {
  const Graph& graph = forwarding.graph();
  std::ostringstream out;
  out << "fwdstate v1\n";
  out << "dests " << forwarding.destinations().size();
  for (const NodeId d : forwarding.destinations()) out << ' ' << d;
  out << '\n';
  for (NodeId p = 0; p < graph.size(); ++p) {
    for (const NodeId d : forwarding.destinations()) {
      if (const Buffer& b = forwarding.bufR(p, d)) {
        out << "bufR " << p << ' ' << d << ' ';
        writeMessageFields(out, *b);
        out << '\n';
      }
      if (const Buffer& b = forwarding.bufE(p, d)) {
        out << "bufE " << p << ' ' << d << ' ';
        writeMessageFields(out, *b);
        out << '\n';
      }
      out << "queue " << p << ' ' << d;
      for (const NodeId c : forwarding.fairnessQueue(p, d)) out << ' ' << c;
      out << '\n';
    }
    const std::size_t waiting = forwarding.outboxSize(p);
    std::size_t k = 0;
    forwarding.forEachWaiting(p, [&](NodeId dest, Payload payload) {
      out << "outbox " << p << ' ' << dest << ' ' << payload << ' '
          << forwarding.waitingTrace(p, k) << '\n';
      ++k;
    });
    assert(k == waiting);
    (void)waiting;
  }
  out << "nexttrace " << forwarding.nextTraceId() << '\n';
  out << "end\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// SSMFP2 stack
// ---------------------------------------------------------------------------

std::string canonSsmfp2Stack(const SelfStabBfsRouting& routing,
                             const Ssmfp2Protocol& forwarding) {
  const Graph& graph = forwarding.graph();
  std::ostringstream out;
  out << "ssmfp2stack v1\n";
  out << "maxrank " << forwarding.maxRank() << '\n';
  out << "dests " << forwarding.destinations().size();
  for (const NodeId d : forwarding.destinations()) out << ' ' << d;
  out << '\n';
  for (NodeId p = 0; p < graph.size(); ++p) {
    for (NodeId d = 0; d < graph.size(); ++d) {
      out << "routing " << p << ' ' << d << ' ' << routing.dist(p, d) << ' '
          << routing.parent(p, d) << '\n';
    }
  }
  for (NodeId p = 0; p < graph.size(); ++p) {
    for (std::uint32_t k = 0; k <= forwarding.maxRank(); ++k) {
      if (const Buffer& b = forwarding.slot(p, k)) {
        Message norm = *b;  // stamps normalized for path-independent dedupe
        norm.bornStep = 0;
        norm.bornRound = 0;
        out << "slot " << p << ' ' << k << ' '
            << (forwarding.slotState(p, k) == SlotState::kReady ? 1 : 0) << ' ';
        writeMessageFields(out, norm);
        out << '\n';
      }
      if (k >= 1) {
        out << "queue " << p << ' ' << k;
        for (const NodeId c : forwarding.fairnessQueue(p, k)) out << ' ' << c;
        out << '\n';
      }
    }
    for (std::size_t w = 0; w < forwarding.outboxSize(p); ++w) {
      const auto [dest, payload] = forwarding.waitingAt(p, w);
      out << "outbox " << p << ' ' << dest << ' ' << payload << ' '
          << forwarding.waitingTrace(p, w) << '\n';
    }
  }
  out << "nexttrace " << forwarding.nextTraceId() << '\n';
  out << "end\n";
  return out.str();
}

void restoreSsmfp2Stack(SelfStabBfsRouting& routing, Ssmfp2Protocol& forwarding,
                        const std::string& canon) {
  const Graph& graph = forwarding.graph();
  // The text lists only occupied slots/waiting entries: wipe first.
  for (NodeId p = 0; p < graph.size(); ++p) {
    for (std::uint32_t k = 0; k <= forwarding.maxRank(); ++k) {
      forwarding.clearSlotForRestore(p, k);
    }
    forwarding.clearOutboxForRestore(p);
  }
  LineParser lp(canon, "ssmfp2stack");
  std::vector<std::string> tokens;
  if (!lp.next(tokens) || tokens.size() != 2 || tokens[0] != "ssmfp2stack" ||
      tokens[1] != "v1") {
    lp.fail("expected header 'ssmfp2stack v1'");
  }
  bool done = false;
  while (!done && lp.next(tokens)) {
    if (tokens[0] == "maxrank") {
      lp.expectCount(tokens, 2);
      if (lp.num(tokens[1]) != forwarding.maxRank()) lp.fail("maxrank mismatch");
    } else if (tokens[0] == "dests") {
      if (tokens.size() < 2) lp.fail("truncated dests line");
      const std::uint64_t count = lp.num(tokens[1]);
      lp.expectCount(tokens, 2 + count);
      if (count != forwarding.destinations().size()) lp.fail("dest count mismatch");
      for (std::size_t i = 0; i < count; ++i) {
        if (static_cast<NodeId>(lp.num(tokens[2 + i])) !=
            forwarding.destinations()[i]) {
          lp.fail("destination set mismatch");
        }
      }
    } else if (tokens[0] == "routing") {
      lp.expectCount(tokens, 5);
      routing.setEntry(static_cast<NodeId>(lp.num(tokens[1])),
                       static_cast<NodeId>(lp.num(tokens[2])),
                       static_cast<std::uint32_t>(lp.num(tokens[3])),
                       static_cast<NodeId>(lp.num(tokens[4])));
    } else if (tokens[0] == "slot") {
      lp.expectCount(tokens, 13);
      const auto p = static_cast<NodeId>(lp.num(tokens[1]));
      const auto k = static_cast<std::uint32_t>(lp.num(tokens[2]));
      if (p >= graph.size() || k > forwarding.maxRank()) lp.fail("slot out of range");
      const SlotState state =
          lp.num(tokens[3]) != 0 ? SlotState::kReady : SlotState::kReceived;
      forwarding.restoreSlot(p, k, state, parseMessageFields(lp, tokens, 4));
    } else if (tokens[0] == "queue") {
      if (tokens.size() < 3) lp.fail("truncated queue line");
      const auto p = static_cast<NodeId>(lp.num(tokens[1]));
      const auto k = static_cast<std::uint32_t>(lp.num(tokens[2]));
      if (p >= graph.size() || k < 1 || k > forwarding.maxRank()) {
        lp.fail("queue out of range");
      }
      std::vector<NodeId> order;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        order.push_back(static_cast<NodeId>(lp.num(tokens[i])));
      }
      forwarding.setFairnessQueue(p, k, std::move(order));
    } else if (tokens[0] == "outbox") {
      lp.expectCount(tokens, 5);
      forwarding.restoreOutboxEntry(static_cast<NodeId>(lp.num(tokens[1])),
                                    static_cast<NodeId>(lp.num(tokens[2])),
                                    lp.num(tokens[3]), lp.num(tokens[4]));
    } else if (tokens[0] == "nexttrace") {
      lp.expectCount(tokens, 2);
      forwarding.setNextTraceId(lp.num(tokens[1]));
    } else if (tokens[0] == "end") {
      done = true;
    } else {
      lp.fail("unknown directive '" + tokens[0] + "'");
    }
  }
  if (!done) lp.fail("missing 'end'");
}

// ---------------------------------------------------------------------------
// PIF
// ---------------------------------------------------------------------------

std::string canonPifState(const PifProtocol& pif) {
  std::ostringstream out;
  out << "pif v1\n";
  out << "root " << pif.root() << '\n';
  out << "states";
  for (NodeId p = 0; p < pif.graph().size(); ++p) {
    out << ' ' << static_cast<unsigned>(pif.state(p));
  }
  out << '\n';
  out << "pending " << pif.pendingRequests() << '\n';
  out << "end\n";
  return out.str();
}

void restorePifState(PifProtocol& pif, const std::string& canon) {
  LineParser lp(canon, "pif");
  std::vector<std::string> tokens;
  if (!lp.next(tokens) || tokens.size() != 2 || tokens[0] != "pif" ||
      tokens[1] != "v1") {
    lp.fail("expected header 'pif v1'");
  }
  bool done = false;
  while (!done && lp.next(tokens)) {
    if (tokens[0] == "root") {
      lp.expectCount(tokens, 2);
      if (static_cast<NodeId>(lp.num(tokens[1])) != pif.root()) {
        lp.fail("root mismatch");
      }
    } else if (tokens[0] == "states") {
      if (tokens.size() != 1 + pif.graph().size()) lp.fail("state count mismatch");
      for (NodeId p = 0; p < pif.graph().size(); ++p) {
        const std::uint64_t s = lp.num(tokens[1 + p]);
        if (s > 2) lp.fail("state out of range");
        pif.setState(p, static_cast<PifState>(s));
      }
    } else if (tokens[0] == "pending") {
      lp.expectCount(tokens, 2);
      const std::uint64_t want = lp.num(tokens[1]);
      if (pif.pendingRequests() > want) lp.fail("pending requests already above target");
      while (pif.pendingRequests() < want) pif.requestWave();
    } else if (tokens[0] == "end") {
      done = true;
    } else {
      lp.fail("unknown directive '" + tokens[0] + "'");
    }
  }
  if (!done) lp.fail("missing 'end'");
}

// ---------------------------------------------------------------------------
// Merlin-Schweitzer destination-based baseline
// ---------------------------------------------------------------------------

std::string canonBaselineState(const MerlinSchweitzerProtocol& baseline) {
  const Graph& graph = baseline.graph();
  std::ostringstream out;
  out << "msbaseline v1\n";
  out << "dests " << baseline.destinations().size();
  for (const NodeId d : baseline.destinations()) out << ' ' << d;
  out << '\n';
  for (NodeId p = 0; p < graph.size(); ++p) {
    for (const NodeId d : baseline.destinations()) {
      if (const auto& b = baseline.buffer(p, d)) {
        out << "buf " << p << ' ' << d << ' ' << b->payload << ' '
            << b->flag.source << ' ' << static_cast<unsigned>(b->flag.bit) << ' '
            << b->trace << ' ' << (b->valid ? 1 : 0) << ' ' << b->source << ' '
            << b->dest << ' ' << b->bornStep << ' ' << b->bornRound << '\n';
      }
      for (std::size_t i = 0; i < graph.degree(p); ++i) {
        if (const auto& f = baseline.lastFlag(p, d, i)) {
          out << "lastflag " << p << ' ' << d << ' ' << i << ' ' << f->source
              << ' ' << static_cast<unsigned>(f->bit) << '\n';
        }
      }
      if (baseline.genBit(p, d) != 0) {
        out << "genbit " << p << ' ' << d << '\n';
      }
      out << "queue " << p << ' ' << d;
      for (const NodeId c : baseline.fairnessQueue(p, d)) out << ' ' << c;
      out << '\n';
    }
    for (std::size_t k = 0; k < baseline.outboxSize(p); ++k) {
      const auto entry = baseline.waitingAt(p, k);
      out << "outbox " << p << ' ' << entry.dest << ' ' << entry.payload << ' '
          << entry.trace << '\n';
    }
  }
  out << "nexttrace " << baseline.nextTraceId() << '\n';
  out << "end\n";
  return out.str();
}

void restoreBaselineState(MerlinSchweitzerProtocol& baseline,
                          const std::string& canon) {
  const Graph& graph = baseline.graph();
  LineParser lp(canon, "msbaseline");
  std::vector<std::string> tokens;
  if (!lp.next(tokens) || tokens.size() != 2 || tokens[0] != "msbaseline" ||
      tokens[1] != "v1") {
    lp.fail("expected header 'msbaseline v1'");
  }
  bool done = false;
  while (!done && lp.next(tokens)) {
    if (tokens[0] == "dests") {
      if (tokens.size() < 2 ||
          lp.num(tokens[1]) != baseline.destinations().size() ||
          tokens.size() != 2 + baseline.destinations().size()) {
        lp.fail("destination set mismatch");
      }
      for (std::size_t i = 0; i < baseline.destinations().size(); ++i) {
        if (static_cast<NodeId>(lp.num(tokens[2 + i])) !=
            baseline.destinations()[i]) {
          lp.fail("destination set mismatch");
        }
      }
    } else if (tokens[0] == "buf") {
      lp.expectCount(tokens, 12);
      BaselineMessage m;
      const NodeId p = static_cast<NodeId>(lp.num(tokens[1]));
      const NodeId d = static_cast<NodeId>(lp.num(tokens[2]));
      m.payload = lp.num(tokens[3]);
      m.flag.source = static_cast<NodeId>(lp.num(tokens[4]));
      m.flag.bit = static_cast<std::uint8_t>(lp.num(tokens[5]));
      m.trace = lp.num(tokens[6]);
      m.valid = lp.num(tokens[7]) != 0;
      m.source = static_cast<NodeId>(lp.num(tokens[8]));
      m.dest = static_cast<NodeId>(lp.num(tokens[9]));
      m.bornStep = lp.num(tokens[10]);
      m.bornRound = lp.num(tokens[11]);
      baseline.restoreBuffer(p, d, m);
    } else if (tokens[0] == "lastflag") {
      lp.expectCount(tokens, 6);
      BaselineFlag f;
      const NodeId p = static_cast<NodeId>(lp.num(tokens[1]));
      const NodeId d = static_cast<NodeId>(lp.num(tokens[2]));
      const std::size_t i = lp.num(tokens[3]);
      f.source = static_cast<NodeId>(lp.num(tokens[4]));
      f.bit = static_cast<std::uint8_t>(lp.num(tokens[5]));
      if (i >= graph.degree(p)) lp.fail("neighbor index out of range");
      baseline.setLastFlag(p, d, i, f);
    } else if (tokens[0] == "genbit") {
      lp.expectCount(tokens, 3);
      baseline.setGenBit(static_cast<NodeId>(lp.num(tokens[1])),
                         static_cast<NodeId>(lp.num(tokens[2])), 1);
    } else if (tokens[0] == "queue") {
      if (tokens.size() < 3) lp.fail("queue line too short");
      const NodeId p = static_cast<NodeId>(lp.num(tokens[1]));
      if (tokens.size() != 3 + graph.degree(p) + 1) lp.fail("queue length mismatch");
      std::vector<NodeId> order;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        order.push_back(static_cast<NodeId>(lp.num(tokens[i])));
      }
      baseline.setFairnessQueue(p, static_cast<NodeId>(lp.num(tokens[2])),
                                std::move(order));
    } else if (tokens[0] == "outbox") {
      lp.expectCount(tokens, 5);
      baseline.restoreOutboxEntry(static_cast<NodeId>(lp.num(tokens[1])),
                                  static_cast<NodeId>(lp.num(tokens[2])),
                                  lp.num(tokens[3]), lp.num(tokens[4]));
    } else if (tokens[0] == "nexttrace") {
      lp.expectCount(tokens, 2);
      baseline.setNextTraceId(lp.num(tokens[1]));
    } else if (tokens[0] == "end") {
      done = true;
    } else {
      lp.fail("unknown directive '" + tokens[0] + "'");
    }
  }
  if (!done) lp.fail("missing 'end'");
}

// ---------------------------------------------------------------------------
// Orientation (buffer-class) scheme
// ---------------------------------------------------------------------------

std::string canonOrientationState(const OrientationForwardingProtocol& orientation) {
  const Graph& graph = orientation.graph();
  const std::size_t k = orientation.classCount();
  const std::size_t n = graph.size();
  std::ostringstream out;
  out << "orient v1\n";
  out << "classes " << k << '\n';
  for (NodeId p = 0; p < n; ++p) {
    for (std::size_t cls = 0; cls < k; ++cls) {
      if (const auto& b = orientation.buffer(p, cls)) {
        out << "buf " << p << ' ' << cls << ' ' << b->payload << ' ' << b->dest
            << ' ' << b->flag.source << ' ' << b->flag.dest << ' '
            << static_cast<unsigned>(b->flag.bit) << ' ' << b->trace << ' '
            << (b->valid ? 1 : 0) << ' ' << b->source << ' ' << b->bornStep
            << ' ' << b->bornRound << '\n';
      }
      for (std::size_t i = 0; i < graph.degree(p); ++i) {
        if (const auto& f = orientation.lastFlag(p, cls, i)) {
          out << "lastflag " << p << ' ' << cls << ' ' << i << ' ' << f->source
              << ' ' << f->dest << ' ' << static_cast<unsigned>(f->bit) << '\n';
        }
      }
    }
    for (std::size_t j = 0; j < orientation.outboxSize(p); ++j) {
      const auto entry = orientation.waitingAt(p, j);
      out << "outbox " << p << ' ' << entry.dest << ' ' << entry.payload << ' '
          << entry.trace << '\n';
    }
  }
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (orientation.genBit(s, d) != 0) {
        out << "genbit " << s << ' ' << d << '\n';
      }
    }
  }
  out << "nexttrace " << orientation.nextTraceId() << '\n';
  out << "end\n";
  return out.str();
}

void restoreOrientationState(OrientationForwardingProtocol& orientation,
                             const std::string& canon) {
  const Graph& graph = orientation.graph();
  LineParser lp(canon, "orient");
  std::vector<std::string> tokens;
  if (!lp.next(tokens) || tokens.size() != 2 || tokens[0] != "orient" ||
      tokens[1] != "v1") {
    lp.fail("expected header 'orient v1'");
  }
  bool done = false;
  while (!done && lp.next(tokens)) {
    if (tokens[0] == "classes") {
      lp.expectCount(tokens, 2);
      if (lp.num(tokens[1]) != orientation.classCount()) {
        lp.fail("class count mismatch");
      }
    } else if (tokens[0] == "buf") {
      lp.expectCount(tokens, 13);
      OrientMessage m;
      const NodeId p = static_cast<NodeId>(lp.num(tokens[1]));
      const std::size_t cls = lp.num(tokens[2]);
      m.payload = lp.num(tokens[3]);
      m.dest = static_cast<NodeId>(lp.num(tokens[4]));
      m.flag.source = static_cast<NodeId>(lp.num(tokens[5]));
      m.flag.dest = static_cast<NodeId>(lp.num(tokens[6]));
      m.flag.bit = static_cast<std::uint8_t>(lp.num(tokens[7]));
      m.trace = lp.num(tokens[8]);
      m.valid = lp.num(tokens[9]) != 0;
      m.source = static_cast<NodeId>(lp.num(tokens[10]));
      m.bornStep = lp.num(tokens[11]);
      m.bornRound = lp.num(tokens[12]);
      if (cls >= orientation.classCount()) lp.fail("class out of range");
      orientation.restoreBuffer(p, cls, m);
    } else if (tokens[0] == "lastflag") {
      lp.expectCount(tokens, 7);
      OrientFlag f;
      const NodeId p = static_cast<NodeId>(lp.num(tokens[1]));
      const std::size_t cls = lp.num(tokens[2]);
      const std::size_t i = lp.num(tokens[3]);
      f.source = static_cast<NodeId>(lp.num(tokens[4]));
      f.dest = static_cast<NodeId>(lp.num(tokens[5]));
      f.bit = static_cast<std::uint8_t>(lp.num(tokens[6]));
      if (cls >= orientation.classCount() || i >= graph.degree(p)) {
        lp.fail("lastflag index out of range");
      }
      orientation.setLastFlag(p, cls, i, f);
    } else if (tokens[0] == "genbit") {
      lp.expectCount(tokens, 3);
      orientation.setGenBit(static_cast<NodeId>(lp.num(tokens[1])),
                            static_cast<NodeId>(lp.num(tokens[2])), 1);
    } else if (tokens[0] == "outbox") {
      lp.expectCount(tokens, 5);
      orientation.restoreOutboxEntry(static_cast<NodeId>(lp.num(tokens[1])),
                                     static_cast<NodeId>(lp.num(tokens[2])),
                                     lp.num(tokens[3]), lp.num(tokens[4]));
    } else if (tokens[0] == "nexttrace") {
      lp.expectCount(tokens, 2);
      orientation.setNextTraceId(lp.num(tokens[1]));
    } else if (tokens[0] == "end") {
      done = true;
    } else {
      lp.fail("unknown directive '" + tokens[0] + "'");
    }
  }
  if (!done) lp.fail("missing 'end'");
}

// ---------------------------------------------------------------------------
// Message-passing embedding (protocol-visible state only)
// ---------------------------------------------------------------------------

std::string canonMpState(const MpSsmfpSimulator& sim) {
  const Graph& graph = sim.graph();
  std::ostringstream out;
  out << "mp-ssmfp v1\n";
  out << "dests " << sim.destinations().size();
  for (const NodeId d : sim.destinations()) out << ' ' << d;
  out << '\n';
  for (NodeId p = 0; p < graph.size(); ++p) {
    for (const NodeId d : sim.destinations()) {
      out << "routing " << p << ' ' << d << ' ' << sim.routingDist(p, d) << ' '
          << sim.routingParent(p, d) << '\n';
      if (const Buffer& b = sim.bufR(p, d)) {
        out << "bufR " << p << ' ' << d << ' ';
        writeMessageFields(out, *b);
        out << '\n';
      }
      if (const Buffer& b = sim.bufE(p, d)) {
        out << "bufE " << p << ' ' << d << ' ';
        writeMessageFields(out, *b);
        out << '\n';
      }
      out << "queue " << p << ' ' << d;
      for (const NodeId c : sim.fairnessQueue(p, d)) out << ' ' << c;
      out << '\n';
    }
    for (std::size_t k = 0; k < sim.outboxSize(p); ++k) {
      const auto entry = sim.waitingAt(p, k);
      out << "outbox " << p << ' ' << entry.dest << ' ' << entry.payload << ' '
          << entry.trace << '\n';
    }
  }
  out << "nexttrace " << sim.nextTraceId() << '\n';
  out << "end\n";
  return out.str();
}

void restoreMpState(MpSsmfpSimulator& sim, const std::string& canon) {
  const Graph& graph = sim.graph();
  LineParser lp(canon, "mp-ssmfp");
  std::vector<std::string> tokens;
  if (!lp.next(tokens) || tokens.size() != 2 || tokens[0] != "mp-ssmfp" ||
      tokens[1] != "v1") {
    lp.fail("expected header 'mp-ssmfp v1'");
  }
  bool done = false;
  while (!done && lp.next(tokens)) {
    if (tokens[0] == "dests") {
      if (tokens.size() < 2 || lp.num(tokens[1]) != sim.destinations().size() ||
          tokens.size() != 2 + sim.destinations().size()) {
        lp.fail("destination set mismatch");
      }
      for (std::size_t i = 0; i < sim.destinations().size(); ++i) {
        if (static_cast<NodeId>(lp.num(tokens[2 + i])) != sim.destinations()[i]) {
          lp.fail("destination set mismatch");
        }
      }
    } else if (tokens[0] == "routing") {
      lp.expectCount(tokens, 5);
      sim.setRoutingEntry(static_cast<NodeId>(lp.num(tokens[1])),
                          static_cast<NodeId>(lp.num(tokens[2])),
                          static_cast<std::uint32_t>(lp.num(tokens[3])),
                          static_cast<NodeId>(lp.num(tokens[4])));
    } else if (tokens[0] == "bufR" || tokens[0] == "bufE") {
      lp.expectCount(tokens, 12);
      const NodeId p = static_cast<NodeId>(lp.num(tokens[1]));
      const NodeId d = static_cast<NodeId>(lp.num(tokens[2]));
      const Message m = parseMessageFields(lp, tokens, 3);
      if (tokens[0] == "bufR") {
        sim.restoreReception(p, d, m);
      } else {
        sim.restoreEmission(p, d, m);
      }
    } else if (tokens[0] == "queue") {
      if (tokens.size() < 3) lp.fail("queue line too short");
      const NodeId p = static_cast<NodeId>(lp.num(tokens[1]));
      if (tokens.size() != 3 + graph.degree(p) + 1) lp.fail("queue length mismatch");
      std::vector<NodeId> order;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        order.push_back(static_cast<NodeId>(lp.num(tokens[i])));
      }
      sim.setFairnessQueue(p, static_cast<NodeId>(lp.num(tokens[2])),
                           std::move(order));
    } else if (tokens[0] == "outbox") {
      lp.expectCount(tokens, 5);
      sim.restoreOutboxEntry(static_cast<NodeId>(lp.num(tokens[1])),
                             static_cast<NodeId>(lp.num(tokens[2])),
                             lp.num(tokens[3]), lp.num(tokens[4]));
    } else if (tokens[0] == "nexttrace") {
      lp.expectCount(tokens, 2);
      sim.setNextTraceId(lp.num(tokens[1]));
    } else if (tokens[0] == "end") {
      done = true;
    } else {
      lp.fail("unknown directive '" + tokens[0] + "'");
    }
  }
  if (!done) lp.fail("missing 'end'");
}

}  // namespace snapfwd::explore
