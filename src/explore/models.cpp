#include "explore/models.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "checker/invariants.hpp"
#include "checker/invariants2.hpp"
#include "core/engine.hpp"
#include "explore/canon.hpp"
#include "explore/codec.hpp"
#include "graph/builders.hpp"
#include "pif/pif.hpp"
#include "routing/selfstab_bfs.hpp"
#include "sim/runner.hpp"  // TopologySpec
#include "sim/snapshot.hpp"

namespace snapfwd::explore {

namespace {

// ---------------------------------------------------------------------------
// ForcedDaemon: replays exactly the explorer-chosen move, matching enabled
// entries by (processor, layer, action). A selection that matches nothing
// clears the choice set (halting the engine) and reports the desync.
// ---------------------------------------------------------------------------

class ForcedDaemon final : public Daemon {
 public:
  [[nodiscard]] std::string_view name() const override { return "forced"; }

  void choose(std::uint64_t /*step*/, const std::vector<EnabledProcessor>& enabled,
              std::vector<Choice>& out) override {
    out.clear();
    matched_ = move_ != nullptr;
    if (move_ == nullptr) return;
    for (const StepSelection& sel : *move_) {
      bool found = false;
      for (std::size_t e = 0; e < enabled.size() && !found; ++e) {
        if (enabled[e].p != sel.p || enabled[e].layer != sel.layer) continue;
        for (std::size_t a = 0; a < enabled[e].actions.size(); ++a) {
          if (enabled[e].actions[a] == sel.action) {
            out.push_back({e, a});
            found = true;
            break;
          }
        }
      }
      if (!found) {
        matched_ = false;
        out.clear();
        return;
      }
    }
  }

  void setMove(const Move* move) { move_ = move; }
  [[nodiscard]] bool matched() const { return matched_; }

 private:
  const Move* move_ = nullptr;
  bool matched_ = false;
};

std::string monitorTail(const std::vector<TraceId>& outstanding,
                        std::uint64_t invalidDeliveries) {
  std::ostringstream out;
  out << "outstanding " << outstanding.size();
  for (const TraceId t : outstanding) out << ' ' << t;
  out << '\n';
  out << "invdel " << invalidDeliveries << '\n';
  return out.str();
}

/// Shared delivery monitor for forwarding families: folds the records past
/// the watermarks into (outstanding, invalidDeliveries) and raises
/// misdelivery/duplicate-delivery violations. The record vectors accumulate
/// over the instance's lifetime (counterexample replay applies many moves
/// to one instance), so consume from the watermark on.
void ingestForwardingEvents(const ForwardingProtocol& fwd, std::size_t& genSeen,
                            std::size_t& delSeen,
                            std::vector<TraceId>& outstanding,
                            std::uint64_t& invalidDeliveries,
                            std::optional<ModelViolation>& stepViolation) {
  const auto& allGens = fwd.generations();
  const auto& allDels = fwd.deliveries();
  const std::span<const GenerationRecord> gens{allGens.data() + genSeen,
                                               allGens.size() - genSeen};
  const std::span<const DeliveryRecord> dels{allDels.data() + delSeen,
                                             allDels.size() - delSeen};
  genSeen = allGens.size();
  delSeen = allDels.size();
  for (const GenerationRecord& gen : gens) {
    const auto it = std::lower_bound(outstanding.begin(), outstanding.end(),
                                     gen.msg.trace);
    outstanding.insert(it, gen.msg.trace);
  }
  for (const DeliveryRecord& del : dels) {
    if (!del.msg.valid) {
      ++invalidDeliveries;
      continue;
    }
    if (del.msg.dest != del.at) {
      std::ostringstream msg;
      msg << "valid trace " << del.msg.trace << " (payload " << del.msg.payload
          << ") delivered at node " << del.at << " but addressed to "
          << del.msg.dest;
      if (!stepViolation) stepViolation = ModelViolation{"misdelivery", msg.str()};
      continue;
    }
    const auto it = std::lower_bound(outstanding.begin(), outstanding.end(),
                                     del.msg.trace);
    if (it == outstanding.end() || *it != del.msg.trace) {
      std::ostringstream msg;
      msg << "valid trace " << del.msg.trace << " (payload " << del.msg.payload
          << ") delivered at node " << del.at
          << " a second time (not outstanding)";
      if (!stepViolation) {
        stepViolation = ModelViolation{"duplicate-delivery", msg.str()};
      }
      continue;
    }
    outstanding.erase(it);
  }
}

// ---------------------------------------------------------------------------
// SSMFP instance
// ---------------------------------------------------------------------------

class SsmfpInstance final : public ModelInstance {
 public:
  SsmfpInstance(const std::string& state, SsmfpGuardMutation mutation) {
    std::istringstream in(state);
    stack_ = readSnapshot(in);  // consumes through "end"; tail follows
    std::string key;
    std::size_t count = 0;
    if (!(in >> key) || key != "outstanding" || !(in >> count)) {
      throw std::runtime_error("ssmfp explore state: missing monitor tail");
    }
    outstanding_.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (!(in >> outstanding_[i])) {
        throw std::runtime_error("ssmfp explore state: truncated outstanding list");
      }
    }
    if (!(in >> key) || key != "invdel" || !(in >> invalidDeliveries_)) {
      throw std::runtime_error("ssmfp explore state: missing invdel line");
    }
    std::sort(outstanding_.begin(), outstanding_.end());
    if (mutation != SsmfpGuardMutation::kNone) {
      stack_.forwarding->setGuardMutationForTest(mutation);
    }
    // Built with default EngineOptions, so the scan/exec strategy resolves
    // through the process defaults: wrapping explore() in
    // ScopedEngineDefaults{.execMode = kKernel} routes the entire closure
    // computation through guard kernels (test_exec_modes pins identical
    // closure counts; bench_explore's --exec axis measures it).
    engine_ = std::make_unique<Engine>(
        *stack_.graph,
        std::vector<Protocol*>{stack_.routing.get(), stack_.forwarding.get()},
        daemon_);
    stack_.forwarding->attachEngine(engine_.get());
    structHash_ = ssmfpStructHash(*stack_.graph, *stack_.forwarding);
  }

  [[nodiscard]] bool supportsBinaryCodec() const override { return true; }

  void encodeState(std::string& out) override {
    encodeSsmfpStack(*stack_.routing, *stack_.forwarding, structHash_, out);
    putVarint(out, outstanding_.size());
    for (const TraceId t : outstanding_) putVarint(out, t);
    putVarint(out, invalidDeliveries_);
  }

  void restoreState(std::string_view bytes) override {
    BinReader r = decodeSsmfpStack(bytes, *stack_.routing, *stack_.forwarding,
                                   structHash_);
    outstanding_.resize(r.varint());
    for (TraceId& t : outstanding_) t = r.varint();  // stored sorted
    invalidDeliveries_ = r.varint();
    // Re-baseline the monitor: this instance's accumulated event records
    // belong to a different path through the state space.
    stack_.forwarding->clearEventRecordsForRestore();
    genSeen_ = 0;
    delSeen_ = 0;
    stepViolation_.reset();
    // Keep the parent for the per-successor delta undo.
    parentState_.assign(bytes.data(), bytes.size());
    parentOutstanding_ = outstanding_;
    parentInvalidDeliveries_ = invalidDeliveries_;
  }

  void undoToRestored() override {
    // Rewind exactly the processors the committed step wrote (the engine's
    // commit write sets cover every mutated variable per the state-model
    // contract), plus the trace counter and the monitor copies.
    restoreSsmfpProcessors(parentState_, engine_->lastStepWrites(),
                           *stack_.routing, *stack_.forwarding, structHash_);
    outstanding_ = parentOutstanding_;
    invalidDeliveries_ = parentInvalidDeliveries_;
    stepViolation_.reset();
    // ingestEvents() already advanced the watermarks past the undone step's
    // records, so stale events can never be re-ingested.
  }

  void enumerateMoves(DaemonClosure closure, std::size_t maxMoves,
                      std::vector<Move>& out, bool& truncated) override {
    (void)engine_->isTerminal();  // refreshes the enabled set
    enumerateMovesFromEnabled(engine_->lastEnabled(), closure, maxMoves, out,
                              truncated);
  }

  [[nodiscard]] bool apply(const Move& move) override {
    daemon_.setMove(&move);
    const bool stepped = engine_->step();
    daemon_.setMove(nullptr);
    if (!stepped || !daemon_.matched()) return false;
    ingestEvents();
    return true;
  }

  [[nodiscard]] std::string serialize() override {
    return canonSsmfpStack(*stack_.graph, *stack_.routing, *stack_.forwarding) +
           monitorTail(outstanding_, invalidDeliveries_);
  }

  [[nodiscard]] std::optional<ModelViolation> checkState() override {
    if (stepViolation_) return stepViolation_;
    if (auto v = checkBufferWellFormedness(*stack_.forwarding)) {
      return ModelViolation{"buffer-well-formedness", std::move(*v)};
    }
    if (auto v = checkSingleEmissionCopy(*stack_.forwarding)) {
      return ModelViolation{"multiple-emission-copies", std::move(*v)};
    }
    if (auto v = checkConservation(*stack_.forwarding, outstanding_)) {
      return ModelViolation{"conservation", std::move(*v)};
    }
    if (auto v = checkCaterpillarCoverage(*stack_.forwarding)) {
      return ModelViolation{"caterpillar-coverage", std::move(*v)};
    }
    return std::nullopt;
  }

  [[nodiscard]] std::optional<ModelViolation> checkTerminal() override {
    if (!outstanding_.empty()) {
      std::ostringstream msg;
      msg << outstanding_.size()
          << " valid trace(s) outstanding in a terminal configuration:";
      for (const TraceId t : outstanding_) msg << ' ' << t;
      return ModelViolation{"terminal-outstanding", msg.str()};
    }
    if (!stack_.forwarding->fullyDrained()) {
      return ModelViolation{
          "terminal-not-drained",
          "terminal configuration with occupied buffers or waiting messages"};
    }
    return std::nullopt;
  }

  [[nodiscard]] std::uint64_t progressCount() const override {
    return invalidDeliveries_;
  }

  [[nodiscard]] bool supportsPermutedEncode() const override { return true; }

  /// Renders the image of the current configuration under processor
  /// relabeling `perm` by rewriting a lazily-built scratch stack (same
  /// graph, destinations and policy) and encoding it through the SAME
  /// canon/codec as the plain paths, so the permuted encode cannot drift
  /// from serialize()/encodeState().
  ///
  /// One wrinkle is the routing diagonal: computeTarget(p, p) breaks its
  /// tie by neighbor id, so the CORRECT entry at (p, p) is (0, min N_p) - a
  /// form that is not equivariant under relabeling. Correctness of the
  /// diagonal (RFix disabled there) is the semantic content, so a correct
  /// diagonal is rewritten to the image's correct form; a corrupt diagonal
  /// is copied verbatim; and the one ambiguous case - a corrupt diagonal
  /// whose verbatim image collides with the image's correct form, which
  /// would merge inequivalent states - throws. Start sets that never
  /// corrupt routing (the ring-scale closure) can never hit the throw.
  void encodePermutedState(const Perm& perm, StateCodec codec,
                           std::string& out) override {
    const Graph& graph = *stack_.graph;
    const std::size_t n = graph.size();
    if (perm.size() != n) {
      throw std::logic_error("ssmfp permuted encode: permutation rank mismatch");
    }
    if (scratchRouting_ == nullptr) {
      scratchRouting_ = std::make_unique<SelfStabBfsRouting>(graph);
      scratchFwd_ = std::make_unique<SsmfpProtocol>(
          graph, *scratchRouting_, stack_.forwarding->destinations(),
          stack_.forwarding->choicePolicy());
    }
    const SelfStabBfsRouting& src = *stack_.routing;
    const SsmfpProtocol& fwd = *stack_.forwarding;
    SelfStabBfsRouting& outRouting = *scratchRouting_;
    SsmfpProtocol& outFwd = *scratchFwd_;
    for (NodeId p = 0; p < n; ++p) {
      for (NodeId d = 0; d < n; ++d) {
        std::uint32_t dist = src.dist(p, d);
        NodeId imgParent = src.parent(p, d);
        if (imgParent < n) imgParent = perm[imgParent];
        if (p == d && graph.degree(p) > 0) {
          const bool correct =
              dist == 0 && src.parent(p, d) == graph.neighbors(p)[0];
          const NodeId imgCorrectParent = graph.neighbors(perm[p])[0];
          if (correct) {
            imgParent = imgCorrectParent;
          } else if (dist == 0 && imgParent == imgCorrectParent) {
            throw std::logic_error(
                "ssmfp permuted encode: corrupt routing diagonal collides "
                "with the relabeled correct form; this start set is not "
                "symmetry-reducible");
          }
        }
        outRouting.setEntry(perm[p], perm[d], dist, imgParent);
      }
    }
    const auto permuteMsg = [&](Message m) {
      if (m.lastHop < n) m.lastHop = perm[m.lastHop];
      if (m.source < n) m.source = perm[m.source];
      if (m.dest < n) m.dest = perm[m.dest];
      return m;
    };
    for (NodeId p = 0; p < n; ++p) {
      outFwd.clearOutboxForRestore(p);
      for (const NodeId d : fwd.destinations()) {
        outFwd.clearReceptionForRestore(p, d);
        outFwd.clearEmissionForRestore(p, d);
      }
    }
    for (NodeId p = 0; p < n; ++p) {
      for (const NodeId d : fwd.destinations()) {
        if (const Buffer& r = fwd.bufR(p, d); r.has_value()) {
          outFwd.restoreReception(perm[p], perm[d], permuteMsg(*r));
        }
        if (const Buffer& e = fwd.bufE(p, d); e.has_value()) {
          outFwd.restoreEmission(perm[p], perm[d], permuteMsg(*e));
        }
        std::vector<NodeId> order = fwd.fairnessQueue(p, d);
        for (NodeId& q : order) q = perm[q];
        outFwd.setFairnessQueue(perm[p], perm[d], std::move(order));
      }
      std::size_t k = 0;
      fwd.forEachWaiting(p, [&](NodeId dest, Payload payload) {
        // Trace ids are NOT relabeled: they come from a global counter the
        // dynamics threads through identically on both sides of the
        // commuting square.
        outFwd.restoreOutboxEntry(perm[p], perm[dest], payload,
                                  fwd.waitingTrace(p, k));
        ++k;
      });
    }
    outFwd.setNextTraceId(fwd.nextTraceId());
    if (codec == StateCodec::kBinary) {
      encodeSsmfpStack(outRouting, outFwd, structHash_, out);
      putVarint(out, outstanding_.size());
      for (const TraceId t : outstanding_) putVarint(out, t);
      putVarint(out, invalidDeliveries_);
    } else {
      out += canonSsmfpStack(graph, outRouting, outFwd);
      out += monitorTail(outstanding_, invalidDeliveries_);
    }
  }

 private:
  void ingestEvents() {
    ingestForwardingEvents(*stack_.forwarding, genSeen_, delSeen_, outstanding_,
                           invalidDeliveries_, stepViolation_);
  }

  RestoredStack stack_;
  ForcedDaemon daemon_;
  std::unique_ptr<Engine> engine_;
  std::vector<TraceId> outstanding_;  // sorted valid traces not yet delivered
  std::uint64_t invalidDeliveries_ = 0;
  std::size_t genSeen_ = 0;  // record-vector watermarks (see ingestEvents)
  std::size_t delSeen_ = 0;
  std::optional<ModelViolation> stepViolation_;

  // Binary-codec support (codec.hpp): the structure fingerprint plus the
  // parent configuration undoToRestored() rewinds to.
  std::uint64_t structHash_ = 0;
  std::string parentState_;
  std::vector<TraceId> parentOutstanding_;
  std::uint64_t parentInvalidDeliveries_ = 0;

  // Permuted-encode scratch (symmetry reduction): a second stack on the
  // same structure, fully rewritten per encodePermutedState call. Lazy -
  // unreduced runs never pay for it.
  std::unique_ptr<SelfStabBfsRouting> scratchRouting_;
  std::unique_ptr<SsmfpProtocol> scratchFwd_;
};

/// The Figure 2 base instance: network N, destination b, one pending send
/// of m=100 at c.
RestoredStack makeFigure2Base() {
  RestoredStack stack;
  stack.graph = std::make_unique<Graph>(topo::figure3Network());
  stack.routing = std::make_unique<SelfStabBfsRouting>(*stack.graph);
  stack.forwarding = std::make_unique<SsmfpProtocol>(
      *stack.graph, *stack.routing, std::vector<NodeId>{1});
  stack.forwarding->send(2, 1, 100);
  return stack;
}

/// Family-generic figure-2 corruption-closure driver. The axis ORDER is
/// part of the pinned start-set contract (CI counts the ssmfp set):
/// routing-entry values first, then the family's single-garbage plants,
/// then its fairness-queue rotations - the base start itself is the
/// caller's first entry. `variant(corrupt)` reloads the base stack, applies
/// `corrupt` to it, and appends the resulting canonical start; the routing
/// axis is family-independent (every forwarding family sits on
/// SelfStabBfsRouting), while `garbageAxis(variant)` and
/// `queueAxis(variant)` supply the family-specific inner loops.
template <typename Variant, typename RoutingCorrupt, typename GarbageAxis,
          typename QueueAxis>
void appendFigure2Corruptions(const Graph& graph,
                              const SelfStabBfsRouting& baseRouting, NodeId dest,
                              const Variant& variant,
                              const RoutingCorrupt& corruptRouting,
                              const GarbageAxis& garbageAxis,
                              const QueueAxis& queueAxis) {
  for (NodeId p = 0; p < graph.size(); ++p) {
    for (std::uint32_t dist = 0; dist <= graph.size(); ++dist) {
      for (const NodeId parent : graph.neighbors(p)) {
        if (dist == baseRouting.dist(p, dest) &&
            parent == baseRouting.parent(p, dest)) {
          continue;
        }
        variant([&](auto& stack) { corruptRouting(stack, p, dist, parent); });
      }
    }
  }
  garbageAxis(variant);
  queueAxis(variant);
}

// ---------------------------------------------------------------------------
// SSMFP2 instance
// ---------------------------------------------------------------------------

class Ssmfp2Instance final : public ModelInstance {
 public:
  Ssmfp2Instance(const Graph& graph, const std::vector<NodeId>& dests,
                 const std::string& state, Ssmfp2GuardMutation mutation)
      : routing_(graph), forwarding_(graph, routing_, dests) {
    restoreSsmfp2Stack(routing_, forwarding_, state);
    // Monitor tail follows the "end" line of the stack canon text.
    const std::size_t endPos = state.find("\nend\n");
    if (endPos == std::string::npos) {
      throw std::runtime_error("ssmfp2 explore state: missing 'end'");
    }
    std::istringstream in(state.substr(endPos + 5));
    std::string key;
    std::size_t count = 0;
    if (!(in >> key) || key != "outstanding" || !(in >> count)) {
      throw std::runtime_error("ssmfp2 explore state: missing monitor tail");
    }
    outstanding_.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (!(in >> outstanding_[i])) {
        throw std::runtime_error("ssmfp2 explore state: truncated outstanding list");
      }
    }
    if (!(in >> key) || key != "invdel" || !(in >> invalidDeliveries_)) {
      throw std::runtime_error("ssmfp2 explore state: missing invdel line");
    }
    std::sort(outstanding_.begin(), outstanding_.end());
    if (mutation != Ssmfp2GuardMutation::kNone) {
      forwarding_.setGuardMutationForTest(mutation);
    }
    engine_ = std::make_unique<Engine>(
        graph, std::vector<Protocol*>{&routing_, &forwarding_}, daemon_);
    forwarding_.attachEngine(engine_.get());
    structHash_ = ssmfp2StructHash(graph, forwarding_);
  }

  [[nodiscard]] bool supportsBinaryCodec() const override { return true; }

  void encodeState(std::string& out) override {
    encodeSsmfp2Stack(routing_, forwarding_, structHash_, out);
    putVarint(out, outstanding_.size());
    for (const TraceId t : outstanding_) putVarint(out, t);
    putVarint(out, invalidDeliveries_);
  }

  void restoreState(std::string_view bytes) override {
    BinReader r = decodeSsmfp2Stack(bytes, routing_, forwarding_, structHash_);
    outstanding_.resize(r.varint());
    for (TraceId& t : outstanding_) t = r.varint();  // stored sorted
    invalidDeliveries_ = r.varint();
    forwarding_.clearEventRecordsForRestore();
    genSeen_ = 0;
    delSeen_ = 0;
    stepViolation_.reset();
    parentState_.assign(bytes.data(), bytes.size());
    parentOutstanding_ = outstanding_;
    parentInvalidDeliveries_ = invalidDeliveries_;
  }

  void undoToRestored() override {
    restoreSsmfp2Processors(parentState_, engine_->lastStepWrites(), routing_,
                            forwarding_, structHash_);
    outstanding_ = parentOutstanding_;
    invalidDeliveries_ = parentInvalidDeliveries_;
    stepViolation_.reset();
  }

  void enumerateMoves(DaemonClosure closure, std::size_t maxMoves,
                      std::vector<Move>& out, bool& truncated) override {
    (void)engine_->isTerminal();  // refreshes the enabled set
    enumerateMovesFromEnabled(engine_->lastEnabled(), closure, maxMoves, out,
                              truncated);
  }

  [[nodiscard]] bool apply(const Move& move) override {
    daemon_.setMove(&move);
    const bool stepped = engine_->step();
    daemon_.setMove(nullptr);
    if (!stepped || !daemon_.matched()) return false;
    ingestForwardingEvents(forwarding_, genSeen_, delSeen_, outstanding_,
                           invalidDeliveries_, stepViolation_);
    return true;
  }

  [[nodiscard]] std::string serialize() override {
    return canonSsmfp2Stack(routing_, forwarding_) +
           monitorTail(outstanding_, invalidDeliveries_);
  }

  [[nodiscard]] std::optional<ModelViolation> checkState() override {
    if (stepViolation_) return stepViolation_;
    if (auto v = checkSlotWellFormedness(forwarding_)) {
      return ModelViolation{"slot-well-formedness", std::move(*v)};
    }
    if (auto v = checkSingleReadyCopy(forwarding_)) {
      return ModelViolation{"multiple-ready-copies", std::move(*v)};
    }
    if (auto v = checkSlotConservation(forwarding_, outstanding_)) {
      return ModelViolation{"conservation", std::move(*v)};
    }
    return std::nullopt;
  }

  [[nodiscard]] std::optional<ModelViolation> checkTerminal() override {
    if (!outstanding_.empty()) {
      std::ostringstream msg;
      msg << outstanding_.size()
          << " valid trace(s) outstanding in a terminal configuration:";
      for (const TraceId t : outstanding_) msg << ' ' << t;
      return ModelViolation{"terminal-outstanding", msg.str()};
    }
    if (!forwarding_.fullyDrained()) {
      return ModelViolation{
          "terminal-not-drained",
          "terminal configuration with occupied slots or waiting messages"};
    }
    return std::nullopt;
  }

  [[nodiscard]] std::uint64_t progressCount() const override {
    return invalidDeliveries_;
  }

 private:
  SelfStabBfsRouting routing_;
  Ssmfp2Protocol forwarding_;
  ForcedDaemon daemon_;
  std::unique_ptr<Engine> engine_;
  std::vector<TraceId> outstanding_;  // sorted valid traces not yet delivered
  std::uint64_t invalidDeliveries_ = 0;
  std::size_t genSeen_ = 0;
  std::size_t delSeen_ = 0;
  std::optional<ModelViolation> stepViolation_;

  std::uint64_t structHash_ = 0;
  std::string parentState_;
  std::vector<TraceId> parentOutstanding_;
  std::uint64_t parentInvalidDeliveries_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// SsmfpExploreModel
// ---------------------------------------------------------------------------

SsmfpExploreModel::SsmfpExploreModel(std::vector<std::string> startStates,
                                     SsmfpGuardMutation mutation, std::string name)
    : starts_(std::move(startStates)), mutation_(mutation), name_(std::move(name)) {}

std::unique_ptr<ModelInstance> SsmfpExploreModel::load(
    const std::string& state) const {
  return std::make_unique<SsmfpInstance>(state, mutation_);
}

std::string SsmfpExploreModel::canonicalStart(const Graph& graph,
                                              const SelfStabBfsRouting& routing,
                                              const SsmfpProtocol& forwarding) {
  return canonSsmfpStack(graph, routing, forwarding) + monitorTail({}, 0);
}

SsmfpExploreModel SsmfpExploreModel::figure2Clean(SsmfpGuardMutation mutation) {
  const RestoredStack base = makeFigure2Base();
  std::vector<std::string> starts{
      canonicalStart(*base.graph, *base.routing, *base.forwarding)};
  SsmfpExploreModel model(std::move(starts), mutation, "ssmfp-figure2");
  model.structGraph_ = std::make_shared<const Graph>(*base.graph);
  return model;
}

SsmfpExploreModel SsmfpExploreModel::figure2CorruptionClosure(
    SsmfpGuardMutation mutation) {
  const RestoredStack base = makeFigure2Base();
  const Graph& graph = *base.graph;
  const NodeId dest = 1;
  const std::string baseText =
      canonicalStart(graph, *base.routing, *base.forwarding);
  std::vector<std::string> starts{baseText};

  const auto variant = [&](const auto& corrupt) {
    RestoredStack stack = snapshotFromString(baseText);
    corrupt(stack);
    starts.push_back(
        canonicalStart(*stack.graph, *stack.routing, *stack.forwarding));
  };

  // One garbage message (the paper's m' = 55) in every buffer, under every
  // lastHop in N_p u {p} and every color in {0..Delta}.
  const Color delta = base.forwarding->delta();
  const auto garbageAxis = [&](const auto& emit) {
    for (NodeId p = 0; p < graph.size(); ++p) {
      std::vector<NodeId> hops = graph.neighbors(p);
      hops.push_back(p);
      for (const NodeId lastHop : hops) {
        for (Color color = 0; color <= delta; ++color) {
          for (const bool emission : {false, true}) {
            emit([&](RestoredStack& stack) {
              Message garbage;
              garbage.payload = 55;
              garbage.lastHop = lastHop;
              garbage.color = color;
              garbage.trace = kInvalidTrace;
              garbage.valid = false;
              garbage.source = lastHop;
              garbage.dest = dest;
              if (emission) {
                stack.forwarding->restoreEmission(p, dest, garbage);
              } else {
                stack.forwarding->restoreReception(p, dest, garbage);
              }
            });
          }
        }
      }
    }
  };

  // Every rotation of every fairness queue (their content is arbitrary).
  const auto queueAxis = [&](const auto& emit) {
    for (NodeId p = 0; p < graph.size(); ++p) {
      for (std::size_t rot = 1; rot <= graph.degree(p); ++rot) {
        emit([&](RestoredStack& stack) {
          std::vector<NodeId> order = stack.forwarding->fairnessQueue(p, dest);
          std::rotate(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(rot),
                      order.end());
          stack.forwarding->setFairnessQueue(p, dest, std::move(order));
        });
      }
    }
  };

  appendFigure2Corruptions(
      graph, *base.routing, dest, variant,
      [&](RestoredStack& stack, NodeId p, std::uint32_t dist, NodeId parent) {
        stack.routing->setEntry(p, dest, dist, parent);
      },
      garbageAxis, queueAxis);

  SsmfpExploreModel model(std::move(starts), mutation,
                          "ssmfp-figure2-corruptions");
  model.structGraph_ = std::make_shared<const Graph>(graph);
  return model;
}

bool SsmfpExploreModel::selectionVisible(const StepSelection& sel) const {
  if (sel.layer == 0) return true;  // routing repairs re-gate the forwarding
  return sel.action.rule == kR1Generate || sel.action.rule == kR6Consume;
}

StepSelection SsmfpExploreModel::permuteSelection(const StepSelection& sel,
                                                  const Perm& perm) const {
  StepSelection out = ExploreModel::permuteSelection(sel, perm);
  if (sel.layer == 1 && sel.action.rule == kR3Forward &&
      sel.action.aux < perm.size()) {
    out.action.aux = perm[sel.action.aux];  // R3's aux is the sender id
  }
  return out;
}

SsmfpExploreModel SsmfpExploreModel::ringScaleClosure(const RingScaleSpec& spec) {
  if (spec.n < 3 || spec.n % 2 == 0) {
    throw std::invalid_argument(
        "ringScaleClosure: ring size must be odd and >= 3 (even rings break "
        "tie-break equivariance)");
  }
  auto structGraph = std::make_shared<const Graph>(topo::ring(spec.n));
  const Graph& graph = *structGraph;

  RestoredStack base;
  base.graph = std::make_unique<Graph>(graph);
  base.routing = std::make_unique<SelfStabBfsRouting>(*base.graph);
  base.forwarding = std::make_unique<SsmfpProtocol>(
      *base.graph, *base.routing, std::vector<NodeId>{});  // all destinations
  if (spec.withSend) {
    base.forwarding->send(2 % static_cast<NodeId>(spec.n), 0, 100);
  }
  const std::string baseText =
      canonicalStart(*base.graph, *base.routing, *base.forwarding);

  // The single-corruption planters, in a fixed order so pair/triple
  // sampling is reproducible: every garbage message (payload 55, every
  // (p, d, lastHop in N_p u {p}, color <= Delta, buffer side)), then every
  // fairness-queue rotation. Routing is deliberately NEVER corrupted: the
  // correct tables are the part of the state whose relabeling is exactly
  // equivariant on an odd ring (see RingScaleSpec).
  using Planter = std::function<void(RestoredStack&)>;
  std::vector<Planter> planters;
  const Color delta = base.forwarding->delta();
  for (NodeId p = 0; p < graph.size(); ++p) {
    std::vector<NodeId> hops = graph.neighbors(p);
    hops.push_back(p);
    for (NodeId d = 0; d < graph.size(); ++d) {
      for (const NodeId lastHop : hops) {
        for (Color color = 0; color <= delta; ++color) {
          for (const bool emission : {false, true}) {
            planters.push_back([p, d, lastHop, color, emission](RestoredStack& stack) {
              Message garbage;
              garbage.payload = 55;
              garbage.lastHop = lastHop;
              garbage.color = color;
              garbage.trace = kInvalidTrace;
              garbage.valid = false;
              garbage.source = lastHop;
              garbage.dest = d;
              if (emission) {
                stack.forwarding->restoreEmission(p, d, garbage);
              } else {
                stack.forwarding->restoreReception(p, d, garbage);
              }
            });
          }
        }
      }
    }
  }
  const std::size_t garbageCount = planters.size();
  for (NodeId p = 0; p < graph.size(); ++p) {
    for (NodeId d = 0; d < graph.size(); ++d) {
      for (std::size_t rot = 1; rot <= graph.degree(p); ++rot) {
        planters.push_back([p, d, rot](RestoredStack& stack) {
          std::vector<NodeId> order = stack.forwarding->fairnessQueue(p, d);
          std::rotate(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(rot),
                      order.end());
          stack.forwarding->setFairnessQueue(p, d, std::move(order));
        });
      }
    }
  }

  std::vector<std::string> starts{baseText};
  const auto emit = [&](std::initializer_list<std::size_t> which) {
    RestoredStack stack = snapshotFromString(baseText);
    for (const std::size_t i : which) planters[i](stack);
    starts.push_back(
        canonicalStart(*stack.graph, *stack.routing, *stack.forwarding));
  };
  for (std::size_t i = 0; i < planters.size(); ++i) emit({i});
  // Pair / triple plants are sampled over GARBAGE planters only (queue
  // rotations compose trivially and would just dilute the sample).
  if (spec.pairStride > 0) {
    std::size_t counter = 0;
    for (std::size_t i = 0; i < garbageCount; ++i) {
      for (std::size_t j = i + 1; j < garbageCount; ++j) {
        if (counter++ % spec.pairStride == 0) emit({i, j});
      }
    }
  }
  if (spec.tripleStride > 0) {
    std::size_t counter = 0;
    for (std::size_t i = 0; i < garbageCount; ++i) {
      for (std::size_t j = i + 1; j < garbageCount; ++j) {
        for (std::size_t k = j + 1; k < garbageCount; ++k) {
          if (counter++ % spec.tripleStride == 0) emit({i, j, k});
        }
      }
    }
  }

  if (spec.orbitClose) {
    const std::vector<Perm> group =
        closeGroup(topologyAutomorphismGenerators(TopologySpec::ring(spec.n)));
    std::unordered_set<std::string> seen(starts.begin(), starts.end());
    const std::size_t original = starts.size();
    for (std::size_t s = 0; s < original; ++s) {
      SsmfpInstance inst(starts[s], spec.mutation);
      std::string image;
      for (std::size_t g = 1; g < group.size(); ++g) {  // 0 is the identity
        inst.encodePermutedState(group[g], StateCodec::kText, image);
        if (seen.insert(image).second) starts.push_back(image);
      }
    }
  }

  std::string name = "ssmfp-ring" + std::to_string(spec.n) + "-scale";
  SsmfpExploreModel model(std::move(starts), spec.mutation, std::move(name));
  model.generators_ =
      topologyAutomorphismGenerators(TopologySpec::ring(spec.n));
  model.structGraph_ = std::move(structGraph);
  return model;
}

// ---------------------------------------------------------------------------
// Ssmfp2ExploreModel
// ---------------------------------------------------------------------------

namespace {

/// Figure-2 base for the rank-slot family: same network N, same
/// destination b, same pending send of m=100 at c.
struct Ssmfp2BaseStack {
  Graph graph = topo::figure3Network();
  SelfStabBfsRouting routing{graph};
  Ssmfp2Protocol forwarding{graph, routing, std::vector<NodeId>{1}};
};

}  // namespace

Ssmfp2ExploreModel::Ssmfp2ExploreModel(Graph graph,
                                       std::vector<NodeId> destinations,
                                       std::vector<std::string> startStates,
                                       Ssmfp2GuardMutation mutation,
                                       std::string name)
    : graph_(std::move(graph)),
      dests_(std::move(destinations)),
      starts_(std::move(startStates)),
      mutation_(mutation),
      name_(std::move(name)) {}

std::unique_ptr<ModelInstance> Ssmfp2ExploreModel::load(
    const std::string& state) const {
  return std::make_unique<Ssmfp2Instance>(graph_, dests_, state, mutation_);
}

std::string Ssmfp2ExploreModel::canonicalStart(const SelfStabBfsRouting& routing,
                                               const Ssmfp2Protocol& forwarding) {
  return canonSsmfp2Stack(routing, forwarding) + monitorTail({}, 0);
}

Ssmfp2ExploreModel Ssmfp2ExploreModel::figure2Clean(
    Ssmfp2GuardMutation mutation) {
  Ssmfp2BaseStack base;
  base.forwarding.send(2, 1, 100);
  std::vector<std::string> starts{canonicalStart(base.routing, base.forwarding)};
  return Ssmfp2ExploreModel(base.graph, {1}, std::move(starts), mutation,
                            "ssmfp2-figure2");
}

Ssmfp2ExploreModel Ssmfp2ExploreModel::figure2CorruptionClosure(
    Ssmfp2GuardMutation mutation) {
  Ssmfp2BaseStack base;
  base.forwarding.send(2, 1, 100);
  const Graph& graph = base.graph;
  const NodeId dest = 1;
  const std::string baseText = canonicalStart(base.routing, base.forwarding);
  std::vector<std::string> starts{baseText};

  const auto variant = [&](const auto& corrupt) {
    Ssmfp2BaseStack stack;
    restoreSsmfp2Stack(stack.routing, stack.forwarding, baseText);
    corrupt(stack);
    starts.push_back(canonicalStart(stack.routing, stack.forwarding));
  };

  // One garbage message in every DETECTABLY rank-inconsistent slot form
  // (the 2R8 footprint): received-state copies at rank 0 (any legal
  // lastHop), ready copies with a foreign lastHop, and received copies at
  // rank >= 1 stamped with p itself. Garbage that byte-mimics a legitimate
  // in-flight copy is deliberately NOT in this set - it is covered by the
  // Proposition-4-style delivery bound, not the zero-invalid-delivery
  // closure (see ssmfp2.hpp).
  const Color delta = base.forwarding.delta();
  const std::uint32_t maxRank = base.forwarding.maxRank();
  const auto garbageAxis = [&](const auto& emit) {
    for (NodeId p = 0; p < graph.size(); ++p) {
      std::vector<NodeId> hops = graph.neighbors(p);
      hops.push_back(p);
      for (std::uint32_t k = 0; k <= maxRank; ++k) {
        for (const NodeId lastHop : hops) {
          for (Color color = 0; color <= delta; ++color) {
            for (const SlotState state :
                 {SlotState::kReceived, SlotState::kReady}) {
              const bool junk =
                  state == SlotState::kReceived
                      ? (k == 0 || lastHop == p)
                      : lastHop != p;
              if (!junk) continue;
              emit([&](Ssmfp2BaseStack& stack) {
                Message garbage;
                garbage.payload = 55;
                garbage.lastHop = lastHop;
                garbage.color = color;
                garbage.trace = kInvalidTrace;
                garbage.valid = false;
                garbage.source = lastHop;
                garbage.dest = dest;
                stack.forwarding.restoreSlot(p, k, state, garbage);
              });
            }
          }
        }
      }
    }
  };

  // Every rotation of every per-rank fairness queue.
  const auto queueAxis = [&](const auto& emit) {
    for (NodeId p = 0; p < graph.size(); ++p) {
      for (std::uint32_t k = 1; k <= maxRank; ++k) {
        for (std::size_t rot = 1; rot <= graph.degree(p); ++rot) {
          emit([&](Ssmfp2BaseStack& stack) {
            std::vector<NodeId> order = stack.forwarding.fairnessQueue(p, k);
            std::rotate(order.begin(),
                        order.begin() + static_cast<std::ptrdiff_t>(rot),
                        order.end());
            stack.forwarding.setFairnessQueue(p, k, std::move(order));
          });
        }
      }
    }
  };

  appendFigure2Corruptions(
      graph, base.routing, dest, variant,
      [&](Ssmfp2BaseStack& stack, NodeId p, std::uint32_t dist, NodeId parent) {
        stack.routing.setEntry(p, dest, dist, parent);
      },
      garbageAxis, queueAxis);

  return Ssmfp2ExploreModel(graph, {1}, std::move(starts), mutation,
                            "ssmfp2-figure2-corruptions");
}

bool Ssmfp2ExploreModel::selectionVisible(const StepSelection& sel) const {
  if (sel.layer == 0) return true;
  return sel.action.rule == k2R1Generate || sel.action.rule == k2R6Consume;
}

// ---------------------------------------------------------------------------
// PIF instance
// ---------------------------------------------------------------------------

namespace {

class PifInstance final : public ModelInstance {
 public:
  PifInstance(const Graph& graph, NodeId root, const std::string& state)
      : pif_(graph, root) {
    restorePifState(pif_, state);
    // Monitor tail follows the "end" line of the pif canon text.
    const std::size_t endPos = state.find("\nend\n");
    if (endPos == std::string::npos) {
      throw std::runtime_error("pif explore state: missing 'end'");
    }
    std::istringstream in(state.substr(endPos + 5));
    std::string key;
    unsigned wave = 0;
    if (!(in >> key) || key != "wave" || !(in >> wave) ||
        !(in >> key) || key != "parts" || !(in >> participants_) ||
        !(in >> key) || key != "invcomp" || !(in >> invalidCompletions_)) {
      throw std::runtime_error("pif explore state: missing monitor tail");
    }
    waveActive_ = wave != 0;
    engine_ = std::make_unique<Engine>(graph, std::vector<Protocol*>{&pif_},
                                       daemon_);
    pif_.attachEngine(engine_.get());
    fullMask_ = graph.size() >= 64 ? ~0ull : ((1ull << graph.size()) - 1);
  }

  [[nodiscard]] bool supportsBinaryCodec() const override { return true; }

  void encodeState(std::string& out) override {
    encodePifState(pif_, out);
    putByte(out, waveActive_ ? 1 : 0);
    putVarint(out, participants_);
    putVarint(out, invalidCompletions_);
  }

  void restoreState(std::string_view bytes) override {
    restoreBinary(bytes);
    parentState_.assign(bytes.data(), bytes.size());
  }

  void undoToRestored() override {
    // PIF states are a handful of bytes; a full re-decode IS the delta.
    restoreBinary(parentState_);
  }

  void enumerateMoves(DaemonClosure closure, std::size_t maxMoves,
                      std::vector<Move>& out, bool& truncated) override {
    (void)engine_->isTerminal();
    enumerateMovesFromEnabled(engine_->lastEnabled(), closure, maxMoves, out,
                              truncated);
  }

  [[nodiscard]] bool apply(const Move& move) override {
    daemon_.setMove(&move);
    const bool stepped = engine_->step();
    daemon_.setMove(nullptr);
    if (!stepped || !daemon_.matched()) return false;
    ingestStep();
    return true;
  }

  [[nodiscard]] std::string serialize() override {
    std::ostringstream tail;
    tail << "wave " << (waveActive_ ? 1 : 0) << '\n';
    tail << "parts " << participants_ << '\n';
    tail << "invcomp " << invalidCompletions_ << '\n';
    return canonPifState(pif_) + tail.str();
  }

  [[nodiscard]] std::optional<ModelViolation> checkState() override {
    return stepViolation_;
  }

  [[nodiscard]] std::optional<ModelViolation> checkTerminal() override {
    if (pif_.pendingRequests() > 0) {
      return ModelViolation{"terminal-pending-request",
                            "terminal configuration with an unserved wave request"};
    }
    if (waveActive_) {
      return ModelViolation{"terminal-wave-stuck",
                            "terminal configuration inside a started wave"};
    }
    if (!pif_.allClean()) {
      return ModelViolation{"terminal-not-clean",
                            "terminal configuration with non-Clean processors"};
    }
    return std::nullopt;
  }

  [[nodiscard]] std::uint64_t progressCount() const override {
    return invalidCompletions_;
  }

 private:
  /// Folds the committed step into the wave monitor. Order matters under
  /// multi-processor steps: COMPLETE is judged against PRE-step
  /// participation (co-stepping broadcasts read the pre-step configuration
  /// too), then START opens the new window, then BROADCASTs join it. Under
  /// the central closure (one action per step) the monitor is exact.
  void ingestStep() {
    const auto& executed = engine_->lastExecuted();
    for (const Engine::ExecutedAction& ex : executed) {
      if (ex.action.rule != kPifComplete) continue;
      if (!waveActive_) {
        ++invalidCompletions_;
        if (invalidCompletions_ >= 2 && !stepViolation_) {
          stepViolation_ = ModelViolation{
              "multiple-invalid-completions",
              "two wave completions without a starting action (at most one "
              "pre-existing completed-looking wave can exist)"};
        }
        continue;
      }
      if (participants_ != fullMask_ && !stepViolation_) {
        std::ostringstream msg;
        msg << "started wave completed with participation mask " << participants_
            << " != full mask " << fullMask_;
        stepViolation_ = ModelViolation{"incomplete-wave", msg.str()};
      }
      waveActive_ = false;
      participants_ = 0;
    }
    for (const Engine::ExecutedAction& ex : executed) {
      if (ex.action.rule == kPifStart) {
        waveActive_ = true;
        participants_ = 1ull << pif_.root();
      }
    }
    for (const Engine::ExecutedAction& ex : executed) {
      if (ex.action.rule == kPifBroadcast && waveActive_) {
        participants_ |= 1ull << ex.p;
      }
    }
  }

  void restoreBinary(std::string_view bytes) {
    BinReader r = decodePifState(bytes, pif_);
    waveActive_ = r.byte() != 0;
    participants_ = r.varint();
    invalidCompletions_ = r.varint();
    pif_.clearEventRecordsForRestore();
    stepViolation_.reset();
  }

  PifProtocol pif_;
  ForcedDaemon daemon_;
  std::unique_ptr<Engine> engine_;
  std::uint64_t participants_ = 0;
  std::uint64_t fullMask_ = 0;
  std::uint64_t invalidCompletions_ = 0;
  bool waveActive_ = false;
  std::optional<ModelViolation> stepViolation_;
  std::string parentState_;  // binary-codec undo target
};

}  // namespace

// ---------------------------------------------------------------------------
// PifExploreModel
// ---------------------------------------------------------------------------

PifExploreModel::PifExploreModel(Graph graph, NodeId root,
                                 std::vector<std::string> startStates,
                                 std::string name)
    : graph_(std::move(graph)),
      root_(root),
      starts_(std::move(startStates)),
      name_(std::move(name)) {}

std::unique_ptr<ModelInstance> PifExploreModel::load(
    const std::string& state) const {
  return std::make_unique<PifInstance>(graph_, root_, state);
}

PifExploreModel PifExploreModel::scrambleClosure(Graph graph, NodeId root,
                                                 std::size_t pendingRequests) {
  const std::size_t n = graph.size();
  assert(n > 0 && n < 64);
  std::vector<std::string> starts;
  PifProtocol scratch(graph, root);
  for (std::size_t i = 0; i < pendingRequests; ++i) scratch.requestWave();
  std::size_t assignments = 1;
  for (std::size_t i = 0; i < n; ++i) assignments *= 3;
  for (std::size_t code = 0; code < assignments; ++code) {
    std::size_t rest = code;
    bool legal = true;
    for (NodeId p = 0; p < n; ++p) {
      const auto s = static_cast<PifState>(rest % 3);
      rest /= 3;
      // The root has no F state (protocol definition), so F-at-root codes
      // are not configurations of the model.
      if (p == root && s == PifState::kFeedback) {
        legal = false;
        break;
      }
      scratch.setState(p, s);
    }
    if (!legal) continue;
    starts.push_back(canonPifState(scratch) + "wave 0\nparts 0\ninvcomp 0\n");
  }
  return PifExploreModel(std::move(graph), root, std::move(starts));
}

// ---------------------------------------------------------------------------
// Counterexample minimization & replay
// ---------------------------------------------------------------------------

ShrinkResult shrinkSsmfpViolation(const SsmfpExploreModel& model,
                                  const ExploreViolation& violation,
                                  const ExploreOptions& options) {
  const std::size_t endPos = violation.rootState.find("\nend\n");
  if (endPos == std::string::npos) {
    throw std::runtime_error("shrinkSsmfpViolation: malformed root state");
  }
  const std::string snapshotPart = violation.rootState.substr(0, endPos + 5);
  ExploreOptions probeOptions = options;
  probeOptions.threads = 1;
  probeOptions.stopOnViolation = true;
  const std::string targetKind = violation.kind;
  const SsmfpGuardMutation mutation = model.mutation();
  const ShrinkPredicate stillViolates = [&](RestoredStack& stack) {
    std::vector<std::string> starts{SsmfpExploreModel::canonicalStart(
        *stack.graph, *stack.routing, *stack.forwarding)};
    const SsmfpExploreModel probe(std::move(starts), mutation, "shrink-probe");
    const ExploreResult probed = explore(probe, probeOptions, nullptr);
    for (const ExploreViolation& v : probed.violations) {
      if (v.kind == targetKind) return true;
    }
    return false;
  };
  return shrinkSnapshot(snapshotPart, stillViolates);
}

std::vector<std::vector<ScriptedDaemon::Selection>> toScript(
    const std::vector<Move>& path) {
  std::vector<std::vector<ScriptedDaemon::Selection>> script;
  script.reserve(path.size());
  for (const Move& move : path) {
    std::vector<ScriptedDaemon::Selection> step;
    step.reserve(move.size());
    for (const StepSelection& sel : move) {
      step.push_back({sel.p, sel.action.rule, sel.action.dest});
    }
    script.push_back(std::move(step));
  }
  return script;
}

}  // namespace snapfwd::explore
