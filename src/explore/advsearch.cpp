#include "explore/advsearch.hpp"

#include <algorithm>
#include <utility>

#include "checker/streaming.hpp"
#include "core/engine.hpp"
#include "faults/corruptor.hpp"

namespace snapfwd {

namespace {

/// Delegates every scheduling decision to the searched daemon and records
/// the committed selections in the stable (p, rule, dest) form a
/// ScriptedDaemon can replay.
class RecordingDaemon final : public Daemon {
 public:
  RecordingDaemon(Daemon& inner, DaemonScript& out) : inner_(inner), out_(out) {}

  [[nodiscard]] std::string_view name() const override { return "recording"; }

  void choose(std::uint64_t step, const std::vector<EnabledProcessor>& enabled,
              std::vector<Choice>& out) override {
    inner_.choose(step, enabled, out);
    std::vector<ScriptedDaemon::Selection> moves;
    moves.reserve(out.size());
    for (const Choice& c : out) {
      const EnabledProcessor& e = enabled[c.entryIndex];
      const Action& a = e.actions[c.actionIndex];
      moves.push_back({e.p, a.rule, a.dest});
    }
    out_.push_back(std::move(moves));
  }

 private:
  Daemon& inner_;
  DaemonScript& out_;
};

struct ProbeOutcome {
  std::optional<std::string> violation;
  std::uint64_t steps = 0;
  bool scriptMatched = true;
};

/// One adversarial probe: builds the stack with the standard fork
/// discipline, plants the seeded weakness, runs under the configured
/// daemon (or a ScriptedDaemon when `replay` is given, with the configured
/// daemon still constructed so the 0xFA18 corruption stream is identical),
/// fires topology/corruption events on schedule, and polls the streaming
/// checker every step - stopping at the FIRST violation so recorded
/// scripts end exactly at the violating step.
ProbeOutcome runProbe(const ExperimentConfig& cfg,
                      const TopologySchedule& topology,
                      SsmfpGuardMutation ssmfpWeakness,
                      Ssmfp2GuardMutation ssmfp2Weakness,
                      std::uint64_t invalidDeliveryBudget,
                      const DaemonScript* replay, DaemonScript* record) {
  ForwardingStack stack = buildForwardingStack(cfg);
  switch (cfg.family) {
    case ForwardingFamilyId::kSsmfp:
      if (ssmfpWeakness != SsmfpGuardMutation::kNone) {
        static_cast<SsmfpProtocol&>(*stack.forwarding)
            .setGuardMutationForTest(ssmfpWeakness);
      }
      break;
    case ForwardingFamilyId::kSsmfp2:
      if (ssmfp2Weakness != Ssmfp2GuardMutation::kNone) {
        static_cast<Ssmfp2Protocol&>(*stack.forwarding)
            .setGuardMutationForTest(ssmfp2Weakness);
      }
      break;
  }

  auto searched = makeDaemon(cfg.daemon, cfg.daemonProbability, stack.rng);
  std::optional<ScriptedDaemon> scripted;
  std::optional<RecordingDaemon> recording;
  Daemon* daemon = searched.get();
  if (replay != nullptr) {
    scripted.emplace(*replay);
    daemon = &*scripted;
  } else if (record != nullptr) {
    recording.emplace(*searched, *record);
    daemon = &*recording;
  }

  Engine engine(*stack.graph, {stack.routing.get(), stack.forwarding.get()},
                *daemon);
  stack.forwarding->attachEngine(&engine);
  TopologyMutator mutator(*stack.graph, topology,
                          {stack.routing.get(), stack.forwarding.get()});

  std::vector<CorruptionEvent> schedule = cfg.corruptionSchedule;
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const CorruptionEvent& a, const CorruptionEvent& b) {
                     return a.step < b.step;
                   });
  std::size_t nextEvent = 0;
  Rng corruptionRng = schedule.empty() ? Rng(0) : stack.rng.fork(0xFA18);

  StreamingCheckerOptions checkerOptions;
  checkerOptions.invalidDeliveryBudget = invalidDeliveryBudget;
  checkerOptions.conservationEveryPolls = 256;
  StreamingInvariantChecker checker(*stack.forwarding, checkerOptions);

  // Buffer-touching faults amnesty the in-flight set; routing-only plans
  // keep the checker strict (safety is routing-independent) - which is
  // what lets the search catch a guard weakening red-handed.
  auto fireDue = [&](std::uint64_t upTo, std::uint64_t now) {
    if (mutator.applyDue(upTo) > 0) checker.noteFaultEvent(now);
    while (nextEvent < schedule.size() && schedule[nextEvent].step <= upTo) {
      const CorruptionPlan& plan = schedule[nextEvent++].plan;
      applyCorruption(plan, *stack.routing, *stack.forwarding, corruptionRng);
      if (plan.touchesBuffers()) {
        checker.noteFaultEvent(now);
      } else {
        checker.noteRoutingFaultEvent(now);
      }
    }
  };

  ProbeOutcome outcome;
  std::uint64_t executed = 0;
  for (;;) {
    const std::uint64_t ran = engine.run(1);
    executed += ran;
    const std::uint64_t now = engine.stepCount();
    fireDue(now, now);
    if (auto v = checker.poll(now); v.has_value()) {
      outcome.violation = std::move(v);
      break;
    }
    if (executed >= cfg.maxSteps) break;
    if (ran == 0) {
      // Terminal (or end of script) with events still pending: fire the
      // earliest batch into the idle network and resume.
      constexpr std::uint64_t kNever = UINT64_MAX;
      const std::uint64_t pendingTopo = mutator.nextEventStep();
      const std::uint64_t pendingCorruption =
          nextEvent < schedule.size() ? schedule[nextEvent].step : kNever;
      if (pendingTopo == kNever && pendingCorruption == kNever) break;
      fireDue(std::min(pendingTopo, pendingCorruption), now);
      if (auto v = checker.poll(now); v.has_value()) {
        outcome.violation = std::move(v);
        break;
      }
    }
  }
  outcome.steps = engine.stepCount();
  if (scripted.has_value()) outcome.scriptMatched = scripted->allMatched();
  return outcome;
}

/// Greedy shrink: drops topology events, drops and thins corruption
/// events, then ddmin-style chunks script steps - keeping every edit whose
/// replay still violates. Probe count is bounded to keep the search cheap.
void shrinkFinding(AdversarialFinding& finding) {
  constexpr std::size_t kMaxProbes = 400;
  auto violates = [&](const ExperimentConfig& cfg,
                      const TopologySchedule& topology,
                      const DaemonScript& script) {
    if (finding.shrinkProbes >= kMaxProbes) return false;
    ++finding.shrinkProbes;
    return runProbe(cfg, topology, finding.ssmfpWeakness,
                    finding.ssmfp2Weakness, finding.invalidDeliveryBudget,
                    &script, nullptr)
        .violation.has_value();
  };

  // Topology events, one at a time.
  {
    std::vector<TopologyEvent> events = finding.topology.events();
    for (std::size_t i = 0; i < events.size();) {
      std::vector<TopologyEvent> candidate = events;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (violates(finding.config, TopologySchedule(candidate),
                   finding.script)) {
        events = std::move(candidate);
        ++finding.droppedTopologyEvents;
      } else {
        ++i;
      }
    }
    finding.topology = TopologySchedule(std::move(events));
  }

  // Corruption events: drop whole events, then thin surviving plans.
  {
    auto& schedule = finding.config.corruptionSchedule;
    for (std::size_t i = 0; i < schedule.size();) {
      ExperimentConfig candidate = finding.config;
      candidate.corruptionSchedule.erase(
          candidate.corruptionSchedule.begin() + static_cast<std::ptrdiff_t>(i));
      if (violates(candidate, finding.topology, finding.script)) {
        finding.config = std::move(candidate);
        ++finding.droppedCorruptionEvents;
      } else {
        ++i;
      }
    }
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      while (schedule[i].plan.invalidMessages > 0) {
        ExperimentConfig candidate = finding.config;
        candidate.corruptionSchedule[i].plan.invalidMessages /= 2;
        if (!violates(candidate, finding.topology, finding.script)) break;
        finding.config = std::move(candidate);
      }
      if (schedule[i].plan.scrambleQueues) {
        ExperimentConfig candidate = finding.config;
        candidate.corruptionSchedule[i].plan.scrambleQueues = false;
        if (violates(candidate, finding.topology, finding.script)) {
          finding.config = std::move(candidate);
        }
      }
    }
  }

  // Script steps, halving chunk sizes (plain drop-one is quadratic in the
  // script length).
  for (std::size_t chunk = std::max<std::size_t>(finding.script.size() / 2, 1);
       ; chunk /= 2) {
    for (std::size_t start = 0; start + chunk <= finding.script.size();) {
      DaemonScript candidate = finding.script;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(start),
                      candidate.begin() + static_cast<std::ptrdiff_t>(start + chunk));
      if (violates(finding.config, finding.topology, candidate)) {
        finding.script = std::move(candidate);
        finding.droppedScriptSteps += chunk;
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) break;
  }
}

}  // namespace

std::string AdversarialFinding::describe() const {
  std::string out = "violation [" + violation + "]";
  out += " seed=" + std::to_string(config.seed);
  out += " corruption-events=" + std::to_string(config.corruptionSchedule.size());
  out += " topology=[" + topology.label() + "]";
  out += " script-steps=" + std::to_string(script.size());
  out += " candidates=" + std::to_string(candidatesTried);
  out += " shrink-probes=" + std::to_string(shrinkProbes);
  return out;
}

std::optional<AdversarialFinding> searchAdversarialSchedule(
    const AdversarialSearchConfig& config) {
  const std::vector<TopologySchedule> topologies =
      config.topologies.empty() ? std::vector<TopologySchedule>{{}}
                                : config.topologies;
  const std::vector<std::uint64_t> steps =
      config.corruptionSteps.empty() ? std::vector<std::uint64_t>{0}
                                     : config.corruptionSteps;

  std::size_t tried = 0;
  for (const TopologySchedule& topology : topologies) {
    for (const std::uint64_t step : steps) {
      // An empty plan axis degenerates to pure churn probes (one neutral
      // entry so the seed loop still runs).
      const std::size_t planCount = std::max<std::size_t>(config.plans.size(), 1);
      for (std::size_t planIdx = 0; planIdx < planCount; ++planIdx) {
        for (std::size_t i = 0; i < config.seedsPerCandidate; ++i) {
          ExperimentConfig cfg = config.base;
          cfg.seed = config.base.seed + i;
          if (planIdx < config.plans.size()) {
            cfg.corruptionSchedule.push_back({step, config.plans[planIdx]});
          }
          ++tried;
          DaemonScript script;
          ProbeOutcome probe =
              runProbe(cfg, topology, config.ssmfpWeakness,
                       config.ssmfp2Weakness, config.invalidDeliveryBudget,
                       nullptr, &script);
          if (!probe.violation.has_value()) continue;

          AdversarialFinding finding;
          finding.config = std::move(cfg);
          finding.topology = topology;
          finding.ssmfpWeakness = config.ssmfpWeakness;
          finding.ssmfp2Weakness = config.ssmfp2Weakness;
          finding.script = std::move(script);
          finding.invalidDeliveryBudget = config.invalidDeliveryBudget;
          finding.violation = *probe.violation;
          finding.candidatesTried = tried;
          shrinkFinding(finding);
          // The shrunk artifact must still reproduce; refresh the
          // violation text from one final replay.
          if (auto v = replayFinding(finding); v.has_value()) {
            finding.violation = *v;
          }
          return finding;
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> replayFinding(const AdversarialFinding& finding) {
  return runProbe(finding.config, finding.topology, finding.ssmfpWeakness,
                  finding.ssmfp2Weakness, finding.invalidDeliveryBudget,
                  &finding.script, nullptr)
      .violation;
}

AdversarialSearchConfig seededWeaknessSearch(std::uint64_t maxStepsPerProbe) {
  AdversarialSearchConfig search;
  search.base.family = ForwardingFamilyId::kSsmfp;
  search.base.topo = TopologySpec::ring(6);
  search.base.traffic = TrafficKind::kUniform;
  // A deep outbox backlog keeps strict (post-fault) traffic entering the
  // network while the routing layer is still reconverging - the window the
  // weakened R4 needs to smuggle a duplicate through.
  search.base.messageCount = 60;
  search.base.seed = 1;
  search.base.maxSteps = maxStepsPerProbe;
  search.ssmfpWeakness = SsmfpGuardMutation::kR4SkipStrayCopyCheck;

  // The routing-only plan is the sharp one: the checker amnesties nothing
  // across it, so any duplicate it provokes is a hard violation.
  CorruptionPlan heavy;
  heavy.routingFraction = 0.8;
  heavy.scrambleQueues = true;
  CorruptionPlan mixed;
  mixed.routingFraction = 0.5;
  mixed.invalidMessages = 4;
  search.plans = {heavy, mixed};
  search.corruptionSteps = {20, 40, 80, 150};

  TopologySchedule flap;
  flap.linkDown(60, 2, 3).linkUp(160, 2, 3);
  search.topologies = {TopologySchedule{}, flap};
  search.seedsPerCandidate = 8;
  return search;
}

}  // namespace snapfwd
