#pragma once
// Adversarial corruption-schedule search.
//
// The explorer (explore/explore.hpp) proves per-instance safety by closing
// the transition relation from a FIXED start set; this module attacks the
// orthogonal axis: WHEN the transient faults land. It drives a candidate
// grid of (topology-churn schedule x corruption step x corruption plan x
// seed) cells through the streaming invariant checker, looking for a
// violation of exactly-once/conservation for post-fault traffic - the
// snap-stabilization promise itself.
//
// Against the unweakened protocols the search is expected to come back
// empty (that is the acceptance criterion soaks pin); its positive duty is
// regression power. A seeded guard weakening (SsmfpGuardMutation /
// Ssmfp2GuardMutation) must be FOUND, and the finding must be small enough
// to read: every violating run is captured as a ScriptedDaemon script (the
// exact (processor, rule, dest) sequence the daemon chose) plus the fault
// schedules, then greedily shrunk - dropping topology events, dropping and
// thinning corruption events, dropping script steps - while the replay
// still violates. The result replays deterministically without any random
// daemon, ready to paste into a regression test.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/daemon.hpp"
#include "faults/topology.hpp"
#include "sim/runner.hpp"
#include "ssmfp/ssmfp.hpp"
#include "ssmfp2/ssmfp2.hpp"

namespace snapfwd {

/// One scripted atomic step: the selections the daemon committed together.
using DaemonScript = std::vector<std::vector<ScriptedDaemon::Selection>>;

struct AdversarialSearchConfig {
  /// Everything the probe runs share: family, topology, traffic, daemon
  /// kind, step budget (maxSteps bounds each probe). base.seed is the
  /// first seed of each candidate's seed range.
  ExperimentConfig base;

  /// Seeded weaknesses to plant per family (kNone = attack the real rules).
  SsmfpGuardMutation ssmfpWeakness = SsmfpGuardMutation::kNone;
  Ssmfp2GuardMutation ssmfp2Weakness = Ssmfp2GuardMutation::kNone;

  /// The candidate grid. Empty axes get one neutral entry (no churn / the
  /// base plan at step 0 only when plans are provided).
  std::vector<TopologySchedule> topologies;
  std::vector<std::uint64_t> corruptionSteps;
  std::vector<CorruptionPlan> plans;

  /// Seeds probed per grid cell: base.seed .. base.seed + seedsPerCandidate.
  std::size_t seedsPerCandidate = 4;

  /// Tolerated invalid deliveries per probe (mirrors
  /// StreamingCheckerOptions::invalidDeliveryBudget).
  std::uint64_t invalidDeliveryBudget = 64;
};

/// A shrunk violating cell: the exact configuration plus the deterministic
/// replay artifact.
struct AdversarialFinding {
  /// The violating configuration (seed and corruptionSchedule filled in).
  ExperimentConfig config;
  TopologySchedule topology;
  SsmfpGuardMutation ssmfpWeakness = SsmfpGuardMutation::kNone;
  Ssmfp2GuardMutation ssmfp2Weakness = Ssmfp2GuardMutation::kNone;

  /// The daemon's choices up to (and including) the violating step; replay
  /// runs these through a ScriptedDaemon instead of the searched daemon.
  DaemonScript script;

  /// Budget the violating probe ran under (replay uses the same, so
  /// budget-class violations reproduce too).
  std::uint64_t invalidDeliveryBudget = 0;

  std::string violation;

  // Search/shrink accounting.
  std::size_t candidatesTried = 0;
  std::size_t shrinkProbes = 0;
  std::size_t droppedTopologyEvents = 0;
  std::size_t droppedCorruptionEvents = 0;
  std::size_t droppedScriptSteps = 0;

  [[nodiscard]] std::string describe() const;
};

/// Probes the candidate grid in deterministic order; on the first
/// violating cell, shrinks it and returns the finding. std::nullopt means
/// the whole grid survived (the expected verdict for unweakened rules).
[[nodiscard]] std::optional<AdversarialFinding> searchAdversarialSchedule(
    const AdversarialSearchConfig& config);

/// Deterministically re-runs a finding through a ScriptedDaemon (same build
/// and RNG fork discipline as the search probes). Returns the violation
/// reported by the replay, or std::nullopt if it no longer reproduces.
[[nodiscard]] std::optional<std::string> replayFinding(
    const AdversarialFinding& finding);

/// The canonical seeded-weakness search (SSMFP, R4 stray-copy quantifier
/// dropped): the CI/bench cell asserting the search machinery still finds
/// and shrinks a planted exactly-once violation.
[[nodiscard]] AdversarialSearchConfig seededWeaknessSearch(
    std::uint64_t maxStepsPerProbe = 50'000);

}  // namespace snapfwd
