#pragma once
// Processor-id symmetry for the explorer: automorphism groups of the
// explored topology, and the small amount of group machinery orbit
// canonicalization needs (explore.hpp `Reduction::kSymmetry`).
//
// A permutation pi of processor ids is a symmetry of a model when
//   (a) pi is a graph automorphism of the instance's topology,
//   (b) the destination set is closed under pi, and
//   (c) the protocol itself is equivariant: relabeling a configuration by
//       pi and stepping commutes with stepping and then relabeling.
// (a) and (b) are checked here; (c) is a property of the protocol + its
// tie-breaking rules that the models opt into via
// ModelInstance::supportsPermutedEncode (see models.cpp - the SSMFP stack
// is equivariant on odd rings with every node a destination, where the
// min-id parent tie-break never actually ties) and that the quotient-
// soundness differentials in tests/ and bench_explore_scale gate
// empirically: a reduced run must find every violation the full run finds.
//
// The explorer takes the CLOSED group (closeGroup of the generators) and
// canonicalizes every encoded state to the lexicographic minimum over the
// group's images - states in the same orbit intern identical bytes, so the
// visited set quotients by the orbit relation with no other changes.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace snapfwd {
struct TopologySpec;
}

namespace snapfwd::explore {

/// A processor-id permutation: perm[p] is the image of p.
using Perm = std::vector<NodeId>;

[[nodiscard]] Perm identityPerm(std::size_t n);
[[nodiscard]] Perm composePerm(const Perm& outer, const Perm& inner);  // outer(inner(p))
[[nodiscard]] Perm invertPerm(const Perm& perm);

/// True iff `perm` maps every edge of `graph` to an edge (and is a valid
/// permutation of 0..n-1).
[[nodiscard]] bool isAutomorphism(const Graph& graph, const Perm& perm);

/// Closes `generators` under composition (breadth-first over products).
/// The identity is always element 0. Stops and returns the partial closure
/// once `maxElements` is reached - callers treat an over-cap group as "no
/// symmetry" rather than risking an unsound partial quotient elsewhere, so
/// the cap is also the signal.
[[nodiscard]] std::vector<Perm> closeGroup(const std::vector<Perm>& generators,
                                           std::size_t maxElements = 20160);

/// Generators of the automorphism groups this PR ships:
///   ring      - rotation by one + reflection (dihedral group, 2n elements)
///   torus     - row/column translations (+ the transpose when square)
///   hypercube - adjacent coordinate transpositions + one coordinate flip
///               (generates the full hyperoctahedral group, 2^d * d!)
/// Everything else gets no generators (identity-only group). The returned
/// permutations are verified automorphisms of the built topology.
[[nodiscard]] std::vector<Perm> topologyAutomorphismGenerators(
    const TopologySpec& spec);

/// Filters `group` down to the permutations that map `destinations` (as a
/// set) onto itself - the stabilizer the forwarding layer needs. An empty
/// destination list means "every node" and stabilizes everything.
[[nodiscard]] std::vector<Perm> destinationStabilizer(
    const std::vector<Perm>& group, const std::vector<NodeId>& destinations,
    std::size_t n);

}  // namespace snapfwd::explore
