#include "core/engine.hpp"

#include <cassert>

namespace snapfwd {

Engine::Engine(const Graph& graph, std::vector<Protocol*> layers, Daemon& daemon,
               ThreadPool* pool)
    : graph_(graph),
      layers_(std::move(layers)),
      daemon_(daemon),
      pool_(pool),
      executedThisStep_(graph.size(), false),
      roundPending_(graph.size(), false),
      actionsPerLayer_(layers_.size(), 0) {
  assert(!layers_.empty());
}

void Engine::buildEnabled() {
  const std::size_t n = graph_.size();
  enabled_.clear();

  auto evaluate = [&](NodeId p, EnabledProcessor& entry) -> bool {
    for (std::uint16_t l = 0; l < layers_.size(); ++l) {
      entry.actions.clear();
      layers_[l]->enumerateEnabled(p, entry.actions);
      if (!entry.actions.empty()) {
        entry.p = p;
        entry.layer = l;
        return true;
      }
    }
    return false;
  };

  if (pool_ != nullptr && pool_->threadCount() > 1 && n >= 64) {
    // Parallel sweep with deterministic merge: fixed chunking by processor
    // ranges, chunk results concatenated in chunk order.
    const std::size_t chunks = pool_->threadCount() * 4;
    const std::size_t per = (n + chunks - 1) / chunks;
    std::vector<std::vector<EnabledProcessor>> partial(chunks);
    pool_->parallelFor(chunks, [&](std::size_t c) {
      const std::size_t begin = c * per;
      const std::size_t end = std::min(n, begin + per);
      for (std::size_t p = begin; p < end; ++p) {
        EnabledProcessor entry;
        if (evaluate(static_cast<NodeId>(p), entry)) {
          partial[c].push_back(std::move(entry));
        }
      }
    });
    for (auto& chunk : partial) {
      for (auto& entry : chunk) enabled_.push_back(std::move(entry));
    }
  } else {
    EnabledProcessor entry;
    for (NodeId p = 0; p < n; ++p) {
      if (evaluate(p, entry)) {
        enabled_.push_back(entry);
        entry = EnabledProcessor{};
      }
    }
  }
}

void Engine::settleRoundAccounting() {
  // Called with enabled_ freshly computed for the imminent step.
  // 1. Neutralization: processors owing the round that are no longer
  //    enabled are discharged.
  if (roundActive_ && roundPendingCount_ > 0) {
    std::vector<bool> enabledNow(graph_.size(), false);
    for (const auto& e : enabled_) enabledNow[e.p] = true;
    for (NodeId p = 0; p < graph_.size(); ++p) {
      if (roundPending_[p] && !enabledNow[p]) {
        roundPending_[p] = false;
        --roundPendingCount_;
      }
    }
  }
  // 2. Round completion / (re)start.
  if (roundActive_ && roundPendingCount_ == 0) {
    ++rounds_;
    roundActive_ = false;
  }
  if (!roundActive_ && !enabled_.empty()) {
    std::fill(roundPending_.begin(), roundPending_.end(), false);
    for (const auto& e : enabled_) roundPending_[e.p] = true;
    roundPendingCount_ = enabled_.size();
    roundActive_ = true;
  }
}

bool Engine::isTerminal() {
  buildEnabled();
  return enabled_.empty();
}

bool Engine::step() {
  buildEnabled();
  settleRoundAccounting();
  if (enabled_.empty()) return false;

  choices_.clear();
  daemon_.choose(steps_, enabled_, choices_);
  if (choices_.empty()) return false;

  // Stage all chosen actions against the pre-step configuration, then
  // commit layer by layer (composite atomicity).
  std::fill(executedThisStep_.begin(), executedThisStep_.end(), false);
  executedActions_.clear();
  std::vector<bool> layerTouched(layers_.size(), false);
  for (const auto& choice : choices_) {
    assert(choice.entryIndex < enabled_.size());
    const auto& entry = enabled_[choice.entryIndex];
    assert(choice.actionIndex < entry.actions.size());
    if (executedThisStep_[entry.p]) continue;  // at most one action per processor
    executedThisStep_[entry.p] = true;
    layers_[entry.layer]->stage(entry.p, entry.actions[choice.actionIndex]);
    layerTouched[entry.layer] = true;
    executedActions_.push_back(
        {entry.p, entry.layer, entry.actions[choice.actionIndex]});
    ++actions_;
    ++actionsPerLayer_[entry.layer];
  }
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    if (layerTouched[l]) layers_[l]->commit();
  }

  // Round accounting: executed processors discharge their obligation.
  for (NodeId p = 0; p < graph_.size(); ++p) {
    if (executedThisStep_[p] && roundPending_[p]) {
      roundPending_[p] = false;
      --roundPendingCount_;
    }
  }

  ++steps_;
  if (postStepHook_) postStepHook_(*this);
  return true;
}

std::uint64_t Engine::run(std::uint64_t maxSteps) {
  std::uint64_t executed = 0;
  while (executed < maxSteps && step()) ++executed;
  return executed;
}

}  // namespace snapfwd
