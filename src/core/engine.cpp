#include "core/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <stdexcept>

#include "util/env.hpp"

namespace snapfwd {

namespace {

// Process-wide defaults (EngineOptions::setProcessDefaults); -1 = unset
// (resolution falls through to the environment, then the built-ins).
std::atomic<int> gScanModeDefault{-1};
std::atomic<int> gExecModeDefault{-1};
std::atomic<int> gAuditDefault{-1};

}  // namespace

ScanMode EngineOptions::resolvedScanMode() const {
  if (scanMode) return *scanMode;
  const int d = gScanModeDefault.load(std::memory_order_relaxed);
  if (d >= 0) return static_cast<ScanMode>(d);
  if (const auto fromEnv = env::enumValue<ScanMode>("SNAPFWD_SCAN_MODE")) {
    return *fromEnv;
  }
  return ScanMode::kIncremental;
}

ExecMode EngineOptions::resolvedExecMode() const {
  if (execMode) return *execMode;
  const int d = gExecModeDefault.load(std::memory_order_relaxed);
  if (d >= 0) return static_cast<ExecMode>(d);
  if (const auto fromEnv = env::enumValue<ExecMode>("SNAPFWD_EXEC")) {
    return *fromEnv;
  }
  return ExecMode::kVirtual;
}

bool EngineOptions::resolvedAudit() const {
  // Non-capable binaries resolve to off whatever was requested (see struct
  // comment); explicit Engine::setAuditMode(true) still throws.
  if (!kAuditCapable) return false;
  if (audit) return *audit;
  const int d = gAuditDefault.load(std::memory_order_relaxed);
  if (d >= 0) return d != 0;
  return env::flag("SNAPFWD_AUDIT");
}

void EngineOptions::setProcessDefaults(const EngineOptions& defaults) {
  gScanModeDefault.store(
      defaults.scanMode ? static_cast<int>(*defaults.scanMode) : -1,
      std::memory_order_relaxed);
  gExecModeDefault.store(
      defaults.execMode ? static_cast<int>(*defaults.execMode) : -1,
      std::memory_order_relaxed);
  gAuditDefault.store(defaults.audit ? static_cast<int>(*defaults.audit) : -1,
                      std::memory_order_relaxed);
}

EngineOptions EngineOptions::processDefaults() {
  EngineOptions out;
  const int scan = gScanModeDefault.load(std::memory_order_relaxed);
  if (scan >= 0) out.scanMode = static_cast<ScanMode>(scan);
  const int exec = gExecModeDefault.load(std::memory_order_relaxed);
  if (exec >= 0) out.execMode = static_cast<ExecMode>(exec);
  const int audit = gAuditDefault.load(std::memory_order_relaxed);
  if (audit >= 0) out.audit = audit != 0;
  return out;
}

void Engine::setAuditMode(bool on) {
  // Any audit toggle invalidates kernel-mirror trust: while a tracker is
  // attached the kernel path is bypassed, so mirrors silently go stale.
  mirrorsDirty_ = true;
  if (!on) {
    if (tracker_ != nullptr) {
      for (Protocol* layer : layers_) layer->setAccessTracker(nullptr);
      tracker_.reset();
    }
    return;
  }
  if (!kAuditCapable) {
    throw std::logic_error(
        "Engine::setAuditMode: this binary was compiled without "
        "-DSNAPFWD_AUDIT=ON; checked-state recording is unavailable");
  }
  if (tracker_ != nullptr) return;
  tracker_ = std::make_unique<AccessTracker>(graph_);
  for (Protocol* layer : layers_) layer->setAccessTracker(tracker_.get());
}

Engine::Engine(const Graph& graph, std::vector<Protocol*> layers, Daemon& daemon,
               ThreadPool* pool, EngineOptions options)
    : graph_(graph),
      layers_(std::move(layers)),
      daemon_(daemon),
      pool_(pool),
      scanMode_(options.resolvedScanMode()),
      execMode_(options.resolvedExecMode()),
      executedThisStep_(graph.size(), false),
      layerTouchedScratch_(layers_.size(), false),
      writtenMark_(graph.size(), false),
      dirtyMark_(graph.size(), false),
      roundPending_(graph.size(), false),
      roundMark_(graph.size(), false),
      actionsPerLayer_(layers_.size(), 0) {
  assert(!layers_.empty());
  if (scanMode_ == ScanMode::kIncremental) cache_.resize(graph.size());
  enabled_.reserve(graph.size());
  enabledIds_.reserve(graph.size());
  guardSources_.reserve(layers_.size());
  kernels_.reserve(layers_.size());
  for (const Protocol* layer : layers_) {
    guardSources_.push_back(layer);
    // Kernel sets (and the SoA mirrors behind them) are only materialized
    // when this engine will actually use them: a virtual-exec engine must
    // not pay for mirror construction and upkeep it never reads.
    const GuardKernelSet* kset =
        execMode_ == ExecMode::kKernel ? layer->guardKernels() : nullptr;
    kernels_.push_back(kset);
    if (kset != nullptr) haveKernels_ = true;
  }
  if (execMode_ == ExecMode::kKernel) {
    allIds_.resize(graph.size());
    for (std::size_t p = 0; p < graph.size(); ++p) {
      allIds_[p] = static_cast<NodeId>(p);
    }
  }
  for (const Protocol* layer : layers_) {
    maxAccessRadius_ = std::max(maxAccessRadius_, layer->accessRadius());
  }
  for (Protocol* layer : layers_) {
    layer->setInvalidationHook([this] { invalidateEnabledCache(); });
  }
  if (options.resolvedAudit()) setAuditMode(true);
  if (useKernels()) {
    // Prime the mirrors now, at construction: the invalidation hooks are
    // registered above, so any later out-of-band mutation re-flags them,
    // and the first in-run batch starts from a trusted mirror instead of
    // paying a full syncAll inside the measured stepping.
    for (const GuardKernelSet* kset : kernels_) {
      if (kset != nullptr && kset->syncAll != nullptr) kset->syncAll(kset->self);
    }
    mirrorsDirty_ = false;
  }
}

Engine::~Engine() {
  for (Protocol* layer : layers_) {
    layer->setInvalidationHook(nullptr);
    if (tracker_ != nullptr) layer->setAccessTracker(nullptr);
  }
}

void Engine::invalidateEnabledCache() {
  cacheValid_ = false;
  enabledFresh_ = false;
  mirrorsDirty_ = true;
  for (const NodeId p : pendingWrites_) writtenMark_[p] = false;
  pendingWrites_.clear();
}

bool Engine::evaluateProcessor(NodeId p, EnabledProcessor& entry) const {
  for (std::uint16_t l = 0; l < layers_.size(); ++l) {
    entry.actions.clear();
    if (tracker_ != nullptr) {
      tracker_->beginGuard(p, layers_[l]->accessRadius(), layers_[l]->name());
      layers_[l]->enumerateEnabled(p, entry.actions);
      tracker_->endPhase();
    } else {
      layers_[l]->enumerateEnabled(p, entry.actions);
    }
    if (!entry.actions.empty()) {
      entry.p = p;
      entry.layer = l;
      return true;
    }
  }
  return false;
}

void Engine::batchEvaluate(const NodeId* ids, std::size_t count) {
  if (mirrorsDirty_) {
    for (const GuardKernelSet* kset : kernels_) {
      if (kset != nullptr && kset->syncAll != nullptr) kset->syncAll(kset->self);
    }
    mirrorsDirty_ = false;
  }
  batch_.run(guardSources_.data(), kernels_.data(), layers_.size(), ids, count);
}

void Engine::buildEnabled() {
  if (enabledFresh_) {
    ++scanStats_.cachedScans;
    return;
  }
  if (tracker_ != nullptr) tracker_->setStep(steps_);
  if (scanMode_ == ScanMode::kIncremental && cacheValid_) {
    incrementalScan();
  } else {
    fullScan();
  }
  enabledFresh_ = true;
  flushAuditViolations();
}

void Engine::fullScan() {
  const std::size_t n = graph_.size();
  const bool fillCache = scanMode_ == ScanMode::kIncremental;
  if (fillCache) enabledIds_.clear();

  // Entry-reuse rebuild: append() recycles the EnabledProcessor slots (and
  // their action-vector capacity) already sitting in enabled_ instead of
  // destroying and reallocating them every sweep.
  std::size_t used = 0;
  auto append = [&]() -> EnabledProcessor& {
    if (used == enabled_.size()) enabled_.emplace_back();
    return enabled_[used++];
  };

  if (useKernels()) {
    // Kernel sweep: one serial batch over 0..n-1 (determinism first; the
    // batches are branch-light enough that threading is not worth the
    // nondeterministic merge complexity).
    batchEvaluate(allIds_.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId p = allIds_[i];
      const bool on = batch_.enabled(i);
      if (fillCache) {
        // Cache-entry invariant (all fill sites): layer/actions are only
        // written - and only read - when the slot is enabled. Disabled
        // slots keep stale garbage, which saves the vector traffic on the
        // overwhelmingly-disabled sweeps.
        CacheEntry& slot = cache_[p];
        slot.enabled = on;
        if (on) {
          slot.layer = batch_.layer(i);
          slot.actions.assign(batch_.actionsBegin(i), batch_.actionsEnd(i));
          enabledIds_.push_back(p);
        }
      }
      if (on) {
        EnabledProcessor& e = append();
        e.p = p;
        e.layer = batch_.layer(i);
        e.actions.assign(batch_.actionsBegin(i), batch_.actionsEnd(i));
      }
    }
    enabled_.resize(used);
  } else if (pool_ != nullptr && pool_->threadCount() > 1 && n >= 64 &&
             tracker_ == nullptr) {
    // Parallel sweep with deterministic merge: fixed chunking by processor
    // ranges, chunk results concatenated in chunk order (= id order). The
    // tracker records one bracketed phase at a time, so audit mode
    // evaluates serially (results are identical either way).
    enabled_.clear();
    const std::size_t chunks = pool_->threadCount() * 4;
    const std::size_t per = (n + chunks - 1) / chunks;
    // Member scratch: chunk vectors keep their capacity across sweeps, so
    // repeated full scans stop heap-allocating (entries are moved out below).
    if (scanPartial_.size() < chunks) scanPartial_.resize(chunks);
    std::vector<std::vector<EnabledProcessor>>& partial = scanPartial_;
    pool_->parallelFor(chunks, [&](std::size_t c) {
      partial[c].clear();
      const std::size_t begin = c * per;
      const std::size_t end = std::min(n, begin + per);
      for (std::size_t p = begin; p < end; ++p) {
        EnabledProcessor entry;
        const bool on = evaluateProcessor(static_cast<NodeId>(p), entry);
        if (fillCache) {
          CacheEntry& slot = cache_[p];  // distinct p per chunk: no race
          slot.enabled = on;
          if (on) {
            slot.layer = entry.layer;
            slot.actions = entry.actions;
          }
        }
        if (on) partial[c].push_back(std::move(entry));
      }
    });
    for (std::size_t c = 0; c < chunks; ++c) {
      for (auto& entry : partial[c]) {
        if (fillCache) enabledIds_.push_back(entry.p);
        enabled_.push_back(std::move(entry));
      }
    }
  } else {
    EnabledProcessor probe;
    for (NodeId p = 0; p < n; ++p) {
      const bool on = evaluateProcessor(p, probe);
      if (fillCache) {
        CacheEntry& slot = cache_[p];
        slot.enabled = on;
        if (on) {
          slot.layer = probe.layer;
          slot.actions = probe.actions;  // copy: probe is swapped out below
          enabledIds_.push_back(p);
        }
      }
      if (on) {
        EnabledProcessor& e = append();
        e.p = p;
        e.layer = probe.layer;
        e.actions.swap(probe.actions);
      }
    }
    enabled_.resize(used);
  }

  ++scanStats_.fullScans;
  scanStats_.guardEvals += n;
  if (fillCache) {
    cacheValid_ = true;
    for (const NodeId p : pendingWrites_) writtenMark_[p] = false;
    pendingWrites_.clear();
  }
}

void Engine::incrementalScan() {
  const std::size_t n = graph_.size();
  // Dirty set: the radius-r balls around every processor written since the
  // last scan, r = max over layers of the declared accessRadius (1 = the
  // model's closed neighborhoods N[W]; see protocol.hpp). Only these can
  // have changed enabled status. Expansion is an iterative frontier BFS:
  // depth d's frontier is the slice of dirtyScratch_ appended at depth d-1.
  dirtyScratch_.clear();
  for (const NodeId w : pendingWrites_) {
    writtenMark_[w] = false;
    if (!dirtyMark_[w]) {
      dirtyMark_[w] = true;
      dirtyScratch_.push_back(w);
    }
  }
  std::size_t frontierBegin = 0;
  for (unsigned depth = 0; depth < maxAccessRadius_; ++depth) {
    const std::size_t frontierEnd = dirtyScratch_.size();
    if (frontierBegin == frontierEnd) break;
    for (std::size_t i = frontierBegin; i < frontierEnd; ++i) {
      for (const NodeId q : graph_.neighbors(dirtyScratch_[i])) {
        if (!dirtyMark_[q]) {
          dirtyMark_[q] = true;
          dirtyScratch_.push_back(q);
        }
      }
    }
    frontierBegin = frontierEnd;
  }
  pendingWrites_.clear();
  std::sort(dirtyScratch_.begin(), dirtyScratch_.end());

  if (useKernels()) {
    batchEvaluate(dirtyScratch_.data(), dirtyScratch_.size());
    for (std::size_t i = 0; i < dirtyScratch_.size(); ++i) {
      CacheEntry& slot = cache_[dirtyScratch_[i]];
      slot.enabled = batch_.enabled(i);
      if (slot.enabled) {
        slot.layer = batch_.layer(i);
        slot.actions.assign(batch_.actionsBegin(i), batch_.actionsEnd(i));
      }
    }
  } else if (pool_ != nullptr && pool_->threadCount() > 1 &&
             dirtyScratch_.size() >= 64 && tracker_ == nullptr) {
    const std::size_t chunks = pool_->threadCount() * 4;
    const std::size_t per = (dirtyScratch_.size() + chunks - 1) / chunks;
    pool_->parallelFor(chunks, [&](std::size_t c) {
      const std::size_t begin = c * per;
      const std::size_t end = std::min(dirtyScratch_.size(), begin + per);
      EnabledProcessor entry;
      for (std::size_t i = begin; i < end; ++i) {
        const NodeId p = dirtyScratch_[i];
        CacheEntry& slot = cache_[p];  // distinct p per chunk: no race
        slot.enabled = evaluateProcessor(p, entry);
        if (slot.enabled) {
          slot.layer = entry.layer;
          slot.actions.swap(entry.actions);
        }
      }
    });
  } else {
    EnabledProcessor entry;
    for (const NodeId p : dirtyScratch_) {
      CacheEntry& slot = cache_[p];
      slot.enabled = evaluateProcessor(p, entry);
      if (slot.enabled) {
        slot.layer = entry.layer;
        slot.actions.swap(entry.actions);
      }
    }
  }

  // Merge: previously enabled ids minus re-evaluated ones, plus the dirty
  // processors now enabled - both inputs sorted, output stays sorted (the
  // id order a full sweep produces).
  nextEnabledScratch_.clear();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < enabledIds_.size() || j < dirtyScratch_.size()) {
    if (j == dirtyScratch_.size() ||
        (i < enabledIds_.size() && enabledIds_[i] < dirtyScratch_[j])) {
      nextEnabledScratch_.push_back(enabledIds_[i++]);
    } else {
      const NodeId p = dirtyScratch_[j++];
      if (i < enabledIds_.size() && enabledIds_[i] == p) ++i;
      if (cache_[p].enabled) nextEnabledScratch_.push_back(p);
    }
  }
  enabledIds_.swap(nextEnabledScratch_);

  // Entry-reuse rebuild (same scheme as fullScan): recycle enabled_ slots
  // and their action capacity instead of reallocating per step.
  std::size_t used = 0;
  for (const NodeId p : enabledIds_) {
    const bool fresh = used == enabled_.size();
    if (fresh) enabled_.emplace_back();
    EnabledProcessor& e = enabled_[used++];
    // A recycled slot already holding p is still byte-identical to
    // cache_[p] unless p was re-evaluated this scan (dirtyMark_ is not
    // cleared until scan end): every cache_[p] change has p in that scan's
    // dirty set, and that scan's rebuild refreshed or evicted the slot.
    if (!fresh && e.p == p && !dirtyMark_[p]) continue;
    e.p = p;
    e.layer = cache_[p].layer;
    e.actions.assign(cache_[p].actions.begin(), cache_[p].actions.end());
  }
  enabled_.resize(used);

  ++scanStats_.incrementalScans;
  scanStats_.guardEvals += dirtyScratch_.size();
  scanStats_.guardEvalsSaved += n - dirtyScratch_.size();
  scanStats_.dirtySum += dirtyScratch_.size();
  for (const NodeId p : dirtyScratch_) dirtyMark_[p] = false;
}

void Engine::settleRoundAccounting() {
  // Called with enabled_ freshly computed for the imminent step.
  // 1. Neutralization: processors owing the round that are no longer
  //    enabled are discharged. Iterates the compact pending-id list
  //    (skipping ids the executed-discharge already cleared) against
  //    roundMark_ = current enabled membership, so the pass costs
  //    O(|pending| + |enabled|) instead of O(n).
  if (roundActive_ && roundPendingCount_ > 0) {
    for (const auto& e : enabled_) roundMark_[e.p] = true;
    std::size_t kept = 0;
    for (const NodeId p : roundPendingIds_) {
      if (!roundPending_[p]) continue;  // stale: discharged by execution
      if (!roundMark_[p]) {
        roundPending_[p] = false;
        --roundPendingCount_;
      } else {
        roundPendingIds_[kept++] = p;
      }
    }
    roundPendingIds_.resize(kept);
    for (const auto& e : enabled_) roundMark_[e.p] = false;
  }
  // 2. Round completion / (re)start.
  if (roundActive_ && roundPendingCount_ == 0) {
    ++rounds_;
    roundActive_ = false;
  }
  if (!roundActive_ && !enabled_.empty()) {
    // roundPendingCount_ == 0 here, and every discharge paired a count
    // decrement with a bit clear - so all roundPending_ bits are already
    // false and no O(n) reset is needed.
    roundPendingIds_.clear();
    for (const auto& e : enabled_) {
      roundPending_[e.p] = true;
      roundPendingIds_.push_back(e.p);
    }
    roundPendingCount_ = enabled_.size();
    roundActive_ = true;
  }
}

void Engine::flushAuditViolations() {
  if (tracker_ == nullptr || !tracker_->hasViolations()) return;
  if (auditHandler_) {
    for (const AccessViolation& v : tracker_->violations()) auditHandler_(v);
    tracker_->clearViolations();
    return;
  }
  AccessViolation first = tracker_->violations().front();
  tracker_->clearViolations();
  throw AccessAuditError(std::move(first));
}

bool Engine::isTerminal() {
  buildEnabled();
  return enabled_.empty();
}

bool Engine::step() {
  buildEnabled();
  settleRoundAccounting();
  if (enabled_.empty()) return false;

  choices_.clear();
  daemon_.choose(steps_, enabled_, choices_);
  if (choices_.empty()) return false;

  // Stage all chosen actions against the pre-step configuration, then
  // commit layer by layer (composite atomicity), collecting the write sets
  // that drive the next incremental scan. executedThisStep_ bits are set
  // exactly for the previous step's executedActions_, so clearing them
  // sparsely (before the list resets) replaces the old O(n) fill.
  for (const ExecutedAction& ex : executedActions_) {
    executedThisStep_[ex.p] = false;
  }
  executedActions_.clear();
  std::fill(layerTouchedScratch_.begin(), layerTouchedScratch_.end(), false);
  for (const auto& choice : choices_) {
    assert(choice.entryIndex < enabled_.size());
    const auto& entry = enabled_[choice.entryIndex];
    assert(choice.actionIndex < entry.actions.size());
    if (executedThisStep_[entry.p]) continue;  // at most one action per processor
    executedThisStep_[entry.p] = true;
    const Action& action = entry.actions[choice.actionIndex];
    if (tracker_ != nullptr) {
      tracker_->beginStage(entry.p, layers_[entry.layer]->accessRadius(),
                           action.rule, layers_[entry.layer]->name());
      layers_[entry.layer]->stage(entry.p, action);
      tracker_->endPhase();
    } else {
      layers_[entry.layer]->stage(entry.p, action);
    }
    layerTouchedScratch_[entry.layer] = true;
    executedActions_.push_back({entry.p, entry.layer, action});
    ++actions_;
    ++actionsPerLayer_[entry.layer];
  }
  writtenScratch_.clear();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    if (!layerTouchedScratch_[l]) continue;
    if (tracker_ != nullptr) {
      // Per-layer write-honesty check: the slice this layer appends to
      // writtenScratch_ must cover every write the tracker recorded during
      // its commit (superset; over-reporting is fine).
      const std::size_t before = writtenScratch_.size();
      tracker_->beginCommit(layers_[l]->name());
      layers_[l]->commit(writtenScratch_);
      tracker_->endCommit(writtenScratch_.data() + before,
                          writtenScratch_.size() - before);
    } else {
      layers_[l]->commit(writtenScratch_);
    }
  }
  flushAuditViolations();
  enabledFresh_ = false;
  if (scanMode_ == ScanMode::kIncremental && cacheValid_) {
    for (const NodeId w : writtenScratch_) {
      assert(w < graph_.size());
      if (!writtenMark_[w]) {
        writtenMark_[w] = true;
        pendingWrites_.push_back(w);
      }
    }
  }

  // Kernel-mirror upkeep: refresh the mirror rows of everything this step
  // wrote - the UNION of the layers' write sets, because one layer's
  // guards may read another layer's variables (SSMFP reads the routing
  // tables). When the kernel path is inactive (virtual exec, audit) or an
  // out-of-band mutation already flagged the mirrors, just stay/flag dirty
  // and let the next batch syncAll.
  if (haveKernels_) {
    if (useKernels() && !mirrorsDirty_) {
      for (const GuardKernelSet* kset : kernels_) {
        if (kset != nullptr && kset->syncWritten != nullptr) {
          kset->syncWritten(kset->self, writtenScratch_.data(),
                            writtenScratch_.size());
        }
      }
    } else {
      mirrorsDirty_ = true;
    }
  }

  // Round accounting: executed processors discharge their obligation (their
  // ids stay in roundPendingIds_ as stale entries; settleRoundAccounting
  // skips them via the cleared roundPending_ bit).
  for (const ExecutedAction& ex : executedActions_) {
    if (roundPending_[ex.p]) {
      roundPending_[ex.p] = false;
      --roundPendingCount_;
    }
  }

  ++steps_;
  if (postStepHook_) postStepHook_(*this);
  return true;
}

std::uint64_t Engine::run(std::uint64_t maxSteps) {
  std::uint64_t executed = 0;
  while (executed < maxSteps && step()) ++executed;
  return executed;
}

}  // namespace snapfwd
