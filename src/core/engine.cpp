#include "core/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace snapfwd {

namespace {

// Process-wide default-mode override; -1 = none (env / built-in default).
std::atomic<int> gScanModeOverride{-1};

// Process-wide audit-mode override; -1 = none (env / off).
std::atomic<int> gAuditModeOverride{-1};

bool envFlagSet(const char* value) {
  return std::strcmp(value, "1") == 0 || std::strcmp(value, "on") == 0 ||
         std::strcmp(value, "true") == 0;
}

}  // namespace

ScanMode Engine::defaultScanMode() {
  const int forced = gScanModeOverride.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<ScanMode>(forced);
  if (const char* env = std::getenv("SNAPFWD_SCAN_MODE")) {
    if (const auto parsed = parseEnum<ScanMode>(env)) return *parsed;
  }
  return ScanMode::kIncremental;
}

void Engine::setDefaultScanMode(std::optional<ScanMode> mode) {
  gScanModeOverride.store(mode ? static_cast<int>(*mode) : -1,
                          std::memory_order_relaxed);
}

bool Engine::defaultAuditMode() {
  if (!kAuditCapable) return false;
  const int forced = gAuditModeOverride.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  if (const char* env = std::getenv("SNAPFWD_AUDIT")) return envFlagSet(env);
  return false;
}

void Engine::setDefaultAuditMode(std::optional<bool> on) {
  gAuditModeOverride.store(on ? static_cast<int>(*on) : -1,
                           std::memory_order_relaxed);
}

void Engine::setAuditMode(bool on) {
  if (!on) {
    if (tracker_ != nullptr) {
      for (Protocol* layer : layers_) layer->setAccessTracker(nullptr);
      tracker_.reset();
    }
    return;
  }
  if (!kAuditCapable) {
    throw std::logic_error(
        "Engine::setAuditMode: this binary was compiled without "
        "-DSNAPFWD_AUDIT=ON; checked-state recording is unavailable");
  }
  if (tracker_ != nullptr) return;
  tracker_ = std::make_unique<AccessTracker>(graph_);
  for (Protocol* layer : layers_) layer->setAccessTracker(tracker_.get());
}

Engine::Engine(const Graph& graph, std::vector<Protocol*> layers, Daemon& daemon,
               ThreadPool* pool, ScanMode scanMode)
    : graph_(graph),
      layers_(std::move(layers)),
      daemon_(daemon),
      pool_(pool),
      scanMode_(scanMode),
      executedThisStep_(graph.size(), false),
      writtenMark_(graph.size(), false),
      dirtyMark_(graph.size(), false),
      roundPending_(graph.size(), false),
      actionsPerLayer_(layers_.size(), 0) {
  assert(!layers_.empty());
  if (scanMode_ == ScanMode::kIncremental) cache_.resize(graph.size());
  enabled_.reserve(graph.size());
  enabledIds_.reserve(graph.size());
  for (const Protocol* layer : layers_) {
    maxAccessRadius_ = std::max(maxAccessRadius_, layer->accessRadius());
  }
  for (Protocol* layer : layers_) {
    layer->setInvalidationHook([this] { invalidateEnabledCache(); });
  }
  if (defaultAuditMode()) setAuditMode(true);
}

Engine::~Engine() {
  for (Protocol* layer : layers_) {
    layer->setInvalidationHook(nullptr);
    if (tracker_ != nullptr) layer->setAccessTracker(nullptr);
  }
}

void Engine::invalidateEnabledCache() {
  cacheValid_ = false;
  enabledFresh_ = false;
  for (const NodeId p : pendingWrites_) writtenMark_[p] = false;
  pendingWrites_.clear();
}

bool Engine::evaluateProcessor(NodeId p, EnabledProcessor& entry) const {
  for (std::uint16_t l = 0; l < layers_.size(); ++l) {
    entry.actions.clear();
    if (tracker_ != nullptr) {
      tracker_->beginGuard(p, layers_[l]->accessRadius(), layers_[l]->name());
      layers_[l]->enumerateEnabled(p, entry.actions);
      tracker_->endPhase();
    } else {
      layers_[l]->enumerateEnabled(p, entry.actions);
    }
    if (!entry.actions.empty()) {
      entry.p = p;
      entry.layer = l;
      return true;
    }
  }
  return false;
}

void Engine::buildEnabled() {
  if (enabledFresh_) {
    ++scanStats_.cachedScans;
    return;
  }
  if (tracker_ != nullptr) tracker_->setStep(steps_);
  if (scanMode_ == ScanMode::kIncremental && cacheValid_) {
    incrementalScan();
  } else {
    fullScan();
  }
  enabledFresh_ = true;
  flushAuditViolations();
}

void Engine::fullScan() {
  const std::size_t n = graph_.size();
  enabled_.clear();
  const bool fillCache = scanMode_ == ScanMode::kIncremental;
  if (fillCache) enabledIds_.clear();

  // The tracker records one bracketed phase at a time, so audit mode
  // evaluates serially (results are identical either way).
  if (pool_ != nullptr && pool_->threadCount() > 1 && n >= 64 &&
      tracker_ == nullptr) {
    // Parallel sweep with deterministic merge: fixed chunking by processor
    // ranges, chunk results concatenated in chunk order (= id order).
    const std::size_t chunks = pool_->threadCount() * 4;
    const std::size_t per = (n + chunks - 1) / chunks;
    // Member scratch: chunk vectors keep their capacity across sweeps, so
    // repeated full scans stop heap-allocating (entries are moved out below).
    if (scanPartial_.size() < chunks) scanPartial_.resize(chunks);
    std::vector<std::vector<EnabledProcessor>>& partial = scanPartial_;
    pool_->parallelFor(chunks, [&](std::size_t c) {
      partial[c].clear();
      const std::size_t begin = c * per;
      const std::size_t end = std::min(n, begin + per);
      for (std::size_t p = begin; p < end; ++p) {
        EnabledProcessor entry;
        const bool on = evaluateProcessor(static_cast<NodeId>(p), entry);
        if (fillCache) {
          CacheEntry& slot = cache_[p];  // distinct p per chunk: no race
          slot.enabled = on;
          slot.layer = entry.layer;
          slot.actions = entry.actions;
        }
        if (on) partial[c].push_back(std::move(entry));
      }
    });
    for (std::size_t c = 0; c < chunks; ++c) {
      for (auto& entry : partial[c]) {
        if (fillCache) enabledIds_.push_back(entry.p);
        enabled_.push_back(std::move(entry));
      }
    }
  } else {
    EnabledProcessor entry;
    for (NodeId p = 0; p < n; ++p) {
      const bool on = evaluateProcessor(p, entry);
      if (fillCache) {
        CacheEntry& slot = cache_[p];
        slot.enabled = on;
        slot.layer = entry.layer;
        slot.actions = entry.actions;
        if (on) enabledIds_.push_back(p);
      }
      if (on) {
        enabled_.push_back(entry);
        entry = EnabledProcessor{};
      }
    }
  }

  ++scanStats_.fullScans;
  scanStats_.guardEvals += n;
  if (fillCache) {
    cacheValid_ = true;
    for (const NodeId p : pendingWrites_) writtenMark_[p] = false;
    pendingWrites_.clear();
  }
}

void Engine::incrementalScan() {
  const std::size_t n = graph_.size();
  // Dirty set: the radius-r balls around every processor written since the
  // last scan, r = max over layers of the declared accessRadius (1 = the
  // model's closed neighborhoods N[W]; see protocol.hpp). Only these can
  // have changed enabled status. Expansion is an iterative frontier BFS:
  // depth d's frontier is the slice of dirtyScratch_ appended at depth d-1.
  dirtyScratch_.clear();
  for (const NodeId w : pendingWrites_) {
    writtenMark_[w] = false;
    if (!dirtyMark_[w]) {
      dirtyMark_[w] = true;
      dirtyScratch_.push_back(w);
    }
  }
  std::size_t frontierBegin = 0;
  for (unsigned depth = 0; depth < maxAccessRadius_; ++depth) {
    const std::size_t frontierEnd = dirtyScratch_.size();
    if (frontierBegin == frontierEnd) break;
    for (std::size_t i = frontierBegin; i < frontierEnd; ++i) {
      for (const NodeId q : graph_.neighbors(dirtyScratch_[i])) {
        if (!dirtyMark_[q]) {
          dirtyMark_[q] = true;
          dirtyScratch_.push_back(q);
        }
      }
    }
    frontierBegin = frontierEnd;
  }
  pendingWrites_.clear();
  std::sort(dirtyScratch_.begin(), dirtyScratch_.end());

  if (pool_ != nullptr && pool_->threadCount() > 1 &&
      dirtyScratch_.size() >= 64 && tracker_ == nullptr) {
    const std::size_t chunks = pool_->threadCount() * 4;
    const std::size_t per = (dirtyScratch_.size() + chunks - 1) / chunks;
    pool_->parallelFor(chunks, [&](std::size_t c) {
      const std::size_t begin = c * per;
      const std::size_t end = std::min(dirtyScratch_.size(), begin + per);
      EnabledProcessor entry;
      for (std::size_t i = begin; i < end; ++i) {
        const NodeId p = dirtyScratch_[i];
        CacheEntry& slot = cache_[p];  // distinct p per chunk: no race
        slot.enabled = evaluateProcessor(p, entry);
        slot.layer = entry.layer;
        slot.actions.swap(entry.actions);
      }
    });
  } else {
    EnabledProcessor entry;
    for (const NodeId p : dirtyScratch_) {
      CacheEntry& slot = cache_[p];
      slot.enabled = evaluateProcessor(p, entry);
      slot.layer = entry.layer;
      slot.actions.swap(entry.actions);
    }
  }

  // Merge: previously enabled ids minus re-evaluated ones, plus the dirty
  // processors now enabled - both inputs sorted, output stays sorted (the
  // id order a full sweep produces).
  nextEnabledScratch_.clear();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < enabledIds_.size() || j < dirtyScratch_.size()) {
    if (j == dirtyScratch_.size() ||
        (i < enabledIds_.size() && enabledIds_[i] < dirtyScratch_[j])) {
      nextEnabledScratch_.push_back(enabledIds_[i++]);
    } else {
      const NodeId p = dirtyScratch_[j++];
      if (i < enabledIds_.size() && enabledIds_[i] == p) ++i;
      if (cache_[p].enabled) nextEnabledScratch_.push_back(p);
    }
  }
  enabledIds_.swap(nextEnabledScratch_);

  enabled_.clear();
  for (const NodeId p : enabledIds_) {
    EnabledProcessor entry;
    entry.p = p;
    entry.layer = cache_[p].layer;
    entry.actions = cache_[p].actions;
    enabled_.push_back(std::move(entry));
  }

  ++scanStats_.incrementalScans;
  scanStats_.guardEvals += dirtyScratch_.size();
  scanStats_.guardEvalsSaved += n - dirtyScratch_.size();
  scanStats_.dirtySum += dirtyScratch_.size();
  for (const NodeId p : dirtyScratch_) dirtyMark_[p] = false;
}

void Engine::settleRoundAccounting() {
  // Called with enabled_ freshly computed for the imminent step.
  // 1. Neutralization: processors owing the round that are no longer
  //    enabled are discharged.
  if (roundActive_ && roundPendingCount_ > 0) {
    std::vector<bool> enabledNow(graph_.size(), false);
    for (const auto& e : enabled_) enabledNow[e.p] = true;
    for (NodeId p = 0; p < graph_.size(); ++p) {
      if (roundPending_[p] && !enabledNow[p]) {
        roundPending_[p] = false;
        --roundPendingCount_;
      }
    }
  }
  // 2. Round completion / (re)start.
  if (roundActive_ && roundPendingCount_ == 0) {
    ++rounds_;
    roundActive_ = false;
  }
  if (!roundActive_ && !enabled_.empty()) {
    std::fill(roundPending_.begin(), roundPending_.end(), false);
    for (const auto& e : enabled_) roundPending_[e.p] = true;
    roundPendingCount_ = enabled_.size();
    roundActive_ = true;
  }
}

void Engine::flushAuditViolations() {
  if (tracker_ == nullptr || !tracker_->hasViolations()) return;
  if (auditHandler_) {
    for (const AccessViolation& v : tracker_->violations()) auditHandler_(v);
    tracker_->clearViolations();
    return;
  }
  AccessViolation first = tracker_->violations().front();
  tracker_->clearViolations();
  throw AccessAuditError(std::move(first));
}

bool Engine::isTerminal() {
  buildEnabled();
  return enabled_.empty();
}

bool Engine::step() {
  buildEnabled();
  settleRoundAccounting();
  if (enabled_.empty()) return false;

  choices_.clear();
  daemon_.choose(steps_, enabled_, choices_);
  if (choices_.empty()) return false;

  // Stage all chosen actions against the pre-step configuration, then
  // commit layer by layer (composite atomicity), collecting the write sets
  // that drive the next incremental scan.
  std::fill(executedThisStep_.begin(), executedThisStep_.end(), false);
  executedActions_.clear();
  std::vector<bool> layerTouched(layers_.size(), false);
  for (const auto& choice : choices_) {
    assert(choice.entryIndex < enabled_.size());
    const auto& entry = enabled_[choice.entryIndex];
    assert(choice.actionIndex < entry.actions.size());
    if (executedThisStep_[entry.p]) continue;  // at most one action per processor
    executedThisStep_[entry.p] = true;
    const Action& action = entry.actions[choice.actionIndex];
    if (tracker_ != nullptr) {
      tracker_->beginStage(entry.p, layers_[entry.layer]->accessRadius(),
                           action.rule, layers_[entry.layer]->name());
      layers_[entry.layer]->stage(entry.p, action);
      tracker_->endPhase();
    } else {
      layers_[entry.layer]->stage(entry.p, action);
    }
    layerTouched[entry.layer] = true;
    executedActions_.push_back({entry.p, entry.layer, action});
    ++actions_;
    ++actionsPerLayer_[entry.layer];
  }
  writtenScratch_.clear();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    if (!layerTouched[l]) continue;
    if (tracker_ != nullptr) {
      // Per-layer write-honesty check: the slice this layer appends to
      // writtenScratch_ must cover every write the tracker recorded during
      // its commit (superset; over-reporting is fine).
      const std::size_t before = writtenScratch_.size();
      tracker_->beginCommit(layers_[l]->name());
      layers_[l]->commit(writtenScratch_);
      tracker_->endCommit(writtenScratch_.data() + before,
                          writtenScratch_.size() - before);
    } else {
      layers_[l]->commit(writtenScratch_);
    }
  }
  flushAuditViolations();
  enabledFresh_ = false;
  if (scanMode_ == ScanMode::kIncremental && cacheValid_) {
    for (const NodeId w : writtenScratch_) {
      assert(w < graph_.size());
      if (!writtenMark_[w]) {
        writtenMark_[w] = true;
        pendingWrites_.push_back(w);
      }
    }
  }

  // Round accounting: executed processors discharge their obligation.
  for (NodeId p = 0; p < graph_.size(); ++p) {
    if (executedThisStep_[p] && roundPending_[p]) {
      roundPending_[p] = false;
      --roundPendingCount_;
    }
  }

  ++steps_;
  if (postStepHook_) postStepHook_(*this);
  return true;
}

std::uint64_t Engine::run(std::uint64_t maxSteps) {
  std::uint64_t executed = 0;
  while (executed < maxSteps && step()) ++executed;
  return executed;
}

}  // namespace snapfwd
