#pragma once
// The guarded-rule protocol interface executed by the Engine.
//
// Faithfulness to the state model requires *composite atomicity*: in one
// atomic step, all chosen processors execute their actions "simultaneously",
// each reading the pre-step configuration and writing only its own
// variables. We realize this with a two-phase contract:
//
//   1. stage(p, a)  - compute the effect of action `a` at processor `p`,
//                     reading ONLY current observable state; record the
//                     pending writes internally; DO NOT modify observable
//                     state. Called once per chosen processor per step.
//   2. commit()     - apply every pending write recorded since the last
//                     commit, and report the WRITE SET: the id of every
//                     processor whose observable variables were written.
//                     Called once per step per protocol that staged
//                     anything.
//
// Because a processor writes only its own variables and at most one action
// per processor is chosen per step, staged writes never conflict.
//
// The write set powers the engine's incremental scheduler: in the paper's
// model (Section 2.1) a guard of processor p reads only the variables of
// its closed neighborhood N_p u {p}, so after a step only processors within
// distance 1 of a written processor can change enabled status. commit()
// reporting its writes lets the engine re-evaluate exactly those guards. A
// protocol whose guards read state beyond the closed neighborhood of the
// written processors (e.g. a global counter) must report every affected
// processor as written - over-reporting is always safe, under-reporting
// silently stales the enabled cache.
//
// Out-of-band mutation: any entry point that changes observable state
// OUTSIDE the stage/commit cycle (application sends, fault injection,
// snapshot restoration, ...) must call notifyExternalMutation(), which
// invalidates the whole enabled cache of the attached engine. This is the
// coarse hammer matching "the initial configuration is arbitrary": such
// mutations are rare and non-local, so a full re-sweep is the right cost.

// Audit mode (core/access_tracker.hpp) converts the contract above from
// trust into a checked property: protocols route observable-variable
// accesses through CheckedStore views bound to accessTrackerSlot(), and an
// engine in audit mode attaches an AccessTracker that cross-checks guard
// locality, stage purity, write-set honesty, and composite atomicity every
// step. Without -DSNAPFWD_AUDIT=ON all of this compiles away.
//
// Interface split (migration note). The read side of the old monolithic
// Protocol interface - enumerateEnabled / anyEnabled / accessRadius, plus
// the optional guardKernels() batch hook - now lives in the GuardSource
// base class, so the virtual reference path and the devirtualized kernel
// path (core/soa_state.hpp) implement one read-side contract. Protocol
// derives from GuardSource and adds the write side (stage/commit) and the
// engine attachment points; existing protocol subclasses compile
// unchanged, and callers that only evaluate guards (checkers, the
// explorer's enabled probes) can accept a GuardSource& instead of a
// Protocol&. The historical anyEnabled() thread_local scratch was removed
// at the same time: the default now uses a plain local vector (re-entrant,
// no per-thread capacity held for the process lifetime); protocols on a
// hot path override it with an early-exit guard walk anyway.

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "core/access_tracker.hpp"
#include "core/action.hpp"

namespace snapfwd {

struct GuardKernelSet;  // core/soa_state.hpp

/// The read-side contract of a protocol layer: pure guard evaluation on
/// the current configuration. See the header comment for the locality
/// rules guards must obey.
class GuardSource {
 public:
  virtual ~GuardSource() = default;

  /// Appends every enabled action of processor `p` (guards evaluated on the
  /// current configuration) to `out`. Must be const and thread-safe for
  /// concurrent calls with distinct or equal `p` (pure read). Guards may
  /// read only the variables of p's closed neighborhood (see header note).
  virtual void enumerateEnabled(NodeId p, std::vector<Action>& out) const = 0;

  /// True iff `p` has at least one enabled action. Override when a cheaper
  /// check than full enumeration exists. The default enumerates into a
  /// local vector: one small allocation per call, but re-entrant and free
  /// of the old thread_local's process-lifetime scratch.
  [[nodiscard]] virtual bool anyEnabled(NodeId p) const {
    std::vector<Action> scratch;
    enumerateEnabled(p, scratch);
    return !scratch.empty();
  }

  /// Maximum distance (in hops) any of this protocol's guards or stages
  /// reads from the evaluated processor. 1 is the model's closed
  /// neighborhood N_p u {p} and the default. The engine widens incremental
  /// dirty sets to this radius, and audit mode verifies every recorded
  /// read stays inside the declared ball - so a protocol that legitimately
  /// reads further (e.g. a distance-2 dependency) declares it here instead
  /// of over-reporting writes.
  [[nodiscard]] virtual unsigned accessRadius() const { return 1; }

  /// Optional batch guard kernels over a struct-of-arrays projection of
  /// the observable state (core/soa_state.hpp). nullptr (the default)
  /// means "virtual path only"; a non-null set must produce exactly the
  /// actions enumerateEnabled produces, in the same order. The returned
  /// pointer must stay valid for the lifetime of the object.
  [[nodiscard]] virtual const GuardKernelSet* guardKernels() const {
    return nullptr;
  }
};

class Protocol : public GuardSource {
 public:
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Phase 1 of the atomic step: record the writes of action `a` at `p`.
  virtual void stage(NodeId p, const Action& a) = 0;

  /// Phase 2: apply all staged writes; append the id of every processor
  /// whose observable variables were written to `written` (duplicates
  /// allowed - the engine dedupes).
  virtual void commit(std::vector<NodeId>& written) = 0;

  /// Invoked by a topology mutator (faults/topology.hpp) after it rewired
  /// the Graph this protocol was constructed over, between atomic steps.
  /// Overrides repair any per-processor state whose well-formedness depends
  /// on the adjacency lists (fairness-queue membership, buffered lastHop
  /// links, kernel CSR mirrors, ...) and MUST end by invalidating the
  /// engine cache; the default covers protocols with no such state by just
  /// calling notifyExternalMutation().
  virtual void onTopologyMutation() { notifyExternalMutation(); }

  /// Registered by the engine executing this protocol; cleared on engine
  /// destruction. Protocol implementations do not call this directly -
  /// they call notifyExternalMutation().
  void setInvalidationHook(std::function<void()> hook) {
    invalidationHook_ = std::move(hook);
  }

  /// Attached by an engine (or test harness) entering audit mode; nullptr
  /// otherwise. CheckedStore views bound to accessTrackerSlot() observe
  /// attachment changes automatically.
  void setAccessTracker(AccessTracker* tracker) { accessTracker_ = tracker; }
  [[nodiscard]] AccessTracker* accessTracker() const { return accessTracker_; }

 protected:
  /// Must be invoked by every out-of-band mutator (see header note). Cheap
  /// (sets a flag in the engine); a no-op when no engine is attached.
  void notifyExternalMutation() {
    if (invalidationHook_) invalidationHook_();
  }

  /// Stable slot for CheckedStore::configure - stores bound here follow
  /// tracker attachment/detachment without rebinding.
  [[nodiscard]] AccessTracker* const* accessTrackerSlot() const {
    return &accessTracker_;
  }

  /// Marks the staged op whose effects the commit loop is now applying
  /// (the actor for the cross-processor-write check). Call at the top of
  /// each per-op iteration inside commit(). No-op outside audit mode.
  void auditCommitOp([[maybe_unused]] NodeId actor,
                     [[maybe_unused]] std::uint16_t rule) {
#ifdef SNAPFWD_AUDIT
    if (accessTracker_ != nullptr) accessTracker_->setCommitActor(actor, rule);
#endif
  }

  /// Records an access to a scalar observable variable that does not live
  /// in a CheckedStore (e.g. PIF's root-owned pending-request counter).
  void auditRead([[maybe_unused]] NodeId owner) const {
#ifdef SNAPFWD_AUDIT
    if (accessTracker_ != nullptr) accessTracker_->noteRead(owner);
#endif
  }
  void auditWrite([[maybe_unused]] NodeId owner) const {
#ifdef SNAPFWD_AUDIT
    if (accessTracker_ != nullptr) accessTracker_->noteWrite(owner);
#endif
  }

 private:
  std::function<void()> invalidationHook_;
  AccessTracker* accessTracker_ = nullptr;
};

}  // namespace snapfwd
