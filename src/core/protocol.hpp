#pragma once
// The guarded-rule protocol interface executed by the Engine.
//
// Faithfulness to the state model requires *composite atomicity*: in one
// atomic step, all chosen processors execute their actions "simultaneously",
// each reading the pre-step configuration and writing only its own
// variables. We realize this with a two-phase contract:
//
//   1. stage(p, a)  - compute the effect of action `a` at processor `p`,
//                     reading ONLY current observable state; record the
//                     pending writes internally; DO NOT modify observable
//                     state. Called once per chosen processor per step.
//   2. commit()     - apply every pending write recorded since the last
//                     commit. Called once per step per protocol that staged
//                     anything.
//
// Because a processor writes only its own variables and at most one action
// per processor is chosen per step, staged writes never conflict.

#include <string_view>
#include <vector>

#include "core/action.hpp"

namespace snapfwd {

class Protocol {
 public:
  virtual ~Protocol() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Appends every enabled action of processor `p` (guards evaluated on the
  /// current configuration) to `out`. Must be const and thread-safe for
  /// concurrent calls with distinct or equal `p` (pure read).
  virtual void enumerateEnabled(NodeId p, std::vector<Action>& out) const = 0;

  /// True iff `p` has at least one enabled action. Override when a cheaper
  /// check than full enumeration exists.
  [[nodiscard]] virtual bool anyEnabled(NodeId p) const {
    thread_local std::vector<Action> scratch;
    scratch.clear();
    enumerateEnabled(p, scratch);
    return !scratch.empty();
  }

  /// Phase 1 of the atomic step: record the writes of action `a` at `p`.
  virtual void stage(NodeId p, const Action& a) = 0;

  /// Phase 2: apply all staged writes.
  virtual void commit() = 0;
};

}  // namespace snapfwd
