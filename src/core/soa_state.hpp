#pragma once
// Struct-of-arrays guard-kernel substrate.
//
// The paper's locality guarantee (Section 2.1: a guard of p reads only the
// closed neighborhood N_p u {p}) makes guard evaluation embarrassingly
// batchable: given the incremental scheduler's dirty id list, a protocol
// can evaluate every guard in one tight loop over packed per-variable
// arrays instead of one virtual enumerateEnabled call per processor. This
// header defines the contract between the engine and such kernels:
//
//   KernelOut        - the action sink a kernel fills: one group per
//                      evaluated processor (possibly empty), groups in
//                      input order, actions appended flat.
//   GuardKernelSet   - plain function pointers (no virtual dispatch in the
//                      hot loop) for batch evaluation plus the two mirror
//                      maintenance hooks. A protocol that opts in returns
//                      one from GuardSource::guardKernels(); the kernels
//                      evaluate against a packed SoA *projection* of the
//                      guard-visible state which the protocol keeps in
//                      sync via syncWritten (per-step commit write sets)
//                      and syncAll (after any out-of-band mutation).
//   KernelBatchEvaluator - the engine-side driver: layer-major evaluation
//                      of a processor id list across a priority-ordered
//                      layer stack, with a virtual enumerateEnabled
//                      fallback for layers without kernels. Reproduces the
//                      virtual path's first-enabled-layer-wins semantics
//                      and action order exactly, so kernel and virtual
//                      execution are byte-identical (tests/test_exec_modes
//                      pins this).
//
// The authoritative state always stays inside the protocols; the SoA
// arrays are a derived read-only view used exclusively by guard kernels.
// Audit mode bypasses kernels entirely (the tracker validates the
// reference path), so kernels never run with an AccessTracker attached.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/action.hpp"

namespace snapfwd {

class GuardSource;

/// Per-batch action sink. A kernel (or the virtual fallback) must call
/// beginProcessor(ids[i]) once per input id, in input order, then push
/// that processor's enabled actions; an empty group means "disabled".
class KernelOut {
 public:
  void clear() {
    actions_.clear();
    starts_.clear();
  }

  void beginProcessor(NodeId /*p*/) {
    starts_.push_back(static_cast<std::uint32_t>(actions_.size()));
  }

  void push(const Action& a) { actions_.push_back(a); }

  /// Direct append access for the virtual fallback path
  /// (enumerateEnabled(p, out.actions()) between beginProcessor calls).
  [[nodiscard]] std::vector<Action>& actions() { return actions_; }

  [[nodiscard]] std::size_t groupCount() const { return starts_.size(); }
  /// [begin, end) indices of group i within actions().
  [[nodiscard]] std::uint32_t groupBegin(std::size_t i) const {
    return starts_[i];
  }
  [[nodiscard]] std::uint32_t groupEnd(std::size_t i) const {
    return i + 1 < starts_.size() ? starts_[i + 1]
                                  : static_cast<std::uint32_t>(actions_.size());
  }
  [[nodiscard]] const Action* actionData() const { return actions_.data(); }

 private:
  std::vector<Action> actions_;
  std::vector<std::uint32_t> starts_;
};

/// One protocol layer's batch kernels. Plain function pointers + self so
/// the engine's hot loop performs no virtual dispatch. syncWritten /
/// syncAll may be null when the kernel reads the authoritative state
/// directly and needs no mirror upkeep (e.g. the routing layer).
struct GuardKernelSet {
  void* self = nullptr;

  /// Batch-evaluates guards for `count` processors `ids` (engine passes
  /// them sorted ascending). Must produce, per id, exactly the actions
  /// GuardSource::enumerateEnabled produces, in the same order.
  void (*evaluate)(const void* self, const NodeId* ids, std::size_t count,
                   KernelOut& out) = nullptr;

  /// Refreshes the SoA mirror rows of the listed processors (duplicates
  /// allowed) from the authoritative state. The engine calls this after
  /// every committed step with the union of the layers' write sets - the
  /// union, not the layer's own set, because one layer's guards may read
  /// another layer's variables (SSMFP reads the routing tables).
  void (*syncWritten)(void* self, const NodeId* ids, std::size_t count) = nullptr;

  /// Rebuilds the whole mirror. The engine calls this before the first
  /// kernel evaluation and after any enabled-cache invalidation
  /// (out-of-band mutation, snapshot restore, guard-mutation hooks).
  void (*syncAll)(void* self) = nullptr;
};

/// Engine-side layer-major batch driver (see file comment). Scratch is
/// reused across calls; not thread-safe (the engine runs kernel batches
/// serially - determinism comes first, and batches are branch-light).
class KernelBatchEvaluator {
 public:
  /// Evaluates `count` ids against `layerCount` priority-ordered layers.
  /// kernels[l] may be null: that layer falls back to virtual
  /// enumerateEnabled, so mixed stacks (one layer with kernels, one
  /// without) work and whole test suites can run under SNAPFWD_EXEC=kernel
  /// regardless of which layers opted in.
  void run(const GuardSource* const* layers, const GuardKernelSet* const* kernels,
           std::size_t layerCount, const NodeId* ids, std::size_t count);

  // Results, indexed by input position i (valid until the next run()):
  [[nodiscard]] bool enabled(std::size_t i) const { return begin_[i] != end_[i]; }
  [[nodiscard]] std::uint16_t layer(std::size_t i) const { return layer_[i]; }
  [[nodiscard]] const Action* actionsBegin(std::size_t i) const {
    return outs_[layer_[i]].actionData() + begin_[i];
  }
  [[nodiscard]] const Action* actionsEnd(std::size_t i) const {
    return outs_[layer_[i]].actionData() + end_[i];
  }

 private:
  // One sink per layer, kept alive until the next run() so the result
  // spans can point straight into them - no staging copy of the action
  // stream (which would dominate on action-dense sweeps like routing
  // convergence, where nearly every processor is enabled).
  std::vector<KernelOut> outs_;
  // Ping-pong undecided lists: ids with no action from any layer so far,
  // paired with their original input positions.
  std::vector<NodeId> ids_[2];
  std::vector<std::uint32_t> pos_[2];
  // Per-input-position action spans (into outs_[layer_[i]]) + winning layer.
  std::vector<std::uint32_t> begin_;
  std::vector<std::uint32_t> end_;
  std::vector<std::uint16_t> layer_;
};

}  // namespace snapfwd
