#include "core/soa_state.hpp"

#include "core/protocol.hpp"

namespace snapfwd {

void KernelBatchEvaluator::run(const GuardSource* const* layers,
                               const GuardKernelSet* const* kernels,
                               std::size_t layerCount, const NodeId* ids,
                               std::size_t count) {
  begin_.resize(count);
  end_.resize(count);
  layer_.resize(count);
  if (outs_.size() < layerCount) outs_.resize(layerCount);

  auto evalLayer = [&](std::size_t l, const NodeId* lids, std::size_t lcount,
                       KernelOut& out) {
    out.clear();
    if (kernels[l] != nullptr && kernels[l]->evaluate != nullptr) {
      kernels[l]->evaluate(kernels[l]->self, lids, lcount, out);
    } else {
      // Virtual fallback: same grouping contract as a kernel.
      for (std::size_t i = 0; i < lcount; ++i) {
        out.beginProcessor(lids[i]);
        layers[l]->enumerateEnabled(lids[i], out.actions());
      }
    }
  };

  // Layer 0 sees the whole input list, so its group order IS input order:
  // record every span directly (empty group = undecided-so-far, which
  // enabled() reads as disabled). With a single layer - the common stack -
  // the ping-pong undecided machinery below never runs at all.
  KernelOut& first = outs_[0];
  evalLayer(0, ids, count, first);
  std::vector<NodeId>* cur = &ids_[0];
  std::vector<std::uint32_t>* curPos = &pos_[0];
  cur->clear();
  curPos->clear();
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t b = first.groupBegin(i);
    const std::uint32_t e = first.groupEnd(i);
    layer_[i] = 0;
    begin_[i] = b;
    end_[i] = e;
    if (b == e && layerCount > 1) {
      cur->push_back(ids[i]);
      curPos->push_back(static_cast<std::uint32_t>(i));
    }
  }

  // Undecided = no layer has produced an action yet. Layer l+1 only sees
  // the ids layer l left undecided, which is exactly the virtual path's
  // first-enabled-layer-wins priority rule.
  std::vector<NodeId>* next = &ids_[1];
  std::vector<std::uint32_t>* nextPos = &pos_[1];
  for (std::size_t l = 1; l < layerCount && !cur->empty(); ++l) {
    KernelOut& out = outs_[l];
    evalLayer(l, cur->data(), cur->size(), out);
    next->clear();
    nextPos->clear();
    for (std::size_t i = 0; i < cur->size(); ++i) {
      const std::uint32_t b = out.groupBegin(i);
      const std::uint32_t e = out.groupEnd(i);
      if (b != e) {
        // Decided: record the span in place - the sink stays untouched
        // until the next run(), so no copy is needed.
        const std::uint32_t at = (*curPos)[i];
        layer_[at] = static_cast<std::uint16_t>(l);
        begin_[at] = b;
        end_[at] = e;
      } else {
        next->push_back((*cur)[i]);
        nextPos->push_back((*curPos)[i]);
      }
    }
    std::swap(cur, next);
    std::swap(curPos, nextPos);
  }
  // Ids still undecided after the last layer are disabled: their spans
  // stayed empty, which enabled() reports as false.
}

}  // namespace snapfwd
