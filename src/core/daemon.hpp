#pragma once
// Daemons (schedulers) of the state model.
//
// A daemon receives, each step, the set of enabled processors together with
// their enabled actions (already filtered by layer priority: for each
// processor only the actions of its highest-priority enabled layer are
// shown, implementing "A has priority over SSMFP"). It must select a
// non-empty subset of processors and, for each, exactly one action
// (distributed daemon, paper Section 2.1).
//
// The zoo below covers the fairness spectrum the paper discusses:
//   - SynchronousDaemon       : every enabled processor moves each step.
//   - CentralRoundRobinDaemon : one processor per step, id-cyclic (weakly fair).
//   - CentralRandomDaemon     : one uniformly random processor per step
//                               (strongly fair with probability 1).
//   - DistributedRandomDaemon : each enabled processor moves with probability
//                               p, at least one guaranteed.
//   - WeaklyFairDaemon        : serves the longest-continuously-enabled
//                               processors first (deterministic weak fairness).
//   - AdversarialDaemon       : starvation-seeking central daemon (keeps
//                               re-serving the most recently served enabled
//                               processor; unfair).
//   - ScriptedDaemon          : replays an explicit (processor, rule) script;
//                               used to reproduce the paper's Figure 3.

#include <cstdint>
#include <deque>
#include <optional>
#include <string_view>
#include <vector>

#include "core/action.hpp"
#include "util/rng.hpp"

namespace snapfwd {

/// One enabled processor as shown to the daemon.
struct EnabledProcessor {
  NodeId p = kNoNode;
  std::uint16_t layer = 0;  // index into the engine's priority-ordered layers
  std::vector<Action> actions;
};

/// A daemon's selection: entry index into the enabled vector plus the index
/// of the chosen action within that entry.
struct Choice {
  std::size_t entryIndex = 0;
  std::size_t actionIndex = 0;
};

class Daemon {
 public:
  virtual ~Daemon() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Selects a non-empty set of choices, at most one per processor.
  /// `step` is the index of the step about to execute. An empty `out`
  /// halts the engine (only ScriptedDaemon uses this, at end of script).
  virtual void choose(std::uint64_t step,
                      const std::vector<EnabledProcessor>& enabled,
                      std::vector<Choice>& out) = 0;
};

class SynchronousDaemon final : public Daemon {
 public:
  [[nodiscard]] std::string_view name() const override { return "synchronous"; }
  void choose(std::uint64_t step, const std::vector<EnabledProcessor>& enabled,
              std::vector<Choice>& out) override;
};

class CentralRoundRobinDaemon final : public Daemon {
 public:
  [[nodiscard]] std::string_view name() const override { return "central-rr"; }
  void choose(std::uint64_t step, const std::vector<EnabledProcessor>& enabled,
              std::vector<Choice>& out) override;

 private:
  NodeId cursor_ = 0;
};

class CentralRandomDaemon final : public Daemon {
 public:
  explicit CentralRandomDaemon(Rng rng) : rng_(rng) {}
  [[nodiscard]] std::string_view name() const override { return "central-random"; }
  void choose(std::uint64_t step, const std::vector<EnabledProcessor>& enabled,
              std::vector<Choice>& out) override;

 private:
  Rng rng_;
};

class DistributedRandomDaemon final : public Daemon {
 public:
  DistributedRandomDaemon(Rng rng, double selectProbability)
      : rng_(rng), probability_(selectProbability) {}
  [[nodiscard]] std::string_view name() const override { return "distributed-random"; }
  void choose(std::uint64_t step, const std::vector<EnabledProcessor>& enabled,
              std::vector<Choice>& out) override;

 private:
  Rng rng_;
  double probability_;
};

class WeaklyFairDaemon final : public Daemon {
 public:
  [[nodiscard]] std::string_view name() const override { return "weakly-fair"; }
  void choose(std::uint64_t step, const std::vector<EnabledProcessor>& enabled,
              std::vector<Choice>& out) override;

 private:
  // lastServed_[p] = step at which p last executed (0 if never).
  std::vector<std::uint64_t> lastServed_;
};

class AdversarialDaemon final : public Daemon {
 public:
  explicit AdversarialDaemon(Rng rng) : rng_(rng) {}
  [[nodiscard]] std::string_view name() const override { return "adversarial"; }
  void choose(std::uint64_t step, const std::vector<EnabledProcessor>& enabled,
              std::vector<Choice>& out) override;

 private:
  Rng rng_;
  std::optional<NodeId> favourite_;
};

class ScriptedDaemon final : public Daemon {
 public:
  /// One scripted selection: processor `p` must have an enabled action with
  /// rule id `rule` (and destination `dest` when dest != kNoNode).
  struct Selection {
    NodeId p = kNoNode;
    std::uint16_t rule = 0;
    NodeId dest = kNoNode;
  };
  /// The script: selections to execute at consecutive steps (one entry may
  /// select several processors for a synchronous scripted step).
  explicit ScriptedDaemon(std::vector<std::vector<Selection>> script)
      : script_(std::move(script)) {}

  [[nodiscard]] std::string_view name() const override { return "scripted"; }
  void choose(std::uint64_t step, const std::vector<EnabledProcessor>& enabled,
              std::vector<Choice>& out) override;

  /// True iff every scripted selection so far matched an enabled action.
  [[nodiscard]] bool allMatched() const { return allMatched_; }
  [[nodiscard]] std::size_t position() const { return position_; }

 private:
  std::vector<std::vector<Selection>> script_;
  std::size_t position_ = 0;
  bool allMatched_ = true;
};

}  // namespace snapfwd
