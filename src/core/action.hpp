#pragma once
// An enabled guarded action, as presented to the daemon.
//
// In the state model (paper Section 2.1) a protocol is a set of rules
// <label> :: <guard> -> <statement>. A protocol instance reports, per
// processor, which (rule, operands) pairs currently have a true guard; the
// daemon selects among them. `rule` is protocol-defined (e.g. SSMFP's R1..R6),
// `dest` identifies the per-destination protocol copy the rule belongs to
// (kNoNode when the protocol is not destination-indexed) and `aux` carries a
// rule operand such as the sender selected by choice_p(d).

#include <cstdint>

#include "graph/graph.hpp"

namespace snapfwd {

struct Action {
  std::uint16_t rule = 0;
  NodeId dest = kNoNode;
  std::uint64_t aux = 0;

  friend bool operator==(const Action&, const Action&) = default;
};

}  // namespace snapfwd
