#pragma once
// Access auditing: the mechanically-checked form of the state model's
// locality contract (Section 2.1 of the paper, and the write-set contract
// in core/protocol.hpp).
//
// The model the proofs live in makes three structural assumptions:
//   (a) a guard of processor p reads only the variables of p's closed
//       neighborhood N[p] (generalized here to a declared accessRadius),
//   (b) an action writes only p's own variables (composite atomicity),
//   (c) commit() reports a write set covering every processor actually
//       written (PR 2's incremental scheduler re-evaluates exactly the
//       dirty neighborhood of that set - under-reporting silently stales
//       the enabled cache).
// Until now (a)-(c) were enforced by comments. In audit mode every
// protocol routes observable-variable reads/writes through CheckedStore
// views that record (phase, actor, owner) into an AccessTracker; the
// engine brackets guard evaluation, staging and commits, and cross-checks
// the recorded access sets against the contract each step.
//
// Audit capability is compile-time (-DSNAPFWD_AUDIT=ON -> the SNAPFWD_AUDIT
// macro): without it CheckedStore::read/write compile down to plain vector
// indexing, so default builds pay nothing and produce byte-identical
// results. Audit *mode* is then per-engine (Engine::setAuditMode) or
// process-wide (SNAPFWD_AUDIT environment variable).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "util/names.hpp"

namespace snapfwd {

/// True iff this binary was compiled with -DSNAPFWD_AUDIT=ON and can
/// actually record accesses. Engine::setAuditMode(true) throws otherwise.
inline constexpr bool kAuditCapable =
#ifdef SNAPFWD_AUDIT
    true;
#else
    false;
#endif

enum class AccessViolationKind : std::uint8_t {
  kNonLocalGuardRead,    // guard read outside the declared access radius
  kNonLocalStageRead,    // stage read outside the declared access radius
  kGuardWrite,           // guard evaluation mutated observable state
  kStageWrite,           // stage() mutated observable state (impure stage)
  kCrossProcessorWrite,  // commit wrote a variable the actor does not own
  kUnderReportedWrite,   // commit's reported write set missed a write
};

template <>
struct EnumNames<AccessViolationKind> {
  static constexpr auto entries = std::to_array<NamedEnum<AccessViolationKind>>({
      {AccessViolationKind::kNonLocalGuardRead, "non-local-guard-read"},
      {AccessViolationKind::kNonLocalStageRead, "non-local-stage-read"},
      {AccessViolationKind::kGuardWrite, "guard-write"},
      {AccessViolationKind::kStageWrite, "stage-write"},
      {AccessViolationKind::kCrossProcessorWrite, "cross-processor-write"},
      {AccessViolationKind::kUnderReportedWrite, "under-reported-write"},
  });
};

/// One detected contract breach: which rule of which protocol, acting at
/// which processor, touched whose variable, and in which step.
struct AccessViolation {
  AccessViolationKind kind = AccessViolationKind::kNonLocalGuardRead;
  std::string protocol;
  std::uint16_t rule = 0;       // 0 in guard phase (no rule chosen yet)
  NodeId actor = kNoNode;       // processor whose guard/action was running
  NodeId variableOwner = kNoNode;  // processor owning the touched variable
  unsigned declaredRadius = 1;
  std::uint64_t step = 0;

  /// "ssmfp: guard of processor 3 read variable of processor 7 ..." -
  /// the hard-failure diagnostic named by the contract.
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const AccessViolation&, const AccessViolation&) = default;
};

/// Thrown by the engine (default policy) on the first violation of a step.
class AccessAuditError : public std::runtime_error {
 public:
  explicit AccessAuditError(AccessViolation violation)
      : std::runtime_error(violation.describe()), violation_(std::move(violation)) {}

  [[nodiscard]] const AccessViolation& violation() const noexcept {
    return violation_;
  }

 private:
  AccessViolation violation_;
};

/// Records observable-variable accesses during the bracketed phases of an
/// atomic step and turns contract breaches into AccessViolations.
///
/// Phases mirror the engine's step anatomy:
///   guard   - enumerateEnabled(actor): reads must stay within the
///             declared radius of the actor; writes are forbidden.
///   stage   - stage(actor, a): same read locality; writes forbidden
///             (staging records pending effects internally, it must not
///             touch observable state).
///   commit  - commit(): writes recorded; each must be owned by the staged
///             actor announced via setCommitActor (composite atomicity),
///             and endCommit() checks the protocol's reported write set
///             covers every owner actually written. Reads are unchecked
///             (commit may inspect its own staged bookkeeping freely).
///   exclusive - the message-passing simulator's node round: reads AND
///             writes must both target the actor's own variables (radius
///             0; neighbor information only flows through snapshots).
///
/// Outside any phase (checkers, printers, hashers, out-of-band mutators)
/// noteRead/noteWrite are no-ops, so tooling needs no special casing.
/// Not thread-safe: audit mode forces serial guard evaluation.
class AccessTracker {
 public:
  explicit AccessTracker(const Graph& graph);

  void setStep(std::uint64_t step) { step_ = step; }

  void beginGuard(NodeId actor, unsigned radius, std::string_view protocol);
  void beginStage(NodeId actor, unsigned radius, std::uint16_t rule,
                  std::string_view protocol);
  void beginCommit(std::string_view protocol);
  void beginExclusive(NodeId actor, std::string_view protocol);
  /// Ends the guard/stage/exclusive phase.
  void endPhase();
  /// The staged op whose effects the protocol is now applying (commit
  /// phase); enables the cross-processor-write check.
  void setCommitActor(NodeId actor, std::uint16_t rule);
  /// Ends the commit phase, checking the protocol's reported write set
  /// (`reported[0..count)`) is a superset of the writes actually recorded.
  void endCommit(const NodeId* reported, std::size_t count);

  void noteRead(NodeId owner);
  void noteWrite(NodeId owner);

  [[nodiscard]] const std::vector<AccessViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool hasViolations() const { return !violations_.empty(); }
  void clearViolations() { violations_.clear(); }

 private:
  enum class Phase : std::uint8_t { kIdle, kGuard, kStage, kCommit, kExclusive };

  [[nodiscard]] bool withinRadius(NodeId owner) const;
  void addViolation(AccessViolationKind kind, NodeId owner);

  const Graph& graph_;
  Phase phase_ = Phase::kIdle;
  NodeId actor_ = kNoNode;
  unsigned radius_ = 1;
  std::uint16_t rule_ = 0;
  std::string_view protocol_;
  std::uint64_t step_ = 0;

  std::vector<NodeId> commitWrites_;  // owners written during this commit
  std::vector<AccessViolation> violations_;
};

/// The typed checked-state accessor view: a flat per-processor variable
/// store whose read()/write() record the owning processor with the bound
/// AccessTracker. The owner of index i is i / rowSize (every protocol here
/// lays out state as one row of rowSize variables per processor).
///
/// Binding goes through a pointer-to-slot (AccessTracker* const*) so the
/// store follows the protocol's tracker attachment/detachment without
/// rebinding. Without SNAPFWD_AUDIT the recording fields and calls are
/// compiled out entirely.
template <typename T>
class CheckedStore {
 public:
  /// `slot` outlives the store; rowSize >= 1.
  void configure([[maybe_unused]] class AccessTracker* const* slot,
                 [[maybe_unused]] std::size_t rowSize) {
#ifdef SNAPFWD_AUDIT
    slot_ = slot;
    rowSize_ = rowSize == 0 ? 1 : rowSize;
#endif
  }

  void resize(std::size_t n) { data_.resize(n); }
  void assign(std::size_t n, const T& value) { data_.assign(n, value); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] const T& read(std::size_t idx) const {
#ifdef SNAPFWD_AUDIT
    note(idx, /*isWrite=*/false);
#endif
    return data_[idx];
  }

  [[nodiscard]] T& write(std::size_t idx) {
#ifdef SNAPFWD_AUDIT
    note(idx, /*isWrite=*/true);
#endif
    return data_[idx];
  }

  /// Unaudited access for out-of-phase tooling (hashers, printers, bulk
  /// iteration); never use inside guards, stage() or commit().
  [[nodiscard]] const std::vector<T>& raw() const { return data_; }
  [[nodiscard]] std::vector<T>& rawMutable() { return data_; }

 private:
#ifdef SNAPFWD_AUDIT
  void note(std::size_t idx, bool isWrite) const {
    if (slot_ == nullptr || *slot_ == nullptr) return;
    const NodeId owner = static_cast<NodeId>(idx / rowSize_);
    if (isWrite) {
      (*slot_)->noteWrite(owner);
    } else {
      (*slot_)->noteRead(owner);
    }
  }
  AccessTracker* const* slot_ = nullptr;
  std::size_t rowSize_ = 1;
#endif
  std::vector<T> data_;
};

}  // namespace snapfwd
