#include "core/daemon.hpp"

#include <algorithm>

namespace snapfwd {

void SynchronousDaemon::choose(std::uint64_t /*step*/,
                               const std::vector<EnabledProcessor>& enabled,
                               std::vector<Choice>& out) {
  out.reserve(enabled.size());
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    out.push_back({i, 0});
  }
}

void CentralRoundRobinDaemon::choose(std::uint64_t /*step*/,
                                     const std::vector<EnabledProcessor>& enabled,
                                     std::vector<Choice>& out) {
  if (enabled.empty()) return;
  // Entries arrive sorted by processor id; pick the first with p >= cursor_,
  // wrapping around, then advance the cursor past it.
  std::size_t chosen = 0;
  bool found = false;
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    if (enabled[i].p >= cursor_) {
      chosen = i;
      found = true;
      break;
    }
  }
  if (!found) chosen = 0;  // wrap
  out.push_back({chosen, 0});
  cursor_ = enabled[chosen].p + 1;
}

void CentralRandomDaemon::choose(std::uint64_t /*step*/,
                                 const std::vector<EnabledProcessor>& enabled,
                                 std::vector<Choice>& out) {
  if (enabled.empty()) return;
  const std::size_t entry = static_cast<std::size_t>(rng_.below(enabled.size()));
  const std::size_t action =
      static_cast<std::size_t>(rng_.below(enabled[entry].actions.size()));
  out.push_back({entry, action});
}

void DistributedRandomDaemon::choose(std::uint64_t /*step*/,
                                     const std::vector<EnabledProcessor>& enabled,
                                     std::vector<Choice>& out) {
  if (enabled.empty()) return;
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    if (rng_.chance(probability_)) {
      const std::size_t action =
          static_cast<std::size_t>(rng_.below(enabled[i].actions.size()));
      out.push_back({i, action});
    }
  }
  if (out.empty()) {
    // The distributed daemon must select at least one enabled processor.
    const std::size_t entry = static_cast<std::size_t>(rng_.below(enabled.size()));
    const std::size_t action =
        static_cast<std::size_t>(rng_.below(enabled[entry].actions.size()));
    out.push_back({entry, action});
  }
}

void WeaklyFairDaemon::choose(std::uint64_t step,
                              const std::vector<EnabledProcessor>& enabled,
                              std::vector<Choice>& out) {
  if (enabled.empty()) return;
  // Serve the enabled processor that has waited longest since last service.
  // Deterministic and weakly fair: a continuously enabled processor's wait
  // strictly grows until it becomes the minimum and is served.
  std::size_t best = 0;
  std::uint64_t bestServed = ~std::uint64_t{0};
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    const NodeId p = enabled[i].p;
    if (p >= lastServed_.size()) lastServed_.resize(p + 1, 0);
    if (lastServed_[p] < bestServed) {
      bestServed = lastServed_[p];
      best = i;
    }
  }
  out.push_back({best, 0});
  lastServed_[enabled[best].p] = step + 1;
}

void AdversarialDaemon::choose(std::uint64_t /*step*/,
                               const std::vector<EnabledProcessor>& enabled,
                               std::vector<Choice>& out) {
  if (enabled.empty()) return;
  // Unfair central daemon: keep serving the same processor for as long as it
  // stays enabled (maximally starving everybody else), switching to a random
  // enabled processor only when forced to. Picks the last enabled action to
  // diversify rule coverage.
  std::size_t chosen = enabled.size();
  if (favourite_) {
    for (std::size_t i = 0; i < enabled.size(); ++i) {
      if (enabled[i].p == *favourite_) {
        chosen = i;
        break;
      }
    }
  }
  if (chosen == enabled.size()) {
    chosen = static_cast<std::size_t>(rng_.below(enabled.size()));
    favourite_ = enabled[chosen].p;
  }
  out.push_back({chosen, enabled[chosen].actions.size() - 1});
}

void ScriptedDaemon::choose(std::uint64_t /*step*/,
                            const std::vector<EnabledProcessor>& enabled,
                            std::vector<Choice>& out) {
  if (position_ >= script_.size()) return;  // end of script: halt engine
  const auto& wanted = script_[position_++];
  for (const auto& sel : wanted) {
    bool matched = false;
    for (std::size_t i = 0; i < enabled.size() && !matched; ++i) {
      if (enabled[i].p != sel.p) continue;
      const auto& actions = enabled[i].actions;
      for (std::size_t a = 0; a < actions.size(); ++a) {
        if (actions[a].rule == sel.rule &&
            (sel.dest == kNoNode || actions[a].dest == sel.dest)) {
          out.push_back({i, a});
          matched = true;
          break;
        }
      }
    }
    if (!matched) allMatched_ = false;
  }
}

}  // namespace snapfwd
