#pragma once
// The state-model execution engine.
//
// An Engine owns the step loop of the paper's computational model
// (Section 2.1). Each atomic step:
//   (i)   every processor evaluates its guards on the current configuration
//         gamma_i (optionally in parallel - guards are pure reads);
//   (ii)  the daemon chooses a non-empty subset of enabled processors and
//         one enabled action each;
//   (iii) all chosen actions are staged against gamma_i and committed
//         together, yielding gamma_{i+1}.
//
// Layer priority: layers are given in priority order; for each processor
// only the enabled actions of its first layer with any enabled action are
// shown to the daemon. This implements the paper's assumption that the
// routing algorithm A has priority over SSMFP.
//
// Rounds are counted per the paper's definition: a round completes when
// every processor that was enabled at the round's start has either executed
// an action or been neutralized (enabled -> disabled without executing).
//
// Scan modes. The model is local: a guard of p reads only the variables of
// p's closed neighborhood, so a step that wrote processors W can only flip
// the enabled status of processors in N[W] = union of closed neighborhoods
// of W. ScanMode::kIncremental exploits this: the engine caches one enabled
// entry per processor and, between steps, re-evaluates only the dirty
// neighborhood N[W] (W reported by the layers' commit()), falling back to a
// full sweep after any out-of-band mutation (Protocol's invalidation hook)
// or explicit invalidateEnabledCache(). ScanMode::kFull is the original
// evaluate-everything sweep, kept for differential testing. Both modes
// produce bit-identical enabled sets in the same (processor-id) order, so
// daemon choices, traces and experiment results are mode-independent; only
// the ScanStats accounting differs.
//
// Exec modes. Orthogonally to *which* processors a scan evaluates, ExecMode
// selects *how* a processor's guards are evaluated: kVirtual calls the
// layers' enumerateEnabled one processor at a time (the authoritative
// reference path), kKernel batch-evaluates the whole id list through the
// layers' GuardKernelSet over packed SoA state (core/soa_state.hpp), with
// a per-layer virtual fallback for layers without kernels. Kernel batches
// run serially (the thread pool is ignored for guard evaluation in kernel
// mode) and audit mode always forces the virtual path - the access
// tracker validates the reference implementation, and kernels read a
// derived mirror that bypasses the CheckedStore recording. Both exec modes
// produce byte-identical enabled sets, traces and results; only speed (and
// nothing in ScanStats) differs.
//
// Configuration: construction-time knobs (scan mode, exec mode, audit)
// travel in one EngineOptions struct; unset fields resolve through the
// process-wide defaults (EngineOptions::setProcessDefaults) and then the
// SNAPFWD_SCAN_MODE / SNAPFWD_EXEC / SNAPFWD_AUDIT environment variables
// (parsed in util/env.hpp) before the built-in defaults.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/access_tracker.hpp"
#include "core/daemon.hpp"
#include "core/protocol.hpp"
#include "core/soa_state.hpp"
#include "graph/graph.hpp"
#include "util/names.hpp"
#include "util/thread_pool.hpp"

namespace snapfwd {

/// How buildEnabled() walks the configuration (see file comment).
enum class ScanMode : std::uint8_t {
  kFull,
  kIncremental,
};

template <>
struct EnumNames<ScanMode> {
  static constexpr auto entries = std::to_array<NamedEnum<ScanMode>>({
      {ScanMode::kFull, "full"},
      {ScanMode::kIncremental, "incremental"},
  });
};

/// How a scan evaluates guards (see file comment).
enum class ExecMode : std::uint8_t {
  kVirtual,
  kKernel,
};

template <>
struct EnumNames<ExecMode> {
  static constexpr auto entries = std::to_array<NamedEnum<ExecMode>>({
      {ExecMode::kVirtual, "virtual"},
      {ExecMode::kKernel, "kernel"},
  });
};

/// Construction-time engine configuration. Unset (nullopt) fields resolve,
/// in order, through: the process-wide defaults installed with
/// setProcessDefaults(), the environment (SNAPFWD_SCAN_MODE / SNAPFWD_EXEC
/// / SNAPFWD_AUDIT, util/env.hpp), then the built-in defaults
/// (incremental, virtual, audit off). `audit` resolves to false on a
/// binary compiled without -DSNAPFWD_AUDIT=ON whatever was requested, so
/// whole suites can run with SNAPFWD_AUDIT=1 regardless of build flavor;
/// use Engine::setAuditMode(true) to get a hard error instead.
///
/// This struct replaced the former knob surface of static
/// Engine::setDefaultScanMode / setDefaultAuditMode pairs plus scattered
/// getenv calls; those shims are gone - this is the only knob surface.
struct EngineOptions {
  std::optional<ScanMode> scanMode{};
  std::optional<ExecMode> execMode{};
  std::optional<bool> audit{};

  [[nodiscard]] ScanMode resolvedScanMode() const;
  [[nodiscard]] ExecMode resolvedExecMode() const;
  [[nodiscard]] bool resolvedAudit() const;

  /// Installs process-wide defaults consulted by resolution (nullopt
  /// fields clear the corresponding default). Thread-safe.
  static void setProcessDefaults(const EngineOptions& defaults);
  /// The currently installed process-wide defaults.
  [[nodiscard]] static EngineOptions processDefaults();
};

/// RAII scope for EngineOptions::setProcessDefaults: installs `defaults`
/// and restores the previous process defaults on destruction. The standard
/// way for tests, benches and the CLI to force a mode for every engine
/// built inside a region.
class ScopedEngineDefaults {
 public:
  explicit ScopedEngineDefaults(const EngineOptions& defaults)
      : previous_(EngineOptions::processDefaults()) {
    EngineOptions::setProcessDefaults(defaults);
  }
  ~ScopedEngineDefaults() { EngineOptions::setProcessDefaults(previous_); }

  ScopedEngineDefaults(const ScopedEngineDefaults&) = delete;
  ScopedEngineDefaults& operator=(const ScopedEngineDefaults&) = delete;

 private:
  EngineOptions previous_;
};

/// Scheduler accounting: how much guard-evaluation work the scan strategy
/// performed vs. avoided. Describes how a result was computed, never what
/// it is - results are identical across modes.
struct ScanStats {
  std::uint64_t fullScans = 0;         // whole-configuration sweeps
  std::uint64_t incrementalScans = 0;  // dirty-neighborhood sweeps
  std::uint64_t cachedScans = 0;       // buildEnabled() answered from cache
  std::uint64_t guardEvals = 0;        // processor guard evaluations performed
  std::uint64_t guardEvalsSaved = 0;   // evaluations skipped vs. full sweeps
  std::uint64_t dirtySum = 0;          // sum of dirty-set sizes (incremental)

  /// Mean dirty-set size over incremental scans (0 when none ran).
  [[nodiscard]] double avgDirtySize() const {
    return incrementalScans == 0
               ? 0.0
               : static_cast<double>(dirtySum) / static_cast<double>(incrementalScans);
  }

  friend bool operator==(const ScanStats&, const ScanStats&) = default;
};

class Engine {
 public:
  /// `layers` in priority order (layers[0] wins). All pointers must outlive
  /// the engine. `pool` may be null (serial guard evaluation). The engine
  /// registers itself as the layers' invalidation hook; a protocol must not
  /// be driven by two live engines at once. Unset `options` fields resolve
  /// through process defaults / environment (see EngineOptions).
  Engine(const Graph& graph, std::vector<Protocol*> layers, Daemon& daemon,
         ThreadPool* pool = nullptr, EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] ScanMode scanMode() const noexcept { return scanMode_; }
  [[nodiscard]] ExecMode execMode() const noexcept { return execMode_; }

  /// Enables/disables per-step access auditing: attaches an AccessTracker
  /// to every layer, brackets guard/stage/commit phases around their
  /// calls, forces serial guard evaluation (the tracker is not
  /// thread-safe), and cross-checks the recorded access sets against the
  /// state-model contract each step. Throws std::logic_error when enabling
  /// on a binary compiled without -DSNAPFWD_AUDIT=ON.
  void setAuditMode(bool on);
  [[nodiscard]] bool auditMode() const noexcept { return tracker_ != nullptr; }

  /// Called once per violation instead of the default policy (throwing
  /// AccessAuditError on the first violation of the step). Used by the
  /// audit CLI to collect every diagnostic of a run.
  void setAuditViolationHandler(std::function<void(const AccessViolation&)> handler) {
    auditHandler_ = std::move(handler);
  }

  /// max over layers of Protocol::accessRadius(): the dirty-set expansion
  /// depth incremental scans use.
  [[nodiscard]] unsigned maxAccessRadius() const noexcept { return maxAccessRadius_; }

  /// Executes one atomic step. Returns false without executing anything if
  /// the configuration is terminal (no enabled processor) or the daemon
  /// declined to choose (scripted daemon at end of script).
  bool step();

  /// Runs until terminal or `maxSteps` more steps executed.
  /// Returns the number of steps executed by this call.
  std::uint64_t run(std::uint64_t maxSteps);

  /// True iff no processor has any enabled action right now.
  [[nodiscard]] bool isTerminal();

  /// Drops the per-processor enabled cache AND the current enabled set; the
  /// next buildEnabled() does a full sweep. Out-of-band mutators reach this
  /// through Protocol::notifyExternalMutation(); callers that mutate state
  /// behind the protocols' backs (none should) can invoke it directly.
  void invalidateEnabledCache();

  [[nodiscard]] std::uint64_t stepCount() const noexcept { return steps_; }
  /// Completed rounds so far.
  [[nodiscard]] std::uint64_t roundCount() const noexcept { return rounds_; }
  [[nodiscard]] std::uint64_t actionCount() const noexcept { return actions_; }
  /// Actions executed per layer index.
  [[nodiscard]] const std::vector<std::uint64_t>& actionsPerLayer() const noexcept {
    return actionsPerLayer_;
  }
  [[nodiscard]] const ScanStats& scanStats() const noexcept { return scanStats_; }

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }

  /// Invoked after each committed step; used e.g. by online workloads to
  /// submit new messages between steps (protocol entry points self-report
  /// such mutations via the invalidation hook, so no extra care is needed).
  void setPostStepHook(std::function<void(Engine&)> hook) {
    postStepHook_ = std::move(hook);
  }

  /// The enabled set computed for the imminent step (valid after a step()
  /// or isTerminal() call); exposed for tests and trace tooling.
  [[nodiscard]] const std::vector<EnabledProcessor>& lastEnabled() const noexcept {
    return enabled_;
  }

  /// One action executed by the most recent committed step.
  struct ExecutedAction {
    NodeId p = kNoNode;
    std::uint16_t layer = 0;
    Action action;
  };
  /// The actions of the most recent committed step, in commit order
  /// (valid after a successful step(); used by the execution tracer).
  [[nodiscard]] const std::vector<ExecutedAction>& lastExecuted() const noexcept {
    return executedActions_;
  }

  /// The union of the layers' commit() write sets of the most recent
  /// committed step (may contain duplicates across layers). This is the
  /// undo log the explorer's fork-from-parent delta stepping rewinds: per
  /// the state-model contract every variable a step mutated belongs to a
  /// processor listed here. Valid after a successful step(), until the
  /// next one.
  [[nodiscard]] const std::vector<NodeId>& lastStepWrites() const noexcept {
    return writtenScratch_;
  }

 private:
  /// Refreshes enabled_ for the current configuration. No-op when it is
  /// already fresh (fixes the historical isTerminal()-then-step() double
  /// sweep); otherwise full or dirty-neighborhood scan per mode/validity.
  void buildEnabled();
  void fullScan();
  void incrementalScan();
  /// Evaluates p's layers into `entry`; true iff any action is enabled.
  bool evaluateProcessor(NodeId p, EnabledProcessor& entry) const;
  /// True when this scan should take the kernel path: kernel mode
  /// requested, at least one layer registered kernels, and no tracker
  /// attached (audit validates the virtual reference path).
  [[nodiscard]] bool useKernels() const noexcept {
    return execMode_ == ExecMode::kKernel && haveKernels_ && tracker_ == nullptr;
  }
  /// Runs the batch evaluator over `ids`, syncing stale kernel mirrors
  /// first. Results in batch_, indexed by position in `ids`.
  void batchEvaluate(const NodeId* ids, std::size_t count);
  void settleRoundAccounting();
  /// Dispatches collected tracker violations to the handler, or throws
  /// AccessAuditError on the first one. No-op outside audit mode.
  void flushAuditViolations();

  const Graph& graph_;
  std::vector<Protocol*> layers_;
  Daemon& daemon_;
  ThreadPool* pool_;
  ScanMode scanMode_;
  ExecMode execMode_;
  unsigned maxAccessRadius_ = 1;

  // Kernel-path state. guardSources_/kernels_ are per-layer views of
  // layers_ (kernels_[l] null when layer l has no GuardKernelSet);
  // mirrorsDirty_ means the kernels' SoA mirrors may lag the authoritative
  // state and must be syncAll'd before the next batch evaluation.
  std::vector<const GuardSource*> guardSources_;
  std::vector<const GuardKernelSet*> kernels_;
  bool haveKernels_ = false;
  bool mirrorsDirty_ = true;
  KernelBatchEvaluator batch_;
  std::vector<NodeId> allIds_;  // 0..n-1, kernel full-scan input

  // Audit mode (null when off): attached to every layer; guard evaluation
  // goes serial while active so the tracker sees one bracketed phase at a
  // time.
  std::unique_ptr<AccessTracker> tracker_;
  std::function<void(const AccessViolation&)> auditHandler_;

  std::vector<EnabledProcessor> enabled_;
  std::vector<Choice> choices_;
  std::vector<bool> executedThisStep_;
  std::vector<ExecutedAction> executedActions_;
  std::vector<bool> layerTouchedScratch_;  // per-step staged-layer marks

  // Incremental-scan state. cache_[p] holds p's last evaluated entry
  // (actions empty when disabled); enabledIds_ the sorted ids of enabled
  // processors. cacheValid_ guards both; enabledFresh_ says enabled_
  // matches the current configuration (cleared by commits/invalidation).
  struct CacheEntry {
    // layer/actions are valid ONLY while enabled is true: disabled slots
    // keep whatever they last held (every fill site skips the vector
    // traffic for them, and no reader looks at a disabled slot's actions).
    std::vector<Action> actions;
    std::uint16_t layer = 0;
    bool enabled = false;
  };
  std::vector<CacheEntry> cache_;
  std::vector<NodeId> enabledIds_;
  bool cacheValid_ = false;
  bool enabledFresh_ = false;
  std::vector<NodeId> pendingWrites_;  // written since last scan (deduped)
  std::vector<bool> writtenMark_;      // dedupe scratch for pendingWrites_
  std::vector<NodeId> writtenScratch_;  // per-step commit() write-set sink
  std::vector<NodeId> dirtyScratch_;    // expanded closed neighborhoods
  std::vector<bool> dirtyMark_;
  std::vector<NodeId> nextEnabledScratch_;
  // Parallel full-scan chunk scratch; chunk capacity persists across sweeps.
  std::vector<std::vector<EnabledProcessor>> scanPartial_;

  ScanStats scanStats_;

  // Round accounting: processors still owing an execution/neutralization in
  // the current round. roundPendingIds_ lists them compactly (may hold
  // stale ids whose roundPending_ bit was already cleared by the executed
  // discharge - iteration skips those); roundActive_ is false before the
  // first enabled-set computation. roundMark_ is scratch for the
  // neutralization pass (enabled-now membership).
  std::vector<bool> roundPending_;
  std::vector<NodeId> roundPendingIds_;
  std::vector<bool> roundMark_;
  std::size_t roundPendingCount_ = 0;
  bool roundActive_ = false;

  std::uint64_t steps_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t actions_ = 0;
  std::vector<std::uint64_t> actionsPerLayer_;

  std::function<void(Engine&)> postStepHook_;
};

}  // namespace snapfwd
