#pragma once
// The state-model execution engine.
//
// An Engine owns the step loop of the paper's computational model
// (Section 2.1). Each atomic step:
//   (i)   every processor evaluates its guards on the current configuration
//         gamma_i (optionally in parallel - guards are pure reads);
//   (ii)  the daemon chooses a non-empty subset of enabled processors and
//         one enabled action each;
//   (iii) all chosen actions are staged against gamma_i and committed
//         together, yielding gamma_{i+1}.
//
// Layer priority: layers are given in priority order; for each processor
// only the enabled actions of its first layer with any enabled action are
// shown to the daemon. This implements the paper's assumption that the
// routing algorithm A has priority over SSMFP.
//
// Rounds are counted per the paper's definition: a round completes when
// every processor that was enabled at the round's start has either executed
// an action or been neutralized (enabled -> disabled without executing).

#include <cstdint>
#include <functional>
#include <vector>

#include "core/daemon.hpp"
#include "core/protocol.hpp"
#include "graph/graph.hpp"
#include "util/thread_pool.hpp"

namespace snapfwd {

class Engine {
 public:
  /// `layers` in priority order (layers[0] wins). All pointers must outlive
  /// the engine. `pool` may be null (serial guard evaluation).
  Engine(const Graph& graph, std::vector<Protocol*> layers, Daemon& daemon,
         ThreadPool* pool = nullptr);

  /// Executes one atomic step. Returns false without executing anything if
  /// the configuration is terminal (no enabled processor) or the daemon
  /// declined to choose (scripted daemon at end of script).
  bool step();

  /// Runs until terminal or `maxSteps` more steps executed.
  /// Returns the number of steps executed by this call.
  std::uint64_t run(std::uint64_t maxSteps);

  /// True iff no processor has any enabled action right now.
  [[nodiscard]] bool isTerminal();

  [[nodiscard]] std::uint64_t stepCount() const noexcept { return steps_; }
  /// Completed rounds so far.
  [[nodiscard]] std::uint64_t roundCount() const noexcept { return rounds_; }
  [[nodiscard]] std::uint64_t actionCount() const noexcept { return actions_; }
  /// Actions executed per layer index.
  [[nodiscard]] const std::vector<std::uint64_t>& actionsPerLayer() const noexcept {
    return actionsPerLayer_;
  }

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }

  /// Invoked after each committed step; used e.g. by online workloads to
  /// submit new messages between steps.
  void setPostStepHook(std::function<void(Engine&)> hook) {
    postStepHook_ = std::move(hook);
  }

  /// The enabled set computed for the imminent step (valid after a step()
  /// or isTerminal() call); exposed for tests and trace tooling.
  [[nodiscard]] const std::vector<EnabledProcessor>& lastEnabled() const noexcept {
    return enabled_;
  }

  /// One action executed by the most recent committed step.
  struct ExecutedAction {
    NodeId p = kNoNode;
    std::uint16_t layer = 0;
    Action action;
  };
  /// The actions of the most recent committed step, in commit order
  /// (valid after a successful step(); used by the execution tracer).
  [[nodiscard]] const std::vector<ExecutedAction>& lastExecuted() const noexcept {
    return executedActions_;
  }

 private:
  void buildEnabled();
  void settleRoundAccounting();

  const Graph& graph_;
  std::vector<Protocol*> layers_;
  Daemon& daemon_;
  ThreadPool* pool_;

  std::vector<EnabledProcessor> enabled_;
  std::vector<Choice> choices_;
  std::vector<bool> executedThisStep_;
  std::vector<ExecutedAction> executedActions_;

  // Round accounting: processors still owing an execution/neutralization in
  // the current round. roundActive_ is false before the first enabled-set
  // computation.
  std::vector<bool> roundPending_;
  std::size_t roundPendingCount_ = 0;
  bool roundActive_ = false;

  std::uint64_t steps_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t actions_ = 0;
  std::vector<std::uint64_t> actionsPerLayer_;

  std::function<void(Engine&)> postStepHook_;
};

}  // namespace snapfwd
