#include "core/access_tracker.hpp"

#include <algorithm>

namespace snapfwd {

std::string AccessViolation::describe() const {
  std::string out(protocol);
  out += ": ";
  switch (kind) {
    case AccessViolationKind::kNonLocalGuardRead:
      out += "guard of processor " + std::to_string(actor) +
             " read a variable of processor " + std::to_string(variableOwner) +
             " outside its declared access radius " +
             std::to_string(declaredRadius);
      break;
    case AccessViolationKind::kNonLocalStageRead:
      out += "rule " + std::to_string(rule) + " stage at processor " +
             std::to_string(actor) + " read a variable of processor " +
             std::to_string(variableOwner) +
             " outside its declared access radius " +
             std::to_string(declaredRadius);
      break;
    case AccessViolationKind::kGuardWrite:
      out += "guard of processor " + std::to_string(actor) +
             " wrote a variable of processor " + std::to_string(variableOwner) +
             " (guards must be pure)";
      break;
    case AccessViolationKind::kStageWrite:
      out += "rule " + std::to_string(rule) + " stage at processor " +
             std::to_string(actor) + " wrote a variable of processor " +
             std::to_string(variableOwner) +
             " (stage must not touch observable state)";
      break;
    case AccessViolationKind::kCrossProcessorWrite:
      out += "rule " + std::to_string(rule) + " commit acting at processor " +
             std::to_string(actor) + " wrote a variable of processor " +
             std::to_string(variableOwner) +
             " (actions write only their own processor's variables)";
      break;
    case AccessViolationKind::kUnderReportedWrite:
      out += "commit wrote a variable of processor " +
             std::to_string(variableOwner) +
             " but omitted it from the reported write set (stales the "
             "incremental enabled cache)";
      break;
  }
  out += " [step " + std::to_string(step) + "]";
  return out;
}

AccessTracker::AccessTracker(const Graph& graph) : graph_(graph) {}

void AccessTracker::beginGuard(NodeId actor, unsigned radius,
                               std::string_view protocol) {
  phase_ = Phase::kGuard;
  actor_ = actor;
  radius_ = radius;
  rule_ = 0;
  protocol_ = protocol;
}

void AccessTracker::beginStage(NodeId actor, unsigned radius,
                               std::uint16_t rule, std::string_view protocol) {
  phase_ = Phase::kStage;
  actor_ = actor;
  radius_ = radius;
  rule_ = rule;
  protocol_ = protocol;
}

void AccessTracker::beginCommit(std::string_view protocol) {
  phase_ = Phase::kCommit;
  actor_ = kNoNode;
  rule_ = 0;
  protocol_ = protocol;
  commitWrites_.clear();
}

void AccessTracker::beginExclusive(NodeId actor, std::string_view protocol) {
  phase_ = Phase::kExclusive;
  actor_ = actor;
  radius_ = 0;
  rule_ = 0;
  protocol_ = protocol;
}

void AccessTracker::endPhase() {
  phase_ = Phase::kIdle;
  actor_ = kNoNode;
}

void AccessTracker::setCommitActor(NodeId actor, std::uint16_t rule) {
  actor_ = actor;
  rule_ = rule;
}

void AccessTracker::endCommit(const NodeId* reported, std::size_t count) {
  // Superset check: every owner actually written must appear in the
  // protocol's reported slice. Over-reporting is allowed (it only costs
  // spurious dirty-set entries); under-reporting is the hard failure.
  for (std::size_t i = 0; i < commitWrites_.size(); ++i) {
    const NodeId owner = commitWrites_[i];
    if (std::find(commitWrites_.begin(), commitWrites_.begin() + i, owner) !=
        commitWrites_.begin() + i) {
      continue;  // already checked (and possibly reported) this owner
    }
    if (std::find(reported, reported + count, owner) == reported + count) {
      addViolation(AccessViolationKind::kUnderReportedWrite, owner);
    }
  }
  commitWrites_.clear();
  phase_ = Phase::kIdle;
  actor_ = kNoNode;
}

void AccessTracker::noteRead(NodeId owner) {
  switch (phase_) {
    case Phase::kGuard:
      if (!withinRadius(owner)) {
        addViolation(AccessViolationKind::kNonLocalGuardRead, owner);
      }
      break;
    case Phase::kStage:
      if (!withinRadius(owner)) {
        addViolation(AccessViolationKind::kNonLocalStageRead, owner);
      }
      break;
    case Phase::kExclusive:
      if (owner != actor_) {
        addViolation(AccessViolationKind::kNonLocalGuardRead, owner);
      }
      break;
    case Phase::kCommit:  // commit may read its staged bookkeeping freely
    case Phase::kIdle:    // out-of-phase tooling (hashers, checkers, ...)
      break;
  }
}

void AccessTracker::noteWrite(NodeId owner) {
  switch (phase_) {
    case Phase::kGuard:
      addViolation(AccessViolationKind::kGuardWrite, owner);
      break;
    case Phase::kStage:
      addViolation(AccessViolationKind::kStageWrite, owner);
      break;
    case Phase::kCommit:
      commitWrites_.push_back(owner);
      if (actor_ != kNoNode && owner != actor_) {
        addViolation(AccessViolationKind::kCrossProcessorWrite, owner);
      }
      break;
    case Phase::kExclusive:
      if (owner != actor_) {
        addViolation(AccessViolationKind::kCrossProcessorWrite, owner);
      }
      break;
    case Phase::kIdle:
      break;
  }
}

bool AccessTracker::withinRadius(NodeId owner) const {
  if (owner == actor_) return true;
  if (radius_ == 0) return false;
  if (graph_.hasEdge(actor_, owner)) return true;
  if (radius_ == 1) return false;
  return graph_.distance(actor_, owner) <= radius_;
}

void AccessTracker::addViolation(AccessViolationKind kind, NodeId owner) {
  violations_.push_back(AccessViolation{
      .kind = kind,
      .protocol = std::string(protocol_),
      .rule = rule_,
      .actor = actor_,
      .variableOwner = owner,
      .declaredRadius = radius_,
      .step = step_,
  });
}

}  // namespace snapfwd
