#include "graph/dot.hpp"

#include <sstream>

namespace snapfwd {

std::string toDot(const Graph& graph, const std::string& name) {
  std::ostringstream out;
  out << "graph " << name << " {\n";
  for (NodeId p = 0; p < graph.size(); ++p) {
    out << "  n" << p << ";\n";
  }
  for (const auto& [u, v] : graph.edges()) {
    out << "  n" << u << " -- n" << v << ";\n";
  }
  out << "}\n";
  return out.str();
}

std::string toDotDirected(
    const std::vector<std::pair<std::size_t, std::size_t>>& arcs,
    const std::vector<std::string>& labels, const std::string& name) {
  std::ostringstream out;
  out << "digraph " << name << " {\n";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    out << "  v" << i << " [label=\"" << labels[i] << "\"];\n";
  }
  for (const auto& [src, dst] : arcs) {
    out << "  v" << src << " -> v" << dst << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace snapfwd
