#pragma once
// Topology builders used throughout tests, examples and the benchmark sweeps.
// Every builder returns a connected graph on vertices 0..n-1.

#include <cstddef>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace snapfwd::topo {

/// Simple path 0-1-...-(n-1). Delta = 2, D = n-1. n >= 1.
[[nodiscard]] Graph path(std::size_t n);

/// Cycle 0-1-...-(n-1)-0. Delta = 2, D = floor(n/2). n >= 3.
[[nodiscard]] Graph ring(std::size_t n);

/// Star with center 0. Delta = n-1, D = 2. n >= 2.
[[nodiscard]] Graph star(std::size_t n);

/// Complete graph K_n. Delta = n-1, D = 1. n >= 1.
[[nodiscard]] Graph complete(std::size_t n);

/// Complete binary tree (heap-shaped: children of i are 2i+1, 2i+2). n >= 1.
[[nodiscard]] Graph binaryTree(std::size_t n);

/// Uniform random labeled spanning tree (random Pruefer sequence). n >= 1.
[[nodiscard]] Graph randomTree(std::size_t n, Rng& rng);

/// rows x cols 2D mesh, row-major vertex layout. rows, cols >= 1.
[[nodiscard]] Graph grid(std::size_t rows, std::size_t cols);

/// rows x cols 2D torus (wrap-around mesh). rows, cols >= 3 for simple graph.
[[nodiscard]] Graph torus(std::size_t rows, std::size_t cols);

/// d-dimensional hypercube on 2^d vertices. d >= 1.
[[nodiscard]] Graph hypercube(std::size_t dims);

/// Random connected graph: random spanning tree plus `extraEdges` distinct
/// random non-tree edges (silently fewer if the graph saturates).
[[nodiscard]] Graph randomConnected(std::size_t n, std::size_t extraEdges, Rng& rng);

/// The 4-processor network of the paper's Figure 3 walkthrough:
/// vertices a=0, b=1, c=2, d=3; edges a-b, a-c, a-d, c-b. Delta = 3.
[[nodiscard]] Graph figure3Network();

/// BFS spanning tree of a connected graph, rooted at `root` (same vertex
/// ids, tree edges only, min-id parent tie-break). Lets tree-only schemes
/// (PIF, the up/down orientation cover) run on arbitrary topologies at the
/// cost of path stretch.
[[nodiscard]] Graph spanningTree(const Graph& graph, NodeId root);

/// Node labels for figure3Network (a, b, c, d).
[[nodiscard]] const char* figure3Label(NodeId node);

}  // namespace snapfwd::topo
