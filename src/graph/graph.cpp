#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace snapfwd {

Graph::Graph(std::size_t n) : adjacency_(n) {}

void Graph::addEdge(NodeId u, NodeId v) {
  assert(u < size() && v < size());
  if (u == v || hasEdge(u, v)) return;
  auto insertSorted = [](std::vector<NodeId>& list, NodeId x) {
    list.insert(std::lower_bound(list.begin(), list.end(), x), x);
  };
  insertSorted(adjacency_[u], v);
  insertSorted(adjacency_[v], u);
}

void Graph::removeEdge(NodeId u, NodeId v) {
  assert(u < size() && v < size());
  if (u == v || !hasEdge(u, v)) return;
  auto eraseSorted = [](std::vector<NodeId>& list, NodeId x) {
    list.erase(std::lower_bound(list.begin(), list.end(), x));
  };
  eraseSorted(adjacency_[u], v);
  eraseSorted(adjacency_[v], u);
}

bool Graph::hasEdge(NodeId u, NodeId v) const {
  if (u >= size() || v >= size()) return false;
  const auto& list = adjacency_[u];
  return std::binary_search(list.begin(), list.end(), v);
}

std::size_t Graph::maxDegree() const {
  std::size_t best = 0;
  for (const auto& list : adjacency_) best = std::max(best, list.size());
  return best;
}

std::size_t Graph::edgeCount() const {
  std::size_t twice = 0;
  for (const auto& list : adjacency_) twice += list.size();
  return twice / 2;
}

bool Graph::isConnected() const {
  if (size() == 0) return true;
  const auto dist = bfsDistances(0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

std::vector<std::uint32_t> Graph::bfsDistances(NodeId from) const {
  std::vector<std::uint32_t> dist(size(), kUnreachable);
  std::deque<NodeId> queue;
  dist[from] = 0;
  queue.push_back(from);
  while (!queue.empty()) {
    const NodeId p = queue.front();
    queue.pop_front();
    for (const NodeId q : adjacency_[p]) {
      if (dist[q] == kUnreachable) {
        dist[q] = dist[p] + 1;
        queue.push_back(q);
      }
    }
  }
  return dist;
}

std::uint32_t Graph::distance(NodeId p, NodeId q) const {
  return bfsDistances(p)[q];
}

std::uint32_t Graph::diameter() const {
  std::uint32_t best = 0;
  for (NodeId p = 0; p < size(); ++p) {
    const auto dist = bfsDistances(p);
    for (const auto d : dist) {
      assert(d != kUnreachable && "diameter of a disconnected graph");
      best = std::max(best, d);
    }
  }
  return best;
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edgeCount());
  for (NodeId u = 0; u < size(); ++u) {
    for (const NodeId v : adjacency_[u]) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

std::optional<std::size_t> Graph::neighborIndex(NodeId p, NodeId q) const {
  const auto& list = adjacency_[p];
  const auto it = std::lower_bound(list.begin(), list.end(), q);
  if (it == list.end() || *it != q) return std::nullopt;
  return static_cast<std::size_t>(it - list.begin());
}

}  // namespace snapfwd
