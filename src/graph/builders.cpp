#include "graph/builders.hpp"

#include <cassert>
#include <vector>

namespace snapfwd::topo {

Graph path(std::size_t n) {
  assert(n >= 1);
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.addEdge(i, i + 1);
  return g;
}

Graph ring(std::size_t n) {
  assert(n >= 3);
  Graph g = path(n);
  g.addEdge(static_cast<NodeId>(n - 1), 0);
  return g;
}

Graph star(std::size_t n) {
  assert(n >= 2);
  Graph g(n);
  for (NodeId i = 1; i < n; ++i) g.addEdge(0, i);
  return g;
}

Graph complete(std::size_t n) {
  assert(n >= 1);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.addEdge(u, v);
  }
  return g;
}

Graph binaryTree(std::size_t n) {
  assert(n >= 1);
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) {
    const std::size_t left = 2 * static_cast<std::size_t>(i) + 1;
    const std::size_t right = left + 1;
    if (left < n) g.addEdge(i, static_cast<NodeId>(left));
    if (right < n) g.addEdge(i, static_cast<NodeId>(right));
  }
  return g;
}

Graph randomTree(std::size_t n, Rng& rng) {
  assert(n >= 1);
  Graph g(n);
  if (n <= 1) return g;
  if (n == 2) {
    g.addEdge(0, 1);
    return g;
  }
  // Decode a uniformly random Pruefer sequence of length n-2.
  std::vector<std::size_t> pruefer(n - 2);
  for (auto& x : pruefer) x = static_cast<std::size_t>(rng.below(n));
  std::vector<std::size_t> degree(n, 1);
  for (const auto x : pruefer) ++degree[x];
  // leaves = min-heap emulated with a sorted scan; n is small in our uses,
  // but use an index-based pointer walk for O(n log n)-ish behavior.
  std::vector<bool> used(n, false);
  std::size_t ptr = 0;
  while (degree[ptr] != 1) ++ptr;
  std::size_t leaf = ptr;
  for (const auto v : pruefer) {
    g.addEdge(static_cast<NodeId>(leaf), static_cast<NodeId>(v));
    if (--degree[v] == 1 && v < ptr) {
      leaf = v;  // new leaf below the pointer: use it immediately
    } else {
      ++ptr;
      while (degree[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  // Connect the final leaf to n-1.
  g.addEdge(static_cast<NodeId>(leaf), static_cast<NodeId>(n - 1));
  return g;
}

Graph grid(std::size_t rows, std::size_t cols) {
  assert(rows >= 1 && cols >= 1);
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.addEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.addEdge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph torus(std::size_t rows, std::size_t cols) {
  assert(rows >= 3 && cols >= 3);
  Graph g = grid(rows, cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) g.addEdge(id(r, 0), id(r, cols - 1));
  for (std::size_t c = 0; c < cols; ++c) g.addEdge(id(0, c), id(rows - 1, c));
  return g;
}

Graph hypercube(std::size_t dims) {
  assert(dims >= 1 && dims < 20);
  const std::size_t n = std::size_t{1} << dims;
  Graph g(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t bit = 0; bit < dims; ++bit) {
      const std::size_t u = v ^ (std::size_t{1} << bit);
      if (u > v) g.addEdge(static_cast<NodeId>(v), static_cast<NodeId>(u));
    }
  }
  return g;
}

Graph randomConnected(std::size_t n, std::size_t extraEdges, Rng& rng) {
  Graph g = randomTree(n, rng);
  if (n < 2) return g;
  const std::size_t maxEdges = n * (n - 1) / 2;
  std::size_t added = 0;
  std::size_t attempts = 0;
  const std::size_t attemptCap = 64 * (extraEdges + 1);
  while (added < extraEdges && g.edgeCount() < maxEdges && attempts < attemptCap) {
    ++attempts;
    const auto u = static_cast<NodeId>(rng.below(n));
    const auto v = static_cast<NodeId>(rng.below(n));
    if (u == v || g.hasEdge(u, v)) continue;
    g.addEdge(u, v);
    ++added;
  }
  return g;
}

Graph figure3Network() {
  // a=0, b=1, c=2, d=3; Delta = 3 at processor a (neighbors b, c, d).
  Graph g(4);
  g.addEdge(0, 1);  // a - b
  g.addEdge(0, 2);  // a - c
  g.addEdge(0, 3);  // a - d
  g.addEdge(2, 1);  // c - b
  return g;
}

Graph spanningTree(const Graph& graph, NodeId root) {
  assert(graph.isConnected());
  Graph tree(graph.size());
  const auto dist = graph.bfsDistances(root);
  for (NodeId v = 0; v < graph.size(); ++v) {
    if (v == root) continue;
    for (const NodeId u : graph.neighbors(v)) {
      if (dist[u] + 1 == dist[v]) {  // sorted neighbors: min-id parent
        tree.addEdge(v, u);
        break;
      }
    }
  }
  return tree;
}

const char* figure3Label(NodeId node) {
  switch (node) {
    case 0: return "a";
    case 1: return "b";
    case 2: return "c";
    case 3: return "d";
    default: return "?";
  }
}

}  // namespace snapfwd::topo
