#pragma once
// Graphviz DOT export for topologies and buffer graphs, so the structures of
// the paper's Figures 1 and 2 can be rendered and inspected.

#include <string>

#include "graph/graph.hpp"

namespace snapfwd {

/// Undirected topology as a DOT `graph`.
[[nodiscard]] std::string toDot(const Graph& graph, const std::string& name = "G");

/// A directed edge list (e.g. a buffer graph component) as a DOT `digraph`.
/// `labels[i]` names vertex i of the directed structure.
[[nodiscard]] std::string toDotDirected(
    const std::vector<std::pair<std::size_t, std::size_t>>& arcs,
    const std::vector<std::string>& labels, const std::string& name = "BG");

}  // namespace snapfwd
