#pragma once
// Undirected network topology.
//
// The paper's model (Section 2): an undirected connected graph G = (V, E)
// of processors and bidirectional asynchronous links; every processor is
// identified (NodeId doubles as the identity) and knows the identity set I.
// The quantities n, Delta (max degree) and D (diameter) parameterize the
// complexity bounds (Propositions 4-7), so Graph exposes them directly.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace snapfwd {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xFFFF'FFFFu;

class Graph {
 public:
  Graph() = default;
  /// Creates a graph with `n` isolated vertices 0..n-1.
  explicit Graph(std::size_t n);

  /// Number of processors (the paper's n).
  [[nodiscard]] std::size_t size() const noexcept { return adjacency_.size(); }

  /// Adds the undirected edge {u, v}. Ignores duplicates and self-loops.
  void addEdge(NodeId u, NodeId v);

  /// Removes the undirected edge {u, v}. Ignores absent edges and
  /// self-loops. Removal may disconnect the graph; layers driven through a
  /// topology mutation schedule (faults/topology.hpp) must tolerate that.
  void removeEdge(NodeId u, NodeId v);

  [[nodiscard]] bool hasEdge(NodeId u, NodeId v) const;

  /// Neighbor identities of p, sorted ascending (the paper's N_p).
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId p) const {
    return adjacency_[p];
  }

  [[nodiscard]] std::size_t degree(NodeId p) const { return adjacency_[p].size(); }

  /// The paper's Delta: maximum degree over all processors.
  [[nodiscard]] std::size_t maxDegree() const;

  /// Number of undirected edges.
  [[nodiscard]] std::size_t edgeCount() const;

  [[nodiscard]] bool isConnected() const;

  /// BFS hop distances from `from`; unreachable vertices get kUnreachable.
  static constexpr std::uint32_t kUnreachable = 0xFFFF'FFFFu;
  [[nodiscard]] std::vector<std::uint32_t> bfsDistances(NodeId from) const;

  /// dist(p, q) in hops, or kUnreachable.
  [[nodiscard]] std::uint32_t distance(NodeId p, NodeId q) const;

  /// The paper's D: max over pairs of dist(p,q). Precondition: connected.
  [[nodiscard]] std::uint32_t diameter() const;

  /// All edges as (u, v) with u < v, lexicographically sorted.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// Index of q within neighbors(p), if q is a neighbor of p.
  [[nodiscard]] std::optional<std::size_t> neighborIndex(NodeId p, NodeId q) const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
};

}  // namespace snapfwd
