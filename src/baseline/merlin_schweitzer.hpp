#pragma once
// The fault-free comparator: destination-based buffer-graph forwarding in
// the style of Merlin & Schweitzer 1978 (paper Section 3.1 and Figure 1).
//
// One buffer b_p(d) per processor per destination; messages carry a flag
// (source identity, alternating bit) - the paper's "concatenation of the
// identity of the source and a two-value flag" - used to (a) let a sender
// detect that its next hop accepted a copy (so it may erase its own) and
// (b) prevent the receiver from accepting the same copy twice. Moves:
//
//  B1 generate : request_p && nextDestination_p = d && b_p(d) empty &&
//                choice_p(d) = p
//                -> b_p(d) := (nextMessage_p, flag=(p, genBit_p(d)));
//                   genBit flips; request_p := false
//  B2 copy     : b_p(d) empty && choice_p(d) = s != p
//                -> b_p(d) := b_s(d); lastFlag_p(d)[s] := flag(b_s(d))
//  B3 erase    : b_p(d) occupied && p != d && h = nextHop_p(d) &&
//                (flag(b_h(d)) = flag(b_p(d)) ||
//                 lastFlag_h(d)[p] = flag(b_p(d)))
//                -> b_p(d) := empty
//  B4 consume  : b_d(d) occupied -> deliver; b_d(d) := empty
//
// choice_p(d) is the same round-robin fairness queue as SSMFP's; a neighbor
// s qualifies when b_s(d) is occupied, nextHop_s(d) = p and p has not
// already accepted that exact flag FROM s (lastFlag is per incoming link,
// as in a real hop-by-hop handshake - a single per-buffer flag would be
// clobbered by interleaved traffic from other senders and break the
// exactly-once handshake even with correct tables).
//
// Under CORRECT, CONSTANT routing tables this satisfies SP: the buffer
// graph is the forest of routing trees (acyclic -> deadlock-free), flags
// make the copy-then-erase handshake exactly-once. Under corrupted or
// still-stabilizing tables it demonstrably deadlocks, loses or duplicates
// messages - the failures SSMFP's two-buffer/color scheme eliminates. The
// experiments E9/E10 quantify both sides.

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/engine.hpp"
#include "core/protocol.hpp"
#include "graph/graph.hpp"
#include "routing/routing.hpp"
#include "ssmfp/message.hpp"
#include "util/rng.hpp"

namespace snapfwd {

enum BaselineRule : std::uint16_t {
  kB1Generate = 1,
  kB2Copy = 2,
  kB3Erase = 3,
  kB4Consume = 4,
};

/// The baseline's message flag.
struct BaselineFlag {
  NodeId source = kNoNode;
  std::uint8_t bit = 0;
  friend bool operator==(const BaselineFlag&, const BaselineFlag&) = default;
};

struct BaselineMessage {
  Payload payload = 0;
  BaselineFlag flag;
  // Verification metadata (never read by guards):
  TraceId trace = kInvalidTrace;
  bool valid = false;
  NodeId source = kNoNode;
  NodeId dest = kNoNode;
  std::uint64_t bornStep = 0;
  std::uint64_t bornRound = 0;
};

struct BaselineGenerationRecord {
  BaselineMessage msg;
  std::uint64_t step = 0;
  std::uint64_t round = 0;
};

struct BaselineDeliveryRecord {
  BaselineMessage msg;
  NodeId at = kNoNode;
  std::uint64_t step = 0;
  std::uint64_t round = 0;
};

class MerlinSchweitzerProtocol final : public Protocol {
 public:
  MerlinSchweitzerProtocol(const Graph& graph, const RoutingProvider& routing,
                           std::vector<NodeId> destinations = {});

  // -- Protocol ---------------------------------------------------------
  [[nodiscard]] std::string_view name() const override { return "merlin-schweitzer"; }
  void enumerateEnabled(NodeId p, std::vector<Action>& out) const override;
  void stage(NodeId p, const Action& a) override;
  void commit(std::vector<NodeId>& written) override;

  // -- Application interface ---------------------------------------------
  TraceId send(NodeId src, NodeId dest, Payload payload);
  [[nodiscard]] bool request(NodeId p) const { return !outbox_.read(p).empty(); }
  [[nodiscard]] NodeId nextDestination(NodeId p) const;
  [[nodiscard]] std::size_t outboxSize(NodeId p) const {
    return outbox_.read(p).size();
  }

  // -- Events & state -------------------------------------------------------
  [[nodiscard]] const std::vector<BaselineGenerationRecord>& generations() const {
    return generations_;
  }
  [[nodiscard]] const std::vector<BaselineDeliveryRecord>& deliveries() const {
    return deliveries_;
  }
  void attachEngine(const Engine* engine) { engine_ = engine; }

  [[nodiscard]] const std::optional<BaselineMessage>& buffer(NodeId p, NodeId d) const {
    return buf_.read(cell(p, d));
  }
  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] const std::vector<NodeId>& destinations() const { return dests_; }
  [[nodiscard]] NodeId choice(NodeId p, NodeId d) const;

  [[nodiscard]] std::size_t occupiedBufferCount() const;
  [[nodiscard]] bool fullyDrained() const;

  /// Injection of garbage for arbitrary-initial-configuration experiments.
  void injectBuffer(NodeId p, NodeId d, BaselineMessage msg);
  void scrambleQueues(Rng& rng);

  // -- Exact state access & restoration (canonical serialization; see
  // src/explore/canon.hpp) --------------------------------------------------
  [[nodiscard]] const std::optional<BaselineFlag>& lastFlag(
      NodeId p, NodeId d, std::size_t neighborIndex) const {
    return lastFlag_.read(cell(p, d))[neighborIndex];
  }
  [[nodiscard]] std::uint8_t genBit(NodeId p, NodeId d) const {
    return genBit_.read(cell(p, d));
  }
  [[nodiscard]] const std::vector<NodeId>& fairnessQueue(NodeId p, NodeId d) const {
    return queue_.read(cell(p, d));
  }
  struct WaitingEntry {
    NodeId dest = kNoNode;
    Payload payload = 0;
    TraceId trace = kInvalidTrace;
  };
  [[nodiscard]] WaitingEntry waitingAt(NodeId p, std::size_t k) const {
    const auto& entry = outbox_.read(p)[k];
    return {entry.dest, entry.payload, entry.trace};
  }
  [[nodiscard]] TraceId nextTraceId() const { return nextTrace_; }
  void setNextTraceId(TraceId next) { nextTrace_ = next; }
  /// Unlike injectBuffer these copy state verbatim (validity, trace and
  /// provenance preserved).
  void restoreBuffer(NodeId p, NodeId d, const BaselineMessage& msg);
  void setLastFlag(NodeId p, NodeId d, std::size_t neighborIndex,
                   std::optional<BaselineFlag> flag);
  void setGenBit(NodeId p, NodeId d, std::uint8_t bit);
  void setFairnessQueue(NodeId p, NodeId d, std::vector<NodeId> order);
  void restoreOutboxEntry(NodeId p, NodeId dest, Payload payload, TraceId trace);

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFF'FFFFu;
  [[nodiscard]] std::size_t cell(NodeId p, NodeId d) const {
    return static_cast<std::size_t>(p) * dests_.size() + destSlot_[d];
  }

  [[nodiscard]] bool choiceCandidate(NodeId p, NodeId d, NodeId c) const;
  [[nodiscard]] bool guardB1(NodeId p, NodeId d) const;
  [[nodiscard]] NodeId guardB2(NodeId p, NodeId d) const;
  [[nodiscard]] bool guardB3(NodeId p, NodeId d) const;
  [[nodiscard]] bool guardB4(NodeId p, NodeId d) const;

  [[nodiscard]] std::uint64_t nowStep() const;
  [[nodiscard]] std::uint64_t nowRound() const;

  const Graph& graph_;
  const RoutingProvider& routing_;
  std::vector<NodeId> dests_;
  std::vector<std::uint32_t> destSlot_;

  // Observable variables, one row per processor (audit-mode access
  // recording; see core/access_tracker.hpp).
  CheckedStore<std::optional<BaselineMessage>> buf_;
  // lastFlag_[cell(p,d)][i] = flag of the last message p accepted into
  // b_p(d) from its i-th neighbor (per-link handshake state).
  CheckedStore<std::vector<std::optional<BaselineFlag>>> lastFlag_;
  CheckedStore<std::uint8_t> genBit_;
  CheckedStore<std::vector<NodeId>> queue_;

  struct OutboxEntry {
    NodeId dest;
    Payload payload;
    TraceId trace;
  };
  CheckedStore<std::deque<OutboxEntry>> outbox_;
  TraceId nextTrace_ = 1;

  std::vector<BaselineGenerationRecord> generations_;
  std::vector<BaselineDeliveryRecord> deliveries_;
  const Engine* engine_ = nullptr;

  struct StagedOp {
    NodeId p = kNoNode;
    NodeId d = kNoNode;
    std::uint16_t rule = 0;
    bool writeBuf = false;
    std::optional<BaselineMessage> newBuf;
    bool writeLastFlag = false;
    std::size_t lastFlagSlot = 0;  // neighbor index within N_p
    std::optional<BaselineFlag> newLastFlag;
    bool flipGenBit = false;
    NodeId rotateToBack = kNoNode;
    bool popOutbox = false;
    std::optional<BaselineMessage> delivered;
    std::optional<BaselineMessage> generated;
  };
  std::vector<StagedOp> staged_;
};

}  // namespace snapfwd
