#pragma once
// Deadlock-free forwarding over an ACYCLIC-ORIENTATION buffer-class cover
// (Merlin & Schweitzer's second construction; the paper's conclusion:
// "one of them (based on the acyclic covering of the network) is very
// interesting since it needs less buffers per processor in general (3 for
// a ring, 2 for a tree...) [but] it is NP-hard to compute the size of the
// acyclic covering of any graph").
//
// Idea: instead of one buffer per DESTINATION per processor (n per node,
// Figure 1) or two (2n per node, SSMFP), give every processor k buffer
// CLASSES shared by all traffic. A cover assigns each routed hop a class
// transition: within class i, moves follow an acyclic orientation; a hop
// outside the current orientation bumps the message to class i+1. Classes
// are totally ordered and each class's moves are acyclic, so the combined
// buffer graph is acyclic -> deadlock freedom, with only k buffers per
// node, independent of n.
//
// We implement the scheme generically over a BufferClassScheme and provide
// the two covers the conclusion names:
//   - TreeUpDownScheme (k = 2): class 0 = hops toward the root, class 1 =
//     hops away from it; every tree path is up* down*, bumping once.
//   - UnidirectionalRingScheme (k = 2): all traffic clockwise; crossing
//     the dateline edge (n-1 -> 0) bumps 0 -> 1; a route of length < n
//     crosses it at most once.
//
// Like the destination-based baseline this is a FAULT-FREE protocol
// (correct constant tables assumed); it exists to reproduce the
// conclusion's buffer-count comparison and its deadlock-freedom claim,
// not to be stabilizing.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "baseline/merlin_schweitzer.hpp"  // BaselineFlag
#include "core/engine.hpp"
#include "core/protocol.hpp"
#include "graph/graph.hpp"
#include "routing/routing.hpp"
#include "ssmfp/message.hpp"

namespace snapfwd {

/// A buffer-class cover: class count, initial class, and the class
/// transition of each routed hop.
class BufferClassScheme {
 public:
  virtual ~BufferClassScheme() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::size_t classCount() const = 0;
  /// Class a freshly generated message occupies at its source.
  [[nodiscard]] virtual std::size_t initialClass(NodeId source, NodeId dest) const = 0;
  /// Target class when a message in `cls` at u takes the routed hop u -> v;
  /// nullopt means the cover does not admit this hop from this class (a
  /// route/cover mismatch - never happens for well-formed covers).
  [[nodiscard]] virtual std::optional<std::size_t> classAfterHop(
      NodeId u, NodeId v, std::size_t cls) const = 0;
};

/// k = 2 cover for trees: up toward `root`, then down.
class TreeUpDownScheme final : public BufferClassScheme {
 public:
  /// `graph` must be a tree (edgeCount == n-1, connected; asserted).
  TreeUpDownScheme(const Graph& graph, NodeId root);

  [[nodiscard]] std::string_view name() const override { return "tree-updown"; }
  [[nodiscard]] std::size_t classCount() const override { return 2; }
  [[nodiscard]] std::size_t initialClass(NodeId, NodeId) const override { return 0; }
  [[nodiscard]] std::optional<std::size_t> classAfterHop(
      NodeId u, NodeId v, std::size_t cls) const override;

  [[nodiscard]] NodeId parentOf(NodeId v) const { return parent_[v]; }
  [[nodiscard]] NodeId root() const { return root_; }

 private:
  NodeId root_;
  std::vector<NodeId> parent_;  // parent_[root] == root
};

/// k = 2 cover for rings with clockwise-only routing: bump at the
/// dateline hop (n-1 -> 0).
class UnidirectionalRingScheme final : public BufferClassScheme {
 public:
  explicit UnidirectionalRingScheme(std::size_t n) : n_(n) {}

  [[nodiscard]] std::string_view name() const override { return "ring-cw"; }
  [[nodiscard]] std::size_t classCount() const override { return 2; }
  [[nodiscard]] std::size_t initialClass(NodeId, NodeId) const override { return 0; }
  [[nodiscard]] std::optional<std::size_t> classAfterHop(
      NodeId u, NodeId v, std::size_t cls) const override;

 private:
  std::size_t n_;
};

/// Tree routing along parent/child links (the unique tree path).
class TreePathRouting final : public RoutingProvider {
 public:
  TreePathRouting(const Graph& graph, const TreeUpDownScheme& scheme);
  [[nodiscard]] NodeId nextHop(NodeId p, NodeId d) const override;

 private:
  std::size_t n_;
  std::vector<NodeId> next_;
};

/// Clockwise-only ring routing: nextHop(p, d) = (p + 1) mod n.
class ClockwiseRingRouting final : public RoutingProvider {
 public:
  explicit ClockwiseRingRouting(std::size_t n) : n_(n) {}
  [[nodiscard]] NodeId nextHop(NodeId p, NodeId d) const override {
    return p == d ? p : static_cast<NodeId>((p + 1) % n_);
  }

 private:
  std::size_t n_;
};

/// Handshake flag of the orientation scheme. Unlike the destination-based
/// baseline, buffers are shared across destinations, so messages from one
/// source to DIFFERENT destinations can interleave arbitrarily on a link;
/// the flag therefore carries (source, dest, alternating bit) - same
/// source+dest messages follow one route in FIFO order, so the bit
/// disambiguates consecutive copies, and distinct destinations never
/// collide on the flag.
struct OrientFlag {
  NodeId source = kNoNode;
  NodeId dest = kNoNode;
  std::uint8_t bit = 0;
  friend bool operator==(const OrientFlag&, const OrientFlag&) = default;
};

/// A message of the orientation scheme: destination travels with the
/// message (buffers are shared across destinations - that is the scheme's
/// space saving), plus the per-link handshake flag.
struct OrientMessage {
  Payload payload = 0;
  NodeId dest = kNoNode;
  OrientFlag flag;
  // Verification metadata (never read by guards):
  TraceId trace = kInvalidTrace;
  bool valid = false;
  NodeId source = kNoNode;
  std::uint64_t bornStep = 0;
  std::uint64_t bornRound = 0;
};

struct OrientGenerationRecord {
  OrientMessage msg;
  std::uint64_t step = 0;
  std::uint64_t round = 0;
};

struct OrientDeliveryRecord {
  OrientMessage msg;
  NodeId at = kNoNode;
  std::uint64_t step = 0;
  std::uint64_t round = 0;
};

/// Rule ids.
enum OrientRule : std::uint16_t {
  kO1Generate = 1,
  kO2Copy = 2,     // aux encodes (sender, senderClass): aux = s * k + cls
  kO3Erase = 3,    // aux encodes the class of the erased buffer
  kO4Consume = 4,  // aux encodes the class consumed from
};

class OrientationForwardingProtocol final : public Protocol {
 public:
  OrientationForwardingProtocol(const Graph& graph, const RoutingProvider& routing,
                                const BufferClassScheme& scheme);

  // -- Protocol ---------------------------------------------------------
  [[nodiscard]] std::string_view name() const override { return "orientation-fwd"; }
  void enumerateEnabled(NodeId p, std::vector<Action>& out) const override;
  void stage(NodeId p, const Action& a) override;
  void commit(std::vector<NodeId>& written) override;

  // -- Application interface ---------------------------------------------
  TraceId send(NodeId src, NodeId dest, Payload payload);
  [[nodiscard]] bool request(NodeId p) const { return !outbox_.read(p).empty(); }

  // -- Events & state -------------------------------------------------------
  [[nodiscard]] const std::vector<OrientGenerationRecord>& generations() const {
    return generations_;
  }
  [[nodiscard]] const std::vector<OrientDeliveryRecord>& deliveries() const {
    return deliveries_;
  }
  void attachEngine(const Engine* engine) { engine_ = engine; }

  [[nodiscard]] const std::optional<OrientMessage>& buffer(NodeId p,
                                                           std::size_t cls) const {
    return buf_.read(cell(p, cls));
  }
  [[nodiscard]] std::size_t classCount() const { return k_; }
  [[nodiscard]] const Graph& graph() const { return graph_; }
  /// Buffers per processor - the quantity the conclusion compares.
  [[nodiscard]] std::size_t buffersPerProcessor() const { return k_; }
  [[nodiscard]] std::size_t occupiedBufferCount() const;
  [[nodiscard]] bool fullyDrained() const;

  // -- Exact state access & restoration (canonical serialization; see
  // src/explore/canon.hpp) --------------------------------------------------
  [[nodiscard]] const std::optional<OrientFlag>& lastFlag(
      NodeId p, std::size_t cls, std::size_t neighborIndex) const {
    return lastFlag_.read(cell(p, cls))[neighborIndex];
  }
  /// genBit_p maintained per (source, dest) pair.
  [[nodiscard]] std::uint8_t genBit(NodeId source, NodeId dest) const {
    return genBit_.read(static_cast<std::size_t>(source) * graph_.size() + dest);
  }
  [[nodiscard]] std::size_t outboxSize(NodeId p) const {
    return outbox_.read(p).size();
  }
  struct WaitingEntry {
    NodeId dest = kNoNode;
    Payload payload = 0;
    TraceId trace = kInvalidTrace;
  };
  [[nodiscard]] WaitingEntry waitingAt(NodeId p, std::size_t k) const {
    const auto& entry = outbox_.read(p)[k];
    return {entry.dest, entry.payload, entry.trace};
  }
  [[nodiscard]] TraceId nextTraceId() const { return nextTrace_; }
  void setNextTraceId(TraceId next) { nextTrace_ = next; }
  /// Verbatim state restoration (validity, trace, provenance preserved).
  void restoreBuffer(NodeId p, std::size_t cls, const OrientMessage& msg);
  void setLastFlag(NodeId p, std::size_t cls, std::size_t neighborIndex,
                   std::optional<OrientFlag> flag);
  void setGenBit(NodeId source, NodeId dest, std::uint8_t bit);
  void restoreOutboxEntry(NodeId p, NodeId dest, Payload payload, TraceId trace);

 private:
  [[nodiscard]] std::size_t cell(NodeId p, std::size_t cls) const {
    return static_cast<std::size_t>(p) * k_ + cls;
  }

  /// If s's class-i buffer holds a message routed through p, the class it
  /// would occupy at p; nullopt otherwise (or when dedupe rejects it).
  [[nodiscard]] std::optional<std::size_t> incomingClass(NodeId p, NodeId s,
                                                         std::size_t cls) const;

  [[nodiscard]] std::uint64_t nowStep() const;
  [[nodiscard]] std::uint64_t nowRound() const;

  const Graph& graph_;
  const RoutingProvider& routing_;
  const BufferClassScheme& scheme_;
  std::size_t k_;

  // Observable variables, one row per processor (audit-mode access
  // recording; see core/access_tracker.hpp).
  CheckedStore<std::optional<OrientMessage>> buf_;  // [p * k + cls]
  // lastFlag_[cell][neighborIndex]: per-link, per-class handshake state.
  CheckedStore<std::vector<std::optional<OrientFlag>>> lastFlag_;
  CheckedStore<std::uint8_t> genBit_;  // per (source, dest)

  struct OutboxEntry {
    NodeId dest;
    Payload payload;
    TraceId trace;
  };
  CheckedStore<std::deque<OutboxEntry>> outbox_;
  TraceId nextTrace_ = 1;

  std::vector<OrientGenerationRecord> generations_;
  std::vector<OrientDeliveryRecord> deliveries_;
  const Engine* engine_ = nullptr;

  struct StagedOp {
    NodeId p = kNoNode;
    std::uint16_t rule = 0;
    std::size_t cls = 0;
    bool writeBuf = false;
    std::optional<OrientMessage> newBuf;
    bool writeLastFlag = false;
    std::size_t lastFlagSlot = 0;
    std::optional<OrientFlag> newLastFlag;
    bool flipGenBit = false;
    bool popOutbox = false;
    std::optional<OrientMessage> delivered;
    std::optional<OrientMessage> generated;
  };
  std::vector<StagedOp> staged_;
};

}  // namespace snapfwd
