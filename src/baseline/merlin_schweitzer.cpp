#include "baseline/merlin_schweitzer.hpp"

#include <algorithm>
#include <cassert>

namespace snapfwd {

MerlinSchweitzerProtocol::MerlinSchweitzerProtocol(const Graph& graph,
                                                   const RoutingProvider& routing,
                                                   std::vector<NodeId> destinations)
    : graph_(graph),
      routing_(routing),
      dests_(std::move(destinations)),
      destSlot_(graph.size(), kNoSlot) {
  if (dests_.empty()) {
    dests_.resize(graph.size());
    for (NodeId d = 0; d < graph.size(); ++d) dests_[d] = d;
  }
  std::sort(dests_.begin(), dests_.end());
  dests_.erase(std::unique(dests_.begin(), dests_.end()), dests_.end());
  for (std::size_t slot = 0; slot < dests_.size(); ++slot) {
    destSlot_[dests_[slot]] = static_cast<std::uint32_t>(slot);
  }
  const std::size_t cells = graph.size() * dests_.size();
  buf_.configure(accessTrackerSlot(), dests_.size());
  lastFlag_.configure(accessTrackerSlot(), dests_.size());
  genBit_.configure(accessTrackerSlot(), dests_.size());
  queue_.configure(accessTrackerSlot(), dests_.size());
  outbox_.configure(accessTrackerSlot(), 1);
  buf_.resize(cells);
  lastFlag_.resize(cells);
  outbox_.resize(graph.size());
  for (NodeId p = 0; p < graph.size(); ++p) {
    for (const NodeId d : dests_) {
      lastFlag_.write(cell(p, d)).resize(graph.degree(p));
    }
  }
  genBit_.assign(cells, 0);
  queue_.resize(cells);
  for (NodeId p = 0; p < graph.size(); ++p) {
    for (const NodeId d : dests_) {
      auto& q = queue_.write(cell(p, d));
      q = graph.neighbors(p);
      q.push_back(p);
    }
  }
}

std::uint64_t MerlinSchweitzerProtocol::nowStep() const {
  return engine_ != nullptr ? engine_->stepCount() : 0;
}

std::uint64_t MerlinSchweitzerProtocol::nowRound() const {
  return engine_ != nullptr ? engine_->roundCount() : 0;
}

NodeId MerlinSchweitzerProtocol::nextDestination(NodeId p) const {
  const auto& box = outbox_.read(p);
  return box.empty() ? kNoNode : box.front().dest;
}

bool MerlinSchweitzerProtocol::choiceCandidate(NodeId p, NodeId d, NodeId c) const {
  if (c == p) return request(p) && nextDestination(p) == d;
  const auto& b = buf_.read(cell(c, d));
  if (!b.has_value() || routing_.nextHop(c, d) != p) return false;
  // Per-link flag dedupe: do not re-accept from c the exact copy p already
  // took from c.
  const auto slot = graph_.neighborIndex(p, c);
  if (!slot.has_value()) return false;
  const auto& last = lastFlag_.read(cell(p, d))[*slot];
  return !(last.has_value() && *last == b->flag);
}

NodeId MerlinSchweitzerProtocol::choice(NodeId p, NodeId d) const {
  for (const NodeId c : queue_.read(cell(p, d))) {
    if (choiceCandidate(p, d, c)) return c;
  }
  return kNoNode;
}

bool MerlinSchweitzerProtocol::guardB1(NodeId p, NodeId d) const {
  return request(p) && nextDestination(p) == d &&
         !buf_.read(cell(p, d)).has_value() && choice(p, d) == p;
}

NodeId MerlinSchweitzerProtocol::guardB2(NodeId p, NodeId d) const {
  if (buf_.read(cell(p, d)).has_value()) return kNoNode;
  const NodeId s = choice(p, d);
  if (s == kNoNode || s == p) return kNoNode;
  return s;
}

bool MerlinSchweitzerProtocol::guardB3(NodeId p, NodeId d) const {
  if (p == d) return false;
  const auto& b = buf_.read(cell(p, d));
  if (!b.has_value()) return false;
  const NodeId h = routing_.nextHop(p, d);
  const auto& hb = buf_.read(cell(h, d));
  if (hb.has_value() && hb->flag == b->flag) return true;
  const auto slot = graph_.neighborIndex(h, p);
  if (!slot.has_value()) return false;
  const auto& hl = lastFlag_.read(cell(h, d))[*slot];
  return hl.has_value() && *hl == b->flag;
}

bool MerlinSchweitzerProtocol::guardB4(NodeId p, NodeId d) const {
  return p == d && buf_.read(cell(p, d)).has_value();
}

void MerlinSchweitzerProtocol::enumerateEnabled(NodeId p,
                                                std::vector<Action>& out) const {
  for (const NodeId d : dests_) {
    if (guardB1(p, d)) out.push_back(Action{kB1Generate, d, 0});
    if (const NodeId s = guardB2(p, d); s != kNoNode) {
      out.push_back(Action{kB2Copy, d, s});
    }
    if (guardB3(p, d)) out.push_back(Action{kB3Erase, d, 0});
    if (guardB4(p, d)) out.push_back(Action{kB4Consume, d, 0});
  }
}

void MerlinSchweitzerProtocol::stage(NodeId p, const Action& a) {
  const NodeId d = a.dest;
  StagedOp op;
  op.p = p;
  op.d = d;
  op.rule = a.rule;
  switch (a.rule) {
    case kB1Generate: {
      assert(guardB1(p, d));
      const auto& waiting = outbox_.read(p).front();
      BaselineMessage msg;
      msg.payload = waiting.payload;
      msg.flag = {p, genBit_.read(cell(p, d))};
      msg.trace = waiting.trace;
      msg.valid = true;
      msg.source = p;
      msg.dest = d;
      msg.bornStep = nowStep();
      msg.bornRound = nowRound();
      op.writeBuf = true;
      op.newBuf = msg;
      op.flipGenBit = true;
      op.popOutbox = true;
      op.rotateToBack = p;
      op.generated = msg;
      break;
    }
    case kB2Copy: {
      const NodeId s = static_cast<NodeId>(a.aux);
      assert(guardB2(p, d) == s);
      const BaselineMessage msg = *buf_.read(cell(s, d));
      op.writeBuf = true;
      op.newBuf = msg;
      op.writeLastFlag = true;
      op.lastFlagSlot = *graph_.neighborIndex(p, s);
      op.newLastFlag = msg.flag;
      op.rotateToBack = s;
      break;
    }
    case kB3Erase: {
      assert(guardB3(p, d));
      op.writeBuf = true;
      op.newBuf = std::nullopt;
      break;
    }
    case kB4Consume: {
      assert(guardB4(p, d));
      op.delivered = *buf_.read(cell(p, d));
      op.writeBuf = true;
      op.newBuf = std::nullopt;
      break;
    }
    default:
      assert(false && "unknown baseline rule");
  }
  staged_.push_back(std::move(op));
}

void MerlinSchweitzerProtocol::commit(std::vector<NodeId>& written) {
  for (auto& op : staged_) {
    auditCommitOp(op.p, op.rule);
    written.push_back(op.p);  // every rule writes only p's buffers/queues
    const std::size_t idx = cell(op.p, op.d);
    if (op.writeBuf) buf_.write(idx) = op.newBuf;
    if (op.writeLastFlag) lastFlag_.write(idx)[op.lastFlagSlot] = op.newLastFlag;
    if (op.flipGenBit) genBit_.write(idx) ^= 1;
    if (op.rotateToBack != kNoNode) {
      auto& q = queue_.write(idx);
      const auto it = std::find(q.begin(), q.end(), op.rotateToBack);
      if (it != q.end()) {
        q.erase(it);
        q.push_back(op.rotateToBack);
      }
    }
    if (op.popOutbox) {
      auto& box = outbox_.write(op.p);
      assert(!box.empty());
      box.pop_front();
    }
    if (op.generated.has_value()) {
      generations_.push_back({*op.generated, nowStep(), nowRound()});
    }
    if (op.delivered.has_value()) {
      deliveries_.push_back({*op.delivered, op.p, nowStep(), nowRound()});
    }
  }
  staged_.clear();
}

TraceId MerlinSchweitzerProtocol::send(NodeId src, NodeId dest, Payload payload) {
  assert(src < graph_.size());
  assert(dest < graph_.size() && destSlot_[dest] != kNoSlot);
  const TraceId trace = nextTrace_++;
  outbox_.write(src).push_back({dest, payload, trace});
  notifyExternalMutation();  // outbox feeds src's generation guard
  return trace;
}

std::size_t MerlinSchweitzerProtocol::occupiedBufferCount() const {
  std::size_t count = 0;
  for (const auto& b : buf_.raw()) count += b.has_value() ? 1 : 0;
  return count;
}

bool MerlinSchweitzerProtocol::fullyDrained() const {
  if (occupiedBufferCount() != 0) return false;
  return std::all_of(outbox_.raw().begin(), outbox_.raw().end(),
                     [](const auto& box) { return box.empty(); });
}

void MerlinSchweitzerProtocol::injectBuffer(NodeId p, NodeId d, BaselineMessage msg) {
  assert(p < graph_.size() && destSlot_[d] != kNoSlot);
  msg.valid = false;
  msg.dest = d;
  if (msg.trace == kInvalidTrace) msg.trace = nextTrace_++;
  buf_.write(cell(p, d)) = msg;
  notifyExternalMutation();
}

void MerlinSchweitzerProtocol::scrambleQueues(Rng& rng) {
  for (auto& q : queue_.rawMutable()) rng.shuffle(q);
  notifyExternalMutation();
}

void MerlinSchweitzerProtocol::restoreBuffer(NodeId p, NodeId d,
                                             const BaselineMessage& msg) {
  assert(p < graph_.size() && destSlot_[d] != kNoSlot);
  buf_.write(cell(p, d)) = msg;
  notifyExternalMutation();
}

void MerlinSchweitzerProtocol::setLastFlag(NodeId p, NodeId d,
                                           std::size_t neighborIndex,
                                           std::optional<BaselineFlag> flag) {
  assert(p < graph_.size() && destSlot_[d] != kNoSlot);
  assert(neighborIndex < graph_.degree(p));
  lastFlag_.write(cell(p, d))[neighborIndex] = flag;
  notifyExternalMutation();
}

void MerlinSchweitzerProtocol::setGenBit(NodeId p, NodeId d, std::uint8_t bit) {
  assert(p < graph_.size() && destSlot_[d] != kNoSlot);
  genBit_.write(cell(p, d)) = bit & 1;
  notifyExternalMutation();
}

void MerlinSchweitzerProtocol::setFairnessQueue(NodeId p, NodeId d,
                                                std::vector<NodeId> order) {
  assert(order.size() == graph_.degree(p) + 1);
#ifndef NDEBUG
  for (const NodeId c : order) {
    assert(c == p || graph_.hasEdge(p, c));
  }
#endif
  queue_.write(cell(p, d)) = std::move(order);
  notifyExternalMutation();
}

void MerlinSchweitzerProtocol::restoreOutboxEntry(NodeId p, NodeId dest,
                                                  Payload payload, TraceId trace) {
  assert(p < graph_.size() && destSlot_[dest] != kNoSlot);
  outbox_.write(p).push_back({dest, payload, trace});
  notifyExternalMutation();
}

}  // namespace snapfwd
