#include "baseline/orientation_forwarding.hpp"

#include <cassert>

namespace snapfwd {

// ---------------------------------------------------------------------------
// Covers
// ---------------------------------------------------------------------------

TreeUpDownScheme::TreeUpDownScheme(const Graph& graph, NodeId root)
    : root_(root), parent_(graph.size(), kNoNode) {
  assert(graph.isConnected() && graph.edgeCount() + 1 == graph.size() &&
         "TreeUpDownScheme requires a tree");
  // BFS from the root to orient every edge.
  const auto dist = graph.bfsDistances(root);
  parent_[root] = root;
  for (NodeId v = 0; v < graph.size(); ++v) {
    if (v == root) continue;
    for (const NodeId u : graph.neighbors(v)) {
      if (dist[u] + 1 == dist[v]) {
        parent_[v] = u;
        break;
      }
    }
    assert(parent_[v] != kNoNode);
  }
}

std::optional<std::size_t> TreeUpDownScheme::classAfterHop(NodeId u, NodeId v,
                                                           std::size_t cls) const {
  if (parent_[u] == v) {
    // Upward hop: only admissible while still in the up phase.
    return cls == 0 ? std::optional<std::size_t>{0} : std::nullopt;
  }
  if (parent_[v] == u) {
    // Downward hop: enters (or continues) the down phase.
    return 1;
  }
  return std::nullopt;  // not a tree edge
}

std::optional<std::size_t> UnidirectionalRingScheme::classAfterHop(
    NodeId u, NodeId v, std::size_t cls) const {
  if ((u + 1) % n_ != v) return std::nullopt;  // clockwise hops only
  if (u == n_ - 1) {
    // The dateline hop: bump. A route of length < n crosses it once.
    return cls == 0 ? std::optional<std::size_t>{1} : std::nullopt;
  }
  return cls;
}

TreePathRouting::TreePathRouting(const Graph& graph, const TreeUpDownScheme& scheme)
    : n_(graph.size()), next_(n_ * n_, kNoNode) {
  // Unique tree path: up toward the root while d is not in our subtree,
  // otherwise down toward d. BFS distances from every node suffice: the
  // tree's shortest path IS the tree path, and the min-distance neighbor
  // is the unique next hop.
  for (NodeId d = 0; d < n_; ++d) {
    const auto dist = graph.bfsDistances(d);
    for (NodeId p = 0; p < n_; ++p) {
      if (p == d) {
        next_[p * n_ + d] = p;
        continue;
      }
      for (const NodeId q : graph.neighbors(p)) {
        if (dist[q] + 1 == dist[p]) {
          next_[p * n_ + d] = q;
          break;
        }
      }
    }
  }
  (void)scheme;
}

NodeId TreePathRouting::nextHop(NodeId p, NodeId d) const {
  return next_[static_cast<std::size_t>(p) * n_ + d];
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

OrientationForwardingProtocol::OrientationForwardingProtocol(
    const Graph& graph, const RoutingProvider& routing,
    const BufferClassScheme& scheme)
    : graph_(graph),
      routing_(routing),
      scheme_(scheme),
      k_(scheme.classCount()) {
  buf_.configure(accessTrackerSlot(), k_);
  lastFlag_.configure(accessTrackerSlot(), k_);
  genBit_.configure(accessTrackerSlot(), graph.size());
  outbox_.configure(accessTrackerSlot(), 1);
  buf_.resize(graph.size() * k_);
  lastFlag_.resize(graph.size() * k_);
  genBit_.assign(graph.size() * graph.size(), 0);
  outbox_.resize(graph.size());
  for (NodeId p = 0; p < graph.size(); ++p) {
    for (std::size_t cls = 0; cls < k_; ++cls) {
      lastFlag_.write(cell(p, cls)).resize(graph.degree(p));
    }
  }
}

std::uint64_t OrientationForwardingProtocol::nowStep() const {
  return engine_ != nullptr ? engine_->stepCount() : 0;
}

std::uint64_t OrientationForwardingProtocol::nowRound() const {
  return engine_ != nullptr ? engine_->roundCount() : 0;
}

std::optional<std::size_t> OrientationForwardingProtocol::incomingClass(
    NodeId p, NodeId s, std::size_t cls) const {
  const auto& b = buf_.read(cell(s, cls));
  if (!b.has_value() || b->dest == s) return std::nullopt;
  if (routing_.nextHop(s, b->dest) != p) return std::nullopt;
  const auto target = scheme_.classAfterHop(s, p, cls);
  if (!target.has_value()) return std::nullopt;
  if (buf_.read(cell(p, *target)).has_value()) return std::nullopt;
  const auto slot = graph_.neighborIndex(p, s);
  if (!slot.has_value()) return std::nullopt;
  const auto& last = lastFlag_.read(cell(p, *target))[*slot];
  if (last.has_value() && *last == b->flag) return std::nullopt;
  return target;
}

void OrientationForwardingProtocol::enumerateEnabled(NodeId p,
                                                     std::vector<Action>& out) const {
  // O1: generate the waiting message into its initial class.
  if (request(p)) {
    const auto& waiting = outbox_.read(p).front();
    const std::size_t c0 = scheme_.initialClass(p, waiting.dest);
    if (!buf_.read(cell(p, c0)).has_value()) {
      out.push_back(Action{kO1Generate, kNoNode, 0});
    }
  }
  // O2: copy from a neighbor's class buffer routed through p.
  for (const NodeId s : graph_.neighbors(p)) {
    for (std::size_t cls = 0; cls < k_; ++cls) {
      if (incomingClass(p, s, cls).has_value()) {
        out.push_back(Action{kO2Copy, kNoNode,
                             static_cast<std::uint64_t>(s) * k_ + cls});
      }
    }
  }
  for (std::size_t cls = 0; cls < k_; ++cls) {
    const auto& b = buf_.read(cell(p, cls));
    if (!b.has_value()) continue;
    if (b->dest == p) {
      // O4: consume at the destination.
      out.push_back(Action{kO4Consume, kNoNode, cls});
      continue;
    }
    // O3: erase once the downstream copy is acknowledged.
    const NodeId v = routing_.nextHop(p, b->dest);
    const auto target = scheme_.classAfterHop(p, v, cls);
    if (!target.has_value()) continue;  // cover mismatch: hold (tests catch)
    const auto& vb = buf_.read(cell(v, *target));
    bool acked = vb.has_value() && vb->flag == b->flag;
    if (!acked) {
      const auto slot = graph_.neighborIndex(v, p);
      if (slot.has_value()) {
        const auto& last = lastFlag_.read(cell(v, *target))[*slot];
        acked = last.has_value() && *last == b->flag;
      }
    }
    if (acked) out.push_back(Action{kO3Erase, kNoNode, cls});
  }
}

void OrientationForwardingProtocol::stage(NodeId p, const Action& a) {
  StagedOp op;
  op.p = p;
  op.rule = a.rule;
  switch (a.rule) {
    case kO1Generate: {
      assert(request(p));
      const auto& waiting = outbox_.read(p).front();
      const std::size_t c0 = scheme_.initialClass(p, waiting.dest);
      assert(!buf_.read(cell(p, c0)).has_value());
      OrientMessage msg;
      msg.payload = waiting.payload;
      msg.dest = waiting.dest;
      msg.flag = {p, waiting.dest,
                  genBit_.read(static_cast<std::size_t>(p) * graph_.size() +
                               waiting.dest)};
      msg.trace = waiting.trace;
      msg.valid = true;
      msg.source = p;
      msg.bornStep = nowStep();
      msg.bornRound = nowRound();
      op.cls = c0;
      op.writeBuf = true;
      op.newBuf = msg;
      op.flipGenBit = true;
      op.popOutbox = true;
      op.generated = msg;
      break;
    }
    case kO2Copy: {
      const NodeId s = static_cast<NodeId>(a.aux / k_);
      const std::size_t cls = static_cast<std::size_t>(a.aux % k_);
      const auto target = incomingClass(p, s, cls);
      assert(target.has_value());
      const OrientMessage msg = *buf_.read(cell(s, cls));
      op.cls = *target;
      op.writeBuf = true;
      op.newBuf = msg;
      op.writeLastFlag = true;
      op.lastFlagSlot = *graph_.neighborIndex(p, s);
      op.newLastFlag = msg.flag;
      break;
    }
    case kO3Erase: {
      op.cls = static_cast<std::size_t>(a.aux);
      assert(buf_.read(cell(p, op.cls)).has_value());
      op.writeBuf = true;
      op.newBuf = std::nullopt;
      break;
    }
    case kO4Consume: {
      op.cls = static_cast<std::size_t>(a.aux);
      assert(buf_.read(cell(p, op.cls)).has_value());
      op.delivered = *buf_.read(cell(p, op.cls));
      op.writeBuf = true;
      op.newBuf = std::nullopt;
      break;
    }
    default:
      assert(false && "unknown orientation rule");
  }
  staged_.push_back(std::move(op));
}

void OrientationForwardingProtocol::commit(std::vector<NodeId>& written) {
  for (auto& op : staged_) {
    auditCommitOp(op.p, op.rule);
    written.push_back(op.p);  // every rule writes only p's buffers/flags
    const std::size_t idx = cell(op.p, op.cls);
    if (op.writeBuf) buf_.write(idx) = op.newBuf;
    if (op.writeLastFlag) lastFlag_.write(idx)[op.lastFlagSlot] = op.newLastFlag;
    if (op.flipGenBit && op.newBuf.has_value()) {
      genBit_.write(static_cast<std::size_t>(op.p) * graph_.size() +
                    op.newBuf->dest) ^= 1;
    }
    if (op.popOutbox) {
      auto& box = outbox_.write(op.p);
      assert(!box.empty());
      box.pop_front();
    }
    if (op.generated.has_value()) {
      generations_.push_back({*op.generated, nowStep(), nowRound()});
    }
    if (op.delivered.has_value()) {
      deliveries_.push_back({*op.delivered, op.p, nowStep(), nowRound()});
    }
  }
  staged_.clear();
}

TraceId OrientationForwardingProtocol::send(NodeId src, NodeId dest,
                                            Payload payload) {
  assert(src < graph_.size() && dest < graph_.size());
  const TraceId trace = nextTrace_++;
  outbox_.write(src).push_back({dest, payload, trace});
  notifyExternalMutation();  // outbox feeds src's generation guard
  return trace;
}

std::size_t OrientationForwardingProtocol::occupiedBufferCount() const {
  std::size_t count = 0;
  for (const auto& b : buf_.raw()) count += b.has_value() ? 1 : 0;
  return count;
}

bool OrientationForwardingProtocol::fullyDrained() const {
  if (occupiedBufferCount() != 0) return false;
  for (const auto& box : outbox_.raw()) {
    if (!box.empty()) return false;
  }
  return true;
}

void OrientationForwardingProtocol::restoreBuffer(NodeId p, std::size_t cls,
                                                  const OrientMessage& msg) {
  assert(p < graph_.size() && cls < k_);
  buf_.write(cell(p, cls)) = msg;
  notifyExternalMutation();
}

void OrientationForwardingProtocol::setLastFlag(NodeId p, std::size_t cls,
                                                std::size_t neighborIndex,
                                                std::optional<OrientFlag> flag) {
  assert(p < graph_.size() && cls < k_);
  assert(neighborIndex < graph_.degree(p));
  lastFlag_.write(cell(p, cls))[neighborIndex] = flag;
  notifyExternalMutation();
}

void OrientationForwardingProtocol::setGenBit(NodeId source, NodeId dest,
                                              std::uint8_t bit) {
  assert(source < graph_.size() && dest < graph_.size());
  genBit_.write(static_cast<std::size_t>(source) * graph_.size() + dest) = bit & 1;
  notifyExternalMutation();
}

void OrientationForwardingProtocol::restoreOutboxEntry(NodeId p, NodeId dest,
                                                       Payload payload,
                                                       TraceId trace) {
  assert(p < graph_.size() && dest < graph_.size());
  outbox_.write(p).push_back({dest, payload, trace});
  notifyExternalMutation();
}

}  // namespace snapfwd
