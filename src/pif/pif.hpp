#pragma once
// Snap-stabilizing PIF (Propagation of Information with Feedback) on
// rooted trees - the protocol family that INTRODUCED snap-stabilization
// (the paper's references [2, 3], Bui/Datta/Petit/Villain), implemented on
// the same state-model engine to show the framework hosts the whole
// protocol class, not just SSMFP.
//
// PIF: on request, the root broadcasts a wave down the tree; every
// processor participates; feedback returns bottom-up; the root learns the
// wave completed. Snap-stabilization: starting from ANY configuration,
// every requested wave starts in finite time, and every wave started by
// the starting action has FULL participation before the root announces
// completion.
//
// State: S_p in {B, F, C} (broadcast / feedback / clean), root without F.
// Rules (ids in parentheses; parent() per the fixed tree):
//   root:
//     (1) START    : request && S_r = C && all children C  -> S_r := B
//     (2) COMPLETE : S_r = B && all children F -> announce; S_r := C
//   non-root p:
//     (3) BROADCAST: S_p = C && S_parent = B && all children C -> S_p := B
//     (4) FEEDBACK : S_p = B && S_parent = B && all children F -> S_p := F
//     (5) CLEAN    : S_p = F && S_parent != B                  -> S_p := C
//     (6) ABORT    : S_p = B && S_parent != B                  -> S_p := F
//
// Why this is snap-stabilizing (the argument the tests verify
// empirically): a processor only reaches F from B via FEEDBACK while its
// parent is still B, and it only reaches B via BROADCAST when all its
// children are C - so when the root completes a wave it started, every
// F it sees transitively certifies a fresh B-participation of the whole
// subtree DURING this wave. Garbage B/F states abort/clean away before
// they can be double-counted, because BROADCAST requires clean children
// first. At most one completion can ever occur without a starting action
// (the initial configuration may already look completed); the checker
// counts such "invalid waves" exactly like SSMFP's invalid messages.

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "core/protocol.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace snapfwd {

enum class PifState : std::uint8_t { kClean = 0, kBroadcast = 1, kFeedback = 2 };

[[nodiscard]] const char* toString(PifState s);

enum PifRule : std::uint16_t {
  kPifStart = 1,
  kPifComplete = 2,
  kPifBroadcast = 3,
  kPifFeedback = 4,
  kPifClean = 5,
  kPifAbort = 6,
};

/// A completed wave, as observed at the root.
struct WaveRecord {
  bool valid = false;           // preceded by a START this execution
  std::uint64_t startStep = 0;  // step of the START (valid waves)
  std::uint64_t completeStep = 0;
  std::uint64_t participants = 0;  // processors with a BROADCAST in-window
};

class PifProtocol final : public Protocol {
 public:
  /// `graph` must be a tree (asserted); `root` its root.
  PifProtocol(const Graph& graph, NodeId root);

  // -- Protocol ---------------------------------------------------------
  [[nodiscard]] std::string_view name() const override { return "pif"; }
  void enumerateEnabled(NodeId p, std::vector<Action>& out) const override;
  void stage(NodeId p, const Action& a) override;
  void commit(std::vector<NodeId>& written) override;

  // -- Application interface ---------------------------------------------
  /// Queues one wave request at the root (the paper's request flag).
  void requestWave() {
    ++pendingRequests_;
    notifyExternalMutation();  // flips the root's START guard out-of-band
  }
  [[nodiscard]] std::size_t pendingRequests() const { return pendingRequests_; }

  // -- Observation -----------------------------------------------------------
  [[nodiscard]] PifState state(NodeId p) const { return state_.read(p); }
  [[nodiscard]] NodeId parent(NodeId p) const { return parent_[p]; }
  [[nodiscard]] NodeId root() const { return root_; }
  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] const std::vector<WaveRecord>& waves() const { return waves_; }
  [[nodiscard]] std::uint64_t startsExecuted() const { return starts_; }

  /// Steps of each processor's BROADCAST executions (the checker uses
  /// this to verify full participation per completed wave).
  [[nodiscard]] const std::vector<std::vector<std::uint64_t>>& broadcastSteps()
      const {
    return bSteps_;
  }

  /// Fault injection: arbitrary initial states.
  void scrambleStates(Rng& rng);
  void setState(NodeId p, PifState s);

  // -- Exact state restoration (binary codec; see explore/codec.hpp) -------
  /// Overwrites the root's request counter (START commits decrement it, so
  /// restoring a state must be able to rewind it too).
  void setPendingRequests(std::size_t pending) {
    pendingRequests_ = pending;
    notifyExternalMutation();
  }
  /// Drops accumulated wave/broadcast/start records; the explorer
  /// re-baselines its monitor per restored state.
  void clearEventRecordsForRestore() {
    waves_.clear();
    starts_ = 0;
    lastStartStep_ = 0;
    startSeen_ = false;
    for (auto& steps : bSteps_) steps.clear();
  }

  void attachEngine(const Engine* engine) { engine_ = engine; }

  /// True iff every processor is Clean (the silent idle configuration).
  [[nodiscard]] bool allClean() const;

 private:
  [[nodiscard]] bool allChildren(NodeId p, PifState s) const;
  [[nodiscard]] std::uint64_t nowStep() const;

  const Graph& graph_;
  NodeId root_;
  std::vector<NodeId> parent_;                 // parent_[root] == root
  std::vector<std::vector<NodeId>> children_;
  // S_p, the one observable variable per processor (parent_/children_ are
  // immutable tree structure, not state). pendingRequests_ is the root's
  // scalar request flag: accesses are recorded via auditRead/auditWrite
  // since it lives outside a CheckedStore.
  CheckedStore<PifState> state_;

  std::size_t pendingRequests_ = 0;
  std::uint64_t starts_ = 0;
  std::uint64_t lastStartStep_ = 0;
  bool startSeen_ = false;
  std::vector<WaveRecord> waves_;
  std::vector<std::vector<std::uint64_t>> bSteps_;
  const Engine* engine_ = nullptr;

  struct StagedOp {
    NodeId p;
    std::uint16_t rule;
    PifState newState;
  };
  std::vector<StagedOp> staged_;
};

}  // namespace snapfwd
