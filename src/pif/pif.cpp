#include "pif/pif.hpp"

#include <algorithm>
#include <cassert>

namespace snapfwd {

const char* toString(PifState s) {
  switch (s) {
    case PifState::kClean: return "C";
    case PifState::kBroadcast: return "B";
    case PifState::kFeedback: return "F";
  }
  return "?";
}

PifProtocol::PifProtocol(const Graph& graph, NodeId root)
    : graph_(graph),
      root_(root),
      parent_(graph.size(), kNoNode),
      children_(graph.size()),
      bSteps_(graph.size()) {
  assert(graph.isConnected() && graph.edgeCount() + 1 == graph.size() &&
         "PIF requires a tree");
  state_.configure(accessTrackerSlot(), 1);
  state_.assign(graph.size(), PifState::kClean);
  const auto dist = graph.bfsDistances(root);
  parent_[root] = root;
  for (NodeId v = 0; v < graph.size(); ++v) {
    if (v == root) continue;
    for (const NodeId u : graph.neighbors(v)) {
      if (dist[u] + 1 == dist[v]) {
        parent_[v] = u;
        children_[u].push_back(v);
        break;
      }
    }
    assert(parent_[v] != kNoNode);
  }
}

std::uint64_t PifProtocol::nowStep() const {
  return engine_ != nullptr ? engine_->stepCount() : 0;
}

bool PifProtocol::allChildren(NodeId p, PifState s) const {
  return std::all_of(children_[p].begin(), children_[p].end(),
                     [&](NodeId c) { return state_.read(c) == s; });
}

void PifProtocol::enumerateEnabled(NodeId p, std::vector<Action>& out) const {
  if (p == root_) {
    auditRead(root_);  // the request flag is the root's own variable
    if (pendingRequests_ > 0 && state_.read(p) == PifState::kClean &&
        allChildren(p, PifState::kClean)) {
      out.push_back(Action{kPifStart, kNoNode, 0});
    }
    if (state_.read(p) == PifState::kBroadcast &&
        allChildren(p, PifState::kFeedback)) {
      out.push_back(Action{kPifComplete, kNoNode, 0});
    }
    return;
  }
  const PifState parentState = state_.read(parent_[p]);
  switch (state_.read(p)) {
    case PifState::kClean:
      if (parentState == PifState::kBroadcast &&
          allChildren(p, PifState::kClean)) {
        out.push_back(Action{kPifBroadcast, kNoNode, 0});
      }
      break;
    case PifState::kBroadcast:
      if (parentState == PifState::kBroadcast &&
          allChildren(p, PifState::kFeedback)) {
        out.push_back(Action{kPifFeedback, kNoNode, 0});
      } else if (parentState != PifState::kBroadcast) {
        out.push_back(Action{kPifAbort, kNoNode, 0});
      }
      break;
    case PifState::kFeedback:
      if (parentState != PifState::kBroadcast) {
        out.push_back(Action{kPifClean, kNoNode, 0});
      }
      break;
  }
}

void PifProtocol::stage(NodeId p, const Action& a) {
  switch (a.rule) {
    case kPifStart:
      staged_.push_back({p, a.rule, PifState::kBroadcast});
      break;
    case kPifComplete:
      staged_.push_back({p, a.rule, PifState::kClean});
      break;
    case kPifBroadcast:
      staged_.push_back({p, a.rule, PifState::kBroadcast});
      break;
    case kPifFeedback:
      staged_.push_back({p, a.rule, PifState::kFeedback});
      break;
    case kPifClean:
      staged_.push_back({p, a.rule, PifState::kClean});
      break;
    case kPifAbort:
      staged_.push_back({p, a.rule, PifState::kFeedback});
      break;
    default:
      assert(false && "unknown PIF rule");
  }
}

void PifProtocol::commit(std::vector<NodeId>& written) {
  for (const auto& op : staged_) {
    auditCommitOp(op.p, op.rule);
    state_.write(op.p) = op.newState;
    written.push_back(op.p);  // state_ and pendingRequests_ are p's variables
    switch (op.rule) {
      case kPifStart:
        assert(pendingRequests_ > 0);
        auditWrite(root_);  // START consumes the root's request flag
        --pendingRequests_;
        ++starts_;
        startSeen_ = true;
        lastStartStep_ = nowStep();
        bSteps_[op.p].push_back(nowStep());  // the root participates at start
        break;
      case kPifBroadcast:
        bSteps_[op.p].push_back(nowStep());
        break;
      case kPifComplete: {
        WaveRecord wave;
        wave.valid = startSeen_;
        wave.startStep = lastStartStep_;
        wave.completeStep = nowStep();
        // Participation: processors whose latest BROADCAST falls in
        // [startStep, completeStep] (valid waves only; garbage completions
        // have no meaningful window).
        if (wave.valid) {
          for (NodeId q = 0; q < graph_.size(); ++q) {
            const auto& steps = bSteps_[q];
            if (!steps.empty() && steps.back() >= wave.startStep &&
                steps.back() <= wave.completeStep) {
              ++wave.participants;
            }
          }
        }
        waves_.push_back(wave);
        startSeen_ = false;  // the next completion needs its own start
        break;
      }
      default:
        break;
    }
  }
  staged_.clear();
}

void PifProtocol::scrambleStates(Rng& rng) {
  for (NodeId p = 0; p < graph_.size(); ++p) {
    const auto pick = rng.below(p == root_ ? 2 : 3);
    state_.write(p) = pick == 0 ? PifState::kClean
                                : (pick == 1 ? PifState::kBroadcast
                                             : PifState::kFeedback);
  }
  notifyExternalMutation();
}

void PifProtocol::setState(NodeId p, PifState s) {
  assert(p != root_ || s != PifState::kFeedback);
  state_.write(p) = s;
  notifyExternalMutation();
}

bool PifProtocol::allClean() const {
  return std::all_of(state_.raw().begin(), state_.raw().end(),
                     [](PifState s) { return s == PifState::kClean; });
}

}  // namespace snapfwd
