#include "checker/spec_checker.hpp"

#include "baseline/orientation_forwarding.hpp"

#include <sstream>
#include <unordered_map>

namespace snapfwd {

SpecReport checkSpec(const std::vector<GenEvent>& generated,
                     const std::vector<DelEvent>& delivered) {
  SpecReport report;
  struct PerTrace {
    NodeId dest = kNoNode;
    std::uint64_t deliveredCount = 0;
    bool misdelivered = false;
  };
  std::unordered_map<TraceId, PerTrace> traces;
  traces.reserve(generated.size());
  for (const auto& g : generated) {
    traces[g.trace].dest = g.dest;
  }
  report.validGenerated = generated.size();

  for (const auto& d : delivered) {
    if (!d.valid) {
      ++report.invalidDelivered;
      continue;
    }
    const auto it = traces.find(d.trace);
    if (it == traces.end()) {
      // A delivery marked valid without a matching generation record is a
      // bookkeeping impossibility; count it as an invalid delivery.
      ++report.invalidDelivered;
      continue;
    }
    ++report.validDelivered;
    ++it->second.deliveredCount;
    if (d.at != it->second.dest) it->second.misdelivered = true;
  }

  for (const auto& [trace, info] : traces) {
    if (info.deliveredCount == 0) {
      ++report.lostTraces;
      report.lost.push_back(trace);
    } else if (info.deliveredCount > 1) {
      ++report.duplicatedTraces;
      report.duplicated.push_back(trace);
    }
    if (info.misdelivered) ++report.misdelivered;
  }
  return report;
}

SpecReport checkSpec(const ForwardingProtocol& protocol) {
  std::vector<GenEvent> gen;
  gen.reserve(protocol.generations().size());
  for (const auto& g : protocol.generations()) {
    gen.push_back({g.msg.trace, g.msg.dest});
  }
  std::vector<DelEvent> del;
  del.reserve(protocol.deliveries().size());
  for (const auto& d : protocol.deliveries()) {
    del.push_back({d.msg.trace, d.msg.valid, d.at});
  }
  return checkSpec(gen, del);
}

SpecReport checkSpec(const MerlinSchweitzerProtocol& protocol) {
  std::vector<GenEvent> gen;
  gen.reserve(protocol.generations().size());
  for (const auto& g : protocol.generations()) {
    gen.push_back({g.msg.trace, g.msg.dest});
  }
  std::vector<DelEvent> del;
  del.reserve(protocol.deliveries().size());
  for (const auto& d : protocol.deliveries()) {
    del.push_back({d.msg.trace, d.msg.valid, d.at});
  }
  return checkSpec(gen, del);
}

SpecReport checkSpec(const OrientationForwardingProtocol& protocol) {
  std::vector<GenEvent> gen;
  gen.reserve(protocol.generations().size());
  for (const auto& g : protocol.generations()) {
    gen.push_back({g.msg.trace, g.msg.dest});
  }
  std::vector<DelEvent> del;
  del.reserve(protocol.deliveries().size());
  for (const auto& d : protocol.deliveries()) {
    del.push_back({d.msg.trace, d.msg.valid, d.at});
  }
  return checkSpec(gen, del);
}

std::string SpecReport::summary() const {
  std::ostringstream out;
  out << "generated=" << validGenerated << " delivered=" << validDelivered
      << " lost=" << lostTraces << " duplicated=" << duplicatedTraces
      << " misdelivered=" << misdelivered << " invalid_delivered="
      << invalidDelivered << " SP=" << (satisfiesSp() ? "yes" : "NO")
      << " SP'=" << (satisfiesSpPrime() ? "yes" : "NO");
  return out.str();
}

}  // namespace snapfwd
