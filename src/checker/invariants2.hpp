#pragma once
// Per-step invariant battery for SSMFP2 executions, mirroring
// checker/invariants.hpp for the rank-indexed slot ladder:
//
//   I1' well-formedness: every occupied slot holds color <= Delta and
//       lastHop in N_p u {p} (the injection surface preserves this even
//       for initial garbage);
//   I2' conservation: every valid generated trace not yet delivered still
//       occupies at least one slot (no erasure rule can take the last
//       valid copy: 2R4/2R5 fire only while the partner copy exists and
//       2R8 only matches rank-inconsistent copies, which valid executions
//       never produce);
//   I3' single ready copy: a valid trace owns at most one ready-state slot
//       at a time (2R2 promotes only after the upstream 2R4 erasure, the
//       rank-sliced color handshake);
//   I4' exactly-once so far: no valid trace delivered twice, and always at
//       its destination, checked online.
//
// There is no caterpillar battery here: the rank ladder's shape invariant
// IS the rank index, which 2R8's footprint check covers syntactically.
//
// The file also hosts makeInvariantMonitor(), the family dispatch point:
// callers holding a ForwardingProtocol& get the right battery without
// naming a family.

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "checker/invariants.hpp"
#include "ssmfp2/ssmfp2.hpp"

namespace snapfwd {

// -- Stateless per-configuration checks --------------------------------------

/// I1': every occupied slot holds color <= Delta and lastHop in N_p u {p}.
[[nodiscard]] std::optional<std::string> checkSlotWellFormedness(
    const Ssmfp2Protocol& protocol);

/// I3': a valid trace occupies at most one ready-state slot.
[[nodiscard]] std::optional<std::string> checkSingleReadyCopy(
    const Ssmfp2Protocol& protocol);

/// I2' against an explicit outstanding set (valid traces generated but not
/// yet delivered): each must still occupy at least one slot.
[[nodiscard]] std::optional<std::string> checkSlotConservation(
    const Ssmfp2Protocol& protocol, const std::vector<TraceId>& outstanding);

class Ssmfp2InvariantMonitor final : public StepInvariantMonitor {
 public:
  explicit Ssmfp2InvariantMonitor(const Ssmfp2Protocol& protocol)
      : protocol_(protocol) {}

  [[nodiscard]] std::optional<std::string> check() override;

  [[nodiscard]] std::uint64_t checksRun() const override { return checksRun_; }

 private:
  const Ssmfp2Protocol& protocol_;
  std::uint64_t checksRun_ = 0;
  std::unordered_set<TraceId> deliveredValid_;
  std::size_t deliveriesSeen_ = 0;
};

/// Family dispatch: the battery matching protocol.family(). The protocol
/// must outlive the returned monitor.
[[nodiscard]] std::unique_ptr<StepInvariantMonitor> makeInvariantMonitor(
    const ForwardingProtocol& protocol);

}  // namespace snapfwd
