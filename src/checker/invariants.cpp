#include "checker/invariants.hpp"

#include <sstream>

#include "checker/caterpillar.hpp"

namespace snapfwd {
namespace {

/// Walks every occupied buffer as f(p, d, buffer, isReception); the first
/// non-nullopt result aborts the sweep.
template <typename F>
std::optional<std::string> forEachOccupied(const SsmfpProtocol& protocol, F&& f) {
  const Graph& g = protocol.graph();
  for (NodeId p = 0; p < g.size(); ++p) {
    for (const NodeId d : protocol.destinations()) {
      const Buffer& r = protocol.bufR(p, d);
      if (r.has_value()) {
        if (auto v = f(p, d, *r, true)) return v;
      }
      const Buffer& e = protocol.bufE(p, d);
      if (e.has_value()) {
        if (auto v = f(p, d, *e, false)) return v;
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> checkBufferWellFormedness(
    const SsmfpProtocol& protocol) {
  const Graph& g = protocol.graph();
  return forEachOccupied(
      protocol,
      [&](NodeId p, NodeId d, const Message& b,
          bool reception) -> std::optional<std::string> {
        if (b.color > protocol.delta()) {
          std::ostringstream out;
          out << "I1 violated: " << (reception ? "bufR" : "bufE") << "_" << p
              << "(" << d << ") holds color " << b.color
              << " > Delta=" << protocol.delta();
          return out.str();
        }
        if (b.lastHop != p && !g.hasEdge(p, b.lastHop)) {
          std::ostringstream out;
          out << "I1 violated: " << (reception ? "bufR" : "bufE") << "_" << p
              << "(" << d << ") lastHop " << b.lastHop << " not in N_p u {p}";
          return out.str();
        }
        return std::nullopt;
      });
}

std::optional<std::string> checkSingleEmissionCopy(const SsmfpProtocol& protocol) {
  std::unordered_map<TraceId, std::uint32_t> emissionCopies;
  (void)forEachOccupied(protocol,
                        [&](NodeId, NodeId, const Message& b,
                            bool reception) -> std::optional<std::string> {
                          if (b.valid && !reception) ++emissionCopies[b.trace];
                          return std::nullopt;
                        });
  for (const auto& [trace, count] : emissionCopies) {
    if (count > 1) {
      std::ostringstream out;
      out << "I3 violated: valid trace " << trace << " occupies " << count
          << " emission buffers";
      return out.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> checkConservation(
    const SsmfpProtocol& protocol, const std::vector<TraceId>& outstanding) {
  if (outstanding.empty()) return std::nullopt;
  std::unordered_set<TraceId> present;
  (void)forEachOccupied(protocol,
                        [&](NodeId, NodeId, const Message& b,
                            bool) -> std::optional<std::string> {
                          if (b.valid) present.insert(b.trace);
                          return std::nullopt;
                        });
  for (const TraceId trace : outstanding) {
    if (present.count(trace) == 0) {
      std::ostringstream out;
      out << "I2 violated: valid trace " << trace
          << " vanished without delivery";
      return out.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> checkCaterpillarCoverage(const SsmfpProtocol& protocol) {
  // Classification is total by construction; classifyBuffers asserts
  // occupancy and covers every occupied buffer, so just exercise it.
  (void)classifyBuffers(protocol);
  return std::nullopt;
}

std::optional<std::string> InvariantMonitor::check() {
  ++checksRun_;

  // Ingest new deliveries (I4: exactly-once online).
  const auto& deliveries = protocol_.deliveries();
  for (; deliveriesSeen_ < deliveries.size(); ++deliveriesSeen_) {
    const auto& rec = deliveries[deliveriesSeen_];
    if (!rec.msg.valid) continue;
    if (!deliveredValid_.insert(rec.msg.trace).second) {
      std::ostringstream out;
      out << "I4 violated: valid trace " << rec.msg.trace
          << " delivered more than once (payload=" << rec.msg.payload << ")";
      return out.str();
    }
    if (rec.at != rec.msg.dest) {
      std::ostringstream out;
      out << "I4 violated: valid trace " << rec.msg.trace << " delivered at "
          << rec.at << " instead of " << rec.msg.dest;
      return out.str();
    }
  }

  if (auto v = checkBufferWellFormedness(protocol_)) return v;
  if (auto v = checkSingleEmissionCopy(protocol_)) return v;

  // I2: every generated-but-undelivered valid trace has >= 1 copy.
  std::vector<TraceId> outstanding;
  for (const auto& gen : protocol_.generations()) {
    if (deliveredValid_.count(gen.msg.trace) == 0) {
      outstanding.push_back(gen.msg.trace);
    }
  }
  if (auto v = checkConservation(protocol_, outstanding)) return v;

  if (auto v = checkCaterpillarCoverage(protocol_)) return v;

  return std::nullopt;
}

}  // namespace snapfwd
