#include "checker/invariants.hpp"

#include <sstream>

#include "checker/caterpillar.hpp"

namespace snapfwd {

std::optional<std::string> InvariantMonitor::check() {
  ++checksRun_;
  const Graph& g = protocol_.graph();

  // Ingest new deliveries (I4: exactly-once online).
  const auto& deliveries = protocol_.deliveries();
  for (; deliveriesSeen_ < deliveries.size(); ++deliveriesSeen_) {
    const auto& rec = deliveries[deliveriesSeen_];
    if (!rec.msg.valid) continue;
    if (!deliveredValid_.insert(rec.msg.trace).second) {
      std::ostringstream out;
      out << "I4 violated: valid trace " << rec.msg.trace
          << " delivered more than once (payload=" << rec.msg.payload << ")";
      return out.str();
    }
    if (rec.at != rec.msg.dest) {
      std::ostringstream out;
      out << "I4 violated: valid trace " << rec.msg.trace << " delivered at "
          << rec.at << " instead of " << rec.msg.dest;
      return out.str();
    }
  }

  // Sweep buffers: I1, I3 and copy census for I2.
  std::unordered_map<TraceId, std::uint32_t> copies;
  std::unordered_map<TraceId, std::uint32_t> emissionCopies;
  auto checkBuffer = [&](NodeId p, NodeId d, const Buffer& b, bool reception)
      -> std::optional<std::string> {
    if (!b.has_value()) return std::nullopt;
    if (b->color > protocol_.delta()) {
      std::ostringstream out;
      out << "I1 violated: " << (reception ? "bufR" : "bufE") << "_" << p << "("
          << d << ") holds color " << b->color << " > Delta=" << protocol_.delta();
      return out.str();
    }
    if (b->lastHop != p && !g.hasEdge(p, b->lastHop)) {
      std::ostringstream out;
      out << "I1 violated: " << (reception ? "bufR" : "bufE") << "_" << p << "("
          << d << ") lastHop " << b->lastHop << " not in N_p u {p}";
      return out.str();
    }
    if (b->valid) {
      ++copies[b->trace];
      if (!reception) ++emissionCopies[b->trace];
    }
    return std::nullopt;
  };

  for (NodeId p = 0; p < g.size(); ++p) {
    for (const NodeId d : protocol_.destinations()) {
      if (auto v = checkBuffer(p, d, protocol_.bufR(p, d), true)) return v;
      if (auto v = checkBuffer(p, d, protocol_.bufE(p, d), false)) return v;
    }
  }

  // I3: at most one emission copy per valid trace.
  for (const auto& [trace, count] : emissionCopies) {
    if (count > 1) {
      std::ostringstream out;
      out << "I3 violated: valid trace " << trace << " occupies " << count
          << " emission buffers";
      return out.str();
    }
  }

  // I2: every generated-but-undelivered valid trace has >= 1 copy.
  for (const auto& gen : protocol_.generations()) {
    const TraceId trace = gen.msg.trace;
    if (deliveredValid_.count(trace) != 0) continue;
    if (copies.find(trace) == copies.end()) {
      std::ostringstream out;
      out << "I2 violated: valid trace " << trace << " (payload="
          << gen.msg.payload << ", " << gen.msg.source << "->" << gen.msg.dest
          << ") vanished without delivery";
      return out.str();
    }
  }

  // I5: classification is total by construction; classifyBuffers asserts
  // occupancy and covers every occupied buffer, so just exercise it.
  (void)classifyBuffers(protocol_);

  return std::nullopt;
}

}  // namespace snapfwd
