#pragma once
// Deadlock diagnosis: when a forwarding system wedges (engine terminal
// but buffers still occupied), extract the circular wait that explains it.
//
// A store-and-forward deadlock is a cycle in the wait-for relation over
// occupied buffers: each buffer's message waits for the next buffer on
// its route, which is occupied by a message waiting further along, back
// to the start. The Merlin-Schweitzer acyclic-buffer-graph theorem says
// this cannot happen when the buffer graph is acyclic; these helpers make
// the failing case inspectable when it IS cyclic (frozen corrupted
// tables, the naive single-class ring, ...).

#include <optional>
#include <string>
#include <vector>

#include "baseline/merlin_schweitzer.hpp"
#include "ssmfp/ssmfp.hpp"

namespace snapfwd {

/// One buffer in a circular wait.
struct WaitForNode {
  NodeId p = kNoNode;
  NodeId d = kNoNode;       // destination of the occupying message
  Payload payload = 0;      // of the occupying message
  const char* kind = "buf"; // "buf" (baseline) / "bufR" / "bufE" (SSMFP)
};

/// A circular wait: node[i] waits for node[i+1], the last for the first.
struct DeadlockCycle {
  std::vector<WaitForNode> cycle;
  [[nodiscard]] std::string describe() const;
};

/// Searches the baseline's wait-for relation (buf_p(d) -> buf_{nextHop}(d))
/// for a cycle of occupied buffers; nullopt when none exists.
[[nodiscard]] std::optional<DeadlockCycle> findForwardingCycle(
    const MerlinSchweitzerProtocol& protocol, const RoutingProvider& routing);

/// Same for SSMFP's two-buffer scheme (bufE_p(d) -> bufR/bufE at the next
/// hop). With a self-stabilizing routing layer this returns nullopt once
/// tables are silent (the acyclicity theorem); with frozen corrupted
/// tables it exhibits the trap messages circulate in.
[[nodiscard]] std::optional<DeadlockCycle> findForwardingCycle(
    const SsmfpProtocol& protocol);

}  // namespace snapfwd
