#pragma once
// Caterpillar classification (paper Definition 3, Figure 4).
//
// For a message m of destination d existing on processor p:
//   type 1: bufR_p(d) = (m,q,c) and (bufE_q(d) != (m,.,c) or q = p)
//           -- a lone reception copy, ready for the internal move R2;
//   type 2: bufE_p(d) = (m,q,c) and bufR_{nextHop_p(d)}(d) != (m,p,c)
//           -- an emission copy whose downstream copy does not exist yet;
//   type 3: bufE_p(d) = (m,q',c) and exists q in N_p: bufR_q(d) = (m,p,c)
//           -- an emission copy with at least one downstream reception copy
//           (possibly several, due to initial garbage / table moves).
// A reception buffer that is not type 1 is the *tail* of an upstream
// type-3 caterpillar. The proof of Lemma 1 walks a message's caterpillar
// through 1 -> 2 -> 3 -> (1 at the next hop); the classifier below lets
// tests observe exactly that progression and check coverage (every
// occupied buffer is classified) at every step.

#include <cstdint>
#include <string>
#include <vector>

#include "ssmfp/ssmfp.hpp"

namespace snapfwd {

enum class CaterpillarType : std::uint8_t {
  kType1,  // lone reception copy
  kType2,  // emission copy, no downstream copy
  kType3,  // emission copy with downstream copy/copies
  kTail,   // reception copy belonging to an upstream type-3 caterpillar
};

[[nodiscard]] const char* toString(CaterpillarType type);

struct BufferClass {
  NodeId p = kNoNode;
  NodeId d = kNoNode;
  bool reception = false;  // true: bufR_p(d); false: bufE_p(d)
  CaterpillarType type = CaterpillarType::kType1;
  Message msg;
};

/// Classifies every occupied buffer of the protocol.
[[nodiscard]] std::vector<BufferClass> classifyBuffers(const SsmfpProtocol& protocol);

/// Classifies one occupied buffer (asserts occupancy).
[[nodiscard]] CaterpillarType classifyReception(const SsmfpProtocol& protocol,
                                                NodeId p, NodeId d);
[[nodiscard]] CaterpillarType classifyEmission(const SsmfpProtocol& protocol,
                                               NodeId p, NodeId d);

/// Counts per type, for trace printing and the Figure 4 experiment.
struct CaterpillarCensus {
  std::uint64_t type1 = 0;
  std::uint64_t type2 = 0;
  std::uint64_t type3 = 0;
  std::uint64_t tails = 0;
};
[[nodiscard]] CaterpillarCensus censusOf(const SsmfpProtocol& protocol);

}  // namespace snapfwd
