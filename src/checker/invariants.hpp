#pragma once
// Per-step invariant battery for SSMFP executions.
//
// An InvariantMonitor is checked after every committed step (tests install
// it via Engine::setPostStepHook). It verifies structural properties that
// the paper's proof relies on:
//
//   I1  well-formedness: every occupied buffer holds color <= Delta and
//       lastHop in N_p u {p} (or at least a valid node id for garbage);
//   I2  conservation: every valid generated trace that has not been
//       delivered still has at least one copy in some buffer (Lemma 4 -
//       no valid message is lost);
//   I3  single emission copy: a valid trace occupies at most one emission
//       buffer at a time (the color handshake forbids a second R2 before
//       the upstream R4);
//   I4  exactly-once so far: no valid trace has been delivered twice
//       (Lemma 5), checked online rather than only at quiescence;
//   I5  caterpillar coverage: every occupied buffer classifies as
//       type 1/2/3 or as the tail of an upstream type-3 (Definition 3 is
//       exhaustive).
//
// check() returns the first violation found as a human-readable string, or
// std::nullopt. Tests fail on the first violation with full context.

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ssmfp/ssmfp.hpp"

namespace snapfwd {

// -- Stateless per-configuration checks --------------------------------------
// Shared between the per-step InvariantMonitor and the state-space explorer
// (src/explore/), which evaluates them at every reached configuration and
// carries the execution history (outstanding traces) inside the explored
// state itself.

/// I1: every occupied buffer holds color <= Delta and lastHop in N_p u {p}.
[[nodiscard]] std::optional<std::string> checkBufferWellFormedness(
    const SsmfpProtocol& protocol);

/// I3: a valid trace occupies at most one emission buffer.
[[nodiscard]] std::optional<std::string> checkSingleEmissionCopy(
    const SsmfpProtocol& protocol);

/// I2 against an explicit outstanding set (valid traces generated but not
/// yet delivered): each must still occupy at least one buffer.
[[nodiscard]] std::optional<std::string> checkConservation(
    const SsmfpProtocol& protocol, const std::vector<TraceId>& outstanding);

/// I5: Definition 3 is exhaustive - every occupied buffer classifies
/// (classifyBuffers asserts coverage; this wraps it as a check).
[[nodiscard]] std::optional<std::string> checkCaterpillarCoverage(
    const SsmfpProtocol& protocol);

/// Family-agnostic face of a per-step invariant battery: tests and the
/// auditor hold one of these and dispatch through makeInvariantMonitor()
/// (checker/invariants2.hpp) when the forwarding family is not fixed at
/// compile time.
class StepInvariantMonitor {
 public:
  virtual ~StepInvariantMonitor() = default;

  /// Checks the family's invariants against the current configuration;
  /// remembers delivery progress between calls. Call after every committed
  /// step; returns the first violation as a human-readable string.
  [[nodiscard]] virtual std::optional<std::string> check() = 0;

  [[nodiscard]] virtual std::uint64_t checksRun() const = 0;
};

class InvariantMonitor final : public StepInvariantMonitor {
 public:
  explicit InvariantMonitor(const SsmfpProtocol& protocol) : protocol_(protocol) {}

  /// Checks I1..I5 against the current configuration; remembers delivery
  /// progress between calls. Call after every committed step.
  [[nodiscard]] std::optional<std::string> check() override;

  [[nodiscard]] std::uint64_t checksRun() const override { return checksRun_; }

 private:
  const SsmfpProtocol& protocol_;
  std::uint64_t checksRun_ = 0;
  std::unordered_set<TraceId> deliveredValid_;
  std::size_t deliveriesSeen_ = 0;
};

}  // namespace snapfwd
