#pragma once
// Specification oracles for SP and SP' (paper Specifications 1 and 2).
//
// SP  : every message can be generated in finite time, and every VALID
//       message is delivered to its destination ONCE AND ONLY ONCE in
//       finite time (no loss, no duplication).
// SP' : as SP but duplications allowed (used as the proof's stepping stone).
//
// The oracle works on the event streams recorded by the protocols: each
// generated message carries a unique trace id invisible to the protocol's
// guards, so exactly-once is decidable even under payload collisions. A
// run is judged at quiescence: with all traffic submitted and the engine
// terminal, "finite time" reduces to "has happened".

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/merlin_schweitzer.hpp"
#include "fwd/forwarding.hpp"

namespace snapfwd {

struct SpecReport {
  std::uint64_t validGenerated = 0;
  std::uint64_t validDelivered = 0;       // counting multiplicity
  std::uint64_t duplicatedTraces = 0;     // valid traces delivered > once
  std::uint64_t lostTraces = 0;           // valid traces generated, never delivered
  std::uint64_t misdelivered = 0;         // valid traces delivered to a non-destination
  std::uint64_t invalidDelivered = 0;     // deliveries of initial garbage
  std::vector<TraceId> duplicated;
  std::vector<TraceId> lost;

  /// SP' (duplication allowed): every valid generated trace delivered >= 1x
  /// to the right place.
  [[nodiscard]] bool satisfiesSpPrime() const {
    return lostTraces == 0 && misdelivered == 0;
  }
  /// SP: SP' and no duplication.
  [[nodiscard]] bool satisfiesSp() const {
    return satisfiesSpPrime() && duplicatedTraces == 0;
  }

  [[nodiscard]] std::string summary() const;

  friend bool operator==(const SpecReport&, const SpecReport&) = default;
};

/// Core oracle over (trace, valid, dest) generation tuples and
/// (trace, valid, at) delivery tuples.
struct GenEvent {
  TraceId trace;
  NodeId dest;
};
struct DelEvent {
  TraceId trace;
  bool valid;
  NodeId at;
};
[[nodiscard]] SpecReport checkSpec(const std::vector<GenEvent>& generated,
                                   const std::vector<DelEvent>& delivered);

/// Convenience adapters for the protocols. Any family behind the
/// ForwardingProtocol surface (ssmfp, ssmfp2, ...) shares one adapter.
[[nodiscard]] SpecReport checkSpec(const ForwardingProtocol& protocol);
[[nodiscard]] SpecReport checkSpec(const MerlinSchweitzerProtocol& protocol);
[[nodiscard]] SpecReport checkSpec(const class OrientationForwardingProtocol& protocol);

}  // namespace snapfwd
