#include "checker/deadlock.hpp"

#include <sstream>
#include <functional>
#include <unordered_map>

namespace snapfwd {
namespace {

/// Generic cycle search over a wait-for successor function on integer
/// vertex ids. successor(v) returns the waited-for vertex or SIZE_MAX.
std::optional<std::vector<std::size_t>> findCycle(
    std::size_t vertexCount,
    const std::function<std::size_t(std::size_t)>& successor) {
  constexpr std::size_t kNone = ~std::size_t{0};
  // Functional-graph cycle detection with coloring.
  std::vector<std::uint8_t> color(vertexCount, 0);  // 0 new, 1 active, 2 done
  std::vector<std::size_t> order;
  for (std::size_t start = 0; start < vertexCount; ++start) {
    if (color[start] != 0) continue;
    order.clear();
    std::size_t v = start;
    while (v != kNone && color[v] == 0) {
      color[v] = 1;
      order.push_back(v);
      v = successor(v);
    }
    if (v != kNone && color[v] == 1) {
      // Found: the cycle is the suffix of `order` starting at v.
      std::vector<std::size_t> cycle;
      bool in = false;
      for (const std::size_t u : order) {
        in |= (u == v);
        if (in) cycle.push_back(u);
      }
      return cycle;
    }
    for (const std::size_t u : order) color[u] = 2;
  }
  return std::nullopt;
}

}  // namespace

std::string DeadlockCycle::describe() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const auto& node = cycle[i];
    if (i != 0) out << " -> ";
    out << node.kind << "_" << node.p << "(d=" << node.d
        << ", payload=" << node.payload << ")";
  }
  out << " -> (back to start)";
  return out.str();
}

std::optional<DeadlockCycle> findForwardingCycle(
    const MerlinSchweitzerProtocol& protocol, const RoutingProvider& routing) {
  const Graph& g = protocol.graph();
  const auto& dests = protocol.destinations();
  const std::size_t cells = g.size() * dests.size();
  std::unordered_map<NodeId, std::size_t> slot;
  for (std::size_t i = 0; i < dests.size(); ++i) slot[dests[i]] = i;

  auto cellOf = [&](NodeId p, NodeId d) {
    return static_cast<std::size_t>(p) * dests.size() + slot.at(d);
  };
  auto successor = [&](std::size_t cell) -> std::size_t {
    const NodeId p = static_cast<NodeId>(cell / dests.size());
    const NodeId d = dests[cell % dests.size()];
    const auto& b = protocol.buffer(p, d);
    if (!b.has_value() || p == b->dest) return ~std::size_t{0};
    const NodeId h = routing.nextHop(p, b->dest);
    const std::size_t next = cellOf(h, d);
    return protocol.buffer(h, d).has_value() ? next : ~std::size_t{0};
  };
  const auto cycle = findCycle(cells, successor);
  if (!cycle.has_value()) return std::nullopt;
  DeadlockCycle result;
  for (const std::size_t cell : *cycle) {
    const NodeId p = static_cast<NodeId>(cell / dests.size());
    const NodeId d = dests[cell % dests.size()];
    result.cycle.push_back({p, d, protocol.buffer(p, d)->payload, "buf"});
  }
  return result;
}

std::optional<DeadlockCycle> findForwardingCycle(const SsmfpProtocol& protocol) {
  const Graph& g = protocol.graph();
  const auto& dests = protocol.destinations();
  // Vertex encoding: 2 * (p * |dests| + slot) + (0 = bufR, 1 = bufE).
  const std::size_t cells = 2 * g.size() * dests.size();
  std::unordered_map<NodeId, std::size_t> slot;
  for (std::size_t i = 0; i < dests.size(); ++i) slot[dests[i]] = i;
  auto encode = [&](NodeId p, NodeId d, bool emission) {
    return 2 * (static_cast<std::size_t>(p) * dests.size() + slot.at(d)) +
           (emission ? 1 : 0);
  };
  auto successor = [&](std::size_t v) -> std::size_t {
    const bool emission = (v % 2) == 1;
    const std::size_t cell = v / 2;
    const NodeId p = static_cast<NodeId>(cell / dests.size());
    const NodeId d = dests[cell % dests.size()];
    if (!emission) {
      // bufR_p(d)'s internal move waits for bufE_p(d).
      if (!protocol.bufR(p, d).has_value()) return ~std::size_t{0};
      return protocol.bufE(p, d).has_value() ? encode(p, d, true)
                                             : ~std::size_t{0};
    }
    // bufE_p(d)'s hop move waits for bufR at the routed next hop.
    const auto& e = protocol.bufE(p, d);
    if (!e.has_value() || p == d) return ~std::size_t{0};
    const NodeId h = protocol.routing().nextHop(p, d);
    return protocol.bufR(h, d).has_value() ? encode(h, d, false)
                                           : ~std::size_t{0};
  };
  const auto cycle = findCycle(cells, successor);
  if (!cycle.has_value()) return std::nullopt;
  DeadlockCycle result;
  for (const std::size_t v : *cycle) {
    const bool emission = (v % 2) == 1;
    const std::size_t cell = v / 2;
    const NodeId p = static_cast<NodeId>(cell / dests.size());
    const NodeId d = dests[cell % dests.size()];
    const Buffer& b = emission ? protocol.bufE(p, d) : protocol.bufR(p, d);
    result.cycle.push_back({p, d, b->payload, emission ? "bufE" : "bufR"});
  }
  return result;
}

}  // namespace snapfwd
