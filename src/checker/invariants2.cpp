#include "checker/invariants2.hpp"

#include <cassert>
#include <sstream>
#include <unordered_map>

#include "ssmfp/ssmfp.hpp"

namespace snapfwd {
namespace {

/// Walks every occupied slot as f(p, k, buffer, state); the first
/// non-nullopt result aborts the sweep.
template <typename F>
std::optional<std::string> forEachOccupiedSlot(const Ssmfp2Protocol& protocol,
                                               F&& f) {
  const Graph& g = protocol.graph();
  for (NodeId p = 0; p < g.size(); ++p) {
    for (std::uint32_t k = 0; k <= protocol.maxRank(); ++k) {
      const Buffer& b = protocol.slot(p, k);
      if (!b.has_value()) continue;
      if (auto v = f(p, k, *b, protocol.slotState(p, k))) return v;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> checkSlotWellFormedness(
    const Ssmfp2Protocol& protocol) {
  const Graph& g = protocol.graph();
  return forEachOccupiedSlot(
      protocol,
      [&](NodeId p, std::uint32_t k, const Message& b,
          SlotState) -> std::optional<std::string> {
        if (b.color > protocol.delta()) {
          std::ostringstream out;
          out << "I1' violated: slot_" << p << "[" << k << "] holds color "
              << b.color << " > Delta=" << protocol.delta();
          return out.str();
        }
        if (b.lastHop != p && !g.hasEdge(p, b.lastHop)) {
          std::ostringstream out;
          out << "I1' violated: slot_" << p << "[" << k << "] lastHop "
              << b.lastHop << " not in N_p u {p}";
          return out.str();
        }
        return std::nullopt;
      });
}

std::optional<std::string> checkSingleReadyCopy(const Ssmfp2Protocol& protocol) {
  std::unordered_map<TraceId, std::uint32_t> readyCopies;
  (void)forEachOccupiedSlot(protocol,
                            [&](NodeId, std::uint32_t, const Message& b,
                                SlotState s) -> std::optional<std::string> {
                              if (b.valid && s == SlotState::kReady) {
                                ++readyCopies[b.trace];
                              }
                              return std::nullopt;
                            });
  for (const auto& [trace, count] : readyCopies) {
    if (count > 1) {
      std::ostringstream out;
      out << "I3' violated: valid trace " << trace << " occupies " << count
          << " ready slots";
      return out.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> checkSlotConservation(
    const Ssmfp2Protocol& protocol, const std::vector<TraceId>& outstanding) {
  if (outstanding.empty()) return std::nullopt;
  std::unordered_set<TraceId> present;
  (void)forEachOccupiedSlot(protocol,
                            [&](NodeId, std::uint32_t, const Message& b,
                                SlotState) -> std::optional<std::string> {
                              if (b.valid) present.insert(b.trace);
                              return std::nullopt;
                            });
  for (const TraceId trace : outstanding) {
    if (present.count(trace) == 0) {
      std::ostringstream out;
      out << "I2' violated: valid trace " << trace
          << " vanished without delivery";
      return out.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> Ssmfp2InvariantMonitor::check() {
  ++checksRun_;

  // Ingest new deliveries (I4': exactly-once online).
  const auto& deliveries = protocol_.deliveries();
  for (; deliveriesSeen_ < deliveries.size(); ++deliveriesSeen_) {
    const auto& rec = deliveries[deliveriesSeen_];
    if (!rec.msg.valid) continue;
    if (!deliveredValid_.insert(rec.msg.trace).second) {
      std::ostringstream out;
      out << "I4' violated: valid trace " << rec.msg.trace
          << " delivered more than once (payload=" << rec.msg.payload << ")";
      return out.str();
    }
    if (rec.at != rec.msg.dest) {
      std::ostringstream out;
      out << "I4' violated: valid trace " << rec.msg.trace << " delivered at "
          << rec.at << " instead of " << rec.msg.dest;
      return out.str();
    }
  }

  if (auto v = checkSlotWellFormedness(protocol_)) return v;
  if (auto v = checkSingleReadyCopy(protocol_)) return v;

  std::vector<TraceId> outstanding;
  for (const auto& gen : protocol_.generations()) {
    if (deliveredValid_.count(gen.msg.trace) == 0) {
      outstanding.push_back(gen.msg.trace);
    }
  }
  if (auto v = checkSlotConservation(protocol_, outstanding)) return v;

  return std::nullopt;
}

std::unique_ptr<StepInvariantMonitor> makeInvariantMonitor(
    const ForwardingProtocol& protocol) {
  switch (protocol.family()) {
    case ForwardingFamilyId::kSsmfp:
      return std::make_unique<InvariantMonitor>(
          static_cast<const SsmfpProtocol&>(protocol));
    case ForwardingFamilyId::kSsmfp2:
      return std::make_unique<Ssmfp2InvariantMonitor>(
          static_cast<const Ssmfp2Protocol&>(protocol));
  }
  assert(false && "unknown forwarding family");
  return nullptr;
}

}  // namespace snapfwd
