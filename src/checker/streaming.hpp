#pragma once
// Streaming (online) invariant checking for long-horizon soak runs.
//
// The post-hoc oracle (checker/spec_checker.hpp) and the per-step
// invariant batteries (checker/invariants.hpp, invariants2.hpp) both
// assume the protocol's generation/delivery record vectors survive the
// whole run - at 10^8..10^9 steps those vectors are the run's memory bill.
// StreamingInvariantChecker evaluates the Prop-4/Prop-5 style monitors
// online instead:
//
//   - exactly-once: every delivered valid trace was generated exactly once
//     and never delivered before;
//   - conservation: every generated-but-undelivered valid trace still
//     occupies some buffer (checked periodically - it is an O(n * slots)
//     scan);
//   - invalid-delivery budget: protocol-counted invalid deliveries must
//     stay within the configured budget (Prop 4 bounds them by the
//     initially occupied buffers).
//
// Memory contract: O(in-flight + faults * in-flight). The checker FOLDS
// the protocol's event records into its own counters on every poll and
// then clears them (ForwardingProtocol::clearEventRecordsForRestore), so
// record growth is bounded by the events of one polling interval; the
// persistent state is the outstanding-trace set (bounded by buffer
// capacity) plus the amnestied-trace set (bounded by buffer capacity per
// fault event), both independent of the horizon. Consequence: a run
// monitored by this checker CANNOT be fed to the post-hoc checkSpec
// afterwards - the records are gone. Choose one.
//
// Fault amnesty: a BUFFER-TOUCHING fault - a topology mutation or a
// corruption plan that plants garbage in buffers - legitimately breaks
// exactly-once and conservation for the messages IN FLIGHT when the fault
// hit: SSMFP's lastHop re-homing can duplicate them, SSMFP2's 2R8 can
// erase them (see the protocols' onTopologyMutation notes), and injected
// garbage can collide with a valid copy's (payload, hop, color) identity.
// At each such fault event (noteFaultEvent) the checker amnesties every
// trace holding a copy in some buffer at that moment (which, by
// conservation, includes the whole outstanding set): those traces may
// later be delivered any number of times (tallied, not judged) and are
// exempt from the conservation scan. Everything else stays strict - in
// particular a message still WAITING in an outbox at fault time was in no
// buffer, cannot have been damaged, and is fully checked once generated.
//
// A ROUTING-ONLY fault (routing-table corruption and/or fairness-queue
// scrambling, no buffer touched) amnesties NOTHING
// (noteRoutingFaultEvent): the forwarding layer never trusts the routing
// layer for safety - that is the paper's central claim - so exactly-once
// and conservation must hold for every in-flight message across arbitrary
// routing churn. Keeping the checker strict here is what gives the
// adversarial campaign its regression power: a guard weakening that lets
// a routing flip smuggle a duplicate through is a hard violation, not an
// amnestied tally.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_set>

#include "fwd/forwarding.hpp"

namespace snapfwd {

struct StreamingCheckerOptions {
  /// Max tolerated invalid deliveries (messages present in the initial or
  /// post-fault configuration). Prop 4's bound is 2n per destination for
  /// SSMFP; clean-start soaks use 0.
  std::uint64_t invalidDeliveryBudget = 0;
  /// Run the conservation scan every this many polls (0 = never). The scan
  /// walks every buffer, so keep it sparse on big runs.
  std::uint64_t conservationEveryPolls = 4096;
  /// Emit a JSONL checkpoint line to `checkpointOut` every this many polls
  /// (0 = never).
  std::uint64_t checkpointEveryPolls = 0;
  std::ostream* checkpointOut = nullptr;
};

class StreamingInvariantChecker {
 public:
  /// `protocol` must outlive the checker. Non-const: polling folds and
  /// clears the protocol's event records (see the memory contract above).
  explicit StreamingInvariantChecker(ForwardingProtocol& protocol,
                                     StreamingCheckerOptions options = {});

  /// Registers a buffer-touching fault at `step` (topology mutation
  /// applied, garbage planted in buffers): every trace currently holding a
  /// buffer copy - and every outstanding (generated, undelivered) trace -
  /// becomes amnestied; its future deliveries are tallied instead of
  /// checked, and the conservation scan stops expecting it.
  void noteFaultEvent(std::uint64_t step);

  /// Registers a routing-only fault at `step` (routing tables corrupted,
  /// fairness queues scrambled, buffers untouched). Counted, but nothing
  /// is amnestied: safety is routing-independent, so every in-flight
  /// message stays strictly checked.
  void noteRoutingFaultEvent(std::uint64_t step);

  /// Consumes all event records accumulated since the last poll, updates
  /// the monitors, folds the records away, and periodically runs the
  /// conservation scan / writes a checkpoint. Call after every committed
  /// step (or every k steps; correctness only needs eventual polling).
  /// Returns the first violation as a human-readable string; once a
  /// violation is returned every later poll returns it again.
  [[nodiscard]] std::optional<std::string> poll(std::uint64_t step);

  // -- Counters (cumulative over the whole run) ---------------------------
  [[nodiscard]] std::uint64_t generationsSeen() const { return generations_; }
  [[nodiscard]] std::uint64_t deliveriesSeen() const { return deliveries_; }
  [[nodiscard]] std::uint64_t validDeliveries() const { return validDeliveries_; }
  [[nodiscard]] std::uint64_t invalidDeliveries() const {
    return invalidDeliveries_;
  }
  /// Deliveries of amnestied (in flight at some fault) traces, exempt from
  /// strict checking.
  [[nodiscard]] std::uint64_t amnestiedDeliveries() const {
    return amnestiedDeliveries_;
  }
  /// Traces moved from the outstanding to the amnestied set at fault
  /// events (cumulative; the set itself may be smaller on re-faults).
  [[nodiscard]] std::uint64_t amnestiedOutstanding() const {
    return amnestiedOutstanding_;
  }
  [[nodiscard]] std::size_t outstandingCount() const {
    return outstanding_.size();
  }
  [[nodiscard]] std::size_t amnestiedCount() const { return amnestied_.size(); }
  [[nodiscard]] std::uint64_t pollsRun() const { return polls_; }
  /// Buffer-touching fault events (each raised the amnesty set).
  [[nodiscard]] std::uint64_t faultEvents() const { return faultEvents_; }
  /// Routing-only fault events (strictness preserved).
  [[nodiscard]] std::uint64_t routingFaultEvents() const {
    return routingFaultEvents_;
  }
  [[nodiscard]] const std::optional<std::string>& violation() const {
    return violation_;
  }

 private:
  void consumeRecords();
  [[nodiscard]] std::optional<std::string> conservationScan(
      std::uint64_t step) const;
  void writeCheckpoint(std::uint64_t step);

  ForwardingProtocol& protocol_;
  StreamingCheckerOptions options_;
  std::unordered_set<TraceId> outstanding_;  // generated, valid, undelivered
  std::unordered_set<TraceId> amnestied_;    // in flight at some fault event
  std::optional<std::string> violation_;

  std::uint64_t generations_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t validDeliveries_ = 0;
  std::uint64_t invalidDeliveries_ = 0;
  std::uint64_t amnestiedDeliveries_ = 0;
  std::uint64_t amnestiedOutstanding_ = 0;
  std::uint64_t polls_ = 0;
  std::uint64_t faultEvents_ = 0;
  std::uint64_t routingFaultEvents_ = 0;
};

/// Appends the trace id of every message currently occupying a buffer of
/// `protocol` (family-dispatched slot walk; shared with the conservation
/// scan and tests).
void collectBufferTraces(const ForwardingProtocol& protocol,
                         std::unordered_set<TraceId>& out);

}  // namespace snapfwd
