#include "checker/streaming.hpp"

#include <ostream>

#include "ssmfp/ssmfp.hpp"
#include "ssmfp2/ssmfp2.hpp"
#include "stats/jsonl.hpp"

namespace snapfwd {

void collectBufferTraces(const ForwardingProtocol& protocol,
                         std::unordered_set<TraceId>& out) {
  switch (protocol.family()) {
    case ForwardingFamilyId::kSsmfp: {
      const auto& p = static_cast<const SsmfpProtocol&>(protocol);
      for (NodeId node = 0; node < p.graph().size(); ++node) {
        for (const NodeId d : p.destinations()) {
          if (const Buffer& r = p.bufR(node, d); r.has_value()) {
            out.insert(r->trace);
          }
          if (const Buffer& e = p.bufE(node, d); e.has_value()) {
            out.insert(e->trace);
          }
        }
      }
      return;
    }
    case ForwardingFamilyId::kSsmfp2: {
      const auto& p = static_cast<const Ssmfp2Protocol&>(protocol);
      for (NodeId node = 0; node < p.graph().size(); ++node) {
        for (std::uint32_t k = 0; k <= p.maxRank(); ++k) {
          if (const Buffer& b = p.slot(node, k); b.has_value()) {
            out.insert(b->trace);
          }
        }
      }
      return;
    }
  }
}

StreamingInvariantChecker::StreamingInvariantChecker(
    ForwardingProtocol& protocol, StreamingCheckerOptions options)
    : protocol_(protocol), options_(options) {
  // Anything generated before attachment would read as a ghost delivery
  // later; folding here baselines the checker on the protocol's current
  // records instead. Construction grants no amnesty - call noteFaultEvent()
  // right after seeding mid-run faults.
  consumeRecords();
}

void StreamingInvariantChecker::noteFaultEvent(std::uint64_t /*step*/) {
  // Fold what happened strictly-before the fault first, so pre-fault
  // deliveries are judged against the pre-fault outstanding set.
  consumeRecords();
  ++faultEvents_;
  // Amnesty covers exactly what the fault could touch: every trace with a
  // copy in some buffer right now. That includes stale copies of traces
  // already delivered (their re-homed duplicates must not read as ghosts)
  // and, by conservation, every outstanding trace.
  collectBufferTraces(protocol_, amnestied_);
  amnestiedOutstanding_ += outstanding_.size();
  amnestied_.insert(outstanding_.begin(), outstanding_.end());
  outstanding_.clear();
}

void StreamingInvariantChecker::noteRoutingFaultEvent(std::uint64_t /*step*/) {
  // Routing tables and fairness queues carry no message state: the fault
  // cannot have damaged any in-flight copy, so strict checking continues
  // uninterrupted (the fold keeps the delivery/outstanding bookkeeping in
  // step order).
  consumeRecords();
  ++routingFaultEvents_;
}

void StreamingInvariantChecker::consumeRecords() {
  if (violation_.has_value()) return;
  for (const GenerationRecord& g : protocol_.generations()) {
    ++generations_;
    if (g.msg.valid) outstanding_.insert(g.msg.trace);
  }
  for (const DeliveryRecord& d : protocol_.deliveries()) {
    ++deliveries_;
    if (!d.msg.valid) {
      ++invalidDeliveries_;
      continue;
    }
    if (const auto it = outstanding_.find(d.msg.trace); it != outstanding_.end()) {
      outstanding_.erase(it);
      ++validDeliveries_;
      continue;
    }
    if (amnestied_.contains(d.msg.trace)) {
      // In flight at some fault: duplication (SSMFP lastHop re-homing) and
      // loss (SSMFP2 2R8 after an upstream 2R4) are both legitimate -
      // tally, don't judge.
      ++amnestiedDeliveries_;
      continue;
    }
    violation_ = "exactly-once violated: valid trace " +
                 std::to_string(d.msg.trace) + " delivered at " +
                 std::to_string(d.at) + " (step " + std::to_string(d.step) +
                 ") without an outstanding generation (duplicate or ghost)";
    return;
  }
  if (invalidDeliveries_ > options_.invalidDeliveryBudget &&
      !violation_.has_value()) {
    violation_ = "invalid-delivery budget exceeded: " +
                 std::to_string(invalidDeliveries_) + " > " +
                 std::to_string(options_.invalidDeliveryBudget);
    return;
  }
  // The fold: this is what makes the checker O(in-flight) instead of
  // O(horizon) - and what forecloses post-hoc checkSpec on this run.
  protocol_.clearEventRecordsForRestore();
}

std::optional<std::string> StreamingInvariantChecker::conservationScan(
    std::uint64_t step) const {
  if (outstanding_.empty()) return std::nullopt;
  std::unordered_set<TraceId> present;
  collectBufferTraces(protocol_, present);
  for (const TraceId t : outstanding_) {
    if (!present.contains(t)) {
      return "conservation violated: valid trace " + std::to_string(t) +
             " generated but in no buffer at step " + std::to_string(step);
    }
  }
  return std::nullopt;
}

void StreamingInvariantChecker::writeCheckpoint(std::uint64_t step) {
  jsonl::Object line;
  line.field("step", step)
      .field("generations", generations_)
      .field("deliveries", deliveries_)
      .field("valid_deliveries", validDeliveries_)
      .field("invalid_deliveries", invalidDeliveries_)
      .field("amnestied_deliveries", amnestiedDeliveries_)
      .field("outstanding", static_cast<std::uint64_t>(outstanding_.size()))
      .field("amnestied", static_cast<std::uint64_t>(amnestied_.size()))
      .field("fault_events", faultEvents_)
      .field("routing_fault_events", routingFaultEvents_);
  *options_.checkpointOut << line.str() << '\n';
}

std::optional<std::string> StreamingInvariantChecker::poll(std::uint64_t step) {
  ++polls_;
  consumeRecords();
  if (!violation_.has_value() && options_.conservationEveryPolls != 0 &&
      polls_ % options_.conservationEveryPolls == 0) {
    violation_ = conservationScan(step);
  }
  if (options_.checkpointEveryPolls != 0 && options_.checkpointOut != nullptr &&
      polls_ % options_.checkpointEveryPolls == 0) {
    writeCheckpoint(step);
  }
  return violation_;
}

}  // namespace snapfwd
