#include "checker/caterpillar.hpp"

#include <cassert>

namespace snapfwd {

const char* toString(CaterpillarType type) {
  switch (type) {
    case CaterpillarType::kType1: return "type1";
    case CaterpillarType::kType2: return "type2";
    case CaterpillarType::kType3: return "type3";
    case CaterpillarType::kTail: return "tail";
  }
  return "?";
}

CaterpillarType classifyReception(const SsmfpProtocol& protocol, NodeId p,
                                  NodeId d) {
  const Buffer& r = protocol.bufR(p, d);
  assert(r.has_value());
  const NodeId q = r->lastHop;
  if (q == p || q >= protocol.graph().size()) return CaterpillarType::kType1;
  const Buffer& upstream = protocol.bufE(q, d);
  if (!upstream.has_value() || !sameInfoAndColor(*upstream, *r)) {
    return CaterpillarType::kType1;
  }
  return CaterpillarType::kTail;
}

CaterpillarType classifyEmission(const SsmfpProtocol& protocol, NodeId p,
                                 NodeId d) {
  const Buffer& e = protocol.bufE(p, d);
  assert(e.has_value());
  for (const NodeId q : protocol.graph().neighbors(p)) {
    const Buffer& rb = protocol.bufR(q, d);
    if (rb.has_value() && matchesTriplet(*rb, e->payload, p, e->color)) {
      return CaterpillarType::kType3;
    }
  }
  return CaterpillarType::kType2;
}

std::vector<BufferClass> classifyBuffers(const SsmfpProtocol& protocol) {
  std::vector<BufferClass> out;
  const Graph& g = protocol.graph();
  for (NodeId p = 0; p < g.size(); ++p) {
    for (const NodeId d : protocol.destinations()) {
      if (const Buffer& r = protocol.bufR(p, d); r.has_value()) {
        out.push_back({p, d, true, classifyReception(protocol, p, d), *r});
      }
      if (const Buffer& e = protocol.bufE(p, d); e.has_value()) {
        out.push_back({p, d, false, classifyEmission(protocol, p, d), *e});
      }
    }
  }
  return out;
}

CaterpillarCensus censusOf(const SsmfpProtocol& protocol) {
  CaterpillarCensus census;
  for (const auto& bc : classifyBuffers(protocol)) {
    switch (bc.type) {
      case CaterpillarType::kType1: ++census.type1; break;
      case CaterpillarType::kType2: ++census.type2; break;
      case CaterpillarType::kType3: ++census.type3; break;
      case CaterpillarType::kTail: ++census.tails; break;
    }
  }
  return census;
}

}  // namespace snapfwd
