#pragma once
// Moved to fwd/message.hpp when the forwarding-protocol family layer was
// extracted (the Message header is shared by every family member, not
// SSMFP-specific). This shim keeps historical include paths compiling.

#include "fwd/message.hpp"  // IWYU pragma: export
