#include "ssmfp/ssmfp_kernels.hpp"

#include <algorithm>
#include <cassert>

#include "graph/graph.hpp"

namespace snapfwd {

SsmfpKernelState::SsmfpKernelState(const SsmfpProtocol& protocol)
    : protocol_(protocol),
      n_(static_cast<std::uint32_t>(protocol.graph().size())),
      destCount_(static_cast<std::uint32_t>(protocol.destinations().size())),
      dests_(protocol.destinations()),
      policy_(protocol.choicePolicy()) {
  const Graph& g = protocol.graph();
  adjOff_.assign(n_ + 1, 0);
  for (NodeId p = 0; p < n_; ++p) {
    adjOff_[p + 1] =
        adjOff_[p] + static_cast<std::uint32_t>(g.neighbors(p).size());
  }
  adj_.resize(adjOff_[n_]);
  for (NodeId p = 0; p < n_; ++p) {
    const auto& nbrs = g.neighbors(p);
    std::copy(nbrs.begin(), nbrs.end(), adj_.begin() + adjOff_[p]);
  }

  const std::size_t cells = static_cast<std::size_t>(n_) * destCount_;
  rOcc_.assign(cells, 0);
  rPayload_.assign(cells, 0);
  rLastHop_.assign(cells, kNoNode);
  rColor_.assign(cells, 0);
  eOcc_.assign(cells, 0);
  ePayload_.assign(cells, 0);
  eColor_.assign(cells, 0);
  eTrace_.assign(cells, 0);
  nhop_.assign(cells, kNoNode);
  reqDest_.assign(n_, kNoNode);
  reqTrace_.assign(n_, 0);
  occ_.assign(n_, 0);
  eSlots_.assign(n_, 0);
  // Lazily mirrored from birth: every row starts stale and is pulled from
  // the authoritative state on first read (or by the engine's construction
  // priming syncAll). Every read path funnels through ensureFresh, so no
  // eager full sync is needed here.
  stale_.assign(n_, 1);
  mutation_ = protocol.guardMutation();

  rowLen_.resize(n_);
  qStart_.resize(n_);
  std::uint32_t total = 0;
  for (NodeId p = 0; p < n_; ++p) {
    rowLen_[p] = static_cast<std::uint32_t>(g.neighbors(p).size()) + 1;
    qStart_[p] = total;
    total += rowLen_[p] * destCount_;
  }
  queue_.assign(total, kNoNode);
}

void SsmfpKernelState::syncProcessor(NodeId p) {
  const std::size_t D = destCount_;
  reqDest_[p] = protocol_.nextDestination(p);
  reqTrace_[p] = reqDest_[p] != kNoNode ? protocol_.waitingTrace(p, 0) : 0;
  const std::size_t row = static_cast<std::size_t>(p) * D;
  const std::uint32_t len = rowLen_[p];
  std::uint8_t box = reqDest_[p] != kNoNode ? 4 : 0;
  std::uint8_t slots = 0;
  for (std::size_t s = 0; s < D; ++s) {
    const NodeId d = dests_[s];
    const std::size_t idx = row + s;
    const Buffer& r = protocol_.bufR(p, d);
    rOcc_[idx] = r.has_value() ? 1 : 0;
    if (r.has_value()) {
      rPayload_[idx] = r->payload;
      rLastHop_[idx] = r->lastHop;
      rColor_[idx] = r->color;
      box |= 1;
    }
    const Buffer& e = protocol_.bufE(p, d);
    eOcc_[idx] = e.has_value() ? 1 : 0;
    if (e.has_value()) {
      ePayload_[idx] = e->payload;
      eColor_[idx] = e->color;
      eTrace_[idx] = e->trace;
      box |= 2;
      slots |= static_cast<std::uint8_t>(1u << (s < 7 ? s : 7));
    }
    nhop_[idx] = protocol_.routing().nextHop(p, d);
    const auto& q = protocol_.fairnessQueue(p, d);
    assert(q.size() == len && "fairness queue must stay a Delta+1 permutation");
    std::copy(q.begin(), q.begin() + len, queue_.begin() + qStart_[p] + s * len);
  }
  occ_[p] = box;
  eSlots_[p] = slots;
}

void SsmfpKernelState::rebuildTopology() {
  const Graph& g = protocol_.graph();
  adjOff_.assign(n_ + 1, 0);
  for (NodeId p = 0; p < n_; ++p) {
    adjOff_[p + 1] =
        adjOff_[p] + static_cast<std::uint32_t>(g.neighbors(p).size());
  }
  adj_.resize(adjOff_[n_]);
  for (NodeId p = 0; p < n_; ++p) {
    const auto& nbrs = g.neighbors(p);
    std::copy(nbrs.begin(), nbrs.end(), adj_.begin() + adjOff_[p]);
  }
  std::uint32_t total = 0;
  for (NodeId p = 0; p < n_; ++p) {
    rowLen_[p] = static_cast<std::uint32_t>(g.neighbors(p).size()) + 1;
    qStart_[p] = total;
    total += rowLen_[p] * destCount_;
  }
  queue_.assign(total, kNoNode);
  std::fill(stale_.begin(), stale_.end(), std::uint8_t{1});
}

void SsmfpKernelState::syncAll() {
  mutation_ = protocol_.guardMutation();
  for (NodeId p = 0; p < n_; ++p) syncProcessor(p);
  std::fill(stale_.begin(), stale_.end(), std::uint8_t{0});
}

void SsmfpKernelState::syncWritten(const NodeId* ids, std::size_t count) {
  // Mark only: rows refresh lazily on first read in evaluate(). A written
  // processor the guards never look at again costs one byte here instead
  // of a full O(destCount * Delta) row rebuild.
  for (std::size_t i = 0; i < count; ++i) {
    if (ids[i] < n_) stale_[ids[i]] = 1;
  }
}

bool SsmfpKernelState::candidate(NodeId p, std::size_t s, NodeId c) const {
  if (c == p) {
    // Self-candidacy: a waiting message targeting this slot's destination
    // (the header-documented divergence: nextDestination must equal d).
    return reqDest_[p] == dests_[s];
  }
  // Neighbor candidacy: c's emission buffer holds a message routed to p.
  const std::size_t idx = static_cast<std::size_t>(c) * destCount_ + s;
  return eOcc_[idx] != 0 && nhop_[idx] == p;
}

NodeId SsmfpKernelState::choiceAt(NodeId p, std::size_t s) const {
  switch (policy_) {
    case ChoicePolicy::kRoundRobin: {
      const std::uint32_t len = rowLen_[p];
      const NodeId* q = queue_.data() + qStart_[p] + s * len;
      for (std::uint32_t k = 0; k < len; ++k) {
        if (candidate(p, s, q[k])) return q[k];
      }
      return kNoNode;
    }
    case ChoicePolicy::kFixedPriority: {
      NodeId best = kNoNode;
      for (std::uint32_t a = adjOff_[p]; a < adjOff_[p + 1]; ++a) {
        const NodeId c = adj_[a];
        if (c < best && candidate(p, s, c)) best = c;
      }
      if (p < best && candidate(p, s, p)) best = p;
      return best;
    }
    case ChoicePolicy::kOldestFirst: {
      NodeId best = kNoNode;
      TraceId bestAge = ~TraceId{0};
      auto consider = [&](NodeId c, TraceId age) {
        if (age < bestAge || (age == bestAge && c < best)) {
          best = c;
          bestAge = age;
        }
      };
      for (std::uint32_t a = adjOff_[p]; a < adjOff_[p + 1]; ++a) {
        const NodeId c = adj_[a];
        if (!candidate(p, s, c)) continue;
        consider(c, eTrace_[static_cast<std::size_t>(c) * destCount_ + s]);
      }
      if (candidate(p, s, p)) consider(p, reqTrace_[p]);
      return best;
    }
  }
  return kNoNode;
}

void SsmfpKernelState::evaluate(const NodeId* ids, std::size_t count,
                                KernelOut& out) {
  const std::size_t D = destCount_;
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId p = ids[i];
    out.beginProcessor(p);
    // Lazy refresh of everything p's guards read by row: p itself and its
    // neighborhood (candidate/R4 scans). The upstream lastHop row R2/R5
    // read is refreshed at its use site - it can be an arbitrary id under
    // corruption, not necessarily a neighbor.
    ensureFresh(p);
    // One pass over the neighborhood: refresh stale rows and gather the
    // emission-occupancy union for idle rejection (see occ_) - a processor
    // with no local occupancy and no neighbor emission has every rule
    // disabled (R1 needs the request, R2/R5 need R, R4/R6 need E, R3 an
    // upstream emission routed here), so the per-slot scans are skipped.
    std::uint8_t nbrOcc = 0;
    std::uint8_t nbrSlots = 0;
    for (std::uint32_t a = adjOff_[p]; a < adjOff_[p + 1]; ++a) {
      const NodeId q = adj_[a];
      ensureFresh(q);
      nbrOcc |= occ_[q];
      nbrSlots |= eSlots_[q];
    }
    if (occ_[p] == 0 && (nbrOcc & 2) == 0) continue;
    const std::size_t row = static_cast<std::size_t>(p) * D;
    for (std::size_t s = 0; s < D; ++s) {
      const NodeId d = dests_[s];
      const std::size_t idx = row + s;
      const bool rOcc = rOcc_[idx] != 0;
      const bool selfReq = reqDest_[p] == d;
      // choice_p(d) serves both R1 (== p) and R3 (!= p); both require an
      // empty reception buffer, so one lazy computation covers them. The
      // queue scan is skipped outright when no candidate can exist: the
      // only candidates are p itself (requires the request to target d)
      // and neighbors with an occupied E buffer in this slot (eSlots_).
      const bool nbrMayEmit =
          (nbrSlots & static_cast<std::uint8_t>(1u << (s < 7 ? s : 7))) != 0;
      const NodeId ch =
          rOcc || (!selfReq && !nbrMayEmit) ? kNoNode : choiceAt(p, s);

      // R1 generation.
      if (!rOcc && selfReq && ch == p) {
        out.push(Action{kR1Generate, d, 0});
      }
      // R2 internal: no matching upstream emission copy (or self-generated).
      if (eOcc_[idx] == 0 && rOcc) {
        const NodeId q = rLastHop_[idx];
        bool fire;
        if (q == p || mutation_ == SsmfpGuardMutation::kR2SkipUpstreamCheck ||
            q >= n_) {
          fire = true;
        } else {
          ensureFresh(q);
          const std::size_t uidx = static_cast<std::size_t>(q) * D + s;
          fire = eOcc_[uidx] == 0 || ePayload_[uidx] != rPayload_[idx] ||
                 eColor_[uidx] != rColor_[idx];
        }
        if (fire) out.push(Action{kR2Internal, d, 0});
      }
      // R3 forwarding.
      if (!rOcc && ch != kNoNode && ch != p) {
        out.push(Action{kR3Forward, d, ch});
      }
      // R4 erase-forwarded: copy sits at the next hop and nowhere else.
      if (p != d && eOcc_[idx] != 0) {
        const NodeId hop = nhop_[idx];
        const Payload m = ePayload_[idx];
        const Color c = eColor_[idx];
        bool copyAtHop = false;
        bool stray = false;
        for (std::uint32_t a = adjOff_[p]; a < adjOff_[p + 1]; ++a) {
          const NodeId r = adj_[a];
          const std::size_t ridx = static_cast<std::size_t>(r) * D + s;
          const bool match = rOcc_[ridx] != 0 && rPayload_[ridx] == m &&
                             rLastHop_[ridx] == p && rColor_[ridx] == c;
          if (r == hop) {
            copyAtHop = match;
          } else if (match &&
                     mutation_ != SsmfpGuardMutation::kR4SkipStrayCopyCheck) {
            stray = true;  // R5 must clean it first
            break;
          }
        }
        if (!stray && copyAtHop) out.push(Action{kR4EraseForwarded, d, 0});
      }
      // R5 erase-duplicate: forwarded copy whose upstream no longer routes
      // through p (q == p means generated here, never a duplicate).
      if (rOcc) {
        const NodeId q = rLastHop_[idx];
        if (q != p && q < n_) {
          ensureFresh(q);
          const std::size_t uidx = static_cast<std::size_t>(q) * D + s;
          if (eOcc_[uidx] != 0 && ePayload_[uidx] == rPayload_[idx] &&
              eColor_[uidx] == rColor_[idx] && nhop_[uidx] != p) {
            out.push(Action{kR5EraseDuplicate, d, 0});
          }
        }
      }
      // R6 consume.
      if (p == d && eOcc_[idx] != 0) {
        out.push(Action{kR6Consume, d, 0});
      }
    }
  }
}

namespace {

void ssmfpEvaluate(const void* self, const NodeId* ids, std::size_t count,
                   KernelOut& out) {
  // The const_cast is confined to the derived mirror: evaluate() performs
  // lazy cache refresh (mutating only mirror arrays), never touches the
  // authoritative protocol state.
  const_cast<SsmfpKernelState*>(static_cast<const SsmfpKernelState*>(self))
      ->evaluate(ids, count, out);
}

void ssmfpSyncWritten(void* self, const NodeId* ids, std::size_t count) {
  static_cast<SsmfpKernelState*>(self)->syncWritten(ids, count);
}

void ssmfpSyncAll(void* self) {
  static_cast<SsmfpKernelState*>(self)->syncAll();
}

}  // namespace

GuardKernelSet makeSsmfpGuardKernels(SsmfpKernelState& state) {
  GuardKernelSet set;
  set.self = &state;
  set.evaluate = &ssmfpEvaluate;
  set.syncWritten = &ssmfpSyncWritten;
  set.syncAll = &ssmfpSyncAll;
  return set;
}

}  // namespace snapfwd
