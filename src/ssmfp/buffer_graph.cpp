#include "ssmfp/buffer_graph.hpp"

#include <deque>

namespace snapfwd {

DirectedBufferGraph destinationBufferGraph(const Graph& graph,
                                           const RoutingProvider& routing,
                                           NodeId d) {
  DirectedBufferGraph bg;
  bg.vertexCount = graph.size();
  bg.labels.reserve(graph.size());
  for (NodeId p = 0; p < graph.size(); ++p) {
    bg.labels.push_back("b_" + std::to_string(p) + "(" + std::to_string(d) + ")");
  }
  for (NodeId p = 0; p < graph.size(); ++p) {
    if (p == d) continue;  // the destination consumes; no outgoing arc
    bg.arcs.emplace_back(p, routing.nextHop(p, d));
  }
  return bg;
}

DirectedBufferGraph ssmfpBufferGraph(const Graph& graph,
                                     const RoutingProvider& routing, NodeId d) {
  DirectedBufferGraph bg;
  bg.vertexCount = 2 * graph.size();
  bg.labels.reserve(bg.vertexCount);
  for (NodeId p = 0; p < graph.size(); ++p) {
    bg.labels.push_back("bufR_" + std::to_string(p) + "(" + std::to_string(d) + ")");
    bg.labels.push_back("bufE_" + std::to_string(p) + "(" + std::to_string(d) + ")");
  }
  for (NodeId p = 0; p < graph.size(); ++p) {
    // Internal move R2: reception -> emission of the same processor.
    bg.arcs.emplace_back(2 * static_cast<std::size_t>(p),
                         2 * static_cast<std::size_t>(p) + 1);
    // Hop move R3: emission -> reception of the routed next hop.
    if (p != d) {
      const NodeId hop = routing.nextHop(p, d);
      bg.arcs.emplace_back(2 * static_cast<std::size_t>(p) + 1,
                           2 * static_cast<std::size_t>(hop));
    }
  }
  return bg;
}

bool isAcyclic(const DirectedBufferGraph& bg) {
  std::vector<std::size_t> indegree(bg.vertexCount, 0);
  std::vector<std::vector<std::size_t>> out(bg.vertexCount);
  for (const auto& [from, to] : bg.arcs) {
    out[from].push_back(to);
    ++indegree[to];
  }
  std::deque<std::size_t> ready;
  for (std::size_t v = 0; v < bg.vertexCount; ++v) {
    if (indegree[v] == 0) ready.push_back(v);
  }
  std::size_t removed = 0;
  while (!ready.empty()) {
    const std::size_t v = ready.front();
    ready.pop_front();
    ++removed;
    for (const std::size_t w : out[v]) {
      if (--indegree[w] == 0) ready.push_back(w);
    }
  }
  return removed == bg.vertexCount;
}

}  // namespace snapfwd
