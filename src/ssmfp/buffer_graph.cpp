#include "ssmfp/buffer_graph.hpp"

namespace snapfwd {

DirectedBufferGraph destinationBufferGraph(const Graph& graph,
                                           const RoutingProvider& routing,
                                           NodeId d) {
  DirectedBufferGraph bg;
  bg.vertexCount = graph.size();
  bg.labels.reserve(graph.size());
  for (NodeId p = 0; p < graph.size(); ++p) {
    bg.labels.push_back("b_" + std::to_string(p) + "(" + std::to_string(d) + ")");
  }
  for (NodeId p = 0; p < graph.size(); ++p) {
    if (p == d) continue;  // the destination consumes; no outgoing arc
    bg.arcs.emplace_back(p, routing.nextHop(p, d));
  }
  return bg;
}

DirectedBufferGraph ssmfpBufferGraph(const Graph& graph,
                                     const RoutingProvider& routing, NodeId d) {
  DirectedBufferGraph bg;
  bg.vertexCount = 2 * graph.size();
  bg.labels.reserve(bg.vertexCount);
  for (NodeId p = 0; p < graph.size(); ++p) {
    bg.labels.push_back("bufR_" + std::to_string(p) + "(" + std::to_string(d) + ")");
    bg.labels.push_back("bufE_" + std::to_string(p) + "(" + std::to_string(d) + ")");
  }
  for (NodeId p = 0; p < graph.size(); ++p) {
    // Internal move R2: reception -> emission of the same processor.
    bg.arcs.emplace_back(2 * static_cast<std::size_t>(p),
                         2 * static_cast<std::size_t>(p) + 1);
    // Hop move R3: emission -> reception of the routed next hop.
    if (p != d) {
      const NodeId hop = routing.nextHop(p, d);
      bg.arcs.emplace_back(2 * static_cast<std::size_t>(p) + 1,
                           2 * static_cast<std::size_t>(hop));
    }
  }
  return bg;
}

bool isAcyclic(const DirectedBufferGraph& bg, AcyclicityScratch& scratch) {
  const std::size_t n = bg.vertexCount;
  scratch.indegree.assign(n, 0);
  scratch.offsets.assign(n + 1, 0);
  for (const auto& [from, to] : bg.arcs) {
    ++scratch.offsets[from + 1];
    ++scratch.indegree[to];
  }
  for (std::size_t v = 0; v < n; ++v) {
    scratch.offsets[v + 1] += scratch.offsets[v];
  }
  scratch.cursor.assign(scratch.offsets.begin(), scratch.offsets.end() - 1);
  scratch.targets.resize(bg.arcs.size());
  for (const auto& [from, to] : bg.arcs) {
    scratch.targets[scratch.cursor[from]++] = to;
  }

  scratch.ready.clear();
  scratch.ready.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (scratch.indegree[v] == 0) scratch.ready.push_back(v);
  }
  // Kahn's algorithm; ready doubles as the removal log, scanned by head
  // index, so no element is ever popped or shifted.
  for (std::size_t head = 0; head < scratch.ready.size(); ++head) {
    const std::size_t v = scratch.ready[head];
    for (std::size_t i = scratch.offsets[v]; i < scratch.offsets[v + 1]; ++i) {
      const std::size_t w = scratch.targets[i];
      if (--scratch.indegree[w] == 0) scratch.ready.push_back(w);
    }
  }
  return scratch.ready.size() == n;
}

bool isAcyclic(const DirectedBufferGraph& bg) {
  AcyclicityScratch scratch;
  return isAcyclic(bg, scratch);
}

}  // namespace snapfwd
