#pragma once
// Buffer graphs (Merlin & Schweitzer 1978; paper Figures 1 and 2).
//
// A buffer graph BG is a directed graph over the network's buffers; a
// deadlock-free controller restricts message moves to arcs of BG, and
// acyclicity of BG guarantees deadlock freedom. Two constructions appear
// in the paper:
//   - Figure 1, "destination-based": one buffer b_p(d) per processor per
//     destination; arcs b_p(d) -> b_{nextHop_p(d)}(d). The component for d
//     is isomorphic to the routing tree T_d (acyclic iff tables are
//     cycle-free).
//   - Figure 2, SSMFP's adaptation: two buffers per processor per
//     destination with arcs bufR_p(d) -> bufE_p(d) (internal move R2) and
//     bufE_p(d) -> bufR_{nextHop_p(d)}(d) (hop move R3).
//
// Building these against a *corrupted* RoutingProvider exhibits the cycles
// that make the fault-free controller deadlock, which is exactly the
// situation SSMFP survives.

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "routing/routing.hpp"

namespace snapfwd {

struct DirectedBufferGraph {
  std::size_t vertexCount = 0;
  std::vector<std::string> labels;                       // one per vertex
  std::vector<std::pair<std::size_t, std::size_t>> arcs; // (from, to)
};

/// Figure 1 construction for destination d (one buffer per processor).
[[nodiscard]] DirectedBufferGraph destinationBufferGraph(
    const Graph& graph, const RoutingProvider& routing, NodeId d);

/// Figure 2 construction for destination d (bufR/bufE per processor).
/// Vertex 2p is bufR_p(d); vertex 2p+1 is bufE_p(d).
[[nodiscard]] DirectedBufferGraph ssmfpBufferGraph(
    const Graph& graph, const RoutingProvider& routing, NodeId d);

/// Reusable workspace for isAcyclic: the CSR adjacency (offsets/targets),
/// indegrees and the Kahn worklist, rebuilt in place each call so callers
/// that check many buffer graphs (benchmark sweeps, per-destination loops)
/// stop paying one allocation set per check. Plain value type; reuse
/// across graphs of any size.
struct AcyclicityScratch {
  std::vector<std::size_t> indegree;
  std::vector<std::size_t> offsets;  // CSR row starts (vertexCount + 1)
  std::vector<std::size_t> cursor;   // CSR fill cursors
  std::vector<std::size_t> targets;  // CSR arc targets
  std::vector<std::size_t> ready;    // Kahn worklist / removal log
};

/// Kahn's algorithm; true iff the graph has no directed cycle.
[[nodiscard]] bool isAcyclic(const DirectedBufferGraph& bg,
                             AcyclicityScratch& scratch);
/// Convenience overload with a throwaway scratch (one-off checks, tests).
[[nodiscard]] bool isAcyclic(const DirectedBufferGraph& bg);

}  // namespace snapfwd
